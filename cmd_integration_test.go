package repro

// End-to-end integration of the command-line binaries: build janus-dbd,
// janusd, janus-router and janus-lb, wire them into the paper's four-layer
// deployment as separate OS processes, and drive admission checks through
// the full stack over real sockets.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/minisql"
	"repro/internal/store"
)

// buildBinaries compiles the daemons once per test run.
func buildBinaries(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
		out[name] = bin
	}
	return out
}

// freePort reserves an ephemeral TCP port and returns "127.0.0.1:port".
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process-level integration in -short mode")
	}
	bins := buildBinaries(t, "janus-dbd", "janusd", "janus-router", "janus-lb")

	dbAddr := freePort(t)
	qos1 := freePort(t)
	qos2 := freePort(t)
	routerAddr := freePort(t)
	lbAddr := freePort(t)

	// Database layer.
	startDaemon(t, bins["janus-dbd"], "-addr", dbAddr)
	waitTCP(t, dbAddr)

	// Install the test rules through the real TCP client.
	pool := minisql.NewPool(dbAddr, 2)
	defer pool.Close()
	st := store.New(pool)
	if err := st.Init(); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAll([]bucket.Rule{
		{Key: "alice", RefillRate: 0, Capacity: 5, Credit: 5},
		{Key: "bob", RefillRate: 1000, Capacity: 1000, Credit: 1000},
	}); err != nil {
		t.Fatal(err)
	}

	// QoS server layer (2 partitions).
	startDaemon(t, bins["janusd"], "-addr", qos1, "-db", dbAddr, "-sync", "0", "-checkpoint", "0")
	startDaemon(t, bins["janusd"], "-addr", qos2, "-db", dbAddr, "-sync", "0", "-checkpoint", "0")

	// Router layer (generous timeout: cross-process loopback).
	startDaemon(t, bins["janus-router"], "-addr", routerAddr,
		"-backends", qos1+","+qos2, "-timeout", "50ms", "-retries", "5")
	waitTCP(t, routerAddr)

	// Gateway LB.
	startDaemon(t, bins["janus-lb"], "-addr", lbAddr, "-backends", routerAddr)
	waitTCP(t, lbAddr)

	check := func(key string) (bool, error) {
		resp, err := http.Get(fmt.Sprintf("http://%s/qos?key=%s", lbAddr, key))
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			return false, fmt.Errorf("HTTP %d: %s", resp.StatusCode, body)
		}
		return string(body) == "true", nil
	}

	// The stack may need a beat for UDP sockets; retry the first check.
	var ok bool
	var err error
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok, err = check("alice")
		if err == nil && ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("first check never succeeded: ok=%v err=%v", ok, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// alice: 5 credits total; one consumed above.
	allowed := 1
	for i := 0; i < 7; i++ {
		ok, err := check("alice")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("alice admitted %d, want 5", allowed)
	}

	// bob: high rate, always admitted.
	for i := 0; i < 10; i++ {
		ok, err := check("bob")
		if err != nil || !ok {
			t.Fatalf("bob request %d: ok=%v err=%v", i, ok, err)
		}
	}

	// Unknown keys denied (default deny-all rule).
	if ok, err := check("stranger"); err != nil || ok {
		t.Fatalf("stranger: ok=%v err=%v", ok, err)
	}
}
