// Package des is a deterministic discrete-event simulation engine used to
// model the full Janus deployment at AWS scale in virtual time (see
// internal/cloudsim). It provides an event calendar with a binary-heap
// scheduler, multi-server FIFO service stations with busy-time accounting,
// and seeded random variates — everything needed to simulate hundreds of
// thousands of requests per (virtual) second in a few real milliseconds.
package des

import (
	"container/heap"
	"math"
	"math/rand"
	"time"
)

// Time is virtual simulation time in nanoseconds since simulation start.
type Time int64

// Seconds converts virtual time to seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// FromSeconds converts seconds to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// FromDuration converts a wall-clock duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d) }

type event struct {
	at  Time
	seq int64 // tie-breaker for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() (Time, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Engine is the event calendar. It is strictly single-threaded: all event
// functions run sequentially in virtual-time order.
type Engine struct {
	now    Time
	seq    int64
	events eventHeap
	rng    *rand.Rand
}

// NewEngine returns an engine with a seeded random source.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn at absolute virtual time t (clamped to now).
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn d after the current time.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Run executes events in order until the calendar is empty or virtual time
// reaches until. It returns the number of events executed.
func (e *Engine) Run(until Time) int {
	n := 0
	for len(e.events) > 0 {
		if e.events[0].at > until {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
		n++
	}
	if e.now < until {
		e.now = until
	}
	return n
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }

// Exp draws an exponential variate with the given mean.
func (e *Engine) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	return Time(e.rng.ExpFloat64() * float64(mean))
}

// Uniform draws a uniform variate in [lo, hi).
func (e *Engine) Uniform(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(e.rng.Int63n(int64(hi-lo)))
}

// Station is a multi-server FIFO queueing station: up to Servers jobs are
// in service simultaneously; excess jobs wait in arrival order. Service
// time is supplied per job. Busy time is accounted for utilization
// reporting.
type Station struct {
	eng     *Engine
	servers int
	busy    int
	queue   []job

	// accounting
	busyTime    Time // integral of busy servers over time
	lastChange  Time
	maxQueue    int
	queueLimit  int // 0 = unbounded
	served      int64
	dropped     int64
	waitTimeSum Time
}

type job struct {
	arrived Time
	service Time
	done    func()
}

// NewStation creates a station with the given parallel service slots.
// queueLimit bounds the waiting room (0 = unbounded); jobs arriving at a
// full waiting room are dropped (their done callback is not invoked) —
// matching the QoS server's bounded FIFO.
func NewStation(eng *Engine, servers, queueLimit int) *Station {
	if servers < 1 {
		servers = 1
	}
	return &Station{eng: eng, servers: servers, queueLimit: queueLimit}
}

func (s *Station) account() {
	now := s.eng.Now()
	s.busyTime += Time(int64(now-s.lastChange) * int64(s.busy))
	s.lastChange = now
}

// Submit offers a job with the given service demand; done runs when service
// completes. It returns false if the job was dropped at a full queue.
func (s *Station) Submit(service Time, done func()) bool {
	s.account()
	if s.busy < s.servers {
		s.busy++
		s.start(job{arrived: s.eng.Now(), service: service, done: done})
		return true
	}
	if s.queueLimit > 0 && len(s.queue) >= s.queueLimit {
		s.dropped++
		return false
	}
	s.queue = append(s.queue, job{arrived: s.eng.Now(), service: service, done: done})
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
	return true
}

func (s *Station) start(j job) {
	s.waitTimeSum += s.eng.Now() - j.arrived
	s.eng.After(j.service, func() {
		s.account()
		s.served++
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		} else {
			s.busy--
		}
		if j.done != nil {
			j.done()
		}
	})
}

// Served returns the number of completed jobs.
func (s *Station) Served() int64 { return s.served }

// Dropped returns the number of jobs rejected at a full queue.
func (s *Station) Dropped() int64 { return s.dropped }

// MaxQueue returns the high-water mark of the waiting room.
func (s *Station) MaxQueue() int { return s.maxQueue }

// MeanWait returns the average queueing delay of started jobs.
func (s *Station) MeanWait() Time {
	if s.served == 0 {
		return 0
	}
	return Time(int64(s.waitTimeSum) / s.served)
}

// BusyFraction returns the time-averaged fraction of busy servers since
// simulation start (0..1).
func (s *Station) BusyFraction() float64 {
	s.account()
	now := s.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(s.busyTime) / (float64(now) * float64(s.servers))
}

// Utilization returns the time-averaged number of busy servers.
func (s *Station) Utilization() float64 {
	return s.BusyFraction() * float64(s.servers)
}

// InService returns the number of jobs currently being served.
func (s *Station) InService() int { return s.busy }

// QueueLen returns the current waiting-room occupancy.
func (s *Station) QueueLen() int { return len(s.queue) }

// Ceil converts a float seconds value to Time, rounding up to 1ns minimum
// for positive values so zero-length services still order deterministically.
func Ceil(seconds float64) Time {
	t := Time(math.Ceil(seconds * float64(time.Second)))
	if seconds > 0 && t == 0 {
		t = 1
	}
	return t
}
