package des

import (
	"math"
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(FromSeconds(3), func() { order = append(order, 3) })
	e.At(FromSeconds(1), func() { order = append(order, 1) })
	e.At(FromSeconds(2), func() { order = append(order, 2) })
	n := e.Run(FromSeconds(10))
	if n != 3 || len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, n = %d", order, n)
	}
	if e.Now() != FromSeconds(10) {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(FromSeconds(1), func() { order = append(order, i) })
	}
	e.Run(FromSeconds(2))
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestRunStopsAtUntil(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(FromSeconds(5), func() { ran = true })
	e.Run(FromSeconds(2))
	if ran {
		t.Fatal("future event executed")
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(FromSeconds(6))
	if !ran {
		t.Fatal("event not executed on resumed run")
	}
}

func TestPastSchedulingClamps(t *testing.T) {
	e := NewEngine(1)
	e.At(FromSeconds(5), func() {
		ran := false
		e.At(FromSeconds(1), func() { ran = true }) // in the past
		e.Run(FromSeconds(5))                       // nested run is a no-op pattern; use After semantics
		_ = ran
	})
	// Simply ensure no panic and the clamped event fires.
	fired := false
	e.At(FromSeconds(6), func() {})
	e.After(FromSeconds(-3), func() { fired = true })
	e.Run(FromSeconds(10))
	if !fired {
		t.Fatal("clamped event did not fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			e.After(FromSeconds(1), chain)
		}
	}
	e.At(0, chain)
	e.Run(FromSeconds(100))
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestExpMean(t *testing.T) {
	e := NewEngine(42)
	mean := FromDuration(time.Millisecond)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(e.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.05 {
		t.Fatalf("exp mean = %v, want ~%v", got, mean)
	}
	if e.Exp(0) != 0 || e.Exp(-5) != 0 {
		t.Fatal("non-positive mean must return 0")
	}
}

func TestUniformBounds(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 1000; i++ {
		v := e.Uniform(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("uniform out of bounds: %v", v)
		}
	}
	if e.Uniform(5, 5) != 5 || e.Uniform(9, 3) != 9 {
		t.Fatal("degenerate bounds mishandled")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(7)
		var times []Time
		st := NewStation(e, 2, 0)
		for i := 0; i < 50; i++ {
			e.At(e.Uniform(0, FromSeconds(1)), func() {
				st.Submit(e.Exp(FromDuration(10*time.Millisecond)), func() {
					times = append(times, e.Now())
				})
			})
		}
		e.Run(FromSeconds(100))
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStationSerialService(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1, 0)
	var done []Time
	svc := FromDuration(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		st.Submit(svc, func() { done = append(done, e.Now()) })
	}
	e.Run(FromSeconds(1))
	want := []Time{svc, 2 * svc, 3 * svc}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completion %d at %v, want %v", i, done[i], want[i])
		}
	}
	if st.Served() != 3 || st.MaxQueue() != 2 {
		t.Fatalf("served=%d maxq=%d", st.Served(), st.MaxQueue())
	}
}

func TestStationParallelService(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 3, 0)
	var done []Time
	svc := FromDuration(10 * time.Millisecond)
	for i := 0; i < 3; i++ {
		st.Submit(svc, func() { done = append(done, e.Now()) })
	}
	e.Run(FromSeconds(1))
	for i := range done {
		if done[i] != svc {
			t.Fatalf("parallel job %d finished at %v", i, done[i])
		}
	}
}

func TestStationQueueLimitDrops(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1, 2)
	svc := FromDuration(time.Millisecond)
	accepted := 0
	for i := 0; i < 5; i++ {
		if st.Submit(svc, nil) {
			accepted++
		}
	}
	if accepted != 3 { // 1 in service + 2 queued
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if st.Dropped() != 2 {
		t.Fatalf("dropped = %d", st.Dropped())
	}
}

func TestStationThroughputMatchesCapacity(t *testing.T) {
	// A station with c servers and deterministic service W saturates at
	// exactly c/W jobs per second under closed-loop offered load.
	e := NewEngine(3)
	const servers = 4
	svc := FromDuration(time.Millisecond)
	st := NewStation(e, servers, 0)
	var issue func()
	issue = func() {
		st.Submit(svc, func() {
			if e.Now() < FromSeconds(10) {
				issue()
			}
		})
	}
	for i := 0; i < 64; i++ {
		e.At(0, issue)
	}
	e.Run(FromSeconds(10))
	rate := float64(st.Served()) / 10
	want := float64(servers) / svc.Seconds() // 4000/s
	if math.Abs(rate-want)/want > 0.02 {
		t.Fatalf("rate = %.0f, want ~%.0f", rate, want)
	}
	if bf := st.BusyFraction(); bf < 0.98 {
		t.Fatalf("busy fraction = %.3f at saturation", bf)
	}
}

func TestStationBusyFractionPartialLoad(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1, 0)
	// One job of 1s within a 4s horizon: busy fraction = 0.25.
	st.Submit(FromSeconds(1), nil)
	e.Run(FromSeconds(4))
	if bf := st.BusyFraction(); math.Abs(bf-0.25) > 0.01 {
		t.Fatalf("busy fraction = %v", bf)
	}
	if u := st.Utilization(); math.Abs(u-0.25) > 0.01 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestStationMeanWait(t *testing.T) {
	e := NewEngine(1)
	st := NewStation(e, 1, 0)
	svc := FromSeconds(1)
	st.Submit(svc, nil) // waits 0
	st.Submit(svc, nil) // waits 1s
	e.Run(FromSeconds(10))
	if mw := st.MeanWait(); mw != FromSeconds(0.5) {
		t.Fatalf("mean wait = %v", mw)
	}
}

func TestCeil(t *testing.T) {
	if Ceil(0) != 0 {
		t.Fatal("Ceil(0)")
	}
	if Ceil(1e-15) != 1 {
		t.Fatal("tiny positive must be >= 1ns")
	}
	if Ceil(1.5) != FromSeconds(1.5) {
		t.Fatalf("Ceil(1.5) = %v", Ceil(1.5))
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(2).Seconds() != 2 {
		t.Fatal("roundtrip broken")
	}
	if FromDuration(time.Second) != FromSeconds(1) {
		t.Fatal("duration conversion broken")
	}
}
