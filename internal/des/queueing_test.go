package des

import (
	"math"
	"testing"
	"time"
)

// Queueing-theory validation: the simulator must reproduce closed-form
// M/M/1 and M/M/c results, which anchors every throughput and wait-time
// number cloudsim produces.

// runMMc drives a Poisson arrival process (rate lambda) into a station with
// c servers and exponential service (rate mu per server) and returns the
// mean wait in queue and the served count.
func runMMc(t *testing.T, lambda, mu float64, c int, horizon time.Duration) (meanWaitSec float64, served int64) {
	t.Helper()
	eng := NewEngine(99)
	st := NewStation(eng, c, 0)
	svcMean := FromSeconds(1 / mu)
	iaMean := FromSeconds(1 / lambda)
	end := FromDuration(horizon)
	var arrive func()
	arrive = func() {
		st.Submit(eng.Exp(svcMean), nil)
		if eng.Now() < end {
			eng.After(eng.Exp(iaMean), arrive)
		}
	}
	eng.At(0, arrive)
	eng.Run(end)
	return st.MeanWait().Seconds(), st.Served()
}

func TestMM1MeanWaitMatchesTheory(t *testing.T) {
	// M/M/1: Wq = rho / (mu - lambda), rho = lambda/mu.
	lambda, mu := 80.0, 100.0
	rho := lambda / mu
	want := rho / (mu - lambda) // 0.04 s
	got, served := runMMc(t, lambda, mu, 1, 600*time.Second)
	if served < 40000 {
		t.Fatalf("served only %d jobs", served)
	}
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("M/M/1 Wq = %.4fs, theory %.4fs", got, want)
	}
}

func TestMM1UtilizationMatchesRho(t *testing.T) {
	lambda, mu := 60.0, 100.0
	eng := NewEngine(7)
	st := NewStation(eng, 1, 0)
	end := FromSeconds(600)
	var arrive func()
	arrive = func() {
		st.Submit(eng.Exp(FromSeconds(1/mu)), nil)
		if eng.Now() < end {
			eng.After(eng.Exp(FromSeconds(1/lambda)), arrive)
		}
	}
	eng.At(0, arrive)
	eng.Run(end)
	if got := st.BusyFraction(); math.Abs(got-0.6) > 0.03 {
		t.Fatalf("utilization = %.3f, want ~0.60", got)
	}
}

func TestMMcFasterThanMM1AtSameTotalCapacity(t *testing.T) {
	// At equal total service capacity and load, pooled servers (M/M/4 with
	// per-server rate mu) wait less than 4 separate M/M/1 queues each fed
	// lambda/4 — the resource-pooling effect.
	lambda, mu := 320.0, 100.0
	pooledWait, _ := runMMc(t, lambda, mu, 4, 400*time.Second)
	separateWait, _ := runMMc(t, lambda/4, mu, 1, 400*time.Second)
	if pooledWait >= separateWait {
		t.Fatalf("pooling effect missing: pooled %.4fs >= separate %.4fs", pooledWait, separateWait)
	}
}

func TestSaturatedStationThroughputIsCapacity(t *testing.T) {
	// Offered load 2× capacity: served rate must equal c*mu.
	lambda, mu, c := 400.0, 100.0, 2
	_, served := runMMc(t, lambda, mu, c, 300*time.Second)
	rate := float64(served) / 300
	capacity := float64(c) * mu
	if math.Abs(rate-capacity)/capacity > 0.03 {
		t.Fatalf("saturated rate %.1f, capacity %.1f", rate, capacity)
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = lambda_effective * W for the in-service population of an
	// unsaturated M/M/1: time-averaged busy servers equals lambda * E[S].
	lambda, mu := 50.0, 100.0
	eng := NewEngine(3)
	st := NewStation(eng, 1, 0)
	end := FromSeconds(400)
	var arrive func()
	arrive = func() {
		st.Submit(eng.Exp(FromSeconds(1/mu)), nil)
		if eng.Now() < end {
			eng.After(eng.Exp(FromSeconds(1/lambda)), arrive)
		}
	}
	eng.At(0, arrive)
	eng.Run(end)
	L := st.Utilization() // mean jobs in service
	want := lambda / mu   // λ·E[S]
	if math.Abs(L-want)/want > 0.08 {
		t.Fatalf("Little's law violated: L = %.3f, λE[S] = %.3f", L, want)
	}
}
