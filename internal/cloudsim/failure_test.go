package cloudsim

import (
	"testing"
	"time"
)

func TestFailureLocality(t *testing.T) {
	res, err := FailureLocality(FailureLocalityConfig{
		QoSNodes: 4,
		FailAt:   2 * time.Second,
		Duration: 6 * time.Second,
		Clients:  256,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the failed partition produced default replies.
	for i, n := range res.DefaultReplies {
		if i == res.FailedPartition {
			if n == 0 {
				t.Errorf("failed partition %d produced no default replies", i)
			}
			continue
		}
		if n != 0 {
			t.Errorf("healthy partition %d produced %d default replies", i, n)
		}
	}
	// Healthy partitions keep their throughput (±10%).
	if res.HealthyBefore <= 0 {
		t.Fatal("no pre-failure throughput measured")
	}
	ratio := res.HealthyAfter / res.HealthyBefore
	if ratio < 0.9 || ratio > 1.15 {
		t.Errorf("healthy throughput moved %.2fx across the failure (before %.0f, after %.0f)",
			ratio, res.HealthyBefore, res.HealthyAfter)
	}
}

func TestFailureLocalityWithReplacement(t *testing.T) {
	res, err := FailureLocality(FailureLocalityConfig{
		QoSNodes:  4,
		FailAt:    2 * time.Second,
		ReplaceAt: 4 * time.Second,
		Duration:  8 * time.Second,
		Clients:   256,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredAt == 0 {
		t.Fatal("replacement never recorded")
	}
	if res.RecoveredAt < 4*time.Second || res.RecoveredAt > 5*time.Second {
		t.Fatalf("recovered at %v, want ~4s", res.RecoveredAt)
	}
}

func TestFailureLocalityValidation(t *testing.T) {
	if _, err := FailureLocality(FailureLocalityConfig{QoSNodes: 1}); err == nil {
		t.Fatal("single-node failure experiment accepted")
	}
}
