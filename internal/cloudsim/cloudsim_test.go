package cloudsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func shortCfg(clients int) RunConfig {
	return RunConfig{Clients: clients, Duration: 2 * time.Second, Warmup: 500 * time.Millisecond, Seed: 1}
}

func TestRunValidatesDeployment(t *testing.T) {
	if _, err := Run(Deployment{}, shortCfg(10)); err == nil {
		t.Fatal("empty deployment accepted")
	}
	bad := Deployment{
		Routers: QoSNodes(sim.C3XLarge, 1), // wrong layer
		QoS:     QoSNodes(sim.C3XLarge, 1),
	}
	if _, err := Run(bad, shortCfg(10)); err == nil {
		t.Fatal("mislabeled router node accepted")
	}
}

func TestSaturatedThroughputMatchesBottleneck(t *testing.T) {
	// Router layer huge, QoS layer one c3.xlarge: the QoS node's capacity
	// is the bottleneck.
	dep := Deployment{
		Routers: RouterNodes(sim.C38XLarge, 4),
		QoS:     QoSNodes(sim.C3XLarge, 1),
	}
	res, err := Run(dep, shortCfg(512))
	if err != nil {
		t.Fatal(err)
	}
	want := (sim.Node{Type: sim.C3XLarge, Layer: sim.LayerQoS}).Capacity()
	if math.Abs(res.Throughput-want)/want > 0.05 {
		t.Fatalf("throughput = %.0f, want ~%.0f", res.Throughput, want)
	}
}

func TestThroughputScalesWithQoSNodes(t *testing.T) {
	get := func(n int) float64 {
		dep := Deployment{
			Routers: RouterNodes(sim.C38XLarge, 5),
			QoS:     QoSNodes(sim.C3XLarge, n),
		}
		res, err := Run(dep, shortCfg(1024))
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	one, four := get(1), get(4)
	ratio := four / one
	if ratio < 3.6 || ratio > 4.4 {
		t.Fatalf("4-node speedup = %.2fx, want ~4x", ratio)
	}
}

func TestRouterBottleneckCapsThroughput(t *testing.T) {
	// One small router in front of a big QoS layer.
	dep := Deployment{
		Routers: RouterNodes(sim.C3Large, 1),
		QoS:     QoSNodes(sim.C38XLarge, 2),
	}
	res, err := Run(dep, shortCfg(256))
	if err != nil {
		t.Fatal(err)
	}
	want := (sim.Node{Type: sim.C3Large, Layer: sim.LayerRouter}).Capacity()
	if math.Abs(res.Throughput-want)/want > 0.05 {
		t.Fatalf("throughput = %.0f, want ~%.0f (router-bound)", res.Throughput, want)
	}
	// Router CPU pegged, QoS CPU low.
	if res.RouterCPUMean() < 0.9 {
		t.Fatalf("router CPU = %.2f, want ~1", res.RouterCPUMean())
	}
	if res.QoSCPUMean() > 0.3 {
		t.Fatalf("QoS CPU = %.2f, want low", res.QoSCPUMean())
	}
}

func TestGatewayAddsLatencyOverDNS(t *testing.T) {
	mk := func(mode RoutingMode) float64 {
		dep := Deployment{
			Routers: RouterNodes(sim.C38XLarge, 2),
			QoS:     QoSNodes(sim.C38XLarge, 2),
			Mode:    mode,
		}
		// Light load (few clients) so latency ~= network + service.
		res, err := Run(dep, shortCfg(4))
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	dns := mk(DNSPinned)
	gw := mk(GatewayRR)
	extra := (gw - dns) / 1e3 // microseconds
	// The gateway hop adds ~2×250µs to the round trip.
	if extra < 300 || extra > 800 {
		t.Fatalf("gateway extra latency = %.0fµs, want ~500µs", extra)
	}
}

func TestDNSPinnedSkewWithFewClients(t *testing.T) {
	// §V-A: M router nodes, N client machines, M > N → only N routers
	// receive traffic during a TTL cycle.
	active, _, err := DNSTTLSkew(8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if active != 3 {
		t.Fatalf("active routers = %d, want 3", active)
	}
	// With machines >> routers the skew disappears.
	active, _, err = DNSTTLSkew(4, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if active != 4 {
		t.Fatalf("active routers = %d, want 4", active)
	}
}

func TestDeterministicResults(t *testing.T) {
	dep := Deployment{
		Routers: RouterNodes(sim.C3XLarge, 2),
		QoS:     QoSNodes(sim.C3XLarge, 2),
	}
	r1, err := Run(dep, shortCfg(64))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(dep, shortCfg(64))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Throughput != r2.Throughput || r1.Events != r2.Events {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", r1.Throughput, r1.Events, r2.Throughput, r2.Events)
	}
}

func TestPerNodeLoadBalanced(t *testing.T) {
	dep := Deployment{
		Routers: RouterNodes(sim.C3XLarge, 4),
		QoS:     QoSNodes(sim.C3XLarge, 4),
	}
	res, err := Run(dep, shortCfg(512))
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range [][]NodeReport{res.Routers, res.QoS} {
		var min, max float64 = math.MaxFloat64, 0
		for _, n := range layer {
			if n.Throughput < min {
				min = n.Throughput
			}
			if n.Throughput > max {
				max = n.Throughput
			}
		}
		if (max-min)/max > 0.1 {
			t.Fatalf("unbalanced layer: min %.0f max %.0f", min, max)
		}
	}
}
