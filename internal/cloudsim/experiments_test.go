package cloudsim

import "testing"

// The experiment tests assert the paper's qualitative findings — the
// "shape" reproduction targets of EXPERIMENTS.md.

func TestFig7ThroughputGrowsWithInstanceSize(t *testing.T) {
	pts, err := Fig7RouterVertical(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput <= pts[i-1].Throughput*1.05 && pts[i-1].Throughput < 80000 {
			t.Errorf("no growth from %s (%.0f) to %s (%.0f)",
				pts[i-1].Label, pts[i-1].Throughput, pts[i].Label, pts[i].Throughput)
		}
	}
	// Small routers deplete their CPU (Fig 7b).
	if pts[0].RouterCPU < 0.9 {
		t.Errorf("c3.large router CPU = %.2f, want ~1", pts[0].RouterCPU)
	}
	// QoS CPU rises as the router layer gets bigger.
	if pts[4].QoSCPU <= pts[0].QoSCPU {
		t.Errorf("QoS CPU did not rise: %.2f -> %.2f", pts[0].QoSCPU, pts[4].QoSCPU)
	}
}

func TestFig8LinearThenSaturates(t *testing.T) {
	pts, err := Fig8RouterHorizontal(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d", len(pts))
	}
	// Linear region: 1 -> 4 nodes roughly 4x.
	ratio := pts[3].Throughput / pts[0].Throughput
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("1->4 node scaling = %.2fx", ratio)
	}
	// Saturation: 10 nodes barely above 8 nodes (QoS server bottleneck).
	if gain := pts[9].Throughput / pts[7].Throughput; gain > 1.1 {
		t.Errorf("no saturation past 8 nodes: gain %.2fx", gain)
	}
	// Saturated near the c3.8xlarge QoS capacity (~90k).
	if pts[9].Throughput < 80000 || pts[9].Throughput > 100000 {
		t.Errorf("plateau at %.0f, want ~90k", pts[9].Throughput)
	}
	// Per-node router CPU decreases with more nodes (Fig 8b).
	if pts[9].RouterCPU >= pts[0].RouterCPU {
		t.Errorf("router CPU did not fall: %.2f -> %.2f", pts[0].RouterCPU, pts[9].RouterCPU)
	}
}

func TestFig9VerticalMatchesHorizontalForRouter(t *testing.T) {
	v, h, err := Fig9RouterCompare(1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at equal vCPUs where both exist and neither is saturated:
	// vertical c3.2xlarge (8 vCPU) vs horizontal 2 × c3.xlarge (8 vCPU).
	var vt, ht float64
	for _, p := range v {
		if p.VCPUs == 8 {
			vt = p.Throughput
		}
	}
	for _, p := range h {
		if p.VCPUs == 8 {
			ht = p.Throughput
		}
	}
	if vt == 0 || ht == 0 {
		t.Fatal("missing 8-vCPU points")
	}
	if diff := (vt - ht) / ht; diff < -0.1 || diff > 0.1 {
		t.Fatalf("vertical %.0f vs horizontal %.0f (%.1f%%)", vt, ht, diff*100)
	}
}

func TestFig10ServerVerticalGrows(t *testing.T) {
	pts, err := Fig10ServerVertical(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput <= pts[i-1].Throughput {
			t.Errorf("no growth from %s to %s", pts[i-1].Label, pts[i].Label)
		}
	}
	// Fig 10b: CPU under-utilization on the QoS layer even at saturation.
	for _, p := range pts {
		if p.QoSCPU > 0.9 {
			t.Errorf("%s: QoS CPU %.2f, want < 0.9 (under-utilization)", p.Label, p.QoSCPU)
		}
	}
	// Router layer (5 × c3.8xlarge) is over-provisioned: low CPU.
	if pts[0].RouterCPU > 0.5 {
		t.Errorf("router CPU = %.2f, want low", pts[0].RouterCPU)
	}
}

func TestFig11LinearAndHeadline(t *testing.T) {
	pts, err := Fig11ServerHorizontal(1)
	if err != nil {
		t.Fatal(err)
	}
	// Linear: 1 -> 8 nodes roughly 8x.
	ratio := pts[7].Throughput / pts[0].Throughput
	if ratio < 7 || ratio > 9 {
		t.Errorf("1->8 node scaling = %.2fx", ratio)
	}
	// Headline: > 100k req/s at 10 nodes.
	if pts[9].Throughput <= 100000 {
		t.Errorf("10-node throughput = %.0f, want > 100000", pts[9].Throughput)
	}
	// QoS per-node CPU roughly constant (each node saturated), router CPU
	// rises with total traffic (Fig 11b).
	if pts[9].RouterCPU <= pts[0].RouterCPU {
		t.Errorf("router CPU did not rise: %.2f -> %.2f", pts[0].RouterCPU, pts[9].RouterCPU)
	}
}

func TestFig12VerticalSlightlyBeatsHorizontal(t *testing.T) {
	v, h, err := Fig12ServerCompare(1)
	if err != nil {
		t.Fatal(err)
	}
	// Compare 32 vCPUs: vertical c3.8xlarge vs horizontal 8 × c3.xlarge.
	var vt, ht float64
	for _, p := range v {
		if p.VCPUs == 32 {
			vt = p.Throughput
		}
	}
	for _, p := range h {
		if p.VCPUs == 32 {
			ht = p.Throughput
		}
	}
	if vt == 0 || ht == 0 {
		t.Fatal("missing 32-vCPU points")
	}
	if vt <= ht {
		t.Fatalf("vertical %.0f <= horizontal %.0f, paper says vertical slightly higher", vt, ht)
	}
	if vt > ht*1.15 {
		t.Fatalf("vertical advantage too big: %.0f vs %.0f", vt, ht)
	}
	// But horizontal scales past the biggest instance: 10 nodes beat one
	// c3.8xlarge.
	if h[len(h)-1].Throughput <= vt {
		t.Fatal("horizontal cannot exceed the biggest instance")
	}
}

func TestLatencyUnderLoad(t *testing.T) {
	pts, err := LatencyUnderLoad(1, []float64{0.2, 0.6, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Completed ≈ offered below saturation.
	for _, p := range pts[:2] {
		if diff := (p.Throughput - p.OfferedRate) / p.OfferedRate; diff < -0.05 || diff > 0.05 {
			t.Errorf("util %.0f%%: throughput %.0f vs offered %.0f", p.Utilization*100, p.Throughput, p.OfferedRate)
		}
	}
	// Latency grows monotonically with load.
	if !(pts[0].P90MS <= pts[1].P90MS && pts[1].P90MS <= pts[2].P90MS) {
		t.Errorf("P90 not monotone: %.2f %.2f %.2f", pts[0].P90MS, pts[1].P90MS, pts[2].P90MS)
	}
	// Within the paper's envelope at moderate load.
	if pts[1].P90MS > 3 {
		t.Errorf("P90 at 60%% load = %.2fms, want <= 3ms", pts[1].P90MS)
	}
	// Low-load latency is about the network round trip (~1.2-1.5ms).
	if pts[0].MeanMS < 0.8 || pts[0].MeanMS > 3 {
		t.Errorf("low-load mean = %.2fms, implausible", pts[0].MeanMS)
	}
}

func TestHeadline(t *testing.T) {
	res, err := Headline(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 100000 {
		t.Fatalf("headline throughput = %.0f, want > 100k", res.Throughput)
	}
	if res.QoSNodes != 10 || res.QoSVCPUs != 40 {
		t.Fatalf("config = %+v", res)
	}
	// Decisions are fast: P90 well under the paper's 3ms envelope.
	if res.P90LatencyMS > 3 {
		t.Fatalf("P90 latency = %.2fms, want <= 3ms", res.P90LatencyMS)
	}
}
