package cloudsim

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/sim"
)

// Failure locality (paper §II-D): "a failed QoS server is a localized
// failure in that it does not impact the normal operation of other QoS
// servers in the system." This experiment fails one QoS node mid-run and
// measures, per partition, how many decisions were lost (router default
// replies after exhausted retries) and how throughput on the healthy
// partitions behaves.

// FailureResult summarizes a failure-injection run.
type FailureResult struct {
	// FailedPartition is the index of the killed QoS node.
	FailedPartition int
	// DefaultReplies counts decisions answered by the router's default
	// reply per partition.
	DefaultReplies []int64
	// ThroughputBefore / ThroughputAfter are completed req/s on healthy
	// partitions before and after the failure instant.
	HealthyBefore float64
	HealthyAfter  float64
	// RecoveredAt reports when the replacement node took over (relative to
	// run start); zero when no replacement was configured.
	RecoveredAt time.Duration
}

// FailureLocalityConfig drives the experiment.
type FailureLocalityConfig struct {
	// QoSNodes is the partition count (c3.xlarge nodes).
	QoSNodes int
	// FailAt is when the node dies; ReplaceAt, when > FailAt, brings a
	// replacement up (warm from checkpoints, same partition index).
	FailAt    time.Duration
	ReplaceAt time.Duration
	// Duration is the total run length; Clients the closed-loop fleet.
	Duration time.Duration
	Clients  int
	Seed     int64
}

// FailureLocality runs the experiment. The failed partition's requests are
// answered by the router's default reply after the 5-retry UDP discipline
// (a fixed small penalty), while other partitions proceed normally.
func FailureLocality(cfg FailureLocalityConfig) (FailureResult, error) {
	if cfg.QoSNodes < 2 {
		return FailureResult{}, fmt.Errorf("cloudsim: failure locality needs >= 2 QoS nodes")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 512
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.FailAt <= 0 || cfg.FailAt >= cfg.Duration {
		cfg.FailAt = cfg.Duration / 3
	}
	dep := Deployment{
		Routers: RouterNodes(sim.C38XLarge, 5),
		QoS:     QoSNodes(sim.C3XLarge, cfg.QoSNodes),
	}
	dep.defaults()

	eng := des.NewEngine(cfg.Seed)
	routerSt := make([]*des.Station, len(dep.Routers))
	routerSvc := make([]des.Time, len(dep.Routers))
	for i, n := range dep.Routers {
		routerSt[i] = des.NewStation(eng, n.Workers(), 0)
		routerSvc[i] = des.Ceil(n.ServiceTime())
	}
	qosSt := make([]*des.Station, cfg.QoSNodes)
	qosSvc := make([]des.Time, cfg.QoSNodes)
	for i, n := range dep.QoS {
		qosSt[i] = des.NewStation(eng, n.Workers(), 0)
		qosSvc[i] = des.Ceil(n.ServiceTime())
	}

	failIdx := cfg.QoSNodes / 2
	down := false
	failAt := des.FromDuration(cfg.FailAt)
	replaceAt := des.FromDuration(cfg.ReplaceAt)
	end := des.FromDuration(cfg.Duration)
	eng.At(failAt, func() { down = true })
	var recoveredAt des.Time
	if cfg.ReplaceAt > cfg.FailAt {
		eng.At(replaceAt, func() {
			down = false
			recoveredAt = eng.Now()
		})
	}

	defaultReplies := make([]int64, cfg.QoSNodes)
	healthyCompleted := map[bool]int64{} // key: before/after failure
	// retryPenalty is the router-side cost of 5 failed attempts before the
	// default reply (§III-B worst case: retries × timeout).
	retryPenalty := des.FromDuration(5 * 100 * time.Microsecond)

	rr := 0
	var issue func()
	issue = func() {
		q := eng.Rand().Intn(cfg.QoSNodes)
		rr = (rr + 1) % len(routerSt)
		r := rr
		reach := des.FromDuration(dep.ClientToLB + dep.LBToRouter)
		eng.After(reach, func() {
			routerSt[r].Submit(eng.Exp(routerSvc[r]), func() {
				if q == failIdx && down {
					// UDP retries expire; the router fabricates the reply.
					eng.After(retryPenalty+reach, func() {
						defaultReplies[q]++
						if eng.Now() < end {
							issue()
						}
					})
					return
				}
				eng.After(des.FromDuration(dep.RouterToQoS), func() {
					qosSt[q].Submit(eng.Exp(qosSvc[q]), func() {
						eng.After(des.FromDuration(dep.RouterToQoS)+reach, func() {
							if q != failIdx {
								healthyCompleted[eng.Now() > failAt]++
							}
							if eng.Now() < end {
								issue()
							}
						})
					})
				})
			})
		})
	}
	for c := 0; c < cfg.Clients; c++ {
		eng.At(eng.Uniform(0, des.FromDuration(2*time.Millisecond)), func() { issue() })
	}
	eng.Run(end)

	before := float64(healthyCompleted[false]) / failAt.Seconds()
	after := float64(healthyCompleted[true]) / (end - failAt).Seconds()
	res := FailureResult{
		FailedPartition: failIdx,
		DefaultReplies:  defaultReplies,
		HealthyBefore:   before,
		HealthyAfter:    after,
	}
	if recoveredAt > 0 {
		res.RecoveredAt = time.Duration(recoveredAt)
	}
	return res, nil
}
