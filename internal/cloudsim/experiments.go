package cloudsim

import (
	"time"

	"repro/internal/sim"
)

// This file defines the scaling experiments of §V-B and §V-C as reusable
// functions; cmd/janus-bench prints their results in the paper's layout and
// bench_test.go wraps them as benchmarks.

// ScalePoint is one x-position of a scaling figure.
type ScalePoint struct {
	Label      string  // instance type (vertical) or node count (horizontal)
	VCPUs      int     // total vCPUs in the scaled layer
	Nodes      int     // node count in the scaled layer
	Throughput float64 // req/s
	RouterCPU  float64 // mean router-layer CPU (0..1)
	QoSCPU     float64 // mean QoS-layer CPU (0..1)
}

// experiment durations: long enough for steady state, short enough that the
// full suite runs in seconds.
const (
	expWarmup   = 1 * time.Second
	expDuration = 4 * time.Second
)

func runPoint(dep Deployment, clients int, seed int64) (Result, error) {
	return Run(dep, RunConfig{
		Clients:  clients,
		Duration: expDuration,
		Warmup:   expWarmup,
		Seed:     seed,
	})
}

// Fig7RouterVertical: one router node of each C-series type; QoS layer
// fixed at one c3.8xlarge (§V-B: "provisioning a single c3.8xlarge node in
// the QoS server layer").
func Fig7RouterVertical(seed int64) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, t := range sim.CSeries {
		dep := Deployment{
			Routers: RouterNodes(t, 1),
			QoS:     QoSNodes(sim.C38XLarge, 1),
		}
		res, err := runPoint(dep, 1024, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Label:      t.Name,
			VCPUs:      t.VCPUs,
			Nodes:      1,
			Throughput: res.Throughput,
			RouterCPU:  res.RouterCPUMean(),
			QoSCPU:     res.QoSCPUMean(),
		})
	}
	return out, nil
}

// Fig8RouterHorizontal: 1..10 c3.xlarge router nodes; QoS layer fixed at
// one c3.8xlarge. The curve flattens past ~8 nodes when the QoS server
// becomes the bottleneck.
func Fig8RouterHorizontal(seed int64) ([]ScalePoint, error) {
	var out []ScalePoint
	for n := 1; n <= 10; n++ {
		dep := Deployment{
			Routers: RouterNodes(sim.C3XLarge, n),
			QoS:     QoSNodes(sim.C38XLarge, 1),
		}
		res, err := runPoint(dep, 1024, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Label:      itoa(n),
			VCPUs:      n * sim.C3XLarge.VCPUs,
			Nodes:      n,
			Throughput: res.Throughput,
			RouterCPU:  res.RouterCPUMean(),
			QoSCPU:     res.QoSCPUMean(),
		})
	}
	return out, nil
}

// Fig9RouterCompare overlays vertical and horizontal router scaling as
// throughput vs total router vCPUs.
func Fig9RouterCompare(seed int64) (vertical, horizontal []ScalePoint, err error) {
	vertical, err = Fig7RouterVertical(seed)
	if err != nil {
		return nil, nil, err
	}
	horizontal, err = Fig8RouterHorizontal(seed)
	if err != nil {
		return nil, nil, err
	}
	return vertical, horizontal, nil
}

// Fig10ServerVertical: one QoS node of each C-series type; router layer
// fixed at 5 c3.8xlarge nodes (§V-C).
func Fig10ServerVertical(seed int64) ([]ScalePoint, error) {
	var out []ScalePoint
	for _, t := range sim.CSeries {
		dep := Deployment{
			Routers: RouterNodes(sim.C38XLarge, 5),
			QoS:     QoSNodes(t, 1),
		}
		res, err := runPoint(dep, 1024, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Label:      t.Name,
			VCPUs:      t.VCPUs,
			Nodes:      1,
			Throughput: res.Throughput,
			RouterCPU:  res.RouterCPUMean(),
			QoSCPU:     res.QoSCPUMean(),
		})
	}
	return out, nil
}

// Fig11ServerHorizontal: 1..10 c3.xlarge QoS nodes; router layer fixed at
// 5 c3.8xlarge nodes. Throughput is linear in node count and exceeds
// 100,000 req/s at 10 nodes — the headline result.
func Fig11ServerHorizontal(seed int64) ([]ScalePoint, error) {
	var out []ScalePoint
	for n := 1; n <= 10; n++ {
		dep := Deployment{
			Routers: RouterNodes(sim.C38XLarge, 5),
			QoS:     QoSNodes(sim.C3XLarge, n),
		}
		res, err := runPoint(dep, 1536, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalePoint{
			Label:      itoa(n),
			VCPUs:      n * sim.C3XLarge.VCPUs,
			Nodes:      n,
			Throughput: res.Throughput,
			RouterCPU:  res.RouterCPUMean(),
			QoSCPU:     res.QoSCPUMean(),
		})
	}
	return out, nil
}

// Fig12ServerCompare overlays vertical and horizontal QoS-server scaling.
func Fig12ServerCompare(seed int64) (vertical, horizontal []ScalePoint, err error) {
	vertical, err = Fig10ServerVertical(seed)
	if err != nil {
		return nil, nil, err
	}
	horizontal, err = Fig11ServerHorizontal(seed)
	if err != nil {
		return nil, nil, err
	}
	return vertical, horizontal, nil
}

// HeadlineResult checks the abstract's claim: more than 100,000 req/s with
// 10 × 4-vCPU QoS nodes.
type HeadlineResult struct {
	Throughput   float64
	QoSNodes     int
	QoSVCPUs     int
	P90LatencyMS float64
}

// Headline runs the 10-node QoS configuration. Throughput is measured at
// saturation (a maximal closed-loop fleet); the latency percentile is
// measured in a second run at moderate load, matching how the paper reports
// decision latency (from the application-integration test, not from the
// saturation sweep).
func Headline(seed int64) (HeadlineResult, error) {
	dep := Deployment{
		Routers: RouterNodes(sim.C38XLarge, 5),
		QoS:     QoSNodes(sim.C3XLarge, 10),
	}
	sat, err := runPoint(dep, 2048, seed)
	if err != nil {
		return HeadlineResult{}, err
	}
	light, err := runPoint(dep, 64, seed)
	if err != nil {
		return HeadlineResult{}, err
	}
	return HeadlineResult{
		Throughput:   sat.Throughput,
		QoSNodes:     10,
		QoSVCPUs:     40,
		P90LatencyMS: float64(light.Latency.Percentile(90)) / 1e6,
	}, nil
}

// LoadPoint is one offered-rate sample of a latency-under-load curve.
type LoadPoint struct {
	Utilization float64 // offered rate / layer capacity
	OfferedRate float64 // req/s
	Throughput  float64 // completed req/s
	MeanMS      float64
	P90MS       float64
	P99MS       float64
}

// LatencyUnderLoad sweeps the headline deployment (5 × c3.8xlarge routers,
// 10 × c3.xlarge QoS nodes) across offered-load levels and reports the
// latency percentiles at each — the operating envelope behind the paper's
// "90% of decisions in 3 ms" claim.
func LatencyUnderLoad(seed int64, utilizations []float64) ([]LoadPoint, error) {
	dep := Deployment{
		Routers: RouterNodes(sim.C38XLarge, 5),
		QoS:     QoSNodes(sim.C3XLarge, 10),
	}
	capacity := 0.0
	for _, n := range dep.QoS {
		capacity += n.Capacity()
	}
	var out []LoadPoint
	for _, u := range utilizations {
		res, err := Run(dep, RunConfig{
			OfferedRate: u * capacity,
			Duration:    expDuration,
			Warmup:      expWarmup,
			Seed:        seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, LoadPoint{
			Utilization: u,
			OfferedRate: u * capacity,
			Throughput:  res.Throughput,
			MeanMS:      res.Latency.Mean() / 1e6,
			P90MS:       float64(res.Latency.Percentile(90)) / 1e6,
			P99MS:       float64(res.Latency.Percentile(99)) / 1e6,
		})
	}
	return out, nil
}

// DNSTTLSkew quantifies the §V-A problem: with M router nodes and N client
// machines (M > N), a TTL-pinned DNS client fleet keeps only N routers
// busy within a TTL cycle.
func DNSTTLSkew(routerNodes, clientMachines int, seed int64) (active int, throughput float64, err error) {
	dep := Deployment{
		Routers: RouterNodes(sim.C3XLarge, routerNodes),
		QoS:     QoSNodes(sim.C38XLarge, 2),
		Mode:    DNSPinned,
		DNSTTL:  time.Hour, // one TTL cycle spans the whole run
	}
	res, err := Run(dep, RunConfig{
		Clients:     512,
		ClientNodes: clientMachines,
		Duration:    expDuration,
		Warmup:      expWarmup,
		Seed:        seed,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.ActiveRouters(), res.Throughput, nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
