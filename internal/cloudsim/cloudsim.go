// Package cloudsim models the paper's AWS deployment (§V) as a
// discrete-event simulation, substituting for the EC2 testbed in the
// scaling experiments (Figs 7–12). The topology, routing logic and layer
// roles mirror the real implementation exactly — client fleet → load
// balancer → request router layer → QoS server layer — with per-node
// capacities taken from the calibrated cost model in internal/sim.
//
// Each simulated client is closed-loop (as the paper's modified "ab"): it
// issues its next QoS request as soon as the previous response arrives.
// Routers and QoS servers are multi-server FIFO stations whose service
// slots equal the node's vCPUs and whose service-time distribution is
// exponential with the calibrated mean, so a node's maximum sustainable
// throughput equals its modelled capacity.
package cloudsim

import (
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// RoutingMode selects how clients reach the router layer (§II-A).
type RoutingMode int

// Routing modes.
const (
	// GatewayRR is the ELB path: an extra proxy hop, round-robin across
	// all router nodes per request.
	GatewayRR RoutingMode = iota
	// DNSPinned is the DNS load-balancer path: no extra hop, but each
	// client sticks to one router node until its DNS TTL expires (§V-A).
	DNSPinned
)

// Deployment describes one simulated Janus installation.
type Deployment struct {
	// Routers and QoS define the two scaled layers.
	Routers []sim.Node
	QoS     []sim.Node
	// Mode selects the load-balancing path.
	Mode RoutingMode
	// DNSTTL is the client-side cache lifetime in DNSPinned mode.
	DNSTTL time.Duration

	// One-way network latencies; zero values select AWS-like defaults.
	ClientToLB    time.Duration // client fleet -> LB (or router in DNS mode)
	LBToRouter    time.Duration // extra gateway hop
	RouterToQoS   time.Duration // router -> QoS server (UDP leg)
	LatencyJitter float64       // fractional uniform jitter on each leg
}

// Defaults matching intra-AZ EC2 latencies circa 2018.
const (
	DefaultClientToLB  = 280 * time.Microsecond
	DefaultLBToRouter  = 250 * time.Microsecond
	DefaultRouterToQoS = 100 * time.Microsecond
	DefaultDNSTTL      = 30 * time.Second
)

func (d *Deployment) defaults() {
	if d.ClientToLB == 0 {
		d.ClientToLB = DefaultClientToLB
	}
	if d.LBToRouter == 0 {
		d.LBToRouter = DefaultLBToRouter
	}
	if d.RouterToQoS == 0 {
		d.RouterToQoS = DefaultRouterToQoS
	}
	if d.DNSTTL == 0 {
		d.DNSTTL = DefaultDNSTTL
	}
}

// RouterNodes builds a homogeneous router layer.
func RouterNodes(t sim.InstanceType, n int) []sim.Node {
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = sim.Node{Type: t, Layer: sim.LayerRouter}
	}
	return out
}

// QoSNodes builds a homogeneous QoS server layer.
func QoSNodes(t sim.InstanceType, n int) []sim.Node {
	out := make([]sim.Node, n)
	for i := range out {
		out[i] = sim.Node{Type: t, Layer: sim.LayerQoS}
	}
	return out
}

// RunConfig drives one simulation run.
type RunConfig struct {
	// Clients is the closed-loop client-thread count (the paper's ten
	// c3.8xlarge load nodes run hundreds of concurrent ab threads).
	Clients int
	// ClientNodes is the number of physical client machines; in DNSPinned
	// mode all threads of one machine share its DNS cache (§V-A). 0 means
	// one machine per client thread.
	ClientNodes int
	// OfferedRate, when > 0, switches from closed-loop clients to an
	// open-loop Poisson arrival process at this rate (req/s) — used for
	// latency-vs-load curves. Clients is ignored in this mode.
	OfferedRate float64
	// Duration is the measured virtual interval, after Warmup.
	Duration time.Duration
	// Warmup is discarded virtual time at the start.
	Warmup time.Duration
	// Seed drives all randomness.
	Seed int64
}

func (c *RunConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 1024
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
}

// NodeReport summarizes one node after a run.
type NodeReport struct {
	Node       sim.Node
	Throughput float64 // req/s served in the measured interval
	CPU        float64 // modelled CPU utilization (0..1)
}

// Result summarizes a run.
type Result struct {
	// Throughput is completed requests per second over the measured
	// interval (the paper's "requests per second" y-axis).
	Throughput float64
	// Routers and QoS report per-node load and CPU.
	Routers []NodeReport
	QoS     []NodeReport
	// Latency is the end-to-end request latency histogram (ns), measured
	// interval only.
	Latency *metrics.Histogram
	// Events is the number of simulation events processed.
	Events int
}

// RouterCPUMean returns the average router-layer CPU utilization.
func (r Result) RouterCPUMean() float64 { return meanCPU(r.Routers) }

// QoSCPUMean returns the average QoS-layer CPU utilization.
func (r Result) QoSCPUMean() float64 { return meanCPU(r.QoS) }

func meanCPU(nodes []NodeReport) float64 {
	if len(nodes) == 0 {
		return 0
	}
	var sum float64
	for _, n := range nodes {
		sum += n.CPU
	}
	return sum / float64(len(nodes))
}

// ActiveRouters counts router nodes that served any traffic (used by the
// DNS-TTL skew ablation).
func (r Result) ActiveRouters() int {
	n := 0
	for _, nr := range r.Routers {
		if nr.Throughput > 0 {
			n++
		}
	}
	return n
}

// Run simulates the deployment under maximum closed-loop load and reports
// saturated throughput and per-node CPU.
func Run(dep Deployment, cfg RunConfig) (Result, error) {
	dep.defaults()
	cfg.defaults()
	if len(dep.Routers) == 0 || len(dep.QoS) == 0 {
		return Result{}, fmt.Errorf("cloudsim: deployment needs at least one router and one QoS node")
	}
	for _, n := range dep.Routers {
		if n.Layer != sim.LayerRouter {
			return Result{}, fmt.Errorf("cloudsim: router node with layer %q", n.Layer)
		}
	}
	for _, n := range dep.QoS {
		if n.Layer != sim.LayerQoS {
			return Result{}, fmt.Errorf("cloudsim: qos node with layer %q", n.Layer)
		}
	}

	eng := des.NewEngine(cfg.Seed)
	routerSt := make([]*des.Station, len(dep.Routers))
	routerSvc := make([]des.Time, len(dep.Routers))
	for i, n := range dep.Routers {
		routerSt[i] = des.NewStation(eng, n.Workers(), 0)
		routerSvc[i] = des.Ceil(n.ServiceTime())
	}
	qosSt := make([]*des.Station, len(dep.QoS))
	qosSvc := make([]des.Time, len(dep.QoS))
	for i, n := range dep.QoS {
		qosSt[i] = des.NewStation(eng, n.Workers(), 0)
		qosSvc[i] = des.Ceil(n.ServiceTime())
	}

	warmup := des.FromDuration(cfg.Warmup)
	end := warmup + des.FromDuration(cfg.Duration)
	latency := metrics.NewHistogram()

	var completedMeasured int64
	routerServedAtWarmup := make([]int64, len(routerSt))
	qosServedAtWarmup := make([]int64, len(qosSt))
	eng.At(warmup, func() {
		for i, st := range routerSt {
			routerServedAtWarmup[i] = st.Served()
		}
		for i, st := range qosSt {
			qosServedAtWarmup[i] = st.Served()
		}
	})

	clientNodes := cfg.ClientNodes
	if clientNodes <= 0 {
		clientNodes = cfg.Clients
	}
	// Per client-node DNS pinning state (DNSPinned mode): each client
	// machine re-resolves when its TTL expires; round-robin DNS answers
	// rotate, so machine m gets router (m + epoch) mod M.
	ttl := des.FromDuration(dep.DNSTTL)

	lat := func(base time.Duration) des.Time {
		t := des.FromDuration(base)
		if dep.LatencyJitter > 0 {
			j := des.Time(float64(t) * dep.LatencyJitter)
			return eng.Uniform(t-j, t+j+1)
		}
		return t
	}

	rr := 0
	pickRouter := func(clientID int) int {
		switch dep.Mode {
		case DNSPinned:
			machine := clientID % clientNodes
			epoch := int(eng.Now() / ttl)
			return (machine + epoch) % len(routerSt)
		default:
			rr = (rr + 1) % len(routerSt)
			return rr
		}
	}

	closedLoop := cfg.OfferedRate <= 0
	var issue func(clientID int)
	issue = func(clientID int) {
		start := eng.Now()
		// Key selection: CRC32-mod-N distributes uniformly (validated by
		// the Fig 6 experiment); draw the partition directly.
		q := eng.Rand().Intn(len(qosSt))
		r := pickRouter(clientID)

		reachRouter := lat(dep.ClientToLB)
		if dep.Mode == GatewayRR {
			reachRouter += lat(dep.LBToRouter)
		}
		eng.After(reachRouter, func() {
			routerSt[r].Submit(eng.Exp(routerSvc[r]), func() {
				eng.After(lat(dep.RouterToQoS), func() {
					qosSt[q].Submit(eng.Exp(qosSvc[q]), func() {
						// Response path: QoS -> router -> client.
						back := lat(dep.RouterToQoS) + reachRouter
						eng.After(back, func() {
							if eng.Now() > warmup && eng.Now() <= end {
								completedMeasured++
								latency.Record(int64(eng.Now() - start))
							}
							if closedLoop && eng.Now() < end {
								issue(clientID)
							}
						})
					})
				})
			})
		})
	}

	if closedLoop {
		for c := 0; c < cfg.Clients; c++ {
			c := c
			// Stagger arrivals across one RTT to avoid a synchronized start.
			eng.At(eng.Uniform(0, des.FromDuration(2*time.Millisecond)), func() { issue(c) })
		}
	} else {
		// Open loop: Poisson arrivals, one request each, until end.
		gap := des.FromSeconds(1 / cfg.OfferedRate)
		id := 0
		var arrive func()
		arrive = func() {
			issue(id)
			id++
			if eng.Now() < end {
				eng.After(eng.Exp(gap), arrive)
			}
		}
		eng.At(0, arrive)
	}

	events := eng.Run(end)
	interval := des.Time(end - warmup).Seconds()

	res := Result{
		Throughput: float64(completedMeasured) / interval,
		Latency:    latency,
		Events:     events,
	}
	for i, st := range routerSt {
		load := float64(st.Served()-routerServedAtWarmup[i]) / interval
		res.Routers = append(res.Routers, NodeReport{
			Node:       dep.Routers[i],
			Throughput: load,
			CPU:        dep.Routers[i].CPUUtilization(load),
		})
	}
	for i, st := range qosSt {
		load := float64(st.Served()-qosServedAtWarmup[i]) / interval
		res.QoS = append(res.QoS, NodeReport{
			Node:       dep.QoS[i],
			Throughput: load,
			CPU:        dep.QoS[i].CPUUtilization(load),
		})
	}
	return res, nil
}
