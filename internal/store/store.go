// Package store is the typed data-access layer for the qos_rules table
// (paper §III-D): "The QoS rules table includes four columns - the QoS key,
// the refill rate, the capacity of the leaky bucket, and the remaining
// credit in the bucket."
//
// It runs over any Executor — the in-process minisql engine, a pooled TCP
// client to a remote minisql server, or the HA failover wrapper — so the QoS
// server code is identical in every deployment shape.
package store

import (
	"fmt"

	"repro/internal/bucket"
	"repro/internal/minisql"
)

// TableName is the rules table.
const TableName = "qos_rules"

// Executor abstracts statement execution (engine, client, pool, failover).
type Executor interface {
	Execute(sql string, args ...minisql.Value) (minisql.Result, error)
}

// Store provides typed access to QoS rules.
type Store struct {
	db Executor
}

// New wraps an executor.
func New(db Executor) *Store { return &Store{db: db} }

// Init creates the rules table if it does not exist.
func (s *Store) Init() error {
	_, err := s.db.Execute(`CREATE TABLE IF NOT EXISTS qos_rules (key TEXT PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`)
	return err
}

func ruleFromRow(row []minisql.Value) (bucket.Rule, error) {
	if len(row) != 4 {
		return bucket.Rule{}, fmt.Errorf("store: row arity %d, want 4", len(row))
	}
	return bucket.Rule{
		Key:        row[0].AsText(),
		RefillRate: row[1].AsFloat(),
		Capacity:   row[2].AsFloat(),
		Credit:     row[3].AsFloat(),
	}, nil
}

// Get fetches one rule by QoS key; found is false when the key is absent
// (the caller then applies the default rule, §II-D).
func (s *Store) Get(key string) (rule bucket.Rule, found bool, err error) {
	res, err := s.db.Execute(`SELECT key, refill_rate, capacity, credit FROM qos_rules WHERE key = ?`, minisql.Text(key))
	if err != nil {
		return bucket.Rule{}, false, err
	}
	if len(res.Rows) == 0 {
		return bucket.Rule{}, false, nil
	}
	r, err := ruleFromRow(res.Rows[0])
	return r, err == nil, err
}

// Put inserts or replaces a rule.
func (s *Store) Put(r bucket.Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	_, err := s.db.Execute(`REPLACE INTO qos_rules VALUES (?, ?, ?, ?)`,
		minisql.Text(r.Key), minisql.Float(r.RefillRate), minisql.Float(r.Capacity), minisql.Float(r.Credit))
	return err
}

// PutAll inserts rules in batches (used to seed large experiments).
func (s *Store) PutAll(rules []bucket.Rule) error {
	for _, r := range rules {
		if err := s.Put(r); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a rule; it reports whether the key existed.
func (s *Store) Delete(key string) (bool, error) {
	res, err := s.db.Execute(`DELETE FROM qos_rules WHERE key = ?`, minisql.Text(key))
	if err != nil {
		return false, err
	}
	return res.Affected > 0, nil
}

// LoadAll returns every rule — the paper's warm-up "SELECT * FROM
// qos_rules" that pulls the table into memory.
func (s *Store) LoadAll() ([]bucket.Rule, error) {
	res, err := s.db.Execute(`SELECT key, refill_rate, capacity, credit FROM qos_rules`)
	if err != nil {
		return nil, err
	}
	out := make([]bucket.Rule, 0, len(res.Rows))
	for _, row := range res.Rows {
		r, err := ruleFromRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Checkpoint writes back the current credit for one key (§II-D
// check-pointing). A key absent from the database (default-rule key) is a
// no-op, not an error.
func (s *Store) Checkpoint(key string, credit float64) error {
	_, err := s.db.Execute(`UPDATE qos_rules SET credit = ? WHERE key = ?`,
		minisql.Float(credit), minisql.Text(key))
	return err
}

// CheckpointBatch writes back credits for many keys, returning the first
// error after attempting all keys.
func (s *Store) CheckpointBatch(credits map[string]float64) error {
	var firstErr error
	for k, c := range credits {
		if err := s.Checkpoint(k, c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Count returns the number of rules.
func (s *Store) Count() (int64, error) {
	res, err := s.db.Execute(`SELECT COUNT(*) FROM qos_rules`)
	if err != nil {
		return 0, err
	}
	return res.Rows[0][0].AsInt(), nil
}
