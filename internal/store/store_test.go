package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/bucket"
	"repro/internal/minisql"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New(minisql.NewEngine())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInitIdempotent(t *testing.T) {
	s := newStore(t)
	if err := s.Init(); err != nil {
		t.Fatalf("second Init: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t)
	want := bucket.Rule{Key: "user-1", RefillRate: 100, Capacity: 1000, Credit: 800}
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Get("user-1")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore(t)
	_, found, err := s.Get("ghost")
	if err != nil || found {
		t.Fatalf("found=%v err=%v", found, err)
	}
}

func TestPutRejectsInvalidRule(t *testing.T) {
	s := newStore(t)
	if err := s.Put(bucket.Rule{Key: "", RefillRate: 1, Capacity: 1}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Put(bucket.Rule{Key: "k", RefillRate: -1, Capacity: 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestPutReplacesExisting(t *testing.T) {
	s := newStore(t)
	s.Put(bucket.Rule{Key: "k", RefillRate: 1, Capacity: 10, Credit: 10})
	s.Put(bucket.Rule{Key: "k", RefillRate: 2, Capacity: 20, Credit: 5})
	got, _, _ := s.Get("k")
	if got.RefillRate != 2 || got.Capacity != 20 || got.Credit != 5 {
		t.Fatalf("got %+v", got)
	}
	if n, _ := s.Count(); n != 1 {
		t.Fatalf("count = %d", n)
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t)
	s.Put(bucket.Rule{Key: "k", RefillRate: 1, Capacity: 1, Credit: 1})
	ok, err := s.Delete("k")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, err = s.Delete("k")
	if err != nil || ok {
		t.Fatalf("second delete: ok=%v err=%v", ok, err)
	}
}

func TestLoadAll(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 25; i++ {
		s.Put(bucket.Rule{Key: fmt.Sprintf("k%d", i), RefillRate: float64(i), Capacity: 100, Credit: 100})
	}
	rules, err := s.LoadAll()
	if err != nil || len(rules) != 25 {
		t.Fatalf("len=%d err=%v", len(rules), err)
	}
	seen := map[string]bool{}
	for _, r := range rules {
		seen[r.Key] = true
		if err := r.Validate(); err != nil {
			t.Errorf("invalid rule loaded: %v", err)
		}
	}
	if len(seen) != 25 {
		t.Fatalf("duplicates in LoadAll: %d unique", len(seen))
	}
}

func TestCheckpoint(t *testing.T) {
	s := newStore(t)
	s.Put(bucket.Rule{Key: "k", RefillRate: 1, Capacity: 100, Credit: 100})
	if err := s.Checkpoint("k", 42.5); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k")
	if got.Credit != 42.5 {
		t.Fatalf("credit = %v", got.Credit)
	}
	// Checkpointing an unknown (default-rule) key is a silent no-op.
	if err := s.Checkpoint("unknown", 1); err != nil {
		t.Fatalf("checkpoint unknown key: %v", err)
	}
}

func TestCheckpointBatch(t *testing.T) {
	s := newStore(t)
	for i := 0; i < 5; i++ {
		s.Put(bucket.Rule{Key: fmt.Sprintf("k%d", i), RefillRate: 1, Capacity: 100, Credit: 100})
	}
	batch := map[string]float64{"k0": 1, "k1": 2, "k4": 5, "ghost": 9}
	if err := s.CheckpointBatch(batch); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]float64{"k0": 1, "k1": 2, "k2": 100, "k4": 5} {
		got, _, _ := s.Get(k)
		if got.Credit != want {
			t.Errorf("%s credit = %v, want %v", k, got.Credit, want)
		}
	}
}

func TestCount(t *testing.T) {
	s := newStore(t)
	if n, err := s.Count(); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	s.Put(bucket.Rule{Key: "a", RefillRate: 1, Capacity: 1, Credit: 1})
	if n, _ := s.Count(); n != 1 {
		t.Fatalf("n=%d", n)
	}
}

// failingExecutor returns an error for every statement.
type failingExecutor struct{}

func (failingExecutor) Execute(string, ...minisql.Value) (minisql.Result, error) {
	return minisql.Result{}, errors.New("db down")
}

func TestErrorsPropagate(t *testing.T) {
	s := New(failingExecutor{})
	if err := s.Init(); err == nil {
		t.Error("Init")
	}
	if _, _, err := s.Get("k"); err == nil {
		t.Error("Get")
	}
	if err := s.Put(bucket.Rule{Key: "k", RefillRate: 1, Capacity: 1, Credit: 1}); err == nil {
		t.Error("Put")
	}
	if _, err := s.Delete("k"); err == nil {
		t.Error("Delete")
	}
	if _, err := s.LoadAll(); err == nil {
		t.Error("LoadAll")
	}
	if err := s.Checkpoint("k", 1); err == nil {
		t.Error("Checkpoint")
	}
	if err := s.CheckpointBatch(map[string]float64{"k": 1}); err == nil {
		t.Error("CheckpointBatch")
	}
	if _, err := s.Count(); err == nil {
		t.Error("Count")
	}
}

func TestStoreOverTCP(t *testing.T) {
	// The same DAO works over the network client, as in the real deployment.
	engine := minisql.NewEngine()
	srv, err := minisql.NewServer(engine, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool := minisql.NewPool(srv.Addr(), 2)
	defer pool.Close()
	s := New(pool)
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	want := bucket.Rule{Key: "net", RefillRate: 7, Capacity: 70, Credit: 70}
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.Get("net")
	if err != nil || !found || got != want {
		t.Fatalf("got %+v found=%v err=%v", got, found, err)
	}
}

func TestPutAll(t *testing.T) {
	s := newStore(t)
	rules := make([]bucket.Rule, 10)
	for i := range rules {
		rules[i] = bucket.Rule{Key: fmt.Sprintf("r%d", i), RefillRate: 1, Capacity: 10, Credit: 10}
	}
	if err := s.PutAll(rules); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Count(); n != 10 {
		t.Fatalf("count = %d", n)
	}
	// PutAll with an invalid rule fails fast.
	if err := s.PutAll([]bucket.Rule{{Key: ""}}); err == nil {
		t.Fatal("invalid rule accepted")
	}
}
