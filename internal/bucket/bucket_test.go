package bucket

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Unix(1_000_000, 0)

func TestRuleValidate(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		ok   bool
	}{
		{"valid", Rule{Key: "k", RefillRate: 10, Capacity: 100, Credit: 50}, true},
		{"full", Rule{Key: "k", RefillRate: 10, Capacity: 100, Credit: 100}, true},
		{"deny-all", DenyAll("k"), true},
		{"empty key", Rule{RefillRate: 1, Capacity: 1}, false},
		{"negative rate", Rule{Key: "k", RefillRate: -1, Capacity: 1}, false},
		{"negative capacity", Rule{Key: "k", RefillRate: 1, Capacity: -1}, false},
		{"credit above capacity", Rule{Key: "k", RefillRate: 1, Capacity: 10, Credit: 11}, false},
		{"negative credit", Rule{Key: "k", RefillRate: 1, Capacity: 10, Credit: -1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.rule.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestLimitedGuestStartsFull(t *testing.T) {
	r := LimitedGuest("g", 10, 100)
	if r.Credit != 100 || r.Capacity != 100 || r.RefillRate != 10 {
		t.Fatalf("unexpected guest rule: %+v", r)
	}
}

func TestBucketStartsFull(t *testing.T) {
	b := NewFull("k", 100, 1000, t0)
	if got := b.Credit(t0); got != 1000 {
		t.Fatalf("initial credit = %v, want 1000", got)
	}
}

func TestConsumeDepletes(t *testing.T) {
	b := NewFull("k", 0, 3, t0)
	for i := 0; i < 3; i++ {
		if !b.Allow(t0) {
			t.Fatalf("request %d denied with credit remaining", i)
		}
	}
	if b.Allow(t0) {
		t.Fatal("request admitted with empty bucket")
	}
	if got := b.Credit(t0); got != 0 {
		t.Fatalf("credit = %v, want 0", got)
	}
}

func TestDenyAllNeverAdmits(t *testing.T) {
	b := New(DenyAll("k"), t0)
	for i := 0; i < 10; i++ {
		if b.Allow(t0.Add(time.Duration(i) * time.Hour)) {
			t.Fatal("deny-all bucket admitted a request")
		}
	}
}

func TestLazyRefillEquationOne(t *testing.T) {
	// f(t) = C + (A-B)t with A=10/s, start full at C=100, consume nothing:
	// credit stays clamped at C.
	b := NewFull("k", 10, 100, t0)
	if got := b.Credit(t0.Add(time.Hour)); got != 100 {
		t.Fatalf("credit = %v, want clamp at 100", got)
	}
	// Drain fully, then credit = A*t until the clamp.
	for i := 0; i < 100; i++ {
		if !b.Allow(t0) {
			t.Fatalf("drain request %d denied", i)
		}
	}
	if got := b.Credit(t0.Add(2 * time.Second)); math.Abs(got-20) > 1e-9 {
		t.Fatalf("credit after 2s = %v, want 20", got)
	}
	if got := b.Credit(t0.Add(time.Hour)); got != 100 {
		t.Fatalf("credit after 1h = %v, want clamp at 100", got)
	}
}

func TestBurstThenSteadyState(t *testing.T) {
	// Paper example: rate 100/s, capacity 1000. A full bucket allows a burst
	// of 500/s for 10s (5000 requests = 1000 credit + 100*10*... no: 1000 +
	// 100/s*10s = 2000 admitted over 10s). Verify total admitted over the
	// window equals capacity + rate*elapsed.
	b := NewFull("k", 100, 1000, t0)
	admitted := 0
	// Offer 500 req/s for 10 seconds in 10ms steps (5 per step).
	for step := 0; step < 1000; step++ {
		now := t0.Add(time.Duration(step) * 10 * time.Millisecond)
		for r := 0; r < 5; r++ {
			if b.Allow(now) {
				admitted++
			}
		}
	}
	want := 1000 + 100*10 // capacity + refill over 10s
	if math.Abs(float64(admitted-want)) > 2 {
		t.Fatalf("admitted = %d, want ~%d", admitted, want)
	}
}

func TestTickRefillOnlyOnRefill(t *testing.T) {
	b := NewFull("k", 10, 10, t0, WithTickRefill())
	for i := 0; i < 10; i++ {
		if !b.Allow(t0) {
			t.Fatalf("drain request %d denied", i)
		}
	}
	// Time passes but nobody ticks: still empty.
	if b.Allow(t0.Add(time.Minute)) {
		t.Fatal("tick bucket refilled without Refill call")
	}
	b.Refill(t0.Add(time.Minute))
	if got := b.Credit(t0.Add(time.Minute)); got != 10 {
		t.Fatalf("credit after tick = %v, want 10", got)
	}
}

func TestClockBackwardsDoesNotInflate(t *testing.T) {
	b := NewFull("k", 100, 100, t0)
	for i := 0; i < 100; i++ {
		b.Allow(t0)
	}
	// Clock jumps back one hour; credit must not grow and future refill must
	// anchor at the earlier instant without double-counting.
	if got := b.Credit(t0.Add(-time.Hour)); got != 0 {
		t.Fatalf("credit after backwards jump = %v, want 0", got)
	}
	if got := b.Credit(t0.Add(-time.Hour + time.Second)); math.Abs(got-100) > 1e-9 {
		t.Fatalf("credit 1s later = %v, want 100", got)
	}
}

func TestSetCreditClamps(t *testing.T) {
	b := NewFull("k", 1, 50, t0)
	b.SetCredit(9999, t0)
	if got := b.Credit(t0); got != 50 {
		t.Fatalf("credit = %v, want clamp at 50", got)
	}
	b.SetCredit(-3, t0)
	if got := b.Credit(t0); got != 0 {
		t.Fatalf("credit = %v, want clamp at 0", got)
	}
}

func TestUpdatePreservesAccruedCredit(t *testing.T) {
	b := NewFull("k", 10, 100, t0)
	for i := 0; i < 100; i++ {
		b.Allow(t0)
	}
	// 5 seconds accrue 50 credits, then the rule is updated.
	b.Update(1, 40, t0.Add(5*time.Second))
	// Accrued 50 clamped to new capacity 40.
	if got := b.Credit(t0.Add(5 * time.Second)); got != 40 {
		t.Fatalf("credit after update = %v, want 40", got)
	}
	if b.RefillRate() != 1 || b.Capacity() != 40 {
		t.Fatalf("geometry = %v/%v", b.RefillRate(), b.Capacity())
	}
}

func TestTryConsumeNonPositive(t *testing.T) {
	b := NewFull("k", 1, 10, t0)
	if b.TryConsume(0, t0) {
		t.Fatal("consumed zero credits")
	}
	if b.TryConsume(-5, t0) {
		t.Fatal("consumed negative credits")
	}
	if got := b.Credit(t0); got != 10 {
		t.Fatalf("credit changed: %v", got)
	}
}

func TestTryConsumeMoreThanOne(t *testing.T) {
	b := NewFull("k", 0, 10, t0)
	if !b.TryConsume(7, t0) {
		t.Fatal("batch consume denied")
	}
	if b.TryConsume(4, t0) {
		t.Fatal("over-consume allowed")
	}
	if !b.TryConsume(3, t0) {
		t.Fatal("exact remaining denied")
	}
}

func TestRuleSnapshotRoundTrip(t *testing.T) {
	b := NewFull("k", 5, 100, t0)
	b.TryConsume(30, t0)
	r := b.Rule("k", t0)
	if r.Key != "k" || r.RefillRate != 5 || r.Capacity != 100 || r.Credit != 70 {
		t.Fatalf("snapshot = %+v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("snapshot invalid: %v", err)
	}
	// Restore elsewhere and continue.
	b2 := New(r, t0)
	if got := b2.Credit(t0); got != 70 {
		t.Fatalf("restored credit = %v, want 70", got)
	}
}

// Property: credit is always within [0, capacity] regardless of operation
// sequence (paper equation 2).
func TestCreditInvariantProperty(t *testing.T) {
	type op struct {
		Kind    uint8
		Amount  float64
		AfterMS uint16
	}
	f := func(rate, capacity float64, ops []op) bool {
		rate = math.Abs(math.Mod(rate, 1000))
		capacity = math.Abs(math.Mod(capacity, 10000))
		b := NewFull("k", rate, capacity, t0)
		now := t0
		for _, o := range ops {
			now = now.Add(time.Duration(o.AfterMS) * time.Millisecond)
			amt := math.Abs(math.Mod(o.Amount, capacity+10))
			switch o.Kind % 4 {
			case 0:
				b.TryConsume(amt, now)
			case 1:
				b.Refill(now)
			case 2:
				b.SetCredit(o.Amount, now)
			case 3:
				b.Allow(now)
			}
			c := b.Credit(now)
			if c < 0 || c > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: with zero refill, total admitted credit never exceeds initial
// capacity (conservation).
func TestConservationProperty(t *testing.T) {
	f := func(capacity float64, requests []float64) bool {
		capacity = math.Abs(math.Mod(capacity, 1000))
		b := NewFull("k", 0, capacity, t0)
		var spent float64
		for _, r := range requests {
			amt := math.Abs(math.Mod(r, 50)) + 0.001
			if b.TryConsume(amt, t0) {
				spent += amt
			}
		}
		return spent <= capacity+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentConsumeConservation(t *testing.T) {
	// 8 goroutines race to consume from a bucket with 10k credits and no
	// refill; exactly 10k requests must be admitted in total.
	b := NewFull("k", 0, 10000, t0)
	var wg sync.WaitGroup
	total := new(int64)
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < 5000; i++ {
				if b.Allow(t0) {
					local++
				}
			}
			mu.Lock()
			*total += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if *total != 10000 {
		t.Fatalf("admitted = %d, want exactly 10000", *total)
	}
}
