// Package bucket implements the leaky-bucket QoS algorithm at the heart of
// Janus (paper §II-C, Fig 3).
//
// Each QoS rule is represented by one bucket with a capacity C and a refill
// rate A (credits per second — the access rate the user purchased). The
// available credit f(t) follows equation (1) of the paper,
//
//	f(t) = C + (A - B) * t
//
// clamped per equation (2) to 0 <= f(t) <= C, where B is the consume rate.
// Credit accumulates while the user is idle, permitting occasional bursts up
// to C, and depletes to zero under sustained overload, throttling the user
// to exactly A requests per second.
//
// Buckets support two refill disciplines:
//
//   - Lazy: credit owed since the last interaction is applied at consume
//     time. This is exact at any instant and is the default.
//   - Tick: a housekeeping goroutine calls Refill periodically (the paper's
//     "house-keeping thread ... refills the leaky buckets ... with
//     predefined intervals"). Between ticks the credit is a floor of the
//     exact value.
//
// All methods are safe for concurrent use.
package bucket

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Rule describes the QoS contract for one key: the leaky bucket geometry
// plus the key itself. It mirrors the four-column qos_rules database table
// of the paper (§III-D): key, refill rate, capacity, remaining credit.
type Rule struct {
	// Key is the QoS key (user id, IP address, user+database, ...).
	Key string
	// RefillRate is the purchased access rate in credits per second.
	RefillRate float64
	// Capacity is the maximum credit the bucket may hold.
	Capacity float64
	// Credit is the remaining credit (used when loading from a checkpoint;
	// a fresh rule normally starts with Credit == Capacity).
	Credit float64
}

// Validate reports whether the rule's parameters are usable.
func (r Rule) Validate() error {
	switch {
	case r.Key == "":
		return fmt.Errorf("bucket: rule has empty key")
	case math.IsNaN(r.RefillRate) || math.IsNaN(r.Capacity) || math.IsNaN(r.Credit):
		// NaN slips through every ordered comparison below, so it must be
		// rejected explicitly: a NaN credit or capacity poisons clamp().
		return fmt.Errorf("bucket: rule %q has NaN parameter", r.Key)
	case r.RefillRate < 0:
		return fmt.Errorf("bucket: rule %q has negative refill rate %v", r.Key, r.RefillRate)
	case r.Capacity < 0:
		return fmt.Errorf("bucket: rule %q has negative capacity %v", r.Key, r.Capacity)
	case r.Credit < 0 || r.Credit > r.Capacity:
		return fmt.Errorf("bucket: rule %q has credit %v outside [0,%v]", r.Key, r.Credit, r.Capacity)
	default:
		return nil
	}
}

// DenyAll is the default rule combination that denies access (paper §II-D:
// "zero capacity and zero refill rate to deny access").
func DenyAll(key string) Rule { return Rule{Key: key} }

// LimitedGuest is the default rule combination that grants limited access
// (paper §II-D: "a small capacity and a small refill rate").
func LimitedGuest(key string, rate, capacity float64) Rule {
	return Rule{Key: key, RefillRate: rate, Capacity: capacity, Credit: capacity}
}

// Bucket is a concurrency-safe leaky bucket with constant-rate refill.
type Bucket struct {
	mu         sync.Mutex
	capacity   float64
	refillRate float64 // credits per second
	reserved   float64 // refill delegated to credit leases (internal/lease)
	credit     float64
	last       time.Time // instant credit was last brought current
	lazy       bool      // apply elapsed refill on every interaction
}

// Option configures a Bucket.
type Option func(*Bucket)

// WithTickRefill disables lazy refill; credit then only grows when Refill is
// called (housekeeping-thread discipline).
func WithTickRefill() Option { return func(b *Bucket) { b.lazy = false } }

// New creates a bucket from a rule. If the rule carries no explicit credit
// and was not loaded from a checkpoint, pass rule.Credit = rule.Capacity for
// the paper's "initially fully filled" behaviour. now anchors the refill
// clock.
func New(rule Rule, now time.Time, opts ...Option) *Bucket {
	b := &Bucket{
		capacity:   rule.Capacity,
		refillRate: rule.RefillRate,
		credit:     clamp(rule.Credit, rule.Capacity),
		last:       now,
		lazy:       true,
	}
	for _, o := range opts {
		o(b)
	}
	return b
}

// NewFull creates a bucket that starts at full capacity.
func NewFull(key string, rate, capacity float64, now time.Time, opts ...Option) *Bucket {
	return New(Rule{Key: key, RefillRate: rate, Capacity: capacity, Credit: capacity}, now, opts...)
}

func clamp(v, capacity float64) float64 {
	if v < 0 {
		return 0
	}
	if v > capacity {
		return capacity
	}
	return v
}

// advanceLocked brings credit current to now. Callers must hold b.mu.
func (b *Bucket) advanceLocked(now time.Time) {
	if now.Before(b.last) {
		// Clock went backwards (or an out-of-order call): keep credit,
		// re-anchor so a future advance does not double-refill.
		b.last = now
		return
	}
	elapsed := now.Sub(b.last).Seconds()
	rate := b.refillRate - b.reserved
	if rate < 0 {
		rate = 0
	}
	b.credit = clamp(b.credit+elapsed*rate, b.capacity)
	b.last = now
}

// TryConsume attempts to spend n credits at time now. It returns true and
// deducts the credit when at least n credits are available (paper: "If the
// current credit is greater than zero, it returns TRUE"). n must be > 0.
//
//janus:hotpath
func (b *Bucket) TryConsume(n float64, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lazy {
		b.advanceLocked(now)
	}
	if b.credit >= n && n > 0 {
		b.credit -= n
		return true
	}
	return false
}

// Allow is TryConsume(1, now): one API call costs one credit.
func (b *Bucket) Allow(now time.Time) bool { return b.TryConsume(1, now) }

// Refill brings the credit current to now; used by the housekeeping thread
// under the tick discipline (it is harmless, and a no-op beyond clock
// advancement, under the lazy discipline).
func (b *Bucket) Refill(now time.Time) {
	b.mu.Lock()
	b.advanceLocked(now)
	b.mu.Unlock()
}

// Credit returns the credit available at time now.
func (b *Bucket) Credit(now time.Time) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lazy {
		b.advanceLocked(now)
	}
	return b.credit
}

// SetCredit overwrites the remaining credit (clamped to [0, capacity]);
// used when restoring from a database checkpoint.
func (b *Bucket) SetCredit(credit float64, now time.Time) {
	b.mu.Lock()
	b.credit = clamp(credit, b.capacity)
	b.last = now
	b.mu.Unlock()
}

// Update changes the bucket geometry in place when the rule is edited in the
// database (paper §III-C: "the corresponding leaky bucket ... is updated
// with the latest values"). Credit is clamped to the new capacity; the
// refill clock is first brought current so no accrued credit is lost.
func (b *Bucket) Update(rate, capacity float64, now time.Time) {
	b.mu.Lock()
	if b.lazy {
		b.advanceLocked(now)
	}
	b.refillRate = rate
	b.capacity = capacity
	b.credit = clamp(b.credit, capacity)
	b.mu.Unlock()
}

// Reserve delegates delta credits/second of the refill rate to an external
// holder (a credit lease, internal/lease): the bucket's own refill drops by
// delta while the holder refills a local bucket at delta, conserving the
// combined rate. It fails — without reserving anything — when the total
// reservation would exceed the nominal refill rate, so leases can never mint
// refill that the rule does not grant. Credit is brought current first, so
// refill accrued before the reservation is kept.
//
//janus:hotpath
func (b *Bucket) Reserve(delta float64, now time.Time) bool {
	if delta <= 0 || math.IsNaN(delta) {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lazy {
		b.advanceLocked(now)
	}
	if b.reserved+delta > b.refillRate {
		return false
	}
	b.reserved += delta
	return true
}

// Release returns delta credits/second of previously reserved refill rate.
// Over-release is clamped to zero (safe: it can only under-refill).
func (b *Bucket) Release(delta float64, now time.Time) {
	if delta <= 0 || math.IsNaN(delta) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lazy {
		b.advanceLocked(now)
	}
	b.reserved -= delta
	if b.reserved < 0 {
		b.reserved = 0
	}
}

// ReservedRate returns the refill rate currently delegated to leases.
func (b *Bucket) ReservedRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.reserved
}

// Capacity returns the bucket capacity C.
func (b *Bucket) Capacity() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// RefillRate returns the refill rate A in credits per second.
func (b *Bucket) RefillRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.refillRate
}

// Rule snapshots the bucket as a Rule with the given key, bringing credit
// current to now first. Used for checkpointing to the database.
func (b *Bucket) Rule(key string, now time.Time) Rule {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.lazy {
		b.advanceLocked(now)
	}
	return Rule{Key: key, RefillRate: b.refillRate, Capacity: b.capacity, Credit: b.credit}
}
