package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// batchCfg turns coalescing on with room to observe real fan-in.
func batchCfg(h *metrics.Histogram) Config {
	return Config{
		Timeout:    100 * time.Millisecond,
		Retries:    5,
		MaxBatch:   32,
		MaxLinger:  200 * time.Microsecond,
		BatchSizes: h,
	}
}

// Concurrent callers to one backend must coalesce: with 32 goroutines
// hammering a single client, at least one flushed datagram has to carry
// multiple entries, and every caller still gets its own correct verdict.
func TestCoalescingFormsBatches(t *testing.T) {
	hist := metrics.NewHistogram()
	_, c := startPair(t, batchCfg(hist))
	const workers = 32
	const per = 50
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key, want := "alice", true
				if (w+i)%3 == 0 {
					key, want = "bob", false
				}
				resp, err := c.Do(wire.Request{Key: key, Cost: 1})
				if err != nil || resp.Allow != want {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d mismatched responses under coalescing", failures.Load())
	}
	if hist.Count() == 0 {
		t.Fatal("batch-size histogram never recorded a flush")
	}
	if max := hist.Max(); max < 2 {
		t.Fatalf("no multi-entry batch formed under %d concurrent workers (max batch = %d)", workers, max)
	}
	if max := hist.Max(); max > 32 {
		t.Fatalf("batch exceeded MaxBatch: %d", max)
	}
}

// A sequential caller must stay on the singleton fast path: no datagram
// carries more than one entry and (since a batch of one is byte-identical
// to the legacy frame) nothing lingers waiting for company.
func TestSingletonFastPathWhenUncontended(t *testing.T) {
	hist := metrics.NewHistogram()
	_, c := startPair(t, batchCfg(hist))
	for i := 0; i < 50; i++ {
		resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
		if err != nil || !resp.Allow {
			t.Fatalf("request %d: resp=%+v err=%v", i, resp, err)
		}
	}
	if hist.Count() == 0 {
		t.Fatal("batch-size histogram never recorded a flush")
	}
	if max := hist.Max(); max != 1 {
		t.Fatalf("sequential caller produced a batch of %d, want all singletons", max)
	}
}

// oldServer is a pre-batching janusd: a raw UDP loop that knows only the
// legacy singleton codec (wire.DecodeRequest / wire.AppendResponse). Per the
// trailing-optional-field convention it answers entry 0 of any batched frame
// and ignores the batch section entirely.
func oldServer(t *testing.T) string {
	t.Helper()
	laddr, _ := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	raw, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })
	go func() {
		buf := make([]byte, 65536)
		out := make([]byte, 0, 64)
		for {
			n, addr, err := raw.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequest(buf[:n])
			if err != nil {
				continue
			}
			resp := echoHandler(req)
			resp.ID = req.ID
			out, _ = wire.AppendResponse(out[:0], resp)
			raw.WriteToUDP(out, addr)
		}
	}()
	return raw.LocalAddr().String()
}

// Forward compatibility (mixed-version cluster): a batching router pointed at
// a pre-batching janusd must stay CORRECT. Uncontended traffic is entirely
// singleton frames (byte-identical to legacy) and works at full speed;
// contended traffic degrades to entry-0-answered-per-datagram, with the other
// entries recovering through their normal retry path.
func TestOldServerForwardCompat(t *testing.T) {
	addr := oldServer(t)
	hist := metrics.NewHistogram()
	c, err := Dial(addr, batchCfg(hist))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Sequential: pure singleton frames, no degradation.
	for i := 0; i < 20; i++ {
		resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
		if err != nil || !resp.Allow {
			t.Fatalf("sequential request %d against old server: resp=%+v err=%v", i, resp, err)
		}
	}

	// Contended: some frames will batch; only entry 0 is answered, the rest
	// must recover by retrying (each retry re-enqueues and will usually go
	// out alone or at the head of a frame).
	const workers = 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key, want := "alice", true
				if w%2 == 1 {
					key, want = "bob", false
				}
				resp, err := c.Do(wire.Request{Key: key, Cost: 1})
				if err != nil || resp.Allow != want {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed against a pre-batching server", failures.Load())
	}
}

// The batched variant of TestRetryBudgetBoundsTotalLatency: with coalescing
// on and the batch flush path stalled by a delay failpoint, one exchange may
// take at most MaxLinger + Retries × Timeout. The linger spends the caller's
// fixed retry budget (the deadline is set before the first enqueue), so
// batching cannot widen the paper's 100 µs × 5 worst-case envelope.
func TestBatchedRetryBudgetBoundsTotalLatency(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDropEvery(1) // server never answers: every attempt must time out
	cfg := Config{
		Timeout:   2 * time.Millisecond,
		Retries:   5,
		MaxBatch:  32,
		MaxLinger: 500 * time.Microsecond,
	}
	c, err := Dial(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer failpoint.DisarmAll()
	// Stall every batched flush by 3 ms — more than Timeout + MaxLinger, so
	// a buggy per-attempt budget (fresh Timeout after each stall) would need
	// ≥ 5 × (3+2) = 25 ms of real sleeps and cannot pass the bound below.
	if err := failpoint.Arm("transport/client/batch", failpoint.Action{
		Kind: failpoint.Delay, Delay: 3 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, attempts, derr := c.DoAttempts(wire.Request{Key: "alice", Cost: 1})
	el := time.Since(start)
	if !errors.Is(derr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", derr)
	}
	// Budget: MaxLinger + Retries × Timeout = 10.5 ms. The last attempt may
	// overshoot by one in-flight stall plus a per-try timeout; allow ~2× for
	// scheduling noise.
	if el >= 22*time.Millisecond {
		t.Fatalf("batched Do took %v, want < 22ms (budget %v)", el, cfg.MaxLinger+5*cfg.Timeout)
	}
	// The flush stall is asynchronous (the caller's wait, not its send, is
	// what's budgeted), so all Retries attempts fit — but never more.
	if attempts > 5 {
		t.Fatalf("attempts = %d, want <= 5 (the budget is fixed up front)", attempts)
	}
}

// Partial-batch drop: the transport/client/batch Drop action truncates every
// flush to its head half, so tail entries silently vanish before the wire.
// Callers must recover through retries with no misdelivery.
func TestPartialBatchDropRecovery(t *testing.T) {
	hist := metrics.NewHistogram()
	_, c := startPair(t, batchCfg(hist))
	defer failpoint.DisarmAll()
	if err := failpoint.Arm("transport/client/batch", failpoint.Action{
		Kind: failpoint.Drop, P: 0.5, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	const workers = 16
	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key, want := "alice", true
				if w%2 == 1 {
					key, want = "bob", false
				}
				resp, err := c.Do(wire.Request{Key: key, Cost: 1})
				if err != nil || resp.Allow != want {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d requests failed to recover from partial-batch drops", failures.Load())
	}
}

// The coalesce-sojourn histogram must observe every delivered entry's
// enqueue→wire wait — the singleton fast path included (its sojourn is just
// small) — and stay within the linger bound that the latency discipline
// promises.
func TestCoalesceSojournRecorded(t *testing.T) {
	soj := metrics.NewHistogram()
	cfg := batchCfg(metrics.NewHistogram())
	cfg.CoalesceSojourn = soj
	_, c := startPair(t, cfg)

	const n = 16
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _ = c.Do(wire.Request{Key: "alice", Cost: 1})
			}
		}()
	}
	wg.Wait()
	if soj.Count() == 0 {
		t.Fatal("coalesce-sojourn histogram never recorded a delivery")
	}
	if min := soj.Min(); min < 0 {
		t.Fatalf("negative coalesce sojourn %dns recorded", min)
	}
}
