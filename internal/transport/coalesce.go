package transport

// Per-backend fan-in coalescing (DESIGN.md §10). Every transport.Client is
// the router's dedicated socket to ONE QoS server, so concurrent requests
// routed to the same backend meet here; the coalescer merges them into one
// batched datagram (wire.FlagBatched) of up to MaxBatch entries, amortizing
// the send/recv syscall pair and the server's FIFO enqueue across the batch.
//
// Latency discipline (the bufferbloat guard): coalescing must never trade
// throughput for unbounded queue delay, so every wait is bounded.
//
//   - Singleton fast path: with no contention the flusher sends a lone
//     request immediately — no linger, and the frame is byte-identical to
//     the legacy singleton.
//   - Natural batching: requests arriving while a flush's syscall is in
//     flight accumulate and leave together on the next flush, for zero
//     added latency.
//   - Adaptive linger: only while MORE exchanges are in flight than entries
//     are pending (a fan-in regime: answered callers are about to loop
//     around, so company is plausible) will the flusher hold a PARTIAL
//     batch open, and then for at most MaxLinger, waiting for it to fill.
//     A lone caller always has inflight == pending == 1 and never lingers.
//
// MaxLinger is clamped to the per-attempt Timeout and consumes the caller's
// fixed Retries × Timeout budget (the deadline is set before the first
// enqueue), so the paper's 100 µs × 5 worst-case envelope still holds with
// batching on — see TestRetryBudgetBoundsTotalLatency.

import (
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// fpClientBatch sits on the coalescer's flush path, evaluated once per
// batched datagram with the backend address as the peer. Drop discards the
// TAIL HALF of the batch before encoding (a partial-batch drop: the surviving
// head is delivered, the dropped entries silently time out and retry), Dup
// sends the datagram twice, Partition drops the whole flush for matching
// peers, and Delay stalls the flush (inflating the observable linger).
var fpClientBatch = failpoint.New("transport/client/batch")

// maxBatchBytes bounds the encoded size of one coalesced datagram to a
// conservative single-MTU budget; a batch is flushed early rather than grown
// past it (a lone oversized key still goes out alone — the singleton path
// imposes no budget, matching the legacy behaviour).
const maxBatchBytes = 1400

// coalescer merges concurrent requests to one backend into batched frames.
type coalescer struct {
	c *Client

	mu      sync.Mutex
	pending []wire.Request
	// pendingAt holds the enqueue timestamp of each pending entry (parallel
	// to pending) when Config.CoalesceSojourn is set; zeros otherwise. It
	// measures the enqueue→flush sojourn — the observable cost of the
	// adaptive linger.
	pendingAt []int64

	work chan struct{} // cap 1: pending became non-empty
	full chan struct{} // cap 1: pending reached MaxBatch while lingering

	buf  []byte // reused encode buffer, owned by flushLoop
	done chan struct{}
}

func newCoalescer(c *Client) *coalescer {
	co := &coalescer{
		c:    c,
		work: make(chan struct{}, 1),
		full: make(chan struct{}, 1),
		buf:  make([]byte, 0, maxBatchBytes),
		done: make(chan struct{}),
	}
	go co.flushLoop()
	return co
}

// enqueue hands one request (attempt) to the flusher. It never blocks: the
// caller immediately goes to wait on its response channel, exactly as it
// would after a direct socket write.
//
// stops once the slice reaches the fan-in high-water mark.
//
//janus:hotpath steady state appends into the retained pending slice; growth
func (co *coalescer) enqueue(req wire.Request) {
	var at int64
	if co.c.cfg.CoalesceSojourn != nil {
		at = time.Now().UnixNano()
	}
	co.mu.Lock()
	co.pending = append(co.pending, req)
	co.pendingAt = append(co.pendingAt, at)
	n := len(co.pending)
	co.mu.Unlock()
	signal(co.work)
	if n >= co.c.cfg.MaxBatch {
		signal(co.full)
	}
}

func signal(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// flushLoop is the per-backend flusher goroutine: it drains pending requests
// into batched datagrams until the client closes.
func (co *coalescer) flushLoop() {
	defer close(co.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-co.c.quit:
			return
		case <-co.work:
		}
		for {
			co.mu.Lock()
			n := len(co.pending)
			if n == 0 {
				co.mu.Unlock()
				break
			}
			if n < co.c.cfg.MaxBatch && co.c.inflight() > n {
				// Fan-in regime (waiters outnumber pending entries): hold the
				// partial batch open for at most MaxLinger, hoping to fill
				// it. The full signal cuts the wait short the instant
				// MaxBatch entries are pending.
				co.mu.Unlock()
				timer.Reset(co.c.cfg.MaxLinger)
				select {
				case <-co.full:
					if !timer.Stop() {
						<-timer.C
					}
				case <-timer.C:
				case <-co.c.quit:
					return
				}
				co.mu.Lock()
			}
			batch, batchAt, rest, restAt := co.take()
			co.pending, co.pendingAt = rest, restAt
			co.mu.Unlock()
			co.flush(batch, batchAt)
		}
	}
}

// take selects the next batch from pending (called with mu held): up to
// MaxBatch entries within the byte budget, preserving arrival order. An
// entry whose ID duplicates one already taken (a retry racing its own
// earlier attempt, or an armed dup failpoint) stays pending for the next
// flush — one frame must never carry the same ID twice, the decoders reject
// that as a replay.
func (co *coalescer) take() (batch []wire.Request, batchAt []int64, rest []wire.Request, restAt []int64) {
	size := 0
	for i, e := range co.pending {
		esz := batchEntrySize(e)
		if len(batch) > 0 && (len(batch) >= co.c.cfg.MaxBatch || size+esz > maxBatchBytes) {
			rest = append(rest, co.pending[i:]...)
			restAt = append(restAt, co.pendingAt[i:]...)
			break
		}
		if containsID(batch, e.ID) {
			rest = append(rest, e)
			restAt = append(restAt, co.pendingAt[i])
			continue
		}
		batch = append(batch, e)
		batchAt = append(batchAt, co.pendingAt[i])
		size += esz
	}
	return batch, batchAt, rest, restAt
}

// batchEntrySize is a worst-case wire-size estimate for one batch entry
// (the extra-entry encoding is a superset of the head encoding).
func batchEntrySize(e wire.Request) int {
	sz := 15 + len(e.Key) // id + flags + cost + keylen + key
	if e.TraceID != 0 {
		sz += 8
	}
	return sz
}

func containsID(batch []wire.Request, id uint64) bool {
	for _, e := range batch {
		if e.ID == id {
			return true
		}
	}
	return false
}

// flush encodes and sends one batch. Send failures cannot be reported to the
// N callers waiting on their response channels, so they are counted
// (FlushErrors) and the callers recover through their normal retry path.
//
//janus:hotpath
func (co *coalescer) flush(batch []wire.Request, batchAt []int64) {
	sends := 1
	if fpClientBatch.Armed() {
		switch o := fpClientBatch.EvalPeer(co.c.raddr); o.Kind {
		case failpoint.Drop:
			// Partial-batch drop: the tail half never reaches the wire.
			batch = batch[:len(batch)/2]
			batchAt = batchAt[:len(batch)]
		case failpoint.Partition:
			sends = 0
		case failpoint.Dup:
			sends = 2
		case failpoint.Delay:
			o.Sleep()
		case failpoint.Error:
			co.c.flushErrs.Add(1)
			sends = 0
		}
	}
	if len(batch) == 0 || sends == 0 {
		return
	}
	pkt, err := wire.AppendBatchRequest(co.buf[:0], wire.BatchRequest{Entries: batch})
	if err != nil {
		// Unreachable with DoAttempts-validated entries; counted so an
		// encoder regression cannot silently strand callers.
		co.c.flushErrs.Add(1)
		return
	}
	co.buf = pkt[:0]
	if h := co.c.cfg.BatchSizes; h != nil {
		h.Record(int64(len(batch)))
	}
	for i := 0; i < sends; i++ {
		//lint:ignore deadline fire-and-forget UDP send; Write on an unconnected-buffer datagram socket does not block on the peer
		if _, err := co.c.conn.Write(pkt); err != nil {
			co.c.flushErrs.Add(1)
			return
		}
	}
	if h := co.c.cfg.CoalesceSojourn; h != nil {
		// Enqueue→wire sojourn of every delivered entry. Entries lost to a
		// failpoint or a dead socket never complete their sojourn; their
		// exchange recovers through the retry path, which bypasses the
		// coalescer.
		now := time.Now().UnixNano()
		for _, at := range batchAt {
			if at > 0 {
				h.Record(now - at)
			}
		}
	}
}
