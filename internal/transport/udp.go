// Package transport implements the UDP communication discipline between the
// request router and the QoS server (paper §III-B).
//
// The paper chooses UDP over TCP because admission-control traffic is a
// very high volume of tiny request/response exchanges, and "the overhead of
// opening and closing a large volume of short-lived TCP connections is too
// expensive". UDP is unreliable, so the router compensates with a short
// per-attempt timeout and a bounded number of retries: "we use a
// 100-microsecond communication timeout and a maximum number of 5 retries".
// Requests are idempotent-enough for retransmission (a retried consume may
// in the worst case double-charge one credit, which the paper accepts).
//
// Client is safe for concurrent use: each in-flight request gets a unique
// ID, responses are matched by ID, and a single reader goroutine fans
// responses out to waiters.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Fault-injection sites on the UDP hot paths (see internal/failpoint and
// the chaos suite). Disarmed cost is one atomic load per operation.
var (
	fpClientSend = failpoint.New("transport/client/send")
	fpClientRecv = failpoint.New("transport/client/recv")
	fpServerRecv = failpoint.New("transport/server/recv")
)

// Defaults from the paper (§III-B).
const (
	// DefaultTimeout is the per-attempt response timeout. The paper uses
	// 100 µs inside one EC2 availability zone; on loopback with Go
	// schedulers in the path the same discipline applies.
	DefaultTimeout = 100 * time.Microsecond
	// DefaultRetries is the maximum number of attempts.
	DefaultRetries = 5
	// DefaultMaxLinger bounds how long the fan-in coalescer may hold a
	// partial batch open once contention has been observed. 200 µs keeps
	// the paper's Retries × Timeout latency envelope intact (the linger is
	// additionally clamped to the per-attempt Timeout and consumes the
	// exchange's fixed budget — see coalesce.go).
	DefaultMaxLinger = 200 * time.Microsecond
)

// ErrTimeout is returned when all attempts expire without a response.
var ErrTimeout = errors.New("transport: request timed out after all retries")

// Config tunes a Client.
type Config struct {
	// Timeout is the per-attempt wait (DefaultTimeout if zero).
	Timeout time.Duration
	// Retries is the maximum number of attempts (DefaultRetries if zero).
	Retries int
	// Delay, when non-nil, is invoked once per attempt and may sleep to
	// model network latency (used by experiments; nil in production).
	Delay func()
	// Stats, when non-nil, shares attempt/timeout/response counters across
	// every client built from this config — the router passes a
	// registry-backed set so one /metrics page aggregates all its backend
	// sockets. Nil gives the client private counters.
	Stats *Stats
	// MaxBatch > 1 enables per-backend fan-in coalescing: concurrent
	// requests on this client are merged into one wire.FlagBatched datagram
	// of up to MaxBatch entries (see coalesce.go). 0 or 1 sends one
	// datagram per attempt — the legacy discipline, and the only safe
	// setting while any receiving QoS server predates the batch decoder.
	MaxBatch int
	// MaxLinger bounds how long a partial batch may wait to fill once
	// contention is observed (DefaultMaxLinger if zero; clamped to
	// Timeout). Meaningful only when MaxBatch > 1.
	MaxLinger time.Duration
	// BatchSizes, when non-nil, records the entry count of every coalesced
	// datagram flushed (the router registers janus_router_batch_size here).
	BatchSizes *metrics.Histogram
	// CoalesceSojourn, when non-nil, records the nanoseconds each request
	// spent inside the coalescer — enqueue to the flush that put it on the
	// wire (the router registers janus_router_coalesce_sojourn_seconds
	// here). Nil skips the timestamping entirely.
	CoalesceSojourn *metrics.Histogram
}

// Stats holds the transport counters. Build a registry-backed set with
// NewStats to expose them on /metrics; the zero-value-free constructor
// newPrivateStats backs a standalone client.
type Stats struct {
	// Attempts counts request datagrams sent, including retries.
	Attempts *metrics.Counter
	// Timeouts counts attempts that expired without a response.
	Timeouts *metrics.Counter
	// Responses counts response datagrams received and decoded.
	Responses *metrics.Counter
}

// NewStats registers the transport counters on reg and returns the shared
// set. Calling it twice with the same registry returns handles to the same
// counters.
func NewStats(reg *metrics.Registry) *Stats {
	return &Stats{
		Attempts:  reg.Counter("janus_transport_attempts_total", "UDP request datagrams sent, including retries"),
		Timeouts:  reg.Counter("janus_transport_timeouts_total", "UDP attempts that expired without a response"),
		Responses: reg.Counter("janus_transport_responses_total", "UDP response datagrams received and decoded"),
	}
}

func newPrivateStats() *Stats {
	return &Stats{Attempts: &metrics.Counter{}, Timeouts: &metrics.Counter{}, Responses: &metrics.Counter{}}
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.Retries <= 0 {
		c.Retries = DefaultRetries
	}
	if c.MaxBatch > 1 {
		if c.MaxBatch > wire.MaxBatchEntries {
			c.MaxBatch = wire.MaxBatchEntries
		}
		if c.MaxLinger <= 0 {
			c.MaxLinger = DefaultMaxLinger
		}
		// A linger longer than the per-attempt timeout would let the batch
		// outwait its own callers; cap it so every attempt can still see
		// its response inside one Timeout.
		if c.MaxLinger > c.Timeout {
			c.MaxLinger = c.Timeout
		}
	}
	return c
}

// Client issues QoS requests to one QoS server address over a single UDP
// socket.
type Client struct {
	cfg    Config
	conn   *net.UDPConn
	raddr  string // resolved peer address, the partition-failpoint key
	nextID atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan wire.Response
	closed  bool

	// stats are private to the client unless Config.Stats shared a set.
	stats *Stats

	// co merges concurrent sends into batched datagrams; nil when
	// MaxBatch <= 1 (the per-attempt legacy send path).
	co        *coalescer
	quit      chan struct{}
	flushErrs atomic.Int64
}

// Dial creates a client bound to the QoS server at addr ("host:port").
func Dial(addr string, cfg Config) (*Client, error) {
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	c := &Client{
		cfg:     cfg.withDefaults(),
		conn:    conn,
		raddr:   raddr.String(),
		waiters: make(map[uint64]chan wire.Response),
		stats:   cfg.Stats,
		quit:    make(chan struct{}),
	}
	if c.stats == nil {
		c.stats = newPrivateStats()
	}
	if c.cfg.MaxBatch > 1 {
		c.co = newCoalescer(c)
	}
	//lint:ignore goleak Close() closes the socket, which unblocks the loop's conn.Read with an error and ends it
	go c.readLoop()
	return c, nil
}

// readLoop drains responses off the socket until the client closes.
//
// Close() closes the socket, which unblocks Read with an error and ends the loop.
//
//janus:deadlined the read blocks by design — it is the client's demultiplexer;
func (c *Client) readLoop() {
	buf := make([]byte, wire.MaxDatagram)
	for {
		n, err := c.conn.Read(buf)
		if err != nil {
			return // socket closed
		}
		// The batch decoder subsumes the legacy singleton format, so one
		// path handles both a batching and a pre-batching server (the
		// latter answers only entry 0 of any batch; the rest retry).
		bresp, err := wire.DecodeBatchResponse(buf[:n])
		if err != nil {
			continue // corrupt datagram; the sender will retry
		}
		if fpClientRecv.Armed() {
			switch o := fpClientRecv.EvalPeer(c.raddr); o.Kind {
			case failpoint.Drop, failpoint.Partition:
				continue // response lost on the wire
			case failpoint.Delay:
				o.Sleep()
			}
		}
		c.stats.Responses.Inc()
		for _, resp := range bresp.Entries {
			c.mu.Lock()
			ch := c.waiters[resp.ID]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- resp:
				default: // duplicate response for an already-answered request
				}
			}
		}
	}
}

// Do sends req and waits for the matching response, retrying per the
// configured discipline. On exhaustion it returns ErrTimeout — the caller
// (the request router) then substitutes its default reply.
func (c *Client) Do(req wire.Request) (wire.Response, error) {
	resp, _, err := c.DoAttempts(req)
	return resp, err
}

// DoAttempts is Do, additionally reporting how many attempts the exchange
// took (1 = no retries). The router records the count in the request's
// trace span — the paper's 100 µs × 5 budget is only explainable per
// request with this number.
func (c *Client) DoAttempts(req wire.Request) (wire.Response, int, error) {
	req.ID = c.nextID.Add(1)
	var packet []byte
	if c.co == nil {
		var err error
		packet, err = wire.EncodeRequest(req)
		if err != nil {
			return wire.Response{}, 0, err
		}
	} else if len(req.Key) > wire.MaxKeyLen {
		// Batched sends encode at flush time; validate here so the caller
		// gets the same error the eager encoder would have returned.
		return wire.Response{}, 0, wire.ErrKeyTooLong
	}
	ch := make(chan wire.Response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Response{}, 0, net.ErrClosed
	}
	c.waiters[req.ID] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.waiters, req.ID)
		c.mu.Unlock()
	}()

	// The whole exchange runs against one budget of Retries × Timeout,
	// fixed before the first attempt. Each attempt waits at most Timeout,
	// and anything that stalls the send side (scheduling, injected delay
	// failpoints, a slow Config.Delay hook) eats into the budget instead of
	// extending it — so 5 retries can never take much more than ~5× the
	// per-try timeout, which is the latency bound the router's default
	// reply promises (§III-B).
	deadline := time.Now().Add(time.Duration(c.cfg.Retries) * c.cfg.Timeout)
	timer := time.NewTimer(c.cfg.Timeout)
	defer timer.Stop()
	attempts := 0
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		attempts = attempt + 1
		if c.cfg.Delay != nil {
			c.cfg.Delay()
		}
		sends := 1
		if fpClientSend.Armed() {
			switch o := fpClientSend.EvalPeer(c.raddr); o.Kind {
			case failpoint.Drop, failpoint.Partition:
				sends = 0 // request lost on the wire; still wait and retry
			case failpoint.Delay:
				o.Sleep()
			case failpoint.Error:
				return wire.Response{}, attempts, o.Err
			case failpoint.Dup:
				sends = 2
			}
		}
		for i := 0; i < sends; i++ {
			c.stats.Attempts.Inc()
			if c.co != nil && attempt == 0 && req.Lease.Op == 0 {
				// Fan-in path: the first attempt rides the per-backend
				// coalescer, leaving the socket inside a batched datagram on
				// the flusher goroutine. Retries bypass it: needing one means
				// the batched send failed this exchange once (loss, a partial-
				// batch drop, or a pre-batching receiver that answers only
				// entry 0), so the retry goes out alone as a legacy frame —
				// the highest-probability path, and what keeps a mixed-version
				// cluster live under contention. Lease-carrying requests also
				// bypass it on the first attempt: the lease section and the
				// batch extension are mutually exclusive on the wire
				// (wire/lease.go), so an ask must travel as a singleton.
				c.co.enqueue(req)
				continue
			}
			if packet == nil {
				var err error
				packet, err = wire.EncodeRequest(req)
				if err != nil {
					return wire.Response{}, attempts, err
				}
			}
			//lint:ignore deadline fire-and-forget UDP send; the bounded wait below is the exchange's real timeout
			if _, err := c.conn.Write(packet); err != nil {
				return wire.Response{}, attempts, fmt.Errorf("transport: send: %w", err)
			}
		}
		wait := time.Until(deadline)
		if wait <= 0 {
			// Budget exhausted before this attempt could wait: count the
			// timeout and stop retrying rather than overrun the bound.
			c.stats.Timeouts.Inc()
			break
		}
		if wait > c.cfg.Timeout {
			wait = c.cfg.Timeout
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case resp := <-ch:
			return resp, attempts, nil
		case <-timer.C:
			c.stats.Timeouts.Inc()
		}
	}
	return wire.Response{}, attempts, ErrTimeout
}

// inflight reports how many exchanges are currently awaiting a response —
// the coalescer's contention signal: more waiters than pending entries means
// this client is in a fan-in regime and a partial batch is worth holding
// open (see flushLoop).
func (c *Client) inflight() int {
	c.mu.Lock()
	n := len(c.waiters)
	c.mu.Unlock()
	return n
}

// Stats reports cumulative attempt/timeout/response counts. When
// Config.Stats shared a counter set, the numbers aggregate every client on
// that set.
func (c *Client) Stats() (attempts, timeouts, responses int64) {
	return c.stats.Attempts.Value(), c.stats.Timeouts.Value(), c.stats.Responses.Value()
}

// FlushErrors reports how many coalesced flushes failed to reach the wire
// (socket write errors or injected batch faults); the affected requests
// recover through their retry path.
func (c *Client) FlushErrors() int64 { return c.flushErrs.Load() }

// Close releases the socket and stops the coalescer's flusher.
func (c *Client) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.quit)
	}
	c.mu.Unlock()
	err := c.conn.Close()
	if c.co != nil {
		<-c.co.done
	}
	return err
}

// Handler processes one decoded request and returns the response to send.
// The request ID is managed by Server.
type Handler func(req wire.Request) wire.Response

// Server is a UDP listener that decodes requests, hands them to a handler,
// and writes responses back to the requester's address. The QoS server
// builds its listener/FIFO/worker pipeline on top of the lower-level
// PacketConn directly; this Server is the simple synchronous variant used
// by tests and small tools.
type Server struct {
	conn    *net.UDPConn
	handler Handler
	wg      sync.WaitGroup
	// DropEvery, when > 0, drops every Nth request (fault injection).
	dropEvery atomic.Int64
	seen      atomic.Int64
	writeErrs atomic.Int64
}

// NewServer starts a synchronous UDP server on addr ("127.0.0.1:0" for an
// ephemeral port).
func NewServer(addr string, handler Handler) (*Server, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{conn: conn, handler: handler}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// SetDropEvery makes the server silently drop every nth datagram (n <= 0
// disables). Used to exercise the retry path.
func (s *Server) SetDropEvery(n int64) { s.dropEvery.Store(n) }

// Addr returns the bound address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// serve is the accept loop: one datagram in, one handler call, one datagram
// out.
//
// socket, which unblocks ReadFromUDP with an error and ends the loop. The
// response send is fire-and-forget UDP — WriteToUDP does not block on the peer.
//
//janus:deadlined the accept-style read blocks by design; Close() closes the
func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, wire.MaxDatagram)
	out := make([]byte, 0, 64)
	for {
		n, raddr, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if d := s.dropEvery.Load(); d > 0 && s.seen.Add(1)%d == 0 {
			continue
		}
		if fpServerRecv.Armed() {
			switch o := fpServerRecv.EvalPeer(raddr.String()); o.Kind {
			case failpoint.Drop, failpoint.Partition:
				continue // request lost before the handler saw it
			case failpoint.Delay:
				o.Sleep()
			}
		}
		breq, err := wire.DecodeBatchRequest(buf[:n])
		if err != nil {
			continue
		}
		resps := make([]wire.Response, len(breq.Entries))
		for i, req := range breq.Entries {
			resp := s.handler(req)
			resp.ID = req.ID
			resps[i] = resp
		}
		// One batched response per batched request (a singleton encodes as
		// the legacy frame). Fire-and-forget (the client retries), but a
		// send the kernel refused is still counted so it cannot hide.
		out, err = wire.AppendBatchResponse(out[:0], wire.BatchResponse{Entries: resps})
		if err != nil {
			s.writeErrs.Add(1)
			continue
		}
		if _, err := s.conn.WriteToUDP(out, raddr); err != nil {
			s.writeErrs.Add(1)
		}
	}
}

// WriteErrors reports how many response sends the kernel refused.
func (s *Server) WriteErrors() int64 { return s.writeErrs.Load() }

// Close stops the server.
func (s *Server) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}
