package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// echoHandler admits keys that start with 'a'.
func echoHandler(req wire.Request) wire.Response {
	return wire.Response{Allow: len(req.Key) > 0 && req.Key[0] == 'a', Status: wire.StatusOK}
}

func startPair(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(srv.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// genericCfg is lenient enough for loopback under CI scheduling noise.
var genericCfg = Config{Timeout: 50 * time.Millisecond, Retries: 5}

func TestRequestResponse(t *testing.T) {
	_, c := startPair(t, genericCfg)
	resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
	if err != nil || !resp.Allow {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	resp, err = c.Do(wire.Request{Key: "bob", Cost: 1})
	if err != nil || resp.Allow {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}

func TestUniqueRequestIDs(t *testing.T) {
	_, c := startPair(t, genericCfg)
	// IDs are assigned internally and must never collide across concurrent
	// callers; exercised implicitly via matched responses.
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := "bob"
				want := false
				if (g+i)%2 == 0 {
					key = "alice"
					want = true
				}
				resp, err := c.Do(wire.Request{Key: key, Cost: 1})
				if err != nil || resp.Allow != want {
					failures.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d mismatched responses", failures.Load())
	}
}

func TestRetryRecoversFromDrops(t *testing.T) {
	srv, c := startPair(t, Config{Timeout: 20 * time.Millisecond, Retries: 5})
	srv.SetDropEvery(2) // drop every second datagram
	for i := 0; i < 20; i++ {
		resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
		if err != nil || !resp.Allow {
			t.Fatalf("request %d: resp=%+v err=%v", i, resp, err)
		}
	}
	attempts, timeouts, _ := c.Stats()
	if timeouts == 0 {
		t.Error("expected some timeouts with 50% drop rate")
	}
	if attempts < 20 {
		t.Errorf("attempts = %d, want > 20", attempts)
	}
}

func TestTimeoutAfterAllRetries(t *testing.T) {
	// Server that drops everything.
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDropEvery(1)
	c, err := Dial(srv.Addr(), Config{Timeout: 2 * time.Millisecond, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Do(wire.Request{Key: "alice", Cost: 1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Worst case per the paper: retries × timeout (500 µs there; scaled here).
	if el := time.Since(start); el < 6*time.Millisecond {
		t.Fatalf("returned after %v, want >= 3 attempts × 2ms", el)
	}
	attempts, timeouts, _ := c.Stats()
	if attempts != 3 || timeouts != 3 {
		t.Fatalf("attempts=%d timeouts=%d, want 3/3", attempts, timeouts)
	}
}

// TestRetryBudgetBoundsTotalLatency is the regression test for the retry
// budget: the total time Do may spend is Retries × Timeout, fixed when the
// exchange starts. Before the fix each attempt took a full fresh Timeout
// AFTER any per-attempt stall, so a slow send path (here a 5 ms injected
// delay) inflated the worst case to Retries × (Timeout + stall) — 35 ms
// here instead of the ~10 ms budget. The caller of Do is the router's
// request path; its latency bound is the whole point of the 100 µs × 5
// discipline (§III-B).
func TestRetryBudgetBoundsTotalLatency(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDropEvery(1) // server never answers: every attempt must time out
	c, err := Dial(srv.Addr(), Config{Timeout: 2 * time.Millisecond, Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer failpoint.DisarmAll()
	if err := failpoint.Arm("transport/client/send", failpoint.Action{
		Kind: failpoint.Delay, Delay: 5 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, attempts, derr := c.DoAttempts(wire.Request{Key: "alice", Cost: 1})
	el := time.Since(start)
	if !errors.Is(derr, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", derr)
	}
	// Budget is 10 ms; the last attempt may overshoot by its stall plus one
	// per-try timeout, so allow 2.5× for scheduling noise. The buggy
	// behaviour needs ≥ 35 ms of real sleeps and cannot pass.
	if el >= 25*time.Millisecond {
		t.Fatalf("Do took %v, want < 25ms (budget 10ms)", el)
	}
	if attempts >= 5 {
		t.Fatalf("attempts = %d, want < 5 (stalled attempts consume budget)", attempts)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Timeout != DefaultTimeout || cfg.Retries != DefaultRetries {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestClientClosed(t *testing.T) {
	_, c := startPair(t, genericCfg)
	c.Close()
	if _, err := c.Do(wire.Request{Key: "alice"}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("err = %v, want net.ErrClosed", err)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("not-an-address", Config{}); err == nil {
		t.Fatal("dial succeeded on bad address")
	}
}

func TestDelayHookInvokedPerAttempt(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetDropEvery(1)
	var calls atomic.Int64
	c, err := Dial(srv.Addr(), Config{
		Timeout: time.Millisecond, Retries: 4,
		Delay: func() { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Do(wire.Request{Key: "alice"})
	if calls.Load() != 4 {
		t.Fatalf("delay calls = %d, want 4", calls.Load())
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv, c := startPair(t, genericCfg)
	// Fire raw garbage at the server; it must survive and keep serving.
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		conn.Write([]byte("garbage datagram"))
	}
	resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
	if err != nil || !resp.Allow {
		t.Fatalf("server wedged by garbage: %+v %v", resp, err)
	}
}

func TestClientIgnoresGarbageResponses(t *testing.T) {
	// A raw UDP socket posing as a server returns garbage then a valid
	// response; the client must skip the garbage and match the real one.
	laddr, _ := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	raw, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		buf := make([]byte, 65536)
		for {
			n, addr, err := raw.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := wire.DecodeRequest(buf[:n])
			if err != nil {
				continue
			}
			raw.WriteToUDP([]byte("junk"), addr)
			pkt, _ := wire.EncodeResponse(wire.Response{ID: req.ID, Allow: true})
			raw.WriteToUDP(pkt, addr)
		}
	}()
	c, err := Dial(raw.LocalAddr().String(), Config{Timeout: 100 * time.Millisecond, Retries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(wire.Request{Key: "x"})
	if err != nil || !resp.Allow {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}

func TestHighConcurrencyThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	_, c := startPair(t, Config{Timeout: 100 * time.Millisecond, Retries: 5})
	const workers = 16
	const per = 500
	var wg sync.WaitGroup
	var errs atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Do(wire.Request{Key: "alice", Cost: 1}); err != nil {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if e := errs.Load(); e > workers*per/100 {
		t.Fatalf("%d/%d requests failed", e, workers*per)
	}
}
