package membership

import (
	"fmt"
	"testing"
)

// BenchmarkPick measures the per-request cost of the two key→backend
// mappings at a typical QoS-tier width. The pick sits on the router's hot
// path, once per admission request.
func BenchmarkPick(b *testing.B) {
	ks := keys(1024)
	for _, p := range []Picker{CRC32Mod{}, JumpHash{}} {
		for _, n := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", p.Kind(), n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := p.Pick(ks[i%len(ks)], n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScaleEventKeysMoved reports, as a metric rather than a timing,
// how many of 100k keys change owner when the tier grows n→n+1 — the cost a
// scale event actually imposes on the handoff protocol.
func BenchmarkScaleEventKeysMoved(b *testing.B) {
	ks := keys(100000)
	for _, p := range []Picker{CRC32Mod{}, JumpHash{}} {
		for _, n := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/n=%d", p.Kind(), n), func(b *testing.B) {
				moved := 0
				for _, k := range ks {
					i, _ := p.Pick(k, n)
					j, _ := p.Pick(k, n+1)
					if i != j {
						moved++
					}
				}
				b.ReportMetric(float64(moved)/float64(len(ks)), "moved-frac")
				b.ReportMetric(0, "ns/op")
			})
		}
	}
}
