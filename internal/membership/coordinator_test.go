package membership

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable clock for driving TTL expiry deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestCoordinatorJoinLeaveEpochs(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	defer c.Close()
	if v := c.View(); v.Epoch != 0 || len(v.Backends) != 0 {
		t.Fatalf("initial view = %+v", v)
	}
	v := c.Join("qos-0", "127.0.0.1:9000", 0)
	if v.Epoch != 1 || len(v.Backends) != 1 || v.Backends[0] != "qos-0" || v.Weights[0] != 1 {
		t.Fatalf("after join: %+v", v)
	}
	v = c.Join("qos-1", "127.0.0.1:9001", 2)
	if v.Epoch != 2 || len(v.Backends) != 2 || v.Weights[1] != 2 {
		t.Fatalf("after second join: %+v", v)
	}
	// Re-joining with identical state does not burn an epoch.
	if v = c.Join("qos-1", "127.0.0.1:9001", 2); v.Epoch != 2 {
		t.Fatalf("idempotent join bumped epoch: %+v", v)
	}
	if got := c.Addr("qos-1"); got != "127.0.0.1:9001" {
		t.Fatalf("Addr = %q", got)
	}
	v = c.Leave("qos-0")
	if v.Epoch != 3 || len(v.Backends) != 1 || v.Backends[0] != "qos-1" {
		t.Fatalf("after leave: %+v", v)
	}
	if v = c.Leave("ghost"); v.Epoch != 3 {
		t.Fatalf("leaving unknown member bumped epoch: %+v", v)
	}
}

func TestCoordinatorHeartbeatEjectionAndReadmission(t *testing.T) {
	clk := newFakeClock()
	c := NewCoordinator(CoordinatorConfig{TTL: time.Second, Clock: clk.now})
	defer c.Close()
	c.Join("qos-0", "a0", 1)
	c.Join("qos-1", "a1", 1)
	c.Join("qos-2", "a2", 1)

	// qos-1 stops beating; the others keep beating.
	clk.advance(700 * time.Millisecond)
	c.Heartbeat("qos-0", "")
	c.Heartbeat("qos-2", "")
	clk.advance(700 * time.Millisecond)
	v := c.CheckNow()
	if len(v.Backends) != 2 || v.Backends[0] != "qos-0" || v.Backends[1] != "qos-2" {
		t.Fatalf("after ejection: %+v", v)
	}
	ejectEpoch := v.Epoch

	// Recovery: a heartbeat re-admits qos-1 in its original slot.
	v = c.Heartbeat("qos-1", "a1-new")
	if v.Epoch != ejectEpoch+1 {
		t.Fatalf("re-admission epoch = %d, want %d", v.Epoch, ejectEpoch+1)
	}
	want := []string{"qos-0", "qos-1", "qos-2"}
	for i, name := range want {
		if v.Backends[i] != name {
			t.Fatalf("re-admitted order = %v, want %v", v.Backends, want)
		}
	}
	if got := c.Addr("qos-1"); got != "a1-new" {
		t.Fatalf("heartbeat did not refresh addr: %q", got)
	}
}

func TestCoordinatorHeartbeatRegistersUnknownMember(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	defer c.Close()
	v := c.Heartbeat("qos-7", "addr7")
	if v.Epoch != 1 || len(v.Backends) != 1 || v.Backends[0] != "qos-7" {
		t.Fatalf("heartbeat-join: %+v", v)
	}
	ms := c.Members()
	if len(ms) != 1 || !ms[0].Alive || ms[0].Addr != "addr7" || ms[0].Weight != 1 {
		t.Fatalf("members = %+v", ms)
	}
}

func TestCoordinatorMonitorEjectsWithRealClock(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{TTL: 30 * time.Millisecond})
	defer c.Close()
	c.Join("qos-0", "", 1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.View().Backends) == 0 {
			return // ejected by the monitor goroutine
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("silent member never ejected")
}

func TestCoordinatorSubscribe(t *testing.T) {
	c := NewCoordinator(CoordinatorConfig{})
	defer c.Close()
	var mu sync.Mutex
	var epochs []uint64
	cancel := c.Subscribe(func(v View) {
		mu.Lock()
		epochs = append(epochs, v.Epoch)
		mu.Unlock()
	})
	c.Join("a", "", 1)
	c.Join("b", "", 1)
	cancel()
	c.Leave("a") // not delivered
	mu.Lock()
	defer mu.Unlock()
	want := []uint64{0, 1, 2}
	if len(epochs) != len(want) {
		t.Fatalf("epochs = %v, want %v", epochs, want)
	}
	for i := range want {
		if epochs[i] != want[i] {
			t.Fatalf("epochs = %v, want %v", epochs, want)
		}
	}
}

func TestViewClone(t *testing.T) {
	v := View{Epoch: 3, Backends: []string{"a", "b"}, Weights: []float64{1, 2}}
	cl := v.Clone()
	cl.Backends[0] = "z"
	cl.Weights[0] = 9
	if v.Backends[0] != "a" || v.Weights[0] != 1 {
		t.Fatal("Clone shares backing arrays")
	}
	if (View{}).IndexOf("a") != -1 {
		t.Fatal("IndexOf on empty view")
	}
}
