// Package membership provides the epoch-versioned cluster membership layer
// that lets the QoS server tier grow and shrink without stranding
// leaky-bucket state.
//
// The paper's router partitions keys with CRC32(key) mod N over a fixed
// backend list (§III-B), so any change to N remaps ~(N-1)/N of all keys.
// This package replaces the fixed list with a View — an immutable,
// epoch-numbered snapshot of the alive backends — published by a
// lightweight Coordinator and consumed by routers through a hot swap:
//
//   - View{Epoch, Backends, Weights}: the unit of membership truth. Epochs
//     are strictly increasing; two views with the same epoch are identical.
//   - Picker: the key→backend mapping strategy. CRC32Mod reproduces the
//     paper's formula bit-for-bit; JumpHash (Lamping & Veach,
//     arXiv:1406.2294) moves only ~K/N keys when a backend is appended,
//     which is what makes elastic scaling of the QoS tier affordable.
//   - Coordinator: tracks members, their heartbeats, and their handoff
//     addresses; it ejects members whose heartbeats stop, re-admits them
//     when heartbeats resume, and publishes a new View (epoch+1) to
//     subscribers on every change.
//
// The bucket-state handoff that accompanies an epoch change is implemented
// by internal/qosserver (Rebalance) and orchestrated by internal/cluster;
// this package only decides who owns what.
package membership

import (
	"errors"
	"fmt"
)

// ErrNoBackends is returned when a key→backend mapping is requested against
// an empty view (n == 0). It replaces the runtime panic ("integer divide by
// zero" / index out of range) that a fixed-list router would hit.
var ErrNoBackends = errors.New("membership: no backends in view")

// View is an immutable epoch-versioned snapshot of the alive backends, in
// stable admission order. Index i in Backends is partition i for a Picker.
type View struct {
	// Epoch is the version of this view. Strictly increasing: every
	// membership change (join, leave, ejection, re-admission) advances it.
	Epoch uint64
	// Backends are the routable backend names (DNS names or literal
	// addresses), in stable order. The slice length fixes N for pickers.
	Backends []string
	// Weights are the relative capacities of the backends; nil means all
	// backends weigh 1. Reserved for weighted pickers; current pickers
	// treat all backends equally.
	Weights []float64
}

// Clone returns a deep copy of the view, so holders may retain it across
// coordinator mutations.
func (v View) Clone() View {
	c := View{Epoch: v.Epoch}
	if v.Backends != nil {
		c.Backends = append([]string(nil), v.Backends...)
	}
	if v.Weights != nil {
		c.Weights = append([]float64(nil), v.Weights...)
	}
	return c
}

// IndexOf returns the partition index of the named backend, or -1 when the
// backend is not in the view.
func (v View) IndexOf(name string) int {
	for i, b := range v.Backends {
		if b == name {
			return i
		}
	}
	return -1
}

// Owner returns the backend name owning key under picker p.
func (v View) Owner(p Picker, key string) (string, error) {
	i, err := p.Pick(key, len(v.Backends))
	if err != nil {
		return "", fmt.Errorf("membership: epoch %d: %w", v.Epoch, err)
	}
	return v.Backends[i], nil
}

// RemapFraction estimates the fraction of the key space whose owner differs
// between views old and new under picker p, by probing samples synthetic
// keys. It is what routers report as the per-epoch remap metric. samples
// <= 0 selects 2048.
func RemapFraction(old, new View, p Picker, samples int) float64 {
	if samples <= 0 {
		samples = 2048
	}
	if len(old.Backends) == 0 || len(new.Backends) == 0 {
		return 1
	}
	moved := 0
	for i := 0; i < samples; i++ {
		key := fmt.Sprintf("remap-probe-%d", i)
		a, err1 := old.Owner(p, key)
		b, err2 := new.Owner(p, key)
		if err1 != nil || err2 != nil || a != b {
			moved++
		}
	}
	return float64(moved) / float64(samples)
}
