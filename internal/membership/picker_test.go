package membership

import (
	"errors"
	"fmt"
	"hash/crc32"
	"testing"
	"testing/quick"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("user-%d", 1500000001+i)
	}
	return out
}

func TestNewPicker(t *testing.T) {
	for _, kind := range []Kind{KindCRC32, KindJump, ""} {
		if _, err := NewPicker(kind); err != nil {
			t.Fatalf("NewPicker(%q): %v", kind, err)
		}
	}
	if _, err := NewPicker("rendezvous"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestPickersRejectEmptyView(t *testing.T) {
	for _, p := range []Picker{CRC32Mod{}, JumpHash{}} {
		for _, n := range []int{0, -1} {
			if _, err := p.Pick("k", n); !errors.Is(err, ErrNoBackends) {
				t.Fatalf("%s.Pick(k, %d) err = %v, want ErrNoBackends", p.Kind(), n, err)
			}
		}
	}
}

// TestCRC32ModMatchesLegacyFormula pins CRC32Mod to the paper's routing
// function, seed = CRC32(key); index = seed mod N — the exact indices the
// fixed-list router has always produced.
func TestCRC32ModMatchesLegacyFormula(t *testing.T) {
	p := CRC32Mod{}
	f := func(key string, n uint8) bool {
		nn := int(n%20) + 1
		got, err := p.Pick(key, nn)
		return err == nil && got == int(crc32.ChecksumIEEE([]byte(key))%uint32(nn))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPickersDeterministicInRange(t *testing.T) {
	for _, p := range []Picker{CRC32Mod{}, JumpHash{}} {
		f := func(key string, n uint8) bool {
			nn := int(n%32) + 1
			i, err1 := p.Pick(key, nn)
			j, err2 := p.Pick(key, nn)
			return err1 == nil && err2 == nil && i == j && i >= 0 && i < nn
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%s: %v", p.Kind(), err)
		}
	}
}

// TestPickerDistribution checks both pickers spread sequential keys within
// a tight band around the uniform share (the Fig 6 property).
func TestPickerDistribution(t *testing.T) {
	const n = 20
	ks := keys(100000)
	for _, p := range []Picker{CRC32Mod{}, JumpHash{}} {
		counts := make([]int, n)
		for _, k := range ks {
			i, err := p.Pick(k, n)
			if err != nil {
				t.Fatal(err)
			}
			counts[i]++
		}
		for i, c := range counts {
			pct := float64(c) / float64(len(ks)) * 100
			if pct < 4.0 || pct > 6.0 {
				t.Errorf("%s: partition %d pressure = %.3f%%, outside [4,6]", p.Kind(), i, pct)
			}
		}
	}
}

// TestJumpHashMonotonicity is the defining consistent-hash property: going
// from n to n+1 backends moves at most 2K/(n+1) keys (the expectation is
// K/(n+1)), and every moved key lands on the NEW backend — none shuffle
// between pre-existing backends.
func TestJumpHashMonotonicity(t *testing.T) {
	p := JumpHash{}
	ks := keys(50000)
	for n := 1; n <= 12; n++ {
		moved := 0
		for _, k := range ks {
			a, _ := p.Pick(k, n)
			b, _ := p.Pick(k, n+1)
			if a != b {
				moved++
				if b != n {
					t.Fatalf("n=%d: key %q moved %d→%d, not onto new backend %d", n, k, a, b, n)
				}
			}
		}
		bound := 2 * len(ks) / (n + 1)
		if moved > bound {
			t.Errorf("n=%d→%d: moved %d keys, bound 2K/N = %d", n, n+1, moved, bound)
		}
	}
}

// TestCRC32ModReshufflesNearEverything documents why the legacy mapping
// cannot scale elastically: adding one backend remaps ~(N-1)/N of keys.
func TestCRC32ModReshufflesNearEverything(t *testing.T) {
	p := CRC32Mod{}
	ks := keys(50000)
	moved := 0
	for _, k := range ks {
		a, _ := p.Pick(k, 4)
		b, _ := p.Pick(k, 5)
		if a != b {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(ks)); frac < 0.7 {
		t.Fatalf("crc32 mod moved only %.2f of keys on 4→5; expected ~0.8", frac)
	}
}

func TestViewOwnerAndRemapFraction(t *testing.T) {
	p := JumpHash{}
	old := View{Epoch: 1, Backends: []string{"a", "b", "c", "d"}}
	next := View{Epoch: 2, Backends: []string{"a", "b", "c", "d", "e"}}
	owner, err := old.Owner(p, "some-key")
	if err != nil || old.IndexOf(owner) < 0 {
		t.Fatalf("owner = %q err = %v", owner, err)
	}
	if _, err := (View{}).Owner(p, "k"); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("empty view owner err = %v", err)
	}
	frac := RemapFraction(old, next, p, 4096)
	if frac <= 0 || frac > 0.25+0.05 {
		t.Fatalf("jump 4→5 remap fraction = %.3f, want ~0.20", frac)
	}
	if frac := RemapFraction(old, next, CRC32Mod{}, 4096); frac < 0.7 {
		t.Fatalf("crc32 4→5 remap fraction = %.3f, want ~0.8", frac)
	}
	if frac := RemapFraction(View{}, next, p, 64); frac != 1 {
		t.Fatalf("empty old view remap = %v, want 1", frac)
	}
}
