package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
)

// Failpoints on the client side of the coordinator API (peer = coordinator
// endpoint). Cutting heartbeats gets a member TTL-ejected; cutting view
// fetches freezes a router or beater at its last adopted epoch — the
// coordinator-partition scenario of the chaos suite.
var (
	fpHeartbeatSend = failpoint.New("membership/heartbeat/send")
	fpViewFetch     = failpoint.New("membership/view/fetch")
)

// HTTP endpoints served by a coordinator Service and spoken by Client.
const (
	ViewPath      = "/membership/v1/view"
	HeartbeatPath = "/membership/v1/heartbeat"
)

// Handler exposes a coordinator over HTTP:
//
//	GET  /membership/v1/view                          → current View (JSON)
//	POST /membership/v1/heartbeat?name=N&addr=A&weight=W → heartbeat/join,
//	     responds with the resulting View (JSON)
//
// Heartbeats double as registration, so a QoS server joins a cluster by
// simply beating against the coordinator.
func Handler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(ViewPath, func(w http.ResponseWriter, req *http.Request) {
		writeView(w, c.View())
	})
	mux.HandleFunc(HeartbeatPath, func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		q := req.URL.Query()
		name := q.Get("name")
		if name == "" {
			http.Error(w, "name required", http.StatusBadRequest)
			return
		}
		var v View
		if ws := q.Get("weight"); ws != "" {
			weight, err := strconv.ParseFloat(ws, 64)
			if err != nil || weight <= 0 {
				http.Error(w, "bad weight", http.StatusBadRequest)
				return
			}
			v = c.Join(name, q.Get("addr"), weight)
		} else {
			v = c.Heartbeat(name, q.Get("addr"))
		}
		writeView(w, v)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
	return mux
}

func writeView(w http.ResponseWriter, v View) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// Service is a coordinator listening on HTTP.
type Service struct {
	c      *Coordinator
	ln     net.Listener
	server *http.Server
	wg     sync.WaitGroup
}

// NewService starts an HTTP front end for c on addr ("127.0.0.1:0" for
// ephemeral).
func NewService(c *Coordinator, addr string) (*Service, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("membership: listen %s: %w", addr, err)
	}
	s := &Service{c: c, ln: ln, server: &http.Server{Handler: Handler(c)}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.server.Serve(ln)
	}()
	return s, nil
}

// Addr returns the HTTP address the service listens on.
func (s *Service) Addr() string { return s.ln.Addr().String() }

// Close shuts the HTTP front end down (the coordinator itself is left
// running; close it separately).
func (s *Service) Close() error {
	err := s.server.Close()
	s.wg.Wait()
	return err
}

// Client speaks the coordinator HTTP API.
type Client struct {
	// Endpoint is the coordinator host:port (no scheme).
	Endpoint string
	// HTTPClient overrides the default http.Client when non-nil.
	HTTPClient *http.Client
}

func (cl *Client) http() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// FetchView retrieves the coordinator's current view.
func (cl *Client) FetchView() (View, error) {
	if fpViewFetch.Armed() {
		switch o := fpViewFetch.EvalPeer(cl.Endpoint); o.Kind {
		case failpoint.Error, failpoint.Partition:
			return View{}, o.Err
		case failpoint.Drop:
			return View{}, fmt.Errorf("membership: view fetch from %s dropped by failpoint", cl.Endpoint)
		case failpoint.Delay:
			o.Sleep()
		}
	}
	resp, err := cl.http().Get("http://" + cl.Endpoint + ViewPath)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	return decodeView(resp)
}

// Heartbeat sends one heartbeat for member name (registering it on first
// contact) and returns the coordinator's resulting view.
func (cl *Client) Heartbeat(name, addr string) (View, error) {
	if fpHeartbeatSend.Armed() {
		switch o := fpHeartbeatSend.EvalPeer(cl.Endpoint); o.Kind {
		case failpoint.Error, failpoint.Partition:
			return View{}, o.Err
		case failpoint.Drop:
			return View{}, fmt.Errorf("membership: heartbeat to %s dropped by failpoint", cl.Endpoint)
		case failpoint.Delay:
			o.Sleep()
		}
	}
	q := url.Values{"name": {name}}
	if addr != "" {
		q.Set("addr", addr)
	}
	resp, err := cl.http().Post("http://"+cl.Endpoint+HeartbeatPath+"?"+q.Encode(), "text/plain", nil)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	return decodeView(resp)
}

func decodeView(resp *http.Response) (View, error) {
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return View{}, fmt.Errorf("membership: coordinator: %s: %s", resp.Status, body)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return View{}, fmt.Errorf("membership: decode view: %w", err)
	}
	return v, nil
}

// Beater periodically heartbeats one member against a coordinator; QoS
// server nodes run one to stay in the view.
type Beater struct {
	client   *Client
	name     string
	addr     string
	interval time.Duration

	// lastOKNs is the wall time of the last heartbeat the coordinator
	// acknowledged — the readiness probe's staleness input (a member whose
	// beats stop landing is about to be ejected from the view).
	lastOKNs atomic.Int64

	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// NewBeater creates a beater for member name with handoff address addr.
// interval <= 0 selects 1s.
func NewBeater(client *Client, name, addr string, interval time.Duration) *Beater {
	if interval <= 0 {
		interval = time.Second
	}
	return &Beater{client: client, name: name, addr: addr, interval: interval,
		quit: make(chan struct{}), done: make(chan struct{})}
}

// Start sends the first heartbeat synchronously (so the member is
// registered when Start returns) and then beats in the background.
func (b *Beater) Start() error {
	if _, err := b.client.Heartbeat(b.name, b.addr); err != nil {
		return err
	}
	b.lastOKNs.Store(time.Now().UnixNano())
	go b.loop()
	return nil
}

func (b *Beater) loop() {
	defer close(b.done)
	t := time.NewTicker(b.interval)
	defer t.Stop()
	for {
		select {
		case <-b.quit:
			return
		case <-t.C:
			if _, err := b.client.Heartbeat(b.name, b.addr); err == nil {
				b.lastOKNs.Store(time.Now().UnixNano())
			}
		}
	}
}

// ContactAge reports how long ago the coordinator last acknowledged a
// heartbeat (zero before Start succeeds).
func (b *Beater) ContactAge() time.Duration {
	at := b.lastOKNs.Load()
	if at == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - at)
}

// Interval returns the configured heartbeat interval.
func (b *Beater) Interval() time.Duration { return b.interval }

// Stop halts the beater; the member will be ejected once its TTL expires.
func (b *Beater) Stop() {
	b.once.Do(func() {
		close(b.quit)
		<-b.done
	})
}

// Poller periodically fetches the coordinator view and invokes a callback
// whenever the epoch advances; router nodes run one to hot-swap their view.
type Poller struct {
	client   *Client
	interval time.Duration
	onView   func(View)

	mu    sync.Mutex
	epoch uint64
	seen  bool

	// lastOKNs is the wall time of the last successful view fetch — the
	// router readiness probe's staleness input (a router that cannot reach
	// its coordinator is routing on a potentially obsolete view).
	lastOKNs atomic.Int64

	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// NewPoller creates a poller invoking onView on every epoch change.
// interval <= 0 selects 1s.
func NewPoller(client *Client, interval time.Duration, onView func(View)) *Poller {
	if interval <= 0 {
		interval = time.Second
	}
	return &Poller{client: client, interval: interval, onView: onView,
		quit: make(chan struct{}), done: make(chan struct{})}
}

// Start fetches the first view synchronously (delivering it to the
// callback) and then polls in the background.
func (p *Poller) Start() error {
	if err := p.PollOnce(); err != nil {
		return err
	}
	go p.loop()
	return nil
}

// PollOnce fetches the view once, invoking the callback if the epoch moved.
func (p *Poller) PollOnce() error {
	v, err := p.client.FetchView()
	if err != nil {
		return err
	}
	p.lastOKNs.Store(time.Now().UnixNano())
	p.mu.Lock()
	fresh := !p.seen || v.Epoch > p.epoch
	if fresh {
		p.seen = true
		p.epoch = v.Epoch
	}
	p.mu.Unlock()
	if fresh {
		p.onView(v)
	}
	return nil
}

func (p *Poller) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.quit:
			return
		case <-t.C:
			p.PollOnce()
		}
	}
}

// ContactAge reports how long ago a view fetch last succeeded (zero before
// the first success).
func (p *Poller) ContactAge() time.Duration {
	at := p.lastOKNs.Load()
	if at == 0 {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - at)
}

// Interval returns the configured poll interval.
func (p *Poller) Interval() time.Duration { return p.interval }

// Stop halts the poller.
func (p *Poller) Stop() {
	p.once.Do(func() {
		close(p.quit)
		<-p.done
	})
}
