package membership

import (
	"sync"
	"time"
)

// Member is one backend known to the coordinator.
type Member struct {
	// Name is the routable backend name (DNS name or literal UDP address)
	// that appears in View.Backends.
	Name string
	// Addr is the backend's handoff/replication TCP address, used to push
	// bucket state when ownership moves. May be empty when the backend
	// does not accept handoffs.
	Addr string
	// Weight is the relative capacity (default 1).
	Weight float64
	// Alive reports whether the member is in the current view.
	Alive bool
	// LastBeat is the time of the most recent heartbeat (or admission).
	LastBeat time.Time
}

// CoordinatorConfig tunes a Coordinator.
type CoordinatorConfig struct {
	// TTL is the heartbeat expiry: a member whose last heartbeat is older
	// than TTL is ejected from the view. 0 disables expiry (membership
	// changes only through Join/Leave).
	TTL time.Duration
	// Clock injects time for tests; nil means time.Now.
	Clock func() time.Time
}

// Coordinator is the lightweight membership authority: it tracks members
// and their heartbeats, ejects the dead, re-admits the recovered, and
// publishes an epoch-versioned View to subscribers on every change.
//
// Members keep their admission-order slot across ejection and re-admission,
// so a flapping backend returns to its original partition index instead of
// reshuffling everyone else.
type Coordinator struct {
	ttl   time.Duration
	clock func() time.Time

	mu      sync.Mutex
	members map[string]*memberState
	order   []string // admission order; names persist across ejection
	epoch   uint64
	view    View
	subs    map[int]func(View)
	nextSub int

	quit chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type memberState struct {
	addr     string
	weight   float64
	alive    bool
	lastBeat time.Time
}

// NewCoordinator starts a coordinator. When cfg.TTL > 0 a monitor
// goroutine ejects members whose heartbeats stop; call Close to stop it.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	c := &Coordinator{
		ttl:     cfg.TTL,
		clock:   clock,
		members: make(map[string]*memberState),
		subs:    make(map[int]func(View)),
		quit:    make(chan struct{}),
	}
	c.view = View{Epoch: 0}
	if cfg.TTL > 0 {
		interval := cfg.TTL / 4
		if interval <= 0 {
			interval = time.Millisecond
		}
		c.wg.Add(1)
		go c.monitor(interval)
	}
	return c
}

// Join admits (or updates) a member and publishes the new view. It returns
// the published view.
func (c *Coordinator) Join(name, addr string, weight float64) View {
	if weight <= 0 {
		weight = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	if !ok {
		m = &memberState{}
		c.members[name] = m
		c.order = append(c.order, name)
	}
	changed := !ok || !m.alive || m.addr != addr || m.weight != weight
	m.addr = addr
	m.weight = weight
	m.alive = true
	m.lastBeat = c.clock()
	if changed {
		return c.publishLocked()
	}
	return c.view
}

// Leave removes a member permanently and publishes the new view.
func (c *Coordinator) Leave(name string) View {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.members[name]; !ok {
		return c.view
	}
	delete(c.members, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return c.publishLocked()
}

// Heartbeat refreshes a member's liveness deadline, admitting it first if
// unknown and re-admitting it if it had been ejected. addr updates the
// handoff address when non-empty.
func (c *Coordinator) Heartbeat(name, addr string) View {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	if !ok {
		m = &memberState{addr: addr, weight: 1, alive: true, lastBeat: c.clock()}
		c.members[name] = m
		c.order = append(c.order, name)
		return c.publishLocked()
	}
	m.lastBeat = c.clock()
	if addr != "" {
		m.addr = addr
	}
	if !m.alive {
		m.alive = true // recovered: re-admit at its original slot
		return c.publishLocked()
	}
	return c.view
}

// View returns the current view.
func (c *Coordinator) View() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view
}

// Epoch returns the current epoch.
func (c *Coordinator) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Members returns a snapshot of every known member (alive or ejected) in
// admission order.
func (c *Coordinator) Members() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Member, 0, len(c.order))
	for _, name := range c.order {
		m := c.members[name]
		out = append(out, Member{Name: name, Addr: m.addr, Weight: m.weight, Alive: m.alive, LastBeat: m.lastBeat})
	}
	return out
}

// Addr returns the handoff address registered for the named member ("" if
// unknown).
func (c *Coordinator) Addr(name string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.members[name]; ok {
		return m.addr
	}
	return ""
}

// Subscribe registers fn to be called with every published view, starting
// immediately with the current one. The returned cancel unregisters it.
// fn is invoked with the coordinator lock held and must not call back into
// coordinator mutators.
func (c *Coordinator) Subscribe(fn func(View)) (cancel func()) {
	c.mu.Lock()
	id := c.nextSub
	c.nextSub++
	c.subs[id] = fn
	v := c.view
	fn(v)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
	}
}

// CheckNow runs one expiry pass immediately (tests and manual probes) and
// returns the current view afterwards.
func (c *Coordinator) CheckNow() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked()
	return c.view
}

// publishLocked rebuilds the view from the alive members, advances the
// epoch, and notifies subscribers. Callers must hold c.mu.
func (c *Coordinator) publishLocked() View {
	c.epoch++
	v := View{Epoch: c.epoch}
	for _, name := range c.order {
		m := c.members[name]
		if m.alive {
			v.Backends = append(v.Backends, name)
			v.Weights = append(v.Weights, m.weight)
		}
	}
	c.view = v
	for _, fn := range c.subs {
		fn(v)
	}
	return v
}

func (c *Coordinator) expireLocked() {
	if c.ttl <= 0 {
		return
	}
	deadline := c.clock().Add(-c.ttl)
	changed := false
	for _, m := range c.members {
		if m.alive && m.lastBeat.Before(deadline) {
			m.alive = false
			changed = true
		}
	}
	if changed {
		c.publishLocked()
	}
}

func (c *Coordinator) monitor(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.quit:
			return
		case <-t.C:
			c.mu.Lock()
			c.expireLocked()
			c.mu.Unlock()
		}
	}
}

// Close stops the expiry monitor. The coordinator remains queryable.
func (c *Coordinator) Close() {
	c.once.Do(func() {
		close(c.quit)
		c.wg.Wait()
	})
}
