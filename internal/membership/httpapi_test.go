package membership

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

func newService(t *testing.T, cfg CoordinatorConfig) (*Coordinator, *Service) {
	t.Helper()
	c := NewCoordinator(cfg)
	s, err := NewService(c, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		c.Close()
	})
	return c, s
}

func TestHTTPHeartbeatAndView(t *testing.T) {
	_, s := newService(t, CoordinatorConfig{})
	cl := &Client{Endpoint: s.Addr()}

	v, err := cl.Heartbeat("qos-0", "127.0.0.1:9100")
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 1 || len(v.Backends) != 1 || v.Backends[0] != "qos-0" {
		t.Fatalf("heartbeat view = %+v", v)
	}
	v, err = cl.FetchView()
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 1 || v.Backends[0] != "qos-0" {
		t.Fatalf("fetched view = %+v", v)
	}
}

func TestHTTPHeartbeatValidation(t *testing.T) {
	_, s := newService(t, CoordinatorConfig{})
	// Missing name.
	resp, err := http.Post("http://"+s.Addr()+HeartbeatPath, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing name: status %d", resp.StatusCode)
	}
	// GET not allowed.
	resp, err = http.Get("http://" + s.Addr() + HeartbeatPath + "?name=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET heartbeat: status %d", resp.StatusCode)
	}
	// Bad weight.
	resp, err = http.Post("http://"+s.Addr()+HeartbeatPath+"?name=x&weight=-3", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad weight: status %d", resp.StatusCode)
	}
}

func TestBeaterKeepsMemberAlive(t *testing.T) {
	c, s := newService(t, CoordinatorConfig{TTL: 80 * time.Millisecond})
	cl := &Client{Endpoint: s.Addr()}
	b := NewBeater(cl, "qos-0", "127.0.0.1:9100", 10*time.Millisecond)
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond) // several TTLs with the beater running
	if v := c.View(); len(v.Backends) != 1 {
		t.Fatalf("member ejected while beating: %+v", v)
	}
	b.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.View().Backends) == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("member not ejected after beater stopped")
}

func TestPollerDeliversEpochChanges(t *testing.T) {
	c, s := newService(t, CoordinatorConfig{})
	c.Join("qos-0", "", 1)
	cl := &Client{Endpoint: s.Addr()}
	var mu sync.Mutex
	var got []uint64
	p := NewPoller(cl, 10*time.Millisecond, func(v View) {
		mu.Lock()
		got = append(got, v.Epoch)
		mu.Unlock()
	})
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	c.Join("qos-1", "", 1)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 2 || got[0] != 1 || got[len(got)-1] != 2 {
		t.Fatalf("poller epochs = %v, want [1 2]", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("poller delivered non-monotonic epochs: %v", got)
		}
	}
}
