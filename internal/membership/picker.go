package membership

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
)

// Picker maps a QoS key to a partition index in [0, n). Implementations
// must be deterministic and safe for concurrent use.
type Picker interface {
	// Kind names the strategy for configuration and metrics.
	Kind() Kind
	// Pick returns the partition index of key among n backends. It returns
	// ErrNoBackends when n <= 0.
	Pick(key string, n int) (int, error)
}

// Kind names a Picker implementation for configuration.
type Kind string

// Supported picker kinds.
const (
	// KindCRC32 is the paper's CRC32(key) mod N formula (§III-B). Changing
	// N remaps ~(N-1)/N of all keys.
	KindCRC32 Kind = "crc32"
	// KindJump is jump consistent hash (arXiv:1406.2294). Appending a
	// backend moves only ~K/N keys, all of them onto the new backend.
	KindJump Kind = "jump"
)

// NewPicker constructs a picker of the given kind; the empty kind selects
// KindCRC32 (the legacy mapping).
func NewPicker(kind Kind) (Picker, error) {
	switch kind {
	case KindCRC32, "":
		return CRC32Mod{}, nil
	case KindJump:
		return JumpHash{}, nil
	default:
		return nil, fmt.Errorf("membership: unknown picker kind %q", kind)
	}
}

// CRC32Mod is the paper's routing function: seed = CRC32(key), index =
// seed mod N. It reproduces the legacy router's indices exactly.
type CRC32Mod struct{}

// Kind implements Picker.
func (CRC32Mod) Kind() Kind { return KindCRC32 }

// Pick implements Picker.
func (CRC32Mod) Pick(key string, n int) (int, error) {
	if n <= 0 {
		return 0, ErrNoBackends
	}
	return int(crc32.ChecksumIEEE([]byte(key)) % uint32(n)), nil
}

// JumpHash is Lamping & Veach's jump consistent hash over a 64-bit FNV-1a
// hash of the key. Its defining property: going from n to n+1 backends
// moves exactly the keys that map to the new backend (~K/(n+1) of them),
// and no key moves between pre-existing backends.
type JumpHash struct{}

// Kind implements Picker.
func (JumpHash) Kind() Kind { return KindJump }

// Pick implements Picker.
func (JumpHash) Pick(key string, n int) (int, error) {
	if n <= 0 {
		return 0, ErrNoBackends
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return jump(h.Sum64(), n), nil
}

// jump is the core loop of the paper's ch(key, num_buckets), verbatim from
// arXiv:1406.2294 with the LCG constant 2862933555777941757.
func jump(key uint64, n int) int {
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}
