package client

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// fakeJanus answers the QoS protocol: keys beginning with "allow" admit.
func fakeJanus(t *testing.T) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key", http.StatusBadRequest)
			return
		}
		if strings.HasPrefix(key, "allow") {
			io.WriteString(w, "true")
		} else {
			io.WriteString(w, "false")
		}
	}))
	t.Cleanup(s.Close)
	return s
}

func TestCheck(t *testing.T) {
	j := fakeJanus(t)
	c := New(j.Listener.Addr().String())
	if ok, err := c.Check("allow-1"); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if ok, err := c.Check("deny-1"); err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestCheckCostPassesThrough(t *testing.T) {
	var gotCost atomic.Value
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCost.Store(r.URL.Query().Get("cost"))
		io.WriteString(w, "true")
	}))
	defer s.Close()
	c := New(s.Listener.Addr().String())
	if _, err := c.CheckCost("k", 2.5); err != nil {
		t.Fatal(err)
	}
	if gotCost.Load() != "2.5" {
		t.Fatalf("cost = %v", gotCost.Load())
	}
}

func TestFailOpenFailClosed(t *testing.T) {
	closed := New("127.0.0.1:1")
	if ok, err := closed.Check("k"); err == nil || ok {
		t.Fatalf("fail-closed: ok=%v err=%v", ok, err)
	}
	open := New("127.0.0.1:1")
	open.FailOpen = true
	if ok, err := open.Check("k"); err == nil || !ok {
		t.Fatalf("fail-open: ok=%v err=%v", ok, err)
	}
}

func TestCheckHTTPError(t *testing.T) {
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer s.Close()
	c := New(s.Listener.Addr().String())
	if _, err := c.Check("k"); err == nil {
		t.Fatal("HTTP 500 not surfaced")
	}
}

func TestCheckBadBody(t *testing.T) {
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "maybe")
	}))
	defer s.Close()
	c := New(s.Listener.Addr().String())
	if _, err := c.Check("k"); err == nil {
		t.Fatal("bad body not surfaced")
	}
}

func TestWrapAllowsAndThrottles(t *testing.T) {
	j := fakeJanus(t)
	c := New(j.Listener.Addr().String())
	var served atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "page content")
	})
	app := httptest.NewServer(c.Wrap(ByHeader("X-User"), inner))
	defer app.Close()

	req, _ := http.NewRequest("GET", app.URL, nil)
	req.Header.Set("X-User", "allow-alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("allowed request: %v %v", resp, err)
	}
	resp.Body.Close()

	req.Header.Set("X-User", "deny-mallory")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden || string(body) != ThrottledBody {
		t.Fatalf("throttled: %d %q", resp.StatusCode, body)
	}
	if served.Load() != 1 {
		t.Fatalf("inner handler served %d, want 1", served.Load())
	}
}

func TestKeyFuncs(t *testing.T) {
	r, _ := http.NewRequest("GET", "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := ByRemoteIP(r); got != "10.1.2.3" {
		t.Fatalf("ByRemoteIP = %q", got)
	}
	r.RemoteAddr = "no-port"
	if got := ByRemoteIP(r); got != "no-port" {
		t.Fatalf("ByRemoteIP fallback = %q", got)
	}
	r.Header.Set("User-Agent", "GoogleBot/2.1")
	if got := ByUserAgent(r); got != "GoogleBot/2.1" {
		t.Fatalf("ByUserAgent = %q", got)
	}
	r.Header.Set("X-Api-Key", "secret")
	if got := ByHeader("X-Api-Key")(r); got != "secret" {
		t.Fatalf("ByHeader = %q", got)
	}
}
