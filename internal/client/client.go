// Package client is the Janus QoS client library — the Go equivalent of
// the paper's qos_client.php (§IV). It issues the key-value QoS check
// against a Janus HTTP endpoint (gateway LB or request router) and offers
// an HTTP middleware that mirrors the paper's integration snippet: run the
// check before the wrapped handler, and answer 403 Forbidden when Janus
// says FALSE.
package client

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/wire"
)

// Client checks admission against one Janus endpoint.
type Client struct {
	endpoint string
	http     *http.Client
	// FailOpen selects the verdict when Janus itself is unreachable.
	FailOpen bool
}

// New creates a client for a Janus HTTP endpoint ("host:port").
func New(endpoint string) *Client {
	return &Client{
		endpoint: endpoint,
		http: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     30 * time.Second,
			},
			Timeout: 5 * time.Second,
		},
	}
}

// Check performs qos_check(key): TRUE admits, FALSE throttles.
func (c *Client) Check(key string) (bool, error) {
	return c.CheckCost(key, 1)
}

// CheckCost performs a weighted check consuming cost credits.
func (c *Client) CheckCost(key string, cost float64) (bool, error) {
	resp, err := c.http.Get("http://" + c.endpoint + wire.FormatHTTPQuery(wire.Request{Key: key, Cost: cost}))
	if err != nil {
		return c.FailOpen, fmt.Errorf("client: qos check: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return c.FailOpen, fmt.Errorf("client: qos check read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return c.FailOpen, fmt.Errorf("client: qos check HTTP %d", resp.StatusCode)
	}
	allow, err := wire.ParseHTTPBody(string(body))
	if err != nil {
		return c.FailOpen, err
	}
	return allow, nil
}

// KeyFunc extracts the QoS key from a request. The paper's examples: the
// client IP for anonymous browsing, the username for account quotas, the
// User-Agent for crawler policies, or user+database for NoSQL services.
type KeyFunc func(*http.Request) string

// ByRemoteIP keys on the client IP address ($_SERVER['REMOTE_ADDR']).
func ByRemoteIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ByUserAgent keys on the User-Agent header (the search-crawler use case).
func ByUserAgent(r *http.Request) string { return r.Header.Get("User-Agent") }

// ByHeader keys on an arbitrary header (e.g. an API token).
func ByHeader(name string) KeyFunc {
	return func(r *http.Request) string { return r.Header.Get(name) }
}

// ThrottledBody is the response body sent with 403 replies.
const ThrottledBody = "Throttled by Janus QoS\n"

// Wrap guards an HTTP handler with an admission check — the Go rendering
// of the paper's PHP wrapper:
//
//	$qos = qos_check($key);
//	if ($qos) { include("original_index.php"); }
//	else      { header("HTTP/1.1 403 Forbidden"); }
func (c *Client) Wrap(key KeyFunc, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ok, _ := c.Check(key(r)) // unreachable Janus falls back to FailOpen
		if !ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusForbidden)
			io.WriteString(w, ThrottledBody)
			return
		}
		next.ServeHTTP(w, r)
	})
}
