package wire

import (
	"math"
	"testing"
)

func TestTracedRequestRoundTrip(t *testing.T) {
	req := Request{ID: 7, Key: "tenant-a", Cost: 2.5, TraceID: 0xdeadbeefcafe}
	buf, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if buf[3]&FlagTraced == 0 {
		t.Fatal("traced request missing FlagTraced")
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip = %+v, want %+v", got, req)
	}
}

func TestUntracedRequestHasNoFlag(t *testing.T) {
	buf, err := EncodeRequest(Request{ID: 1, Key: "k", Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	if buf[3] != 0 {
		t.Fatalf("flags = %x, want 0", buf[3])
	}
	if len(buf) != requestHeaderLen+1 {
		t.Fatalf("untraced frame is %d bytes, want %d", len(buf), requestHeaderLen+1)
	}
}

func TestTracedResponseRoundTrip(t *testing.T) {
	resp := Response{ID: 9, Allow: true, Status: StatusOK, TraceID: 0xabc, ServerNanos: 12345}
	got, err := DecodeResponse(mustEncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if got != resp {
		t.Fatalf("round trip = %+v, want %+v", got, resp)
	}
}

func TestTracedResponseNanosClamped(t *testing.T) {
	for _, nanos := range []int64{-5, math.MaxInt64} {
		resp := Response{ID: 1, TraceID: 1, ServerNanos: nanos}
		got, err := DecodeResponse(mustEncodeResponse(resp))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if nanos > 0 {
			want = math.MaxUint32
		}
		if got.ServerNanos != want {
			t.Fatalf("ServerNanos %d decoded as %d, want %d", nanos, got.ServerNanos, want)
		}
	}
}

// TestTracedFrameTruncated covers the decode guard: a frame whose flag
// promises trace fields but whose payload is short must fail cleanly.
func TestTracedFrameTruncated(t *testing.T) {
	buf, err := EncodeRequest(Request{ID: 1, Key: "k", TraceID: 5})
	if err != nil {
		t.Fatal(err)
	}
	short := buf[:len(buf)-4]
	reseal(short)
	if _, err := DecodeRequest(short); err != ErrTruncated {
		t.Fatalf("truncated traced request error = %v, want ErrTruncated", err)
	}

	rbuf := mustEncodeResponse(Response{ID: 1, TraceID: 5})
	shortR := rbuf[:len(rbuf)-2]
	reseal(shortR)
	if _, err := DecodeResponse(shortR); err != ErrTruncated {
		t.Fatalf("truncated traced response error = %v, want ErrTruncated", err)
	}
}

// TestOldDecoderSkipsTrailingFields proves the forward-compat contract
// documented in DESIGN.md §7: a decoder that does not know about a trailing
// optional field (simulated by clearing the flag and re-sealing) still
// decodes the base payload from a longer frame.
func TestOldDecoderSkipsTrailingFields(t *testing.T) {
	buf, err := EncodeRequest(Request{ID: 3, Key: "key", Cost: 1, TraceID: 0x1234})
	if err != nil {
		t.Fatal(err)
	}
	buf[3] &^= FlagTraced // what an old encoder's flag byte would say
	reseal(buf)
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("old-style decode of longer frame: %v", err)
	}
	if got.TraceID != 0 || got.Key != "key" || got.ID != 3 {
		t.Fatalf("decoded %+v", got)
	}

	rbuf := mustEncodeResponse(Response{ID: 4, Allow: true, TraceID: 0x99, ServerNanos: 7})
	rbuf[3] &^= FlagTraced
	reseal(rbuf)
	gotR, err := DecodeResponse(rbuf)
	if err != nil {
		t.Fatalf("old-style decode of longer response: %v", err)
	}
	if gotR.TraceID != 0 || !gotR.Allow || gotR.ID != 4 {
		t.Fatalf("decoded %+v", gotR)
	}
}

// reseal recomputes the CRC after a test mutated the frame.
func reseal(buf []byte) { seal(buf) }
