// Package wire defines the key-value request/response protocol spoken
// between Janus layers (paper §I: "Janus also adopts a key-value
// request-response mechanism for easy integration with the actual
// application").
//
// Two encodings are defined:
//
//   - A compact binary datagram format used on the UDP path between the
//     request router and the QoS server. Requests are idempotent and carry a
//     request ID so retransmitted retries (paper §III-B) can be matched to
//     any response.
//   - An HTTP mapping used between QoS clients and the request router
//     (GET /qos?key=K → body "true" or "false").
//
// Binary layout (big endian):
//
//	offset size  field
//	0      1     magic 'J'
//	1      1     version (1)
//	2      1     type (0 request, 1 response)
//	3      1     flags
//	4      8     request id
//	12     4     CRC32-IEEE of everything after this field
//	-- request --
//	16     4     cost (credits, fixed-point 1/1000)
//	20     2     key length n
//	22     n     key bytes
//	-- response --
//	16     1     verdict (0 deny, 1 allow)
//	17     1     status
//
// The cost field supports weighted admission (one API call may consume more
// than one credit); the paper's default is cost 1.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Protocol constants.
const (
	Magic   = 'J'
	Version = 1

	typeRequest  = 0
	typeResponse = 1

	requestHeaderLen  = 22
	responseLen       = 18
	costScale         = 1000
	MaxKeyLen         = math.MaxUint16
	MaxDatagram       = 64 * 1024
	checksummedOffset = 16 // bytes [16:] are covered by the CRC
)

// Status codes carried in responses.
type Status uint8

// Response statuses.
const (
	// StatusOK means the decision came from the key's leaky bucket.
	StatusOK Status = 0
	// StatusDefaultRule means the key was absent from the database and the
	// server applied the configured default rule (paper §II-D).
	StatusDefaultRule Status = 1
	// StatusDefaultReply means the router exhausted its retries and
	// fabricated the response itself (paper §III-B: "the request router
	// returns a default reply to the QoS client").
	StatusDefaultReply Status = 2
	// StatusError means the server failed internally; verdict carries the
	// fail-open/fail-closed default.
	StatusError Status = 3
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDefaultRule:
		return "default-rule"
	case StatusDefaultReply:
		return "default-reply"
	case StatusError:
		return "error"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Request is a QoS admission query for one key.
type Request struct {
	// ID correlates retransmissions with responses.
	ID uint64
	// Key is the QoS key.
	Key string
	// Cost is the number of credits this call consumes (default 1).
	Cost float64
}

// Response is the boolean admission decision.
type Response struct {
	// ID echoes the request ID.
	ID uint64
	// Allow is TRUE to admit, FALSE to deny (the paper's QoS response).
	Allow bool
	// Status qualifies how the decision was produced.
	Status Status
}

// Decode errors.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadMagic    = errors.New("wire: bad magic byte")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unexpected packet type")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrKeyTooLong  = errors.New("wire: key exceeds 65535 bytes")
)

func putHeader(buf []byte, typ byte, id uint64) {
	buf[0] = Magic
	buf[1] = Version
	buf[2] = typ
	buf[3] = 0
	binary.BigEndian.PutUint64(buf[4:], id)
}

func seal(buf []byte) {
	binary.BigEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[checksummedOffset:]))
}

func checkHeader(buf []byte, wantType byte) error {
	if len(buf) < checksummedOffset {
		return ErrTruncated
	}
	if buf[0] != Magic {
		return ErrBadMagic
	}
	if buf[1] != Version {
		return ErrBadVersion
	}
	if buf[2] != wantType {
		return ErrBadType
	}
	if binary.BigEndian.Uint32(buf[12:]) != crc32.ChecksumIEEE(buf[checksummedOffset:]) {
		return ErrBadChecksum
	}
	return nil
}

// AppendRequest appends the encoded request to dst and returns the extended
// slice. The cost is clamped to non-negative and rounded to 1/1000 credit.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	if len(req.Key) > MaxKeyLen {
		return dst, ErrKeyTooLong
	}
	cost := req.Cost
	if cost < 0 {
		cost = 0
	}
	scaled := uint64(math.Round(cost * costScale))
	if scaled > math.MaxUint32 {
		scaled = math.MaxUint32
	}
	start := len(dst)
	need := requestHeaderLen + len(req.Key)
	for cap(dst)-start < need {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:start+need]
	buf := dst[start:]
	putHeader(buf, typeRequest, req.ID)
	binary.BigEndian.PutUint32(buf[16:], uint32(scaled))
	binary.BigEndian.PutUint16(buf[20:], uint16(len(req.Key)))
	copy(buf[22:], req.Key)
	seal(buf)
	return dst, nil
}

// EncodeRequest encodes req into a fresh buffer.
func EncodeRequest(req Request) ([]byte, error) {
	return AppendRequest(make([]byte, 0, requestHeaderLen+len(req.Key)), req)
}

// DecodeRequest parses a binary request datagram.
func DecodeRequest(buf []byte) (Request, error) {
	if err := checkHeader(buf, typeRequest); err != nil {
		return Request{}, err
	}
	if len(buf) < requestHeaderLen {
		return Request{}, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[20:]))
	if len(buf) < requestHeaderLen+n {
		return Request{}, ErrTruncated
	}
	return Request{
		ID:   binary.BigEndian.Uint64(buf[4:]),
		Cost: float64(binary.BigEndian.Uint32(buf[16:])) / costScale,
		Key:  string(buf[22 : 22+n]),
	}, nil
}

// AppendResponse appends the encoded response to dst.
func AppendResponse(dst []byte, resp Response) []byte {
	start := len(dst)
	for cap(dst)-start < responseLen {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:start+responseLen]
	buf := dst[start:]
	putHeader(buf, typeResponse, resp.ID)
	if resp.Allow {
		buf[16] = 1
	} else {
		buf[16] = 0
	}
	buf[17] = byte(resp.Status)
	seal(buf)
	return dst
}

// EncodeResponse encodes resp into a fresh buffer.
func EncodeResponse(resp Response) []byte {
	return AppendResponse(make([]byte, 0, responseLen), resp)
}

// DecodeResponse parses a binary response datagram.
func DecodeResponse(buf []byte) (Response, error) {
	if err := checkHeader(buf, typeResponse); err != nil {
		return Response{}, err
	}
	if len(buf) < responseLen {
		return Response{}, ErrTruncated
	}
	return Response{
		ID:     binary.BigEndian.Uint64(buf[4:]),
		Allow:  buf[16] == 1,
		Status: Status(buf[17]),
	}, nil
}
