// Package wire defines the key-value request/response protocol spoken
// between Janus layers (paper §I: "Janus also adopts a key-value
// request-response mechanism for easy integration with the actual
// application").
//
// Two encodings are defined:
//
//   - A compact binary datagram format used on the UDP path between the
//     request router and the QoS server. Requests are idempotent and carry a
//     request ID so retransmitted retries (paper §III-B) can be matched to
//     any response.
//   - An HTTP mapping used between QoS clients and the request router
//     (GET /qos?key=K → body "true" or "false").
//
// Binary layout (big endian):
//
//	offset size  field
//	0      1     magic 'J'
//	1      1     version (1)
//	2      1     type (0 request, 1 response)
//	3      1     flags
//	4      8     request id
//	12     4     CRC32-IEEE of everything after this field
//	-- request --
//	16     4     cost (credits, fixed-point 1/1000)
//	20     2     key length n
//	22     n     key bytes
//	22+n   8     trace id (only when flags & FlagTraced)
//	-- response --
//	16     1     verdict (0 deny, 1 allow)
//	17     1     status
//	18     8     trace id (only when flags & FlagTraced)
//	26     4     server-side processing nanoseconds (only when traced)
//
// The cost field supports weighted admission (one API call may consume more
// than one credit); the paper's default is cost 1.
//
// The trace fields are the protocol's first optional extension and set the
// evolution pattern: new fields are appended after the existing payload and
// gated by a flag bit, so decoders that predate the field skip it (the key
// length / fixed response length bound what they read, and the CRC covers
// the full datagram on both sides). See DESIGN.md §7. The second extension
// is the batch section (FlagBatched, batch.go): extra request/response
// entries appended after the legacy payload, letting one datagram carry a
// whole fan-in batch while old decoders still answer entry 0.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Protocol constants.
const (
	Magic   = 'J'
	Version = 1

	typeRequest  = 0
	typeResponse = 1

	requestHeaderLen  = 22
	responseLen       = 18
	responseTracedLen = responseLen + 12 // + trace id + server nanos
	traceIDLen        = 8
	costScale         = 1000
	MaxKeyLen         = math.MaxUint16
	MaxDatagram       = 64 * 1024
	checksummedOffset = 16 // bytes [16:] are covered by the CRC
)

// FlagTraced marks a datagram carrying the optional trailing trace fields
// (request: 8-byte trace ID after the key; response: 8-byte trace ID plus
// 4-byte server-processing nanoseconds after the status byte).
const FlagTraced = 1 << 0

// Status codes carried in responses.
type Status uint8

// Response statuses.
const (
	// StatusOK means the decision came from the key's leaky bucket.
	StatusOK Status = 0
	// StatusDefaultRule means the key was absent from the database and the
	// server applied the configured default rule (paper §II-D).
	StatusDefaultRule Status = 1
	// StatusDefaultReply means the router exhausted its retries and
	// fabricated the response itself (paper §III-B: "the request router
	// returns a default reply to the QoS client").
	StatusDefaultReply Status = 2
	// StatusError means the server failed internally; verdict carries the
	// fail-open/fail-closed default.
	StatusError Status = 3
	// StatusLeased means the router admitted the key locally from a credit
	// lease (internal/lease) without consulting the server.
	StatusLeased Status = 4
	// StatusDegraded means the QoS server's CoDel queue controller answered
	// the request with the degraded-mode default instead of running the
	// admission decision: the request sat in the intake FIFO beyond the
	// sojourn target and was shed to keep the queue short (DESIGN.md §14).
	// The verdict carries the server's fail-open/fail-closed default and
	// consumed no credit.
	StatusDegraded Status = 5
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusDefaultRule:
		return "default-rule"
	case StatusDefaultReply:
		return "default-reply"
	case StatusError:
		return "error"
	case StatusLeased:
		return "leased"
	case StatusDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Request is a QoS admission query for one key.
type Request struct {
	// ID correlates retransmissions with responses.
	ID uint64
	// Key is the QoS key.
	Key string
	// Cost is the number of credits this call consumes (default 1).
	Cost float64
	// TraceID, when non-zero, marks the request as sampled for tracing and
	// rides the wire as an optional trailing field (internal/trace).
	TraceID uint64
	// Lease, when Lease.Op != 0, piggybacks a lease ask/renew/renounce on
	// this request as the flag-gated trailing lease section (lease.go).
	// Lease-carrying requests must travel as singletons, never batched.
	Lease LeaseAsk
}

// Response is the boolean admission decision.
type Response struct {
	// ID echoes the request ID.
	ID uint64
	// Allow is TRUE to admit, FALSE to deny (the paper's QoS response).
	Allow bool
	// Status qualifies how the decision was produced.
	Status Status
	// TraceID echoes the request's trace ID for sampled requests.
	TraceID uint64
	// ServerNanos is the QoS server's worker-side processing time in
	// nanoseconds, reported only on traced responses (capped at ~4.29 s by
	// the 4-byte wire field).
	ServerNanos int64
	// Lease, when Lease.Op != 0, piggybacks a lease grant/deny/revoke on
	// this response as the flag-gated trailing lease section (lease.go).
	Lease LeaseGrant
}

// Decode errors.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrBadMagic    = errors.New("wire: bad magic byte")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrBadType     = errors.New("wire: unexpected packet type")
	ErrBadChecksum = errors.New("wire: checksum mismatch")
	ErrKeyTooLong  = errors.New("wire: key exceeds 65535 bytes")
)

//janus:hotpath
func putHeader(buf []byte, typ, flags byte, id uint64) {
	buf[0] = Magic
	buf[1] = Version
	buf[2] = typ
	buf[3] = flags
	binary.BigEndian.PutUint64(buf[4:], id)
}

//janus:hotpath
func seal(buf []byte) {
	binary.BigEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[checksummedOffset:]))
}

//janus:hotpath
func checkHeader(buf []byte, wantType byte) error {
	if len(buf) < checksummedOffset {
		return ErrTruncated
	}
	if buf[0] != Magic {
		return ErrBadMagic
	}
	if buf[1] != Version {
		return ErrBadVersion
	}
	if buf[2] != wantType {
		return ErrBadType
	}
	if binary.BigEndian.Uint32(buf[12:]) != crc32.ChecksumIEEE(buf[checksummedOffset:]) {
		return ErrBadChecksum
	}
	return nil
}

// AppendRequest appends the encoded request to dst and returns the extended
// slice. The cost is clamped to non-negative and rounded to 1/1000 credit.
//
//janus:hotpath
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	if len(req.Key) > MaxKeyLen {
		return dst, ErrKeyTooLong
	}
	start := len(dst)
	need := requestHeaderLen + len(req.Key)
	var flags byte
	if req.TraceID != 0 {
		flags |= FlagTraced
		need += traceIDLen
	}
	if req.Lease.Op != 0 {
		if err := req.Lease.validate(); err != nil {
			return dst, err
		}
		flags |= FlagLease
		need += leaseAskLen
	}
	dst = growTo(dst, start, need)
	buf := dst[start:]
	putHeader(buf, typeRequest, flags, req.ID)
	binary.BigEndian.PutUint32(buf[16:], scaleCost(req.Cost))
	binary.BigEndian.PutUint16(buf[20:], uint16(len(req.Key)))
	copy(buf[22:], req.Key)
	off := requestHeaderLen + len(req.Key)
	if req.TraceID != 0 {
		binary.BigEndian.PutUint64(buf[off:], req.TraceID)
		off += traceIDLen
	}
	if req.Lease.Op != 0 {
		putLeaseAsk(buf[off:], req.Lease)
	}
	seal(buf)
	return dst, nil
}

// EncodeRequest encodes req into a fresh buffer.
func EncodeRequest(req Request) ([]byte, error) {
	return AppendRequest(make([]byte, 0, requestHeaderLen+len(req.Key)+traceIDLen), req)
}

// DecodeRequest parses a binary request datagram.
func DecodeRequest(buf []byte) (Request, error) {
	var req Request
	if err := DecodeRequestReuse(buf, &req); err != nil {
		return Request{}, err
	}
	return req, nil
}

// DecodeRequestReuse parses a binary request datagram into *req, reusing its
// storage: when the incoming key equals req.Key byte-for-byte the existing
// string is kept (the comparison against string(buf) does not allocate), so a
// decoder fed a recurring key set — the steady state of every router→server
// socket — performs zero heap allocations per datagram. Every field of *req
// is overwritten; on error *req is left in an unspecified state.
//
//janus:hotpath
func DecodeRequestReuse(buf []byte, req *Request) error {
	if err := checkHeader(buf, typeRequest); err != nil {
		return err
	}
	if len(buf) < requestHeaderLen {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[20:]))
	if len(buf) < requestHeaderLen+n {
		return ErrTruncated
	}
	req.ID = binary.BigEndian.Uint64(buf[4:])
	req.Cost = float64(binary.BigEndian.Uint32(buf[16:])) / costScale
	if key := buf[22 : 22+n]; req.Key != string(key) {
		//lint:ignore hotalloc a key change re-interns the string; recurring keys reuse it
		req.Key = string(key)
	}
	req.TraceID = 0
	req.Lease = LeaseAsk{}
	off := requestHeaderLen + n
	if buf[3]&FlagTraced != 0 {
		if len(buf) < off+traceIDLen {
			return ErrTruncated
		}
		req.TraceID = binary.BigEndian.Uint64(buf[off:])
		off += traceIDLen
	}
	if buf[3]&FlagLease != 0 {
		if buf[3]&FlagBatched != 0 {
			return ErrLeaseInBatch
		}
		var err error
		if req.Lease, _, err = parseLeaseAsk(buf, off); err != nil {
			return err
		}
	}
	return nil
}

// AppendResponse appends the encoded response to dst.
//
//janus:hotpath
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	start := len(dst)
	need := responseLen
	var flags byte
	if resp.TraceID != 0 {
		flags |= FlagTraced
		need = responseTracedLen
	}
	if resp.Lease.Op != 0 {
		if err := resp.Lease.validate(); err != nil {
			return dst, err
		}
		flags |= FlagLease
		need += leaseGrantLen + len(resp.Lease.Key)
	}
	dst = growTo(dst, start, need)
	buf := dst[start:]
	putHeader(buf, typeResponse, flags, resp.ID)
	putVerdict(buf[16:], resp)
	off := responseLen
	if resp.TraceID != 0 {
		binary.BigEndian.PutUint64(buf[18:], resp.TraceID)
		binary.BigEndian.PutUint32(buf[26:], clampNanos(resp.ServerNanos))
		off = responseTracedLen
	}
	if resp.Lease.Op != 0 {
		putLeaseGrant(buf[off:], resp.Lease)
	}
	seal(buf)
	return dst, nil
}

// EncodeResponse encodes resp into a fresh buffer.
func EncodeResponse(resp Response) ([]byte, error) {
	return AppendResponse(make([]byte, 0, responseTracedLen), resp)
}

// DecodeResponse parses a binary response datagram.
func DecodeResponse(buf []byte) (Response, error) {
	if err := checkHeader(buf, typeResponse); err != nil {
		return Response{}, err
	}
	if len(buf) < responseLen {
		return Response{}, ErrTruncated
	}
	resp := Response{
		ID:     binary.BigEndian.Uint64(buf[4:]),
		Allow:  buf[16] == 1,
		Status: Status(buf[17]),
	}
	off := responseLen
	if buf[3]&FlagTraced != 0 {
		if len(buf) < responseTracedLen {
			return Response{}, ErrTruncated
		}
		resp.TraceID = binary.BigEndian.Uint64(buf[18:])
		resp.ServerNanos = int64(binary.BigEndian.Uint32(buf[26:]))
		off = responseTracedLen
	}
	if buf[3]&FlagLease != 0 {
		if buf[3]&FlagBatched != 0 {
			return Response{}, ErrLeaseInBatch
		}
		var err error
		if resp.Lease, _, err = parseLeaseGrant(buf, off); err != nil {
			return Response{}, err
		}
	}
	return resp, nil
}
