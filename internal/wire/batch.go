package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// Batched framing (DESIGN.md §10). One datagram may carry several QoS
// requests (or responses) destined for the same QoS server, amortizing the
// per-decision syscall pair and FIFO enqueue that otherwise cap the
// router→server hop.
//
// The batch rides the protocol's trailing-optional-field convention: entry 0
// is encoded EXACTLY like a legacy singleton frame, and entries 1..N-1
// follow as a flag-gated extension after the legacy payload:
//
//	-- request, after entry 0's payload (key [+ trace id]) --
//	+0     2     extra entry count M (N = M + 1)
//	-- M times --
//	+0     8     entry id
//	+8     1     entry flags (bit 0: traced)
//	+9     4     cost (fixed-point 1/1000)
//	+13    2     key length n
//	+15    n     key bytes
//	+15+n  8     trace id (only when entry flags & FlagTraced)
//
//	-- response, after entry 0's payload (verdict/status [+ trace]) --
//	+0     2     extra entry count M
//	-- M times --
//	+0     8     entry id
//	+8     1     entry flags (bit 0: traced)
//	+9     1     verdict
//	+10    1     status
//	+11    8     trace id (only when traced)
//	+19    4     server nanos (only when traced)
//
// Consequences, by construction:
//
//   - A batch of one entry is byte-identical to the legacy frame: the
//     singleton fast path costs nothing on the wire and old peers cannot
//     tell a batching sender from a legacy one until a real batch forms.
//   - An old decoder receiving a batched frame parses entry 0 correctly
//     (the extension is trailing bytes it never reads, and the CRC covers
//     the whole datagram for both sides) and answers it with a legacy
//     singleton response; entries 1..N-1 simply time out and are retried.
//     A mixed-version cluster therefore stays CORRECT and degrades only in
//     throughput — see the forward-compat tests.
//   - The batch extension must remain the FINAL extension of the frame:
//     its decoder rejects trailing bytes, which is what lets it honor the
//     declared entry count exactly.
const FlagBatched = 1 << 1

// MaxBatchEntries bounds the entries one batched frame may carry; decoders
// reject frames declaring more (a 2-byte count field could otherwise claim
// 65535 entries and force a large allocation from a 20-byte datagram).
const MaxBatchEntries = 1024

const (
	batchCountLen     = 2
	batchReqEntryLen  = 8 + 1 + 4 + 2 // id, flags, cost, key length
	batchRespEntryLen = 8 + 1 + 1 + 1 // id, flags, verdict, status
)

// Batch framing errors.
var (
	ErrEmptyBatch     = errors.New("wire: batch carries no entries")
	ErrBatchTooLarge  = errors.New("wire: batch exceeds MaxBatchEntries")
	ErrDuplicateEntry = errors.New("wire: duplicate entry id in batch")
	ErrTrailingBytes  = errors.New("wire: bytes after the final batch entry")
)

// BatchRequest is a fan-in batch of QoS admission queries carried in one
// datagram. Entry IDs must be unique within the batch.
type BatchRequest struct {
	// Entries are the batched sub-requests, in submission order.
	Entries []Request
}

// BatchResponse is the batched admission decisions for one BatchRequest,
// in the same order.
type BatchResponse struct {
	// Entries are the per-request decisions.
	Entries []Response
}

// scaleCost converts a credit cost to the 1/1000 fixed-point wire value,
// clamping to non-negative and the 4-byte field.
//
//janus:hotpath
func scaleCost(cost float64) uint32 {
	if cost < 0 {
		cost = 0
	}
	scaled := uint64(math.Round(cost * costScale))
	if scaled > math.MaxUint32 {
		scaled = math.MaxUint32
	}
	return uint32(scaled)
}

// growTo extends dst so its length is start+need, reusing capacity.
//
//janus:hotpath
func growTo(dst []byte, start, need int) []byte {
	for cap(dst)-start < need {
		dst = append(dst[:cap(dst)], 0)
	}
	return dst[:start+need]
}

// AppendBatchRequest appends the encoded batch to dst. A single-entry batch
// encodes byte-identically to AppendRequest (the singleton fast path); a
// larger batch sets FlagBatched and appends the extension. Entry IDs must be
// unique (ErrDuplicateEntry) and the batch bounded (ErrBatchTooLarge).
//
//janus:hotpath
func AppendBatchRequest(dst []byte, b BatchRequest) ([]byte, error) {
	switch {
	case len(b.Entries) == 0:
		return dst, ErrEmptyBatch
	case len(b.Entries) == 1:
		return AppendRequest(dst, b.Entries[0])
	case len(b.Entries) > MaxBatchEntries:
		return dst, ErrBatchTooLarge
	}
	if err := checkUniqueIDs(b.Entries); err != nil {
		return dst, err
	}
	for _, e := range b.Entries {
		// The lease section and the batch extension are mutually exclusive
		// (lease.go): the batch extension must stay the frame's final bytes.
		if e.Lease.Op != 0 {
			return dst, ErrLeaseInBatch
		}
	}
	head := b.Entries[0]
	need := requestHeaderLen + len(head.Key) + batchCountLen
	flags := byte(FlagBatched)
	if head.TraceID != 0 {
		flags |= FlagTraced
		need += traceIDLen
	}
	for _, e := range b.Entries {
		if len(e.Key) > MaxKeyLen {
			return dst, ErrKeyTooLong
		}
	}
	for _, e := range b.Entries[1:] {
		need += batchReqEntryLen + len(e.Key)
		if e.TraceID != 0 {
			need += traceIDLen
		}
	}
	start := len(dst)
	dst = growTo(dst, start, need)
	buf := dst[start:]
	putHeader(buf, typeRequest, flags, head.ID)
	binary.BigEndian.PutUint32(buf[16:], scaleCost(head.Cost))
	binary.BigEndian.PutUint16(buf[20:], uint16(len(head.Key)))
	copy(buf[22:], head.Key)
	off := requestHeaderLen + len(head.Key)
	if head.TraceID != 0 {
		binary.BigEndian.PutUint64(buf[off:], head.TraceID)
		off += traceIDLen
	}
	binary.BigEndian.PutUint16(buf[off:], uint16(len(b.Entries)-1))
	off += batchCountLen
	for _, e := range b.Entries[1:] {
		binary.BigEndian.PutUint64(buf[off:], e.ID)
		var ef byte
		if e.TraceID != 0 {
			ef |= FlagTraced
		}
		buf[off+8] = ef
		binary.BigEndian.PutUint32(buf[off+9:], scaleCost(e.Cost))
		binary.BigEndian.PutUint16(buf[off+13:], uint16(len(e.Key)))
		off += batchReqEntryLen
		copy(buf[off:], e.Key)
		off += len(e.Key)
		if e.TraceID != 0 {
			binary.BigEndian.PutUint64(buf[off:], e.TraceID)
			off += traceIDLen
		}
	}
	seal(buf)
	return dst, nil
}

// DecodeBatchRequest parses a request datagram into its batch form. Legacy
// singleton frames decode as a batch of one, so one decoder serves both
// protocol generations. Batched frames must declare their entry count
// exactly: truncated entries, duplicate entry IDs, and bytes beyond the
// final entry are all rejected.
func DecodeBatchRequest(buf []byte) (BatchRequest, error) {
	var b BatchRequest
	if err := DecodeBatchRequestReuse(buf, &b); err != nil {
		return BatchRequest{}, err
	}
	return b, nil
}

// growEntries resizes b.Entries to n, reusing the backing array — and the
// key strings interned in it — across decodes.
//
//janus:hotpath
func growEntries(b *BatchRequest, n int) {
	var zero Request
	for cap(b.Entries) < n {
		b.Entries = append(b.Entries[:cap(b.Entries)], zero)
	}
	b.Entries = b.Entries[:n]
}

// DecodeBatchRequestReuse parses a request datagram into *b, reusing the
// entry slice and its interned key strings (see DecodeRequestReuse): a
// worker draining a socket whose batches carry a recurring key set decodes
// with zero heap allocations per datagram. Every entry is overwritten; on
// error *b is left in an unspecified state.
//
//janus:hotpath
func DecodeBatchRequestReuse(buf []byte, b *BatchRequest) error {
	if err := checkHeader(buf, typeRequest); err != nil {
		return err
	}
	if buf[3]&FlagBatched == 0 {
		growEntries(b, 1)
		return DecodeRequestReuse(buf, &b.Entries[0])
	}
	if buf[3]&FlagLease != 0 {
		return ErrLeaseInBatch
	}
	if len(buf) < requestHeaderLen {
		return ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[20:]))
	off := requestHeaderLen + n
	if len(buf) < off {
		return ErrTruncated
	}
	traceOff := 0
	if buf[3]&FlagTraced != 0 {
		if len(buf) < off+traceIDLen {
			return ErrTruncated
		}
		traceOff = off
		off += traceIDLen
	}
	if len(buf) < off+batchCountLen {
		return ErrTruncated
	}
	extras := int(binary.BigEndian.Uint16(buf[off:]))
	off += batchCountLen
	if extras+1 > MaxBatchEntries {
		return ErrBatchTooLarge
	}
	growEntries(b, extras+1)
	head := &b.Entries[0]
	head.ID = binary.BigEndian.Uint64(buf[4:])
	head.Cost = float64(binary.BigEndian.Uint32(buf[16:])) / costScale
	if key := buf[22 : 22+n]; head.Key != string(key) {
		//lint:ignore hotalloc a key change re-interns the string; recurring keys reuse it
		head.Key = string(key)
	}
	head.TraceID = 0
	head.Lease = LeaseAsk{}
	if traceOff != 0 {
		head.TraceID = binary.BigEndian.Uint64(buf[traceOff:])
	}
	for i := 1; i <= extras; i++ {
		if len(buf) < off+batchReqEntryLen {
			return ErrTruncated
		}
		e := &b.Entries[i]
		e.ID = binary.BigEndian.Uint64(buf[off:])
		e.Cost = float64(binary.BigEndian.Uint32(buf[off+9:])) / costScale
		e.TraceID = 0
		e.Lease = LeaseAsk{}
		ef := buf[off+8]
		kn := int(binary.BigEndian.Uint16(buf[off+13:]))
		off += batchReqEntryLen
		if len(buf) < off+kn {
			return ErrTruncated
		}
		if key := buf[off : off+kn]; e.Key != string(key) {
			//lint:ignore hotalloc a key change re-interns the string; recurring keys reuse it
			e.Key = string(key)
		}
		off += kn
		if ef&FlagTraced != 0 {
			if len(buf) < off+traceIDLen {
				return ErrTruncated
			}
			e.TraceID = binary.BigEndian.Uint64(buf[off:])
			off += traceIDLen
		}
	}
	if off != len(buf) {
		return ErrTrailingBytes
	}
	return checkUniqueIDs(b.Entries)
}

// AppendBatchResponse appends the encoded batched decisions to dst. A
// single-entry batch encodes byte-identically to AppendResponse.
//
//janus:hotpath
func AppendBatchResponse(dst []byte, b BatchResponse) ([]byte, error) {
	switch {
	case len(b.Entries) == 0:
		return dst, ErrEmptyBatch
	case len(b.Entries) == 1:
		return AppendResponse(dst, b.Entries[0])
	case len(b.Entries) > MaxBatchEntries:
		return dst, ErrBatchTooLarge
	}
	if err := checkUniqueRespIDs(b.Entries); err != nil {
		return dst, err
	}
	for _, e := range b.Entries {
		if e.Lease.Op != 0 {
			return dst, ErrLeaseInBatch
		}
	}
	head := b.Entries[0]
	need := responseLen + batchCountLen
	flags := byte(FlagBatched)
	if head.TraceID != 0 {
		flags |= FlagTraced
		need += traceIDLen + 4
	}
	for _, e := range b.Entries[1:] {
		need += batchRespEntryLen
		if e.TraceID != 0 {
			need += traceIDLen + 4
		}
	}
	start := len(dst)
	dst = growTo(dst, start, need)
	buf := dst[start:]
	putHeader(buf, typeResponse, flags, head.ID)
	putVerdict(buf[16:], head)
	off := responseLen
	if head.TraceID != 0 {
		binary.BigEndian.PutUint64(buf[18:], head.TraceID)
		binary.BigEndian.PutUint32(buf[26:], clampNanos(head.ServerNanos))
		off = responseTracedLen
	}
	binary.BigEndian.PutUint16(buf[off:], uint16(len(b.Entries)-1))
	off += batchCountLen
	for _, e := range b.Entries[1:] {
		binary.BigEndian.PutUint64(buf[off:], e.ID)
		var ef byte
		if e.TraceID != 0 {
			ef |= FlagTraced
		}
		buf[off+8] = ef
		putVerdict(buf[off+9:], e)
		off += batchRespEntryLen
		if e.TraceID != 0 {
			binary.BigEndian.PutUint64(buf[off:], e.TraceID)
			binary.BigEndian.PutUint32(buf[off+traceIDLen:], clampNanos(e.ServerNanos))
			off += traceIDLen + 4
		}
	}
	seal(buf)
	return dst, nil
}

// DecodeBatchResponse parses a response datagram into its batch form; legacy
// singleton frames decode as a batch of one. A batching client therefore
// keeps working against a pre-batching server, whose singleton replies
// (answering entry 0 of any batch it received) decode here unchanged.
func DecodeBatchResponse(buf []byte) (BatchResponse, error) {
	if err := checkHeader(buf, typeResponse); err != nil {
		return BatchResponse{}, err
	}
	if buf[3]&FlagBatched == 0 {
		resp, err := DecodeResponse(buf)
		if err != nil {
			return BatchResponse{}, err
		}
		return BatchResponse{Entries: []Response{resp}}, nil
	}
	if buf[3]&FlagLease != 0 {
		return BatchResponse{}, ErrLeaseInBatch
	}
	if len(buf) < responseLen {
		return BatchResponse{}, ErrTruncated
	}
	head := Response{
		ID:     binary.BigEndian.Uint64(buf[4:]),
		Allow:  buf[16] == 1,
		Status: Status(buf[17]),
	}
	off := responseLen
	if buf[3]&FlagTraced != 0 {
		if len(buf) < responseTracedLen {
			return BatchResponse{}, ErrTruncated
		}
		head.TraceID = binary.BigEndian.Uint64(buf[18:])
		head.ServerNanos = int64(binary.BigEndian.Uint32(buf[26:]))
		off = responseTracedLen
	}
	if len(buf) < off+batchCountLen {
		return BatchResponse{}, ErrTruncated
	}
	extras := int(binary.BigEndian.Uint16(buf[off:]))
	off += batchCountLen
	if extras+1 > MaxBatchEntries {
		return BatchResponse{}, ErrBatchTooLarge
	}
	entries := make([]Response, 1, extras+1)
	entries[0] = head
	for i := 0; i < extras; i++ {
		if len(buf) < off+batchRespEntryLen {
			return BatchResponse{}, ErrTruncated
		}
		e := Response{
			ID:     binary.BigEndian.Uint64(buf[off:]),
			Allow:  buf[off+9] == 1,
			Status: Status(buf[off+10]),
		}
		ef := buf[off+8]
		off += batchRespEntryLen
		if ef&FlagTraced != 0 {
			if len(buf) < off+traceIDLen+4 {
				return BatchResponse{}, ErrTruncated
			}
			e.TraceID = binary.BigEndian.Uint64(buf[off:])
			e.ServerNanos = int64(binary.BigEndian.Uint32(buf[off+traceIDLen:]))
			off += traceIDLen + 4
		}
		entries = append(entries, e)
	}
	if off != len(buf) {
		return BatchResponse{}, ErrTrailingBytes
	}
	if err := checkUniqueRespIDs(entries); err != nil {
		return BatchResponse{}, err
	}
	return BatchResponse{Entries: entries}, nil
}

// putVerdict writes the 2-byte verdict/status pair of one response entry.
//
//janus:hotpath
func putVerdict(buf []byte, resp Response) {
	if resp.Allow {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	buf[1] = byte(resp.Status)
}

// clampNanos converts server-processing nanoseconds to the 4-byte wire
// field (clamped to [0, ~4.29s], matching the singleton encoding).
//
//janus:hotpath
func clampNanos(nanos int64) uint32 {
	if nanos < 0 {
		nanos = 0
	}
	if nanos > math.MaxUint32 {
		nanos = math.MaxUint32
	}
	return uint32(nanos)
}

// uniqueScanMax is the batch size at or below which duplicate detection uses
// the quadratic scan: for the coalescer-sized batches that dominate the hot
// path, n² comparisons over a cache-resident slice beat building a map — and
// allocate nothing.
const uniqueScanMax = 64

// checkUniqueIDs rejects duplicate request IDs within one batch: the ID is
// the response-correlation key, so a duplicate would make two entries
// indistinguishable to the sender (and a duplicated entry is how a corrupt
// or replayed partial batch tries to double-charge a retry).
//
//janus:hotpath
func checkUniqueIDs(entries []Request) error {
	if len(entries) <= uniqueScanMax {
		for i := 1; i < len(entries); i++ {
			for j := 0; j < i; j++ {
				if entries[i].ID == entries[j].ID {
					return ErrDuplicateEntry
				}
			}
		}
		return nil
	}
	//lint:ignore hotalloc batches past uniqueScanMax are rare; the map check is off the pin path
	return mapUniqueIDs(entries)
}

//janus:hotpath
func checkUniqueRespIDs(entries []Response) error {
	if len(entries) <= uniqueScanMax {
		for i := 1; i < len(entries); i++ {
			for j := 0; j < i; j++ {
				if entries[i].ID == entries[j].ID {
					return ErrDuplicateEntry
				}
			}
		}
		return nil
	}
	//lint:ignore hotalloc batches past uniqueScanMax are rare; the map check is off the pin path
	return mapUniqueRespIDs(entries)
}

// mapUniqueIDs is the large-batch slow path of checkUniqueIDs.
func mapUniqueIDs(entries []Request) error {
	seen := make(map[uint64]struct{}, len(entries))
	for _, e := range entries {
		if _, dup := seen[e.ID]; dup {
			return ErrDuplicateEntry
		}
		seen[e.ID] = struct{}{}
	}
	return nil
}

func mapUniqueRespIDs(entries []Response) error {
	seen := make(map[uint64]struct{}, len(entries))
	for _, e := range entries {
		if _, dup := seen[e.ID]; dup {
			return ErrDuplicateEntry
		}
		seen[e.ID] = struct{}{}
	}
	return nil
}
