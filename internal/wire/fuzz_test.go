package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets; `go test` runs the seed corpus, `go test -fuzz=.`
// explores. Properties: decoders never panic, and any datagram a decoder
// accepts re-encodes to an equivalent value.

func FuzzDecodeRequest(f *testing.F) {
	seed, _ := EncodeRequest(Request{ID: 7, Key: "alice", Cost: 1})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Accepted datagrams round-trip.
		re, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		back, err := DecodeRequest(re)
		if err != nil || back != req {
			t.Fatalf("round trip changed value: %+v -> %+v (%v)", req, back, err)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(EncodeResponse(Response{ID: 9, Allow: true, Status: StatusOK}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{Magic}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		back, err := DecodeResponse(EncodeResponse(resp))
		if err != nil || back != resp {
			t.Fatalf("round trip changed value: %+v -> %+v (%v)", resp, back, err)
		}
	})
}
