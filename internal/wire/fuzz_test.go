package wire

import (
	"bytes"
	"testing"
)

// Native fuzz targets; `go test` runs the seed corpus, `go test -fuzz=.`
// explores. Properties: decoders never panic, and any datagram a decoder
// accepts re-encodes to an equivalent value.

func FuzzDecodeRequest(f *testing.F) {
	seed, _ := EncodeRequest(Request{ID: 7, Key: "alice", Cost: 1})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{Magic})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Accepted datagrams round-trip.
		re, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		back, err := DecodeRequest(re)
		if err != nil || back != req {
			t.Fatalf("round trip changed value: %+v -> %+v (%v)", req, back, err)
		}
	})
}

// FuzzBatchFrameDecode exercises the batched decoders (which subsume the
// legacy singleton format): no panics; an accepted frame declares a sane
// entry count (1..MaxBatchEntries, honored exactly) with unique entry IDs;
// and accepted batches round-trip through the encoder unchanged.
func FuzzBatchFrameDecode(f *testing.F) {
	reqSeed, _ := AppendBatchRequest(nil, BatchRequest{Entries: []Request{
		{ID: 1, Key: "alice", Cost: 1},
		{ID: 2, Key: "bob", Cost: 2, TraceID: 77},
		{ID: 3, Key: "carol", Cost: 0.5},
	}})
	respSeed, _ := AppendBatchResponse(nil, BatchResponse{Entries: []Response{
		{ID: 1, Allow: true, Status: StatusOK},
		{ID: 2, Allow: false, Status: StatusDefaultRule, TraceID: 77, ServerNanos: 55},
	}})
	legacySeed, _ := EncodeRequest(Request{ID: 9, Key: "dave", Cost: 1})
	f.Add(reqSeed)
	f.Add(respSeed)
	f.Add(legacySeed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 96))
	f.Fuzz(func(t *testing.T, data []byte) {
		if br, err := DecodeBatchRequest(data); err == nil {
			checkAcceptedBatchRequest(t, br)
		}
		if bresp, err := DecodeBatchResponse(data); err == nil {
			checkAcceptedBatchResponse(t, bresp)
		}
	})
}

func checkAcceptedBatchRequest(t *testing.T, br BatchRequest) {
	t.Helper()
	if len(br.Entries) == 0 || len(br.Entries) > MaxBatchEntries {
		t.Fatalf("accepted batch with %d entries", len(br.Entries))
	}
	seen := make(map[uint64]bool, len(br.Entries))
	for _, e := range br.Entries {
		if seen[e.ID] {
			t.Fatalf("accepted batch with duplicate entry id %d", e.ID)
		}
		seen[e.ID] = true
	}
	re, err := AppendBatchRequest(nil, br)
	if err != nil {
		t.Fatalf("re-encode of accepted batch failed: %v", err)
	}
	back, err := DecodeBatchRequest(re)
	if err != nil || len(back.Entries) != len(br.Entries) {
		t.Fatalf("round trip changed entry count: %d -> %d (%v)", len(br.Entries), len(back.Entries), err)
	}
	for i := range back.Entries {
		if back.Entries[i] != br.Entries[i] {
			t.Fatalf("round trip changed entry %d: %+v -> %+v", i, br.Entries[i], back.Entries[i])
		}
	}
}

func checkAcceptedBatchResponse(t *testing.T, br BatchResponse) {
	t.Helper()
	if len(br.Entries) == 0 || len(br.Entries) > MaxBatchEntries {
		t.Fatalf("accepted batch with %d entries", len(br.Entries))
	}
	re, err := AppendBatchResponse(nil, br)
	if err != nil {
		t.Fatalf("re-encode of accepted batch failed: %v", err)
	}
	back, err := DecodeBatchResponse(re)
	if err != nil || len(back.Entries) != len(br.Entries) {
		t.Fatalf("round trip changed entry count: %d -> %d (%v)", len(br.Entries), len(back.Entries), err)
	}
	for i := range back.Entries {
		if back.Entries[i] != br.Entries[i] {
			t.Fatalf("round trip changed entry %d: %+v -> %+v", i, br.Entries[i], back.Entries[i])
		}
	}
}

func FuzzDecodeResponse(f *testing.F) {
	f.Add(mustEncodeResponse(Response{ID: 9, Allow: true, Status: StatusOK}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{Magic}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		back, err := DecodeResponse(mustEncodeResponse(resp))
		if err != nil || back != resp {
			t.Fatalf("round trip changed value: %+v -> %+v (%v)", resp, back, err)
		}
	})
}
