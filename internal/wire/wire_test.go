package wire

import (
	"math"
	"net/url"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 0, Key: "a", Cost: 1},
		{ID: 42, Key: "user-123/db-photos", Cost: 1},
		{ID: math.MaxUint64, Key: strings.Repeat("x", 1000), Cost: 2.5},
		{ID: 7, Key: "k", Cost: 0},
		{ID: 8, Key: "日本語キー", Cost: 0.001},
	}
	for _, want := range cases {
		buf, err := EncodeRequest(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, want := range []Response{
		{ID: 1, Allow: true, Status: StatusOK},
		{ID: 2, Allow: false, Status: StatusDefaultRule},
		{ID: 3, Allow: true, Status: StatusDefaultReply},
		{ID: math.MaxUint64, Allow: false, Status: StatusError},
	} {
		got, err := DecodeResponse(mustEncodeResponse(want))
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, key string, costMilli uint32) bool {
		if len(key) > MaxKeyLen {
			key = key[:MaxKeyLen]
		}
		want := Request{ID: id, Key: key, Cost: float64(costMilli) / 1000}
		buf, err := EncodeRequest(want)
		if err != nil {
			return false
		}
		got, err := DecodeRequest(buf)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyTooLong(t *testing.T) {
	_, err := EncodeRequest(Request{Key: strings.Repeat("k", MaxKeyLen+1)})
	if err != ErrKeyTooLong {
		t.Fatalf("err = %v, want ErrKeyTooLong", err)
	}
}

func TestNegativeCostClamped(t *testing.T) {
	buf, err := EncodeRequest(Request{ID: 1, Key: "k", Cost: -5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(buf)
	if err != nil || got.Cost != 0 {
		t.Fatalf("cost = %v err=%v, want 0", got.Cost, err)
	}
}

func TestHugeCostSaturates(t *testing.T) {
	buf, err := EncodeRequest(Request{ID: 1, Key: "k", Cost: 1e18})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != float64(math.MaxUint32)/1000 {
		t.Fatalf("cost = %v, want saturation", got.Cost)
	}
}

func TestDecodeErrors(t *testing.T) {
	good, _ := EncodeRequest(Request{ID: 9, Key: "hello", Cost: 1})

	t.Run("truncated header", func(t *testing.T) {
		if _, err := DecodeRequest(good[:10]); err != ErrTruncated {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated key", func(t *testing.T) {
		if _, err := DecodeRequest(good[:len(good)-2]); err == nil {
			t.Fatal("no error on truncated key")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := DecodeRequest(b); err != ErrBadMagic {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[1] = 99
		if _, err := DecodeRequest(b); err != ErrBadVersion {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("wrong type", func(t *testing.T) {
		if _, err := DecodeResponse(good); err != ErrBadType {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupt payload", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-1] ^= 0xFF
		if _, err := DecodeRequest(b); err != ErrBadChecksum {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("corrupt cost", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[17] ^= 0x01
		if _, err := DecodeRequest(b); err != ErrBadChecksum {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestFuzzDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		DecodeRequest(data)
		DecodeResponse(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 4096)
	buf, err := AppendRequest(buf, Request{ID: 1, Key: "aaa", Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	first := len(buf)
	buf, err = AppendRequest(buf, Request{ID: 2, Key: "bbbb", Cost: 1})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := DecodeRequest(buf[:first])
	if err != nil || r1.Key != "aaa" {
		t.Fatalf("first record: %+v, %v", r1, err)
	}
	r2, err := DecodeRequest(buf[first:])
	if err != nil || r2.Key != "bbbb" {
		t.Fatalf("second record: %+v, %v", r2, err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusOK:           "ok",
		StatusDefaultRule:  "default-rule",
		StatusDefaultReply: "default-reply",
		StatusError:        "error",
		Status(77):         "status(77)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestHTTPQueryRoundTrip(t *testing.T) {
	for _, want := range []Request{
		{Key: "1.2.3.4", Cost: 1},
		{Key: "user/db?strange&chars=1", Cost: 2},
		{Key: "k", Cost: 0.5},
	} {
		uri := FormatHTTPQuery(want)
		u, err := url.Parse(uri)
		if err != nil {
			t.Fatalf("parse %q: %v", uri, err)
		}
		got, err := ParseHTTPQuery(u.Query())
		if err != nil {
			t.Fatalf("ParseHTTPQuery(%q): %v", uri, err)
		}
		if got.Key != want.Key || got.Cost != want.Cost {
			t.Fatalf("round trip %q: got %+v, want %+v", uri, got, want)
		}
	}
}

func TestHTTPQueryDefaultsCostToOne(t *testing.T) {
	req, err := ParseHTTPQuery(url.Values{HTTPKeyParam: {"k"}})
	if err != nil || req.Cost != 1 {
		t.Fatalf("req=%+v err=%v", req, err)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	if _, err := ParseHTTPQuery(url.Values{}); err == nil {
		t.Error("missing key accepted")
	}
	if _, err := ParseHTTPQuery(url.Values{HTTPKeyParam: {"k"}, HTTPCostParam: {"abc"}}); err == nil {
		t.Error("bad cost accepted")
	}
	if _, err := ParseHTTPQuery(url.Values{HTTPKeyParam: {"k"}, HTTPCostParam: {"-1"}}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := ParseHTTPQuery(url.Values{HTTPKeyParam: {strings.Repeat("x", MaxKeyLen+1)}}); err == nil {
		t.Error("oversized key accepted")
	}
}

func TestHTTPBody(t *testing.T) {
	if FormatHTTPBody(true) != BodyAllow || FormatHTTPBody(false) != BodyDeny {
		t.Fatal("body formatting wrong")
	}
	if v, err := ParseHTTPBody("true\n"); err != nil || !v {
		t.Fatalf("parse true: %v %v", v, err)
	}
	if v, err := ParseHTTPBody(" false "); err != nil || v {
		t.Fatalf("parse false: %v %v", v, err)
	}
	if _, err := ParseHTTPBody("maybe"); err == nil {
		t.Fatal("invalid body accepted")
	}
}
