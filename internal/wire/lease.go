package wire

import (
	"encoding/binary"
	"errors"
	"time"
)

// Lease framing (DESIGN.md §11). A credit lease delegates a bounded slice of
// a bucket's refill rate to a router so hot-key admission happens locally,
// without the UDP round trip. All lease traffic piggybacks on ordinary
// admission exchanges as the protocol's third flag-gated trailing extension:
// a request may carry an ask/renew/renounce section after its key (and trace
// id), and a response may carry a grant/deny/revoke section after its status
// (and trace fields). No dedicated lease RPC exists — a router asks by
// decorating a request it had to send anyway, and a server revokes by
// decorating whatever response it next sends to that holder.
//
//	-- request lease section, after key [+ trace id] --
//	+0     1     op (1 ask, 2 renew, 3 renounce)
//	+1     4     observed demand, decisions/second (fixed-point 1/1000)
//	+5     8     membership epoch the holder is operating under
//
//	-- response lease section, after verdict/status [+ trace fields] --
//	+0     1     op (1 grant, 2 deny, 3 revoke)
//	+1     4     rate share, credits/second (fixed-point 1/1000)
//	+5     4     burst, credits (fixed-point 1/1000)
//	+9     4     TTL, milliseconds (grant: 1..MaxLeaseTTL)
//	+13    8     membership epoch (echo of the ask's epoch)
//	+21    2     key length m (0: the enclosing frame's key)
//	+23    m     key bytes (revoke only: lets a revocation for key A ride a
//	             response for key B, since leased keys generate no traffic)
//
// Old decoders ignore the section (trailing bytes they never read; the CRC
// covers the full datagram), so a leasing router against an old janusd gets
// plain responses and simply never installs a lease, and an old router never
// sets the flag — mixed-version clusters behave exactly as before.
//
// The lease section rides ONLY singleton frames: the batch extension must
// remain the final extension of batched frames (its decoder rejects trailing
// bytes), so FlagLease and FlagBatched are mutually exclusive and the
// transport's coalescer routes lease-carrying requests around the batcher.
const FlagLease = 1 << 2

// MaxLeaseTTL bounds the lifetime of one lease grant; the decoder rejects
// frames claiming more. The TTL is the safety horizon — after revocation
// loss or a partition, a holder can over-admit for at most this long — so it
// must stay short relative to bucket drain times.
const MaxLeaseTTL = 60 * time.Second

// Lease operation codes. Request and response sections share the numbering
// but not the meaning, so each side gets its own names.
type LeaseOp uint8

// Request-side lease ops.
const (
	// LeaseOpAsk requests a fresh lease for the enclosing request's key.
	LeaseOpAsk LeaseOp = 1
	// LeaseOpRenew extends an existing lease (and adapts its rate share to
	// the carried demand).
	LeaseOpRenew LeaseOp = 2
	// LeaseOpRenounce returns a lease the holder no longer wants, freeing
	// the reserved refill rate immediately instead of at TTL expiry.
	LeaseOpRenounce LeaseOp = 3
)

// Response-side lease ops.
const (
	// LeaseOpGrant delegates Rate/Burst for TTL to the asking holder.
	LeaseOpGrant LeaseOp = 1
	// LeaseOpDeny refuses the ask; the holder keeps falling through.
	LeaseOpDeny LeaseOp = 2
	// LeaseOpRevoke withdraws a lease before its TTL (rule edited, bucket
	// handed off, key evicted). Key names the revoked lease when it differs
	// from the enclosing frame's key.
	LeaseOpRevoke LeaseOp = 3
)

// LeaseAsk is the request-side lease section. The zero value (Op == 0)
// means no lease section, mirroring TraceID == 0 for the trace extension.
type LeaseAsk struct {
	// Op is LeaseOpAsk, LeaseOpRenew, or LeaseOpRenounce.
	Op LeaseOp
	// Demand is the holder's observed decision rate for the key
	// (decisions/second, EWMA); the server sizes the rate share from it.
	Demand float64
	// Epoch is the membership epoch the holder operates under; grants are
	// scoped to it and die with the view.
	Epoch uint64
}

// LeaseGrant is the response-side lease section. The zero value (Op == 0)
// means no lease section.
type LeaseGrant struct {
	// Op is LeaseOpGrant, LeaseOpDeny, or LeaseOpRevoke.
	Op LeaseOp
	// Rate is the delegated refill share in credits/second.
	Rate float64
	// Burst is the credit the holder's local bucket starts with (prepaid
	// out of the server bucket's current credit).
	Burst float64
	// TTL bounds the lease lifetime; (0, MaxLeaseTTL] for grants,
	// millisecond resolution on the wire.
	TTL time.Duration
	// Epoch echoes the ask's epoch.
	Epoch uint64
	// Key names the leased key when it differs from the enclosing frame's
	// key (piggybacked revocations); empty otherwise.
	Key string
}

const (
	leaseAskLen   = 1 + 4 + 8             // op, demand, epoch
	leaseGrantLen = 1 + 4 + 4 + 4 + 8 + 2 // op, rate, burst, ttl, epoch, key length
)

// Lease framing errors.
var (
	ErrLeaseInBatch = errors.New("wire: lease section on a batched frame")
	ErrLeaseBadOp   = errors.New("wire: bad lease op")
	ErrLeaseBounds  = errors.New("wire: lease TTL outside (0, MaxLeaseTTL]")
)

func (a LeaseAsk) validate() error {
	if a.Op < LeaseOpAsk || a.Op > LeaseOpRenounce {
		return ErrLeaseBadOp
	}
	return nil
}

func (g LeaseGrant) validate() error {
	switch {
	case g.Op < LeaseOpGrant || g.Op > LeaseOpRevoke:
		return ErrLeaseBadOp
	case g.Op == LeaseOpGrant && (g.TTL <= 0 || g.TTL > MaxLeaseTTL):
		return ErrLeaseBounds
	case g.TTL < 0 || g.TTL > MaxLeaseTTL:
		return ErrLeaseBounds
	case len(g.Key) > MaxKeyLen:
		return ErrKeyTooLong
	default:
		return nil
	}
}

//janus:hotpath
func putLeaseAsk(buf []byte, a LeaseAsk) {
	buf[0] = byte(a.Op)
	binary.BigEndian.PutUint32(buf[1:], scaleCost(a.Demand))
	binary.BigEndian.PutUint64(buf[5:], a.Epoch)
}

// parseLeaseAsk decodes the request lease section at buf[off:], returning
// the section and the new offset.
//
//janus:hotpath
func parseLeaseAsk(buf []byte, off int) (LeaseAsk, int, error) {
	if len(buf) < off+leaseAskLen {
		return LeaseAsk{}, off, ErrTruncated
	}
	a := LeaseAsk{
		Op:     LeaseOp(buf[off]),
		Demand: float64(binary.BigEndian.Uint32(buf[off+1:])) / costScale,
		Epoch:  binary.BigEndian.Uint64(buf[off+5:]),
	}
	if err := a.validate(); err != nil {
		return LeaseAsk{}, off, err
	}
	return a, off + leaseAskLen, nil
}

//janus:hotpath
func putLeaseGrant(buf []byte, g LeaseGrant) {
	buf[0] = byte(g.Op)
	binary.BigEndian.PutUint32(buf[1:], scaleCost(g.Rate))
	binary.BigEndian.PutUint32(buf[5:], scaleCost(g.Burst))
	binary.BigEndian.PutUint32(buf[9:], uint32(g.TTL/time.Millisecond))
	binary.BigEndian.PutUint64(buf[13:], g.Epoch)
	binary.BigEndian.PutUint16(buf[21:], uint16(len(g.Key)))
	copy(buf[23:], g.Key)
}

// parseLeaseGrant decodes the response lease section at buf[off:], returning
// the section and the new offset.
//
//janus:hotpath
func parseLeaseGrant(buf []byte, off int) (LeaseGrant, int, error) {
	if len(buf) < off+leaseGrantLen {
		return LeaseGrant{}, off, ErrTruncated
	}
	g := LeaseGrant{
		Op:    LeaseOp(buf[off]),
		Rate:  float64(binary.BigEndian.Uint32(buf[off+1:])) / costScale,
		Burst: float64(binary.BigEndian.Uint32(buf[off+5:])) / costScale,
		TTL:   time.Duration(binary.BigEndian.Uint32(buf[off+9:])) * time.Millisecond,
		Epoch: binary.BigEndian.Uint64(buf[off+13:]),
	}
	m := int(binary.BigEndian.Uint16(buf[off+21:]))
	off += leaseGrantLen
	if len(buf) < off+m {
		return LeaseGrant{}, off, ErrTruncated
	}
	if m > 0 {
		// Only piggybacked revocations name a key; grants and denials (the
		// steady-state renewal traffic) leave m == 0 and allocate nothing.
		//lint:ignore hotalloc revocation frames are rare control traffic
		g.Key = string(buf[off : off+m])
	}
	off += m
	if err := g.validate(); err != nil {
		return LeaseGrant{}, off, err
	}
	return g, off, nil
}
