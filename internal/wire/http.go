package wire

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// HTTP mapping of the key-value protocol: the QoS client issues
//
//	GET /qos?key=<QoS key>[&cost=<credits>]
//
// and the router answers 200 with body "true" or "false" (paper §II: "The
// QoS response is a boolean value").
const (
	// HTTPPath is the admission endpoint served by the request router.
	HTTPPath = "/qos"
	// HTTPKeyParam is the query parameter carrying the QoS key.
	HTTPKeyParam = "key"
	// HTTPCostParam optionally carries a non-default credit cost.
	HTTPCostParam = "cost"
	// HTTPStatusHeader reports the wire.Status of the decision.
	HTTPStatusHeader = "X-Janus-Status"
	// BodyAllow and BodyDeny are the two legal response bodies.
	BodyAllow = "true"
	BodyDeny  = "false"
)

// FormatHTTPQuery renders the request-URI (path + query) for a request.
func FormatHTTPQuery(req Request) string {
	v := url.Values{}
	v.Set(HTTPKeyParam, req.Key)
	if req.Cost != 0 && req.Cost != 1 {
		v.Set(HTTPCostParam, strconv.FormatFloat(req.Cost, 'f', -1, 64))
	}
	return HTTPPath + "?" + v.Encode()
}

// ParseHTTPQuery extracts a Request from URL query values. A missing cost
// defaults to 1 credit.
func ParseHTTPQuery(values url.Values) (Request, error) {
	key := values.Get(HTTPKeyParam)
	if key == "" {
		return Request{}, fmt.Errorf("wire: missing %q query parameter", HTTPKeyParam)
	}
	if len(key) > MaxKeyLen {
		return Request{}, ErrKeyTooLong
	}
	req := Request{Key: key, Cost: 1}
	if c := values.Get(HTTPCostParam); c != "" {
		cost, err := strconv.ParseFloat(c, 64)
		if err != nil || cost < 0 {
			return Request{}, fmt.Errorf("wire: invalid cost %q", c)
		}
		req.Cost = cost
	}
	return req, nil
}

// FormatHTTPBody renders the response body for an admission decision.
func FormatHTTPBody(allow bool) string {
	if allow {
		return BodyAllow
	}
	return BodyDeny
}

// ParseHTTPBody interprets a response body.
func ParseHTTPBody(body string) (bool, error) {
	switch strings.TrimSpace(body) {
	case BodyAllow:
		return true, nil
	case BodyDeny:
		return false, nil
	default:
		return false, fmt.Errorf("wire: invalid response body %q", body)
	}
}
