package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

func sampleBatchReq() BatchRequest {
	return BatchRequest{Entries: []Request{
		{ID: 101, Key: "alice", Cost: 1},
		{ID: 102, Key: "bob", Cost: 2.5, TraceID: 0xdeadbeef},
		{ID: 103, Key: "", Cost: 0.001},
		{ID: 104, Key: "carol/with/slashes", Cost: 3},
	}}
}

func sampleBatchResp() BatchResponse {
	return BatchResponse{Entries: []Response{
		{ID: 101, Allow: true, Status: StatusOK},
		{ID: 102, Allow: false, Status: StatusDefaultRule, TraceID: 0xdeadbeef, ServerNanos: 1234},
		{ID: 103, Allow: true, Status: StatusError},
	}}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	b := sampleBatchReq()
	pkt, err := AppendBatchRequest(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchRequest(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip changed value:\n got %+v\nwant %+v", got, b)
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	b := sampleBatchResp()
	pkt, err := AppendBatchResponse(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchResponse(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip changed value:\n got %+v\nwant %+v", got, b)
	}
}

// A batch of one must be byte-identical to the legacy singleton frame: that
// is the singleton fast path AND the whole mixed-version story for a
// batching router talking to a pre-batching janusd.
func TestSingletonBatchIsLegacyFrame(t *testing.T) {
	req := Request{ID: 7, Key: "alice", Cost: 2, TraceID: 42}
	legacy, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := AppendBatchRequest(nil, BatchRequest{Entries: []Request{req}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, batched) {
		t.Fatalf("singleton batch differs from legacy frame:\nlegacy  %x\nbatched %x", legacy, batched)
	}
	resp := Response{ID: 7, Allow: true, Status: StatusOK, TraceID: 42, ServerNanos: 99}
	legacyR := mustEncodeResponse(resp)
	batchedR, err := AppendBatchResponse(nil, BatchResponse{Entries: []Response{resp}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacyR, batchedR) {
		t.Fatalf("singleton batch response differs from legacy frame")
	}
}

// An old decoder (DecodeRequest, predating FlagBatched) receiving a batched
// frame must still parse entry 0 correctly — the batch section is trailing
// bytes it never reads. This is what keeps a mixed-version cluster correct:
// the old server answers entry 0, the rest time out and are retried.
func TestOldDecoderReadsEntryZeroOfBatch(t *testing.T) {
	b := sampleBatchReq()
	pkt, err := AppendBatchRequest(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(pkt)
	if err != nil {
		t.Fatalf("old decoder rejected batched frame: %v", err)
	}
	if got != b.Entries[0] {
		t.Fatalf("old decoder read %+v, want entry 0 %+v", got, b.Entries[0])
	}
	// Traced entry 0: the trace id sits between the key and the batch
	// section; both decoders must agree on its position.
	b.Entries[0].TraceID = 0xfeed
	pkt, err = AppendBatchRequest(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeRequest(pkt)
	if err != nil || got != b.Entries[0] {
		t.Fatalf("old decoder on traced batch: got %+v err %v, want %+v", got, err, b.Entries[0])
	}
}

func TestOldDecoderReadsEntryZeroOfBatchResponse(t *testing.T) {
	b := sampleBatchResp()
	pkt, err := AppendBatchResponse(nil, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(pkt)
	if err != nil {
		t.Fatalf("old decoder rejected batched response: %v", err)
	}
	if got != b.Entries[0] {
		t.Fatalf("old decoder read %+v, want entry 0 %+v", got, b.Entries[0])
	}
}

// Legacy frames decode as a batch of one through the batch decoders, so a
// batching receiver needs exactly one decode path.
func TestLegacyFrameDecodesAsSingletonBatch(t *testing.T) {
	req := Request{ID: 9, Key: "alice", Cost: 1}
	pkt, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchRequest(pkt)
	if err != nil || len(got.Entries) != 1 || got.Entries[0] != req {
		t.Fatalf("got %+v err %v", got, err)
	}
	resp := Response{ID: 9, Allow: true, Status: StatusDefaultReply}
	gotR, err := DecodeBatchResponse(mustEncodeResponse(resp))
	if err != nil || len(gotR.Entries) != 1 || gotR.Entries[0] != resp {
		t.Fatalf("got %+v err %v", gotR, err)
	}
}

func TestBatchDecodeRejections(t *testing.T) {
	b := sampleBatchReq()
	pkt, err := AppendBatchRequest(nil, b)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated at every prefix length inside the batch section: never a
	// panic, and (once past the header) always ErrTruncated or ErrBadChecksum.
	for cut := 0; cut < len(pkt); cut++ {
		if _, err := DecodeBatchRequest(pkt[:cut]); err == nil {
			t.Fatalf("truncated frame (%d/%d bytes) accepted", cut, len(pkt))
		}
	}

	// Trailing bytes after the final entry: entry count must be honored.
	junk := append(append([]byte{}, pkt...), 0xAA)
	reseal(junk)
	if _, err := DecodeBatchRequest(junk); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailingBytes", err)
	}

	// Duplicated entry: same ID twice in one frame.
	dup := sampleBatchReq()
	dup.Entries[2].ID = dup.Entries[1].ID
	if _, err := AppendBatchRequest(nil, dup); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("encoder accepted duplicate IDs: %v", err)
	}
	// Forge the same on the wire (encoder refuses, so patch the bytes):
	// entry 1's id field starts right after entry 0's payload + count.
	forged := append([]byte{}, pkt...)
	off := requestHeaderLen + len(b.Entries[0].Key) + batchCountLen
	binary.BigEndian.PutUint64(forged[off:], b.Entries[0].ID)
	reseal(forged)
	if _, err := DecodeBatchRequest(forged); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("decoder accepted duplicate IDs: %v", err)
	}

	// Oversized declared count.
	big := BatchRequest{Entries: make([]Request, MaxBatchEntries+1)}
	for i := range big.Entries {
		big.Entries[i] = Request{ID: uint64(i), Key: "k"}
	}
	if _, err := AppendBatchRequest(nil, big); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("encoder accepted %d entries: %v", len(big.Entries), err)
	}

	// Empty batch.
	if _, err := AppendBatchRequest(nil, BatchRequest{}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := AppendBatchResponse(nil, BatchResponse{}); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("empty batch response: %v", err)
	}
}

func TestBatchResponseDecodeRejections(t *testing.T) {
	pkt, err := AppendBatchResponse(nil, sampleBatchResp())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(pkt); cut++ {
		if _, err := DecodeBatchResponse(pkt[:cut]); err == nil {
			t.Fatalf("truncated response (%d/%d bytes) accepted", cut, len(pkt))
		}
	}
	junk := append(append([]byte{}, pkt...), 0x01)
	reseal(junk)
	if _, err := DecodeBatchResponse(junk); !errors.Is(err, ErrTrailingBytes) {
		t.Fatalf("trailing byte: err = %v, want ErrTrailingBytes", err)
	}
	dup := sampleBatchResp()
	dup.Entries[2].ID = dup.Entries[0].ID
	if _, err := AppendBatchResponse(nil, dup); !errors.Is(err, ErrDuplicateEntry) {
		t.Fatalf("encoder accepted duplicate response IDs: %v", err)
	}
}

// The batch append must compose with a non-empty dst, like the singleton
// encoders (the coalescer reuses one buffer across flushes).
func TestAppendBatchReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 512)
	b := sampleBatchReq()
	buf, err := AppendBatchRequest(buf[:0], b)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]byte{}, buf...)
	buf, err = AppendBatchRequest(buf[:0], b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf) {
		t.Fatal("re-encode into reused buffer differs")
	}
}
