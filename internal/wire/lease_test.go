package wire

import (
	"encoding/binary"
	"testing"
	"time"
)

// mustEncodeResponse is the test-side shim for the error-returning encoder:
// lease-free responses cannot fail to encode.
func mustEncodeResponse(resp Response) []byte {
	buf, err := EncodeResponse(resp)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestLeaseRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Key: "alice", Cost: 1, Lease: LeaseAsk{Op: LeaseOpAsk, Demand: 123.5, Epoch: 7}},
		{ID: 2, Key: "bob", Cost: 2.5, Lease: LeaseAsk{Op: LeaseOpRenew, Demand: 0.001, Epoch: 1 << 40}},
		{ID: 3, Key: "carol", Lease: LeaseAsk{Op: LeaseOpRenounce}},
		{ID: 4, Key: "dave", TraceID: 0xfeed, Lease: LeaseAsk{Op: LeaseOpAsk, Demand: 99, Epoch: 3}},
	}
	for _, want := range cases {
		buf, err := EncodeRequest(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
		if buf[3]&FlagLease == 0 {
			t.Errorf("FlagLease not set on %+v", want)
		}
	}
}

func TestLeaseResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Allow: true, Status: StatusOK,
			Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 50, Burst: 12.5, TTL: time.Second, Epoch: 9}},
		{ID: 2, Allow: false, Status: StatusOK,
			Lease: LeaseGrant{Op: LeaseOpDeny, Epoch: 4}},
		{ID: 3, Allow: true, Status: StatusOK,
			Lease: LeaseGrant{Op: LeaseOpRevoke, Epoch: 2, Key: "other-key"}},
		{ID: 4, Allow: true, Status: StatusOK, TraceID: 0xabc, ServerNanos: 1234,
			Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 1, Burst: 0, TTL: 250 * time.Millisecond, Epoch: 1}},
	}
	for _, want := range cases {
		buf, err := EncodeResponse(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeResponse(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// decodeLegacyRequest is DecodeRequest as it stood before the lease
// extension (trace generation): it reads the key, the trace id when flagged,
// and ignores everything after — the forward-compat contract the lease
// section rides on.
func decodeLegacyRequest(buf []byte) (Request, error) {
	if err := checkHeader(buf, typeRequest); err != nil {
		return Request{}, err
	}
	if len(buf) < requestHeaderLen {
		return Request{}, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(buf[20:]))
	if len(buf) < requestHeaderLen+n {
		return Request{}, ErrTruncated
	}
	req := Request{
		ID:   binary.BigEndian.Uint64(buf[4:]),
		Cost: float64(binary.BigEndian.Uint32(buf[16:])) / costScale,
		Key:  string(buf[22 : 22+n]),
	}
	if buf[3]&FlagTraced != 0 {
		if len(buf) < requestHeaderLen+n+traceIDLen {
			return Request{}, ErrTruncated
		}
		req.TraceID = binary.BigEndian.Uint64(buf[requestHeaderLen+n:])
	}
	return req, nil
}

// decodeLegacyResponse is the pre-lease DecodeResponse.
func decodeLegacyResponse(buf []byte) (Response, error) {
	if err := checkHeader(buf, typeResponse); err != nil {
		return Response{}, err
	}
	if len(buf) < responseLen {
		return Response{}, ErrTruncated
	}
	resp := Response{
		ID:     binary.BigEndian.Uint64(buf[4:]),
		Allow:  buf[16] == 1,
		Status: Status(buf[17]),
	}
	if buf[3]&FlagTraced != 0 {
		if len(buf) < responseTracedLen {
			return Response{}, ErrTruncated
		}
		resp.TraceID = binary.BigEndian.Uint64(buf[18:])
		resp.ServerNanos = int64(binary.BigEndian.Uint32(buf[26:]))
	}
	return resp, nil
}

// TestOldDecoderIgnoresLeaseSections is the mixed-version contract: a peer
// that predates leasing parses a lease-carrying frame exactly as if the
// section were absent (it is trailing bytes the key length / fixed layout
// never reads, and the CRC covers it), so an old janusd answers the
// admission normally and simply never grants, and an old router never sees
// a grant it could misread.
func TestOldDecoderIgnoresLeaseSections(t *testing.T) {
	req := Request{ID: 11, Key: "hot", Cost: 1, TraceID: 0x77,
		Lease: LeaseAsk{Op: LeaseOpAsk, Demand: 500, Epoch: 3}}
	buf, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeLegacyRequest(buf)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	want := req
	want.Lease = LeaseAsk{}
	if got != want {
		t.Errorf("legacy request decode: got %+v want %+v", got, want)
	}

	resp := Response{ID: 11, Allow: true, Status: StatusOK, TraceID: 0x77, ServerNanos: 42,
		Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 10, Burst: 5, TTL: time.Second, Epoch: 3}}
	rbuf, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := decodeLegacyResponse(rbuf)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	wantR := resp
	wantR.Lease = LeaseGrant{}
	if gotR != wantR {
		t.Errorf("legacy response decode: got %+v want %+v", gotR, wantR)
	}
}

// TestLeaseBatchExclusion: the batch extension must stay the final bytes of
// a batched frame, so lease sections are singleton-only in both directions.
func TestLeaseBatchExclusion(t *testing.T) {
	leased := Request{ID: 1, Key: "a", Lease: LeaseAsk{Op: LeaseOpAsk}}
	_, err := AppendBatchRequest(nil, BatchRequest{Entries: []Request{leased, {ID: 2, Key: "b"}}})
	if err != ErrLeaseInBatch {
		t.Errorf("batched encode with lease entry: got %v want ErrLeaseInBatch", err)
	}
	_, err = AppendBatchResponse(nil, BatchResponse{Entries: []Response{
		{ID: 1, Lease: LeaseGrant{Op: LeaseOpDeny}}, {ID: 2}}})
	if err != ErrLeaseInBatch {
		t.Errorf("batched response encode with lease entry: got %v want ErrLeaseInBatch", err)
	}

	// A frame claiming both flags is rejected outright.
	buf, err := AppendBatchRequest(nil, BatchRequest{Entries: []Request{{ID: 1, Key: "a"}, {ID: 2, Key: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	buf[3] |= FlagLease
	seal(buf)
	if _, err := DecodeBatchRequest(buf); err != ErrLeaseInBatch {
		t.Errorf("decode batched+leased request: got %v want ErrLeaseInBatch", err)
	}
	rbuf, err := AppendBatchResponse(nil, BatchResponse{Entries: []Response{{ID: 1}, {ID: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	rbuf[3] |= FlagLease
	seal(rbuf)
	if _, err := DecodeBatchResponse(rbuf); err != ErrLeaseInBatch {
		t.Errorf("decode batched+leased response: got %v want ErrLeaseInBatch", err)
	}
}

func TestLeaseBounds(t *testing.T) {
	if _, err := EncodeResponse(Response{Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 1, TTL: MaxLeaseTTL + time.Second}}); err != ErrLeaseBounds {
		t.Errorf("encode TTL over MaxLeaseTTL: got %v want ErrLeaseBounds", err)
	}
	if _, err := EncodeResponse(Response{Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 1}}); err != ErrLeaseBounds {
		t.Errorf("encode grant with zero TTL: got %v want ErrLeaseBounds", err)
	}
	if _, err := EncodeResponse(Response{Lease: LeaseGrant{Op: 9, TTL: time.Second}}); err != ErrLeaseBadOp {
		t.Errorf("encode bad grant op: got %v want ErrLeaseBadOp", err)
	}
	if _, err := EncodeRequest(Request{Key: "k", Lease: LeaseAsk{Op: 7}}); err != ErrLeaseBadOp {
		t.Errorf("encode bad ask op: got %v want ErrLeaseBadOp", err)
	}

	// Decoder side: corrupt a valid grant's TTL and op in place.
	base := Response{ID: 1, Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 1, TTL: time.Second}}
	buf := mustEncodeResponse(base)
	off := responseLen
	binary.BigEndian.PutUint32(buf[off+9:], uint32(MaxLeaseTTL/time.Millisecond)+1)
	seal(buf)
	if _, err := DecodeResponse(buf); err != ErrLeaseBounds {
		t.Errorf("decode TTL over MaxLeaseTTL: got %v want ErrLeaseBounds", err)
	}
	buf = mustEncodeResponse(base)
	buf[off] = 0
	seal(buf)
	if _, err := DecodeResponse(buf); err != ErrLeaseBadOp {
		t.Errorf("decode zero lease op: got %v want ErrLeaseBadOp", err)
	}
	abuf, err := EncodeRequest(Request{Key: "k", Lease: LeaseAsk{Op: LeaseOpAsk, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	abuf[requestHeaderLen+1] = 200
	seal(abuf)
	if _, err := DecodeRequest(abuf); err != ErrLeaseBadOp {
		t.Errorf("decode bad ask op: got %v want ErrLeaseBadOp", err)
	}

	// Truncating the lease section is detected.
	tbuf := mustEncodeResponse(base)
	tbuf = tbuf[:len(tbuf)-4]
	seal(tbuf)
	if _, err := DecodeResponse(tbuf); err != ErrTruncated {
		t.Errorf("decode truncated lease section: got %v want ErrTruncated", err)
	}
}

// FuzzLeaseFrameDecode covers both directions of the lease extension: no
// panics on arbitrary bytes, and any accepted frame respects the section's
// bounds (valid op, TTL within (0, MaxLeaseTTL] for grants, non-negative
// rates) and survives a re-encode round trip.
func FuzzLeaseFrameDecode(f *testing.F) {
	seedReq, _ := EncodeRequest(Request{ID: 1, Key: "hot", Cost: 1,
		Lease: LeaseAsk{Op: LeaseOpAsk, Demand: 321, Epoch: 5}})
	f.Add(seedReq)
	seedRenew, _ := EncodeRequest(Request{ID: 2, Key: "warm", TraceID: 7,
		Lease: LeaseAsk{Op: LeaseOpRenew, Demand: 12, Epoch: 6}})
	f.Add(seedRenew)
	seedGrant, _ := EncodeResponse(Response{ID: 1, Allow: true,
		Lease: LeaseGrant{Op: LeaseOpGrant, Rate: 10, Burst: 2, TTL: time.Second, Epoch: 5}})
	f.Add(seedGrant)
	seedRevoke, _ := EncodeResponse(Response{ID: 2, Allow: true, TraceID: 9,
		Lease: LeaseGrant{Op: LeaseOpRevoke, Epoch: 5, Key: "gone"}})
	f.Add(seedRevoke)

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeRequest(data); err == nil && req.Lease.Op != 0 {
			if req.Lease.Op < LeaseOpAsk || req.Lease.Op > LeaseOpRenounce {
				t.Fatalf("accepted bad ask op %d", req.Lease.Op)
			}
			if req.Lease.Demand < 0 {
				t.Fatalf("accepted negative demand %v", req.Lease.Demand)
			}
			buf, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("re-encode accepted request: %v", err)
			}
			back, err := DecodeRequest(buf)
			if err != nil || back != req {
				t.Fatalf("request round trip: %+v != %+v (%v)", back, req, err)
			}
		}
		if resp, err := DecodeResponse(data); err == nil && resp.Lease.Op != 0 {
			g := resp.Lease
			if g.Op < LeaseOpGrant || g.Op > LeaseOpRevoke {
				t.Fatalf("accepted bad grant op %d", g.Op)
			}
			if g.Rate < 0 || g.Burst < 0 {
				t.Fatalf("accepted negative rate/burst %+v", g)
			}
			if g.TTL < 0 || g.TTL > MaxLeaseTTL || (g.Op == LeaseOpGrant && g.TTL == 0) {
				t.Fatalf("accepted out-of-bounds TTL %v (op %d)", g.TTL, g.Op)
			}
			buf, err := EncodeResponse(resp)
			if err != nil {
				t.Fatalf("re-encode accepted response: %v", err)
			}
			back, err := DecodeResponse(buf)
			if err != nil || back != resp {
				t.Fatalf("response round trip: %+v != %+v (%v)", back, resp, err)
			}
		}
	})
}
