// Package core is the embeddable facade over the Janus QoS framework — the
// paper's primary contribution assembled into a single object.
//
// Two deployment shapes are offered:
//
//   - Embedded (this package): the QoS server layer runs in-process as a
//     set of partitioned leaky-bucket engines, fronted by the same
//     CRC32-mod-N partitioning the request router uses. Check() makes an
//     admission decision with zero network hops. The database layer is an
//     embedded minisql engine, with the same rule-sync and checkpointing
//     machinery as the distributed deployment.
//   - Distributed (internal/cluster): the full multi-layer system — load
//     balancer, request routers, QoS servers, database — on real sockets.
//
// Both shapes share all decision logic (internal/qosserver), so behaviour
// established by the embedded tests holds for the networked system.
package core

import (
	"time"

	"repro/internal/bucket"
	"repro/internal/minisql"
	"repro/internal/qosserver"
	"repro/internal/router"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/wire"
)

// Config configures an embedded Janus instance.
type Config struct {
	// Partitions is the number of QoS server partitions (default 1). More
	// partitions reduce lock contention across keys, mirroring scaling the
	// QoS server layer out.
	Partitions int
	// Workers is the per-partition worker count for the UDP path; the
	// embedded Check path is synchronous and does not use it.
	Workers int
	// DefaultRule applies to unknown keys (zero value denies).
	DefaultRule bucket.Rule
	// TableKind selects the QoS table implementation.
	TableKind table.Kind
	// Rules seeds the rule database.
	Rules []bucket.Rule
	// SyncInterval / CheckpointInterval / RefillInterval enable the QoS
	// server maintenance threads (see qosserver.Config).
	SyncInterval       time.Duration
	CheckpointInterval time.Duration
	RefillInterval     time.Duration
}

// Janus is an embedded deployment.
type Janus struct {
	servers []*qosserver.Server
	engine  *minisql.Engine
	store   *store.Store
}

// New builds an embedded Janus instance.
func New(cfg Config) (*Janus, error) {
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	j := &Janus{engine: minisql.NewEngine()}
	j.store = store.New(j.engine)
	if err := j.store.Init(); err != nil {
		return nil, err
	}
	if err := j.store.PutAll(cfg.Rules); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Partitions; i++ {
		s, err := qosserver.New(qosserver.Config{
			Addr:               "127.0.0.1:0",
			Workers:            cfg.Workers,
			TableKind:          cfg.TableKind,
			DefaultRule:        cfg.DefaultRule,
			Store:              j.store,
			SyncInterval:       cfg.SyncInterval,
			CheckpointInterval: cfg.CheckpointInterval,
			RefillInterval:     cfg.RefillInterval,
		})
		if err != nil {
			j.Close()
			return nil, err
		}
		j.servers = append(j.servers, s)
	}
	return j, nil
}

// Check returns TRUE to admit one request for key, FALSE to deny — the
// paper's boolean QoS response.
func (j *Janus) Check(key string) bool {
	return j.CheckCost(key, 1)
}

// CheckCost admits a request consuming cost credits.
func (j *Janus) CheckCost(key string, cost float64) bool {
	i, _ := router.SelectBackend(key, len(j.servers)) // len > 0 by construction
	s := j.servers[i]
	return s.Decide(wire.Request{Key: key, Cost: cost}).Allow
}

// SetRule creates or updates a rule, effective on next sync (or
// immediately for keys not yet resident).
func (j *Janus) SetRule(r bucket.Rule) error {
	if err := j.store.Put(r); err != nil {
		return err
	}
	// Propagate eagerly so embedded callers need not wait for a sync tick.
	for _, s := range j.servers {
		s.SyncOnce()
	}
	return nil
}

// DeleteRule removes a rule; affected keys fall back to the default rule
// after the next sync.
func (j *Janus) DeleteRule(key string) error {
	if _, err := j.store.Delete(key); err != nil {
		return err
	}
	for _, s := range j.servers {
		s.SyncOnce()
	}
	return nil
}

// Rule fetches the stored rule for key.
func (j *Janus) Rule(key string) (bucket.Rule, bool, error) { return j.store.Get(key) }

// Store exposes the rule store for advanced management.
func (j *Janus) Store() *store.Store { return j.store }

// Partitions returns the number of QoS partitions.
func (j *Janus) Partitions() int { return len(j.servers) }

// Stats aggregates decision counters across partitions.
func (j *Janus) Stats() qosserver.Stats {
	var agg qosserver.Stats
	for _, s := range j.servers {
		st := s.Stats()
		agg.Received += st.Received
		agg.Dropped += st.Dropped
		agg.Degraded += st.Degraded
		agg.Malformed += st.Malformed
		agg.Decisions += st.Decisions
		agg.Allowed += st.Allowed
		agg.Denied += st.Denied
		agg.DBQueries += st.DBQueries
		agg.DefaultHit += st.DefaultHit
		agg.DBErrors += st.DBErrors
	}
	return agg
}

// Checkpoint forces a credit write-back on every partition.
func (j *Janus) Checkpoint() {
	for _, s := range j.servers {
		s.CheckpointOnce()
	}
}

// Close shuts all partitions down.
func (j *Janus) Close() {
	for _, s := range j.servers {
		s.Close()
	}
}
