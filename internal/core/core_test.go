package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bucket"
)

func newJanus(t *testing.T, cfg Config) *Janus {
	t.Helper()
	j, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(j.Close)
	return j
}

func TestCheckKnownKey(t *testing.T) {
	j := newJanus(t, Config{
		Rules: []bucket.Rule{{Key: "alice", RefillRate: 0, Capacity: 3, Credit: 3}},
	})
	for i := 0; i < 3; i++ {
		if !j.Check("alice") {
			t.Fatalf("request %d denied", i)
		}
	}
	if j.Check("alice") {
		t.Fatal("over-quota admitted")
	}
	st := j.Stats()
	if st.Decisions != 4 || st.Allowed != 3 || st.Denied != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnknownKeyDefaultDeny(t *testing.T) {
	j := newJanus(t, Config{})
	if j.Check("stranger") {
		t.Fatal("unknown key admitted by zero default")
	}
}

func TestUnknownKeyGuestDefault(t *testing.T) {
	j := newJanus(t, Config{DefaultRule: bucket.LimitedGuest("", 0, 2)})
	if !j.Check("guest") || !j.Check("guest") || j.Check("guest") {
		t.Fatal("guest default rule wrong")
	}
	if j.Stats().DefaultHit == 0 {
		t.Fatal("default hits not counted")
	}
}

func TestCheckCost(t *testing.T) {
	j := newJanus(t, Config{
		Rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
	})
	if !j.CheckCost("k", 8) {
		t.Fatal("batch denied")
	}
	if j.CheckCost("k", 3) {
		t.Fatal("over budget admitted")
	}
	if !j.CheckCost("k", 2) {
		t.Fatal("exact remainder denied")
	}
}

func TestPartitionsConsistentPerKey(t *testing.T) {
	j := newJanus(t, Config{
		Partitions: 4,
		Rules:      []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 5, Credit: 5}},
	})
	if j.Partitions() != 4 {
		t.Fatalf("partitions = %d", j.Partitions())
	}
	// All checks for one key hit one partition's bucket: exactly 5 admits.
	allowed := 0
	for i := 0; i < 10; i++ {
		if j.Check("k") {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("allowed = %d, want 5", allowed)
	}
}

func TestSetRuleTakesEffect(t *testing.T) {
	j := newJanus(t, Config{})
	if j.Check("newuser") {
		t.Fatal("admitted before rule exists")
	}
	if err := j.SetRule(bucket.Rule{Key: "newuser", RefillRate: 0, Capacity: 2, Credit: 2}); err != nil {
		t.Fatal(err)
	}
	if !j.Check("newuser") || !j.Check("newuser") || j.Check("newuser") {
		t.Fatal("new rule not applied")
	}
}

func TestDeleteRuleFallsBackToDefault(t *testing.T) {
	j := newJanus(t, Config{
		Rules: []bucket.Rule{{Key: "k", RefillRate: 1e9, Capacity: 1e9, Credit: 1e9}},
	})
	if !j.Check("k") {
		t.Fatal("initial check denied")
	}
	if err := j.DeleteRule("k"); err != nil {
		t.Fatal(err)
	}
	if j.Check("k") {
		t.Fatal("deleted rule still admits (default is deny)")
	}
}

func TestRuleLookup(t *testing.T) {
	j := newJanus(t, Config{
		Rules: []bucket.Rule{{Key: "k", RefillRate: 7, Capacity: 70, Credit: 70}},
	})
	r, found, err := j.Rule("k")
	if err != nil || !found || r.RefillRate != 7 {
		t.Fatalf("r=%+v found=%v err=%v", r, found, err)
	}
	if _, found, _ := j.Rule("nope"); found {
		t.Fatal("ghost rule found")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	j := newJanus(t, Config{
		Rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
	})
	for i := 0; i < 4; i++ {
		j.Check("k")
	}
	j.Checkpoint()
	r, _, _ := j.Store().Get("k")
	if r.Credit != 6 {
		t.Fatalf("checkpointed credit = %v", r.Credit)
	}
}

func TestRefillInterval(t *testing.T) {
	j := newJanus(t, Config{
		RefillInterval: 5 * time.Millisecond,
		Rules:          []bucket.Rule{{Key: "k", RefillRate: 1000, Capacity: 2, Credit: 2}},
	})
	j.Check("k")
	j.Check("k")
	if j.Check("k") {
		t.Fatal("empty bucket admitted before tick")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !j.Check("k") {
		if time.Now().After(deadline) {
			t.Fatal("tick refill never happened")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConcurrentChecksConserveCredits(t *testing.T) {
	j := newJanus(t, Config{
		Partitions: 4,
		Rules:      []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 1000, Credit: 1000}},
	})
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := 0
			for i := 0; i < 500; i++ {
				if j.Check("k") {
					local++
				}
			}
			mu.Lock()
			total += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	if total != 1000 {
		t.Fatalf("admitted %d, want exactly 1000", total)
	}
}

func TestManyKeysSpreadAcrossPartitions(t *testing.T) {
	var rules []bucket.Rule
	for i := 0; i < 100; i++ {
		rules = append(rules, bucket.Rule{Key: fmt.Sprintf("u%d", i), RefillRate: 0, Capacity: 1, Credit: 1})
	}
	j := newJanus(t, Config{Partitions: 8, Rules: rules})
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("u%d", i)
		if !j.Check(k) {
			t.Fatalf("%s first denied", k)
		}
		if j.Check(k) {
			t.Fatalf("%s second admitted", k)
		}
	}
	// Each partition received some keys (CRC32 spreads 100 keys over 8).
	if j.Stats().Decisions != 200 {
		t.Fatalf("decisions = %d", j.Stats().Decisions)
	}
}

func TestInvalidSeedRuleRejected(t *testing.T) {
	if _, err := New(Config{Rules: []bucket.Rule{{Key: ""}}}); err == nil {
		t.Fatal("invalid seed rule accepted")
	}
}
