package lease

import (
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/wire"
)

// fpStale sits on the Table's epoch check, evaluated whenever a lease's
// epoch disagrees with the router's current membership epoch. Normally the
// mismatch invalidates the lease on the spot; arming Drop SKIPS the
// invalidation, forcing the router to keep admitting from a stale-epoch
// lease (the bug chaostest must prove is bounded by the lease TTL). Other
// kinds only count the evaluation.
var fpStale = failpoint.New("router/lease/stale")

// TableConfig configures the router-side lease table.
type TableConfig struct {
	// HotRate is the demand (decisions/second) above which the table asks
	// for a lease; 0 means DefaultHotRate.
	HotRate float64
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Table is the router-side lease state: one local token bucket per leased
// key, plus the demand tracker that decides who is worth leasing. The
// router consults it before picking a backend; a decided admission never
// touches the wire.
type Table struct {
	hotRate float64
	clock   func() time.Time
	demand  *demand

	epoch struct {
		mu sync.Mutex
		v  uint64
	}

	mu     sync.RWMutex
	leases map[string]*localLease
}

// localLease is one delegated token bucket. Credit accrues at the granted
// rate up to cap, starting from the prepaid burst; the lease admits locally
// until it expires or its epoch goes stale.
type localLease struct {
	mu       sync.Mutex
	rate     float64
	cap      float64
	credit   float64
	last     time.Time
	expiry   time.Time
	ttl      time.Duration
	epoch    uint64
	renewing bool // one in-flight renewal at a time
}

// NewTable creates an empty lease table.
func NewTable(cfg TableConfig) *Table {
	if cfg.HotRate <= 0 {
		cfg.HotRate = DefaultHotRate
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Table{
		hotRate: cfg.HotRate,
		clock:   cfg.Clock,
		demand:  newDemand(),
		leases:  make(map[string]*localLease),
	}
}

// SetEpoch records the router's current membership epoch. Leases granted
// under older epochs die at their next use: after a view swap the key may
// have a new owner, and only the TTL bounds what the old owner believes.
func (t *Table) SetEpoch(epoch uint64) {
	t.epoch.mu.Lock()
	if epoch > t.epoch.v {
		t.epoch.v = epoch
	}
	t.epoch.mu.Unlock()
}

//janus:hotpath
func (t *Table) currentEpoch() uint64 {
	t.epoch.mu.Lock()
	defer t.epoch.mu.Unlock()
	return t.epoch.v
}

// Decision is the table's verdict for one admission.
type Decision struct {
	// Decided reports that the admission was served locally; Allow is then
	// the verdict and the request must not touch the wire.
	Decided bool
	// Allow is the local verdict when Decided.
	Allow bool
	// Ask, when Ask.Op != 0, is a lease operation the router should
	// piggyback on the wire request it is about to send (never set when
	// Decided).
	Ask wire.LeaseAsk
}

// Route runs one admission through the table: it records demand, serves the
// key from its lease when one is live, and otherwise tells the router what
// lease operation (if any) to piggyback on the fall-through request.
//
//janus:hotpath
func (t *Table) Route(key string, cost float64) Decision {
	now := t.clock()
	rate := t.demand.Observe(key, now)
	epoch := t.currentEpoch()

	t.mu.RLock()
	l := t.leases[key]
	t.mu.RUnlock()

	if l == nil {
		if rate >= t.hotRate {
			return Decision{Ask: wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: rate, Epoch: epoch}}
		}
		return Decision{}
	}

	l.mu.Lock()
	if l.epoch != epoch {
		stale := false
		if fpStale.Armed() {
			stale = fpStale.Eval().Kind == failpoint.Drop
		}
		if !stale {
			l.mu.Unlock()
			t.drop(key, l)
			if rate >= t.hotRate {
				return Decision{Ask: wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: rate, Epoch: epoch}}
			}
			return Decision{}
		}
	}
	if !now.Before(l.expiry) {
		l.mu.Unlock()
		t.drop(key, l)
		if rate >= t.hotRate {
			return Decision{Ask: wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: rate, Epoch: epoch}}
		}
		return Decision{}
	}
	if remaining := l.expiry.Sub(now); remaining < time.Duration(renewFraction*float64(l.ttl)) && !l.renewing {
		// Renewal window: route THIS admission over the wire carrying the
		// renew op — the server's verdict stands in for the local one and
		// the grant re-arms the lease. A cold key is renounced instead,
		// freeing the reserved rate ahead of expiry.
		l.renewing = true
		l.mu.Unlock()
		op := wire.LeaseOpRenew
		if rate < t.hotRate/4 {
			op = wire.LeaseOpRenounce
			t.drop(key, l)
		}
		return Decision{Ask: wire.LeaseAsk{Op: op, Demand: rate, Epoch: epoch}}
	}
	// Local admission: advance the delegated bucket and spend from it.
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.credit += elapsed * l.rate
		if l.credit > l.cap {
			l.credit = l.cap
		}
		l.last = now
	}
	allow := false
	if cost <= 0 {
		cost = 1
	}
	if l.credit >= cost {
		l.credit -= cost
		allow = true
	}
	l.mu.Unlock()
	return Decision{Decided: true, Allow: allow}
}

// drop removes l from the table if it is still the entry for key.
func (t *Table) drop(key string, l *localLease) {
	t.mu.Lock()
	if t.leases[key] == l {
		delete(t.leases, key)
	}
	t.mu.Unlock()
}

// Apply installs the lease section of a response for key: grants (re)arm the
// local bucket, denials clear any pending ask state, and revocations drop
// the lease (the section's own key wins when set, so a revocation for key A
// can ride a response for key B).
func (t *Table) Apply(key string, g wire.LeaseGrant) {
	switch g.Op {
	case wire.LeaseOpGrant:
		t.applyGrant(key, g)
	case wire.LeaseOpDeny:
		t.mu.RLock()
		l := t.leases[key]
		t.mu.RUnlock()
		if l != nil {
			t.drop(key, l)
		}
	case wire.LeaseOpRevoke:
		if g.Key != "" {
			key = g.Key
		}
		t.mu.RLock()
		l := t.leases[key]
		t.mu.RUnlock()
		if l != nil {
			t.drop(key, l)
		}
	}
}

func (t *Table) applyGrant(key string, g wire.LeaseGrant) {
	if g.Epoch != t.currentEpoch() || g.Rate <= 0 {
		return // granted under a view this router has already left
	}
	now := t.clock()
	// The local cap bounds idle accrual within one lease window; safety
	// comes from the reservation, so the cap only shapes burstiness.
	capacity := g.Burst + g.Rate*(g.TTL.Seconds()/2)
	t.mu.Lock()
	l := t.leases[key]
	if l == nil {
		t.leases[key] = &localLease{
			rate:   g.Rate,
			cap:    capacity,
			credit: g.Burst,
			last:   now,
			expiry: now.Add(g.TTL),
			ttl:    g.TTL,
			epoch:  g.Epoch,
		}
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	// Renewal (or a duplicated grant): extend in place, keeping accrued
	// credit — re-adding the burst here would mint credit the server never
	// prepaid twice.
	l.mu.Lock()
	elapsed := now.Sub(l.last).Seconds()
	if elapsed > 0 {
		l.credit += elapsed * l.rate
		if l.credit > l.cap {
			l.credit = l.cap
		}
		l.last = now
	}
	l.rate = g.Rate
	l.cap = capacity
	if l.credit > capacity {
		l.credit = capacity
	}
	if e := now.Add(g.TTL); e.After(l.expiry) {
		l.expiry = e
	}
	l.ttl = g.TTL
	l.epoch = g.Epoch
	l.renewing = false
	l.mu.Unlock()
}

// AskFailed clears the in-flight renewal mark after a failed wire exchange
// that carried a lease op, so the next admission in the renewal window can
// try again.
func (t *Table) AskFailed(key string) {
	t.mu.RLock()
	l := t.leases[key]
	t.mu.RUnlock()
	if l != nil {
		l.mu.Lock()
		l.renewing = false
		l.mu.Unlock()
	}
}

// Len returns the number of leases currently held.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.leases)
}
