package lease

import (
	"sync"
	"time"

	"repro/internal/wire"
)

// Bucket is the slice of the leaky-bucket surface the Manager needs: rate
// reservation (the conservation mechanism) and credit prepayment for grant
// bursts. *bucket.Bucket satisfies it.
type Bucket interface {
	RefillRate() float64
	Capacity() float64
	Credit(now time.Time) float64
	TryConsume(n float64, now time.Time) bool
	Reserve(delta float64, now time.Time) bool
	Release(delta float64, now time.Time)
}

// ManagerConfig configures the janusd-side lease manager.
type ManagerConfig struct {
	// Fraction is the share of a bucket's refill rate leasable in
	// aggregate, (0,1]; 0 means DefaultFraction.
	Fraction float64
	// TTL is the lease lifetime; 0 means DefaultTTL. Clamped to
	// wire.MaxLeaseTTL.
	TTL time.Duration
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

// Manager is the janusd-side lease authority: it carves rate shares out of
// buckets, tracks who holds what, and queues revocations for piggybacked
// delivery. Callers must Revoke (or Drop) a key's leases BEFORE replacing
// or handing off its bucket — the reservation lives on the bucket, so a
// swap without revocation would let old and new refill streams coexist.
type Manager struct {
	fraction float64
	ttl      time.Duration
	clock    func() time.Time

	mu        sync.Mutex
	keys      map[string]*keyLeases
	pending   map[string][]wire.LeaseGrant // holder → queued revocations
	totalRate float64
}

type keyLeases struct {
	holders map[string]*holderLease
	total   float64 // sum of holder rates
}

type holderLease struct {
	rate   float64
	burst  float64
	expiry time.Time
	epoch  uint64
	b      Bucket // the bucket the rate is reserved on
}

// pendingCap bounds the queued revocations per holder; beyond it the oldest
// are dropped — the TTL already bounds what a lost revocation can cost.
const pendingCap = 1024

// NewManager creates an empty lease manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Fraction <= 0 {
		cfg.Fraction = DefaultFraction
	}
	if cfg.Fraction > 1 {
		cfg.Fraction = 1
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.TTL > wire.MaxLeaseTTL {
		cfg.TTL = wire.MaxLeaseTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Manager{
		fraction: cfg.Fraction,
		ttl:      cfg.TTL,
		clock:    cfg.Clock,
		keys:     make(map[string]*keyLeases),
		pending:  make(map[string][]wire.LeaseGrant),
	}
}

// TTL returns the configured lease lifetime.
func (m *Manager) TTL() time.Duration { return m.ttl }

// Handle serves one piggybacked lease ask for key from holder against
// bucket b, returning the section to attach to the response (zero Op for
// renounces, which need no reply).
func (m *Manager) Handle(key, holder string, ask wire.LeaseAsk, b Bucket) wire.LeaseGrant {
	now := m.clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	kl := m.keys[key]
	if kl != nil {
		m.expireLocked(key, kl, now)
		kl = m.keys[key]
	}

	if ask.Op == wire.LeaseOpRenounce {
		if kl != nil {
			if cur := kl.holders[holder]; cur != nil {
				m.releaseLocked(key, kl, holder, cur, now)
			}
		}
		return wire.LeaseGrant{}
	}

	// Ask and renew share the sizing logic: clamp the holder's scaled
	// demand to what the leasable fraction leaves available, counting the
	// holder's own current share as available to itself.
	var cur *holderLease
	if kl != nil {
		cur = kl.holders[holder]
	}
	var curRate, othersRate float64
	if cur != nil {
		curRate = cur.rate
	}
	if kl != nil {
		othersRate = kl.total - curRate
	}
	avail := m.fraction*b.RefillRate() - othersRate
	target := ask.Demand * headroom
	if target > avail {
		target = avail
	}
	if target < MinRate {
		// Not worth a lease (or nothing left to lease): deny, returning
		// any share the holder already had.
		if cur != nil {
			m.releaseLocked(key, kl, holder, cur, now)
		}
		return wire.LeaseGrant{Op: wire.LeaseOpDeny, Epoch: ask.Epoch}
	}

	if cur == nil {
		if !b.Reserve(target, now) {
			return wire.LeaseGrant{Op: wire.LeaseOpDeny, Epoch: ask.Epoch}
		}
		// Prepay the burst out of the bucket's current credit — never
		// minted, and zero is fine (the local bucket starts empty and
		// fills at the leased rate).
		var burst float64
		if want := target * m.ttl.Seconds() / 2; want > 0 {
			if credit := b.Credit(now) * m.fraction; credit < want {
				want = credit
			}
			if want > 0 && b.TryConsume(want, now) {
				burst = want
			}
		}
		if kl == nil {
			kl = &keyLeases{holders: make(map[string]*holderLease)}
			m.keys[key] = kl
		}
		kl.holders[holder] = &holderLease{rate: target, burst: burst, expiry: now.Add(m.ttl), epoch: ask.Epoch, b: b}
		kl.total += target
		m.totalRate += target
		return wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: target, Burst: burst, TTL: m.ttl, Epoch: ask.Epoch}
	}

	// Renewal: adapt the share to current demand and extend the window.
	switch delta := target - cur.rate; {
	case delta > 0:
		if cur.b.Reserve(delta, now) {
			cur.rate = target
			kl.total += delta
			m.totalRate += delta
		}
	case delta < 0:
		cur.b.Release(-delta, now)
		cur.rate = target
		kl.total += delta
		m.totalRate += delta
	}
	cur.expiry = now.Add(m.ttl)
	cur.epoch = ask.Epoch
	return wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: cur.rate, Burst: cur.burst, TTL: m.ttl, Epoch: ask.Epoch}
}

// releaseLocked returns cur's reserved rate and forgets the lease.
func (m *Manager) releaseLocked(key string, kl *keyLeases, holder string, cur *holderLease, now time.Time) {
	cur.b.Release(cur.rate, now)
	kl.total -= cur.rate
	m.totalRate -= cur.rate
	delete(kl.holders, holder)
	if len(kl.holders) == 0 {
		delete(m.keys, key)
	}
}

// expireLocked lazily expires key's dead leases.
func (m *Manager) expireLocked(key string, kl *keyLeases, now time.Time) {
	for holder, cur := range kl.holders {
		if !now.Before(cur.expiry) {
			m.releaseLocked(key, kl, holder, cur, now)
		}
	}
}

// Revoke withdraws every lease on key (rule edited, bucket evicted or
// handed off): reserved rate is released immediately and a revocation is
// queued for each holder, delivered piggybacked on the next response sent
// to it. Returns the number of leases revoked.
func (m *Manager) Revoke(key string) int {
	now := m.clock()
	m.mu.Lock()
	defer m.mu.Unlock()
	kl := m.keys[key]
	if kl == nil {
		return 0
	}
	n := 0
	for holder, cur := range kl.holders {
		m.releaseLocked(key, kl, holder, cur, now)
		q := append(m.pending[holder], wire.LeaseGrant{Op: wire.LeaseOpRevoke, Epoch: cur.epoch, Key: key})
		if len(q) > pendingCap {
			q = q[len(q)-pendingCap:]
		}
		m.pending[holder] = q
		n++
	}
	return n
}

// PendingRevoke pops one queued revocation for holder, to piggyback on a
// response about to be sent to it.
func (m *Manager) PendingRevoke(holder string) (wire.LeaseGrant, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	q := m.pending[holder]
	if len(q) == 0 {
		return wire.LeaseGrant{}, false
	}
	g := q[0]
	if len(q) == 1 {
		delete(m.pending, holder)
	} else {
		m.pending[holder] = q[1:]
	}
	return g, true
}

// Sweep expires dead leases across all keys, releasing their reserved
// rate; janusd runs it periodically so leases whose holders vanished do
// not pin reservations past their TTL. Returns the number expired.
func (m *Manager) Sweep(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for key, kl := range m.keys {
		before := len(kl.holders)
		m.expireLocked(key, kl, now)
		n += before - len(kl.holders)
	}
	return n
}

// LeasedRate returns the total refill rate currently delegated, in
// credits/second (the janus_qos_leased_rate gauge).
func (m *Manager) LeasedRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalRate
}

// Holders returns the number of outstanding leases.
func (m *Manager) Holders() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, kl := range m.keys {
		n += len(kl.holders)
	}
	return n
}

// KeyLease reports the leased rate and holder count for one key (the
// /debug/qos snapshot columns).
func (m *Manager) KeyLease(key string) (rate float64, holders int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kl := m.keys[key]
	if kl == nil {
		return 0, 0
	}
	return kl.total, len(kl.holders)
}
