package lease

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// Race stress for the two concurrent structures the router hammers on every
// admission: the sharded demand tracker (every Route observes demand) and the
// lease table's epoch/lease state (SetEpoch invalidates concurrently with
// Route admitting and Apply granting/revoking). The assertions are loose —
// the point of the test is the interleaving itself, which `go test -race`
// turns into a checked execution. A torn epoch read, an unsynchronized map
// access in a demand shard, or a lease mutated while dropped would all
// surface here as a race report or a panic.
func TestTableRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	tbl := NewTable(TableConfig{HotRate: 1, Clock: time.Now})
	tbl.SetEpoch(1)

	// Keys spread across demand shards; a few are pre-leased so Route
	// exercises the local-admission path, the rest churn through
	// ask/fall-through.
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("stress-key-%02d", i)
	}
	for _, k := range keys[:8] {
		tbl.Apply(k, wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 1e6, Burst: 1e6, TTL: time.Minute, Epoch: 1})
	}

	// The run must outlast several demand windows (250ms each): a key only
	// reads as hot — and Route only emits asks — after its first window rolls.
	const (
		routers  = 8
		duration = 700 * time.Millisecond
	)
	var (
		stop    atomic.Bool
		decided atomic.Int64
		asked   atomic.Int64
		wg      sync.WaitGroup
	)

	// Admission traffic: every goroutine loops over all keys so every demand
	// shard and every lease sees concurrent access.
	for r := 0; r < routers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				d := tbl.Route(keys[i%len(keys)], 1)
				switch {
				case d.Decided:
					decided.Add(1)
				case d.Ask.Op != 0:
					asked.Add(1)
				}
			}
		}(r)
	}

	// Epoch churn: monotonic bumps race with in-flight Route epoch checks and
	// invalidate live leases mid-admission.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := uint64(2); !stop.Load(); e++ {
			tbl.SetEpoch(e)
			time.Sleep(time.Millisecond)
		}
	}()

	// Grant/revoke churn: re-arm leases under the current epoch (racing the
	// epoch bumper, so some grants are stillborn — that is the point) and
	// revoke others, including cross-key revocations riding another key's
	// response.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			k := keys[i%16]
			if i%3 == 0 {
				tbl.Apply(keys[(i+1)%len(keys)], wire.LeaseGrant{Op: wire.LeaseOpRevoke, Key: k})
			} else {
				tbl.Apply(k, wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 1e6, Burst: 1e6, TTL: time.Minute, Epoch: tbl.currentEpoch()})
			}
			tbl.AskFailed(keys[i%len(keys)])
		}
	}()

	// Demand reads race the Observe writes inside Route.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			tbl.demand.Rate(keys[i%len(keys)], time.Now())
		}
	}()

	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()

	if decided.Load() == 0 {
		t.Error("no admission was ever served from a lease; the stress never exercised the local path")
	}
	if asked.Load() == 0 {
		t.Error("no admission ever fell through with an ask; the stress never exercised the wire path")
	}
	if n := tbl.Len(); n > len(keys) {
		t.Errorf("table holds %d leases for %d keys; drop/apply raced into duplication", n, len(keys))
	}
}

// TestDemandShardRace drives Observe and Rate on colliding and non-colliding
// keys from many goroutines while window rolls and idle sweeps fire, so the
// per-shard locking (not the sharding itself) carries the safety argument.
func TestDemandShardRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	d := newDemand()
	base := time.Now()
	var clock atomic.Int64 // nanoseconds past base, advanced by the clock goroutine

	now := func() time.Time { return base.Add(time.Duration(clock.Load())) }

	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	// Advance time fast enough to cross window (250ms), sweep (5s), and idle
	// (10s) boundaries many times during the run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			clock.Add(int64(100 * time.Millisecond))
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := seed; !stop.Load(); i++ {
				key := fmt.Sprintf("shard-race-%02d", i%32)
				if r := d.Observe(key, now()); r < 0 {
					t.Errorf("negative demand estimate %v for %s", r, key)
					return
				}
				d.Rate(key, now())
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
