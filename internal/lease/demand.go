package lease

import (
	"math"
	"sync"
	"time"
)

// Demand tracking: a windowed EWMA of the per-key decision rate, observed at
// the router on every admission (leased or not). The estimate decides who is
// hot enough to lease and sizes the rate share carried in asks and renewals.
//
// The tracker is sharded to keep the per-decision critical section off a
// single lock, and bounded: idle keys are swept lazily and a full shard
// refuses new keys (reporting zero demand) rather than growing without
// limit — an untracked key simply stays on the server-arbitrated path.
const (
	demandShards   = 32
	demandWindow   = 250 * time.Millisecond
	demandAlpha    = 0.5 // weight of the newest window
	demandIdle     = 10 * time.Second
	demandSweep    = 5 * time.Second
	demandShardCap = 2048
)

type demandEntry struct {
	rate        float64 // EWMA decisions/second
	count       float64 // decisions since windowStart
	windowStart time.Time
	lastSeen    time.Time
}

type demandShard struct {
	mu        sync.Mutex
	keys      map[string]*demandEntry
	lastSweep time.Time
}

type demand struct {
	shards [demandShards]demandShard
}

func newDemand() *demand {
	d := &demand{}
	for i := range d.shards {
		d.shards[i].keys = make(map[string]*demandEntry)
	}
	return d
}

// shardOf hashes key with inline FNV-1a. The hash/fnv package would both
// box a hash.Hash32 and copy the key to []byte on every decision; the
// unrolled loop hashes the string in place with zero allocations.
//
//janus:hotpath
func shardOf(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h % demandShards
}

// Observe records one decision for key at now and returns the current
// demand estimate in decisions/second.
//
//janus:hotpath
func (d *demand) Observe(key string, now time.Time) float64 {
	s := &d.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if now.Sub(s.lastSweep) >= demandSweep {
		s.sweepLocked(now)
	}
	e := s.keys[key]
	if e == nil {
		if len(s.keys) >= demandShardCap {
			return 0 // full shard: leave the key server-arbitrated
		}
		//lint:ignore hotalloc first sight of a key creates its tracker entry; later decisions reuse it
		e = &demandEntry{windowStart: now}
		//lint:ignore hotalloc paired with the entry creation above — first sight only
		s.keys[key] = e
	}
	e.count++
	e.lastSeen = now
	elapsed := now.Sub(e.windowStart)
	if elapsed >= demandWindow {
		// Roll the window: blend the instantaneous rate in, decaying the
		// old estimate once per elapsed window so a long-idle key cools.
		inst := e.count / elapsed.Seconds()
		decay := math.Pow(1-demandAlpha, elapsed.Seconds()/demandWindow.Seconds())
		e.rate = demandAlpha*inst + decay*e.rate
		e.count = 0
		e.windowStart = now
	}
	return e.rate
}

// Rate returns the current demand estimate for key without recording a
// decision.
func (d *demand) Rate(key string, now time.Time) float64 {
	s := &d.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.keys[key]
	if e == nil {
		return 0
	}
	return e.rate
}

func (s *demandShard) sweepLocked(now time.Time) {
	s.lastSweep = now
	for k, e := range s.keys {
		if now.Sub(e.lastSeen) > demandIdle {
			delete(s.keys, k)
		}
	}
}
