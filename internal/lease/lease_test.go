package lease

import (
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/wire"
)

// fakeClock is a manually advanced clock shared by a test's manager, table,
// and buckets.
type fakeClock struct{ now time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestDemandEWMA(t *testing.T) {
	d := newDemand()
	clk := newFakeClock()
	// 200 decisions/second sustained across several windows.
	var rate float64
	for i := 0; i < 400; i++ {
		rate = d.Observe("k", clk.Now())
		clk.Advance(5 * time.Millisecond)
	}
	if rate < 150 || rate > 250 {
		t.Fatalf("EWMA after sustained 200/s = %.1f, want ~200", rate)
	}
	// A long idle gap decays the estimate on the next observation.
	clk.Advance(5 * time.Second)
	after := d.Observe("k", clk.Now())
	if after >= rate/2 {
		t.Fatalf("EWMA after 5s idle = %.1f, want well below %.1f", after, rate)
	}
}

func TestManagerGrantReservesRate(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Fraction: 0.5, TTL: time.Second, Clock: clk.Now})
	b := bucket.NewFull("k", 100, 100, clk.Now())

	g := m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80, Epoch: 7}, b)
	if g.Op != wire.LeaseOpGrant {
		t.Fatalf("ask: got op %d, want grant", g.Op)
	}
	// Demand 80 wants 80·headroom but the leasable fraction caps it at 50.
	if g.Rate != 50 {
		t.Fatalf("granted rate %.1f, want 50 (fraction cap)", g.Rate)
	}
	if g.Epoch != 7 || g.TTL != time.Second {
		t.Fatalf("grant echo: epoch %d ttl %v", g.Epoch, g.TTL)
	}
	if got := b.ReservedRate(); got != 50 {
		t.Fatalf("bucket reservation %.1f, want 50", got)
	}
	// Burst is prepaid from real credit: rate·ttl/2 = 25, available.
	if g.Burst != 25 {
		t.Fatalf("burst %.1f, want 25", g.Burst)
	}
	if credit := b.Credit(clk.Now()); credit != 75 {
		t.Fatalf("bucket credit after prepay %.1f, want 75", credit)
	}
	if m.LeasedRate() != 50 || m.Holders() != 1 {
		t.Fatalf("manager totals: rate %.1f holders %d", m.LeasedRate(), m.Holders())
	}

	// A second holder finds the leasable fraction exhausted.
	if g2 := m.Handle("k", "r2", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80, Epoch: 7}, b); g2.Op != wire.LeaseOpDeny {
		t.Fatalf("second holder: got op %d, want deny", g2.Op)
	}
}

func TestManagerRenounceReleases(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Fraction: 0.5, TTL: time.Second, Clock: clk.Now})
	b := bucket.NewFull("k", 100, 100, clk.Now())
	m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80}, b)
	g := m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpRenounce}, b)
	if g.Op != 0 {
		t.Fatalf("renounce reply op %d, want 0 (no section)", g.Op)
	}
	if b.ReservedRate() != 0 || m.Holders() != 0 || m.LeasedRate() != 0 {
		t.Fatalf("after renounce: reserved %.1f holders %d leased %.1f", b.ReservedRate(), m.Holders(), m.LeasedRate())
	}
}

func TestManagerRenewalResizes(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Fraction: 0.5, TTL: time.Second, Clock: clk.Now})
	b := bucket.NewFull("k", 100, 100, clk.Now())
	m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80}, b) // rate 50
	clk.Advance(500 * time.Millisecond)
	// Demand cooled: renewal shrinks the share and releases the difference.
	g := m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpRenew, Demand: 10}, b)
	if g.Op != wire.LeaseOpGrant {
		t.Fatalf("renew: got op %d, want grant", g.Op)
	}
	want := 10 * headroom
	if g.Rate != want || b.ReservedRate() != want || m.LeasedRate() != want {
		t.Fatalf("after shrink: grant %.1f reserved %.1f leased %.1f, want %.1f",
			g.Rate, b.ReservedRate(), m.LeasedRate(), want)
	}
}

func TestManagerRevokeQueuesDelivery(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Fraction: 0.5, TTL: time.Second, Clock: clk.Now})
	b := bucket.NewFull("k", 100, 100, clk.Now())
	m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80, Epoch: 3}, b)
	if n := m.Revoke("k"); n != 1 {
		t.Fatalf("Revoke = %d, want 1", n)
	}
	if b.ReservedRate() != 0 || m.Holders() != 0 {
		t.Fatalf("revoke did not release: reserved %.1f holders %d", b.ReservedRate(), m.Holders())
	}
	g, ok := m.PendingRevoke("r1")
	if !ok || g.Op != wire.LeaseOpRevoke || g.Key != "k" || g.Epoch != 3 {
		t.Fatalf("pending revoke = %+v ok=%v", g, ok)
	}
	if _, ok := m.PendingRevoke("r1"); ok {
		t.Fatal("revocation delivered twice")
	}
	if _, ok := m.PendingRevoke("r2"); ok {
		t.Fatal("revocation delivered to the wrong holder")
	}
}

func TestManagerSweepExpires(t *testing.T) {
	clk := newFakeClock()
	m := NewManager(ManagerConfig{Fraction: 0.5, TTL: time.Second, Clock: clk.Now})
	b := bucket.NewFull("k", 100, 100, clk.Now())
	m.Handle("k", "r1", wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 80}, b)
	clk.Advance(999 * time.Millisecond)
	if n := m.Sweep(clk.Now()); n != 0 {
		t.Fatalf("premature expiry: swept %d", n)
	}
	clk.Advance(2 * time.Millisecond)
	if n := m.Sweep(clk.Now()); n != 1 {
		t.Fatalf("Sweep past TTL = %d, want 1", n)
	}
	if b.ReservedRate() != 0 {
		t.Fatalf("expiry did not release reservation: %.1f", b.ReservedRate())
	}
}

func TestManagerTTLClamped(t *testing.T) {
	m := NewManager(ManagerConfig{TTL: 10 * time.Minute})
	if m.TTL() != wire.MaxLeaseTTL {
		t.Fatalf("TTL %v, want clamp to %v", m.TTL(), wire.MaxLeaseTTL)
	}
}

// pumpHot drives Route for key until the demand estimate crosses the
// table's hot threshold and an ask appears, or the call budget runs out.
func pumpHot(t *testing.T, tab *Table, clk *fakeClock, key string) Decision {
	t.Helper()
	for i := 0; i < 1000; i++ {
		d := tab.Route(key, 1)
		clk.Advance(5 * time.Millisecond) // 200 decisions/second
		if d.Ask.Op != 0 || d.Decided {
			return d
		}
	}
	t.Fatal("no lease ask after 1000 hot admissions")
	return Decision{}
}

func TestTableLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	tab.SetEpoch(5)

	d := pumpHot(t, tab, clk, "k")
	if d.Ask.Op != wire.LeaseOpAsk {
		t.Fatalf("hot key produced op %d, want ask", d.Ask.Op)
	}
	if d.Ask.Epoch != 5 || d.Ask.Demand < 50 {
		t.Fatalf("ask = %+v, want epoch 5 and demand >= hot rate", d.Ask)
	}

	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second, Epoch: 5})
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after grant", tab.Len())
	}

	// The burst admits immediately; spending beyond burst + accrual denies.
	allowed, denied := 0, 0
	for i := 0; i < 40; i++ {
		d := tab.Route("k", 1)
		if !d.Decided {
			t.Fatalf("admission %d not served locally: %+v", i, d)
		}
		if d.Allow {
			allowed++
		} else {
			denied++
		}
	}
	// Zero elapsed time: exactly the 10 burst credits are spendable.
	if allowed != 10 || denied != 30 {
		t.Fatalf("burst spend: allowed %d denied %d, want 10/30", allowed, denied)
	}
	// Credit accrues at the leased rate.
	clk.Advance(100 * time.Millisecond) // +10 credits
	allowed = 0
	for i := 0; i < 20; i++ {
		if d := tab.Route("k", 1); d.Decided && d.Allow {
			allowed++
		}
	}
	if allowed != 10 {
		t.Fatalf("accrual spend: allowed %d, want 10", allowed)
	}
}

func TestTableEpochInvalidation(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	tab.SetEpoch(5)
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second, Epoch: 5})
	if d := tab.Route("k", 1); !d.Decided {
		t.Fatalf("lease not serving: %+v", d)
	}
	tab.SetEpoch(6) // view swap: the key may have a new owner
	if d := tab.Route("k", 1); d.Decided {
		t.Fatal("stale-epoch lease still admitting")
	}
	if tab.Len() != 0 {
		t.Fatalf("stale lease not dropped: Len = %d", tab.Len())
	}
	// A grant from the old epoch must not install either.
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second, Epoch: 5})
	if tab.Len() != 0 {
		t.Fatal("stale-epoch grant installed")
	}
}

func TestTableExpiry(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second})
	clk.Advance(1100 * time.Millisecond)
	if d := tab.Route("k", 1); d.Decided {
		t.Fatal("expired lease still admitting")
	}
	if tab.Len() != 0 {
		t.Fatalf("expired lease not dropped: Len = %d", tab.Len())
	}
}

func TestTableRenewalWindow(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	// Keep the key hot so renewal (not renounce) is chosen.
	pumpHot(t, tab, clk, "k")
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second})

	// Stay hot while the lease ages into its renewal window (<ttl/4 left).
	var d Decision
	for i := 0; i < 400; i++ {
		d = tab.Route("k", 1)
		clk.Advance(5 * time.Millisecond)
		if d.Ask.Op != 0 {
			break
		}
	}
	if d.Ask.Op != wire.LeaseOpRenew {
		t.Fatalf("in renewal window: got %+v, want renew ask", d)
	}
	// One renewal in flight at a time: the next admission is local again.
	if d := tab.Route("k", 1); !d.Decided {
		t.Fatalf("second admission during renewal not local: %+v", d)
	}
	// A failed exchange re-opens the window.
	tab.AskFailed("k")
	if d := tab.Route("k", 1); d.Ask.Op != wire.LeaseOpRenew {
		t.Fatalf("after AskFailed: got %+v, want renew ask", d)
	}
	// The renewal grant re-arms the lease in place.
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second})
	if d := tab.Route("k", 1); !d.Decided {
		t.Fatalf("after renewal grant: %+v, want local", d)
	}
}

func TestTableRenounceColdKey(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	tab.Apply("k", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second})
	// No demand history: the key reads as cold in the renewal window.
	clk.Advance(800 * time.Millisecond)
	d := tab.Route("k", 1)
	if d.Ask.Op != wire.LeaseOpRenounce {
		t.Fatalf("cold key in renewal window: got %+v, want renounce", d)
	}
	if tab.Len() != 0 {
		t.Fatal("renounced lease kept")
	}
}

func TestTableCrossKeyRevoke(t *testing.T) {
	clk := newFakeClock()
	tab := NewTable(TableConfig{HotRate: 50, Clock: clk.Now})
	tab.Apply("a", wire.LeaseGrant{Op: wire.LeaseOpGrant, Rate: 100, Burst: 10, TTL: time.Second})
	// A revocation for key "a" piggybacked on a response for key "b".
	tab.Apply("b", wire.LeaseGrant{Op: wire.LeaseOpRevoke, Key: "a"})
	if tab.Len() != 0 {
		t.Fatal("cross-key revocation ignored")
	}
}
