// Package lease implements credit leasing: edge admission via bounded rate
// leases (DESIGN.md §11).
//
// PR 5's batching amortized the router→janusd syscalls but every admission
// still pays the UDP hop, which dominates on hot keys. A credit lease
// delegates a slice of a bucket's refill rate to the edge: the janusd-side
// Manager carves (rate, burst, TTL, epoch) out of a bucket and the
// router-side Table then admits that key from a local token bucket at memory
// speed, falling through to the normal wire path on miss, expiry, stale
// epoch, or revocation.
//
// Safety comes from rate conservation plus a bounded horizon:
//
//   - The server RESERVES the leased rate on the bucket (bucket.Reserve),
//     so its own refill drops to r − leased while the holder refills at
//     leased — the combined refill never exceeds the rule's rate r.
//   - Grant bursts are prepaid out of the bucket's current credit
//     (TryConsume), never minted.
//   - Every grant expires after TTL unless renewed over the wire, so any
//     state the server loses track of (lost revocation, partition, bucket
//     handoff, membership swap) can over-admit for at most leased·TTL.
//
// Hence the aggregate admission bound across all holders over any window t:
//
//	admitted ≤ C + r·t + leased·TTL
//
// chaostest.TestInvariantLeasesNeverInflateAdmission drives this bound under
// partition, handoff, and revocation loss.
//
// Who gets a lease is demand-driven: the Table keeps a windowed EWMA of the
// per-key decision rate and only asks once a key is hot, so Zipf-hot keys go
// local while the cold tail stays server-arbitrated. All lease traffic
// piggybacks on ordinary admission exchanges (wire/lease.go): asks and
// renewals decorate requests the router had to send anyway, and grants,
// denials, and revocations decorate the responses.
package lease

import "time"

// Defaults shared by the router-side Table and the janusd-side Manager.
const (
	// DefaultTTL is the lease lifetime when the server config leaves it
	// zero. Short TTLs bound the over-admission horizon; renewal cost is
	// one piggybacked wire exchange per key per TTL, which is negligible.
	DefaultTTL = time.Second

	// DefaultFraction is the share of a bucket's refill rate the server is
	// willing to lease out in aggregate, keeping the remainder for
	// server-arbitrated traffic (old routers, cold keys, other tenants of
	// the key).
	DefaultFraction = 0.5

	// DefaultHotRate is the demand (decisions/second, EWMA) above which a
	// router asks for a lease.
	DefaultHotRate = 50.0

	// MinRate is the smallest rate share worth granting; asks that would
	// round below it are denied so bookkeeping never outweighs the win.
	MinRate = 1.0

	// headroom scales the observed demand when sizing a rate share, so a
	// growing key is not starved by its own trailing estimate.
	headroom = 1.2

	// renewFraction is the portion of the TTL left when the holder starts
	// renewing: one admission per renewal window is routed over the wire
	// carrying LeaseOpRenew instead of being admitted locally.
	renewFraction = 0.25
)
