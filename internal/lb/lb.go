// Package lb implements the gateway load balancer (paper §II-A, Fig 1a) —
// the ELB analogue. It is an HTTP reverse proxy in front of the request
// router layer: it accepts the QoS client's HTTP request, holds it, opens
// its own HTTP exchange with a back-end router chosen by the configured
// policy, and relays the answer. That extra TCP leg is precisely the
// ~500 µs of additional round-trip latency the paper measures against DNS
// load balancing in Fig 5.
//
// Two routing policies are provided (§II-A): round robin, which hands
// requests to back ends one by one, and least connections, which picks the
// back end with the fewest outstanding requests.
package lb

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Policy selects the back-end choice algorithm.
type Policy string

// Supported policies.
const (
	RoundRobin       Policy = "round-robin"
	LeastConnections Policy = "least-connections"
)

// Config configures a gateway load balancer.
type Config struct {
	// Addr is the HTTP listen address.
	Addr string
	// Backends are the initial back-end addresses (request router nodes).
	Backends []string
	// Policy is the routing policy (RoundRobin if empty).
	Policy Policy
	// HopDelay, when non-nil, is invoked once per proxied request and may
	// sleep to model the extra network hop of a hardware appliance.
	HopDelay func()
	// MaxRetries bounds how many distinct back ends are tried per request
	// when one fails (default: all).
	MaxRetries int
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
}

// Stats are cumulative counters for the load balancer.
type Stats struct {
	Requests      int64
	Proxied       int64 // exchanges attempted against back ends
	BackendErrors int64
	NoBackends    int64 // requests failed because no back end was usable
}

type backendState struct {
	addr        string
	outstanding metrics.Gauge
	served      metrics.Counter
}

// LB is a running gateway load balancer.
type LB struct {
	cfg    Config
	ln     net.Listener
	server *http.Server
	client *http.Client
	logger *log.Logger

	mu       sync.Mutex
	backends []*backendState
	rrNext   int

	latency *metrics.Histogram

	requests      metrics.Counter
	proxied       metrics.Counter
	backendErrors metrics.Counter
	noBackends    metrics.Counter

	wg sync.WaitGroup
}

// New starts a load balancer.
func New(cfg Config) (*LB, error) {
	if cfg.Policy == "" {
		cfg.Policy = RoundRobin
	}
	if cfg.Policy != RoundRobin && cfg.Policy != LeastConnections {
		return nil, fmt.Errorf("lb: unknown policy %q", cfg.Policy)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("lb: listen %s: %w", cfg.Addr, err)
	}
	l := &LB{
		cfg:     cfg,
		ln:      ln,
		logger:  logger,
		latency: metrics.NewHistogram(),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     30 * time.Second,
			},
			Timeout: 10 * time.Second,
		},
	}
	for _, b := range cfg.Backends {
		l.backends = append(l.backends, &backendState{addr: b})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", l.proxy)
	l.server = &http.Server{Handler: mux}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.server.Serve(ln)
	}()
	return l, nil
}

// Addr returns the LB's HTTP endpoint — the Janus service endpoint in the
// gateway-LB deployment.
func (l *LB) Addr() string { return l.ln.Addr().String() }

// AddBackend registers a new back-end node (auto-scaling attach).
func (l *LB) AddBackend(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range l.backends {
		if b.addr == addr {
			return
		}
	}
	l.backends = append(l.backends, &backendState{addr: addr})
}

// RemoveBackend deregisters a back-end node (auto-scaling detach).
func (l *LB) RemoveBackend(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.backends[:0]
	for _, b := range l.backends {
		if b.addr != addr {
			out = append(out, b)
		}
	}
	l.backends = out
	if len(l.backends) > 0 {
		l.rrNext %= len(l.backends)
	} else {
		l.rrNext = 0
	}
}

// Backends returns the current back-end addresses.
func (l *LB) Backends() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.backends))
	for i, b := range l.backends {
		out[i] = b.addr
	}
	return out
}

// pick chooses a back end per the policy, skipping the given set.
func (l *LB) pick(skip map[*backendState]bool) *backendState {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.backends)
	if n == 0 {
		return nil
	}
	switch l.cfg.Policy {
	case LeastConnections:
		var best *backendState
		bestOut := int64(math.MaxInt64)
		for _, b := range l.backends {
			if skip[b] {
				continue
			}
			if out := b.outstanding.Value(); out < bestOut {
				best, bestOut = b, out
			}
		}
		return best
	default: // RoundRobin
		for i := 0; i < n; i++ {
			b := l.backends[l.rrNext]
			l.rrNext = (l.rrNext + 1) % n
			if !skip[b] {
				return b
			}
		}
		return nil
	}
}

func (l *LB) proxy(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	l.requests.Inc()
	if l.cfg.HopDelay != nil {
		l.cfg.HopDelay()
	}
	maxTries := l.cfg.MaxRetries
	if maxTries <= 0 {
		maxTries = len(l.Backends())
		if maxTries == 0 {
			maxTries = 1
		}
	}
	skip := make(map[*backendState]bool, maxTries)
	var lastErr error
	for try := 0; try < maxTries; try++ {
		b := l.pick(skip)
		if b == nil {
			break
		}
		if err := l.forward(w, req, b); err != nil {
			lastErr = err
			l.backendErrors.Inc()
			skip[b] = true
			continue
		}
		l.latency.RecordDuration(time.Since(start))
		return
	}
	l.noBackends.Inc()
	if lastErr == nil {
		lastErr = errors.New("lb: no back ends available")
	}
	http.Error(w, lastErr.Error(), http.StatusBadGateway)
}

// forward performs one proxied exchange against back end b.
func (l *LB) forward(w http.ResponseWriter, req *http.Request, b *backendState) error {
	b.outstanding.Add(1)
	defer b.outstanding.Add(-1)
	l.proxied.Inc()
	url := "http://" + b.addr + req.URL.RequestURI()
	outReq, err := http.NewRequestWithContext(req.Context(), req.Method, url, req.Body)
	if err != nil {
		return err
	}
	outReq.Header = req.Header.Clone()
	resp, err := l.client.Do(outReq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b.served.Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return nil
}

// Stats returns a snapshot of the LB counters.
func (l *LB) Stats() Stats {
	return Stats{
		Requests:      l.requests.Value(),
		Proxied:       l.proxied.Value(),
		BackendErrors: l.backendErrors.Value(),
		NoBackends:    l.noBackends.Value(),
	}
}

// ServedPerBackend returns how many requests each back end completed,
// keyed by address — used to verify workload distribution (§V-A).
func (l *LB) ServedPerBackend() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.backends))
	for _, b := range l.backends {
		out[b.addr] = b.served.Value()
	}
	return out
}

// Latency returns the end-to-end proxy latency histogram.
func (l *LB) Latency() *metrics.Histogram { return l.latency }

// Close shuts the load balancer down.
func (l *LB) Close() error {
	err := l.server.Close()
	l.wg.Wait()
	l.client.CloseIdleConnections()
	return err
}
