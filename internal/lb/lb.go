// Package lb implements the gateway load balancer (paper §II-A, Fig 1a) —
// the ELB analogue. It is an HTTP reverse proxy in front of the request
// router layer: it accepts the QoS client's HTTP request, holds it, opens
// its own HTTP exchange with a back-end router chosen by the configured
// policy, and relays the answer. That extra TCP leg is precisely the
// ~500 µs of additional round-trip latency the paper measures against DNS
// load balancing in Fig 5.
//
// Two routing policies are provided (§II-A): round robin, which hands
// requests to back ends one by one, and least connections, which picks the
// back end with the fewest outstanding requests.
package lb

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// fpProxyDial sits on the LB's exchange with a router back end (peer = back
// end address). Failing it exercises the skip-and-retry path: the LB must
// fail over to the next back end, and only 502 when every back end is cut.
var fpProxyDial = failpoint.New("lb/proxy/dial")

// Policy selects the back-end choice algorithm.
type Policy string

// Supported policies.
const (
	RoundRobin       Policy = "round-robin"
	LeastConnections Policy = "least-connections"
)

// Config configures a gateway load balancer.
type Config struct {
	// Addr is the HTTP listen address.
	Addr string
	// Backends are the initial back-end addresses (request router nodes).
	Backends []string
	// Policy is the routing policy (RoundRobin if empty).
	Policy Policy
	// HopDelay, when non-nil, is invoked once per proxied request and may
	// sleep to model the extra network hop of a hardware appliance.
	HopDelay func()
	// MaxRetries bounds how many distinct back ends are tried per request
	// when one fails (default: all).
	MaxRetries int
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
	// Registry receives the LB's counters and latency histogram for
	// /metrics exposition; nil creates a private registry.
	Registry *metrics.Registry
	// Tracer holds the LB's trace state. The LB is the edge of the stack:
	// its sampler decides which requests are traced (clients may also force
	// a trace by sending an X-Janus-Trace header), and completed traces —
	// the LB span plus every downstream span reported in the X-Janus-Spans
	// response header — land in its recorder. Nil creates a private
	// recorder with sampling disabled.
	Tracer *trace.Recorder
}

// Stats are cumulative counters for the load balancer.
type Stats struct {
	Requests      int64
	Proxied       int64 // exchanges attempted against back ends
	BackendErrors int64
	NoBackends    int64 // requests failed because no back end was usable
}

type backendState struct {
	addr        string
	outstanding *metrics.Gauge
	served      *metrics.Counter
}

// LB is a running gateway load balancer.
type LB struct {
	cfg    Config
	ln     net.Listener
	server *http.Server
	client *http.Client
	logger *log.Logger

	mu       sync.Mutex
	backends []*backendState
	rrNext   int

	latency *metrics.Histogram

	registry *metrics.Registry
	tracer   *trace.Recorder

	requests      *metrics.Counter
	proxied       *metrics.Counter
	backendErrors *metrics.Counter
	noBackends    *metrics.Counter

	wg sync.WaitGroup
}

// newBackendState builds the per-backend series, labelled by address so the
// §V-A workload-distribution check reads straight off /metrics.
func (l *LB) newBackendState(addr string) *backendState {
	label := metrics.Label{Key: "backend", Value: addr}
	return &backendState{
		addr:        addr,
		outstanding: l.registry.Gauge("janus_lb_backend_outstanding", "requests in flight to one back end", label),
		served:      l.registry.Counter("janus_lb_backend_served_total", "requests completed by one back end", label),
	}
}

// New starts a load balancer.
func New(cfg Config) (*LB, error) {
	if cfg.Policy == "" {
		cfg.Policy = RoundRobin
	}
	if cfg.Policy != RoundRobin && cfg.Policy != LeastConnections {
		return nil, fmt.Errorf("lb: unknown policy %q", cfg.Policy)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("lb: listen %s: %w", cfg.Addr, err)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.NewRecorder(trace.Config{})
	}
	l := &LB{
		cfg:      cfg,
		ln:       ln,
		logger:   logger,
		latency:  metrics.NewHistogram(),
		registry: reg,
		tracer:   tracer,
		requests: reg.Counter("janus_lb_requests_total", "HTTP requests accepted at the gateway"),
		proxied:  reg.Counter("janus_lb_proxied_total", "exchanges attempted against back ends"),
		backendErrors: reg.Counter("janus_lb_backend_errors_total",
			"proxied exchanges that failed against a back end"),
		noBackends: reg.Counter("janus_lb_no_backends_total", "requests failed because no back end was usable"),
		client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 256,
				IdleConnTimeout:     30 * time.Second,
			},
			Timeout: 10 * time.Second,
		},
	}
	reg.RegisterHistogram("janus_lb_latency_ns", "end-to-end proxy latency in nanoseconds", l.latency)
	for _, b := range cfg.Backends {
		l.backends = append(l.backends, l.newBackendState(b))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", l.proxy)
	l.server = &http.Server{Handler: mux}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		l.server.Serve(ln)
	}()
	return l, nil
}

// Addr returns the LB's HTTP endpoint — the Janus service endpoint in the
// gateway-LB deployment.
func (l *LB) Addr() string { return l.ln.Addr().String() }

// AddBackend registers a new back-end node (auto-scaling attach).
func (l *LB) AddBackend(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, b := range l.backends {
		if b.addr == addr {
			return
		}
	}
	l.backends = append(l.backends, l.newBackendState(addr))
}

// RemoveBackend deregisters a back-end node (auto-scaling detach).
func (l *LB) RemoveBackend(addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.backends[:0]
	for _, b := range l.backends {
		if b.addr != addr {
			out = append(out, b)
		}
	}
	l.backends = out
	if len(l.backends) > 0 {
		l.rrNext %= len(l.backends)
	} else {
		l.rrNext = 0
	}
}

// Backends returns the current back-end addresses.
func (l *LB) Backends() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.backends))
	for i, b := range l.backends {
		out[i] = b.addr
	}
	return out
}

// pick chooses a back end per the policy, skipping the given set.
func (l *LB) pick(skip map[*backendState]bool) *backendState {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.backends)
	if n == 0 {
		return nil
	}
	switch l.cfg.Policy {
	case LeastConnections:
		var best *backendState
		bestOut := int64(math.MaxInt64)
		for _, b := range l.backends {
			if skip[b] {
				continue
			}
			if out := b.outstanding.Value(); out < bestOut {
				best, bestOut = b, out
			}
		}
		return best
	default: // RoundRobin
		for i := 0; i < n; i++ {
			b := l.backends[l.rrNext]
			l.rrNext = (l.rrNext + 1) % n
			if !skip[b] {
				return b
			}
		}
		return nil
	}
}

func (l *LB) proxy(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	l.requests.Inc()
	if l.cfg.HopDelay != nil {
		l.cfg.HopDelay()
	}
	// The LB is the trace edge: honour a client-supplied trace ID, or draw
	// a sampling decision (one atomic load when sampling is disabled).
	tid, _ := trace.ParseID(req.Header.Get(trace.Header))
	if tid == 0 {
		if id, ok := l.tracer.Sample(); ok {
			tid = id
			req.Header.Set(trace.Header, trace.FormatID(tid))
		}
	}
	maxTries := l.cfg.MaxRetries
	if maxTries <= 0 {
		maxTries = len(l.Backends())
		if maxTries == 0 {
			maxTries = 1
		}
	}
	skip := make(map[*backendState]bool, maxTries)
	var lastErr error
	for try := 0; try < maxTries; try++ {
		b := l.pick(skip)
		if b == nil {
			break
		}
		spanHdr, err := l.forward(w, req, b)
		if err != nil {
			lastErr = err
			l.backendErrors.Inc()
			skip[b] = true
			continue
		}
		d := time.Since(start)
		l.latency.RecordDuration(d)
		if tid != 0 {
			l.completeTrace(tid, spanHdr, b.addr, try, start, d)
		}
		return
	}
	l.noBackends.Inc()
	if lastErr == nil {
		lastErr = errors.New("lb: no back ends available")
	}
	http.Error(w, lastErr.Error(), http.StatusBadGateway)
}

// completeTrace assembles the request's trace: the LB's own span first,
// then every downstream span the router reported in the response header.
func (l *LB) completeTrace(tid uint64, spanHdr, backend string, retries int, start time.Time, d time.Duration) {
	downstream, err := trace.DecodeSpans(spanHdr)
	if err != nil {
		l.logger.Printf("lb: dropping malformed span header from %s: %v", backend, err)
	}
	spans := make([]trace.Span, 0, 1+len(downstream))
	spans = append(spans, trace.Span{
		Hop:   "lb",
		Note:  fmt.Sprintf("backend=%s retries=%d", backend, retries),
		Start: start.UnixNano(),
		Dur:   int64(d),
	})
	spans = append(spans, downstream...)
	l.tracer.Record(&trace.Trace{ID: trace.HexID(tid), Spans: spans})
}

// forward performs one proxied exchange against back end b, returning the
// X-Janus-Spans header the back end reported (empty when untraced).
func (l *LB) forward(w http.ResponseWriter, req *http.Request, b *backendState) (string, error) {
	b.outstanding.Add(1)
	defer b.outstanding.Add(-1)
	l.proxied.Inc()
	if fpProxyDial.Armed() {
		switch o := fpProxyDial.EvalPeer(b.addr); o.Kind {
		case failpoint.Error, failpoint.Partition:
			return "", o.Err
		case failpoint.Drop:
			return "", fmt.Errorf("lb: dial %s dropped by failpoint", b.addr)
		case failpoint.Delay:
			o.Sleep()
		}
	}
	url := "http://" + b.addr + req.URL.RequestURI()
	outReq, err := http.NewRequestWithContext(req.Context(), req.Method, url, req.Body)
	if err != nil {
		return "", err
	}
	outReq.Header = req.Header.Clone()
	resp, err := l.client.Do(outReq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b.served.Inc()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return resp.Header.Get(trace.SpanHeader), nil
}

// Stats returns a snapshot of the LB counters.
func (l *LB) Stats() Stats {
	return Stats{
		Requests:      l.requests.Value(),
		Proxied:       l.proxied.Value(),
		BackendErrors: l.backendErrors.Value(),
		NoBackends:    l.noBackends.Value(),
	}
}

// ServedPerBackend returns how many requests each back end completed,
// keyed by address — used to verify workload distribution (§V-A).
func (l *LB) ServedPerBackend() map[string]int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.backends))
	for _, b := range l.backends {
		out[b.addr] = b.served.Value()
	}
	return out
}

// Latency returns the end-to-end proxy latency histogram.
func (l *LB) Latency() *metrics.Histogram { return l.latency }

// Registry returns the metrics registry backing the LB's counters.
func (l *LB) Registry() *metrics.Registry { return l.registry }

// Tracer returns the LB's trace recorder (the edge sampler).
func (l *LB) Tracer() *trace.Recorder { return l.tracer }

// Close shuts the load balancer down.
func (l *LB) Close() error {
	err := l.server.Close()
	l.wg.Wait()
	l.client.CloseIdleConnections()
	return err
}
