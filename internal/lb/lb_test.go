package lb

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newEcho starts a back end that answers with its own id and optionally
// stalls to hold connections open.
func newEcho(t *testing.T, id string, stall time.Duration) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stall > 0 {
			time.Sleep(stall)
		}
		w.Header().Set("X-Backend", id)
		io.WriteString(w, id)
	}))
	t.Cleanup(s.Close)
	return s
}

func addrOf(s *httptest.Server) string { return s.Listener.Addr().String() }

func newLB(t *testing.T, cfg Config) *LB {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func get(t *testing.T, addr, path string) (string, int) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode
}

func TestRoundRobinDistribution(t *testing.T) {
	b1 := newEcho(t, "one", 0)
	b2 := newEcho(t, "two", 0)
	l := newLB(t, Config{Backends: []string{addrOf(b1), addrOf(b2)}})
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		body, code := get(t, l.Addr(), "/qos?key=k")
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		counts[body]++
	}
	if counts["one"] != 5 || counts["two"] != 5 {
		t.Fatalf("distribution = %v, want exact 5/5 round robin", counts)
	}
	served := l.ServedPerBackend()
	if served[addrOf(b1)] != 5 || served[addrOf(b2)] != 5 {
		t.Fatalf("served = %v", served)
	}
}

func TestLeastConnectionsPrefersIdle(t *testing.T) {
	slow := newEcho(t, "slow", 300*time.Millisecond)
	fast := newEcho(t, "fast", 0)
	l := newLB(t, Config{
		Backends: []string{addrOf(slow), addrOf(fast)},
		Policy:   LeastConnections,
	})
	// Occupy the slow back end with a long request.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, l.Addr(), "/first")
	}()
	time.Sleep(50 * time.Millisecond) // let the first request land
	// While it is outstanding, new requests must go to the idle back end.
	for i := 0; i < 5; i++ {
		body, _ := get(t, l.Addr(), "/next")
		if body != "fast" {
			t.Fatalf("request %d landed on %q, want fast", i, body)
		}
	}
	wg.Wait()
}

func TestFailoverToHealthyBackend(t *testing.T) {
	dead := newEcho(t, "dead", 0)
	live := newEcho(t, "live", 0)
	deadAddr := addrOf(dead)
	dead.Close()
	l := newLB(t, Config{Backends: []string{deadAddr, addrOf(live)}})
	for i := 0; i < 4; i++ {
		body, code := get(t, l.Addr(), "/q")
		if code != http.StatusOK || body != "live" {
			t.Fatalf("request %d: %q %d", i, body, code)
		}
	}
	if l.Stats().BackendErrors == 0 {
		t.Fatal("backend errors not counted")
	}
}

func TestAllBackendsDownReturns502(t *testing.T) {
	b := newEcho(t, "x", 0)
	addr := addrOf(b)
	b.Close()
	l := newLB(t, Config{Backends: []string{addr}})
	_, code := get(t, l.Addr(), "/q")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", code)
	}
	if l.Stats().NoBackends != 1 {
		t.Fatalf("stats = %+v", l.Stats())
	}
}

func TestNoBackendsConfigured(t *testing.T) {
	l := newLB(t, Config{})
	_, code := get(t, l.Addr(), "/q")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d", code)
	}
}

func TestAddRemoveBackend(t *testing.T) {
	b1 := newEcho(t, "one", 0)
	b2 := newEcho(t, "two", 0)
	l := newLB(t, Config{Backends: []string{addrOf(b1)}})
	l.AddBackend(addrOf(b2))
	l.AddBackend(addrOf(b2)) // duplicate ignored
	if n := len(l.Backends()); n != 2 {
		t.Fatalf("backends = %d", n)
	}
	l.RemoveBackend(addrOf(b1))
	for i := 0; i < 3; i++ {
		body, _ := get(t, l.Addr(), "/q")
		if body != "two" {
			t.Fatalf("removed backend still serving: %q", body)
		}
	}
	l.RemoveBackend(addrOf(b2))
	if n := len(l.Backends()); n != 0 {
		t.Fatalf("backends = %d", n)
	}
}

func TestHopDelayApplied(t *testing.T) {
	b := newEcho(t, "x", 0)
	var calls atomic.Int64
	l := newLB(t, Config{
		Backends: []string{addrOf(b)},
		HopDelay: func() { calls.Add(1) },
	})
	get(t, l.Addr(), "/q")
	get(t, l.Addr(), "/q")
	if calls.Load() != 2 {
		t.Fatalf("hop delay calls = %d", calls.Load())
	}
}

func TestHeadersAndStatusRelayed(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Janus-Status", "ok")
		w.WriteHeader(http.StatusTeapot)
		io.WriteString(w, "true")
	}))
	defer backend.Close()
	l := newLB(t, Config{Backends: []string{backend.Listener.Addr().String()}})
	resp, err := http.Get("http://" + l.Addr() + "/qos?key=k")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot || resp.Header.Get("X-Janus-Status") != "ok" {
		t.Fatalf("relay lost status/headers: %d %q", resp.StatusCode, resp.Header.Get("X-Janus-Status"))
	}
}

func TestQueryStringForwarded(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, r.URL.RawQuery)
	}))
	defer backend.Close()
	l := newLB(t, Config{Backends: []string{backend.Listener.Addr().String()}})
	body, _ := get(t, l.Addr(), "/qos?key=alice&cost=2")
	if body != "key=alice&cost=2" {
		t.Fatalf("query = %q", body)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := New(Config{Addr: "127.0.0.1:0", Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestConcurrentProxying(t *testing.T) {
	var served atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		io.WriteString(w, "ok")
	}))
	defer backend.Close()
	l := newLB(t, Config{Backends: []string{backend.Listener.Addr().String()}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				get(t, l.Addr(), fmt.Sprintf("/q%d", i))
			}
		}()
	}
	wg.Wait()
	if served.Load() != 320 {
		t.Fatalf("served = %d", served.Load())
	}
	if l.Latency().Count() != 320 {
		t.Fatalf("latency count = %d", l.Latency().Count())
	}
}
