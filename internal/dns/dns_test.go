package dns

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQueryNXDomain(t *testing.T) {
	s := NewServer()
	if _, _, err := s.Query("nope"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v, want ErrNXDomain", err)
	}
}

func TestSetAAndQuery(t *testing.T) {
	s := NewServer()
	s.SetA("janus.example", 30*time.Second, "10.0.0.1:80", "10.0.0.2:80")
	addrs, ttl, err := s.Query("janus.example")
	if err != nil || ttl != 30*time.Second || len(addrs) != 2 {
		t.Fatalf("addrs=%v ttl=%v err=%v", addrs, ttl, err)
	}
}

func TestRoundRobinPermutation(t *testing.T) {
	s := NewServer()
	s.SetA("rr.example", time.Second, "a", "b", "c")
	var firsts []string
	for i := 0; i < 6; i++ {
		addrs, _, err := s.Query("rr.example")
		if err != nil {
			t.Fatal(err)
		}
		firsts = append(firsts, addrs[0])
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if firsts[i] != want[i] {
			t.Fatalf("firsts = %v, want %v", firsts, want)
		}
	}
	// Each answer contains the full set.
	addrs, _, _ := s.Query("rr.example")
	seen := map[string]bool{}
	for _, a := range addrs {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("answer missing addresses: %v", addrs)
	}
}

func TestAddAAndRemoveA(t *testing.T) {
	s := NewServer()
	s.AddA("n", time.Second, "a")
	s.AddA("n", time.Second, "b", "c")
	addrs, _, _ := s.Query("n")
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	s.RemoveA("n", "b")
	addrs, _, _ = s.Query("n")
	if len(addrs) != 2 {
		t.Fatalf("addrs after remove = %v", addrs)
	}
	for _, a := range addrs {
		if a == "b" {
			t.Fatal("removed address still present")
		}
	}
	s.RemoveA("missing", "x") // no panic
}

func TestDelete(t *testing.T) {
	s := NewServer()
	s.SetA("n", time.Second, "a")
	s.Delete("n")
	if _, _, err := s.Query("n"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailoverFlipsToSecondaryAndBack(t *testing.T) {
	s := NewServer()
	defer s.Close()
	var healthy atomic.Bool
	healthy.Store(true)
	s.SetFailover("db.example", time.Second, "primary:1", "standby:1",
		func(addr string) bool { return healthy.Load() }, 5*time.Millisecond)
	addrs, _, err := s.Query("db.example")
	if err != nil || addrs[0] != "primary:1" {
		t.Fatalf("initial: %v %v", addrs, err)
	}
	healthy.Store(false)
	if _, err := s.CheckNow("db.example"); err != nil {
		t.Fatal(err)
	}
	addrs, _, _ = s.Query("db.example")
	if addrs[0] != "standby:1" {
		t.Fatalf("after failure: %v", addrs)
	}
	healthy.Store(true)
	s.CheckNow("db.example")
	addrs, _, _ = s.Query("db.example")
	if addrs[0] != "primary:1" {
		t.Fatalf("after recovery: %v", addrs)
	}
}

func TestFailoverBackgroundLoop(t *testing.T) {
	s := NewServer()
	defer s.Close()
	var healthy atomic.Bool
	healthy.Store(true)
	s.SetFailover("svc", time.Second, "p", "s",
		func(string) bool { return healthy.Load() }, 2*time.Millisecond)
	healthy.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		addrs, _, _ := s.Query("svc")
		if addrs[0] == "s" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background health loop never flipped the record")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckNowOnPlainRecord(t *testing.T) {
	s := NewServer()
	s.SetA("plain", time.Second, "a")
	if _, err := s.CheckNow("plain"); err == nil {
		t.Fatal("CheckNow on non-failover record succeeded")
	}
}

func TestSetAReplacesFailover(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.SetFailover("n", time.Second, "p", "s", func(string) bool { return true }, time.Millisecond)
	s.SetA("n", time.Second, "x")
	addrs, _, _ := s.Query("n")
	if addrs[0] != "x" {
		t.Fatalf("addrs = %v", addrs)
	}
}

func TestResolverCachesUntilTTL(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := NewServerWithClock(clock)
	s.SetA("n", 30*time.Second, "a", "b")
	r := NewResolverWithClock(s, clock)

	first, err := r.ResolveOne("n")
	if err != nil {
		t.Fatal(err)
	}
	// Within the TTL every resolution hits the cache: same first address,
	// no extra server queries.
	q0 := s.Queries()
	for i := 0; i < 10; i++ {
		now = now.Add(time.Second)
		got, err := r.ResolveOne("n")
		if err != nil || got != first {
			t.Fatalf("cached resolve changed: %q vs %q (err %v)", got, first, err)
		}
	}
	if s.Queries() != q0 {
		t.Fatalf("cache miss during TTL: %d extra queries", s.Queries()-q0)
	}
	// After expiry the next query re-fetches and round-robin advances.
	now = now.Add(30 * time.Second)
	got, err := r.ResolveOne("n")
	if err != nil {
		t.Fatal(err)
	}
	if got == first {
		t.Fatalf("expected rotated answer after TTL, still %q", got)
	}
	if s.Queries() != q0+1 {
		t.Fatalf("queries = %d, want %d", s.Queries(), q0+1)
	}
}

func TestResolverFlush(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := NewServerWithClock(clock)
	s.SetA("n", time.Hour, "a", "b")
	r := NewResolverWithClock(s, clock)
	first, _ := r.ResolveOne("n")
	r.Flush()
	second, _ := r.ResolveOne("n")
	if first == second {
		t.Fatal("flush did not force a re-query")
	}
}

func TestResolverErrorPassthrough(t *testing.T) {
	s := NewServer()
	r := NewResolver(s)
	if _, err := r.ResolveOne("missing"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
	s.SetA("empty", time.Second) // record with no addresses
	if _, err := r.ResolveOne("empty"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("empty record err = %v", err)
	}
}

func TestUncachedResolverAlwaysQueries(t *testing.T) {
	s := NewServer()
	s.SetA("n", time.Hour, "a", "b")
	r := NewUncachedResolver(s)
	a, _ := r.ResolveOne("n")
	b, _ := r.ResolveOne("n")
	if a == b {
		t.Fatal("uncached resolver returned cached answer")
	}
	if _, err := r.ResolveOne("missing"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("err = %v", err)
	}
	s.SetA("empty", time.Second)
	if _, err := r.ResolveOne("empty"); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("empty err = %v", err)
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	s := NewServer()
	defer s.Close()
	s.SetA("n", time.Millisecond, "a", "b", "c")
	r := NewResolver(s)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				switch i % 4 {
				case 0:
					r.Resolve("n")
				case 1:
					s.Query("n")
				case 2:
					s.AddA("n", time.Millisecond, "d")
					s.RemoveA("n", "d")
				case 3:
					s.Names()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNames(t *testing.T) {
	s := NewServer()
	s.SetA("b", time.Second, "1")
	s.SetA("a", time.Second, "1")
	names := s.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestCloseStopsHealthLoops(t *testing.T) {
	s := NewServer()
	var checks atomic.Int64
	s.SetFailover("n", time.Second, "p", "s",
		func(string) bool { checks.Add(1); return true }, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	s.Close()
	after := checks.Load()
	time.Sleep(20 * time.Millisecond)
	if checks.Load() != after {
		t.Fatal("health loop still running after Close")
	}
}
