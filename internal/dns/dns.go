// Package dns is an in-process DNS substrate standing in for Amazon
// Route53 (paper §III-A). It provides exactly the behaviours Janus depends
// on:
//
//   - A records mapping a name to a set of addresses, with a TTL;
//   - per-query permutation of the address list (round-robin DNS — "With
//     each DNS query request, the IP address sequence in the list is
//     permuted");
//   - client-side resolvers that cache results until the TTL expires, the
//     OS behaviour responsible for the load-skew discussed in §V-A;
//   - health-checked failover records: a primary/secondary pair where the
//     name resolves to the primary while it is healthy and flips to the
//     secondary on failure (the Route53 "health check and fail over
//     mechanism" that manages QoS-server master/slave pairs and the
//     Multi-AZ database endpoint).
//
// Addresses are opaque strings (host:port), which is what the rest of the
// system consumes.
package dns

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNXDomain is returned when a name has no records.
var ErrNXDomain = errors.New("dns: no such domain")

// Clock abstracts time for deterministic tests.
type Clock func() time.Time

// Server is an authoritative DNS server for a flat zone.
type Server struct {
	mu      sync.Mutex
	records map[string]*record
	clock   Clock
	queries int64
}

type record struct {
	addrs    []string
	ttl      time.Duration
	rotation int
	failover *failover
}

type failover struct {
	primary   []string
	secondary []string
	usePri    bool
	check     HealthChecker
	interval  time.Duration
	stop      chan struct{}
	done      chan struct{}
}

// HealthChecker probes a target address and reports whether it is healthy.
type HealthChecker func(addr string) bool

// NewServer returns an empty zone.
func NewServer() *Server { return NewServerWithClock(time.Now) }

// NewServerWithClock returns an empty zone using the given clock.
func NewServerWithClock(clock Clock) *Server {
	return &Server{records: make(map[string]*record), clock: clock}
}

// SetA installs or replaces the A record for name.
func (s *Server) SetA(name string, ttl time.Duration, addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.records[name]; old != nil && old.failover != nil {
		stopFailoverLocked(old.failover)
	}
	s.records[name] = &record{addrs: append([]string(nil), addrs...), ttl: ttl}
}

// AddA appends addresses to an existing record (creating it if needed).
func (s *Server) AddA(name string, ttl time.Duration, addrs ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.records[name]
	if r == nil {
		r = &record{ttl: ttl}
		s.records[name] = r
	}
	r.addrs = append(r.addrs, addrs...)
	r.ttl = ttl
}

// RemoveA removes one address from a record; the record remains (possibly
// empty) so the name still exists.
func (s *Server) RemoveA(name, addr string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.records[name]
	if r == nil {
		return
	}
	out := r.addrs[:0]
	for _, a := range r.addrs {
		if a != addr {
			out = append(out, a)
		}
	}
	r.addrs = out
}

// Delete removes a name entirely.
func (s *Server) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r := s.records[name]; r != nil && r.failover != nil {
		stopFailoverLocked(r.failover)
	}
	delete(s.records, name)
}

// SetFailover installs a health-checked failover record: name resolves to
// primary while check(primary) is true, and to secondary otherwise. The
// health check runs every interval until the record is replaced or the
// server is closed. The initial state is "primary healthy".
func (s *Server) SetFailover(name string, ttl time.Duration, primary, secondary string, check HealthChecker, interval time.Duration) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	fo := &failover{
		primary:   []string{primary},
		secondary: []string{secondary},
		usePri:    true,
		check:     check,
		interval:  interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.mu.Lock()
	if old := s.records[name]; old != nil && old.failover != nil {
		stopFailoverLocked(old.failover)
	}
	s.records[name] = &record{ttl: ttl, failover: fo}
	s.mu.Unlock()
	go s.healthLoop(name, fo)
}

func stopFailoverLocked(fo *failover) {
	select {
	case <-fo.stop:
	default:
		close(fo.stop)
	}
}

func (s *Server) healthLoop(name string, fo *failover) {
	defer close(fo.done)
	ticker := time.NewTicker(fo.interval)
	defer ticker.Stop()
	for {
		select {
		case <-fo.stop:
			return
		case <-ticker.C:
			healthy := fo.check(fo.primary[0])
			s.mu.Lock()
			r := s.records[name]
			if r == nil || r.failover != fo {
				s.mu.Unlock()
				return
			}
			fo.usePri = healthy
			s.mu.Unlock()
		}
	}
}

// CheckNow forces an immediate health evaluation of a failover record,
// returning whether the primary is in service afterwards. It exists so
// tests and orchestrators need not wait for the next tick.
func (s *Server) CheckNow(name string) (primaryActive bool, err error) {
	s.mu.Lock()
	r := s.records[name]
	if r == nil || r.failover == nil {
		s.mu.Unlock()
		return false, fmt.Errorf("dns: %q is not a failover record", name)
	}
	fo := r.failover
	s.mu.Unlock()
	healthy := fo.check(fo.primary[0])
	s.mu.Lock()
	if cur := s.records[name]; cur != nil && cur.failover == fo {
		fo.usePri = healthy
	}
	s.mu.Unlock()
	return healthy, nil
}

// Query answers a DNS query: the full (permuted) address list and its TTL.
func (s *Server) Query(name string) ([]string, time.Duration, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	r := s.records[name]
	if r == nil {
		return nil, 0, fmt.Errorf("%w: %s", ErrNXDomain, name)
	}
	if fo := r.failover; fo != nil {
		if fo.usePri {
			return append([]string(nil), fo.primary...), r.ttl, nil
		}
		return append([]string(nil), fo.secondary...), r.ttl, nil
	}
	n := len(r.addrs)
	if n == 0 {
		return nil, r.ttl, nil
	}
	// Round-robin permutation: rotate the list by one per query.
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.addrs[(i+r.rotation)%n]
	}
	r.rotation = (r.rotation + 1) % n
	return out, r.ttl, nil
}

// Queries returns the number of queries served (for cache-behaviour tests).
func (s *Server) Queries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries
}

// Names returns all registered names, sorted.
func (s *Server) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.records))
	for n := range s.records {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Close stops all failover health-check loops.
func (s *Server) Close() {
	s.mu.Lock()
	var waits []chan struct{}
	for _, r := range s.records {
		if r.failover != nil {
			stopFailoverLocked(r.failover)
			waits = append(waits, r.failover.done)
		}
	}
	s.mu.Unlock()
	for _, w := range waits {
		<-w
	}
}
