package dns

import (
	"sync"
	"time"
)

// Resolver is a caching stub resolver modelling the operating-system
// behaviour described in §V-A of the paper: "by default most operating
// systems cache DNS resolution results until the time-to-live (TTL)
// property of the DNS record expires", and "the QoS client attempts to
// connect ... with the first IP address returned from the DNS query".
type Resolver struct {
	server *Server
	clock  Clock

	mu    sync.Mutex
	cache map[string]cacheEntry
}

type cacheEntry struct {
	addrs   []string
	expires time.Time
}

// NewResolver returns a caching resolver backed by server.
func NewResolver(server *Server) *Resolver {
	return NewResolverWithClock(server, time.Now)
}

// NewResolverWithClock returns a resolver using the given clock for TTL
// accounting.
func NewResolverWithClock(server *Server, clock Clock) *Resolver {
	return &Resolver{server: server, clock: clock, cache: make(map[string]cacheEntry)}
}

// Resolve returns the cached address list for name, querying the server on
// a cache miss or TTL expiry. The returned slice must not be modified.
func (r *Resolver) Resolve(name string) ([]string, error) {
	now := r.clock()
	r.mu.Lock()
	if e, ok := r.cache[name]; ok && now.Before(e.expires) {
		addrs := e.addrs
		r.mu.Unlock()
		return addrs, nil
	}
	r.mu.Unlock()
	addrs, ttl, err := r.server.Query(name)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cache[name] = cacheEntry{addrs: addrs, expires: now.Add(ttl)}
	r.mu.Unlock()
	return addrs, nil
}

// ResolveOne returns the first address for name — the connection target an
// OS-level client would pick.
func (r *Resolver) ResolveOne(name string) (string, error) {
	addrs, err := r.Resolve(name)
	if err != nil {
		return "", err
	}
	if len(addrs) == 0 {
		return "", ErrNXDomain
	}
	return addrs[0], nil
}

// Flush drops the cache (e.g. after a known failover, or to model a client
// restart).
func (r *Resolver) Flush() {
	r.mu.Lock()
	r.cache = make(map[string]cacheEntry)
	r.mu.Unlock()
}

// UncachedResolver bypasses caching entirely; every Resolve is a fresh
// query. The gateway load balancer path uses this to model Route53's own
// per-request answers to the ELB alias.
type UncachedResolver struct{ server *Server }

// NewUncachedResolver returns a resolver with no cache.
func NewUncachedResolver(server *Server) *UncachedResolver {
	return &UncachedResolver{server: server}
}

// Resolve queries the server directly.
func (r *UncachedResolver) Resolve(name string) ([]string, error) {
	addrs, _, err := r.server.Query(name)
	return addrs, err
}

// ResolveOne returns the first address from a fresh query.
func (r *UncachedResolver) ResolveOne(name string) (string, error) {
	addrs, err := r.Resolve(name)
	if err != nil {
		return "", err
	}
	if len(addrs) == 0 {
		return "", ErrNXDomain
	}
	return addrs[0], nil
}
