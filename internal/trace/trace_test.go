package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestFormatParseID(t *testing.T) {
	cases := []uint64{1, 0xdeadbeef, math.MaxUint64}
	for _, id := range cases {
		s := FormatID(id)
		if len(s) != 16 {
			t.Fatalf("FormatID(%d) = %q, want 16 hex digits", id, s)
		}
		got, err := ParseID(s)
		if err != nil || got != id {
			t.Fatalf("ParseID(%q) = %d, %v, want %d", s, got, err, id)
		}
	}
	if id, err := ParseID(""); err != nil || id != 0 {
		t.Fatalf("ParseID(\"\") = %d, %v, want 0, nil", id, err)
	}
	if _, err := ParseID("not-hex"); err == nil {
		t.Fatal("ParseID(\"not-hex\") succeeded, want error")
	}
}

func TestHexIDJSON(t *testing.T) {
	tr := Trace{ID: HexID(0xabc), Spans: []Span{{Hop: "lb", Dur: 5}}}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != tr.ID {
		t.Fatalf("round-tripped ID %x, want %x", back.ID, tr.ID)
	}
}

func TestSpanHeaderRoundTrip(t *testing.T) {
	spans := []Span{
		{Hop: "router", Note: "backend=x retries=1", Start: 100, Dur: 2000},
		{Hop: "qosserver", Note: "status=ok", Start: 150, Dur: 800},
	}
	hdr := EncodeSpans(spans)
	got, err := DecodeSpans(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != spans[0] || got[1] != spans[1] {
		t.Fatalf("round trip = %+v, want %+v", got, spans)
	}
	if got, err := DecodeSpans(""); err != nil || got != nil {
		t.Fatalf("DecodeSpans(\"\") = %v, %v, want nil, nil", got, err)
	}
	if _, err := DecodeSpans("{not json"); err == nil {
		t.Fatal("DecodeSpans of garbage succeeded, want error")
	}
}

func TestSamplerDisabled(t *testing.T) {
	s := NewSampler(0)
	for i := 0; i < 1000; i++ {
		if id, ok := s.Sample(); ok || id != 0 {
			t.Fatalf("disabled sampler returned (%d, %v)", id, ok)
		}
	}
}

func TestSamplerAlways(t *testing.T) {
	s := NewSampler(1)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id, ok := s.Sample()
		if !ok || id == 0 {
			t.Fatalf("rate-1 sampler returned (%d, %v)", id, ok)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x", id)
		}
		seen[id] = true
	}
}

func TestSamplerFraction(t *testing.T) {
	s := NewSampler(0.1)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if _, ok := s.Sample(); ok {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("rate-0.1 sampler hit %.3f of %d draws", frac, n)
	}
}

func TestSamplerSetRate(t *testing.T) {
	s := NewSampler(0)
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate() = %v, want 0", r)
	}
	s.SetRate(1)
	if r := s.Rate(); r != 1 {
		t.Fatalf("Rate() = %v, want 1", r)
	}
	s.SetRate(0.5)
	if r := s.Rate(); r < 0.49 || r > 0.51 {
		t.Fatalf("Rate() = %v, want ~0.5", r)
	}
	s.SetRate(math.NaN())
	if r := s.Rate(); r != 0 {
		t.Fatalf("Rate() after NaN = %v, want 0", r)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	r := NewRing(16)
	for i := 1; i <= 40; i++ {
		r.Put(&Trace{ID: HexID(i), Spans: []Span{{Hop: "x"}}})
	}
	got := r.Snapshot()
	if len(got) != 16 {
		t.Fatalf("snapshot holds %d traces, want 16", len(got))
	}
	for i, tr := range got {
		want := HexID(40 - i) // newest first
		if tr.ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
}

func TestRingPartial(t *testing.T) {
	r := NewRing(16)
	r.Put(&Trace{ID: 1})
	r.Put(&Trace{ID: 2})
	got := r.Snapshot()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("snapshot = %v", got)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Put(&Trace{ID: HexID(g*1000 + i)})
				r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if n := len(r.Snapshot()); n != 64 {
		t.Fatalf("snapshot holds %d, want 64", n)
	}
}

func TestTopKKeepsSlowest(t *testing.T) {
	tk := newTopK(4)
	for d := int64(1); d <= 100; d++ {
		tk.offer(&Trace{ID: HexID(d), Dur: d})
	}
	got := tk.snapshot()
	if len(got) != 4 {
		t.Fatalf("capture holds %d, want 4", len(got))
	}
	for i, want := range []int64{100, 99, 98, 97} {
		if got[i].Dur != want {
			t.Fatalf("slowest[%d].Dur = %d, want %d", i, got[i].Dur, want)
		}
	}
	// Fast traces below the floor must be rejected without disturbing it.
	tk.offer(&Trace{ID: 1, Dur: 5})
	if got := tk.snapshot(); got[3].Dur != 97 {
		t.Fatalf("floor trace replaced by a faster one: %v", got)
	}
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(Config{Rate: 1, RingSize: 16, TopK: 4})
	r.Record(nil)                  // dropped
	r.Record(&Trace{ID: HexID(9)}) // dropped: no spans
	for i := 1; i <= 5; i++ {
		r.Record(&Trace{ID: HexID(i), Spans: []Span{{Hop: "lb", Dur: int64(i * 100)}}})
	}
	if got := r.Recorded(); got != 5 {
		t.Fatalf("Recorded() = %d, want 5", got)
	}
	d := r.Dump("test-svc")
	if d.Service != "test-svc" || d.Rate != 1 || d.Recorded != 5 {
		t.Fatalf("dump header = %+v", d)
	}
	if len(d.Recent) != 5 || d.Recent[0].ID != 5 {
		t.Fatalf("recent = %+v", d.Recent)
	}
	if len(d.Slowest) != 4 || d.Slowest[0].Dur != 500 {
		t.Fatalf("slowest = %+v", d.Slowest)
	}
	// Dur derived from the longest span.
	if d.Recent[0].Dur != 500 {
		t.Fatalf("derived Dur = %d, want 500", d.Recent[0].Dur)
	}
}

func TestSplitmix64Bijective(t *testing.T) {
	seen := make(map[uint64]bool, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		v := splitmix64(i)
		if seen[v] {
			t.Fatalf("splitmix64 collision at %d", i)
		}
		seen[v] = true
	}
}

func BenchmarkSamplerDisabled(b *testing.B) {
	s := NewSampler(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := s.Sample(); ok {
				b.Fatal("disabled sampler sampled")
			}
		}
	})
}

func BenchmarkSamplerRates(b *testing.B) {
	for _, rate := range []float64{0.01, 1} {
		b.Run(fmt.Sprintf("rate=%v", rate), func(b *testing.B) {
			s := NewSampler(rate)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s.Sample()
				}
			})
		})
	}
}

func BenchmarkRingPut(b *testing.B) {
	r := NewRing(256)
	tr := &Trace{ID: 1, Dur: 100, Spans: []Span{{Hop: "lb", Dur: 100}}}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Put(tr)
		}
	})
}

func BenchmarkRecorderRecord(b *testing.B) {
	r := NewRecorder(Config{RingSize: 256, TopK: 16})
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			r.Record(&Trace{ID: HexID(i), Spans: []Span{{Hop: "lb", Dur: i & 1023}}})
		}
	})
}
