// Package trace implements the cheap sampled request tracing that spans the
// four Janus tiers (gateway LB → request router → QoS server, with the
// database hop folded into the server's span).
//
// A trace is born at the edge (normally the gateway LB, or the router when a
// client talks to it directly): the Sampler either assigns the request a
// non-zero 64-bit trace ID or leaves it untraced. The ID travels
//
//   - over HTTP in the Header / SpanHeader headers (LB ↔ router), and
//   - over UDP as the optional trailing trace field of wire.Request /
//     wire.Response (router ↔ QoS server; see internal/wire).
//
// Each hop that owns part of the request's lifetime contributes one Span
// (hop name, note, start, duration) and reports it upstream in-band:
// the QoS server echoes its worker-side processing time in the response
// datagram, and the router returns its own span plus the server's in the
// SpanHeader HTTP response header. The tier that started the trace assembles
// the spans into a completed Trace and hands it to its Recorder, which keeps
// the most recent traces in a lock-free ring plus the slowest ones in a
// top-k capture; both are dumpable as JSON from the debugz endpoint.
//
// The design constraint throughout is that the *untraced* hot path stays
// hot: deciding "not sampled" costs one atomic load (Sampler.Sample), and a
// request whose trace ID is zero takes no tracing branches beyond that
// comparison. See BenchmarkRouterRoundTripSampling / BenchmarkDecideTraced.
package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// HTTP headers used to propagate traces between the HTTP tiers.
const (
	// Header carries the 64-bit trace ID, formatted by FormatID, on a
	// request travelling down the stack (client → LB → router).
	Header = "X-Janus-Trace"
	// SpanHeader carries the JSON-encoded spans collected downstream,
	// travelling up the stack on the HTTP response (router → LB → client).
	SpanHeader = "X-Janus-Spans"
)

// Span is one hop's share of a request's lifetime.
type Span struct {
	// Hop names the tier that produced the span: "lb", "router",
	// "qosserver".
	Hop string `json:"hop"`
	// Note carries hop-specific detail ("backend=127.0.0.1:7101 retries=0",
	// "status=ok").
	Note string `json:"note,omitempty"`
	// Start is the span's start in Unix nanoseconds, measured on the clock
	// of the daemon that *recorded* the span. Spans measured on a remote
	// peer (the QoS server's worker span as seen by the router) inherit the
	// local observation start; only Dur crossed the wire.
	Start int64 `json:"start_ns"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
}

// HexID is a 64-bit trace ID that renders as fixed-width hex in JSON, so
// IDs can be grepped across the /debug/traces dumps of different daemons.
type HexID uint64

// MarshalJSON implements json.Marshaler.
func (h HexID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + FormatID(uint64(h)) + `"`), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *HexID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	id, err := ParseID(s)
	if err != nil {
		return err
	}
	*h = HexID(id)
	return nil
}

// Trace is one completed request: the ID that correlated it across tiers
// and the spans every hop contributed.
type Trace struct {
	ID HexID `json:"id"`
	// Dur is the end-to-end duration as seen by the recording tier
	// (normally the root span's duration). Record fills it from the spans
	// when zero.
	Dur   int64  `json:"dur_ns"`
	Spans []Span `json:"spans"`
}

// rootDur returns the best available end-to-end duration: the longest span.
func (t *Trace) rootDur() int64 {
	var d int64
	for _, s := range t.Spans {
		if s.Dur > d {
			d = s.Dur
		}
	}
	return d
}

// FormatID renders a trace ID as 16 hex digits.
func FormatID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseID parses a FormatID-formatted trace ID. An empty string parses to
// zero (untraced) without error.
func ParseID(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return id, nil
}

// EncodeSpans renders spans as compact JSON for the SpanHeader header.
func EncodeSpans(spans []Span) string {
	b, err := json.Marshal(spans)
	if err != nil {
		return "" // unreachable: Span has no unmarshalable fields
	}
	return string(b)
}

// DecodeSpans parses a SpanHeader value. An empty value decodes to nil.
func DecodeSpans(s string) ([]Span, error) {
	if s == "" {
		return nil, nil
	}
	var spans []Span
	if err := json.Unmarshal([]byte(s), &spans); err != nil {
		return nil, fmt.Errorf("trace: bad span header: %w", err)
	}
	return spans, nil
}

// Sampler decides, per request, whether to start a trace. The decision is
// one atomic load when sampling is disabled (rate 0) — that is the
// steady-state production configuration, and the only cost tracing imposes
// on the untraced hot path.
type Sampler struct {
	// threshold is 0 when disabled; otherwise an ID mixed from the sequence
	// counter starts a trace when id <= threshold.
	threshold atomic.Uint64
	seq       atomic.Uint64
}

// NewSampler returns a sampler tracing the given fraction of requests
// (clamped to [0, 1]).
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	s.SetRate(rate)
	return s
}

// SetRate changes the sampling fraction at runtime (clamped to [0, 1]).
func (s *Sampler) SetRate(rate float64) {
	switch {
	case rate <= 0 || math.IsNaN(rate):
		s.threshold.Store(0)
	case rate >= 1:
		s.threshold.Store(math.MaxUint64)
	default:
		s.threshold.Store(uint64(rate * float64(math.MaxUint64)))
	}
}

// Rate reports the current sampling fraction.
func (s *Sampler) Rate() float64 {
	t := s.threshold.Load()
	switch t {
	case 0:
		return 0
	case math.MaxUint64:
		return 1
	default:
		return float64(t) / float64(math.MaxUint64)
	}
}

// Sample draws one sampling decision. It returns a non-zero trace ID when
// the request should be traced. With sampling disabled it costs exactly one
// atomic load.
//
//janus:hotpath
func (s *Sampler) Sample() (uint64, bool) {
	t := s.threshold.Load()
	if t == 0 {
		return 0, false
	}
	id := splitmix64(s.seq.Add(1))
	if t != math.MaxUint64 && id > t {
		return 0, false
	}
	if id == 0 {
		id = 1 // 0 means "untraced" everywhere
	}
	return id, true
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijection on
// uint64, so IDs drawn from the sequence counter never collide within one
// sampler.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ring is a lock-free ring buffer of completed traces: writers claim a slot
// with one atomic add and publish with one atomic pointer store, so trace
// completion never serializes request-handling goroutines.
type Ring struct {
	slots []atomic.Pointer[Trace]
	mask  uint64
	next  atomic.Uint64
}

// NewRing returns a ring holding the last n traces (n is rounded up to a
// power of two; minimum 16).
func NewRing(n int) *Ring {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Trace], size), mask: uint64(size - 1)}
}

// Put publishes a completed trace, evicting the oldest when full.
func (r *Ring) Put(t *Trace) {
	i := r.next.Add(1) - 1
	r.slots[i&r.mask].Store(t)
}

// Snapshot returns the buffered traces, newest first. Concurrent Puts may
// or may not be included.
func (r *Ring) Snapshot() []*Trace {
	end := r.next.Load()
	n := uint64(len(r.slots))
	if end < n {
		n = end
	}
	out := make([]*Trace, 0, n)
	for i := uint64(0); i < n; i++ {
		if t := r.slots[(end-1-i)&r.mask].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// topK keeps the k slowest traces seen. Offers below the current floor are
// rejected with one atomic load; only genuinely slow traces take the lock.
type topK struct {
	floor atomic.Int64 // smallest Dur retained once the capture is full
	mu    sync.Mutex
	k     int
	items []*Trace // min-heap by Dur
}

func newTopK(k int) *topK {
	if k <= 0 {
		k = 16
	}
	return &topK{k: k}
}

func (tk *topK) offer(t *Trace) {
	if t.Dur <= tk.floor.Load() {
		return
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if len(tk.items) < tk.k {
		tk.items = append(tk.items, t)
		tk.up(len(tk.items) - 1)
	} else {
		if t.Dur <= tk.items[0].Dur {
			return
		}
		tk.items[0] = t
		tk.down(0)
	}
	if len(tk.items) == tk.k {
		tk.floor.Store(tk.items[0].Dur)
	}
}

func (tk *topK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if tk.items[p].Dur <= tk.items[i].Dur {
			return
		}
		tk.items[p], tk.items[i] = tk.items[i], tk.items[p]
		i = p
	}
}

func (tk *topK) down(i int) {
	n := len(tk.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && tk.items[l].Dur < tk.items[min].Dur {
			min = l
		}
		if r < n && tk.items[r].Dur < tk.items[min].Dur {
			min = r
		}
		if min == i {
			return
		}
		tk.items[i], tk.items[min] = tk.items[min], tk.items[i]
		i = min
	}
}

// snapshot returns the retained traces, slowest first.
func (tk *topK) snapshot() []*Trace {
	tk.mu.Lock()
	out := make([]*Trace, len(tk.items))
	copy(out, tk.items)
	tk.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Dur > out[j].Dur })
	return out
}

// Config tunes a Recorder.
type Config struct {
	// Rate is the initial sampling fraction in [0, 1]; 0 disables sampling
	// (traces arriving from upstream are still recorded).
	Rate float64
	// RingSize is the recent-trace ring capacity (default 256).
	RingSize int
	// TopK is the slow-trace capture size (default 16).
	TopK int
}

// Recorder owns one daemon's tracing state: the sampling gate for traces it
// originates, the ring of recent completed traces, and the slow-trace
// capture.
type Recorder struct {
	sampler  *Sampler
	ring     *Ring
	slow     *topK
	recorded atomic.Int64
}

// NewRecorder builds a recorder from cfg.
func NewRecorder(cfg Config) *Recorder {
	size := cfg.RingSize
	if size <= 0 {
		size = 256
	}
	return &Recorder{
		sampler: NewSampler(cfg.Rate),
		ring:    NewRing(size),
		slow:    newTopK(cfg.TopK),
	}
}

// Sample draws a sampling decision from the recorder's sampler.
//
//janus:hotpath
func (r *Recorder) Sample() (uint64, bool) { return r.sampler.Sample() }

// SetRate changes the sampling fraction at runtime.
func (r *Recorder) SetRate(rate float64) { r.sampler.SetRate(rate) }

// Rate reports the sampling fraction.
func (r *Recorder) Rate() float64 { return r.sampler.Rate() }

// Record files a completed trace into the ring and the slow capture.
// Traces without spans are dropped; a zero Dur is derived from the spans.
func (r *Recorder) Record(t *Trace) {
	if t == nil || len(t.Spans) == 0 {
		return
	}
	if t.Dur == 0 {
		t.Dur = t.rootDur()
	}
	r.recorded.Add(1)
	r.ring.Put(t)
	r.slow.offer(t)
}

// Recorded reports how many traces have been recorded since startup.
func (r *Recorder) Recorded() int64 { return r.recorded.Load() }

// Recent returns the buffered traces, newest first.
func (r *Recorder) Recent() []*Trace { return r.ring.Snapshot() }

// Slowest returns the slow-trace capture, slowest first.
func (r *Recorder) Slowest() []*Trace { return r.slow.snapshot() }

// Dump is the JSON document served at /debug/traces.
type Dump struct {
	Service  string   `json:"service,omitempty"`
	Rate     float64  `json:"sampling_rate"`
	Recorded int64    `json:"recorded"`
	Recent   []*Trace `json:"recent"`
	Slowest  []*Trace `json:"slowest"`
}

// Dump captures the recorder state for JSON exposition.
func (r *Recorder) Dump(service string) Dump {
	return Dump{
		Service:  service,
		Rate:     r.Rate(),
		Recorded: r.Recorded(),
		Recent:   r.Recent(),
		Slowest:  r.Slowest(),
	}
}
