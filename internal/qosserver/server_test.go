package qosserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/minisql"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/transport"
	"repro/internal/wire"
)

func newDB(t *testing.T, rules ...bucket.Rule) *store.Store {
	t.Helper()
	s := store.New(minisql.NewEngine())
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	if err := s.PutAll(rules); err != nil {
		t.Fatal(err)
	}
	return s
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

var clientCfg = transport.Config{Timeout: 100 * time.Millisecond, Retries: 5}

func TestDecideKnownKey(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "alice", RefillRate: 0, Capacity: 3, Credit: 3})
	s := newServer(t, Config{Store: db})
	for i := 0; i < 3; i++ {
		resp := s.Decide(wire.Request{Key: "alice", Cost: 1})
		if !resp.Allow || resp.Status != wire.StatusOK {
			t.Fatalf("request %d: %+v", i, resp)
		}
	}
	resp := s.Decide(wire.Request{Key: "alice", Cost: 1})
	if resp.Allow {
		t.Fatalf("admitted beyond capacity: %+v", resp)
	}
	st := s.Stats()
	if st.Decisions != 4 || st.Allowed != 3 || st.Denied != 1 || st.DBQueries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDecideUnknownKeyDeniedByDefault(t *testing.T) {
	db := newDB(t)
	s := newServer(t, Config{Store: db})
	resp := s.Decide(wire.Request{Key: "stranger", Cost: 1})
	if resp.Allow || resp.Status != wire.StatusDefaultRule {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestDecideUnknownKeyGuestDefault(t *testing.T) {
	db := newDB(t)
	s := newServer(t, Config{Store: db, DefaultRule: bucket.Rule{RefillRate: 10, Capacity: 2, Credit: 2}})
	r1 := s.Decide(wire.Request{Key: "guest", Cost: 1})
	r2 := s.Decide(wire.Request{Key: "guest", Cost: 1})
	r3 := s.Decide(wire.Request{Key: "guest", Cost: 1})
	if !r1.Allow || !r2.Allow || r3.Allow {
		t.Fatalf("guest decisions = %v %v %v", r1.Allow, r2.Allow, r3.Allow)
	}
	if r1.Status != wire.StatusDefaultRule {
		t.Fatalf("status = %v", r1.Status)
	}
}

func TestDecideNoStoreUsesDefault(t *testing.T) {
	s := newServer(t, Config{DefaultRule: bucket.Rule{RefillRate: 1, Capacity: 1, Credit: 1}})
	if resp := s.Decide(wire.Request{Key: "x"}); !resp.Allow {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestDecideZeroCostTreatedAsOne(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 1, Credit: 1})
	s := newServer(t, Config{Store: db})
	if resp := s.Decide(wire.Request{Key: "k"}); !resp.Allow {
		t.Fatal("first request denied")
	}
	if resp := s.Decide(wire.Request{Key: "k"}); resp.Allow {
		t.Fatal("bucket not charged for zero-cost request")
	}
}

func TestDecideWeightedCost(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10})
	s := newServer(t, Config{Store: db})
	if resp := s.Decide(wire.Request{Key: "k", Cost: 7}); !resp.Allow {
		t.Fatal("batch denied")
	}
	if resp := s.Decide(wire.Request{Key: "k", Cost: 4}); resp.Allow {
		t.Fatal("over-budget batch admitted")
	}
	if resp := s.Decide(wire.Request{Key: "k", Cost: 3}); !resp.Allow {
		t.Fatal("exact remainder denied")
	}
}

func TestUDPEndToEnd(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "alice", RefillRate: 0, Capacity: 5, Credit: 5})
	s := newServer(t, Config{Store: db})
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	allowed := 0
	for i := 0; i < 8; i++ {
		resp, err := c.Do(wire.Request{Key: "alice", Cost: 1})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.Allow {
			allowed++
		}
	}
	if allowed != 5 {
		t.Fatalf("allowed = %d, want 5", allowed)
	}
}

func TestUDPConcurrentClients(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 1000, Credit: 1000})
	s := newServer(t, Config{Store: db, Workers: 4})
	var wg sync.WaitGroup
	var mu sync.Mutex
	totalAllowed := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := transport.Dial(s.Addr(), clientCfg)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer c.Close()
			local := 0
			for i := 0; i < 500; i++ {
				resp, err := c.Do(wire.Request{Key: "k", Cost: 1})
				if err == nil && resp.Allow {
					local++
				}
			}
			mu.Lock()
			totalAllowed += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	// Conservation: no more than capacity admitted (no refill). Retries
	// may re-send a request whose response was lost, so a small duplicate
	// charge is possible but the cap can never be exceeded.
	if totalAllowed > 1000 {
		t.Fatalf("allowed = %d > capacity 1000", totalAllowed)
	}
	if totalAllowed < 900 {
		t.Fatalf("allowed = %d, lost too many", totalAllowed)
	}
}

func TestRefillOverUDP(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1000, Capacity: 10, Credit: 0})
	s := newServer(t, Config{Store: db})
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First request installs the bucket (empty) and is denied.
	resp, err := c.Do(wire.Request{Key: "k", Cost: 10})
	if err != nil || resp.Allow {
		t.Fatalf("install request: resp=%+v err=%v", resp, err)
	}
	time.Sleep(20 * time.Millisecond) // accrue ~20 credits, clamp at 10
	resp, err = c.Do(wire.Request{Key: "k", Cost: 10})
	if err != nil || !resp.Allow {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}

func TestHousekeepingTickRefill(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1000, Capacity: 100, Credit: 100})
	s := newServer(t, Config{Store: db, RefillInterval: 5 * time.Millisecond})
	for i := 0; i < 100; i++ {
		if resp := s.Decide(wire.Request{Key: "k"}); !resp.Allow {
			t.Fatalf("drain %d denied", i)
		}
	}
	if resp := s.Decide(wire.Request{Key: "k"}); resp.Allow {
		t.Fatal("admitted with empty bucket before tick")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if resp := s.Decide(wire.Request{Key: "k"}); resp.Allow {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("housekeeping never refilled the bucket")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSyncPicksUpRuleUpdate(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 1, Credit: 1})
	s := newServer(t, Config{Store: db})
	s.Decide(wire.Request{Key: "k"}) // install
	// Rule is edited in the database.
	if err := db.Put(bucket.Rule{Key: "k", RefillRate: 0, Capacity: 100, Credit: 100}); err != nil {
		t.Fatal(err)
	}
	s.SyncOnce()
	b := s.Table().Get("k")
	if b == nil || b.Capacity() != 100 {
		t.Fatalf("bucket not updated: %v", b)
	}
}

func TestSyncEvictsDeletedRule(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1, Capacity: 1, Credit: 1})
	s := newServer(t, Config{Store: db})
	s.Decide(wire.Request{Key: "k"})
	if _, err := db.Delete("k"); err != nil {
		t.Fatal(err)
	}
	s.SyncOnce()
	if s.Table().Get("k") != nil {
		t.Fatal("deleted rule still resident")
	}
	// Next request applies the default (deny-all) rule.
	if resp := s.Decide(wire.Request{Key: "k"}); resp.Allow || resp.Status != wire.StatusDefaultRule {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestSyncUpgradesDefaultKeyToRealRule(t *testing.T) {
	db := newDB(t)
	s := newServer(t, Config{Store: db})
	s.Decide(wire.Request{Key: "new-user"}) // default (deny) installed
	// Rule appears in the database (new purchase).
	if err := db.Put(bucket.Rule{Key: "new-user", RefillRate: 10, Capacity: 10, Credit: 10}); err != nil {
		t.Fatal(err)
	}
	s.SyncOnce()
	resp := s.Decide(wire.Request{Key: "new-user"})
	if !resp.Allow || resp.Status != wire.StatusOK {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestCheckpointWritesCreditsBack(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10})
	s := newServer(t, Config{Store: db})
	for i := 0; i < 4; i++ {
		s.Decide(wire.Request{Key: "k"})
	}
	s.CheckpointOnce()
	r, found, err := db.Get("k")
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if r.Credit != 6 {
		t.Fatalf("checkpointed credit = %v, want 6", r.Credit)
	}
}

func TestReplacementServerResumesFromCheckpoint(t *testing.T) {
	// Paper §II-D: a replacement server uses the last check-pointed credit
	// as the initial credit value.
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10})
	s1 := newServer(t, Config{Store: db})
	for i := 0; i < 7; i++ {
		s1.Decide(wire.Request{Key: "k"})
	}
	s1.CheckpointOnce()
	s1.Close()
	s2 := newServer(t, Config{Store: db})
	allowed := 0
	for i := 0; i < 10; i++ {
		if s2.Decide(wire.Request{Key: "k"}).Allow {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("replacement admitted %d, want 3 (checkpointed credit)", allowed)
	}
}

func TestPreload(t *testing.T) {
	var rules []bucket.Rule
	for i := 0; i < 50; i++ {
		rules = append(rules, bucket.Rule{Key: fmt.Sprintf("k%d", i), RefillRate: 1, Capacity: 5, Credit: 5})
	}
	db := newDB(t, rules...)
	s := newServer(t, Config{Store: db})
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	if s.TableLen() != 50 {
		t.Fatalf("table len = %d", s.TableLen())
	}
	// Preloaded keys do not hit the database again.
	q0 := s.Stats().DBQueries
	s.Decide(wire.Request{Key: "k7"})
	if s.Stats().DBQueries != q0 {
		t.Fatal("preloaded key hit the database")
	}
}

func TestFailOpenAndFailClosed(t *testing.T) {
	// Use a store over a closed server so every query errors.
	engine := minisql.NewEngine()
	srv, err := minisql.NewServer(engine, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := minisql.NewPool(srv.Addr(), 1)
	db := store.New(pool)
	srv.Close()

	closed := newServer(t, Config{Store: db, FailOpen: false})
	if resp := closed.Decide(wire.Request{Key: "a"}); resp.Allow {
		t.Fatal("fail-closed server admitted during DB outage")
	}
	open := newServer(t, Config{Store: db, FailOpen: true})
	if resp := open.Decide(wire.Request{Key: "a"}); !resp.Allow {
		t.Fatal("fail-open server denied during DB outage")
	}
	if closed.Stats().DBErrors == 0 || open.Stats().DBErrors == 0 {
		t.Fatal("DB errors not counted")
	}
}

func TestMutexTableKind(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 1, Credit: 1})
	s := newServer(t, Config{Store: db, TableKind: table.KindMutex})
	if resp := s.Decide(wire.Request{Key: "k"}); !resp.Allow {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestStatsAndLatencyHistogram(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 100, Credit: 100})
	s := newServer(t, Config{Store: db})
	for i := 0; i < 10; i++ {
		s.Decide(wire.Request{Key: "k"})
	}
	if s.DecisionLatency().Count() != 0 {
		// Decide() called directly does not go through the worker path;
		// latency is recorded only by workers.
		t.Fatal("direct Decide recorded worker latency")
	}
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Do(wire.Request{Key: "k"}); err != nil {
			t.Fatal(err)
		}
	}
	if s.DecisionLatency().Count() == 0 {
		t.Fatal("no decision latency recorded via UDP path")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := newServer(t, Config{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMalformedDatagramCounted(t *testing.T) {
	s := newServer(t, Config{})
	c, err := transport.Dial(s.Addr(), transport.Config{Timeout: 5 * time.Millisecond, Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Valid traffic still works around garbage.
	conn := mustRawUDP(t, s.Addr())
	conn.Write([]byte("not a janus packet"))
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Malformed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("malformed datagram not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func mustRawUDP(t *testing.T, addr string) *connWrapper {
	t.Helper()
	c, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}
