package qosserver

// CoDel queue management for the intake FIFOs (DESIGN.md §14).
//
// The seed FIFO dropped datagrams only when it was FULL — the bufferbloat
// failure mode: under sustained overload a drop-when-full queue sits at its
// maximum length, so every admitted request pays worst-case queueing delay
// while throughput stays pinned at the service rate ("Managing Bufferbloat
// in Cloud Storage Systems", PAPERS.md). CoDel (RFC 8289) controls the
// queue by the one signal that actually matters — how long packets SIT in
// it — which PR 8 already measures as the queue-stage sojourn.
//
// The control law, verbatim from the RFC, adapted to Janus's degraded-mode
// answer:
//
//   - While the sojourn of dequeued packets stays below Target, the
//     controller is idle.
//   - When sojourn has remained at or above Target for a full Interval,
//     the controller enters the dropping state and degrades the packet at
//     hand: the worker answers it immediately with the default reply
//     (StatusDegraded) instead of running the admission decision. Janus
//     never silently discards a queued request — the paper's degraded-mode
//     contract is that the client always gets a fast answer it can act on.
//   - In the dropping state the next degrade is scheduled at
//     Interval/sqrt(count): each successive degrade tightens the cadence,
//     so the shed rate ramps until the queue drains back to Target.
//   - The first dequeue whose sojourn is below Target exits the dropping
//     state. A controller that re-enters soon after (within 16 Intervals)
//     resumes near its previous cadence instead of relearning it — the
//     RFC's hysteresis for on/off overload.
//
// The controller is a pure state machine over (sojournNs, nowNs) pairs: no
// clock reads, no allocation, no goroutines. Determinism is what the
// property tests in codel_test.go exploit — synthetic sojourn schedules
// replay byte-for-byte identically under the sim clock.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// CoDel defaults (RFC 8289 §4.4 scaled to a memory-speed decision service:
// a 1ms queue on a ~10µs service path is already two decades of slack).
const (
	// DefaultCodelTarget is the acceptable standing queue sojourn.
	DefaultCodelTarget = time.Millisecond
	// DefaultCodelInterval is the sliding window the sojourn must exceed
	// Target for before shedding starts; it should be on the order of a
	// worst-case client round trip.
	DefaultCodelInterval = 100 * time.Millisecond
)

// codel is one intake FIFO's CoDel controller. Every field except drops is
// guarded by mu; the lock is private to one intake, so with the default one
// worker per listener it is never contended.
type codel struct {
	targetNs   int64
	intervalNs int64

	drops atomic.Int64 // degraded entries, for the shared counter and /debug/qos

	mu sync.Mutex
	// firstAboveNs is the deadline by which a sojourn excursion above
	// Target becomes a standing queue (0 while sojourn is below Target).
	firstAboveNs int64
	// dropping is the RFC's dropping state.
	dropping bool
	// dropNextNs schedules the next degrade while dropping.
	dropNextNs int64
	// count is the degrades issued in the current dropping episode; the
	// control law cadence is Interval/sqrt(count).
	count int64
	// lastCount remembers count across episodes for the re-entry
	// hysteresis.
	lastCount int64
}

// newCodel builds a controller; target <= 0 or interval <= 0 panic (the
// Config layer resolves defaults and the disabled case before this).
func newCodel(target, interval time.Duration) *codel {
	if target <= 0 || interval <= 0 {
		panic("qosserver: codel target and interval must be positive")
	}
	return &codel{targetNs: int64(target), intervalNs: int64(interval)}
}

// onDequeue consumes one dequeued packet's queue sojourn and reports
// whether the worker must answer it degraded. It is the per-packet CoDel
// decision — one uncontended lock, integer compares, and at most one
// square root; allocation-free (pinned as codel_decide in
// BENCH_allocs.json).
//
//janus:hotpath
func (c *codel) onDequeue(sojournNs, nowNs int64) bool {
	c.mu.Lock()
	degrade := c.step(sojournNs, nowNs)
	c.mu.Unlock()
	return degrade
}

// step is the control law proper; callers hold mu. Split from onDequeue so
// the property tests can drive the naked state machine.
func (c *codel) step(sojournNs, nowNs int64) bool {
	if sojournNs < c.targetNs {
		// Queue is healthy: leave the dropping state (if any) and forget
		// the excursion clock.
		c.firstAboveNs = 0
		c.dropping = false
		return false
	}
	if c.firstAboveNs == 0 {
		// First dequeue at or above Target: arm the excursion deadline.
		// Excursions shorter than one Interval are bursts, not standing
		// queues — they pass untouched.
		c.firstAboveNs = nowNs + c.intervalNs
		return false
	}
	if c.dropping {
		if nowNs < c.dropNextNs {
			return false
		}
		// Cadence due: degrade and tighten per the inverse-sqrt law.
		c.count++
		c.dropNextNs += controlLaw(c.intervalNs, c.count)
		return true
	}
	if nowNs < c.firstAboveNs {
		return false
	}
	// Sojourn has been at or above Target for a full Interval: enter the
	// dropping state and degrade the packet at hand. If the controller was
	// dropping recently, resume from the cadence it had reached (the RFC's
	// delta hysteresis) rather than relearning from count = 1.
	c.dropping = true
	delta := c.count - c.lastCount
	c.count = 1
	if delta > 1 && nowNs-c.dropNextNs < 16*c.intervalNs {
		c.count = delta
	}
	c.lastCount = c.count
	c.dropNextNs = nowNs + controlLaw(c.intervalNs, c.count)
	return true
}

// controlLaw is the RFC 8289 drop cadence: Interval/sqrt(count).
//
//janus:hotpath
func controlLaw(intervalNs, count int64) int64 {
	return int64(float64(intervalNs) / math.Sqrt(float64(count)))
}

// snapshot reports the controller's observable state for /debug/qos and
// the state gauge.
func (c *codel) snapshot() (dropping bool, count int64) {
	c.mu.Lock()
	dropping, count = c.dropping, c.count
	c.mu.Unlock()
	return dropping, count
}
