package qosserver

// Table-driven failover recovery: whatever state a successor inherits — a
// replication snapshot frozen mid-window, a checkpoint that is stale,
// partial, absent, or outright corrupt — the admissions it grants are
// exactly the inherited credit, clamped to capacity. Forgetting
// consumption inside the lost window is the accepted regression (paper
// §II-D, §III-C); minting credit beyond capacity never is.

import (
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/failpoint"
	"repro/internal/store"
	"repro/internal/wire"
)

func TestFailoverRecovery(t *testing.T) {
	consume := func(s *Server, key string, n int) {
		for i := 0; i < n; i++ {
			s.Decide(wire.Request{Key: key})
		}
	}
	cases := []struct {
		name  string
		rules []bucket.Rule
		// prepare replays the pre-failover history against db and returns
		// the successor that survives it.
		prepare func(t *testing.T, db *store.Store) *Server
		// want maps key → admissions expected from the successor when
		// driven well past capacity.
		want map[string]int
	}{
		{
			// The slave's last applied snapshot predates the master's final
			// consumptions: the promoted node serves snapshot credit — the
			// window's 2 consumptions are forgotten, nothing more.
			name:  "promotion/stale-snapshot",
			rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
			prepare: func(t *testing.T, db *store.Store) *Server {
				master := newServer(t, Config{Store: db, ReplicationAddr: "127.0.0.1:0"})
				consume(master, "k", 4)
				slave := newServer(t, Config{Store: db})
				rep := NewReplicator(slave, master.ReplicationAddr(), time.Hour)
				if err := rep.Start(); err != nil { // first pull is synchronous: slave at 6
					t.Fatal(err)
				}
				t.Cleanup(failpoint.DisarmAll)
				if err := failpoint.Arm("qosserver/ha/apply-snapshot", failpoint.Action{Kind: failpoint.Drop}); err != nil {
					t.Fatal(err)
				}
				consume(master, "k", 2) // inside the now-lost replication window
				master.Close()
				rep.Stop()
				return slave
			},
			want: map[string]int{"k": 6},
		},
		{
			// A checkpoint taken mid-history: the replacement resumes the
			// checkpointed credit, not the master's final credit.
			name:  "replacement/stale-checkpoint",
			rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
			prepare: func(t *testing.T, db *store.Store) *Server {
				s1 := newServer(t, Config{Store: db})
				consume(s1, "k", 4)
				s1.CheckpointOnce()
				consume(s1, "k", 3) // never checkpointed
				s1.Close()
				return newServer(t, Config{Store: db})
			},
			want: map[string]int{"k": 6},
		},
		{
			// Checkpointing only writes back materialized buckets: a key
			// first served after the checkpoint resumes from its full
			// database credit.
			name: "replacement/partial-checkpoint",
			rules: []bucket.Rule{
				{Key: "k1", RefillRate: 0, Capacity: 10, Credit: 10},
				{Key: "k2", RefillRate: 0, Capacity: 10, Credit: 10},
			},
			prepare: func(t *testing.T, db *store.Store) *Server {
				s1 := newServer(t, Config{Store: db})
				consume(s1, "k1", 4)
				s1.CheckpointOnce() // k2 has no bucket yet: its row is untouched
				consume(s1, "k2", 2)
				s1.Close()
				return newServer(t, Config{Store: db})
			},
			want: map[string]int{"k1": 6, "k2": 10},
		},
		{
			// No checkpoint ever ran: the replacement falls back to the
			// database's initial credit — forgotten consumption bounded by
			// one capacity.
			name:  "replacement/empty-checkpoint",
			rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
			prepare: func(t *testing.T, db *store.Store) *Server {
				s1 := newServer(t, Config{Store: db})
				consume(s1, "k", 5)
				s1.Close()
				return newServer(t, Config{Store: db})
			},
			want: map[string]int{"k": 10},
		},
		{
			// A corrupt checkpoint row with credit above capacity (the
			// UPDATE path does not validate) must be clamped on load: the
			// replacement admits exactly capacity, never the minted 25.
			name:  "replacement/corrupt-checkpoint-clamped",
			rules: []bucket.Rule{{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}},
			prepare: func(t *testing.T, db *store.Store) *Server {
				if err := db.Checkpoint("k", 25); err != nil {
					t.Fatal(err)
				}
				return newServer(t, Config{Store: db})
			},
			want: map[string]int{"k": 10},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := newDB(t, tc.rules...)
			successor := tc.prepare(t, db)
			for key, want := range tc.want {
				allowed := 0
				for i := 0; i < 20; i++ {
					if successor.Decide(wire.Request{Key: key}).Allow {
						allowed++
					}
				}
				if allowed != want {
					t.Errorf("%s: successor admitted %d of 20, want %d", key, allowed, want)
				}
			}
		})
	}
}
