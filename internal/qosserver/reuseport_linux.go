//go:build linux

package qosserver

import "syscall"

// soReuseport is SO_REUSEPORT on Linux. The stdlib syscall package does not
// export the constant (it lives in golang.org/x/sys/unix, which this repo
// deliberately does not import), but the value has been 15 on every Linux
// architecture Go supports since the option appeared in kernel 3.9.
const soReuseport = 0xf

// reuseportAvailable reports that this platform can share one UDP port
// across independently-owned sockets.
const reuseportAvailable = true

// setReuseport is the net.ListenConfig.Control hook that marks the socket
// SO_REUSEPORT before bind, so N intake sockets can own the same address
// and the kernel spreads inbound datagrams across them by flow hash —
// share-nothing intake without a user-space demultiplexer.
func setReuseport(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReuseport, 1)
	}); err != nil {
		return err
	}
	return serr
}
