package qosserver

import (
	"net"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestFIFOOverflowDropsAndRetriesRecover floods a server configured with a
// tiny FIFO and a single slow-ish worker path: some datagrams must be
// dropped at the queue (counted, not fatal), and a client using the paper's
// retry discipline still completes its requests.
func TestFIFOOverflowDropsAndRetriesRecover(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1e9, Capacity: 1e9, Credit: 1e9})
	s := newServer(t, Config{Store: db, Workers: 1, QueueSize: 1})

	// Blast raw datagrams to overwhelm the 1-deep FIFO.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt, _ := wire.EncodeRequest(wire.Request{ID: 1, Key: "k", Cost: 1})
	for i := 0; i < 5000; i++ {
		conn.Write(pkt)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no drops under flood: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// A retrying client still gets every answer.
	c, err := transport.Dial(s.Addr(), transport.Config{Timeout: 50 * time.Millisecond, Retries: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		resp, err := c.Do(wire.Request{Key: "k", Cost: 1})
		if err != nil || !resp.Allow {
			t.Fatalf("request %d after flood: %+v %v", i, resp, err)
		}
	}
}

// TestWorkerCountHonoured verifies the configured worker pool drains the
// FIFO concurrently (throughput sanity with many workers vs one).
func TestWorkerCountHonoured(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1e9, Capacity: 1e9, Credit: 1e9})
	s := newServer(t, Config{Store: db, Workers: 8})
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.Do(wire.Request{Key: "k", Cost: 1})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool wedged")
	}
	if s.Stats().Decisions < 450 {
		t.Fatalf("decisions = %d", s.Stats().Decisions)
	}
}

// TestIdenticalRetriesDoubleCharge documents the at-most-N-times semantics
// the paper accepts: a retransmitted request whose first response was lost
// consumes a second credit. The invariant that matters is that admissions
// never exceed capacity.
func TestIdenticalRetriesDoubleCharge(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 100, Credit: 100})
	s := newServer(t, Config{Store: db})
	// Duplicate every datagram manually: same ID sent twice.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 80; i++ {
		pkt, _ := wire.EncodeRequest(wire.Request{ID: uint64(i), Key: "k", Cost: 1})
		conn.Write(pkt)
		conn.Write(pkt) // retransmission
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Decisions < 160 {
		if time.Now().After(deadline) {
			t.Fatalf("decisions = %d", s.Stats().Decisions)
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.Allowed > 100 {
		t.Fatalf("allowed %d exceeds capacity 100", st.Allowed)
	}
	if st.Allowed != 100 || st.Denied != 60 {
		t.Fatalf("allowed/denied = %d/%d, want 100/60 (each duplicate charged)", st.Allowed, st.Denied)
	}
}
