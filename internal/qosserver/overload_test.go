package qosserver

import (
	"net"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/failpoint"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestFIFOOverflowDropsAndRetriesRecover floods a server configured with a
// tiny FIFO and a single slow-ish worker path: some datagrams must be
// dropped at the queue (counted, not fatal), and a client using the paper's
// retry discipline still completes its requests.
func TestFIFOOverflowDropsAndRetriesRecover(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1e9, Capacity: 1e9, Credit: 1e9})
	s := newServer(t, Config{Store: db, Workers: 1, QueueSize: 1})

	// Blast raw datagrams to overwhelm the 1-deep FIFO.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	pkt, _ := wire.EncodeRequest(wire.Request{ID: 1, Key: "k", Cost: 1})
	for i := 0; i < 5000; i++ {
		conn.Write(pkt)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no drops under flood: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// A retrying client still gets every answer.
	c, err := transport.Dial(s.Addr(), transport.Config{Timeout: 50 * time.Millisecond, Retries: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		resp, err := c.Do(wire.Request{Key: "k", Cost: 1})
		if err != nil || !resp.Allow {
			t.Fatalf("request %d after flood: %+v %v", i, resp, err)
		}
	}
}

// TestWorkerCountHonoured verifies the configured worker pool drains the
// FIFO concurrently (throughput sanity with many workers vs one).
func TestWorkerCountHonoured(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1e9, Capacity: 1e9, Credit: 1e9})
	s := newServer(t, Config{Store: db, Workers: 8})
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.Do(wire.Request{Key: "k", Cost: 1})
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool wedged")
	}
	if s.Stats().Decisions < 450 {
		t.Fatalf("decisions = %d", s.Stats().Decisions)
	}
}

// TestIdenticalRetriesDoubleCharge documents the at-most-N-times semantics
// the paper accepts: a retransmitted request whose first response was lost
// consumes a second credit. The invariant that matters is that admissions
// never exceed capacity.
func TestIdenticalRetriesDoubleCharge(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 100, Credit: 100})
	s := newServer(t, Config{Store: db})
	// Duplicate every datagram manually: same ID sent twice.
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 80; i++ {
		pkt, _ := wire.EncodeRequest(wire.Request{ID: uint64(i), Key: "k", Cost: 1})
		conn.Write(pkt)
		conn.Write(pkt) // retransmission
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Decisions < 160 {
		if time.Now().After(deadline) {
			t.Fatalf("decisions = %d", s.Stats().Decisions)
		}
		time.Sleep(time.Millisecond)
	}
	st := s.Stats()
	if st.Allowed > 100 {
		t.Fatalf("allowed %d exceeds capacity 100", st.Allowed)
	}
	if st.Allowed != 100 || st.Denied != 60 {
		t.Fatalf("allowed/denied = %d/%d, want 100/60 (each duplicate charged)", st.Allowed, st.Denied)
	}
}

// ---------------------------------------------------------------------------
// Overload scenario suite (ISSUE 9, DESIGN.md §14).
//
// Each scenario drives a real server over real UDP with the service rate
// pinned by the qosserver/worker/decide failpoint: a Delay action stalls
// every full decision path by a known amount, so "capacity" is exact and
// overload factors (2x, 10x) are real multipliers rather than guesses about
// how fast the host happens to be. The CoDel degraded path deliberately
// bypasses the failpoint — shedding must be cheaper than serving for the
// controller to have any leverage, in the tests exactly as in production.
//
// The suite pins the three CoDel promises:
//   - overload is answered, not dropped: Stats.Degraded rises, clients see
//     StatusDegraded replies, and Stats.Dropped (FIFO-full loss) stays 0 —
//     with sojourn-target shedding the FIFO never comes close to full;
//   - the standing queue is bounded: steady-state p99 queue sojourn stays
//     within 2x the configured Target instead of growing with the backlog;
//   - degraded replies never mint credit: admission stays within the
//     C + r*t conservation budget, checked by the audit ledger oracle.

// respTally counts response statuses read off a raw client socket.
type respTally struct {
	ok, defaultRule, degraded, other atomic.Int64
}

func (tl *respTally) total() int64 {
	return tl.ok.Load() + tl.defaultRule.Load() + tl.degraded.Load() + tl.other.Load()
}

// startTally drains conn on a goroutine, tallying every response entry by
// status, until the socket is closed.
func startTally(conn net.Conn) *respTally {
	tl := &respTally{}
	go func() {
		buf := make([]byte, wire.MaxDatagram)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				return
			}
			br, err := wire.DecodeBatchResponse(buf[:n])
			if err != nil {
				continue
			}
			for _, r := range br.Entries {
				switch r.Status {
				case wire.StatusOK:
					tl.ok.Add(1)
				case wire.StatusDefaultRule:
					tl.defaultRule.Add(1)
				case wire.StatusDegraded:
					tl.degraded.Add(1)
				default:
					tl.other.Add(1)
				}
			}
		}
	}()
	return tl
}

// pace sends requests for key at roughly rate/sec for duration d (bursts on
// a 10ms tick), returning the number sent. Deliberately NO catch-up after a
// scheduler stall: replaying missed ticks as one large burst manufactures a
// transient standing queue the scenario didn't mean to offer, which both
// trips CoDel in "healthy load" phases and poisons sojourn tails. Sleep
// overshoot can therefore only lower the achieved rate — scenarios that need
// a real multiplier must either pick nominal rates comfortably above the
// threshold or check the returned count.
func pace(tb testing.TB, conn net.Conn, key string, rate int, d time.Duration) int {
	tb.Helper()
	const tick = 10 * time.Millisecond
	burst := rate / 100
	if burst < 1 {
		burst = 1
	}
	sent := 0
	var id uint64
	for deadline := time.Now().Add(d); time.Now().Before(deadline); {
		for i := 0; i < burst; i++ {
			id++
			pkt, err := wire.EncodeRequest(wire.Request{ID: id, Key: key, Cost: 1})
			if err != nil {
				tb.Fatal(err)
			}
			if _, err := conn.Write(pkt); err != nil {
				tb.Fatal(err)
			}
			sent++
		}
		time.Sleep(tick)
	}
	return sent
}

// governService pins the full decision path to cost d per datagram and
// registers cleanup.
func governService(t *testing.T, d time.Duration) {
	t.Helper()
	if err := failpoint.Arm(fpWorkerDecide.Name(), failpoint.Action{Kind: failpoint.Delay, Delay: d}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = failpoint.Disarm(fpWorkerDecide.Name()) })
}

// waitIntakeIdle polls until every intake FIFO is empty.
func waitIntakeIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		depth := 0
		for _, row := range s.SnapshotIntake() {
			depth += row.FIFODepth
		}
		if depth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("intake FIFOs never drained: %+v", s.SnapshotIntake())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// codelRecovered reports whether no intake is in the dropping state.
func codelRecovered(s *Server) bool {
	for _, row := range s.SnapshotIntake() {
		if row.CodelState == "dropping" {
			return false
		}
	}
	return true
}

// measureCapacity measures the governed full-path capacity in frames/sec by
// serial ping-pong on its own socket: each probe waits for its reply, so the
// figure includes every real per-frame cost — syscalls, decode, the governed
// delay with its scheduler overshoot, race-detector instrumentation — rather
// than assuming the failpoint's nominal delay. Serial probing keeps the queue
// depth at ≤ 1, so calibration itself never trips the controller. Scenarios
// that assert a bound tied to an overload *multiplier* must offer a multiple
// of this figure, not of the nominal capacity.
func measureCapacity(t *testing.T, addr string) int {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, wire.MaxDatagram)
	const probes = 50
	rtts := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		pkt, err := wire.EncodeRequest(wire.Request{ID: uint64(i + 1), Key: "capacity-probe", Cost: 1})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(buf); err != nil {
			t.Fatalf("capacity probe %d: %v", i, err)
		}
		rtts = append(rtts, time.Since(start))
	}
	// The median per-probe RTT, not probes/total: a single scheduler stall
	// landing on one probe would otherwise halve the measured capacity and
	// turn the scenario's "2x" into less than 1x of the true figure.
	sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
	capacity := int(time.Second / rtts[probes/2])
	if capacity < 100 {
		t.Fatalf("measured capacity %d frames/s is too low to drive an overload scenario", capacity)
	}
	return capacity
}

// TestOverloadSustained2x holds the server at ~2x its governed capacity and
// checks the three CoDel promises under sustained overload. The sojourn
// bound is asserted over the steady-state window (the histogram is reset
// after a convergence phase): CoDel's guarantee is about the controlled
// standing queue, not the transient while the control law ramps up.
func TestOverloadSustained2x(t *testing.T) {
	// Target is sized well above both the governed per-frame cost (so the
	// controlled standing queue is many frames deep and quantization noise
	// vanishes) and this runner's scheduler-stall scale (tens of ms): the
	// assertion below is about the bound CoDel holds, and the slack has to
	// absorb what the box does to *any* latency measurement, controller or
	// not.
	const (
		target   = 100 * time.Millisecond
		interval = 10 * time.Millisecond
		svc      = time.Millisecond
	)
	db := newDB(t, bucket.Rule{Key: "tenant", RefillRate: 100, Capacity: 200, Credit: 200})
	s := newServer(t, Config{
		Store: db, Workers: 1, Listeners: 1, QueueSize: 8192,
		CodelTarget: target, CodelInterval: interval, Audit: true,
	})
	governService(t, svc)
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tl := startTally(conn)
	start := time.Now()

	// The timing half of the scenario (offered rate and the sojourn tail)
	// shares one CPU with the server under test, so a scheduler stall in the
	// wrong 10ms can miscalibrate capacity, under-deliver the offered load,
	// or park a 100ms-plus spike in a 9-sample p99 tail — none of which says
	// anything about the controller. Those two checks get up to three
	// attempts, each a full converge→reset→measure cycle; a controller that
	// actually fails the bound (the seed's drop-when-full queue is seconds
	// deep at 2x) fails every attempt deterministically. The correctness
	// invariants below the loop — nothing lost, nothing minted, ledger ok —
	// are asserted unconditionally over ALL attempts.
	//
	// Per attempt, "2x" must mean 2x: the nominal svc delay is only a lower
	// bound on the real per-frame cost (sleep overshoot, race
	// instrumentation), so a fixed offered rate would silently turn this
	// into a 4-6x scenario on slow builds, and the sojourn bound —
	// calibrated to a *controlled* 2x standing queue — would stop
	// describing the test being run.
	//
	// Under race instrumentation the stalls are larger and p99-tail
	// pollution is routine, so the instrumented run gets an extra Target of
	// jitter room; the 2x-Target contract itself is pinned uninstrumented.
	bound := 2 * target
	if raceEnabled {
		bound = 3 * target
	}
	timingOK := false
	for attempt := 1; attempt <= 3 && !timingOK; attempt++ {
		capacity := measureCapacity(t, s.Addr())
		rate := 2 * capacity
		pace(t, conn, "tenant", rate, time.Second) // converge
		s.sojournQueue.Reset()
		degradedBefore := s.Stats().Degraded
		sent := pace(t, conn, "tenant", rate, 1500*time.Millisecond) // measure
		waitIntakeIdle(t, s)

		// At a converged 2x, roughly half of everything offered in the
		// 1.5s measure phase is shed; capacity/2 is a ~4x-margin floor.
		degrades := s.Stats().Degraded - degradedBefore
		p99 := s.sojournQueue.Quantile(0.99)
		timingOK = degrades >= int64(capacity/2) && p99 <= int64(bound)
		if !timingOK {
			t.Logf("attempt %d: capacity=%d/s sent=%d degrades=%d (floor %d) sojourn p99=%v (bound %v)",
				attempt, capacity, sent, degrades, capacity/2, time.Duration(p99), bound)
		}
	}
	if !timingOK {
		t.Error("no attempt held the steady-state CoDel bound: degrades >= capacity/2 and queue sojourn p99 <= bound (see attempt logs)")
	}
	elapsed := time.Since(start).Seconds()

	st := s.Stats()
	if tl.degraded.Load() == 0 {
		t.Error("client never received a StatusDegraded reply")
	}
	if st.Dropped != 0 {
		t.Errorf("FIFO-full drops = %d under CoDel, want 0", st.Dropped)
	}
	if rep := s.AuditReport(); rep.Verdict != "ok" {
		t.Errorf("audit verdict %q: %+v", rep.Verdict, rep.Overspent)
	}
	// Direct C + r*t check on top of the ledger: degraded replies must not
	// have minted credit (generous pacing margin, admission-side only).
	if budget := int64(200 + 100*(elapsed+1)); st.Allowed > budget {
		t.Errorf("allowed %d > C + r*t = %d over %.2fs", st.Allowed, budget, elapsed)
	}
	if tl.total() == 0 {
		t.Fatal("client read no responses at all")
	}
}

// TestOverloadFlashCrowd steps offered load to ~10x capacity and back,
// checking the controller sheds during the spike, loses nothing, and exits
// the dropping state once load returns to baseline.
func TestOverloadFlashCrowd(t *testing.T) {
	const (
		target   = 20 * time.Millisecond
		interval = 10 * time.Millisecond
		svc      = time.Millisecond // capacity ~1000/s
	)
	db := newDB(t, bucket.Rule{Key: "flash", RefillRate: 1e6, Capacity: 1e6, Credit: 1e6})
	s := newServer(t, Config{
		Store: db, Workers: 1, Listeners: 1, QueueSize: 8192,
		CodelTarget: target, CodelInterval: interval, Audit: true,
	})
	governService(t, svc)
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tl := startTally(conn)

	// Healthy baseline well under capacity even on an instrumented build,
	// where the governed 1ms frame really costs ~3ms: the claim is "light
	// load is untouched", not "a rho≈1 load is untouched".
	pace(t, conn, "flash", 150, 300*time.Millisecond)
	baseline := s.Stats().Degraded
	pace(t, conn, "flash", 10_000, 300*time.Millisecond) // 10x step
	// Back to baseline: keep a trickle flowing so the controller sees
	// recovered sojourns (CoDel state only advances on dequeue).
	deadline := time.Now().Add(15 * time.Second)
	for !codelRecovered(s) {
		if time.Now().After(deadline) {
			t.Fatalf("CoDel never exited dropping after flash crowd: %+v", s.SnapshotIntake())
		}
		pace(t, conn, "flash", 200, 50*time.Millisecond)
	}
	waitIntakeIdle(t, s)

	st := s.Stats()
	if d := st.Degraded - baseline; d == 0 {
		t.Error("flash crowd produced no degraded replies")
	}
	if baseline != 0 {
		t.Errorf("baseline load already degraded %d replies", baseline)
	}
	if st.Dropped != 0 {
		t.Errorf("FIFO-full drops = %d, want 0 (flash crowd must be answered, not lost)", st.Dropped)
	}
	if rep := s.AuditReport(); rep.Verdict != "ok" {
		t.Errorf("audit verdict %q: %+v", rep.Verdict, rep.Overspent)
	}
	if tl.degraded.Load() == 0 {
		t.Error("client never received a StatusDegraded reply during the spike")
	}
	// After recovery a retrying client is served normally again.
	c, err := transport.Dial(s.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Do(wire.Request{Key: "flash", Cost: 1})
	if err != nil || resp.Status == wire.StatusDegraded {
		t.Fatalf("post-recovery request: %+v %v", resp, err)
	}
}

// TestOverloadSlowDrain keeps offered load constant and slows the service
// path instead — capacity loss, not a load spike. The controller must shed
// while drain is slow and recover when service speed returns.
func TestOverloadSlowDrain(t *testing.T) {
	const (
		target   = 25 * time.Millisecond
		interval = 10 * time.Millisecond
		rate     = 600 // offered, constant throughout
	)
	db := newDB(t, bucket.Rule{Key: "drain", RefillRate: 1e6, Capacity: 1e6, Credit: 1e6})
	s := newServer(t, Config{
		Store: db, Workers: 1, Listeners: 1, QueueSize: 4096,
		CodelTarget: target, CodelInterval: interval, Audit: true,
	})
	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	tl := startTally(conn)

	// Healthy: 600/s offered against ~2000/s capacity.
	governService(t, 500*time.Microsecond)
	pace(t, conn, "drain", rate, 500*time.Millisecond)
	healthy := s.Stats().Degraded
	if healthy > 5 {
		t.Errorf("healthy phase degraded %d replies, want ~0", healthy)
	}

	// Drain slows: same offered load, capacity drops to ~200/s (3x over).
	governService(t, 5*time.Millisecond)
	pace(t, conn, "drain", rate, 1500*time.Millisecond)
	slow := s.Stats().Degraded
	if slow-healthy < 50 {
		t.Errorf("slow-drain phase degraded %d replies, want >= 50", slow-healthy)
	}

	// Service recovers; trickle until the controller exits dropping.
	governService(t, 100*time.Microsecond)
	deadline := time.Now().Add(15 * time.Second)
	for !codelRecovered(s) {
		if time.Now().After(deadline) {
			t.Fatalf("CoDel never exited dropping after drain recovered: %+v", s.SnapshotIntake())
		}
		pace(t, conn, "drain", 200, 50*time.Millisecond)
	}
	waitIntakeIdle(t, s)

	st := s.Stats()
	if st.Dropped != 0 {
		t.Errorf("FIFO-full drops = %d, want 0", st.Dropped)
	}
	if rep := s.AuditReport(); rep.Verdict != "ok" {
		t.Errorf("audit verdict %q: %+v", rep.Verdict, rep.Overspent)
	}
	if tl.degraded.Load() == 0 {
		t.Error("client never received a StatusDegraded reply while drain was slow")
	}
}
