package qosserver

import (
	"testing"

	"repro/internal/bucket"
	"repro/internal/table"
)

// BenchmarkObservabilitySojournObserve isolates the per-request cost of the
// sojourn decomposition itself — four histogram records plus the current-
// sojourn gauge store, the price every decided packet pays (DESIGN.md §13).
// Run by `make bench-observability` and recorded in BENCH_observability.json.
func BenchmarkObservabilitySojournObserve(b *testing.B) {
	s, err := New(Config{
		Addr:        "127.0.0.1:0",
		TableKind:   table.KindSharded,
		DefaultRule: bucket.Rule{RefillRate: 1e12, Capacity: 1e12, Credit: 1e12},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recv := int64(i) * 4000
		s.observeSojourn(recv, recv+1000, recv+2500, recv+4000)
	}
}
