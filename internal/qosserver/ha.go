package qosserver

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/failpoint"
)

// Failpoints on the replication seams. Pull sits on the slave's dial to the
// master (peer = master address), so a partition action severs replication
// without touching the UDP data path; apply-snapshot sits between a decoded
// snapshot and the table, so a drop action freezes the slave at stale state
// while pulls keep "succeeding" — the stale-checkpoint failover scenario.
var (
	fpHAPull          = failpoint.New("qosserver/ha/pull")
	fpHAApplySnapshot = failpoint.New("qosserver/ha/apply-snapshot")
)

// High availability (paper §III-C): "When high-availability is desired, an
// optional slave node can be configured for each QoS server. The slave node
// continuously replicates the local QoS rule table from the master node at
// a configurable interval." On master failure the DNS failover flips the
// server's name to the slave (internal/dns.SetFailover); the slave already
// holds an up-to-date table, so service continues with minimum
// interruption.
//
// Replication is pull-based over TCP: the slave sends a pull frame, the
// master answers with a snapshot of every (rule, credit, default-flag)
// entry in the local table.

// The same wire format carries the membership-handoff protocol: when a
// cluster epoch advances and keys change owner, the old owner pushes the
// affected entries to the new owner as a handoff frame (Server.Rebalance)
// and deletes them locally once the ack arrives, so leaky-bucket credits
// survive rebalancing.

type haFrame struct {
	Type    byte // 0 pull, 1 snapshot, 2 handoff push, 3 handoff ack
	Entries []haEntry
}

type haEntry struct {
	Rule    bucket.Rule
	Default bool
}

const (
	haPull     = 0
	haSnapshot = 1
	haHandoff  = 2
	haAck      = 3
)

// haListener is the master side: it waits for incoming connections from
// slave nodes and serves table snapshots on request.
type haListener struct {
	s  *Server
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

func newHAListener(s *Server, addr string) (*haListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("qosserver: ha listen %s: %w", addr, err)
	}
	h := &haListener{s: s, ln: ln, conns: make(map[net.Conn]struct{})}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

func (h *haListener) Addr() string { return h.ln.Addr().String() }

func (h *haListener) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.ln.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			_ = conn.Close()
			return
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()
		h.wg.Add(1)
		go h.serve(conn)
	}
}

func (h *haListener) serve(conn net.Conn) {
	defer h.wg.Done()
	defer func() {
		h.mu.Lock()
		delete(h.conns, conn)
		h.mu.Unlock()
		_ = conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var f haFrame
		if err := dec.Decode(&f); err != nil {
			return
		}
		switch f.Type {
		case haPull:
			if err := enc.Encode(&haFrame{Type: haSnapshot, Entries: h.s.snapshotTable()}); err != nil {
				return
			}
		case haHandoff:
			h.s.applyHandoff(f.Entries)
			if err := enc.Encode(&haFrame{Type: haAck}); err != nil {
				return
			}
		default:
			return
		}
	}
}

func (h *haListener) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	for c := range h.conns {
		_ = c.Close()
	}
	h.mu.Unlock()
	_ = h.ln.Close()
	h.wg.Wait()
}

// snapshotTable captures every entry of the local table with its current
// credit (brought current to now) and default flag.
func (s *Server) snapshotTable() []haEntry {
	now := s.clock()
	var out []haEntry
	s.table.Range(func(key string, b *bucket.Bucket) bool {
		_, isDefault := s.defaults.Load(key)
		out = append(out, haEntry{Rule: b.Rule(key, now), Default: isDefault})
		return true
	})
	return out
}

// applySnapshot installs a replicated table into this (slave) server.
func (s *Server) applySnapshot(entries []haEntry) {
	if fpHAApplySnapshot.Armed() {
		switch o := fpHAApplySnapshot.Eval(); o.Kind {
		case failpoint.Drop, failpoint.Error, failpoint.Partition:
			return // snapshot decoded but never installed: the slave goes stale
		case failpoint.Delay:
			o.Sleep()
		}
	}
	now := s.clock()
	for _, e := range entries {
		// Same defensive check as applyHandoff: snapshots cross the network
		// too, and an unusable rule must not reach the table.
		if e.Rule.Validate() != nil {
			continue
		}
		s.table.Put(e.Rule.Key, s.newBucket(e.Rule, now))
		if e.Default {
			s.defaults.Store(e.Rule.Key, struct{}{})
		} else {
			s.defaults.Delete(e.Rule.Key)
		}
	}
}

// Replicator runs on a slave node, pulling the master's table at a fixed
// interval until stopped or promoted.
type Replicator struct {
	slave    *Server
	master   string
	interval time.Duration

	pulls   atomic.Int64
	lastErr atomic.Value // string
	started atomic.Bool

	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// NewReplicator creates a replicator that copies the table of the master at
// masterAddr into slave every interval.
func NewReplicator(slave *Server, masterAddr string, interval time.Duration) *Replicator {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &Replicator{
		slave:    slave,
		master:   masterAddr,
		interval: interval,
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start begins replication. The first pull happens synchronously so the
// slave is warm when Start returns.
func (r *Replicator) Start() error {
	if err := r.PullOnce(); err != nil {
		return err
	}
	r.started.Store(true)
	go r.loop()
	return nil
}

func (r *Replicator) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-t.C:
			if err := r.PullOnce(); err != nil {
				r.lastErr.Store(err.Error())
			}
		}
	}
}

// PullOnce performs a single replication pull.
func (r *Replicator) PullOnce() error {
	if fpHAPull.Armed() {
		switch o := fpHAPull.EvalPeer(r.master); o.Kind {
		case failpoint.Error, failpoint.Partition:
			return o.Err
		case failpoint.Drop:
			return fmt.Errorf("qosserver: ha pull to %s dropped by failpoint", r.master)
		case failpoint.Delay:
			o.Sleep()
		}
	}
	conn, err := net.DialTimeout("tcp", r.master, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&haFrame{Type: haPull}); err != nil {
		return err
	}
	var f haFrame
	if err := dec.Decode(&f); err != nil {
		return err
	}
	if f.Type != haSnapshot {
		return errors.New("qosserver: unexpected replication frame")
	}
	r.slave.applySnapshot(f.Entries)
	r.pulls.Add(1)
	return nil
}

// Pulls returns the number of successful pulls.
func (r *Replicator) Pulls() int64 { return r.pulls.Load() }

// Err returns the last pull error, if any.
func (r *Replicator) Err() error {
	if s, ok := r.lastErr.Load().(string); ok && s != "" {
		return errors.New(s)
	}
	return nil
}

// Stop halts replication. Used both for teardown and at promotion (the
// slave stops pulling and starts serving as the new master).
func (r *Replicator) Stop() {
	r.once.Do(func() {
		close(r.quit)
		if r.started.Load() {
			<-r.done
		}
	})
}
