package qosserver

// Sharded SO_REUSEPORT intake (DESIGN.md §14).
//
// The seed server funnelled every datagram through ONE socket into ONE
// FIFO: the receive syscall, the channel, and the sojourn clock were all
// global serialization points, and BENCH_batching showed the hop is
// syscall-dominated. The intake is now N independent slices — each owns a
// listener socket bound to the same UDP address with SO_REUSEPORT, a
// private FIFO, a private CoDel controller, and a private worker pool — so
// the hot path is share-nothing from the receive syscall to the bucket
// shard: the kernel spreads inbound flows across the sockets by flow hash,
// and nothing on the per-datagram path is touched by two intakes.
//
// Alignment with the bucket table: when the server runs more than one
// intake over the sharded table, the table is built with one shard GROUP
// per intake (table.NewShardedAligned) and each intake's housekeeping
// stripe refills only its own groups — the maintenance plane is partitioned
// exactly like the receive plane. Cross-shard key movement — handoff,
// lease revocation, rule-sync churn — keeps using the table's slow path
// (Range/Put/Delete), which is group-oblivious by design.
//
// Portability: SO_REUSEPORT with per-socket load balancing is Linux
// semantics. When the control hook fails — non-Linux build, exotic kernel,
// restrictive sandbox — the server falls back to a single socket feeding
// intake 0 and logs the degradation; every feature above still works, only
// the receive path is serialized again (the seed behaviour).

import (
	"context"
	"net"
)

// intake is one share-nothing slice of the receive path.
type intake struct {
	id   int
	conn *net.UDPConn
	fifo chan packet
	// cdl is this FIFO's CoDel controller; nil when CoDel is disabled.
	cdl *codel
	// workers is the size of this intake's private worker pool.
	workers int
}

// listenIntakes binds n UDP sockets to addr. n <= 1 binds one plain socket
// (the portable path). n > 1 binds every socket with the SO_REUSEPORT
// control hook; the first socket resolves an ephemeral port and the rest
// join it. Any failure after a clean single-socket bind is reported via
// fallback=true and the caller proceeds with one socket.
func listenIntakes(addr string, n int) (conns []*net.UDPConn, fallback bool, err error) {
	single := func() ([]*net.UDPConn, bool, error) {
		laddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, false, err
		}
		conn, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, false, err
		}
		return []*net.UDPConn{conn}, false, nil
	}
	if n <= 1 {
		return single()
	}
	if !reuseportAvailable {
		c, _, err := single()
		return c, true, err
	}
	lc := net.ListenConfig{Control: setReuseport}
	conns = make([]*net.UDPConn, 0, n)
	bindAddr := addr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bindAddr)
		if err != nil {
			// The control hook (or a second bind to the shared port)
			// failed: release whatever bound and take the portable
			// single-socket fallback.
			for _, c := range conns {
				_ = c.Close()
			}
			c, _, serr := single()
			return c, true, serr
		}
		uc, ok := pc.(*net.UDPConn)
		if !ok {
			_ = pc.Close()
			for _, c := range conns {
				_ = c.Close()
			}
			c, _, serr := single()
			return c, true, serr
		}
		conns = append(conns, uc)
		if i == 0 {
			// An ephemeral request (":0") is resolved by the first bind;
			// the remaining sockets must join that concrete port.
			bindAddr = uc.LocalAddr().String()
		}
	}
	return conns, false, nil
}

// IntakeSnapshot is one intake's row in the /debug/qos dump.
type IntakeSnapshot struct {
	Listener     int `json:"listener"`
	Workers      int `json:"workers"`
	FIFODepth    int `json:"fifo_depth"`
	FIFOCapacity int `json:"fifo_capacity"`
	// CodelState is "disabled", "ok", or "dropping".
	CodelState string `json:"codel_state"`
	// CodelCount is the dropping-episode degrade count (cadence position).
	CodelCount int64 `json:"codel_count,omitempty"`
	// CodelDrops is the total degraded entries shed by this intake.
	CodelDrops int64 `json:"codel_drops"`
}

// SnapshotIntake captures the live intake state — listener fan-out, FIFO
// depths, CoDel controller state — for /debug/qos.
func (s *Server) SnapshotIntake() []IntakeSnapshot {
	out := make([]IntakeSnapshot, 0, len(s.intakes))
	for _, in := range s.intakes {
		row := IntakeSnapshot{
			Listener:     in.id,
			Workers:      in.workers,
			FIFODepth:    len(in.fifo),
			FIFOCapacity: cap(in.fifo),
			CodelState:   "disabled",
		}
		if in.cdl != nil {
			dropping, count := in.cdl.snapshot()
			row.CodelState = "ok"
			if dropping {
				row.CodelState = "dropping"
				row.CodelCount = count
			}
			row.CodelDrops = in.cdl.drops.Load()
		}
		out = append(out, row)
	}
	return out
}

// Listeners reports the intake fan-out and whether the sharded SO_REUSEPORT
// path is active (false means the portable single-socket fallback).
func (s *Server) Listeners() (n int, reuseport bool) {
	return len(s.intakes), len(s.intakes) > 1
}
