package qosserver

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestIntakeShardedStress runs every control-plane churn source at once
// against a multi-listener server while decision traffic flows: handoff
// rebalancing to a second server and back, rule-sync churn (geometry edits
// and delete/recreate, which revoke leases), and live lease grant traffic.
// The point is the race surface: four share-nothing intakes and their
// CoDel controllers on the hot path while the slow path rewrites the table
// under them. Run under -race (the CI scenario target runs it -count=20).
func TestIntakeShardedStress(t *testing.T) {
	const keys = 32
	rules := make([]bucket.Rule, keys)
	for i := range rules {
		rules[i] = bucket.Rule{Key: fmt.Sprintf("s%d", i), RefillRate: 5000, Capacity: 5000, Credit: 5000}
	}
	db := newDB(t, rules...)
	src := newServer(t, Config{
		Store: db, Listeners: 4, Workers: 4,
		ReplicationAddr: "127.0.0.1:0",
		LeaseFraction:   0.5, LeaseTTL: 100 * time.Millisecond,
		CodelInterval: 20 * time.Millisecond,
		Audit:         true,
	})
	dst := newServer(t, Config{Store: newDB(t, rules...), ReplicationAddr: "127.0.0.1:0"})

	duration := 700 * time.Millisecond
	if raceEnabled {
		duration = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	time.AfterFunc(duration, func() { close(stop) })
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)

	// Decision traffic across all intakes: distinct client sockets so the
	// kernel spreads the flows across the SO_REUSEPORT listeners.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := transport.Dial(src.Addr(), clientCfg)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; !stopped(); i++ {
				key := fmt.Sprintf("s%d", rng.Intn(keys))
				if _, err := cl.Do(wire.Request{Key: key, Cost: 1}); err != nil {
					// Timeouts can happen while the table churns; only a
					// transport-level failure is fatal.
					continue
				}
			}
		}(c)
	}

	// Lease traffic: singleton asks so grants go out and sync churn has
	// live leases to revoke.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("udp", src.Addr())
		if err != nil {
			errs <- err
			return
		}
		defer conn.Close()
		go func() { // drain grants/denies
			buf := make([]byte, wire.MaxDatagram)
			for {
				if _, err := conn.Read(buf); err != nil {
					return
				}
			}
		}()
		var id uint64
		for i := 0; !stopped(); i++ {
			id++
			pkt, err := wire.EncodeRequest(wire.Request{
				ID: id, Key: fmt.Sprintf("s%d", i%keys), Cost: 1,
				Lease: wire.LeaseAsk{Op: wire.LeaseOpAsk, Demand: 500, Epoch: 1},
			})
			if err != nil {
				errs <- err
				return
			}
			conn.Write(pkt)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Handoff churn: shuttle half the key space to dst and back.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			half := func(key string) string {
				var n int
				fmt.Sscanf(key, "s%d", &n)
				if n%2 == i%2 {
					return dst.ReplicationAddr()
				}
				return ""
			}
			if _, err := src.Rebalance(half); err != nil {
				errs <- fmt.Errorf("rebalance src->dst: %w", err)
				return
			}
			if _, err := dst.Rebalance(func(string) string { return src.ReplicationAddr() }); err != nil {
				errs <- fmt.Errorf("rebalance dst->src: %w", err)
				return
			}
		}
	}()

	// Rule-sync churn: geometry edits and delete/recreate force the sync
	// path's update/evict branches — both revoke outstanding leases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stopped(); i++ {
			k := fmt.Sprintf("s%d", i%8)
			if err := db.Put(bucket.Rule{Key: k, RefillRate: 5000, Capacity: float64(4000 + (i%4)*500), Credit: 4000}); err != nil {
				errs <- err
				return
			}
			if i%5 == 4 {
				if _, err := db.Delete(k); err != nil {
					errs <- err
					return
				}
			}
			src.SyncOnce()
			if i%5 == 4 { // restore so traffic keeps hitting a known rule
				if err := db.Put(rules[i%8]); err != nil {
					errs <- err
					return
				}
				src.SyncOnce()
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := src.Stats()
	if st.Decisions == 0 {
		t.Fatal("no decisions made under churn")
	}
	if st.Dropped != 0 {
		t.Errorf("closed-loop traffic lost %d datagrams to full FIFOs", st.Dropped)
	}
	if rep := src.AuditReport(); rep.Verdict != "ok" {
		t.Errorf("audit verdict %q after churn: %+v", rep.Verdict, rep.Overspent)
	}
	// The server still answers cleanly after the storm.
	cl, err := transport.Dial(src.Addr(), clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	resp, err := cl.Do(wire.Request{Key: "s1", Cost: 1})
	if err != nil || resp.Status == wire.StatusError {
		t.Fatalf("post-churn decision: %+v %v", resp, err)
	}
}
