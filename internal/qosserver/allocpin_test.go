package qosserver

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/lease"
	"repro/internal/wire"
)

// Alloc pinning: the janus-vet hotalloc analyzer proves statically that the
// annotated hot paths introduce no allocation SITES; these tests prove
// dynamically that the composed end-to-end paths perform no allocations PER
// OPERATION in steady state. Both must hold — the static check catches a
// regression at the line that introduces it, the pin catches whatever the
// static taxonomy cannot see (runtime map growth, escape-analysis changes
// across compiler versions).
//
// The budgets are pinned in BENCH_allocs.json at the repository root; a test
// failure here means either a hot-path regression (fix it) or a deliberate
// budget change (re-measure and update the JSON alongside the code).
//
// testing.AllocsPerRun runs the function once before measuring, so one-time
// costs — rule install on first sight of a key, demand-tracker entry
// creation, wire-key interning, slice warm-up — land in the warm-up run and
// steady state is what gets measured, exactly as in a long-lived daemon.

// allocBudgets mirrors BENCH_allocs.json.
type allocBudgets struct {
	Baseline map[string]float64 `json:"baseline_allocs_per_op"`
	Budget   map[string]float64 `json:"budget_allocs_per_op"`
}

func loadAllocBudgets(t *testing.T) allocBudgets {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_allocs.json")
	if err != nil {
		t.Fatalf("read BENCH_allocs.json: %v", err)
	}
	var b allocBudgets
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parse BENCH_allocs.json: %v", err)
	}
	return b
}

func pinBudget(t *testing.T, name string) float64 {
	t.Helper()
	b := loadAllocBudgets(t)
	budget, ok := b.Budget[name]
	if !ok {
		t.Fatalf("BENCH_allocs.json has no budget for %q", name)
	}
	return budget
}

func skipIfInstrumented(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; alloc pins run uninstrumented")
	}
}

// newPinServer builds a server with a generous default rule so the pinned
// loop never exhausts credit mid-measurement.
func newPinServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{
		Addr:        "127.0.0.1:0",
		DefaultRule: bucket.Rule{RefillRate: 1e9, Capacity: 1e9, Credit: 1e9},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAllocPinSingleton pins the full singleton admission path — decode the
// request frame (reuse decoder), decide, encode the response frame into a
// reused buffer — at its recorded budget.
func TestAllocPinSingleton(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "singleton_decode_decide_encode")
	s := newPinServer(t)

	pkt, err := wire.AppendRequest(nil, wire.Request{ID: 7, Key: "alloc-pin-singleton", Cost: 1})
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	var req wire.Request
	out := make([]byte, 0, wire.MaxDatagram)
	var failure error

	got := testing.AllocsPerRun(200, func() {
		if err := wire.DecodeRequestReuse(pkt, &req); err != nil {
			failure = err
			return
		}
		resp := s.Decide(req)
		out, err = wire.AppendResponse(out[:0], resp)
		if err != nil {
			failure = err
		}
	})
	if failure != nil {
		t.Fatalf("pinned loop failed: %v", failure)
	}
	if got != budget {
		t.Errorf("singleton decode→Decide→encode: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}

// TestAllocPinBatch32 pins the batched admission path — decode a 32-entry
// batch frame in place, decide all entries appending into a reused slice,
// encode the batched response into a reused buffer.
func TestAllocPinBatch32(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "batch32_decode_decide_encode")
	s := newPinServer(t)

	const n = 32
	entries := make([]wire.Request, n)
	for i := range entries {
		entries[i] = wire.Request{ID: uint64(i + 1), Key: fmt.Sprintf("alloc-pin-batch-%02d", i), Cost: 1}
	}
	pkt, err := wire.AppendBatchRequest(nil, wire.BatchRequest{Entries: entries})
	if err != nil {
		t.Fatalf("AppendBatchRequest: %v", err)
	}
	var breq wire.BatchRequest
	var resps []wire.Response
	out := make([]byte, 0, wire.MaxDatagram)
	var failure error

	got := testing.AllocsPerRun(200, func() {
		if err := wire.DecodeBatchRequestReuse(pkt, &breq); err != nil {
			failure = err
			return
		}
		resps = s.DecideBatchAppend(resps[:0], breq.Entries)
		out, err = wire.AppendBatchResponse(out[:0], wire.BatchResponse{Entries: resps})
		if err != nil {
			failure = err
		}
	})
	if failure != nil {
		t.Fatalf("pinned loop failed: %v", failure)
	}
	if got != budget {
		t.Errorf("batch(32) decode→DecideBatchAppend→encode: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}

// TestAllocPinSojournObserve pins the per-packet sojourn decomposition —
// four histogram records plus the rolling current-sojourn store — at zero:
// it runs once per datagram on the worker loop, after every response.
func TestAllocPinSojournObserve(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "sojourn_observe")
	s := newPinServer(t)

	var ns int64
	got := testing.AllocsPerRun(200, func() {
		ns += 4000
		s.observeSojourn(ns, ns+1000, ns+2000, ns+3000)
	})
	if got != budget {
		t.Errorf("observeSojourn: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}

// TestAllocPinAuditedDecide pins the audited singleton decision: with
// Config.Audit enabled every admission additionally pays the ledger's
// sharded map read plus a lock-free float add, and that surcharge must be
// allocation-free too — auditing is meant to run in production.
func TestAllocPinAuditedDecide(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "singleton_decide_audited")
	s, err := New(Config{
		Addr:        "127.0.0.1:0",
		DefaultRule: bucket.Rule{RefillRate: 1e9, Capacity: 1e9, Credit: 1e9},
		Audit:       true,
		// Keep the background audit pass out of the measurement window:
		// AllocsPerRun counts process-wide allocations.
		AuditInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { s.Close() })

	req := wire.Request{ID: 9, Key: "alloc-pin-audited", Cost: 1}
	var denied bool
	got := testing.AllocsPerRun(200, func() {
		if resp := s.Decide(req); !resp.Allow {
			denied = true
		}
	})
	if denied {
		t.Fatal("pinned loop hit the deny path; the pin measured the wrong path")
	}
	if got != budget {
		t.Errorf("audited Decide: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}

// TestAllocPinLeaseTableHit pins the router-side lease-table hit: a live
// lease admits locally — demand observation, epoch check, delegated bucket
// spend — without touching the wire or the heap.
func TestAllocPinLeaseTableHit(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "lease_table_hit")

	tbl := lease.NewTable(lease.TableConfig{Clock: time.Now})
	tbl.SetEpoch(1)
	// Seed the demand entry, then install a grant big enough that the pinned
	// loop never drains it and long-lived enough that it never enters the
	// renewal window mid-measurement.
	tbl.Route("alloc-pin-lease", 1)
	tbl.Apply("alloc-pin-lease", wire.LeaseGrant{
		Op:    wire.LeaseOpGrant,
		Rate:  1e9,
		Burst: 1e9,
		TTL:   time.Hour,
		Epoch: 1,
	})

	var undecided bool
	got := testing.AllocsPerRun(200, func() {
		d := tbl.Route("alloc-pin-lease", 1)
		if !d.Decided || !d.Allow {
			undecided = true
		}
	})
	if undecided {
		t.Fatal("lease-table hit was not served locally; the pin measured the wrong path")
	}
	if got != budget {
		t.Errorf("lease-table hit: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}

// TestAllocPinCodelDecide pins the CoDel dequeue decision — one lock, the
// control-law step, and the degraded-response build when it sheds — at
// zero: it runs once per datagram on every worker loop.
func TestAllocPinCodelDecide(t *testing.T) {
	skipIfInstrumented(t)
	budget := pinBudget(t, "codel_decide")

	c := newCodel(DefaultCodelTarget, DefaultCodelInterval)
	reqs := []wire.Request{{ID: 1, Key: "alloc-pin-codel", Cost: 1}}
	resps := make([]wire.Response, 0, 1)
	var ns int64
	var sheds int64
	got := testing.AllocsPerRun(200, func() {
		// Sustained above-target sojourn walks the entry arm once and the
		// inverse-sqrt cadence arm on most iterations; the shed branch
		// builds the degraded reply into the reused slice. All alloc-free.
		ns += int64(DefaultCodelInterval)
		if c.onDequeue(int64(5*DefaultCodelTarget), ns) {
			sheds++
			resps = appendDegraded(resps[:0], reqs, false)
		}
	})
	if sheds == 0 {
		t.Fatal("controller never shed; the pin measured the wrong path")
	}
	if got != budget {
		t.Errorf("codel onDequeue+appendDegraded: %v allocs/op, budget %v (BENCH_allocs.json)", got, budget)
	}
}
