package qosserver

import "net"

// connWrapper is a tiny helper for firing raw datagrams in tests.
type connWrapper struct{ conn net.Conn }

func netDial(addr string) (*connWrapper, error) {
	c, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &connWrapper{conn: c}, nil
}

func (w *connWrapper) Write(p []byte) (int, error) { return w.conn.Write(p) }
func (w *connWrapper) Close() error                { return w.conn.Close() }
