package qosserver

// Deterministic CoDel property tests. The controller is a pure state
// machine over (sojournNs, nowNs) pairs, so every scenario here is a
// synthetic sojourn schedule replayed on a simulated clock grid — no real
// queues, no sleeps, no flakes. The expectations are hand-computed from
// the RFC 8289 control law, so a regression in the law (not just in the
// plumbing) fails these tests.

import (
	"testing"
	"time"
)

const (
	testTarget   = time.Millisecond       // 1e6 ns
	testInterval = 100 * time.Millisecond // 1e8 ns
)

// driveGrid dequeues one packet per gridStep with the sojourn produced by
// sojournAt, for n steps starting at t=0, and returns the times (in ns) at
// which the controller degraded.
func driveGrid(c *codel, n int, gridStep time.Duration, sojournAt func(step int) time.Duration) []int64 {
	var degraded []int64
	for i := 0; i < n; i++ {
		now := int64(i) * int64(gridStep)
		if c.onDequeue(int64(sojournAt(i)), now) {
			degraded = append(degraded, now)
		}
	}
	return degraded
}

func ms(n int64) int64 { return n * int64(time.Millisecond) }

// TestCodelStepOverload: sojourn steps to 5x Target and stays there, one
// dequeue per millisecond. The controller must wait a full Interval before
// entering the dropping state, then degrade at exactly the inverse-sqrt
// cadence. The instants are hand-computed: entry at 100ms, then
// 100/sqrt(2), 100/sqrt(3), ... ms later, rounded up to the next dequeue
// on the 1ms grid.
func TestCodelStepOverload(t *testing.T) {
	c := newCodel(testTarget, testInterval)
	got := driveGrid(c, 500, time.Millisecond, func(int) time.Duration { return 5 * time.Millisecond })

	want := []int64{ms(100), ms(200), ms(271), ms(329), ms(379), ms(424)}
	if len(got) < len(want) {
		t.Fatalf("degrades = %d, want at least %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("degrade %d at %dns, want %dns (full schedule %v)", i, got[i], w, got[:len(want)])
		}
	}
	if dropping, _ := c.snapshot(); !dropping {
		t.Fatal("controller left the dropping state under sustained overload")
	}

	// The cadence law exactly: each scheduled gap is Interval/sqrt(count)
	// for count = 2, 3, 4, ... — observed gaps are the scheduled gaps
	// rounded up to the 1ms dequeue grid, so each gap must lie within one
	// grid step above the law and the accumulated schedule must match the
	// integer control law to the nanosecond.
	next := got[0] + controlLaw(int64(testInterval), 1)
	for i := 1; i < len(got); i++ {
		// got[i] is the first grid point at or after the scheduled instant.
		if got[i] < next || got[i]-next >= int64(time.Millisecond) {
			t.Fatalf("degrade %d at %dns, scheduled %dns: not the first grid dequeue after the control law", i, got[i], next)
		}
		next += controlLaw(int64(testInterval), int64(i)+1)
	}
}

// TestCodelBurstPassesUntouched: an excursion above Target shorter than one
// Interval is a burst, not a standing queue — zero degrades.
func TestCodelBurstPassesUntouched(t *testing.T) {
	c := newCodel(testTarget, testInterval)
	got := driveGrid(c, 300, time.Millisecond, func(i int) time.Duration {
		if i >= 50 && i < 140 { // 90ms above target: just under one Interval
			return 4 * time.Millisecond
		}
		return 100 * time.Microsecond
	})
	if len(got) != 0 {
		t.Fatalf("burst shorter than Interval degraded %d packets: %v", len(got), got)
	}
	if dropping, _ := c.snapshot(); dropping {
		t.Fatal("controller stuck in dropping state after the burst cleared")
	}
}

// TestCodelRampEntry: sojourn ramps 50µs per dequeue. It crosses Target at
// t=20ms; the dropping state must begin exactly one Interval later, at the
// t=120ms dequeue, and not one packet earlier.
func TestCodelRampEntry(t *testing.T) {
	c := newCodel(testTarget, testInterval)
	got := driveGrid(c, 200, time.Millisecond, func(i int) time.Duration {
		return time.Duration(i) * 50 * time.Microsecond
	})
	if len(got) == 0 {
		t.Fatal("ramp overload never entered the dropping state")
	}
	if got[0] != ms(120) {
		t.Fatalf("first degrade at %dns, want exactly %dns (crossing at 20ms + one Interval)", got[0], ms(120))
	}
}

// TestCodelRecoverExitsAndHysteresisResumes: overload, recover, overload
// again within 16 Intervals. The first below-Target dequeue must exit the
// dropping state immediately, and the re-entry must resume from the
// previous episode's cadence (count = previous count - count at entry)
// instead of relearning from 1.
func TestCodelRecoverExitsAndHysteresisResumes(t *testing.T) {
	c := newCodel(testTarget, testInterval)

	// Phase 1: overload long enough to reach count = 5 (see the step test's
	// schedule: degrades at 100, 200, 271, 329, 379ms).
	drive := func(fromMs, toMs int64, sojourn time.Duration) (degrades int64) {
		for t := fromMs; t < toMs; t++ {
			if c.onDequeue(int64(sojourn), ms(t)) {
				degrades++
			}
		}
		return degrades
	}
	if n := drive(0, 400, 5*time.Millisecond); n != 5 {
		t.Fatalf("phase 1 degrades = %d, want 5", n)
	}

	// Phase 2: one healthy dequeue exits the dropping state.
	if c.onDequeue(int64(200*time.Microsecond), ms(400)) {
		t.Fatal("healthy dequeue was degraded")
	}
	if dropping, _ := c.snapshot(); dropping {
		t.Fatal("below-Target dequeue did not exit the dropping state")
	}

	// Phase 3: overload returns at t=401ms — within 16 Intervals of the
	// last scheduled degrade. Entry still takes a full Interval of standing
	// queue (first degrade at 501ms), but the cadence resumes at
	// count = 5 - 1 = 4, not at 1.
	if n := drive(401, 502, 5*time.Millisecond); n != 1 {
		t.Fatalf("phase 3 degrades = %d, want exactly the entry degrade", n)
	}
	if dropping, count := c.snapshot(); !dropping || count != 4 {
		t.Fatalf("re-entry state = (dropping=%v, count=%d), want (true, 4): hysteresis lost", dropping, count)
	}
}

// TestCodelColdReentryRelearns: when overload returns long after the last
// episode (beyond 16 Intervals), the controller relearns the cadence from
// count = 1 — stale cadence must not shed a fresh, unrelated overload hard.
func TestCodelColdReentryRelearns(t *testing.T) {
	c := newCodel(testTarget, testInterval)
	for tMs := int64(0); tMs < 400; tMs++ {
		c.onDequeue(int64(5*time.Millisecond), ms(tMs))
	}
	// Quiet gap of 20 Intervals (2s).
	c.onDequeue(int64(100*time.Microsecond), ms(400))
	// Overload returns at t=2400ms.
	entered := false
	for tMs := int64(2400); tMs < 2600 && !entered; tMs++ {
		entered = c.onDequeue(int64(5*time.Millisecond), ms(tMs))
	}
	if !entered {
		t.Fatal("cold re-entry never entered the dropping state")
	}
	if _, count := c.snapshot(); count != 1 {
		t.Fatalf("cold re-entry count = %d, want 1 (must relearn after 16 Intervals)", count)
	}
}

// TestCodelDeterministic: the controller is a pure function of its input
// schedule — two replays of the same pseudo-random schedule produce
// identical decision vectors. This is the property the sim-clock scenario
// suite and the resume semantics of the overload tests rely on.
func TestCodelDeterministic(t *testing.T) {
	schedule := make([]time.Duration, 4000)
	x := uint64(0x9E3779B97F4A7C15) // fixed splitmix-style walk, no global RNG
	for i := range schedule {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		schedule[i] = time.Duration(x % uint64(4*time.Millisecond))
	}
	run := func() []int64 {
		c := newCodel(testTarget, testInterval)
		return driveGrid(c, len(schedule), 250*time.Microsecond, func(i int) time.Duration { return schedule[i] })
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at degrade %d: %d vs %d", i, a[i], b[i])
		}
	}
}
