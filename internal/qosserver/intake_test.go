package qosserver

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bucket"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestListenIntakesSingle(t *testing.T) {
	conns, fallback, err := listenIntakes("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer conns[0].Close()
	if len(conns) != 1 || fallback {
		t.Fatalf("len=%d fallback=%v, want 1 false", len(conns), fallback)
	}
}

func TestListenIntakesReuseport(t *testing.T) {
	if !reuseportAvailable {
		t.Skip("SO_REUSEPORT not available on this platform")
	}
	conns, fallback, err := listenIntakes("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if len(conns) != 4 || fallback {
		t.Fatalf("len=%d fallback=%v, want 4 false", len(conns), fallback)
	}
	// An ephemeral bind must resolve once: every socket shares the port the
	// first bind drew.
	addr0 := conns[0].LocalAddr().String()
	for i, c := range conns {
		if got := c.LocalAddr().String(); got != addr0 {
			t.Fatalf("conn %d bound %s, conn 0 bound %s", i, got, addr0)
		}
	}
}

// TestMultiListenerServes drives a Listeners=4 server end-to-end from many
// distinct client sockets (the kernel spreads flows by source port) and
// checks every request is answered correctly no matter which intake slice
// received it.
func TestMultiListenerServes(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "shared", RefillRate: 0, Capacity: 10_000, Credit: 10_000})
	s := newServer(t, Config{Store: db, Listeners: 4, Workers: 4})

	n, reuseport := s.Listeners()
	if reuseportAvailable && (n != 4 || !reuseport) {
		t.Fatalf("Listeners() = %d,%v, want 4,true", n, reuseport)
	}
	if !reuseportAvailable && n != 1 {
		t.Fatalf("fallback Listeners() = %d, want 1", n)
	}

	const clients, perClient = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := transport.Dial(s.Addr(), clientCfg)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < perClient; j++ {
				resp, err := c.Do(wire.Request{Key: "shared", Cost: 1})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %w", id, j, err)
					return
				}
				if !resp.Allow || resp.Status != wire.StatusOK {
					errs <- fmt.Errorf("client %d req %d: %+v", id, j, resp)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.Decisions < clients*perClient {
		t.Fatalf("decisions = %d, want >= %d", st.Decisions, clients*perClient)
	}
	if st.Degraded != 0 || st.Dropped != 0 {
		t.Fatalf("healthy load degraded=%d dropped=%d", st.Degraded, st.Dropped)
	}

	snaps := s.SnapshotIntake()
	if len(snaps) != n {
		t.Fatalf("snapshot rows = %d, listeners = %d", len(snaps), n)
	}
	workers := 0
	for _, row := range snaps {
		if row.Workers < 1 {
			t.Fatalf("intake %d has %d workers", row.Listener, row.Workers)
		}
		if row.CodelState != "ok" {
			t.Fatalf("intake %d codel state %q, want ok", row.Listener, row.CodelState)
		}
		workers += row.Workers
	}
	if workers < 4 {
		t.Fatalf("total workers = %d, want >= 4", workers)
	}
}

func TestCodelDisabledByNegativeTarget(t *testing.T) {
	s := newServer(t, Config{
		DefaultRule: bucket.Rule{RefillRate: 1, Capacity: 1, Credit: 1},
		CodelTarget: -1,
	})
	for _, row := range s.SnapshotIntake() {
		if row.CodelState != "disabled" {
			t.Fatalf("intake %d codel state %q, want disabled", row.Listener, row.CodelState)
		}
	}
}
