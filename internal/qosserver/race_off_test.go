//go:build !race

package qosserver

// raceEnabled reports whether the race detector instrumented this build.
// The alloc-pin tests skip under -race: instrumentation inserts shadow
// allocations that have nothing to do with the production code path.
const raceEnabled = false
