package qosserver

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/table"
)

// encodeFrame gob-encodes a frame the way the HA and handoff peers do, for
// seeding the fuzz corpus with well-formed inputs.
func encodeFrame(t *testing.F, f haFrame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&f); err != nil {
		t.Fatalf("encode seed frame: %v", err)
	}
	return buf.Bytes()
}

// FuzzHAFrameDecode feeds arbitrary bytes through the same gob decode path
// the HA listener and handoff receiver use, then applies any decoded
// entries to a live server. Two properties must hold for every input:
// decoding never panics, and no applied entry can leave a bucket whose
// credit exceeds its capacity — the leaky-bucket invariant a corrupt or
// malicious replication peer must not be able to break.
func FuzzHAFrameDecode(f *testing.F) {
	now := time.Unix(1700000000, 0)
	srv, err := New(Config{
		Addr:      "127.0.0.1:0",
		Workers:   1,
		TableKind: table.KindSharded,
		Clock:     func() time.Time { return now },
	})
	if err != nil {
		f.Fatalf("start server: %v", err)
	}
	f.Cleanup(func() { _ = srv.Close() })

	f.Add(encodeFrame(f, haFrame{Type: haPull}))
	f.Add(encodeFrame(f, haFrame{Type: haAck}))
	f.Add(encodeFrame(f, haFrame{Type: haSnapshot, Entries: []haEntry{
		{Rule: bucket.Rule{Key: "tenant-a", RefillRate: 10, Capacity: 100, Credit: 50}},
		{Rule: bucket.Rule{Key: "guest", RefillRate: 1, Capacity: 5, Credit: 5}, Default: true},
	}}))
	f.Add(encodeFrame(f, haFrame{Type: haHandoff, Entries: []haEntry{
		{Rule: bucket.Rule{Key: "tenant-b", RefillRate: 2, Capacity: 20, Credit: 0}},
	}}))
	// Hostile seeds: truncated gob, junk, and a frame whose rule violates
	// the bucket invariants.
	f.Add([]byte{})
	f.Add([]byte("not a gob stream"))
	f.Add(encodeFrame(f, haFrame{Type: haHandoff, Entries: []haEntry{
		{Rule: bucket.Rule{Key: "evil", RefillRate: -1, Capacity: -100, Credit: 1e18}},
	}})[:8])

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		var frame haFrame
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&frame); err != nil {
			return // rejecting a corrupt frame is the correct outcome
		}
		entries := frame.Entries
		if len(entries) > 1024 {
			entries = entries[:1024]
		}
		srv.applyHandoff(entries)
		probe := now.Add(time.Hour) // force a refill advance as well
		for _, e := range entries {
			b := srv.Table().Get(e.Rule.Key)
			if b == nil {
				continue
			}
			credit, capacity := b.Credit(probe), b.Capacity()
			if math.IsNaN(credit) || credit > capacity {
				t.Fatalf("entry %+v installed bucket with credit %v > capacity %v",
					e.Rule, credit, capacity)
			}
		}
		// Reset so state cannot accumulate across iterations.
		for _, e := range entries {
			srv.Table().Delete(e.Rule.Key)
			srv.defaults.Delete(e.Rule.Key)
		}
	})
}
