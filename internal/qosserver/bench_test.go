package qosserver

import (
	"fmt"
	"testing"

	"repro/internal/bucket"
	"repro/internal/minisql"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/wire"
)

func benchServer(b *testing.B, kind table.Kind, rules int) *Server {
	b.Helper()
	st := store.New(minisql.NewEngine())
	if err := st.Init(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rules; i++ {
		if err := st.Put(bucket.Rule{Key: fmt.Sprintf("k%d", i), RefillRate: 1e9, Capacity: 1e9, Credit: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	s, err := New(Config{Addr: "127.0.0.1:0", Store: st, TableKind: kind})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

// BenchmarkDecideHotKey measures the resident-bucket decision path — the
// per-request cost once a key's rule is cached locally.
func BenchmarkDecideHotKey(b *testing.B) {
	s := benchServer(b, table.KindSharded, 1)
	req := wire.Request{Key: "k0", Cost: 1}
	s.Decide(req) // install
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decide(req)
	}
}

// BenchmarkDecideParallel measures contended decisions across a key
// population, for both table kinds — the §V-C locking story.
func BenchmarkDecideParallel(b *testing.B) {
	for _, kind := range []table.Kind{table.KindMutex, table.KindSharded} {
		b.Run(string(kind), func(b *testing.B) {
			const keys = 256
			s := benchServer(b, kind, keys)
			for i := 0; i < keys; i++ {
				s.Decide(wire.Request{Key: fmt.Sprintf("k%d", i), Cost: 1})
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					s.Decide(wire.Request{Key: fmt.Sprintf("k%d", i&(keys-1)), Cost: 1})
					i++
				}
			})
		})
	}
}

// BenchmarkDecideColdKey measures the first-sight path: database fetch plus
// bucket installation.
func BenchmarkDecideColdKey(b *testing.B) {
	s := benchServer(b, table.KindSharded, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Decide(wire.Request{Key: fmt.Sprintf("cold-%d", i), Cost: 1})
	}
}

// BenchmarkSnapshotTable measures the HA replication snapshot cost as the
// table grows.
func BenchmarkSnapshotTable(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("keys=%d", n), func(b *testing.B) {
			s := benchServer(b, table.KindSharded, 0)
			for i := 0; i < n; i++ {
				s.Decide(wire.Request{Key: fmt.Sprintf("k%d", i), Cost: 1})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := len(s.snapshotTable()); got != n {
					b.Fatalf("snapshot size %d, want %d", got, n)
				}
			}
		})
	}
}
