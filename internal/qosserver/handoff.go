package qosserver

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"repro/internal/bucket"
	"repro/internal/events"
	"repro/internal/failpoint"
)

// Failpoints on the handoff seams. Push (peer = destination handoff
// address) fails the export before any bytes move, leaving entries in the
// source table — the paper's "new owner falls back to the database"
// degradation. Apply corrupts the import side: drop loses a delivered batch
// after the ack, dup applies it twice — both must leave the min-merge
// invariant (credit never inflates) intact.
var (
	fpHandoffPush  = failpoint.New("qosserver/handoff/push")
	fpHandoffApply = failpoint.New("qosserver/handoff/apply")
)

// Bucket-state handoff for membership changes.
//
// When the cluster's membership epoch advances, some keys map to a new
// owner. Rebalance exports exactly those entries from the local table —
// rule geometry, current credit, and default flag, the ha.go snapshot wire
// format — pushes them to each new owner's replication listener, and
// deletes them locally once the owner acknowledges receipt. Credits
// therefore survive rebalancing instead of being re-minted from the
// database at full capacity.
//
// The receiving side merges conservatively: an incoming entry whose bucket
// already exists with the same geometry only ever LOWERS the credit
// (min-merge). Whatever consumption happened on either side during the
// handoff window is kept; credit is never refunded. An entry for an
// unknown key (or one whose geometry changed) is installed wholesale.

// Rebalance pushes every table entry whose key has a new owner to that
// owner's handoff (replication) address and removes it locally on ack.
//
// owner maps a key to the handoff address of its current owner, or ""
// when the key still belongs to this server. Rebalance is driven by the
// cluster orchestration after a membership view swap: by then routers
// direct new traffic for moved keys at the new owner, so the exported
// credits are final.
//
// It returns the number of entries successfully handed off. Entries whose
// destination cannot be reached stay in the local table (the new owner
// falls back to the database rule for them) and the first such error is
// returned after all destinations have been attempted.
func (s *Server) Rebalance(owner func(key string) string) (int, error) {
	now := s.clock()
	groups := make(map[string][]haEntry)
	s.table.Range(func(key string, b *bucket.Bucket) bool {
		addr := owner(key)
		if addr == "" {
			return true
		}
		_, isDefault := s.defaults.Load(key)
		groups[addr] = append(groups[addr], haEntry{Rule: b.Rule(key, now), Default: isDefault})
		return true
	})
	moved := 0
	var firstErr error
	for addr, entries := range groups {
		if err := pushHandoff(addr, entries); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("qosserver: handoff to %s: %w", addr, err)
			}
			s.logger.Printf("qosserver: handoff of %d entries to %s failed: %v", len(entries), addr, err)
			continue
		}
		for _, e := range entries {
			// The key has a new owner; any lease carved from this bucket must
			// die with it (epoch scoping at the router catches the same case,
			// but the reserved rate has to be returned here regardless).
			s.revokeLeases(e.Rule.Key)
			s.table.Delete(e.Rule.Key)
			s.defaults.Delete(e.Rule.Key)
		}
		events.Record("qosserver", "handoff-push", addr, float64(len(entries)))
		moved += len(entries)
	}
	return moved, firstErr
}

// pushHandoff delivers one batch of entries to the replication listener at
// addr and waits for the ack.
func pushHandoff(addr string, entries []haEntry) error {
	if fpHandoffPush.Armed() {
		switch o := fpHandoffPush.EvalPeer(addr); o.Kind {
		case failpoint.Error, failpoint.Partition:
			return o.Err
		case failpoint.Drop:
			return fmt.Errorf("handoff to %s dropped by failpoint", addr)
		case failpoint.Delay:
			o.Sleep()
		}
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&haFrame{Type: haHandoff, Entries: entries}); err != nil {
		return err
	}
	var ack haFrame
	if err := dec.Decode(&ack); err != nil {
		return err
	}
	if ack.Type != haAck {
		return fmt.Errorf("unexpected frame type %d in handoff ack", ack.Type)
	}
	return nil
}

// applyHandoff installs handed-off entries with min-merge semantics; see
// the package comment above for why credit only ever moves down.
func (s *Server) applyHandoff(entries []haEntry) {
	passes := 1
	if fpHandoffApply.Armed() {
		switch o := fpHandoffApply.Eval(); o.Kind {
		case failpoint.Drop, failpoint.Error, failpoint.Partition:
			return // batch acked but never installed
		case failpoint.Dup:
			passes = 2 // duplicate delivery: min-merge must make this a no-op
		case failpoint.Delay:
			o.Sleep()
		}
	}
	for ; passes > 0; passes-- {
		s.applyHandoffEntries(entries)
	}
	events.Record("qosserver", "handoff-apply", "", float64(len(entries)))
}

func (s *Server) applyHandoffEntries(entries []haEntry) {
	now := s.clock()
	for _, e := range entries {
		// Frames arrive over the network; a corrupt or malicious peer must
		// not install rules the bucket math cannot uphold (negative
		// capacity, credit outside [0, capacity], empty key).
		if e.Rule.Validate() != nil {
			continue
		}
		if b := s.table.Get(e.Rule.Key); b != nil &&
			b.RefillRate() == e.Rule.RefillRate && b.Capacity() == e.Rule.Capacity {
			if cur := b.Credit(now); e.Rule.Credit < cur {
				b.SetCredit(e.Rule.Credit, now)
			}
		} else {
			s.revokeLeases(e.Rule.Key)
			s.table.Put(e.Rule.Key, s.newBucket(e.Rule, now))
		}
		if e.Default {
			s.defaults.Store(e.Rule.Key, struct{}{})
		} else {
			s.defaults.Delete(e.Rule.Key)
		}
	}
}
