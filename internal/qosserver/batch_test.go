package qosserver

import (
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/transport"
	"repro/internal/wire"
)

// One batched datagram in, one batched datagram out: the worker decodes the
// whole frame, evaluates every entry in a single pass, and the reply carries
// a verdict for every entry (IDs echoed, order preserved).
func TestWorkerAnswersBatchedDatagram(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "alice", RefillRate: 0, Capacity: 2, Credit: 2})
	s := newServer(t, Config{Store: db})

	breq := wire.BatchRequest{Entries: []wire.Request{
		{ID: 1, Key: "alice", Cost: 1},
		{ID: 2, Key: "alice", Cost: 1},
		{ID: 3, Key: "alice", Cost: 1}, // bucket exhausted: must be denied
	}}
	pkt, err := wire.AppendBatchRequest(nil, breq)
	if err != nil {
		t.Fatal(err)
	}
	conn := mustRawUDP(t, s.Addr())
	if _, err := conn.Write(pkt); err != nil {
		t.Fatal(err)
	}
	conn.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, wire.MaxDatagram)
	n, err := conn.conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	bresp, err := wire.DecodeBatchResponse(buf[:n])
	if err != nil {
		t.Fatalf("reply is not a batch frame: %v", err)
	}
	if len(bresp.Entries) != 3 {
		t.Fatalf("reply has %d entries, want 3", len(bresp.Entries))
	}
	for i, resp := range bresp.Entries {
		if resp.ID != breq.Entries[i].ID {
			t.Fatalf("entry %d: ID %d, want %d", i, resp.ID, breq.Entries[i].ID)
		}
	}
	if !bresp.Entries[0].Allow || !bresp.Entries[1].Allow || bresp.Entries[2].Allow {
		t.Fatalf("verdicts = %v %v %v, want allow/allow/deny",
			bresp.Entries[0].Allow, bresp.Entries[1].Allow, bresp.Entries[2].Allow)
	}
	if st := s.Stats(); st.Decisions != 3 {
		t.Fatalf("decisions = %d, want 3 (one per batch entry)", st.Decisions)
	}
}

// A batching transport client against a real QoS server: the full fan-in
// path (coalescer → batched datagram → worker → batched reply → fan-out)
// under concurrency, plus the janus_qos_batch_size histogram observing
// multi-entry frames.
func TestBatchingClientAgainstQoSServer(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "k", RefillRate: 1e6, Capacity: 1e6, Credit: 1e6})
	s := newServer(t, Config{Store: db})
	c, err := transport.Dial(s.Addr(), transport.Config{
		Timeout: 100 * time.Millisecond, Retries: 5, MaxBatch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				resp, err := c.Do(wire.Request{Key: "k", Cost: 1})
				if err != nil {
					done <- err
					return
				}
				if !resp.Allow {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if max := s.batchSize.Max(); max < 2 {
		t.Fatalf("qos server never saw a multi-entry datagram (max batch = %d)", max)
	}
	if st := s.Stats(); st.Decisions != 8*50 {
		t.Fatalf("decisions = %d, want %d", st.Decisions, 8*50)
	}
}
