//go:build !linux

package qosserver

import (
	"errors"
	"syscall"
)

// reuseportAvailable: non-Linux platforms take the portable single-socket
// fallback (SO_REUSEPORT exists on the BSDs but with different load-
// balancing semantics; stdlib-only Janus does not special-case them).
const reuseportAvailable = false

var errReuseportUnsupported = errors.New("qosserver: SO_REUSEPORT intake not supported on this platform")

// setReuseport fails the control hook, which routes New through the
// portable single-socket fallback.
func setReuseport(network, address string, c syscall.RawConn) error {
	return errReuseportUnsupported
}
