package qosserver

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/wire"
)

// TestPropertyBatchedDecisionsEquivalent is the decision-equivalence
// property behind the batched protocol: batching is a TRANSPORT
// optimization, never a semantic one. For any request stream, any chopping
// of it into batches, and any clock schedule, submitting the batches
// through DecideBatch must produce exactly the per-request verdicts — and
// therefore exactly the per-key admitted credit — that sequential Decide
// calls produce at the same evaluation times. Leaky-bucket state is pure
// float arithmetic over the per-key (time, cost) subsequence, so the
// comparison is exact equality, no tolerance.
func TestPropertyBatchedDecisionsEquivalent(t *testing.T) {
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + trial)))

			// Random rule set: mixed refill regimes, including zero-refill
			// (pure quota) and fast-refill buckets, plus keys left to the
			// default rule.
			const numKeys = 6
			var rules []bucket.Rule
			keys := make([]string, 0, numKeys+1)
			for i := 0; i < numKeys; i++ {
				key := fmt.Sprintf("key-%d", i)
				keys = append(keys, key)
				cap := float64(1 + rng.Intn(20))
				rates := []float64{0, 1, 5, 50}
				rules = append(rules, bucket.Rule{
					Key: key, Capacity: cap, Credit: cap,
					RefillRate: rates[rng.Intn(len(rates))],
				})
			}
			keys = append(keys, "unknown-key") // served by the default rule

			// Random request stream over those keys.
			const numReqs = 400
			reqs := make([]wire.Request, numReqs)
			for i := range reqs {
				reqs[i] = wire.Request{
					ID:   uint64(i + 1),
					Key:  keys[rng.Intn(len(keys))],
					Cost: float64(1+rng.Intn(3000)) / 1000, // (0, 3]
				}
			}

			// Random chopping into batches of 1..8 entries, and a clock
			// schedule: every request in a batch is evaluated at the batch's
			// arrival time, and the clock advances a random step between
			// batches (sometimes zero — same-instant batches must also
			// agree).
			evalAt := make([]time.Time, numReqs)
			type span struct{ lo, hi int }
			var batches []span
			now := time.Unix(1_000_000, 0)
			for lo := 0; lo < numReqs; {
				hi := lo + 1 + rng.Intn(8)
				if hi > numReqs {
					hi = numReqs
				}
				for i := lo; i < hi; i++ {
					evalAt[i] = now
				}
				batches = append(batches, span{lo, hi})
				now = now.Add(time.Duration(rng.Intn(3)) * time.Duration(rng.Intn(40)) * time.Millisecond)
				lo = hi
			}

			defaultRule := bucket.Rule{RefillRate: 2, Capacity: 4, Credit: 4}

			// Batched server: one DecideBatch call per chunk.
			var clockB time.Time
			sb := newServer(t, Config{
				Store: newDB(t, rules...), DefaultRule: defaultRule,
				Clock: func() time.Time { return clockB },
			})
			batched := make([]wire.Response, 0, numReqs)
			for _, b := range batches {
				clockB = evalAt[b.lo]
				batched = append(batched, sb.DecideBatch(reqs[b.lo:b.hi])...)
			}

			// Unbatched server: the same stream, one Decide per request, at
			// the same evaluation times.
			var clockU time.Time
			su := newServer(t, Config{
				Store: newDB(t, rules...), DefaultRule: defaultRule,
				Clock: func() time.Time { return clockU },
			})
			unbatched := make([]wire.Response, 0, numReqs)
			for i, req := range reqs {
				clockU = evalAt[i]
				unbatched = append(unbatched, su.Decide(req))
			}

			// Per-request verdicts must match exactly.
			admittedB := map[string]float64{}
			admittedU := map[string]float64{}
			for i := range reqs {
				b, u := batched[i], unbatched[i]
				if b.ID != reqs[i].ID {
					t.Fatalf("request %d: batched response ID %d, want %d", i, b.ID, reqs[i].ID)
				}
				if b.Allow != u.Allow || b.Status != u.Status {
					t.Fatalf("request %d (key %q cost %v): batched %+v, unbatched %+v",
						i, reqs[i].Key, reqs[i].Cost, b, u)
				}
				if b.Allow {
					admittedB[reqs[i].Key] += reqs[i].Cost
				}
				if u.Allow {
					admittedU[reqs[i].Key] += reqs[i].Cost
				}
			}
			// And so must the per-key admitted credit (exact float equality:
			// identical per-key subsequences → identical arithmetic).
			for _, key := range keys {
				if admittedB[key] != admittedU[key] {
					t.Fatalf("key %q: batched admitted %v, unbatched %v", key, admittedB[key], admittedU[key])
				}
			}
		})
	}
}
