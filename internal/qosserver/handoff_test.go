package qosserver

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/minisql"
	"repro/internal/store"
	"repro/internal/wire"
)

func newHandoffServer(t *testing.T, rules ...bucket.Rule) *Server {
	t.Helper()
	db := store.New(minisql.NewEngine())
	if err := db.Init(); err != nil {
		t.Fatal(err)
	}
	if err := db.PutAll(rules); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Addr: "127.0.0.1:0", Store: db, ReplicationAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRebalanceMovesCreditsToNewOwner hands half the keys of one server to
// another and checks the exact credits (not the database's full capacity)
// arrive, the moved keys leave the source table, and the kept keys stay.
func TestRebalanceMovesCreditsToNewOwner(t *testing.T) {
	var rules []bucket.Rule
	for i := 0; i < 10; i++ {
		rules = append(rules, bucket.Rule{Key: fmt.Sprintf("u%d", i), RefillRate: 0, Capacity: 10, Credit: 10})
	}
	src := newHandoffServer(t, rules...)
	dst := newHandoffServer(t, rules...)

	// Warm every rule into the table, then consume i credits from key u<i>
	// so every key has a distinct credit.
	if err := src.Preload(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rules {
		for j := 0; j < i; j++ {
			if resp := src.Decide(wire.Request{Key: r.Key, Cost: 1}); !resp.Allow {
				t.Fatalf("%s consume %d denied", r.Key, j)
			}
		}
	}
	if src.TableLen() != 10 {
		t.Fatalf("source table len = %d", src.TableLen())
	}

	// Keys u5..u9 move to dst.
	moved, err := src.Rebalance(func(key string) string {
		if key >= "u5" {
			return dst.ReplicationAddr()
		}
		return ""
	})
	if err != nil || moved != 5 {
		t.Fatalf("moved = %d err = %v", moved, err)
	}
	if src.TableLen() != 5 {
		t.Fatalf("source table len after rebalance = %d", src.TableLen())
	}
	if dst.TableLen() != 5 {
		t.Fatalf("dest table len = %d", dst.TableLen())
	}
	now := time.Now()
	for i := 5; i < 10; i++ {
		b := dst.Table().Get(fmt.Sprintf("u%d", i))
		if b == nil {
			t.Fatalf("u%d missing on destination", i)
		}
		want := float64(10 - i) // capacity 10 minus i consumed, rate 0
		if got := b.Credit(now); math.Abs(got-want) > 1e-9 {
			t.Fatalf("u%d credit = %v, want %v", i, got, want)
		}
	}
	// u0 consumed nothing; the Cost: 0 decide was denied but made it resident.
	if b := src.Table().Get("u0"); b == nil || b.Credit(now) != 10 {
		t.Fatal("u0 disturbed by rebalance")
	}
}

// TestRebalanceMinMerge checks the conservative merge: a bucket already
// present on the destination with the same geometry keeps the LOWER of the
// two credits, so no handoff can refund consumed credit.
func TestRebalanceMinMerge(t *testing.T) {
	rule := bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10}
	src := newHandoffServer(t, rule)
	dst := newHandoffServer(t, rule)

	// src consumed 7 (credit 3); dst consumed 2 (credit 8).
	for i := 0; i < 7; i++ {
		src.Decide(wire.Request{Key: "k", Cost: 1})
	}
	for i := 0; i < 2; i++ {
		dst.Decide(wire.Request{Key: "k", Cost: 1})
	}
	if moved, err := src.Rebalance(func(string) string { return dst.ReplicationAddr() }); err != nil || moved != 1 {
		t.Fatalf("moved = %d err = %v", moved, err)
	}
	if got := dst.Table().Get("k").Credit(time.Now()); math.Abs(got-3) > 1e-9 {
		t.Fatalf("merged credit = %v, want min(3, 8) = 3", got)
	}

	// The reverse direction: incoming credit higher than resident — keep
	// the resident (lower) credit.
	src2 := newHandoffServer(t, rule)
	src2.Decide(wire.Request{Key: "k", Cost: 1}) // credit 9 on src2
	if _, err := src2.Rebalance(func(string) string { return dst.ReplicationAddr() }); err != nil {
		t.Fatal(err)
	}
	if got := dst.Table().Get("k").Credit(time.Now()); math.Abs(got-3) > 1e-9 {
		t.Fatalf("merged credit = %v, want 3 (never refunded)", got)
	}
}

// TestRebalanceGeometryChangeInstallsWholesale: a destination bucket with
// different geometry (edited rule) is replaced by the incoming entry.
func TestRebalanceGeometryChangeInstallsWholesale(t *testing.T) {
	src := newHandoffServer(t, bucket.Rule{Key: "k", RefillRate: 5, Capacity: 20, Credit: 20})
	dst := newHandoffServer(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10})
	src.Decide(wire.Request{Key: "k", Cost: 4})
	dst.Decide(wire.Request{Key: "k", Cost: 1})
	if _, err := src.Rebalance(func(string) string { return dst.ReplicationAddr() }); err != nil {
		t.Fatal(err)
	}
	b := dst.Table().Get("k")
	if b.Capacity() != 20 || b.RefillRate() != 5 {
		t.Fatalf("geometry = (%v, %v), want (20, 5)", b.RefillRate(), b.Capacity())
	}
}

// TestRebalanceDefaultFlagTravels: default-rule keys keep their flag on the
// new owner, so checkpointing still skips them.
func TestRebalanceDefaultFlagTravels(t *testing.T) {
	src := newHandoffServer(t) // no rules: every key is served by the default rule
	dst := newHandoffServer(t)
	src.Decide(wire.Request{Key: "ghost", Cost: 1})
	if _, isDefault := src.defaults.Load("ghost"); !isDefault {
		t.Fatal("precondition: ghost not a default key")
	}
	if moved, err := src.Rebalance(func(string) string { return dst.ReplicationAddr() }); err != nil || moved != 1 {
		t.Fatalf("moved = %d err = %v", moved, err)
	}
	if _, isDefault := dst.defaults.Load("ghost"); !isDefault {
		t.Fatal("default flag lost in handoff")
	}
	if _, stillThere := src.defaults.Load("ghost"); stillThere {
		t.Fatal("default flag not cleared on source")
	}
}

// TestRebalanceUnreachableDestinationKeepsEntries: when the destination is
// down, entries stay local and an error is reported.
func TestRebalanceUnreachableDestinationKeepsEntries(t *testing.T) {
	src := newHandoffServer(t, bucket.Rule{Key: "k", RefillRate: 0, Capacity: 10, Credit: 10})
	src.Decide(wire.Request{Key: "k", Cost: 1})
	moved, err := src.Rebalance(func(string) string { return "127.0.0.1:1" })
	if err == nil || moved != 0 {
		t.Fatalf("moved = %d err = %v, want error and 0", moved, err)
	}
	if src.TableLen() != 1 {
		t.Fatal("entry lost despite failed handoff")
	}
}

// TestSnapshotRoundTripUnderConcurrentWrites exercises the ha.go snapshot
// path (which Rebalance's export shares) while workers admit concurrently:
// replication pulls and handoff pushes must be race-free against live
// decisions. Run under -race (scripts/check via `go test -race`).
func TestSnapshotRoundTripUnderConcurrentWrites(t *testing.T) {
	var rules []bucket.Rule
	for i := 0; i < 64; i++ {
		rules = append(rules, bucket.Rule{Key: fmt.Sprintf("u%d", i), RefillRate: 1e6, Capacity: 1e6, Credit: 1e6})
	}
	master := newHandoffServer(t, rules...)
	slave := newHandoffServer(t, rules...)
	sink := newHandoffServer(t, rules...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				master.Decide(wire.Request{Key: fmt.Sprintf("u%d", (g*16+i)%64), Cost: 1})
			}
		}(g)
	}

	// Replication pulls and partial handoffs race against the writers.
	rep := NewReplicator(slave, master.ReplicationAddr(), time.Millisecond)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if _, err := master.Rebalance(func(key string) string {
			if key == fmt.Sprintf("u%d", round) {
				return sink.ReplicationAddr()
			}
			return ""
		}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	rep.Stop()
	close(stop)
	wg.Wait()
	if rep.Pulls() < 2 {
		t.Fatalf("pulls = %d", rep.Pulls())
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("replication error: %v", err)
	}
	if slave.TableLen() == 0 {
		t.Fatal("slave table empty after round trips")
	}
	if sink.TableLen() != 5 {
		t.Fatalf("sink received %d handed-off keys, want 5", sink.TableLen())
	}
}
