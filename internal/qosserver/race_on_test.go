//go:build race

package qosserver

// raceEnabled reports whether the race detector instrumented this build.
const raceEnabled = true
