package qosserver

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/failpoint"
	"repro/internal/wire"
)

// tickClock is a simulated clock that advances by a fixed step on every
// read, so any two consecutive timestamp samples are strictly ordered.
type tickClock struct {
	ticks atomic.Int64
	step  int64
}

func (c *tickClock) now() time.Time {
	return time.Unix(0, c.ticks.Add(1)*c.step)
}

// TestSojournStageMonotonicity drives one request through the full
// listen→FIFO→decide→send pipeline under a simulated clock and checks the
// per-stage sojourn decomposition: every stage is sampled after the one
// before it (recv ≤ dequeue ≤ decide ≤ send — strictly, under a clock that
// advances on every read), and the stages sum exactly to the total.
func TestSojournStageMonotonicity(t *testing.T) {
	clk := &tickClock{step: 1000}
	s, err := New(Config{
		Addr:        "127.0.0.1:0",
		Workers:     1,
		DefaultRule: bucket.Rule{RefillRate: 1e6, Capacity: 1e6, Credit: 1e6},
		Clock:       clk.now,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	conn, err := net.Dial("udp", s.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	pkt, err := wire.AppendRequest(nil, wire.Request{ID: 1, Key: "sojourn", Cost: 1})
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	if _, err := conn.Write(pkt); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 2048)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatalf("read response: %v", err)
	}

	// observeSojourn runs after the response datagram is sent; wait for it.
	deadline := time.Now().Add(2 * time.Second)
	for s.sojournTotal.Count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sojourn total never recorded")
		}
		time.Sleep(time.Millisecond)
	}

	stages := []struct {
		name string
		h    interface {
			Count() int64
			Sum() int64
		}
	}{
		{"queue", s.sojournQueue},
		{"decide", s.sojournDecide},
		{"send", s.sojournSend},
	}
	var sum int64
	for _, st := range stages {
		if c := st.h.Count(); c != 1 {
			t.Fatalf("stage %s recorded %d samples, want 1", st.name, c)
		}
		v := st.h.Sum()
		if v <= 0 {
			t.Errorf("stage %s sojourn = %dns; the tick clock advances on every read, so each stage must be strictly positive", st.name, v)
		}
		sum += v
	}
	if total := s.sojournTotal.Sum(); sum != total {
		t.Errorf("stage sum %dns != total %dns; the decomposition must be exact (shared endpoint timestamps)", sum, total)
	}
	if cur := int64(s.CurrentSojourn()); cur != s.sojournQueue.Sum() {
		t.Errorf("CurrentSojourn() = %dns, want the queue-stage sojourn %dns", cur, s.sojournQueue.Sum())
	}
}

// TestAuditCatchesDoubleCredit is the audit ledger's reason to exist: an
// honest server — including one denying heavily — always audits "ok", and
// the injected double-credit failpoint (an exhausted bucket silently
// refilled to capacity, the canonical conservation bug) must be reported as
// overspend naming the minted bucket and its generation.
func TestAuditCatchesDoubleCredit(t *testing.T) {
	s, err := New(Config{
		Addr:          "127.0.0.1:0",
		DefaultRule:   bucket.Rule{RefillRate: 0, Capacity: 5, Credit: 5},
		Audit:         true,
		AuditInterval: time.Hour, // audit on demand only, keep the test deterministic
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	// Honest phase: exhaust the bucket and keep hammering the deny path.
	// Denials grant nothing, so the ledger stays within budget.
	for i := 0; i < 20; i++ {
		s.Decide(wire.Request{ID: uint64(i + 1), Key: "honest", Cost: 1})
	}
	if rep := s.AuditReport(); rep.Verdict != "ok" {
		t.Fatalf("honest server audited %q, want ok: %+v", rep.Verdict, rep.Overspent)
	}

	// Inject the conservation bug and spend the minted credit.
	t.Cleanup(failpoint.DisarmAll)
	if err := failpoint.Arm("qosserver/audit/double-credit", failpoint.Action{Kind: failpoint.Drop}); err != nil {
		t.Fatalf("arm failpoint: %v", err)
	}
	for i := 0; i < 50; i++ {
		s.Decide(wire.Request{ID: uint64(100 + i), Key: "cheat", Cost: 1})
	}

	rep := s.AuditReport()
	if rep.Verdict != "overspend" {
		t.Fatalf("minted server audited %q, want overspend", rep.Verdict)
	}
	var found bool
	for _, o := range rep.Overspent {
		if o.Key == "honest" {
			t.Errorf("honest bucket flagged as overspent: %+v", o)
		}
		if o.Key == "cheat" {
			found = true
			if o.Over <= 0 {
				t.Errorf("overspend on %q reports Over = %g, want > 0", o.Key, o.Over)
			}
			if o.Generation == 0 {
				t.Errorf("overspend on %q carries no generation", o.Key)
			}
		}
	}
	if !found {
		t.Fatalf("overspend report does not name the minted bucket: %+v", rep.Overspent)
	}
	if v := s.auditOverspend.Value(); v < 1 {
		t.Errorf("janus_qos_audit_overspend_total = %d, want >= 1", v)
	}
	// Repeated audits of the same generation do not re-count.
	before := s.auditOverspend.Value()
	_ = s.AuditReport()
	if after := s.auditOverspend.Value(); after != before {
		t.Errorf("re-auditing the same generation moved the overspend counter %d -> %d", before, after)
	}
}

// TestAuditDisabledReport checks the default-off posture: no ledger, no
// accounting cost, and /debug/audit reports "disabled" rather than a
// hollow "ok".
func TestAuditDisabledReport(t *testing.T) {
	s, err := New(Config{
		Addr:        "127.0.0.1:0",
		DefaultRule: bucket.Rule{RefillRate: 1e6, Capacity: 1e6, Credit: 1e6},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	s.Decide(wire.Request{ID: 1, Key: "k", Cost: 1})
	if rep := s.AuditReport(); rep.Verdict != "disabled" {
		t.Fatalf("audit-off server reports %q, want disabled", rep.Verdict)
	}
}
