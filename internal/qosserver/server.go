// Package qosserver implements the Janus QoS server node (paper §II-C,
// §III-C).
//
// The major components mirror the paper's Java implementation one-for-one:
//
//   - the local QoS table: a synchronized map from QoS key to leaky bucket
//     (internal/table; sharded by default, single-lock available for the
//     ablation);
//   - the UDP listener goroutine, which receives datagrams from the request
//     router and pushes them into a FIFO;
//   - N worker goroutines polling the FIFO (N defaults to the number of
//     available CPUs), which decode the request, make the leaky-bucket
//     decision, and send the response back over UDP — without caring
//     whether the router receives it (the router retries);
//   - the housekeeping goroutine refilling buckets at a fixed interval
//     (when tick refill is selected);
//   - the system-maintenance goroutine re-querying the database for rule
//     updates at a configurable interval;
//   - the checkpoint goroutine writing current credits back to the
//     database at a configurable interval;
//   - the high-availability listener serving the local table to a slave
//     (ha.go).
//
// A server never communicates with other QoS servers (§II-D: "There is no
// communication between the QoS servers in Janus. They are totally unaware
// of the existence of each other.").
package qosserver

import (
	"fmt"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/bucket"
	"repro/internal/events"
	"repro/internal/failpoint"
	"repro/internal/lease"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config configures a QoS server node.
type Config struct {
	// Addr is the UDP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Workers is the number of worker goroutines polling the FIFOs; 0 means
	// the number of available CPUs (the paper: "N equals to the number of
	// vCPU's available on the QoS server"). Workers are distributed across
	// the intakes, at least one per intake.
	Workers int
	// Listeners is the number of SO_REUSEPORT intake sockets, each owning a
	// private FIFO, CoDel controller, and worker pool so the receive path
	// is share-nothing from syscall to bucket shard (DESIGN.md §14). 0 or 1
	// selects the single-socket intake; larger values require SO_REUSEPORT
	// (Linux) and fall back to one socket — logged, not fatal — when the
	// control hook fails.
	Listeners int
	// QueueSize is the per-intake FIFO capacity between listener and
	// workers.
	QueueSize int
	// CodelTarget is the CoDel sojourn target for the intake FIFOs: once
	// the queue-stage sojourn stays at or above it for CodelInterval, the
	// server sheds queued requests by answering them with the degraded-mode
	// default (StatusDegraded, no credit consumed) at the inverse-sqrt
	// control-law cadence until the sojourn recovers. 0 selects
	// DefaultCodelTarget (1ms); negative disables CoDel, restoring the
	// seed's drop-only-when-full FIFO.
	CodelTarget time.Duration
	// CodelInterval is the CoDel interval: how long the sojourn must remain
	// above target before shedding starts, and the base of the control-law
	// cadence. 0 selects DefaultCodelInterval (100ms).
	CodelInterval time.Duration
	// TableKind selects the local QoS table implementation.
	TableKind table.Kind
	// DefaultRule is applied to keys absent from the database (§II-D). Its
	// Key field is ignored. The zero value denies all unknown keys.
	DefaultRule bucket.Rule
	// RefillInterval > 0 selects housekeeping-tick refill at that period;
	// 0 selects exact lazy refill.
	RefillInterval time.Duration
	// SyncInterval > 0 enables periodic rule re-synchronization from the
	// database.
	SyncInterval time.Duration
	// CheckpointInterval > 0 enables periodic credit write-back.
	CheckpointInterval time.Duration
	// Store is the database access layer; nil runs the server without a
	// database (every key uses DefaultRule).
	Store *store.Store
	// FailOpen selects the verdict when the database errors during rule
	// fetch: true admits, false denies.
	FailOpen bool
	// ReplicationAddr, when non-empty, starts the HA listener on this TCP
	// address so a slave can replicate the local table.
	ReplicationAddr string
	// Clock injects time for tests; nil means time.Now.
	Clock func() time.Time
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
	// Registry receives the server's counters and latency histogram for
	// /metrics exposition; nil creates a private registry (Stats() and the
	// accessors work either way).
	Registry *metrics.Registry
	// Tracer records the worker spans of requests that arrive with a wire
	// trace ID; nil creates a private recorder. The server never samples —
	// the sampling decision is made at the edge and carried in the request.
	Tracer *trace.Recorder
	// LeaseFraction > 0 enables credit leasing (internal/lease): up to this
	// share of a bucket's refill rate, (0,1], may be delegated to routers
	// for local admission. 0 disables leasing; lease sections on inbound
	// requests are then ignored, which is exactly what a pre-lease server
	// does.
	LeaseFraction float64
	// LeaseTTL is the lease lifetime; 0 means lease.DefaultTTL.
	LeaseTTL time.Duration
	// Audit enables the online admission-audit ledger (internal/audit):
	// every credit grant and every admission is accounted, and an audit
	// pass (periodic, plus on-demand at /debug/audit) verifies the
	// conservation bound admitted ≤ C + r·t + lease slack per bucket,
	// exporting violations as janus_qos_audit_overspend_total. Off by
	// default: auditing costs one sharded map read plus one lock-free
	// float add per admission (see BenchmarkObservabilityDecideAudited).
	Audit bool
	// AuditInterval is the period of the background audit pass when Audit
	// is enabled; 0 means 1s.
	AuditInterval time.Duration
}

// Stats are cumulative operation counters for one server.
type Stats struct {
	Received int64 // datagrams pulled off the sockets
	// Dropped counts datagrams LOST because an intake FIFO was full — the
	// client saw nothing and must retry. With CoDel enabled this should be
	// near zero: the controller sheds by answering, not by losing.
	Dropped int64
	// Degraded counts request entries ANSWERED with the degraded-mode
	// default (StatusDegraded) by the CoDel controller instead of a real
	// admission decision. The client got a fast, actionable reply; no
	// credit moved.
	Degraded   int64
	Malformed  int64 // datagrams that failed to decode
	Decisions  int64 // admission decisions made
	Allowed    int64
	Denied     int64
	DBQueries  int64 // rule fetches that hit the database
	DefaultHit int64 // decisions served by the default rule
	DBErrors   int64
	SendErrors int64 // response datagrams the kernel refused to send

	// Lease counters (zero unless Config.LeaseFraction > 0).
	LeaseGrants  int64   // grants and renewals issued
	LeaseDenies  int64   // asks refused
	LeaseRevokes int64   // leases revoked before TTL
	Leases       int     // leases currently outstanding
	LeasedRate   float64 // refill rate currently delegated, credits/second
}

// Server is a running QoS server node.
type Server struct {
	cfg   Config
	table table.Table
	// aligned is the group-aligned view of table when the sharded intake
	// is active (nil otherwise): one bucket-shard group per intake, so the
	// refill plane partitions exactly like the receive plane.
	aligned *table.Sharded
	clock   func() time.Time

	// intakes are the share-nothing receive slices (intake.go); intake 0's
	// socket answers Addr(). reuseportFallback records that more than one
	// listener was requested but the SO_REUSEPORT bind failed and the
	// server degraded to the portable single socket.
	intakes           []*intake
	reuseportFallback bool

	// defaults tracks keys served by the default rule, so responses carry
	// StatusDefaultRule and checkpointing can skip them.
	defaults keySet

	decisionLatency *metrics.Histogram
	batchSize       *metrics.Histogram

	// Per-stage sojourn decomposition (DESIGN.md §13): where a request's
	// time inside this daemon went. queue = socket recv → FIFO dequeue,
	// decide = dequeue → all decisions made, send = decisions → response
	// datagram handed to the kernel, total = recv → sent. curSojournNs
	// holds the queue-stage sojourn of the most recently dequeued packet —
	// the rolling control signal a CoDel-style drop policy will consume.
	sojournQueue  *metrics.Histogram
	sojournDecide *metrics.Histogram
	sojournSend   *metrics.Histogram
	sojournTotal  *metrics.Histogram
	curSojournNs  atomic.Int64

	audit          *audit.Ledger // nil when auditing is disabled
	auditOverspend *metrics.Counter

	// lastSyncNs is the wall time of the last completed rule-sync pass,
	// read by the readiness probe (a janusd enforcing stale rules should
	// stop taking new traffic before it enforces very old ones).
	lastSyncNs atomic.Int64

	registry *metrics.Registry
	tracer   *trace.Recorder

	received   *metrics.Counter
	dropped    *metrics.Counter
	codelDrops *metrics.Counter
	malformed  *metrics.Counter
	decisions  *metrics.Counter
	allowed    *metrics.Counter
	denied     *metrics.Counter
	dbQueries  *metrics.Counter
	defaultHit *metrics.Counter
	dbErrors   *metrics.Counter
	sendErrors *metrics.Counter

	leases       *lease.Manager // nil when leasing is disabled
	leaseGrants  *metrics.Counter
	leaseDenies  *metrics.Counter
	leaseRevokes *metrics.Counter

	ha *haListener

	quit chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
	logger    *log.Logger
}

type packet struct {
	data  []byte
	raddr *net.UDPAddr
	// recvNs timestamps the socket read, opening the sojourn clock.
	recvNs int64
}

// keySet is a concurrent string set. It replaces sync.Map for the
// default-rule bookkeeping because the membership check sits on the
// per-decision hot path, and sync.Map's any-keyed Load would box the string
// key — one heap allocation per admission. The two-value Load mirrors the
// sync.Map shape so call sites read the same.
type keySet struct {
	mu sync.RWMutex
	m  map[string]struct{}
}

//janus:hotpath
func (ks *keySet) Load(key string) (struct{}, bool) {
	ks.mu.RLock()
	_, ok := ks.m[key]
	ks.mu.RUnlock()
	return struct{}{}, ok
}

func (ks *keySet) Store(key string, _ struct{}) {
	ks.mu.Lock()
	if ks.m == nil {
		ks.m = make(map[string]struct{})
	}
	ks.m[key] = struct{}{}
	ks.mu.Unlock()
}

func (ks *keySet) Delete(key string) {
	ks.mu.Lock()
	delete(ks.m, key)
	ks.mu.Unlock()
}

// New starts a QoS server.
func New(cfg Config) (*Server, error) {
	conns, fallback, err := listenIntakes(cfg.Addr, cfg.Listeners)
	if err != nil {
		return nil, fmt.Errorf("qosserver: listen %s: %w", cfg.Addr, err)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64 * 1024
	}
	codelTarget := cfg.CodelTarget
	if codelTarget == 0 {
		codelTarget = DefaultCodelTarget
	}
	codelInterval := cfg.CodelInterval
	if codelInterval <= 0 {
		codelInterval = DefaultCodelInterval
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	if fallback {
		logger.Printf("qosserver: %d listeners requested but SO_REUSEPORT is unavailable; running the portable single-socket intake", cfg.Listeners)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.NewRecorder(trace.Config{})
	}
	// Build the intakes: each listener socket owns a private FIFO, CoDel
	// controller, and worker share. Workers spread round-robin so every
	// intake gets at least one.
	intakes := make([]*intake, len(conns))
	for i, c := range conns {
		in := &intake{id: i, conn: c, fifo: make(chan packet, cfg.QueueSize)}
		if codelTarget > 0 {
			in.cdl = newCodel(codelTarget, codelInterval)
		}
		in.workers = cfg.Workers / len(conns)
		if i < cfg.Workers%len(conns) {
			in.workers++
		}
		if in.workers == 0 {
			in.workers = 1
		}
		intakes[i] = in
	}

	// With a sharded multi-listener intake, align the bucket table's shard
	// groups to the listeners so the maintenance plane (refill stripes)
	// partitions exactly like the receive plane. Cross-shard key movement
	// (handoff, lease revoke, sync churn) stays on the table's slow path.
	var tbl table.Table
	var aligned *table.Sharded
	if len(intakes) > 1 && cfg.TableKind != table.KindMutex {
		aligned = table.NewShardedAligned(len(intakes), 0)
		tbl = aligned
	} else {
		tbl = table.New(cfg.TableKind)
	}

	s := &Server{
		cfg:               cfg,
		table:             tbl,
		aligned:           aligned,
		clock:             clock,
		intakes:           intakes,
		reuseportFallback: fallback,
		decisionLatency:   metrics.NewHistogram(),
		batchSize:         metrics.NewHistogram(),
		registry:          reg,
		tracer:            tracer,
		received:          reg.Counter("janus_qos_received_total", "datagrams pulled off the UDP sockets"),
		dropped:           reg.Counter("janus_qos_dropped_total", "datagrams LOST at the intake (clients saw nothing and must retry)", metrics.Label{Key: "reason", Value: "fifo_full"}),
		codelDrops:        reg.Counter("janus_qos_codel_drops_total", "request entries answered with the degraded-mode default by the CoDel controller (no credit consumed, never silently lost)"),
		malformed:         reg.Counter("janus_qos_malformed_total", "datagrams that failed to decode"),
		decisions:         reg.Counter("janus_qos_decisions_total", "admission decisions made"),
		allowed:           reg.Counter("janus_qos_decisions_allowed_total", "decisions that admitted the request"),
		denied:            reg.Counter("janus_qos_decisions_denied_total", "decisions that denied the request"),
		dbQueries:         reg.Counter("janus_qos_db_queries_total", "rule fetches that hit the database"),
		defaultHit:        reg.Counter("janus_qos_default_rule_total", "decisions served by the default rule"),
		dbErrors:          reg.Counter("janus_qos_db_errors_total", "database operations that failed"),
		sendErrors:        reg.Counter("janus_qos_send_errors_total", "response datagrams the kernel refused to send"),
		quit:              make(chan struct{}),
		logger:            logger,
	}
	reg.RegisterHistogram("janus_qos_decision_latency_ns", "worker-side admission decision latency in nanoseconds", s.decisionLatency)
	reg.RegisterHistogram("janus_qos_batch_size", "request entries per received datagram (1 = unbatched router)", s.batchSize)
	reg.GaugeFunc("janus_qos_table_keys", "keys resident in the local QoS table", func() float64 { return float64(s.table.Len()) })
	reg.GaugeFunc("janus_qos_fifo_depth", "datagrams queued between listeners and workers, summed over intakes", func() float64 {
		n := 0
		for _, in := range s.intakes {
			n += len(in.fifo)
		}
		return float64(n)
	})
	reg.GaugeFunc("janus_qos_listeners", "intake listener sockets (1 = single-socket, >1 = SO_REUSEPORT sharded)", func() float64 { return float64(len(s.intakes)) })
	if codelTarget > 0 {
		reg.GaugeFunc("janus_qos_codel_state", "intake FIFOs currently in the CoDel dropping state (0 = all queues healthy)", func() float64 {
			n := 0
			for _, in := range s.intakes {
				if dropping, _ := in.cdl.snapshot(); dropping {
					n++
				}
			}
			return float64(n)
		})
		reg.GaugeFunc("janus_qos_codel_target_seconds", "CoDel sojourn target", codelTarget.Seconds)
	}
	const sojournHelp = "per-stage request sojourn inside the QoS server in seconds (queue: socket recv to FIFO dequeue; decide: dequeue to all decisions made; send: decisions to response sent; total: recv to sent)"
	s.sojournQueue = reg.HistogramScaled("janus_qos_sojourn_seconds", sojournHelp, 1e-9, metrics.Label{Key: "stage", Value: "queue"})
	s.sojournDecide = reg.HistogramScaled("janus_qos_sojourn_seconds", sojournHelp, 1e-9, metrics.Label{Key: "stage", Value: "decide"})
	s.sojournSend = reg.HistogramScaled("janus_qos_sojourn_seconds", sojournHelp, 1e-9, metrics.Label{Key: "stage", Value: "send"})
	s.sojournTotal = reg.HistogramScaled("janus_qos_sojourn_seconds", sojournHelp, 1e-9, metrics.Label{Key: "stage", Value: "total"})
	reg.GaugeFunc("janus_qos_sojourn_current_ns", "queue-stage sojourn of the most recently dequeued packet in nanoseconds (the CoDel control signal)",
		func() float64 { return float64(s.curSojournNs.Load()) })
	if cfg.Audit {
		s.auditOverspend = reg.Counter("janus_qos_audit_overspend_total", "buckets found over the C + r·t + lease-slack conservation budget (counted once per bucket generation)")
		s.audit = audit.NewLedger(audit.Config{Clock: clock, OnOverspend: func(o audit.Overspend) {
			s.auditOverspend.Inc()
			events.Recordf("audit", "overspend", o.Key, o.Over, "admitted=%.1f budget=%.1f gen=%d", o.Admitted, o.Budget, o.Generation)
			s.logger.Printf("qosserver: audit overspend on %q gen %d: admitted %.1f > budget %.1f", o.Key, o.Generation, o.Admitted, o.Budget)
		}})
		reg.GaugeFunc("janus_qos_audit_buckets", "buckets tracked by the admission-audit ledger", func() float64 { return float64(s.audit.Buckets()) })
	}
	if cfg.LeaseFraction > 0 {
		s.leases = lease.NewManager(lease.ManagerConfig{Fraction: cfg.LeaseFraction, TTL: cfg.LeaseTTL, Clock: clock})
		s.leaseGrants = reg.Counter("janus_qos_lease_grants_total", "credit lease grants and renewals issued")
		s.leaseDenies = reg.Counter("janus_qos_lease_denies_total", "credit lease asks refused")
		s.leaseRevokes = reg.Counter("janus_qos_lease_revokes_total", "credit leases revoked before their TTL")
		reg.GaugeFunc("janus_qos_leased_rate", "refill rate currently delegated to credit leases, credits/second", s.leases.LeasedRate)
		reg.GaugeFunc("janus_qos_leases", "credit leases currently outstanding", func() float64 { return float64(s.leases.Holders()) })
	}
	if cfg.ReplicationAddr != "" {
		ha, err := newHAListener(s, cfg.ReplicationAddr)
		if err != nil {
			for _, in := range intakes {
				_ = in.conn.Close()
			}
			return nil, err
		}
		s.ha = ha
	}
	for _, in := range s.intakes {
		s.wg.Add(1)
		go s.listen(in)
		for i := 0; i < in.workers; i++ {
			s.wg.Add(1)
			go s.worker(in)
		}
	}
	if cfg.RefillInterval > 0 {
		if s.aligned != nil {
			// One refill stripe per intake: intake i sweeps shard groups
			// i, i+N, i+2N, ... so no two stripes ever touch the same
			// shard locks — maintenance aligned with the receive plane.
			for _, in := range s.intakes {
				s.wg.Add(1)
				go s.housekeepingStripe(in.id)
			}
		} else {
			s.wg.Add(1)
			go s.housekeeping()
		}
	}
	if cfg.SyncInterval > 0 && cfg.Store != nil {
		s.wg.Add(1)
		go s.syncLoop()
	}
	if cfg.CheckpointInterval > 0 && cfg.Store != nil {
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	if s.leases != nil {
		s.wg.Add(1)
		go s.leaseSweepLoop()
	}
	if s.audit != nil {
		s.wg.Add(1)
		go s.auditLoop()
	}
	// Readiness baseline: the server booted with whatever rules it has;
	// staleness is measured from here until the first sync pass lands.
	s.lastSyncNs.Store(clock().UnixNano())
	return s, nil
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Addr returns the UDP address the server listens on (all intake sockets
// share it).
func (s *Server) Addr() string { return s.intakes[0].conn.LocalAddr().String() }

// ReplicationAddr returns the HA listener address, or "" if HA is disabled.
func (s *Server) ReplicationAddr() string {
	if s.ha == nil {
		return ""
	}
	return s.ha.Addr()
}

// fpUDPRecv models inbound packet loss on the server's UDP socket: a
// dropped datagram is invisible to received/dropped counters, exactly like
// loss on the wire, and is recovered (or not) by the router's retries.
var fpUDPRecv = failpoint.New("qosserver/udp/recv")

// listen is one intake's listener thread: it receives packets from its own
// SO_REUSEPORT socket and pushes them into its private FIFO. A full FIFO
// still drops the packet — the router's retry covers the loss — but with
// CoDel controlling the queue the FIFO should never get near full: the
// controller sheds by ANSWERING (worker-side) long before the queue fills.
//
// socket, which unblocks ReadFromUDP with an error and ends the loop.
//
//janus:deadlined the accept-style read blocks by design; Close() closes the
func (s *Server) listen(in *intake) {
	defer s.wg.Done()
	for {
		buf := make([]byte, 2048)
		n, raddr, err := in.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if fpUDPRecv.Armed() {
			switch o := fpUDPRecv.EvalPeer(raddr.String()); o.Kind {
			case failpoint.Drop, failpoint.Partition:
				continue
			case failpoint.Delay:
				o.Sleep()
			}
		}
		s.received.Inc()
		select {
		case in.fifo <- packet{data: buf[:n], raddr: raddr, recvNs: s.clock().UnixNano()}:
		default:
			s.dropped.Inc()
		}
	}
}

// fpWorkerDecide pins the cost of the full decision path: a Delay action
// models a slow decision service (cold cache, CPU contention, an expensive
// rule) with a deterministic per-datagram stall. The overload scenario
// suite uses it as the service-rate governor — offered load and capacity
// are then both exact, so 1x/2x/10x are real multipliers, not guesses. The
// CoDel degraded path deliberately does NOT pass through this failpoint:
// shedding is cheap, which is what gives the controller leverage.
var fpWorkerDecide = failpoint.New("qosserver/worker/decide")

// worker polls its intake's FIFO, decides, and responds. One FIFO slot may
// carry a whole coalesced batch (wire.FlagBatched): the worker evaluates
// every entry against the bucket table in one pass and answers with one
// batched response, so the fan-in amortization the router bought on the
// send side is preserved through the server's queue and reply syscall.
//
// Before deciding, the dequeued packet's queue sojourn feeds the intake's
// CoDel controller: a packet the controller sheds is answered immediately
// with the degraded-mode default (StatusDegraded, the server's fail-open/
// fail-closed verdict, no credit consumed) instead of being decided —
// never silently dropped. The degraded path skips the admission decision
// and the lease plumbing, which is what makes shedding cheaper than
// serving and lets the control law actually shorten the queue.
func (s *Server) worker(in *intake) {
	defer s.wg.Done()
	// The decode batch, response slice, and encode buffer are owned by this
	// worker and reused across packets: with a recurring key set the whole
	// decode→decide→encode pass allocates nothing (see the AllocPin tests).
	var breq wire.BatchRequest
	var resps []wire.Response
	out := make([]byte, 0, 64)
	for {
		var pkt packet
		select {
		case <-s.quit:
			return
		case pkt = <-in.fifo:
		}
		deqNs := s.clock().UnixNano()
		if err := wire.DecodeBatchRequestReuse(pkt.data, &breq); err != nil {
			s.malformed.Inc()
			continue
		}
		s.batchSize.Record(int64(len(breq.Entries)))
		if in.cdl != nil && in.cdl.onDequeue(deqNs-pkt.recvNs, deqNs) {
			in.cdl.drops.Add(int64(len(breq.Entries)))
			s.codelDrops.Add(int64(len(breq.Entries)))
			resps = appendDegraded(resps[:0], breq.Entries, s.cfg.FailOpen)
		} else {
			if fpWorkerDecide.Armed() {
				if o := fpWorkerDecide.Eval(); o.Kind == failpoint.Delay {
					o.Sleep()
				}
			}
			resps = s.DecideBatchAppend(resps[:0], breq.Entries)
			// Lease traffic rides singleton exchanges only (FlagLease and
			// FlagBatched are mutually exclusive on the wire), so lease asks
			// are served — and pending revocations delivered — on unbatched
			// frames.
			if s.leases != nil && len(breq.Entries) == 1 {
				s.attachLease(&breq.Entries[0], &resps[0], pkt.raddr.String())
			}
		}
		decNs := s.clock().UnixNano()
		var err error
		out, err = wire.AppendBatchResponse(out[:0], wire.BatchResponse{Entries: resps})
		if err != nil {
			// Unreachable for a decoded batch (same entry IDs, same bound);
			// counted rather than silently dropped.
			s.sendErrors.Inc()
			continue
		}
		// Fire and forget (§III-C: "The worker thread does not care about
		// whether the request router receives the response or not") — but a
		// send the kernel refused is counted, or silent drops would read as
		// router-side packet loss.
		//lint:ignore deadline fire-and-forget UDP send; WriteToUDP does not block on the peer
		if _, err := in.conn.WriteToUDP(out, pkt.raddr); err != nil {
			s.sendErrors.Inc()
		}
		s.observeSojourn(pkt.recvNs, deqNs, decNs, s.clock().UnixNano())
	}
}

// appendDegraded builds the degraded-mode answers for a shed datagram: one
// response per entry carrying StatusDegraded and the server's fail-open/
// fail-closed default verdict. No bucket is touched and no credit moves —
// the chaos invariant TestInvariantCodelNeverInflatesAdmission pins that a
// degraded reply can never mint credit.
//
//janus:hotpath
func appendDegraded(dst []wire.Response, reqs []wire.Request, failOpen bool) []wire.Response {
	for i := range reqs {
		dst = append(dst, wire.Response{
			ID:      reqs[i].ID,
			Allow:   failOpen,
			Status:  wire.StatusDegraded,
			TraceID: reqs[i].TraceID,
		})
	}
	return dst
}

// observeSojourn files one packet's per-stage sojourn decomposition and
// refreshes the rolling current-sojourn signal. Allocation-free: four
// histogram records and one atomic store per packet.
//
//janus:hotpath
func (s *Server) observeSojourn(recvNs, deqNs, decNs, sentNs int64) {
	s.sojournQueue.Record(deqNs - recvNs)
	s.sojournDecide.Record(decNs - deqNs)
	s.sojournSend.Record(sentNs - decNs)
	s.sojournTotal.Record(sentNs - recvNs)
	s.curSojournNs.Store(deqNs - recvNs)
}

// CurrentSojourn returns the queue-stage sojourn of the most recently
// dequeued packet — the signal a CoDel-style drop policy watches.
func (s *Server) CurrentSojourn() time.Duration {
	return time.Duration(s.curSojournNs.Load())
}

// SojournTotal returns the end-to-end (recv→sent) sojourn histogram in
// nanoseconds — the per-node tail signal the scenario harness feeds to SLO
// checks and the autoscaler, without registry-name coupling.
func (s *Server) SojournTotal() *metrics.Histogram { return s.sojournTotal }

// fpLeaseRevokeDrop models a lost lease revocation: the reserved rate is
// already released server-side, but the holder never hears it should stop
// admitting locally, so it keeps spending its leased rate until the TTL
// runs out — exactly the overhang the C + r·t + leased·TTL bound covers.
var fpLeaseRevokeDrop = failpoint.New("qosserver/lease/revoke-drop")

// attachLease serves a piggybacked lease ask on a singleton exchange. A
// revocation queued for the holder takes priority over answering the ask —
// a response carries at most one lease section, and when a holder's wire
// traffic is all renewals, revocations would otherwise never find a
// carrier. The starved ask is simply left unanswered; the router re-asks.
func (s *Server) attachLease(req *wire.Request, resp *wire.Response, holder string) {
	if g, ok := s.leases.PendingRevoke(holder); ok {
		if fpLeaseRevokeDrop.Armed() {
			switch o := fpLeaseRevokeDrop.EvalPeer(holder); o.Kind {
			case failpoint.Drop, failpoint.Partition:
				return // revocation lost; the lease TTL bounds the damage
			case failpoint.Delay:
				o.Sleep()
			}
		}
		resp.Lease = g
		return
	}
	if req.Lease.Op != 0 {
		// Decide already installed the bucket for this key, so Get only
		// misses if the key raced a concurrent delete — deny by omission.
		if b := s.table.Get(req.Key); b != nil {
			g := s.leases.Handle(req.Key, holder, req.Lease, b)
			switch g.Op {
			case wire.LeaseOpGrant:
				s.leaseGrants.Inc()
				// The holder may now admit rate×TTL remotely plus the
				// prepaid burst; budget it before the first remote spend.
				s.audit.AddSlack(req.Key, g.Rate*g.TTL.Seconds()+g.Burst)
				events.Recordf("lease", "grant", req.Key, g.Rate, "holder=%s burst=%.1f ttl=%s", holder, g.Burst, g.TTL)
			case wire.LeaseOpDeny:
				s.leaseDenies.Inc()
			}
			resp.Lease = g
		}
	}
}

// revokeLeases withdraws all leases on key before its bucket is replaced,
// deleted, or handed off; no-op when leasing is disabled.
func (s *Server) revokeLeases(key string) {
	if s.leases == nil {
		return
	}
	if n := s.leases.Revoke(key); n > 0 {
		s.leaseRevokes.Add(int64(n))
		events.Record("lease", "revoke", key, float64(n))
	}
}

// leaseSweepLoop periodically expires leases whose holders vanished, so
// their reserved rate returns to the shared bucket no later than one sweep
// interval after the TTL.
func (s *Server) leaseSweepLoop() {
	defer s.wg.Done()
	every := s.leases.TTL() / 2
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case now := <-t.C:
			s.leases.Sweep(now)
		}
	}
}

// DecideBatch evaluates a batch of requests against the bucket table in one
// worker pass, preserving entry order. Each entry gets exactly the decision
// a singleton submission would have received at the same instant — batching
// is a transport optimization, never a semantic one (see the decision-
// equivalence property test). Exported for in-process deployments and the
// property harness.
func (s *Server) DecideBatch(reqs []wire.Request) []wire.Response {
	return s.DecideBatchAppend(make([]wire.Response, 0, len(reqs)), reqs)
}

// DecideBatchAppend is DecideBatch appending into a caller-owned slice, so a
// worker can amortize the response storage across packets. It returns the
// extended slice.
//
//janus:hotpath
func (s *Server) DecideBatchAppend(dst []wire.Response, reqs []wire.Request) []wire.Response {
	for i := range reqs {
		start := s.clock()
		resp := s.Decide(reqs[i])
		d := s.clock().Sub(start)
		s.decisionLatency.RecordDuration(d)
		// The untraced hot path pays only the TraceID == 0 comparison; a
		// sampled request echoes its ID plus the worker-side processing
		// time, and files its span in the local /debug/traces buffer.
		if reqs[i].TraceID != 0 {
			resp.ServerNanos = int64(d)
			//lint:ignore hotalloc trace-sampled branch; the span allocation is amortized by the sampling rate
			s.recordSpan(reqs[i].TraceID, resp.Status, start, d)
		}
		dst = append(dst, resp)
	}
	return dst
}

// recordSpan files the qosserver worker span of one traced decision.
func (s *Server) recordSpan(traceID uint64, status wire.Status, start time.Time, d time.Duration) {
	s.tracer.Record(&trace.Trace{ID: trace.HexID(traceID), Spans: []trace.Span{{
		Hop:   "qosserver",
		Note:  "status=" + status.String(),
		Start: start.UnixNano(),
		Dur:   int64(d),
	}}})
}

// Decide makes the admission decision for one request against the local
// table, fetching the rule from the database on first sight of a key.
// It is exported for in-process deployments and the simulation harness.
//
//janus:hotpath
func (s *Server) Decide(req wire.Request) wire.Response {
	now := s.clock()
	b := s.table.Get(req.Key)
	status := wire.StatusOK
	if b == nil {
		//lint:ignore hotalloc first sight of a key installs its rule; every later decision hits the table
		b = s.installRule(req.Key, now)
	}
	if _, isDefault := s.defaults.Load(req.Key); isDefault {
		status = wire.StatusDefaultRule
		s.defaultHit.Inc()
	}
	cost := req.Cost
	if cost == 0 {
		cost = 1
	}
	allow := b.TryConsume(cost, now)
	if !allow && fpAuditDoubleCredit.Armed() {
		if o := fpAuditDoubleCredit.Eval(); o.Kind != failpoint.Off {
			// The injected conservation bug: an exhausted bucket silently
			// refills to capacity without a ledger grant. Subsequent
			// admissions spend minted credit, which the audit pass MUST
			// report as overspend (see TestAuditCatchesDoubleCredit).
			b.SetCredit(b.Capacity(), now)
		}
	}
	s.decisions.Inc()
	if allow {
		s.allowed.Inc()
		s.audit.Admit(req.Key, cost)
	} else {
		s.denied.Inc()
	}
	return wire.Response{ID: req.ID, Allow: allow, Status: status, TraceID: req.TraceID}
}

// fpAuditDoubleCredit mints credit on an exhausted bucket without telling
// the audit ledger — the canonical conservation bug (a double-applied
// handoff would look exactly like this). It exists to prove the audit
// ledger detects what it claims to detect; it fires only on the deny path,
// so the admission fast path never sees it.
var fpAuditDoubleCredit = failpoint.New("qosserver/audit/double-credit")

// installRule fetches the rule for key from the database (or applies the
// default) and installs its bucket in the local table.
func (s *Server) installRule(key string, now time.Time) *bucket.Bucket {
	b, _ := s.table.GetOrCreate(key, func() *bucket.Bucket {
		rule, isDefault := s.fetchRule(key)
		if isDefault {
			s.defaults.Store(key, struct{}{})
		}
		return s.newBucket(rule, now)
	})
	return b
}

// newBucket builds a bucket honouring the configured refill discipline.
// It is the single chokepoint for wholesale credit grants — first-sight
// install, sync geometry change, handoff install, replication snapshot,
// preload — so the audit ledger's Install hook lives here. (Min-merge
// paths adjust existing buckets via SetCredit and grant nothing.)
func (s *Server) newBucket(rule bucket.Rule, now time.Time) *bucket.Bucket {
	var opts []bucket.Option
	if s.cfg.RefillInterval > 0 {
		opts = append(opts, bucket.WithTickRefill())
	}
	credit := rule.Credit
	if credit > rule.Capacity {
		credit = rule.Capacity
	}
	s.audit.Install(rule.Key, credit, rule.RefillRate)
	return bucket.New(rule, now, opts...)
}

// fetchRule queries the database; isDefault reports that the default rule
// was applied (unknown key or database failure per FailOpen policy).
func (s *Server) fetchRule(key string) (rule bucket.Rule, isDefault bool) {
	if s.cfg.Store == nil {
		return s.defaultRuleFor(key), true
	}
	s.dbQueries.Inc()
	r, found, err := s.cfg.Store.Get(key)
	if err != nil {
		s.dbErrors.Inc()
		s.logger.Printf("qosserver: rule fetch for %q failed: %v", key, err)
		if s.cfg.FailOpen {
			// Admit generously until the database recovers.
			return bucket.Rule{Key: key, RefillRate: 1e12, Capacity: 1e12, Credit: 1e12}, true
		}
		return bucket.DenyAll(key), true
	}
	if !found {
		return s.defaultRuleFor(key), true
	}
	return r, false
}

func (s *Server) defaultRuleFor(key string) bucket.Rule {
	d := s.cfg.DefaultRule
	d.Key = key
	if d.Credit > d.Capacity {
		d.Credit = d.Capacity
	}
	return d
}

// Preload pulls every rule from the database into the local table; used to
// warm a node before admitting traffic.
func (s *Server) Preload() error {
	if s.cfg.Store == nil {
		return nil
	}
	rules, err := s.cfg.Store.LoadAll()
	if err != nil {
		return err
	}
	now := s.clock()
	for _, r := range rules {
		s.table.Put(r.Key, s.newBucket(r, now))
	}
	return nil
}

// housekeeping refills all buckets at the configured interval (§III-C);
// the single-intake path.
func (s *Server) housekeeping() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RefillInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.table.RefillAll(s.clock())
		}
	}
}

// housekeepingStripe is intake id's refill stripe over the aligned table:
// it sweeps shard groups id, id+N, id+2N, ... so concurrent stripes never
// contend on a shard lock — the maintenance plane partitioned like the
// receive plane.
func (s *Server) housekeepingStripe(id int) {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RefillInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			now := s.clock()
			for g := id; g < s.aligned.Groups(); g += len(s.intakes) {
				s.aligned.RefillGroup(g, now)
			}
		}
	}
}

// syncLoop is the system-maintenance thread: it re-queries the database for
// the keys in the local table and updates bucket geometry in place; keys
// deleted from the database are evicted so the next request re-resolves
// them (picking up the default rule).
func (s *Server) syncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.SyncOnce()
		}
	}
}

// SyncOnce performs one rule synchronization pass. Exported so tests and
// orchestration can force a pass without waiting for the ticker.
func (s *Server) SyncOnce() {
	if s.cfg.Store == nil {
		return
	}
	now := s.clock()
	type kv struct {
		key string
		b   *bucket.Bucket
	}
	var entries []kv
	s.table.Range(func(key string, b *bucket.Bucket) bool {
		entries = append(entries, kv{key, b})
		return true
	})
	for _, e := range entries {
		if _, isDefault := s.defaults.Load(e.key); isDefault {
			// A default key may have been added to the database since
			// (a new purchase): install the database rule wholesale,
			// including its initial credit.
			r, found, err := s.cfg.Store.Get(e.key)
			if err != nil {
				s.dbErrors.Inc()
				continue
			}
			if found {
				s.defaults.Delete(e.key)
				s.revokeLeases(e.key)
				s.table.Put(e.key, s.newBucket(r, now))
			}
			continue
		}
		r, found, err := s.cfg.Store.Get(e.key)
		if err != nil {
			s.dbErrors.Inc()
			continue
		}
		if !found {
			// Rule deleted: evict; next request applies the default rule.
			s.revokeLeases(e.key)
			s.table.Delete(e.key)
			continue
		}
		// An edited rule (geometry changed) is installed wholesale with
		// the database's latest values (§III-C), credit included — the
		// user's new purchase takes effect immediately. An unchanged rule
		// is left alone so the database's stale credit (last checkpoint)
		// does not overwrite live consumption.
		if r.RefillRate != e.b.RefillRate() || r.Capacity != e.b.Capacity() {
			// Leases reserve rate on the old bucket object; revoke before
			// the swap so old and new refill streams cannot coexist.
			s.revokeLeases(e.key)
			s.table.Put(e.key, s.newBucket(r, now))
		}
	}
	s.lastSyncNs.Store(s.clock().UnixNano())
}

// SyncAge reports how long ago the last rule-sync pass completed (measured
// from boot before the first pass) and whether periodic sync is configured
// at all — the readiness probe's staleness input.
func (s *Server) SyncAge() (age time.Duration, enabled bool) {
	enabled = s.cfg.SyncInterval > 0 && s.cfg.Store != nil
	return time.Duration(s.clock().UnixNano() - s.lastSyncNs.Load()), enabled
}

// auditLoop runs the periodic conservation pass so overspends reach the
// counter and the flight recorder without anyone scraping /debug/audit.
func (s *Server) auditLoop() {
	defer s.wg.Done()
	every := s.cfg.AuditInterval
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.audit.Audit()
		}
	}
}

// AuditReport runs one on-demand audit pass — the /debug/audit document.
// With auditing disabled the verdict is "disabled".
func (s *Server) AuditReport() audit.Report {
	if s.audit == nil {
		return audit.Report{Verdict: "disabled"}
	}
	return s.audit.Audit()
}

// checkpointLoop periodically writes current credits back to the database.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.CheckpointOnce()
		}
	}
}

// CheckpointOnce performs one credit write-back pass.
func (s *Server) CheckpointOnce() {
	if s.cfg.Store == nil {
		return
	}
	now := s.clock()
	credits := make(map[string]float64)
	s.table.Range(func(key string, b *bucket.Bucket) bool {
		if _, isDefault := s.defaults.Load(key); !isDefault {
			credits[key] = b.Credit(now)
		}
		return true
	})
	if err := s.cfg.Store.CheckpointBatch(credits); err != nil {
		s.dbErrors.Inc()
		s.logger.Printf("qosserver: checkpoint failed: %v", err)
	}
}

// Table exposes the local QoS table (used by HA replication and tests).
func (s *Server) Table() table.Table { return s.table }

// TableLen returns the number of keys resident in the local table.
func (s *Server) TableLen() int { return s.table.Len() }

// Stats returns a snapshot of the operation counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Received:   s.received.Value(),
		Dropped:    s.dropped.Value(),
		Degraded:   s.codelDrops.Value(),
		Malformed:  s.malformed.Value(),
		Decisions:  s.decisions.Value(),
		Allowed:    s.allowed.Value(),
		Denied:     s.denied.Value(),
		DBQueries:  s.dbQueries.Value(),
		DefaultHit: s.defaultHit.Value(),
		DBErrors:   s.dbErrors.Value(),
		SendErrors: s.sendErrors.Value(),
	}
	if s.leases != nil {
		st.LeaseGrants = s.leaseGrants.Value()
		st.LeaseDenies = s.leaseDenies.Value()
		st.LeaseRevokes = s.leaseRevokes.Value()
		st.Leases = s.leases.Holders()
		st.LeasedRate = s.leases.LeasedRate()
	}
	return st
}

// DecisionLatency returns the decision-latency histogram.
func (s *Server) DecisionLatency() *metrics.Histogram { return s.decisionLatency }

// Registry returns the metrics registry carrying the server's counters.
func (s *Server) Registry() *metrics.Registry { return s.registry }

// Tracer returns the trace recorder holding the server's worker spans.
func (s *Server) Tracer() *trace.Recorder { return s.tracer }

// BucketSnapshot is one row of the /debug/qos bucket-table dump.
type BucketSnapshot struct {
	Key        string  `json:"key"`
	Credit     float64 `json:"credit"`
	Capacity   float64 `json:"capacity"`
	RefillRate float64 `json:"refill_rate"`
	// Default marks keys served by the default rule (absent from the
	// database).
	Default bool `json:"default,omitempty"`
	// LeasedRate and LeaseHolders report the refill rate delegated to
	// credit leases on this key and how many routers hold one (zero unless
	// leasing is enabled).
	LeasedRate   float64 `json:"leased_rate,omitempty"`
	LeaseHolders int     `json:"lease_holders,omitempty"`
}

// SnapshotBuckets captures up to limit rows of the live bucket table
// (limit <= 0 means all), with credits brought current to the server clock.
// Iteration order is unspecified — this is a debugging view, not an API.
func (s *Server) SnapshotBuckets(limit int) []BucketSnapshot {
	now := s.clock()
	var out []BucketSnapshot
	s.table.Range(func(key string, b *bucket.Bucket) bool {
		_, isDefault := s.defaults.Load(key)
		row := BucketSnapshot{
			Key:        key,
			Credit:     b.Credit(now),
			Capacity:   b.Capacity(),
			RefillRate: b.RefillRate(),
			Default:    isDefault,
		}
		if s.leases != nil {
			row.LeasedRate, row.LeaseHolders = s.leases.KeyLease(key)
		}
		out = append(out, row)
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Close shuts the server down and waits for all goroutines.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.quit)
		for _, in := range s.intakes {
			if cerr := in.conn.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		if s.ha != nil {
			s.ha.Close()
		}
		s.wg.Wait()
	})
	return err
}
