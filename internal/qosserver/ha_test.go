package qosserver

import (
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/wire"
)

func TestHAReplicationWarmSlave(t *testing.T) {
	db := newDB(t,
		bucket.Rule{Key: "a", RefillRate: 0, Capacity: 10, Credit: 10},
		bucket.Rule{Key: "b", RefillRate: 0, Capacity: 5, Credit: 5},
	)
	master := newServer(t, Config{Store: db, ReplicationAddr: "127.0.0.1:0"})
	if master.ReplicationAddr() == "" {
		t.Fatal("no replication address")
	}
	// Master serves traffic, consuming credits.
	for i := 0; i < 4; i++ {
		master.Decide(wire.Request{Key: "a"})
	}
	master.Decide(wire.Request{Key: "unknown"}) // default key

	slave := newServer(t, Config{Store: db})
	rep := NewReplicator(slave, master.ReplicationAddr(), 10*time.Millisecond)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	// After the synchronous first pull the slave holds the master's state:
	// the two keys the master has actually served ("a" and "unknown").
	if slave.TableLen() != 2 {
		t.Fatalf("slave table len = %d, want 2", slave.TableLen())
	}
	ba := slave.Table().Get("a")
	if ba == nil || ba.Credit(time.Now()) != 6 {
		t.Fatalf("slave credit for a = %v, want 6", ba.Credit(time.Now()))
	}
	// Default flag replicated.
	resp := slave.Decide(wire.Request{Key: "unknown"})
	if resp.Status != wire.StatusDefaultRule {
		t.Fatalf("slave default status = %v", resp.Status)
	}
}

func TestHAContinuousPulls(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "a", RefillRate: 0, Capacity: 100, Credit: 100})
	master := newServer(t, Config{Store: db, ReplicationAddr: "127.0.0.1:0"})
	slave := newServer(t, Config{Store: db})
	rep := NewReplicator(slave, master.ReplicationAddr(), 5*time.Millisecond)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	for i := 0; i < 30; i++ {
		master.Decide(wire.Request{Key: "a"})
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		b := slave.Table().Get("a")
		if b != nil && b.Credit(time.Now()) == 70 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slave never converged (pulls=%d err=%v)", rep.Pulls(), rep.Err())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if rep.Pulls() < 2 {
		t.Fatalf("pulls = %d", rep.Pulls())
	}
}

func TestHAFailoverSlaveTakesOver(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "a", RefillRate: 0, Capacity: 10, Credit: 10})
	master := newServer(t, Config{Store: db, ReplicationAddr: "127.0.0.1:0"})
	for i := 0; i < 8; i++ {
		master.Decide(wire.Request{Key: "a"})
	}
	slave := newServer(t, Config{Store: db})
	rep := NewReplicator(slave, master.ReplicationAddr(), 5*time.Millisecond)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	// Master dies; promotion = stop replication, serve from warm table.
	master.Close()
	rep.Stop()
	allowed := 0
	for i := 0; i < 10; i++ {
		if slave.Decide(wire.Request{Key: "a"}).Allow {
			allowed++
		}
	}
	if allowed != 2 {
		t.Fatalf("promoted slave admitted %d, want 2 (warm credit)", allowed)
	}
}

func TestReplicatorStartFailsWhenMasterDown(t *testing.T) {
	slave := newServer(t, Config{})
	rep := NewReplicator(slave, "127.0.0.1:1", time.Millisecond)
	if err := rep.Start(); err == nil {
		t.Fatal("Start succeeded with no master")
	}
	rep.Stop() // must not hang even though loop never started
}

func TestReplicatorRecordsPullErrors(t *testing.T) {
	db := newDB(t, bucket.Rule{Key: "a", RefillRate: 1, Capacity: 1, Credit: 1})
	master := newServer(t, Config{Store: db, ReplicationAddr: "127.0.0.1:0"})
	slave := newServer(t, Config{Store: db})
	rep := NewReplicator(slave, master.ReplicationAddr(), 2*time.Millisecond)
	if err := rep.Start(); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	master.Close()
	deadline := time.Now().Add(2 * time.Second)
	for rep.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("pull errors not recorded after master death")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
