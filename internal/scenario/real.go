package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/bucket"
	"repro/internal/cluster"
	"repro/internal/failpoint"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// realRules seeds one token-bucket rule per real-tier key, named exactly
// like the keys the scenario generator draws ("<tenant>-z<N>-<rank>"), so
// every request hits a governed bucket and the aggregate Σ(C + r·t) bound
// is exact.
func realRules(sc Scenario) []bucket.Rule {
	var rules []bucket.Rule
	for _, t := range sc.Tenants {
		for rank := 0; rank < t.RealKeys; rank++ {
			rules = append(rules, bucket.Rule{
				Key:        t.Name + "-" + loadgen.ZipfKey(t.RealKeys, rank),
				RefillRate: t.Rate,
				Capacity:   t.Capacity,
				Credit:     t.Capacity,
			})
		}
	}
	return rules
}

// RunReal executes the scenario's real tier: a live loopback cluster
// (gateway LB → routers with batched UDP transport and optional leases →
// one QoS server with SO_REUSEPORT intake, CoDel shedding and the audit
// ledger), the decide path pinned by the worker/decide failpoint so the
// governed capacity is known, and an autoscale.Group scaling the router
// layer on the LB's measured windowed p90. long selects the nightly
// duration. The failpoint is global process state: do not run two real
// tiers concurrently.
func RunReal(ctx context.Context, sc Scenario, seed int64, long bool) (Report, error) {
	p := sc.Real
	clk := loadgen.Clock{}

	c, err := cluster.New(cluster.Config{
		Routers:       p.MinRouters,
		QoSServers:    1,
		QoSWorkers:    1,
		QoSListeners:  2,
		CodelTarget:   20 * time.Millisecond,
		CodelInterval: 50 * time.Millisecond,
		Audit:         true,
		AuditInterval: 50 * time.Millisecond,
		Rules:         realRules(sc),
		Transport: transport.Config{
			Timeout: 150 * time.Millisecond, Retries: 1,
			MaxBatch: 16, MaxLinger: 200 * time.Microsecond,
		},
		Lease: p.Lease,
	})
	if err != nil {
		return Report{}, err
	}
	defer c.Close()

	const decideSite = "qosserver/worker/decide"
	if err := failpoint.Arm(decideSite, failpoint.Action{Kind: failpoint.Delay, Delay: p.DecideDelay}); err != nil {
		return Report{}, err
	}
	defer failpoint.Disarm(decideSite)

	win := NewHistWindow(c.LB.Latency())
	grp, err := autoscale.New(autoscale.Config{
		Min: p.MinRouters, Max: p.MaxRouters,
		HighWater: p.HighWaterMs, LowWater: p.LowWaterMs,
		Metric: func() float64 {
			d, n := win.Advance(0.90)
			if n == 0 {
				return (p.HighWaterMs + p.LowWaterMs) / 2
			}
			return float64(d) / float64(time.Millisecond)
		},
		ScaleOut: func() (int, error) {
			if _, err := c.AddRouter(); err != nil {
				return c.RouterCount(), err
			}
			return c.RouterCount(), nil
		},
		ScaleIn: func() (int, error) {
			if err := c.RemoveRouter(); err != nil {
				return c.RouterCount(), err
			}
			return c.RouterCount(), nil
		},
		Capacity: c.RouterCount,
		Interval: p.EvalInterval, Cooldown: p.Cooldown,
		Clock: clk.Now,
	})
	if err != nil {
		return Report{}, fmt.Errorf("scenario: real autoscale config: %w", err)
	}

	// Drive the control loop on the injected-timer discipline rather than
	// Group.Start's wall ticker, so a future virtual-clock real tier only
	// has to swap clk.
	evalStop := make(chan struct{})
	evalDone := make(chan struct{})
	go func() {
		defer close(evalDone)
		for {
			select {
			case <-evalStop:
				return
			case <-clk.After(p.EvalInterval):
				grp.EvaluateOnce()
			}
		}
	}()

	var loris *lorisPack
	if p.LorisConns > 0 {
		loris = startLoris(clk, c.Endpoint(), p.LorisConns)
	}

	dur := p.Duration
	if long && p.LongDuration > 0 {
		dur = p.LongDuration
	}
	capacity := float64(time.Second) / float64(p.DecideDelay)
	start := clk.Now()
	res := loadgen.RunOpenLoop(ctx, loadgen.OpenLoopConfig{
		Checker:  c.Checker(),
		Keys:     sc.keyGen(seed, true),
		RateFunc: sc.Profile(capacity, dur),
		Duration: dur,
		Workers:  p.Workers,
		Seed:     seed,
		Clock:    clk,
	})

	if loris != nil {
		loris.Stop()
	}
	close(evalStop)
	<-evalDone
	// Let in-flight batches and audit passes land before reading stats.
	<-clk.After(150 * time.Millisecond)
	elapsed := clk.Now().Sub(start).Seconds()

	stats := c.AggregateQoSStats()
	sojourn := metrics.NewHistogram()
	verdict := "ok"
	for _, pair := range c.QoS {
		if pair.Master == nil {
			continue
		}
		sojourn.Merge(pair.Master.SojournTotal())
		if rep := pair.Master.AuditReport(); rep.Verdict != "ok" {
			verdict = rep.Verdict
		}
	}

	rep := Report{
		Scenario:        sc.Name,
		Tier:            "real",
		Seed:            seed,
		DurationSeconds: elapsed,
		Requests:        res.Accepted + res.Rejected + res.Errors,
		Admitted:        stats.Allowed,
		Rejected:        stats.Denied,
		Degraded:        stats.Degraded,
		Dropped:         stats.Dropped,
		Errors:          res.Errors,
		P50SojournMs:    float64(sojourn.Percentile(50)) / float64(time.Millisecond),
		P99SojournMs:    float64(sojourn.Percentile(99)) / float64(time.Millisecond),
		FinalRouters:    c.RouterCount(),
		AuditVerdict:    verdict,
	}

	// Aggregate conservation bound: with every drawn key seeded, admitted
	// can never exceed Σ_keys (C + r·t). Leases move admission to the
	// routers but never mint credit (the audit ledger is the per-key
	// oracle); retransmissions can only double-answer, not double-spend.
	var bound float64
	for _, t := range sc.Tenants {
		bound += float64(t.RealKeys) * (t.Capacity + t.Rate*elapsed)
	}
	if bound > 0 {
		rep.AdmitOverBound = float64(stats.Allowed) / bound
	}

	for _, ev := range grp.History() {
		switch ev.Decision {
		case autoscale.ScaledOut:
			rep.ScaledOut++
		case autoscale.ScaledIn:
			rep.ScaledIn++
		default:
			continue
		}
		rep.ScaleEvents = append(rep.ScaleEvents, ScaleEvent{
			AtSeconds: ev.At.Sub(start).Seconds(),
			Decision:  ev.Decision.String(),
			Capacity:  ev.Capacity,
		})
	}

	sc.RealSLO.Check(&rep)
	return rep, nil
}
