package scenario

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/loadgen"
)

// lorisPack is a flock of slow-loris clients: each opens a TCP connection
// to the HTTP front end, sends an unterminated request, and then trickles
// one header line every few hundred milliseconds — the classic held-socket
// attack. The SLO asserts the cluster keeps serving everyone else.
type lorisPack struct {
	clk  loadgen.Clock
	stop chan struct{}
	wg   sync.WaitGroup
}

// startLoris launches n trickling connections against addr. All timing
// goes through clk, the package's one clock discipline.
func startLoris(clk loadgen.Clock, addr string, n int) *lorisPack {
	l := &lorisPack{clk: clk, stop: make(chan struct{})}
	for i := 0; i < n; i++ {
		l.wg.Add(1)
		go func(i int) {
			defer l.wg.Done()
			d := net.Dialer{Timeout: time.Second}
			conn, err := d.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			if _, err := io.WriteString(conn, "GET /qos?key=loris HTTP/1.1\r\nHost: janus\r\n"); err != nil {
				return
			}
			for j := 0; ; j++ {
				select {
				case <-l.stop:
					return
				case <-l.clk.After(250 * time.Millisecond):
				}
				conn.SetWriteDeadline(l.clk.Now().Add(time.Second))
				if _, err := fmt.Fprintf(conn, "X-Drip-%d-%d: trickle\r\n", i, j); err != nil {
					return
				}
			}
		}(i)
	}
	return l
}

// Stop tears every trickling connection down and waits for the flock.
func (l *lorisPack) Stop() {
	close(l.stop)
	l.wg.Wait()
}
