package scenario

import (
	"math"
	"time"
)

// RateProfile maps elapsed run time to an instantaneous arrival rate in
// requests per second — the loadgen.OpenLoopConfig.RateFunc shape, shared
// verbatim between the DES arrival pump and the real-tier pacer.
type RateProfile func(elapsed time.Duration) float64

// Steady holds a constant rate.
func Steady(rate float64) RateProfile {
	return func(time.Duration) float64 { return rate }
}

// Diurnal oscillates base ± amplitude sinusoidally with the given period,
// starting at the trough so a run always opens under light load and climbs
// into its first peak.
func Diurnal(base, amplitude float64, period time.Duration) RateProfile {
	return func(elapsed time.Duration) float64 {
		phase := 2*math.Pi*float64(elapsed)/float64(period) - math.Pi/2
		r := base + amplitude*math.Sin(phase)
		if r < 0 {
			return 0
		}
		return r
	}
}

// FlashCrowd holds base until at, ramps linearly to base*mult within ramp
// (the 10×-in-≤1s step), holds the peak for hold, then settles at after —
// lower than base, so the post-crowd lull drives scale-in.
func FlashCrowd(base, after, mult float64, at, ramp, hold time.Duration) RateProfile {
	peak := base * mult
	return func(elapsed time.Duration) float64 {
		switch {
		case elapsed < at:
			return base
		case elapsed < at+ramp:
			f := float64(elapsed-at) / float64(ramp)
			return base + (peak-base)*f
		case elapsed < at+ramp+hold:
			return peak
		default:
			return after
		}
	}
}
