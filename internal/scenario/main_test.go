package scenario

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchCollector accumulates every run's report; when the suite passes and
// JANUS_SCENARIOS_JSON names a path, TestMain writes the BENCH document
// there — that is how `make scenarios` refreshes BENCH_scenarios.json.
var benchCollector Collector

func collect(r Report) { benchCollector.Add(r) }

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("JANUS_SCENARIOS_JSON"); path != "" && code == 0 {
		b := Bench{
			Suite:   "scenarios",
			Command: "JANUS_SCENARIOS_JSON=<path> [JANUS_SCENARIOS_REAL=1] go test ./internal/scenario/",
			GOOS:    runtime.GOOS,
			GOARCH:  runtime.GOARCH,
			Date:    time.Now().UTC().Format(time.RFC3339),
			Acceptance: []string{
				"every scenario passes its per-tier SLO budget (slo_pass=true)",
				"DES tier deterministic per seed",
				"flash-crowd provokes >=1 scaled-out followed by >=1 scaled-in",
				"real tier: zero FIFO-full drops and audit verdict ok under CoDel",
			},
			Notes: "DES tier always runs; real-cluster tier requires JANUS_SCENARIOS_REAL=1 (nightly adds JANUS_SCENARIO_BUDGET=long)",
		}
		if err := benchCollector.WriteJSON(path, b); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: writing %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}
