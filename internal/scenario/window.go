package scenario

import (
	"time"

	"repro/internal/metrics"
)

// HistWindow turns a cumulative latency histogram into a windowed quantile:
// each Advance call reports the quantile of only the observations recorded
// since the previous call. The autoscaler needs this because cumulative
// quantiles never come back down after a burst — a scale-in decision would
// otherwise wait forever for history to wash out.
type HistWindow struct {
	h         *metrics.Histogram
	bounds    []int64
	prev      []int64
	prevTotal int64
}

// NewHistWindow wraps h. Bounds span 50µs to 60s in ×1.5 steps, matching
// the log-bucket resolution of the underlying histogram.
func NewHistWindow(h *metrics.Histogram) *HistWindow {
	var bounds []int64
	for b := int64(50 * time.Microsecond); b <= int64(time.Minute); b += b / 2 {
		bounds = append(bounds, b)
	}
	return &HistWindow{h: h, bounds: bounds, prev: make([]int64, len(bounds))}
}

// Advance closes the current window: it returns the q-quantile of the
// observations recorded since the previous Advance and how many there were
// (0 observations returns 0 duration). Not safe for concurrent use.
func (w *HistWindow) Advance(q float64) (time.Duration, int64) {
	cur := w.h.CumulativeCounts(w.bounds)
	total := w.h.Count()
	n := total - w.prevTotal
	prev := w.prev
	w.prev = cur
	w.prevTotal = total
	if n <= 0 {
		return 0, 0
	}
	target := int64(float64(n)*q + 0.5)
	if target < 1 {
		target = 1
	}
	for i := range cur {
		if cur[i]-prev[i] >= target {
			return time.Duration(w.bounds[i]), n
		}
	}
	return time.Duration(w.bounds[len(w.bounds)-1]), n
}
