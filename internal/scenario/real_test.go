package scenario

import (
	"context"
	"os"
	"testing"
)

// realTierEnabled gates the live-cluster tier: each scenario boots a full
// loopback deployment and runs for seconds under pinned service rates, so
// it is opt-in (JANUS_SCENARIOS_REAL=1; `make scenarios` sets it, the
// nightly job adds JANUS_SCENARIO_BUDGET=long for the full budget).
func realTierEnabled(t *testing.T) bool {
	t.Helper()
	if os.Getenv("JANUS_SCENARIOS_REAL") == "" {
		t.Skip("real-cluster tier skipped; set JANUS_SCENARIOS_REAL=1")
	}
	return true
}

func longBudget() bool { return os.Getenv("JANUS_SCENARIO_BUDGET") == "long" }

// TestRealScenariosMeetSLO runs every scenario against the live cluster.
// Scenarios run sequentially: the decide-delay failpoint is process-global.
func TestRealScenariosMeetSLO(t *testing.T) {
	realTierEnabled(t)
	if testing.Short() {
		t.Skip("real tier not run with -short")
	}
	seed := desSeed(t)
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep, err := RunReal(context.Background(), sc, seed, longBudget())
			if err != nil {
				t.Fatal(err)
			}
			collect(rep)
			t.Logf("%s/real: req=%d admit=%d reject=%d degraded=%d dropped=%d errors=%d over=%.3f p99=%.1fms out=%d in=%d routers=%d audit=%s",
				sc.Name, rep.Requests, rep.Admitted, rep.Rejected, rep.Degraded,
				rep.Dropped, rep.Errors, rep.AdmitOverBound, rep.P99SojournMs,
				rep.ScaledOut, rep.ScaledIn, rep.FinalRouters, rep.AuditVerdict)
			if !rep.SLOPass {
				t.Errorf("SLO violations: %v", rep.Violations)
			}
			if rep.Requests == 0 {
				t.Fatal("scenario generated no load")
			}
		})
	}
}
