// Package scenario composes loadgen, the DES engine, autoscale, and the
// in-process cluster into named, seeded, SLO-checked end-to-end workload
// runs — the million-user regression harness of ROADMAP's scenario suite.
//
// Each scenario describes one adversarial traffic shape (Zipfian skew under
// hot-set churn, diurnal sine, 10× flash crowd, multi-tenant rule classes,
// slow-loris clients) and runs in two tiers:
//
//   - DES tier (RunDES): the workload at simulated millions-of-users scale
//     on the virtual clock — deterministic per seed (the simclock analyzer
//     enforces that no wall-clock or global-rand call sneaks in), with an
//     exact per-key C + r·t conservation oracle and an autoscaled router
//     layer driven by a windowed latency quantile.
//   - Real tier (RunReal): the same shape at max real throughput against a
//     live loopback cluster — gateway LB, routers with lease tables and
//     batched UDP transport, QoS servers with SO_REUSEPORT intake, CoDel
//     shedding and the online audit ledger — with autoscale.Group wired to
//     the LB's measured p90 so scale-out/scale-in events are part of the
//     asserted trace.
//
// Every run emits a Report (admit accuracy, degraded/drop/error rates, p99
// sojourn, the scale-event sequence, audit verdict) that is checked against
// the scenario's per-tier SLO budget and appended to BENCH_scenarios.json.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// Tenant is one rule class: a population of keys sharing a token-bucket
// rule, receiving a fixed share of the generated traffic.
type Tenant struct {
	Name string
	// Weight is the tenant's share of arrivals (relative).
	Weight float64
	// Users is the DES-tier key population.
	Users int
	// RealKeys is the number of rules seeded in the real tier (small, so
	// cluster boot stays fast; skew makes the hot subset what matters).
	RealKeys int
	// Rate and Capacity are the per-key token-bucket parameters (r, C).
	Rate     float64
	Capacity float64
}

// DESParams sizes the DES tier of a scenario.
type DESParams struct {
	// Duration is the virtual run length.
	Duration time.Duration
	// ServiceMean is the mean (exponential) router service demand.
	ServiceMean time.Duration
	// LorisService is the service demand of a slow-loris job.
	LorisService time.Duration
	// WorkersPerRouter and QueueLimit shape each simulated router node.
	WorkersPerRouter int
	QueueLimit       int
	// CapacityPerRouter is the nominal throughput of one router node in
	// requests/second; Scenario.Profile rates are expressed against it.
	CapacityPerRouter float64
	// Autoscale band: windowed p90 job latency in milliseconds.
	MinRouters, MaxRouters  int
	HighWaterMs, LowWaterMs float64
	EvalInterval, Cooldown  time.Duration
}

// RealParams sizes the real-cluster tier of a scenario.
type RealParams struct {
	// DecideDelay pins the QoS decide path via the worker/decide
	// failpoint, fixing the governed capacity at 1s/DecideDelay.
	DecideDelay time.Duration
	// Duration is the short (push CI) run length; LongDuration the
	// nightly budget.
	Duration     time.Duration
	LongDuration time.Duration
	// Workers is the open-loop client concurrency.
	Workers int
	// Lease enables credit leasing end to end.
	Lease bool
	// LorisConns is the number of adversarial held connections.
	LorisConns int
	// Autoscale band: windowed LB p90 in milliseconds.
	MinRouters, MaxRouters  int
	HighWaterMs, LowWaterMs float64
	EvalInterval, Cooldown  time.Duration
}

// Scenario is one named workload.
type Scenario struct {
	Name string
	Desc string
	// Tenants define the rule classes (at least one).
	Tenants []Tenant
	// ZipfS is the Zipf exponent of key popularity (> 1).
	ZipfS float64
	// RotateEvery rotates the Zipf hot set every N draws (0 = no churn).
	RotateEvery int64
	// LorisFrac is the DES-tier fraction of arrivals that are slow-loris
	// jobs (the real tier models loris as held connections instead).
	LorisFrac float64
	// Profile shapes the arrival rate, parameterized by the capacity of
	// one router/server node and the tier's run duration, so both tiers
	// stress the same multiples on their own time base.
	Profile func(capacity float64, dur time.Duration) RateProfile

	DES     DESParams
	Real    RealParams
	DESSLO  SLO
	RealSLO SLO
}

// keyGen builds the scenario's key stream. Real-tier draws come from the
// small seeded-rule population; DES draws from the full user population.
// Keys are "<tenant>-z<N>-<rank>", so tenant populations never collide and
// rule lookup is a prefix match.
func (sc Scenario) keyGen(seed int64, real bool) loadgen.KeyGen {
	comps := make([]loadgen.TierComponent, 0, len(sc.Tenants))
	for i, t := range sc.Tenants {
		n := t.Users
		if real {
			n = t.RealKeys
		}
		inner := loadgen.NewZipfGen(seed+int64(i)*104729+1, sc.ZipfS, n, sc.RotateEvery, 0)
		comps = append(comps, loadgen.TierComponent{
			Gen:    &loadgen.PrefixGen{Prefix: t.Name + "-", Inner: inner},
			Weight: t.Weight,
		})
	}
	if len(comps) == 1 {
		return comps[0].Gen
	}
	g, err := loadgen.NewTieredGen(seed, comps)
	if err != nil {
		// Scenarios are static declarations; a bad tenant table is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("scenario %s: %v", sc.Name, err))
	}
	return g
}

// ruleFor resolves the token-bucket rule class of a key by tenant prefix.
func (sc Scenario) ruleFor(key string) (rate, capacity float64) {
	for _, t := range sc.Tenants {
		if strings.HasPrefix(key, t.Name+"-") {
			return t.Rate, t.Capacity
		}
	}
	return 0, 0 // unknown prefix: deny, like the zero default rule
}

// registry holds the named scenarios. Rates are multiples of one node's
// capacity; budget calibration notes live in DESIGN.md §15.
var registry = []Scenario{
	{
		Name:        "zipf-churn",
		Desc:        "Zipfian popularity (s=1.3) over 2M users with the hot set rotating every 20k draws; steady 0.7× load; leases on in the real tier",
		Tenants:     []Tenant{{Name: "user", Weight: 1, Users: 2_000_000, RealKeys: 64, Rate: 2, Capacity: 5}},
		ZipfS:       1.3,
		RotateEvery: 20_000,
		Profile:     func(cap float64, _ time.Duration) RateProfile { return Steady(0.7 * cap) },
		DES: DESParams{
			Duration: 30 * time.Second, ServiceMean: time.Millisecond,
			WorkersPerRouter: 4, QueueLimit: 400, CapacityPerRouter: 4000,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 8, LowWaterMs: 3,
			EvalInterval: 500 * time.Millisecond, Cooldown: time.Second,
		},
		Real: RealParams{
			DecideDelay: 2 * time.Millisecond, Duration: 6 * time.Second, LongDuration: 20 * time.Second,
			Workers: 32, Lease: true,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 18, LowWaterMs: 6,
			EvalInterval: 250 * time.Millisecond, Cooldown: 500 * time.Millisecond,
		},
		// No MinHotUtilization here: under churn a key is hot only for its
		// rotation window, so full-run utilization of the C + r·T bound is
		// structurally far below 1 (the bound is what matters).
		DESSLO: SLO{
			MaxAdmitOverBound: 1.02,
			MaxDegradedFrac:   0.01, MaxP99SojournMs: 25,
		},
		RealSLO: SLO{
			MaxAdmitOverBound: 1.05, MaxErrorFrac: 0.10, MaxP99SojournMs: 120,
			RequireZeroDrops: true, RequireAuditOK: true,
		},
	},
	{
		Name:    "diurnal",
		Desc:    "sinusoidal day/night pacing swinging 0.2×–1.4× one node's capacity across three cycles; autoscale follows the wave",
		Tenants: []Tenant{{Name: "user", Weight: 1, Users: 500_000, RealKeys: 64, Rate: 50, Capacity: 100}},
		ZipfS:   1.2,
		Profile: func(cap float64, dur time.Duration) RateProfile { return Diurnal(0.8*cap, 0.6*cap, dur/3) },
		DES: DESParams{
			Duration: 30 * time.Second, ServiceMean: time.Millisecond,
			WorkersPerRouter: 4, QueueLimit: 400, CapacityPerRouter: 4000,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 8, LowWaterMs: 3,
			EvalInterval: 500 * time.Millisecond, Cooldown: time.Second,
		},
		Real: RealParams{
			DecideDelay: 2 * time.Millisecond, Duration: 7 * time.Second, LongDuration: 21 * time.Second,
			Workers: 64,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 18, LowWaterMs: 6,
			EvalInterval: 250 * time.Millisecond, Cooldown: 500 * time.Millisecond,
		},
		DESSLO: SLO{
			MaxAdmitOverBound: 1.02, MaxDegradedFrac: 0.10, MaxP99SojournMs: 150,
			MinScaledOut: 1, MinScaledIn: 1, RequireOutBeforeIn: true,
		},
		RealSLO: SLO{
			MaxAdmitOverBound: 1.05, MaxErrorFrac: 0.35, MaxP99SojournMs: 250,
			MinScaledOut: 1, RequireZeroDrops: true, RequireAuditOK: true,
		},
	},
	{
		Name:    "flash-crowd",
		Desc:    "10× step within 0.5s on top of 0.5× base load, held for seconds, then a lull; scale-out during the crowd, scale-in after",
		Tenants: []Tenant{{Name: "user", Weight: 1, Users: 1_000_000, RealKeys: 64, Rate: 50, Capacity: 100}},
		ZipfS:   1.2,
		Profile: func(cap float64, dur time.Duration) RateProfile {
			// The ramp stays a fixed 500ms — the 10×-in-≤1s step is the
			// point — while onset and hold scale with the run budget.
			return FlashCrowd(0.5*cap, 0.25*cap, 10, dur/4, 500*time.Millisecond, dur*3/20)
		},
		DES: DESParams{
			Duration: 30 * time.Second, ServiceMean: time.Millisecond,
			WorkersPerRouter: 4, QueueLimit: 400, CapacityPerRouter: 4000,
			MinRouters: 1, MaxRouters: 4, HighWaterMs: 8, LowWaterMs: 3,
			EvalInterval: 500 * time.Millisecond, Cooldown: time.Second,
		},
		Real: RealParams{
			DecideDelay: 2 * time.Millisecond, Duration: 8 * time.Second, LongDuration: 24 * time.Second,
			Workers: 96,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 18, LowWaterMs: 6,
			EvalInterval: 250 * time.Millisecond, Cooldown: 500 * time.Millisecond,
		},
		DESSLO: SLO{
			MaxAdmitOverBound: 1.02, MaxDegradedFrac: 0.35, MaxP99SojournMs: 250,
			MinScaledOut: 1, MinScaledIn: 1, RequireOutBeforeIn: true,
		},
		// The error budget is loose by design: an open loop driving 10× the
		// governed capacity is supposed to see client timeouts; the hard
		// promises during the crowd are conservation, zero FIFO drops, the
		// audit verdict, and the scale-out→scale-in trace.
		RealSLO: SLO{
			MaxAdmitOverBound: 1.05, MaxErrorFrac: 0.60, MaxP99SojournMs: 300,
			MinScaledOut: 1, MinScaledIn: 1, RequireOutBeforeIn: true,
			RequireZeroDrops: true, RequireAuditOK: true,
		},
	},
	{
		Name: "multi-tenant",
		Desc: "free/paid/enterprise rule classes with distinct rates sharing one deployment at 0.75× load; per-class entitlement must hold under skew",
		Tenants: []Tenant{
			{Name: "ent", Weight: 2, Users: 10_000, RealKeys: 8, Rate: 20, Capacity: 50},
			{Name: "paid", Weight: 3, Users: 100_000, RealKeys: 16, Rate: 2, Capacity: 10},
			{Name: "free", Weight: 5, Users: 1_000_000, RealKeys: 32, Rate: 0.2, Capacity: 2},
		},
		ZipfS:   1.3,
		Profile: func(cap float64, _ time.Duration) RateProfile { return Steady(0.75 * cap) },
		DES: DESParams{
			Duration: 30 * time.Second, ServiceMean: time.Millisecond,
			WorkersPerRouter: 4, QueueLimit: 400, CapacityPerRouter: 4000,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 8, LowWaterMs: 3,
			EvalInterval: 500 * time.Millisecond, Cooldown: time.Second,
		},
		Real: RealParams{
			DecideDelay: 2 * time.Millisecond, Duration: 6 * time.Second, LongDuration: 18 * time.Second,
			Workers: 48,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 18, LowWaterMs: 6,
			EvalInterval: 250 * time.Millisecond, Cooldown: 500 * time.Millisecond,
		},
		DESSLO: SLO{
			MaxAdmitOverBound: 1.02, MinHotUtilization: 0.80,
			MaxDegradedFrac: 0.02, MaxP99SojournMs: 50,
		},
		RealSLO: SLO{
			MaxAdmitOverBound: 1.05, MaxErrorFrac: 0.15, MaxP99SojournMs: 150,
			RequireZeroDrops: true, RequireAuditOK: true,
		},
	},
	{
		Name:      "slow-loris",
		Desc:      "adversarial stragglers: 3% of DES jobs demand 60× service / 24 held trickling connections in the real tier; normal-traffic tail must stay bounded, autoscale absorbs the stragglers",
		Tenants:   []Tenant{{Name: "user", Weight: 1, Users: 200_000, RealKeys: 64, Rate: 50, Capacity: 100}},
		ZipfS:     1.2,
		LorisFrac: 0.03,
		Profile:   func(cap float64, _ time.Duration) RateProfile { return Steady(0.55 * cap) },
		DES: DESParams{
			Duration: 30 * time.Second, ServiceMean: time.Millisecond, LorisService: 60 * time.Millisecond,
			WorkersPerRouter: 4, QueueLimit: 400, CapacityPerRouter: 4000,
			MinRouters: 1, MaxRouters: 4, HighWaterMs: 8, LowWaterMs: 3,
			EvalInterval: 500 * time.Millisecond, Cooldown: time.Second,
		},
		Real: RealParams{
			DecideDelay: 2 * time.Millisecond, Duration: 6 * time.Second, LongDuration: 18 * time.Second,
			Workers: 32, LorisConns: 24,
			MinRouters: 1, MaxRouters: 3, HighWaterMs: 18, LowWaterMs: 6,
			EvalInterval: 250 * time.Millisecond, Cooldown: 500 * time.Millisecond,
		},
		DESSLO: SLO{
			MaxAdmitOverBound: 1.02, MaxDegradedFrac: 0.05, MaxP99SojournMs: 250,
			MinScaledOut: 1,
		},
		RealSLO: SLO{
			MaxAdmitOverBound: 1.05, MaxErrorFrac: 0.10, MaxP99SojournMs: 120,
			RequireZeroDrops: true, RequireAuditOK: true,
		},
	},
}

// Names lists the registered scenarios in declaration order.
func Names() []string {
	out := make([]string, len(registry))
	for i, sc := range registry {
		out[i] = sc.Name
	}
	return out
}

// Get returns the named scenario.
func Get(name string) (Scenario, error) {
	for _, sc := range registry {
		if sc.Name == name {
			return sc, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(sorted, ", "))
}

// All returns every registered scenario in declaration order.
func All() []Scenario {
	return append([]Scenario(nil), registry...)
}
