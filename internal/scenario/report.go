package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// ScaleEvent is one autoscale action in a run's trace, in virtual (DES) or
// wall (real) seconds since run start.
type ScaleEvent struct {
	AtSeconds float64 `json:"at_seconds"`
	Decision  string  `json:"decision"`
	Capacity  int     `json:"capacity"`
}

// Report is the machine-readable outcome of one scenario run — the record
// appended to BENCH_scenarios.json and checked against the scenario's SLO.
type Report struct {
	Scenario        string  `json:"scenario"`
	Tier            string  `json:"tier"` // "des" or "real"
	Seed            int64   `json:"seed"`
	DurationSeconds float64 `json:"duration_seconds"`

	Requests int64 `json:"requests"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	// Degraded counts requests answered by shedding (CoDel degraded
	// replies in the real tier; queue-full default answers in the DES).
	Degraded int64 `json:"degraded"`
	// Dropped counts requests LOST (real tier FIFO-full datagram loss);
	// with CoDel active the budget for this is zero.
	Dropped int64 `json:"dropped"`
	Errors  int64 `json:"errors"`

	// AdmitOverBound is admission accuracy against the paper's C + r·t
	// conservation bound: the worst per-key ratio in the DES (exact
	// per-key accounting), the aggregate ratio in the real tier (the
	// per-key oracle there is the server's own audit ledger). Accurate
	// admission keeps it at or below 1.
	AdmitOverBound float64 `json:"admit_over_bound"`
	// HotKeyUtilization is the mean admitted/bound over keys whose demand
	// met or exceeded their bound — how much of the entitled rate hot
	// keys actually received (DES tier only).
	HotKeyUtilization float64 `json:"hot_key_utilization,omitempty"`

	P50SojournMs float64 `json:"p50_sojourn_ms"`
	P99SojournMs float64 `json:"p99_sojourn_ms"`

	ScaledOut    int          `json:"scaled_out"`
	ScaledIn     int          `json:"scaled_in"`
	FinalRouters int          `json:"final_routers"`
	ScaleEvents  []ScaleEvent `json:"scale_events,omitempty"`

	AuditVerdict string `json:"audit_verdict,omitempty"`

	SLOPass    bool     `json:"slo_pass"`
	Violations []string `json:"violations,omitempty"`
}

// SLO is a per-scenario budget. Zero-valued fields are not checked, except
// the booleans, which opt specific requirements in.
type SLO struct {
	// MaxAdmitOverBound caps AdmitOverBound (admission accuracy).
	MaxAdmitOverBound float64
	// MinHotUtilization floors HotKeyUtilization.
	MinHotUtilization float64
	// MaxDegradedFrac caps Degraded/Requests.
	MaxDegradedFrac float64
	// MaxErrorFrac caps Errors/Requests.
	MaxErrorFrac float64
	// MaxP99SojournMs caps the p99 sojourn.
	MaxP99SojournMs float64
	// MinScaledOut / MinScaledIn floor the autoscale event counts.
	MinScaledOut int
	MinScaledIn  int
	// RequireOutBeforeIn asserts the first ScaledOut precedes the last
	// ScaledIn — the crowd-then-recovery sequence.
	RequireOutBeforeIn bool
	// RequireZeroDrops asserts no FIFO-full datagram loss.
	RequireZeroDrops bool
	// RequireAuditOK asserts the server-side audit verdict is "ok".
	RequireAuditOK bool
}

// Check applies the budget to r, records the outcome on the report, and
// returns the violations (nil when the run passes).
func (s SLO) Check(r *Report) []string {
	var v []string
	frac := func(n int64) float64 {
		if r.Requests == 0 {
			return 0
		}
		return float64(n) / float64(r.Requests)
	}
	if s.MaxAdmitOverBound > 0 && r.AdmitOverBound > s.MaxAdmitOverBound {
		v = append(v, fmt.Sprintf("admit_over_bound %.3f > %.3f", r.AdmitOverBound, s.MaxAdmitOverBound))
	}
	if s.MinHotUtilization > 0 && r.HotKeyUtilization < s.MinHotUtilization {
		v = append(v, fmt.Sprintf("hot_key_utilization %.3f < %.3f", r.HotKeyUtilization, s.MinHotUtilization))
	}
	if s.MaxDegradedFrac > 0 && frac(r.Degraded) > s.MaxDegradedFrac {
		v = append(v, fmt.Sprintf("degraded_frac %.3f > %.3f", frac(r.Degraded), s.MaxDegradedFrac))
	}
	if s.MaxErrorFrac > 0 && frac(r.Errors) > s.MaxErrorFrac {
		v = append(v, fmt.Sprintf("error_frac %.3f > %.3f", frac(r.Errors), s.MaxErrorFrac))
	}
	if s.MaxP99SojournMs > 0 && r.P99SojournMs > s.MaxP99SojournMs {
		v = append(v, fmt.Sprintf("p99_sojourn %.1fms > %.1fms", r.P99SojournMs, s.MaxP99SojournMs))
	}
	if s.MinScaledOut > 0 && r.ScaledOut < s.MinScaledOut {
		v = append(v, fmt.Sprintf("scaled_out %d < %d", r.ScaledOut, s.MinScaledOut))
	}
	if s.MinScaledIn > 0 && r.ScaledIn < s.MinScaledIn {
		v = append(v, fmt.Sprintf("scaled_in %d < %d", r.ScaledIn, s.MinScaledIn))
	}
	if s.RequireOutBeforeIn {
		firstOut, lastIn := -1, -1
		for i, ev := range r.ScaleEvents {
			if ev.Decision == "scaled-out" && firstOut < 0 {
				firstOut = i
			}
			if ev.Decision == "scaled-in" {
				lastIn = i
			}
		}
		if firstOut < 0 || lastIn < 0 || firstOut > lastIn {
			v = append(v, "scale sequence missing out-before-in")
		}
	}
	if s.RequireZeroDrops && r.Dropped != 0 {
		v = append(v, fmt.Sprintf("dropped %d != 0", r.Dropped))
	}
	if s.RequireAuditOK && r.AuditVerdict != "ok" {
		v = append(v, fmt.Sprintf("audit verdict %q", r.AuditVerdict))
	}
	r.Violations = v
	r.SLOPass = len(v) == 0
	return v
}

// Bench is the on-disk BENCH_scenarios.json document.
type Bench struct {
	Suite      string   `json:"suite"`
	Command    string   `json:"command"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Date       string   `json:"date"`
	Acceptance []string `json:"acceptance"`
	Notes      string   `json:"notes"`
	Scenarios  []Report `json:"scenarios"`
}

// Collector accumulates reports across scenario runs for a single Bench
// document; safe for concurrent Add.
type Collector struct {
	mu      sync.Mutex
	reports []Report
}

// Add appends one run's report.
func (c *Collector) Add(r Report) {
	c.mu.Lock()
	c.reports = append(c.reports, r)
	c.mu.Unlock()
}

// Reports returns a copy of what has been collected.
func (c *Collector) Reports() []Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Report(nil), c.reports...)
}

// WriteJSON renders the Bench document (header fields supplied by the
// caller, which knows the date and platform) to path, indented.
func (c *Collector) WriteJSON(path string, b Bench) error {
	b.Scenarios = c.Reports()
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
