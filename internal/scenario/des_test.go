package scenario

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"
)

// desSeed is the canonical suite seed; JANUS_SCENARIO_SEED overrides it.
func desSeed(t testing.TB) int64 {
	if v := os.Getenv("JANUS_SCENARIO_SEED"); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad JANUS_SCENARIO_SEED %q: %v", v, err)
		}
		return s
	}
	return 1
}

// TestDESScenariosMeetSLO is the fast CI gate: every named scenario runs
// its DES tier at millions-of-users scale and must pass its SLO budget.
func TestDESScenariosMeetSLO(t *testing.T) {
	seed := desSeed(t)
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rep := RunDES(sc, seed)
			collect(rep)
			t.Logf("%s/des: req=%d admit=%d reject=%d degraded=%d over=%.3f hot=%.3f p99=%.1fms out=%d in=%d routers=%d",
				sc.Name, rep.Requests, rep.Admitted, rep.Rejected, rep.Degraded,
				rep.AdmitOverBound, rep.HotKeyUtilization, rep.P99SojournMs,
				rep.ScaledOut, rep.ScaledIn, rep.FinalRouters)
			if !rep.SLOPass {
				t.Errorf("SLO violations: %v", rep.Violations)
			}
			if rep.Requests == 0 {
				t.Fatal("scenario generated no load")
			}
		})
	}
}

// TestDESDeterministicPerSeed asserts the DES tier's reproducibility
// contract: the same seed yields byte-identical reports, and a different
// seed yields a different trace.
func TestDESDeterministicPerSeed(t *testing.T) {
	for _, name := range []string{"zipf-churn", "flash-crowd"} {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		a, _ := json.Marshal(RunDES(sc, 7))
		b, _ := json.Marshal(RunDES(sc, 7))
		if string(a) != string(b) {
			t.Errorf("%s: same seed produced different reports:\n%s\n%s", name, a, b)
		}
		c, _ := json.Marshal(RunDES(sc, 8))
		if string(a) == string(c) {
			t.Errorf("%s: different seeds produced identical reports", name)
		}
	}
}

// TestDESFlashCrowdScaleSequence pins the acceptance criterion explicitly:
// the flash crowd provokes at least one ScaledOut followed by at least one
// ScaledIn, in that order.
func TestDESFlashCrowdScaleSequence(t *testing.T) {
	sc, err := Get("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	rep := RunDES(sc, desSeed(t))
	if rep.ScaledOut < 1 || rep.ScaledIn < 1 {
		t.Fatalf("scale events out=%d in=%d, want >=1 each (trace %+v)",
			rep.ScaledOut, rep.ScaledIn, rep.ScaleEvents)
	}
	firstOut, lastIn := -1, -1
	for i, ev := range rep.ScaleEvents {
		if ev.Decision == "scaled-out" && firstOut < 0 {
			firstOut = i
		}
		if ev.Decision == "scaled-in" {
			lastIn = i
		}
	}
	if firstOut > lastIn {
		t.Fatalf("scale-in preceded every scale-out: %+v", rep.ScaleEvents)
	}
}

func TestGetUnknownScenario(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if len(Names()) < 5 {
		t.Fatalf("registry too small: %v", Names())
	}
}
