package scenario

import (
	"math"
	"sort"
	"time"

	"repro/internal/autoscale"
	"repro/internal/des"
	"repro/internal/metrics"
)

// desAcct is the exact per-key token-bucket ledger of the DES tier — the
// conservation oracle. Credits refill lazily at decision time on the
// virtual clock, so admitted can never exceed C + r·t without a bug.
type desAcct struct {
	credit    float64
	lastNs    int64
	rate, cap float64
	admitted  int64
	requested int64
}

// RunDES executes the scenario's DES tier: a non-homogeneous Poisson
// arrival pump shaped by the scenario profile feeds an autoscaled layer of
// multi-server router stations on the virtual clock, with every admission
// decided against the per-key ledger. The run is strictly single-threaded
// and seeded — the same seed reproduces the identical Report.
func RunDES(sc Scenario, seed int64) Report {
	p := sc.DES
	eng := des.NewEngine(seed)
	rng := eng.Rand()
	keys := sc.keyGen(seed, false)
	profile := sc.Profile(p.CapacityPerRouter, p.Duration)
	until := des.FromDuration(p.Duration)

	// Normal-job latency feeds both the SLO tail and (windowed) the
	// autoscale metric; loris jobs are excluded so stragglers distort the
	// tail only through the queueing they inflict on everyone else.
	lat := metrics.NewHistogram()
	win := NewHistWindow(lat)

	newStation := func() *des.Station {
		return des.NewStation(eng, p.WorkersPerRouter, p.QueueLimit)
	}
	live := make([]*des.Station, 0, p.MaxRouters)
	for i := 0; i < p.MinRouters; i++ {
		live = append(live, newStation())
	}

	grp, err := autoscale.New(autoscale.Config{
		Min: p.MinRouters, Max: p.MaxRouters,
		HighWater: p.HighWaterMs, LowWater: p.LowWaterMs,
		Metric: func() float64 {
			d, n := win.Advance(0.90)
			if n == 0 {
				// An empty window is no evidence either way: report the
				// middle of the band so the group holds.
				return (p.HighWaterMs + p.LowWaterMs) / 2
			}
			return float64(d) / float64(time.Millisecond)
		},
		ScaleOut: func() (int, error) {
			live = append(live, newStation())
			return len(live), nil
		},
		ScaleIn: func() (int, error) {
			// The removed station drains: queued jobs still complete, it
			// just receives no new arrivals.
			live = live[:len(live)-1]
			return len(live), nil
		},
		Capacity: func() int { return len(live) },
		Interval: p.EvalInterval, Cooldown: p.Cooldown,
		Clock: func() time.Time { return time.Unix(0, int64(eng.Now())) },
	})
	if err != nil {
		panic("scenario: bad DES autoscale config: " + err.Error())
	}

	accounts := make(map[string]*desAcct)
	account := func(key string) *desAcct {
		a := accounts[key]
		if a == nil {
			r, c := sc.ruleFor(key)
			a = &desAcct{credit: c, rate: r, cap: c}
			accounts[key] = a
		}
		return a
	}
	var requests, admitted, rejected, degraded int64
	decide := func(a *desAcct) bool {
		now := int64(eng.Now())
		a.credit = math.Min(a.cap, a.credit+a.rate*float64(now-a.lastNs)/float64(time.Second))
		a.lastNs = now
		if a.credit >= 1 {
			a.credit--
			a.admitted++
			return true
		}
		return false
	}

	arrive := func() {
		requests++
		key := keys.Next()
		a := account(key)
		a.requested++
		loris := sc.LorisFrac > 0 && rng.Float64() < sc.LorisFrac
		svc := eng.Exp(des.FromDuration(p.ServiceMean))
		if loris {
			svc = des.FromDuration(p.LorisService)
		}
		st := live[rng.Intn(len(live))]
		t0 := eng.Now()
		ok := st.Submit(svc, func() {
			if !loris {
				lat.RecordDuration(time.Duration(eng.Now() - t0))
			}
			if decide(a) {
				admitted++
			} else {
				rejected++
			}
		})
		if !ok {
			// Full waiting room: the node answers with the shed default —
			// the DES analogue of a CoDel degraded reply. No credit moves.
			degraded++
		}
	}

	// Arrival pump: exponential gaps at the profile's instantaneous rate.
	var pump func()
	pump = func() {
		r := profile(time.Duration(eng.Now()))
		if r <= 0 {
			eng.After(des.FromDuration(50*time.Millisecond), pump)
			return
		}
		eng.After(eng.Exp(des.FromSeconds(1/r)), func() {
			arrive()
			pump()
		})
	}
	pump()

	// Control loop: EvaluateOnce as a recurring virtual event (Start would
	// spin a wall-clock ticker, which has no business inside a DES).
	var tick func()
	tick = func() {
		grp.EvaluateOnce()
		eng.After(des.FromDuration(p.EvalInterval), tick)
	}
	eng.After(des.FromDuration(p.EvalInterval), tick)

	eng.Run(until)

	rep := Report{
		Scenario:        sc.Name,
		Tier:            "des",
		Seed:            seed,
		DurationSeconds: eng.Now().Seconds(),
		Requests:        requests,
		Admitted:        admitted,
		Rejected:        rejected,
		Degraded:        degraded,
		P50SojournMs:    float64(lat.Percentile(50)) / float64(time.Millisecond),
		P99SojournMs:    float64(lat.Percentile(99)) / float64(time.Millisecond),
		FinalRouters:    len(live),
	}

	// Conservation oracle: iterate keys in sorted order so the float
	// accumulation — and therefore the Report — is identical per seed.
	T := eng.Now().Seconds()
	names := make([]string, 0, len(accounts))
	for k := range accounts {
		names = append(names, k)
	}
	sort.Strings(names)
	var hotSum float64
	var hotN int
	for _, k := range names {
		a := accounts[k]
		bound := a.cap + a.rate*T
		if bound <= 0 {
			continue
		}
		over := float64(a.admitted) / bound
		if over > rep.AdmitOverBound {
			rep.AdmitOverBound = over
		}
		if float64(a.requested) >= bound {
			hotSum += over
			hotN++
		}
	}
	if hotN > 0 {
		rep.HotKeyUtilization = hotSum / float64(hotN)
	}

	for _, ev := range grp.History() {
		switch ev.Decision {
		case autoscale.ScaledOut:
			rep.ScaledOut++
		case autoscale.ScaledIn:
			rep.ScaledIn++
		default:
			continue
		}
		rep.ScaleEvents = append(rep.ScaleEvents, ScaleEvent{
			AtSeconds: float64(ev.At.UnixNano()) / float64(time.Second),
			Decision:  ev.Decision.String(),
			Capacity:  ev.Capacity,
		})
	}

	sc.DESSLO.Check(&rep)
	return rep
}
