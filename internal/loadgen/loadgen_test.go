package loadgen

import (
	"context"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestClosedLoopFixedRequestCount(t *testing.T) {
	var calls atomic.Int64
	checker := CheckerFunc(func(key string) (bool, error) {
		calls.Add(1)
		return true, nil
	})
	res := RunClosedLoop(context.Background(), ClosedLoopConfig{
		Checker:     checker,
		Keys:        &FixedGen{Key: "k"},
		Concurrency: 4,
		Requests:    1000,
	})
	if calls.Load() != 1000 {
		t.Fatalf("calls = %d", calls.Load())
	}
	if res.Accepted != 1000 || res.Rejected != 0 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Latency.Count() != 1000 {
		t.Fatalf("latency count = %d", res.Latency.Count())
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestClosedLoopDurationBound(t *testing.T) {
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	start := time.Now()
	res := RunClosedLoop(context.Background(), ClosedLoopConfig{
		Checker:     checker,
		Keys:        &FixedGen{Key: "k"},
		Concurrency: 2,
		Duration:    50 * time.Millisecond,
	})
	if el := time.Since(start); el < 50*time.Millisecond || el > 2*time.Second {
		t.Fatalf("elapsed = %v", el)
	}
	if res.Accepted == 0 {
		t.Fatal("no requests completed")
	}
}

func TestClosedLoopSplitsVerdicts(t *testing.T) {
	var n atomic.Int64
	checker := CheckerFunc(func(string) (bool, error) {
		return n.Add(1)%2 == 0, nil
	})
	res := RunClosedLoop(context.Background(), ClosedLoopConfig{
		Checker:  checker,
		Keys:     &FixedGen{Key: "k"},
		Requests: 100,
	})
	if res.Accepted != 50 || res.Rejected != 50 {
		t.Fatalf("accepted/rejected = %d/%d", res.Accepted, res.Rejected)
	}
	if res.AcceptedLatency.Count() != 50 || res.RejectedLatency.Count() != 50 {
		t.Fatal("latency split wrong")
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	checker := CheckerFunc(func(string) (bool, error) { return false, errors.New("boom") })
	res := RunClosedLoop(context.Background(), ClosedLoopConfig{
		Checker:  checker,
		Keys:     &FixedGen{Key: "k"},
		Requests: 10,
	})
	if res.Errors != 10 || res.Latency.Count() != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestClosedLoopContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	checker := CheckerFunc(func(string) (bool, error) {
		if n.Add(1) > 10 {
			cancel()
		}
		return true, nil
	})
	res := RunClosedLoop(ctx, ClosedLoopConfig{
		Checker: checker,
		Keys:    &FixedGen{Key: "k"},
		// No request bound; duration long — cancel must stop it.
		Duration:    10 * time.Second,
		Concurrency: 2,
	})
	if res.Elapsed > 5*time.Second {
		t.Fatalf("cancel did not stop the run: %v", res.Elapsed)
	}
}

func TestClosedLoopTrackSeries(t *testing.T) {
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	res := RunClosedLoop(context.Background(), ClosedLoopConfig{
		Checker:     checker,
		Keys:        &FixedGen{Key: "k"},
		Requests:    50,
		TrackSeries: true,
	})
	sum := 0.0
	for _, v := range res.AcceptedSeries.Values() {
		sum += v
	}
	if sum != 50 {
		t.Fatalf("series total = %v", sum)
	}
}

func TestOpenLoopApproximatesRate(t *testing.T) {
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	res := RunOpenLoop(context.Background(), OpenLoopConfig{
		Checker:  checker,
		Keys:     &FixedGen{Key: "k"},
		Rate:     500,
		Duration: 500 * time.Millisecond,
	})
	got := float64(res.Accepted) / res.Elapsed.Seconds()
	if math.Abs(got-500)/500 > 0.25 {
		t.Fatalf("rate = %.1f, want ~500", got)
	}
}

func TestOpenLoopNoise(t *testing.T) {
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	res := RunOpenLoop(context.Background(), OpenLoopConfig{
		Checker:       checker,
		Keys:          &FixedGen{Key: "k"},
		Rate:          300,
		NoiseFraction: 0.5,
		Duration:      300 * time.Millisecond,
		Seed:          42,
	})
	if res.Accepted == 0 {
		t.Fatal("no requests issued")
	}
}

func TestHTTPChecker(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "boom" {
			http.Error(w, "nope", http.StatusInternalServerError)
			return
		}
		if key == "yes" {
			io.WriteString(w, "true")
		} else {
			io.WriteString(w, "false")
		}
	}))
	defer srv.Close()
	c := NewHTTPChecker(srv.Listener.Addr().String())
	if ok, err := c.Check("yes"); err != nil || !ok {
		t.Fatalf("yes: %v %v", ok, err)
	}
	if ok, err := c.Check("no"); err != nil || ok {
		t.Fatalf("no: %v %v", ok, err)
	}
	if _, err := c.Check("boom"); err == nil {
		t.Fatal("500 not surfaced")
	}
	// Unreachable endpoint errors.
	dead := NewHTTPChecker("127.0.0.1:1")
	if _, err := dead.Check("k"); err == nil {
		t.Fatal("unreachable endpoint succeeded")
	}
}

func TestResultThroughputZeroElapsed(t *testing.T) {
	var r Result
	if r.Throughput() != 0 {
		t.Fatal("zero-elapsed throughput not 0")
	}
}
