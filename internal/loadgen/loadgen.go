package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
)

// Clock supplies time to a run. The zero value reads the real wall clock;
// experiments inject deterministic functions so paced runs are reproducible
// (the simclock analyzer bans raw time.Now in this package).
type Clock struct {
	// NowFunc returns the current time; nil means real time.
	NowFunc func() time.Time
	// AfterFunc mirrors time.After; nil means the real timer.
	AfterFunc func(time.Duration) <-chan time.Time
}

// Now reads the injected clock (or the wall clock when none is injected).
// Exported so scenario harnesses built on other packages can share one
// clock discipline — and one pair of wall-clock fallbacks — with the
// generator.
func (c Clock) Now() time.Time {
	if c.NowFunc != nil {
		return c.NowFunc()
	}
	//lint:ignore simclock fallback to the wall clock when no clock is injected
	return time.Now()
}

// After mirrors time.After on the injected clock.
func (c Clock) After(d time.Duration) <-chan time.Time {
	if c.AfterFunc != nil {
		return c.AfterFunc(d)
	}
	//lint:ignore simclock fallback to the real timer when no clock is injected
	return time.After(d)
}

func (c Clock) now() time.Time                      { return c.Now() }
func (c Clock) after(d time.Duration) <-chan time.Time { return c.After(d) }

// Checker performs one admission check; implementations include the HTTP
// client (against an LB or a router) and in-process deployments.
type Checker interface {
	Check(key string) (allowed bool, err error)
}

// CheckerFunc adapts a function to Checker.
type CheckerFunc func(key string) (bool, error)

// Check implements Checker.
func (f CheckerFunc) Check(key string) (bool, error) { return f(key) }

// HTTPChecker issues GET /qos?key=... against a Janus HTTP endpoint.
type HTTPChecker struct {
	// Endpoint is "host:port" of the LB or router.
	Endpoint string
	// Client is the underlying HTTP client; nil uses a pooled default.
	Client *http.Client
}

// NewHTTPChecker builds a checker with a connection-pooled client.
func NewHTTPChecker(endpoint string) *HTTPChecker {
	return &HTTPChecker{
		Endpoint: endpoint,
		Client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 512,
				IdleConnTimeout:     30 * time.Second,
			},
			Timeout: 10 * time.Second,
		},
	}
}

// Check implements Checker.
func (h *HTTPChecker) Check(key string) (bool, error) {
	c := h.Client
	if c == nil {
		c = http.DefaultClient
	}
	resp, err := c.Get("http://" + h.Endpoint + wire.FormatHTTPQuery(wire.Request{Key: key, Cost: 1}))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("loadgen: HTTP %d: %s", resp.StatusCode, body)
	}
	return wire.ParseHTTPBody(string(body))
}

// Result aggregates one load-generation run.
type Result struct {
	// Latency is the per-request round-trip histogram (nanoseconds).
	Latency *metrics.Histogram
	// AcceptedLatency / RejectedLatency split by verdict (Fig 13b).
	AcceptedLatency *metrics.Histogram
	RejectedLatency *metrics.Histogram
	// Accepted/Rejected/Errors count outcomes.
	Accepted int64
	Rejected int64
	Errors   int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// AcceptedSeries/RejectedSeries are per-second rate traces (Fig 13a);
	// nil unless requested.
	AcceptedSeries *metrics.TimeSeries
	RejectedSeries *metrics.TimeSeries
}

// Throughput returns completed (non-error) requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Accepted+r.Rejected) / r.Elapsed.Seconds()
}

// ClosedLoopConfig drives N concurrent workers, each issuing its next
// request as soon as the previous completes — ab's concurrency model.
type ClosedLoopConfig struct {
	// Checker is the system under test.
	Checker Checker
	// Keys generates the key stream (each worker gets a Clone).
	Keys KeyGen
	// Concurrency is the number of workers (ab -c).
	Concurrency int
	// Requests is the total number of requests (ab -n); 0 means run until
	// Duration elapses.
	Requests int64
	// Duration bounds the run when Requests is 0.
	Duration time.Duration
	// TrackSeries enables per-second accepted/rejected traces.
	TrackSeries bool
	// Clock supplies time; the zero value uses real time.
	Clock Clock
}

// RunClosedLoop executes a closed-loop benchmark run.
func RunClosedLoop(ctx context.Context, cfg ClosedLoopConfig) Result {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	res := Result{
		Latency:         metrics.NewHistogram(),
		AcceptedLatency: metrics.NewHistogram(),
		RejectedLatency: metrics.NewHistogram(),
	}
	start := cfg.Clock.now()
	if cfg.TrackSeries {
		res.AcceptedSeries = metrics.NewTimeSeries(start, time.Second)
		res.RejectedSeries = metrics.NewTimeSeries(start, time.Second)
	}
	var remaining int64 = cfg.Requests
	var remMu sync.Mutex
	take := func() bool {
		if cfg.Requests == 0 {
			return true
		}
		remMu.Lock()
		defer remMu.Unlock()
		if remaining <= 0 {
			return false
		}
		remaining--
		return true
	}
	deadline := time.Time{}
	if cfg.Requests == 0 {
		d := cfg.Duration
		if d <= 0 {
			d = time.Second
		}
		deadline = start.Add(d)
	}

	var accepted, rejected, errors metrics.Counter
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := cfg.Keys.Clone(w)
			for {
				if ctx.Err() != nil {
					return
				}
				if !deadline.IsZero() && cfg.Clock.now().After(deadline) {
					return
				}
				if !take() {
					return
				}
				key := keys.Next()
				t0 := cfg.Clock.now()
				ok, err := cfg.Checker.Check(key)
				lat := cfg.Clock.now().Sub(t0)
				if err != nil {
					errors.Inc()
					continue
				}
				res.Latency.RecordDuration(lat)
				if ok {
					accepted.Inc()
					res.AcceptedLatency.RecordDuration(lat)
					if res.AcceptedSeries != nil {
						res.AcceptedSeries.Observe(cfg.Clock.now(), 1)
					}
				} else {
					rejected.Inc()
					res.RejectedLatency.RecordDuration(lat)
					if res.RejectedSeries != nil {
						res.RejectedSeries.Observe(cfg.Clock.now(), 1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.Accepted = accepted.Value()
	res.Rejected = rejected.Value()
	res.Errors = errors.Value()
	res.Elapsed = cfg.Clock.now().Sub(start)
	return res
}

// OpenLoopConfig paces requests at a target rate independent of response
// latency — the Fig 13a client ("an access rate of 130 requests per second,
// with an intentionally added noise").
type OpenLoopConfig struct {
	Checker Checker
	Keys    KeyGen
	// Rate is the average request rate per second.
	Rate float64
	// RateFunc, when non-nil, supplies the instantaneous target rate as a
	// function of elapsed run time, overriding Rate — scenario profiles
	// (diurnal sine, flash-crowd step) plug in here. It is sampled before
	// every arrival, so a 10× step takes effect within one inter-arrival
	// gap. Values <= 0 pause the stream for 10ms and re-sample.
	RateFunc func(elapsed time.Duration) float64
	// NoiseFraction perturbs each inter-arrival gap uniformly by
	// ±NoiseFraction (0 disables; the paper adds intentional noise).
	NoiseFraction float64
	// Duration is the run length.
	Duration time.Duration
	// Workers issues requests concurrently so a slow response does not
	// stall the pacing (default 8).
	Workers int
	// Seed seeds the noise source.
	Seed int64
	// TrackSeries enables per-second accepted/rejected traces.
	TrackSeries bool
	// Clock supplies time; the zero value uses real time.
	Clock Clock
}

// RunOpenLoop executes a paced benchmark run.
func RunOpenLoop(ctx context.Context, cfg OpenLoopConfig) Result {
	if cfg.Rate <= 0 && cfg.RateFunc == nil {
		cfg.Rate = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	res := Result{
		Latency:         metrics.NewHistogram(),
		AcceptedLatency: metrics.NewHistogram(),
		RejectedLatency: metrics.NewHistogram(),
	}
	start := cfg.Clock.now()
	if cfg.TrackSeries {
		res.AcceptedSeries = metrics.NewTimeSeries(start, time.Second)
		res.RejectedSeries = metrics.NewTimeSeries(start, time.Second)
	}
	var accepted, rejected, errors metrics.Counter

	jobs := make(chan string, cfg.Workers*4)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for key := range jobs {
				t0 := cfg.Clock.now()
				ok, err := cfg.Checker.Check(key)
				lat := cfg.Clock.now().Sub(t0)
				if err != nil {
					errors.Inc()
					continue
				}
				res.Latency.RecordDuration(lat)
				if ok {
					accepted.Inc()
					res.AcceptedLatency.RecordDuration(lat)
					if res.AcceptedSeries != nil {
						res.AcceptedSeries.Observe(cfg.Clock.now(), 1)
					}
				} else {
					rejected.Inc()
					res.RejectedLatency.RecordDuration(lat)
					if res.RejectedSeries != nil {
						res.RejectedSeries.Observe(cfg.Clock.now(), 1)
					}
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	keys := cfg.Keys
	deadline := start.Add(cfg.Duration)
	next := start
pacing:
	for cfg.Clock.now().Before(deadline) {
		if ctx.Err() != nil {
			break
		}
		rate := cfg.Rate
		if cfg.RateFunc != nil {
			rate = cfg.RateFunc(cfg.Clock.now().Sub(start))
			if rate <= 0 {
				// The profile paused the stream: idle briefly, re-sample.
				select {
				case <-cfg.Clock.after(10 * time.Millisecond):
				case <-ctx.Done():
					break pacing
				}
				next = cfg.Clock.now()
				continue
			}
		}
		gap := time.Duration(float64(time.Second) / rate)
		jitter := 1.0
		if cfg.NoiseFraction > 0 {
			jitter = 1 + (rng.Float64()*2-1)*cfg.NoiseFraction
		}
		next = next.Add(time.Duration(float64(gap) * jitter))
		if d := next.Sub(cfg.Clock.now()); d > 0 {
			select {
			case <-cfg.Clock.after(d):
			case <-ctx.Done():
				break pacing
			}
		}
		select {
		case jobs <- keys.Next():
		default:
			// All workers busy and the queue is full: the request is
			// effectively dropped by the client, as ab does under overload.
			errors.Inc()
		}
	}
	close(jobs)
	wg.Wait()
	res.Accepted = accepted.Value()
	res.Rejected = rejected.Value()
	res.Errors = errors.Value()
	res.Elapsed = cfg.Clock.now().Sub(start)
	return res
}
