package loadgen

import (
	"fmt"
	"strings"
)

// FromSpec builds a key generator from a textual specification, as used by
// the janus-ab command line:
//
//	uuid            random UUIDs (Fig 6 population a)
//	timestamp       random date-time strings (population b)
//	words           unique English-like words (population c)
//	seq             sequential numbers from the paper's start (population d)
//	seq:N           sequential numbers from N
//	fixed:K         the single key K
//	cycle:a,b,c     cycle through the listed keys
func FromSpec(spec string, seed int64) (KeyGen, error) {
	switch {
	case spec == "uuid":
		return NewUUIDGen(seed), nil
	case spec == "timestamp":
		return NewTimestampGen(seed), nil
	case spec == "words":
		return NewWordGen(seed), nil
	case spec == "seq":
		return NewSequentialGen(PaperSequentialStart), nil
	case strings.HasPrefix(spec, "seq:"):
		var start int64
		if _, err := fmt.Sscanf(spec, "seq:%d", &start); err != nil {
			return nil, fmt.Errorf("loadgen: bad seq spec %q", spec)
		}
		return NewSequentialGen(start), nil
	case strings.HasPrefix(spec, "fixed:"):
		key := strings.TrimPrefix(spec, "fixed:")
		if key == "" {
			return nil, fmt.Errorf("loadgen: empty fixed key")
		}
		return &FixedGen{Key: key}, nil
	case strings.HasPrefix(spec, "cycle:"):
		keys := strings.Split(strings.TrimPrefix(spec, "cycle:"), ",")
		clean := keys[:0]
		for _, k := range keys {
			if k != "" {
				clean = append(clean, k)
			}
		}
		if len(clean) == 0 {
			return nil, fmt.Errorf("loadgen: empty cycle list")
		}
		return NewCyclicGen(clean), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown key spec %q (uuid|timestamp|words|seq[:N]|fixed:K|cycle:a,b,c)", spec)
	}
}
