package loadgen

import (
	"fmt"
	"strconv"
	"strings"
)

// FromSpec builds a key generator from a textual specification, as used by
// the janus-ab command line:
//
//	uuid            random UUIDs (Fig 6 population a)
//	timestamp       random date-time strings (population b)
//	words           unique English-like words (population c)
//	seq             sequential numbers from the paper's start (population d)
//	seq:N           sequential numbers from N
//	fixed:K         the single key K
//	cycle:a,b,c     cycle through the listed keys
//	zipf:S:N        Zipfian popularity, exponent S (>1), over N keys
//	                ("z<N>-<rank>"; different N never collide)
//	tiered:S@W,...  weighted mixture: each component is any of the above
//	                specs suffixed with @weight (e.g.
//	                "tiered:zipf:1.3:100@8,uuid@2" draws 80%/20%); tiered
//	                cannot nest
func FromSpec(spec string, seed int64) (KeyGen, error) {
	switch {
	case spec == "uuid":
		return NewUUIDGen(seed), nil
	case spec == "timestamp":
		return NewTimestampGen(seed), nil
	case spec == "words":
		return NewWordGen(seed), nil
	case spec == "seq":
		return NewSequentialGen(PaperSequentialStart), nil
	case strings.HasPrefix(spec, "seq:"):
		var start int64
		if _, err := fmt.Sscanf(spec, "seq:%d", &start); err != nil {
			return nil, fmt.Errorf("loadgen: bad seq spec %q", spec)
		}
		return NewSequentialGen(start), nil
	case strings.HasPrefix(spec, "fixed:"):
		key := strings.TrimPrefix(spec, "fixed:")
		if key == "" {
			return nil, fmt.Errorf("loadgen: empty fixed key")
		}
		return &FixedGen{Key: key}, nil
	case strings.HasPrefix(spec, "cycle:"):
		keys := strings.Split(strings.TrimPrefix(spec, "cycle:"), ",")
		clean := keys[:0]
		for _, k := range keys {
			if k != "" {
				clean = append(clean, k)
			}
		}
		if len(clean) == 0 {
			return nil, fmt.Errorf("loadgen: empty cycle list")
		}
		return NewCyclicGen(clean), nil
	case strings.HasPrefix(spec, "zipf:"):
		s, n, err := parseZipfSpec(spec)
		if err != nil {
			return nil, err
		}
		return NewZipfGen(seed, s, n, 0, 0), nil
	case strings.HasPrefix(spec, "tiered:"):
		return parseTieredSpec(spec, seed)
	default:
		return nil, fmt.Errorf("loadgen: unknown key spec %q (uuid|timestamp|words|seq[:N]|fixed:K|cycle:a,b,c|zipf:S:N|tiered:spec@w,...)", spec)
	}
}

// parseZipfSpec parses "zipf:<s>:<N>" with s > 1 and N >= 1.
func parseZipfSpec(spec string) (s float64, n int, err error) {
	parts := strings.Split(strings.TrimPrefix(spec, "zipf:"), ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("loadgen: bad zipf spec %q (want zipf:<s>:<N>)", spec)
	}
	s, err = strconv.ParseFloat(parts[0], 64)
	if err != nil || s <= 1 {
		return 0, 0, fmt.Errorf("loadgen: zipf exponent %q must be a number > 1", parts[0])
	}
	n, err = strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return 0, 0, fmt.Errorf("loadgen: zipf population %q must be an integer >= 1", parts[1])
	}
	return s, n, nil
}

// parseTieredSpec parses "tiered:<spec>@<weight>,...". Components are
// separated by commas; a comma inside a component (a cycle list) is
// supported because segments accumulate until one ends in a parsable
// "@<weight>" tail. Keys containing '@' are not supported inside tiered.
func parseTieredSpec(spec string, seed int64) (KeyGen, error) {
	body := strings.TrimPrefix(spec, "tiered:")
	if body == "" {
		return nil, fmt.Errorf("loadgen: empty tiered list")
	}
	var comps []TierComponent
	pending := ""
	for _, seg := range strings.Split(body, ",") {
		if pending != "" {
			pending += "," + seg
		} else {
			pending = seg
		}
		at := strings.LastIndex(pending, "@")
		if at < 0 {
			continue // weight still to come in a later segment
		}
		w, err := strconv.ParseFloat(pending[at+1:], 64)
		if err != nil {
			continue // '@' belonged to the key text; keep accumulating
		}
		if w <= 0 {
			return nil, fmt.Errorf("loadgen: tiered weight %q must be > 0", pending[at+1:])
		}
		sub := pending[:at]
		if strings.HasPrefix(sub, "tiered:") {
			return nil, fmt.Errorf("loadgen: tiered specs cannot nest (%q)", sub)
		}
		// Derive a distinct deterministic seed per component so identical
		// sub-specs still draw independent streams.
		gen, err := FromSpec(sub, seed+int64(len(comps))*104729+1)
		if err != nil {
			return nil, fmt.Errorf("loadgen: tiered component %q: %w", sub, err)
		}
		comps = append(comps, TierComponent{Gen: gen, Weight: w})
		pending = ""
	}
	if pending != "" {
		return nil, fmt.Errorf("loadgen: tiered component %q has no @weight", pending)
	}
	return NewTieredGen(seed, comps)
}
