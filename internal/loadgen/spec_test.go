package loadgen

import "testing"

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec  string
		first string // expected first key ("" = don't check)
		ok    bool
	}{
		{"uuid", "", true},
		{"timestamp", "", true},
		{"words", "", true},
		{"seq", "1500000001", true},
		{"seq:42", "42", true},
		{"fixed:1.2.3.4", "1.2.3.4", true},
		{"cycle:a,b,c", "a", true},
		{"cycle:a,,b", "a", true}, // empties filtered
		{"seq:notanumber", "", false},
		{"fixed:", "", false},
		{"cycle:", "", false},
		{"bogus", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		gen, err := FromSpec(c.spec, 1)
		if (err == nil) != c.ok {
			t.Errorf("FromSpec(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err != nil {
			continue
		}
		if got := gen.Next(); c.first != "" && got != c.first {
			t.Errorf("FromSpec(%q).Next() = %q, want %q", c.spec, got, c.first)
		}
	}
}

func TestFromSpecDeterministicAcrossCalls(t *testing.T) {
	a, _ := FromSpec("uuid", 9)
	b, _ := FromSpec("uuid", 9)
	if a.Next() != b.Next() {
		t.Fatal("same seed differs")
	}
}
