package loadgen

import (
	"regexp"
	"strconv"
	"testing"
)

func TestUUIDGenFormat(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{8}-[0-9a-f]{4}-4[0-9a-f]{3}-[89ab][0-9a-f]{3}-[0-9a-f]{12}$`)
	g := NewUUIDGen(1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		u := g.Next()
		if !re.MatchString(u) {
			t.Fatalf("bad UUID %q", u)
		}
		if seen[u] {
			t.Fatalf("duplicate UUID %q", u)
		}
		seen[u] = true
	}
}

func TestUUIDGenDeterministic(t *testing.T) {
	a, b := NewUUIDGen(7), NewUUIDGen(7)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewUUIDGen(8)
	if NewUUIDGen(7).Next() == c.Next() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestTimestampGenFormat(t *testing.T) {
	re := regexp.MustCompile(`^\d{4}-\d{2}-\d{2}-\d{2}-\d{2}-\d{2}$`)
	g := NewTimestampGen(1)
	for i := 0; i < 1000; i++ {
		s := g.Next()
		if !re.MatchString(s) {
			t.Fatalf("bad timestamp %q", s)
		}
		year, _ := strconv.Atoi(s[:4])
		if year < 2000 || year >= 2030 {
			t.Fatalf("year out of range: %q", s)
		}
	}
}

func TestWordGenUniqueAndWordLike(t *testing.T) {
	re := regexp.MustCompile(`^[a-z]{2,}$`)
	g := NewWordGen(1)
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		w := g.Next()
		if !re.MatchString(w) {
			t.Fatalf("non-word key %q", w)
		}
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
}

func TestSequentialGen(t *testing.T) {
	g := NewSequentialGen(PaperSequentialStart)
	if g.Next() != "1500000001" || g.Next() != "1500000002" {
		t.Fatal("sequence wrong")
	}
}

func TestSequentialCloneDisjoint(t *testing.T) {
	g := NewSequentialGen(100)
	c1 := g.Clone(1)
	c2 := g.Clone(2)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		for _, k := range []string{c1.Next(), c2.Next()} {
			if seen[k] {
				t.Fatalf("clones overlap at %q", k)
			}
			seen[k] = true
		}
	}
}

func TestFixedGen(t *testing.T) {
	g := &FixedGen{Key: "1.2.3.4"}
	if g.Next() != "1.2.3.4" || g.Clone(5).Next() != "1.2.3.4" {
		t.Fatal("fixed gen broken")
	}
}

func TestCyclicGen(t *testing.T) {
	g := NewCyclicGen([]string{"a", "b", "c"})
	got := []string{g.Next(), g.Next(), g.Next(), g.Next()}
	want := []string{"a", "b", "c", "a"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle = %v", got)
		}
	}
	c := g.Clone(1)
	if c.Next() != "b" {
		t.Fatal("clone did not start at offset")
	}
}

func TestUnique(t *testing.T) {
	keys := Unique(NewUUIDGen(3), 500)
	if len(keys) != 500 {
		t.Fatalf("len = %d", len(keys))
	}
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			t.Fatalf("duplicate %q", k)
		}
		seen[k] = true
	}
}

func TestClonesIndependent(t *testing.T) {
	for name, gen := range map[string]KeyGen{
		"uuid":      NewUUIDGen(1),
		"timestamp": NewTimestampGen(1),
		"word":      NewWordGen(1),
	} {
		c1 := gen.Clone(1)
		c2 := gen.Clone(2)
		same := 0
		for i := 0; i < 100; i++ {
			if c1.Next() == c2.Next() {
				same++
			}
		}
		if same > 5 {
			t.Errorf("%s: clones produced %d/100 identical keys", name, same)
		}
	}
}
