package loadgen

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestFromSpecZipfTiered(t *testing.T) {
	cases := []struct {
		spec string
		ok   bool
	}{
		// zipf accept
		{"zipf:1.3:1000", true},
		{"zipf:2:1", true},
		{"zipf:1.0001:500000", true},
		// zipf reject
		{"zipf:1:10", false},    // exponent must be > 1
		{"zipf:0.5:10", false},  // exponent must be > 1
		{"zipf:1.3:0", false},   // population >= 1
		{"zipf:1.3:-5", false},  // population >= 1
		{"zipf:1.3", false},     // missing population
		{"zipf:x:10", false},    // non-numeric exponent
		{"zipf:1.3:x", false},   // non-numeric population
		{"zipf:1.3:10:9", false},
		// tiered accept
		{"tiered:zipf:1.3:100@8,uuid@2", true},
		{"tiered:uuid@1", true},
		{"tiered:cycle:a,b,c@3,fixed:k@1", true}, // commas inside cycle
		{"tiered:seq:5@0.5,words@0.5", true},
		// tiered reject
		{"tiered:", false},
		{"tiered:uuid@0", false},               // weight must be > 0
		{"tiered:uuid@-1", false},              // weight must be > 0
		{"tiered:uuid", false},                 // no @weight
		{"tiered:zipf:1.3:10@2,uuid", false},   // trailing component without weight
		{"tiered:tiered:uuid@1@1", false},      // nesting forbidden
		{"tiered:bogus@1", false},              // bad sub-spec
		{"tiered:zipf:1:10@1", false},          // bad zipf inside tiered
	}
	for _, c := range cases {
		gen, err := FromSpec(c.spec, 1)
		if (err == nil) != c.ok {
			t.Errorf("FromSpec(%q): err = %v, want ok=%v", c.spec, err, c.ok)
			continue
		}
		if err == nil && gen.Next() == "" {
			t.Errorf("FromSpec(%q): empty first key", c.spec)
		}
	}
}

func TestZipfGenSkewed(t *testing.T) {
	g := NewZipfGen(1, 1.3, 1000, 0, 0)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next()]++
	}
	// Rank 0 must dominate: under s=1.3 it should collect well over 10%
	// of the mass, which a uniform draw over 1000 keys (0.1%) never does.
	if top := counts[ZipfKey(1000, 0)]; top < 2000 {
		t.Fatalf("rank-0 count = %d/20000, want heavy skew", top)
	}
	// And the stream must not collapse to a handful of keys.
	if len(counts) < 50 {
		t.Fatalf("only %d distinct keys", len(counts))
	}
}

func TestZipfGenDeterministicPerSeed(t *testing.T) {
	a := NewZipfGen(7, 1.3, 100, 0, 0)
	b := NewZipfGen(7, 1.3, 100, 0, 0)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestZipfGenChurnRotatesHotSet(t *testing.T) {
	// With rotation every 1000 draws and step 50, the dominant key of the
	// first window must differ from the dominant key of a later window.
	g := NewZipfGen(3, 1.5, 200, 1000, 50)
	hot := func() string {
		counts := map[string]int{}
		for i := 0; i < 1000; i++ {
			counts[g.Next()]++
		}
		best, n := "", 0
		for k, c := range counts {
			if c > n {
				best, n = k, c
			}
		}
		return best
	}
	first := hot()
	_ = hot() // advance a window
	third := hot()
	if first == third {
		t.Fatalf("hot key %q did not rotate under churn", first)
	}
}

func TestZipfKeysDisjointAcrossPopulations(t *testing.T) {
	// Keys embed the population size, so generators over different N never
	// collide — required when tiers mix zipf components of different sizes.
	if ZipfKey(100, 5) == ZipfKey(1000, 5) {
		t.Fatal("zipf keys collide across populations")
	}
}

func TestTieredGenRespectsWeights(t *testing.T) {
	gen, err := FromSpec("tiered:fixed:paid@8,fixed:free@2", 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[gen.Next()]++
	}
	frac := float64(counts["paid"]) / 10000
	if frac < 0.75 || frac > 0.85 {
		t.Fatalf("paid fraction = %.3f, want ~0.8", frac)
	}
}

func TestPrefixGen(t *testing.T) {
	g := &PrefixGen{Prefix: "t0-", Inner: NewSequentialGen(1)}
	if got := g.Next(); got != "t0-1" {
		t.Fatalf("Next() = %q", got)
	}
	c := g.Clone(1)
	if !strings.HasPrefix(c.Next(), "t0-") {
		t.Fatal("clone lost prefix")
	}
}

// TestCloneIndependenceProperty is the satellite-required property test:
// for every randomized spec, two clones must never correlate streams, and
// the parent rebuilt from the same seed must reproduce the same clones.
func TestCloneIndependenceProperty(t *testing.T) {
	specs := []string{
		"uuid",
		"timestamp",
		"words",
		"zipf:1.3:100000",
		"tiered:zipf:1.3:5000@8,uuid@2",
		"tiered:uuid@1,timestamp@1,words@1",
	}
	const draws = 400
	for _, spec := range specs {
		for seed := int64(1); seed <= 3; seed++ {
			parent, err := FromSpec(spec, seed)
			if err != nil {
				t.Fatalf("FromSpec(%q): %v", spec, err)
			}
			c1 := parent.Clone(1)
			c2 := parent.Clone(2)
			same := 0
			for i := 0; i < draws; i++ {
				if c1.Next() == c2.Next() {
					same++
				}
			}
			// Zipfian clones share a hot set by design, so identical draws
			// happen; correlated streams would match at nearly every
			// position. Demand at least 20% divergence.
			if same > draws*8/10 {
				t.Errorf("%s seed %d: clones matched %d/%d positions", spec, seed, same, draws)
			}
			// Determinism: rebuilding parent+clone from the same seed must
			// replay the identical stream.
			parent2, _ := FromSpec(spec, seed)
			r1 := parent2.Clone(1)
			ref, _ := FromSpec(spec, seed)
			r2 := ref.Clone(1)
			for i := 0; i < 50; i++ {
				if r1.Next() != r2.Next() {
					t.Errorf("%s seed %d: same-seed clone streams diverged", spec, seed)
					break
				}
			}
		}
	}
}

func TestOpenLoopRateFuncStep(t *testing.T) {
	// A 10x step in RateFunc must show up in achieved throughput: the
	// second half of the run must complete several times the requests of
	// the first half.
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	res := RunOpenLoop(context.Background(), OpenLoopConfig{
		Checker: checker,
		Keys:    &FixedGen{Key: "k"},
		RateFunc: func(elapsed time.Duration) float64 {
			if elapsed < 200*time.Millisecond {
				return 100
			}
			return 1000
		},
		Duration:    400 * time.Millisecond,
		TrackSeries: true,
	})
	if res.Accepted == 0 {
		t.Fatal("no requests issued")
	}
	// ~20 requests in the first phase, ~200 in the second.
	if res.Accepted < 100 {
		t.Fatalf("accepted = %d, step rate not applied", res.Accepted)
	}
}

func TestOpenLoopRateFuncPause(t *testing.T) {
	// A profile returning 0 pauses the stream; the run still terminates.
	checker := CheckerFunc(func(string) (bool, error) { return true, nil })
	res := RunOpenLoop(context.Background(), OpenLoopConfig{
		Checker:  checker,
		Keys:     &FixedGen{Key: "k"},
		RateFunc: func(time.Duration) float64 { return 0 },
		Duration: 100 * time.Millisecond,
	})
	if res.Accepted != 0 {
		t.Fatalf("paused profile issued %d requests", res.Accepted)
	}
}
