// Package loadgen contains the workload side of the evaluation (paper §V):
// key generators reproducing the four QoS-key populations of Fig 6, and a
// concurrent load generator modelled on the Apache HTTP server benchmarking
// tool ("ab") that the paper modified to issue massive concurrent QoS
// requests.
package loadgen

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// KeyGen produces a deterministic stream of QoS keys. Implementations are
// not safe for concurrent use; give each worker its own generator (Clone).
type KeyGen interface {
	// Next returns the next key in the stream.
	Next() string
	// Clone returns an independent generator with a derived seed, for use
	// by another worker.
	Clone(workerID int) KeyGen
}

// UUIDGen generates random UUIDs in the paper's
// "xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx" format (Fig 6 population a).
type UUIDGen struct{ rng *rand.Rand }

// NewUUIDGen returns a seeded UUID generator.
func NewUUIDGen(seed int64) *UUIDGen { return &UUIDGen{rng: rand.New(rand.NewSource(seed))} }

// Next implements KeyGen.
func (g *UUIDGen) Next() string {
	b := make([]byte, 16)
	g.rng.Read(b)
	// RFC 4122 version/variant bits, matching real UUID shape.
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("%08x-%04x-%04x-%04x-%012x",
		b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Clone implements KeyGen.
func (g *UUIDGen) Clone(workerID int) KeyGen {
	return NewUUIDGen(g.rng.Int63() + int64(workerID)*7919)
}

// TimestampGen generates random date-time strings in the paper's
// "YYYY-MM-DD-HH-MM-SS" format (Fig 6 population b).
type TimestampGen struct {
	rng   *rand.Rand
	start time.Time
	span  int64 // seconds
}

// NewTimestampGen returns timestamps uniform over [2000-01-01, 2030-01-01).
func NewTimestampGen(seed int64) *TimestampGen {
	start := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	return &TimestampGen{
		rng:   rand.New(rand.NewSource(seed)),
		start: start,
		span:  int64(end.Sub(start) / time.Second),
	}
}

// Next implements KeyGen.
func (g *TimestampGen) Next() string {
	t := g.start.Add(time.Duration(g.rng.Int63n(g.span)) * time.Second)
	return t.Format("2006-01-02-15-04-05")
}

// Clone implements KeyGen.
func (g *TimestampGen) Clone(workerID int) KeyGen {
	return NewTimestampGen(g.rng.Int63() + int64(workerID)*7919)
}

// WordGen generates unique English-like vocabulary words (Fig 6 population
// c). The paper draws unique words from the English vocabulary; since no
// word list ships with the Go standard library, WordGen composes
// pronounceable words from English syllable inventory — the population has
// the same character-level statistics that matter to CRC32 (short,
// lowercase, letter-only strings of varying length).
type WordGen struct {
	rng  *rand.Rand
	seen map[string]bool
}

var (
	onsets  = []string{"b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "bl", "br", "ch", "cl", "cr", "dr", "fl", "fr", "gl", "gr", "pl", "pr", "sc", "sh", "sl", "sm", "sn", "sp", "st", "str", "th", "tr", "tw", "wh", ""}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ee", "oa", "oo", "ou", "ie"}
	codas   = []string{"", "b", "ck", "d", "f", "g", "l", "ll", "m", "n", "nd", "ng", "nt", "p", "r", "rd", "rn", "s", "ss", "st", "t", "th", "x"}
	suffixe = []string{"", "", "", "ing", "ed", "er", "ly", "ness", "tion", "able", "s"}
)

// NewWordGen returns a seeded word generator.
func NewWordGen(seed int64) *WordGen {
	return &WordGen{rng: rand.New(rand.NewSource(seed)), seen: make(map[string]bool)}
}

// Next implements KeyGen; every returned word is unique within a generator.
func (g *WordGen) Next() string {
	for {
		var sb strings.Builder
		syllables := 1 + g.rng.Intn(3)
		for i := 0; i < syllables; i++ {
			sb.WriteString(onsets[g.rng.Intn(len(onsets))])
			sb.WriteString(vowels[g.rng.Intn(len(vowels))])
			sb.WriteString(codas[g.rng.Intn(len(codas))])
		}
		sb.WriteString(suffixe[g.rng.Intn(len(suffixe))])
		w := sb.String()
		if len(w) < 2 || g.seen[w] {
			continue
		}
		g.seen[w] = true
		return w
	}
}

// Clone implements KeyGen.
func (g *WordGen) Clone(workerID int) KeyGen {
	return NewWordGen(g.rng.Int63() + int64(workerID)*7919)
}

// SequentialGen generates sequential numeric keys; the paper's population d
// runs from 1500000001 to 1500500000.
type SequentialGen struct{ next int64 }

// NewSequentialGen starts at the paper's first value.
func NewSequentialGen(start int64) *SequentialGen { return &SequentialGen{next: start} }

// PaperSequentialStart is the first sequential key used in Fig 6.
const PaperSequentialStart = 1500000001

// Next implements KeyGen.
func (g *SequentialGen) Next() string {
	v := g.next
	g.next++
	return fmt.Sprintf("%d", v)
}

// Clone implements KeyGen; workers take strided, disjoint ranges.
func (g *SequentialGen) Clone(workerID int) KeyGen {
	return NewSequentialGen(g.next + int64(workerID)*1_000_000)
}

// FixedGen always returns the same key — the single-client scenarios of the
// application-integration tests.
type FixedGen struct{ Key string }

// Next implements KeyGen.
func (g *FixedGen) Next() string { return g.Key }

// Clone implements KeyGen.
func (g *FixedGen) Clone(int) KeyGen { return &FixedGen{Key: g.Key} }

// CyclicGen cycles through a fixed key population (used to spread load over
// a known rule set).
type CyclicGen struct {
	keys []string
	pos  int
}

// NewCyclicGen cycles over keys.
func NewCyclicGen(keys []string) *CyclicGen { return &CyclicGen{keys: keys} }

// Next implements KeyGen.
func (g *CyclicGen) Next() string {
	k := g.keys[g.pos%len(g.keys)]
	g.pos++
	return k
}

// Clone implements KeyGen.
func (g *CyclicGen) Clone(workerID int) KeyGen {
	return &CyclicGen{keys: g.keys, pos: workerID}
}

// ZipfGen draws keys with Zipfian popularity — the skewed per-key demand of
// real SaaS traffic ("The Tail at Scale": tail SLOs only surface under
// skew). Rank r is drawn with P(r) ∝ 1/(v+r)^s over r ∈ [0, N); the key for
// rank r is "z<N>-<r>", so two generators over the same population produce
// the same key space regardless of seed, and populations of different size
// never collide. An optional hot-set rotation models churn: every
// RotateEvery draws the rank→key mapping shifts by RotateStep, so
// yesterday's cold keys become today's celebrities. Rotation is counted in
// draws, not wall time, so the same stream replays identically in the DES
// and against a live cluster.
type ZipfGen struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	s    float64
	n    uint64

	rotateEvery int64  // draws between rotations; 0 disables churn
	rotateStep  uint64 // rank offset added per rotation
	offset      uint64
	draws       int64
}

// NewZipfGen returns a seeded Zipfian generator over n keys with exponent
// s (> 1, steeper = more skewed). rotateEvery > 0 enables hot-set churn:
// the popularity ranking rotates by rotateStep ranks every rotateEvery
// draws.
func NewZipfGen(seed int64, s float64, n int, rotateEvery int64, rotateStep int) *ZipfGen {
	if s <= 1 {
		s = 1.0001
	}
	if n < 1 {
		n = 1
	}
	if rotateStep <= 0 {
		rotateStep = 1 + n/10
	}
	rng := rand.New(rand.NewSource(seed))
	return &ZipfGen{
		rng:         rng,
		zipf:        rand.NewZipf(rng, s, 1, uint64(n-1)),
		s:           s,
		n:           uint64(n),
		rotateEvery: rotateEvery,
		rotateStep:  uint64(rotateStep),
	}
}

// ZipfKey returns the key string for rank r in a population of n — the
// inverse mapping scenario harnesses use to pre-seed rules for the hot set.
func ZipfKey(n int, r int) string { return fmt.Sprintf("z%d-%d", n, r) }

// Next implements KeyGen.
func (g *ZipfGen) Next() string {
	if g.rotateEvery > 0 && g.draws > 0 && g.draws%g.rotateEvery == 0 {
		g.offset += g.rotateStep
	}
	g.draws++
	r := (g.zipf.Uint64() + g.offset) % g.n
	return ZipfKey(int(g.n), int(r))
}

// Clone implements KeyGen. The clone starts at the parent's current
// rotation offset with an independent random stream, so workers agree on
// who is hot right now but never correlate their draws.
func (g *ZipfGen) Clone(workerID int) KeyGen {
	c := NewZipfGen(g.rng.Int63()+int64(workerID)*7919, g.s, int(g.n), g.rotateEvery, int(g.rotateStep))
	c.offset = g.offset
	return c
}

// PrefixGen namespaces an inner generator's keys — multi-tenant scenarios
// give each tenant tier its own prefix so per-tier rule classes can be
// seeded and accounted separately.
type PrefixGen struct {
	Prefix string
	Inner  KeyGen
}

// Next implements KeyGen.
func (g *PrefixGen) Next() string { return g.Prefix + g.Inner.Next() }

// Clone implements KeyGen.
func (g *PrefixGen) Clone(workerID int) KeyGen {
	return &PrefixGen{Prefix: g.Prefix, Inner: g.Inner.Clone(workerID)}
}

// TierComponent is one weighted member of a TieredGen mixture.
type TierComponent struct {
	Gen    KeyGen
	Weight float64
}

// TieredGen draws each key from one of several sub-generators with
// probability proportional to its weight — the multi-tenant traffic mix
// (free/paid/enterprise classes issuing requests at distinct rates).
type TieredGen struct {
	rng   *rand.Rand
	comps []TierComponent
	total float64
}

// NewTieredGen builds a weighted mixture over comps (weights must be > 0).
func NewTieredGen(seed int64, comps []TierComponent) (*TieredGen, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("loadgen: tiered generator needs at least one component")
	}
	total := 0.0
	for _, c := range comps {
		if c.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: tiered component weight %v <= 0", c.Weight)
		}
		if c.Gen == nil {
			return nil, fmt.Errorf("loadgen: tiered component without a generator")
		}
		total += c.Weight
	}
	return &TieredGen{rng: rand.New(rand.NewSource(seed)), comps: comps, total: total}, nil
}

// Next implements KeyGen.
func (g *TieredGen) Next() string {
	u := g.rng.Float64() * g.total
	for i := range g.comps {
		if u < g.comps[i].Weight {
			return g.comps[i].Gen.Next()
		}
		u -= g.comps[i].Weight
	}
	return g.comps[len(g.comps)-1].Gen.Next()
}

// Clone implements KeyGen; every sub-generator is cloned so workers never
// share mutable state.
func (g *TieredGen) Clone(workerID int) KeyGen {
	comps := make([]TierComponent, len(g.comps))
	for i, c := range g.comps {
		comps[i] = TierComponent{Gen: c.Gen.Clone(workerID), Weight: c.Weight}
	}
	c, _ := NewTieredGen(g.rng.Int63()+int64(workerID)*7919, comps)
	return c
}

// Unique returns n unique keys drawn from gen (for pre-seeding rule
// databases).
func Unique(gen KeyGen, n int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		k := gen.Next()
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
