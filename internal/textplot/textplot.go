// Package textplot renders small ASCII charts for the experiment harness,
// so `janus-bench` output resembles the paper's figures: horizontal bar
// charts for scaling curves and multi-series traces for time series.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value in a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal bar chart. width is the maximum bar length
// in characters; unit annotates the values.
func BarChart(bars []Bar, width int, unit string) string {
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(b.Value / max * float64(width)))
		}
		if b.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.0f%s\n",
			labelW, b.Label, strings.Repeat("█", n), strings.Repeat(" ", width-n), b.Value, unit)
	}
	return sb.String()
}

// Series is one named trace for a line chart.
type Series struct {
	Name   string
	Values []float64
}

// seriesGlyphs mark the traces, in order.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@'}

// LineChart renders multiple series as a height×width character grid with a
// y-axis scaled to the global maximum. X positions are sampled uniformly
// from each series.
func LineChart(series []Series, width, height int) string {
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 12
	}
	var max float64
	maxLen := 0
	for _, s := range series {
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		if len(s.Values) > maxLen {
			maxLen = len(s.Values)
		}
	}
	if maxLen == 0 || max <= 0 {
		return "(no data)\n"
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for col := 0; col < width; col++ {
			idx := col * len(s.Values) / width
			if idx >= len(s.Values) {
				idx = len(s.Values) - 1
			}
			v := s.Values[idx]
			row := height - 1 - int(math.Round(v/max*float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}
	var sb strings.Builder
	for r, line := range grid {
		yVal := max * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%10.0f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(&sb, "%10s +%s\n", "", strings.Repeat("-", width))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Name))
	}
	fmt.Fprintf(&sb, "%11s %s\n", "", strings.Join(legend, "  "))
	return sb.String()
}
