package textplot

import (
	"strings"
	"testing"
)

func TestBarChartProportions(t *testing.T) {
	out := BarChart([]Bar{
		{"a", 100},
		{"bb", 50},
		{"ccc", 0},
	}, 10, " req/s")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	if strings.Count(lines[0], "█") != 10 {
		t.Fatalf("max bar not full width:\n%s", out)
	}
	if strings.Count(lines[1], "█") != 5 {
		t.Fatalf("half bar wrong:\n%s", out)
	}
	if strings.Count(lines[2], "█") != 0 {
		t.Fatalf("zero bar drawn:\n%s", out)
	}
	if !strings.Contains(lines[0], "100 req/s") {
		t.Fatalf("value/unit missing:\n%s", out)
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[0], "a   |") || !strings.HasPrefix(lines[2], "ccc |") {
		t.Fatalf("labels misaligned:\n%s", out)
	}
}

func TestBarChartTinyValueVisible(t *testing.T) {
	out := BarChart([]Bar{{"big", 1000}, {"tiny", 1}}, 20, "")
	lines := strings.Split(out, "\n")
	if strings.Count(lines[1], "█") != 1 {
		t.Fatalf("tiny value invisible:\n%s", out)
	}
}

func TestBarChartDefaults(t *testing.T) {
	out := BarChart([]Bar{{"x", 1}}, 0, "")
	if !strings.Contains(out, "█") {
		t.Fatal("default width produced no bar")
	}
}

func TestLineChartBasic(t *testing.T) {
	out := LineChart([]Series{
		{Name: "up", Values: []float64{0, 25, 50, 75, 100}},
	}, 20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("no glyphs:\n%s", out)
	}
	if !strings.Contains(out, "*=up") {
		t.Fatalf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// 5 grid rows + axis + legend.
	if len(lines) < 7 {
		t.Fatalf("structure wrong:\n%s", out)
	}
	// Rising series: glyph in the top row must appear to the right of the
	// glyph in the bottom row.
	top, bottom := lines[0], lines[4]
	if strings.LastIndex(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("series not rising:\n%s", out)
	}
}

func TestLineChartMultiSeriesGlyphs(t *testing.T) {
	out := LineChart([]Series{
		{Name: "a", Values: []float64{1, 1, 1}},
		{Name: "b", Values: []float64{2, 2, 2}},
	}, 10, 4)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestLineChartEmpty(t *testing.T) {
	if out := LineChart(nil, 10, 5); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart = %q", out)
	}
	if out := LineChart([]Series{{Name: "z", Values: []float64{0, 0}}}, 10, 5); !strings.Contains(out, "no data") {
		t.Fatalf("all-zero chart = %q", out)
	}
}
