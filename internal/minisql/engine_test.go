package minisql

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE qos_rules (key TEXT PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`)
	return e
}

func mustExec(t *testing.T, e *Engine, sql string, args ...Value) Result {
	t.Helper()
	res, err := e.Execute(sql, args...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, `INSERT INTO qos_rules VALUES ('alice', 100, 1000, 1000), ('bob', 10, 100, 100)`)
	if res.Affected != 2 {
		t.Fatalf("affected = %d", res.Affected)
	}
	res = mustExec(t, e, `SELECT * FROM qos_rules WHERE key = ?`, Text("alice"))
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != Text("alice") || row[1] != Float(100) || row[2] != Float(1000) || row[3] != Float(1000) {
		t.Fatalf("row = %v", row)
	}
	if len(res.Columns) != 4 || res.Columns[0] != "key" {
		t.Fatalf("columns = %v", res.Columns)
	}
}

func TestSelectMissingKeyReturnsEmpty(t *testing.T) {
	e := newTestEngine(t)
	res := mustExec(t, e, `SELECT * FROM qos_rules WHERE key = ?`, Text("ghost"))
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDuplicatePrimaryKeyRejected(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `INSERT INTO qos_rules VALUES ('a', 1, 1, 1)`)
	if _, err := e.Execute(`INSERT INTO qos_rules VALUES ('a', 2, 2, 2)`); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// Row unchanged.
	res := mustExec(t, e, `SELECT refill_rate FROM qos_rules WHERE key = 'a'`)
	if res.Rows[0][0] != Float(1) {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestReplaceUpserts(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `REPLACE INTO qos_rules VALUES ('a', 1, 10, 10)`)
	mustExec(t, e, `REPLACE INTO qos_rules VALUES ('a', 2, 20, 20)`)
	res := mustExec(t, e, `SELECT capacity FROM qos_rules WHERE key = 'a'`)
	if res.Rows[0][0] != Float(20) {
		t.Fatalf("capacity = %v", res.Rows[0][0])
	}
	if n, _ := e.RowCount("qos_rules"); n != 1 {
		t.Fatalf("rows = %d", n)
	}
}

func TestUpdateByPrimaryKey(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `INSERT INTO qos_rules VALUES ('a', 1, 10, 10)`)
	res := mustExec(t, e, `UPDATE qos_rules SET credit = ? WHERE key = ?`, Float(3.5), Text("a"))
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	got := mustExec(t, e, `SELECT credit FROM qos_rules WHERE key = 'a'`)
	if got.Rows[0][0] != Float(3.5) {
		t.Fatalf("credit = %v", got.Rows[0][0])
	}
	// Update of a missing key affects zero rows, no error.
	res = mustExec(t, e, `UPDATE qos_rules SET credit = 1 WHERE key = 'missing'`)
	if res.Affected != 0 {
		t.Fatalf("affected = %d", res.Affected)
	}
}

func TestUpdatePrimaryKeyMaintainsIndex(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `INSERT INTO qos_rules VALUES ('old', 1, 10, 10)`)
	mustExec(t, e, `UPDATE qos_rules SET key = 'new' WHERE key = 'old'`)
	if len(mustExec(t, e, `SELECT * FROM qos_rules WHERE key = 'old'`).Rows) != 0 {
		t.Fatal("old key still resolves")
	}
	if len(mustExec(t, e, `SELECT * FROM qos_rules WHERE key = 'new'`).Rows) != 1 {
		t.Fatal("new key does not resolve")
	}
	// PK collision via update is rejected.
	mustExec(t, e, `INSERT INTO qos_rules VALUES ('other', 1, 1, 1)`)
	if _, err := e.Execute(`UPDATE qos_rules SET key = 'new' WHERE key = 'other'`); err == nil {
		t.Fatal("PK collision via UPDATE accepted")
	}
}

func TestDeleteMaintainsIndex(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 10; i++ {
		mustExec(t, e, `INSERT INTO qos_rules VALUES (?, 1, 1, 1)`, Text(fmt.Sprintf("k%d", i)))
	}
	res := mustExec(t, e, `DELETE FROM qos_rules WHERE key = 'k3'`)
	if res.Affected != 1 {
		t.Fatalf("affected = %d", res.Affected)
	}
	// The swap-removed row (previously last) must still be findable by PK.
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		want := 1
		if i == 3 {
			want = 0
		}
		if got := len(mustExec(t, e, `SELECT * FROM qos_rules WHERE key = ?`, Text(k)).Rows); got != want {
			t.Errorf("key %s: rows = %d, want %d", k, got, want)
		}
	}
	if n, _ := e.RowCount("qos_rules"); n != 9 {
		t.Fatalf("rows = %d", n)
	}
}

func TestDeleteRangePredicate(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	for i := 0; i < 20; i++ {
		mustExec(t, e, `INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(int64(i%5)))
	}
	res := mustExec(t, e, `DELETE FROM t WHERE v >= 3`)
	if res.Affected != 8 {
		t.Fatalf("affected = %d, want 8", res.Affected)
	}
	count := mustExec(t, e, `SELECT COUNT(*) FROM t`)
	if count.Rows[0][0] != Int(12) {
		t.Fatalf("count = %v", count.Rows[0][0])
	}
	// All survivors findable by PK.
	res = mustExec(t, e, `SELECT * FROM t WHERE v < 3`)
	if len(res.Rows) != 12 {
		t.Fatalf("survivors = %d", len(res.Rows))
	}
}

func TestFullScanAndConjunction(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, a INT, b TEXT)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'x'), (3, 20, 'y')`)
	res := mustExec(t, e, `SELECT id FROM t WHERE a = 20 AND b = 'x'`)
	if len(res.Rows) != 1 || res.Rows[0][0] != Int(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE photos (id INT PRIMARY KEY, owner TEXT)`)
	for i := 1; i <= 50; i++ {
		mustExec(t, e, `INSERT INTO photos VALUES (?, 'u')`, Int(int64(i)))
	}
	res := mustExec(t, e, `SELECT id FROM photos ORDER BY id DESC LIMIT 5`)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, want := range []int64{50, 49, 48, 47, 46} {
		if res.Rows[i][0] != Int(want) {
			t.Fatalf("row %d = %v, want %d", i, res.Rows[i][0], want)
		}
	}
	asc := mustExec(t, e, `SELECT id FROM photos ORDER BY id ASC LIMIT 2`)
	if asc.Rows[0][0] != Int(1) || asc.Rows[1][0] != Int(2) {
		t.Fatalf("asc rows = %v", asc.Rows)
	}
}

func TestSelectCountStar(t *testing.T) {
	e := newTestEngine(t)
	for i := 0; i < 7; i++ {
		mustExec(t, e, `INSERT INTO qos_rules VALUES (?, 1, 1, 1)`, Text(fmt.Sprintf("k%d", i)))
	}
	res := mustExec(t, e, `SELECT COUNT(*) FROM qos_rules`)
	if res.Rows[0][0] != Int(7) {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestTypeCoercion(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, f FLOAT, s TEXT)`)
	// Int into float column, int into text column, numeric text into int.
	mustExec(t, e, `INSERT INTO t VALUES ('42', 7, 99)`)
	res := mustExec(t, e, `SELECT * FROM t WHERE id = 42`)
	if len(res.Rows) != 1 {
		t.Fatalf("coerced PK lookup failed: %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0] != Int(42) || row[1] != Float(7) || row[2] != Text("99") {
		t.Fatalf("row = %v", row)
	}
	// Non-numeric text into int column is an error.
	if _, err := e.Execute(`INSERT INTO t VALUES ('abc', 1, 'x')`); err == nil {
		t.Fatal("bad coercion accepted")
	}
}

func TestNullHandling(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, v INT)`)
	mustExec(t, e, `INSERT INTO t VALUES (1, NULL)`)
	res := mustExec(t, e, `SELECT v FROM t WHERE id = 1`)
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("v = %v", res.Rows[0][0])
	}
	// NULL PK rejected.
	if _, err := e.Execute(`INSERT INTO t VALUES (NULL, 1)`); err == nil {
		t.Fatal("NULL PK accepted")
	}
}

func TestInsertColumnSubset(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY, a INT, b TEXT)`)
	mustExec(t, e, `INSERT INTO t (id, b) VALUES (1, 'hi')`)
	res := mustExec(t, e, `SELECT a, b FROM t WHERE id = 1`)
	if !res.Rows[0][0].IsNull() || res.Rows[0][1] != Text("hi") {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestExecuteErrors(t *testing.T) {
	e := newTestEngine(t)
	for _, c := range []struct {
		sql  string
		args []Value
	}{
		{`SELECT * FROM nope`, nil},
		{`SELECT nope FROM qos_rules`, nil},
		{`SELECT * FROM qos_rules WHERE nope = 1`, nil},
		{`INSERT INTO qos_rules (nope) VALUES (1)`, nil},
		{`INSERT INTO qos_rules VALUES (1)`, nil},                       // arity
		{`SELECT * FROM qos_rules WHERE key = ?`, nil},                  // missing arg
		{`UPDATE qos_rules SET nope = 1 WHERE key = 'a'`, nil},          // bad set col
		{`SELECT * FROM qos_rules ORDER BY nope`, nil},                  // bad order col
		{`DELETE FROM qos_rules WHERE nope = 1`, nil},                   // bad where col
		{`CREATE TABLE qos_rules (key TEXT PRIMARY KEY)`, nil},          // exists
		{`CREATE TABLE t2 (a INT PRIMARY KEY, a INT)`, nil},             // dup col
		{`CREATE TABLE t3 (a INT PRIMARY KEY, b INT PRIMARY KEY)`, nil}, // two PKs
		{`DROP TABLE nope`, nil},
	} {
		if _, err := e.Execute(c.sql, c.args...); err == nil {
			t.Errorf("Execute(%q) succeeded, want error", c.sql)
		}
	}
}

func TestDropTable(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `DROP TABLE qos_rules`)
	if _, err := e.Execute(`SELECT * FROM qos_rules`); err == nil {
		t.Fatal("table still exists")
	}
	mustExec(t, e, `DROP TABLE IF EXISTS qos_rules`) // idempotent
}

func TestCreateTableIfNotExistsIdempotent(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE IF NOT EXISTS qos_rules (key TEXT PRIMARY KEY)`)
	// Original schema preserved (4 columns).
	sch, err := e.Schema("qos_rules")
	if err != nil || len(sch) != 4 {
		t.Fatalf("schema = %v, %v", sch, err)
	}
}

func TestTableNames(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE b (x INT)`)
	mustExec(t, e, `CREATE TABLE a (x INT)`)
	names := e.TableNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}

func TestJournalEmitsWritesOnly(t *testing.T) {
	e := newTestEngine(t)
	var entries []string
	e.SetJournal(func(sql string, args []Value) { entries = append(entries, sql) })
	mustExec(t, e, `INSERT INTO qos_rules VALUES ('a', 1, 1, 1)`)
	mustExec(t, e, `SELECT * FROM qos_rules`)
	mustExec(t, e, `UPDATE qos_rules SET credit = 0 WHERE key = 'a'`)
	mustExec(t, e, `UPDATE qos_rules SET credit = 0 WHERE key = 'missing'`) // 0 rows: not journaled
	mustExec(t, e, `DELETE FROM qos_rules WHERE key = 'a'`)
	want := []string{
		`INSERT INTO qos_rules VALUES ('a', 1, 1, 1)`,
		`UPDATE qos_rules SET credit = 0 WHERE key = 'a'`,
		`DELETE FROM qos_rules WHERE key = 'a'`,
	}
	if len(entries) != len(want) {
		t.Fatalf("journal = %v", entries)
	}
	for i := range want {
		if entries[i] != want[i] {
			t.Errorf("journal[%d] = %q, want %q", i, entries[i], want[i])
		}
	}
}

func TestConcurrentPointWrites(t *testing.T) {
	// The paper's workload: concurrent QoS servers checkpointing different
	// keys. Verify isolation and final state.
	e := newTestEngine(t)
	const keys = 32
	for i := 0; i < keys; i++ {
		mustExec(t, e, `INSERT INTO qos_rules VALUES (?, 1, 1000, 1000)`, Text(fmt.Sprintf("k%d", i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*7+i)%keys)
				if _, err := e.Execute(`UPDATE qos_rules SET credit = ? WHERE key = ?`, Float(float64(i)), Text(k)); err != nil {
					t.Errorf("update: %v", err)
					return
				}
				if _, err := e.Execute(`SELECT credit FROM qos_rules WHERE key = ?`, Text(k)); err != nil {
					t.Errorf("select: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := e.RowCount("qos_rules"); n != keys {
		t.Fatalf("rows = %d", n)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE t2 (id INT PRIMARY KEY, v TEXT)`)
	for i := 0; i < 100; i++ {
		mustExec(t, e, `INSERT INTO qos_rules VALUES (?, 1, 2, 3)`, Text(fmt.Sprintf("k%d", i)))
		mustExec(t, e, `INSERT INTO t2 VALUES (?, ?)`, Int(int64(i)), Text(strings.Repeat("v", i%5)))
	}
	snap := e.Snapshot()
	e2 := NewEngine()
	if err := e2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"qos_rules", "t2"} {
		n1, _ := e.RowCount(table)
		n2, _ := e2.RowCount(table)
		if n1 != n2 {
			t.Fatalf("%s rows: %d vs %d", table, n1, n2)
		}
	}
	// PK index works on the restored engine.
	res := mustExec(t, e2, `SELECT v FROM t2 WHERE id = 4`)
	if res.Rows[0][0] != Text("vvvv") {
		t.Fatalf("row = %v", res.Rows[0])
	}
	// Restored engine is independent.
	mustExec(t, e2, `DELETE FROM t2 WHERE id = 4`)
	if len(mustExec(t, e, `SELECT * FROM t2 WHERE id = 4`).Rows) != 1 {
		t.Fatal("restore aliased original storage")
	}
}

func TestValueCompareProperty(t *testing.T) {
	// Compare must be antisymmetric and consistent with Equal.
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va) &&
			(Compare(va, vb) == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	g := func(a, b string) bool {
		va, vb := Text(a), Text(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCompareMixed(t *testing.T) {
	if Compare(Int(3), Float(3.0)) != 0 {
		t.Error("int/float equality broken")
	}
	if Compare(Int(3), Float(3.5)) >= 0 {
		t.Error("int/float order broken")
	}
	if Compare(Null(), Int(0)) >= 0 {
		t.Error("NULL must sort first")
	}
	if Compare(Null(), Null()) != 0 {
		t.Error("NULL != NULL under Compare")
	}
	if Compare(Int(5), Text("5")) == 0 {
		t.Error("number must not equal text")
	}
	if Compare(Text("a"), Int(5)) != -Compare(Int(5), Text("a")) {
		t.Error("mixed compare not antisymmetric")
	}
}

func TestValueCoercionHelpers(t *testing.T) {
	if Int(7).AsFloat() != 7 || Float(2.5).AsInt() != 2 || Text("11").AsInt() != 11 {
		t.Error("numeric coercions broken")
	}
	if Int(7).AsText() != "7" || Null().AsText() != "" {
		t.Error("text coercions broken")
	}
	if Bool(true) != Int(1) || Bool(false) != Int(0) {
		t.Error("bool encoding broken")
	}
	if Null().String() != "NULL" || Text("x").String() != "'x'" {
		t.Error("String() rendering broken")
	}
	if KindText.String() != "TEXT" || Kind(9).String() == "" {
		t.Error("kind strings broken")
	}
}

func TestStatementCacheBounded(t *testing.T) {
	e := NewEngine()
	mustExec(t, e, `CREATE TABLE t (id INT PRIMARY KEY)`)
	for i := 0; i < 5000; i++ {
		mustExec(t, e, fmt.Sprintf(`SELECT * FROM t WHERE id = %d`, i))
	}
	e.cacheMu.RLock()
	n := len(e.stmtCache)
	e.cacheMu.RUnlock()
	if n > 4097 {
		t.Fatalf("statement cache grew unbounded: %d", n)
	}
}
