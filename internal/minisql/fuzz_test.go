package minisql

import "testing"

// FuzzParse: the SQL parser must never panic and must either return a
// statement or an error, never both nil.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"SELECT * FROM qos_rules WHERE key = ?",
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT)",
		"INSERT INTO t VALUES (1, 'x''y'), (?, NULL)",
		"REPLACE INTO qos_rules VALUES (?, ?, ?, ?)",
		"UPDATE t SET a = 1, b = 'z' WHERE a >= -3 AND b <> 'q'",
		"DELETE FROM t WHERE a <= 3.5e2",
		"SELECT COUNT(*) FROM `weird table` ORDER BY a DESC LIMIT 10;",
		"select key from qos_rules",
		"'unterminated",
		"SELECT * FROM t WHERE a = $1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		st, err := Parse(sql)
		if err == nil && st == nil {
			t.Fatal("nil statement with nil error")
		}
	})
}

// FuzzExecute: executing arbitrary SQL against a live engine must never
// panic or corrupt the PK index (checked via a follow-up point query).
func FuzzExecute(f *testing.F) {
	f.Add("INSERT INTO qos_rules VALUES ('a', 1, 2, 3)")
	f.Add("SELECT * FROM qos_rules")
	f.Add("DELETE FROM qos_rules WHERE key = 'a'")
	f.Add("DROP TABLE qos_rules")
	f.Fuzz(func(t *testing.T, sql string) {
		e := NewEngine()
		if _, err := e.Execute(`CREATE TABLE qos_rules (key TEXT PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Execute(`INSERT INTO qos_rules VALUES ('seed', 1, 2, 3)`); err != nil {
			t.Fatal(err)
		}
		e.Execute(sql) // outcome irrelevant; must not panic
		// Index integrity: if the table still exists, the seed row is
		// either present with consistent values or deleted.
		res, err := e.Execute(`SELECT refill_rate FROM qos_rules WHERE key = 'seed'`)
		if err != nil {
			return // table dropped by the fuzz input
		}
		if len(res.Rows) > 1 {
			t.Fatalf("PK index corrupted: %d rows for one key", len(res.Rows))
		}
	})
}
