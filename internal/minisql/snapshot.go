package minisql

import "fmt"

// SnapshotData is a deep, self-contained copy of the full database state,
// used to seed a standby before statement-shipping replication begins.
type SnapshotData struct {
	Tables []TableSnapshot
}

// TableSnapshot captures one table.
type TableSnapshot struct {
	Name   string
	Schema []ColumnDef
	Rows   [][]Value
}

// Snapshot captures the current state of every table. Writes that land
// during the snapshot are serialized out by the write mutex, so the copy is
// a consistent point-in-time image with respect to journaled statements.
func (e *Engine) Snapshot() SnapshotData {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.RLock()
	defer e.mu.RUnlock()
	var snap SnapshotData
	for _, name := range e.tableNamesLocked() {
		t := e.tables[name]
		t.mu.RLock()
		ts := TableSnapshot{
			Name:   t.name,
			Schema: append([]ColumnDef(nil), t.schema...),
			Rows:   make([][]Value, len(t.rows)),
		}
		for i, r := range t.rows {
			ts.Rows[i] = append([]Value(nil), r...)
		}
		t.mu.RUnlock()
		snap.Tables = append(snap.Tables, ts)
	}
	return snap
}

func (e *Engine) tableNamesLocked() []string {
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	return out
}

// Restore replaces the engine's entire contents with the snapshot.
func (e *Engine) Restore(snap SnapshotData) error {
	tables := make(map[string]*tableData, len(snap.Tables))
	for _, ts := range snap.Tables {
		t := &tableData{
			name:    ts.Name,
			schema:  append([]ColumnDef(nil), ts.Schema...),
			colIdx:  make(map[string]int, len(ts.Schema)),
			pkCol:   -1,
			pkIndex: make(map[Value]int, len(ts.Rows)),
			rows:    make([][]Value, len(ts.Rows)),
		}
		for i, c := range ts.Schema {
			t.colIdx[lower(c.Name)] = i
			if c.PrimaryKey {
				t.pkCol = i
			}
		}
		for i, r := range ts.Rows {
			if len(r) != len(ts.Schema) {
				return fmt.Errorf("minisql: snapshot row arity mismatch in %q", ts.Name)
			}
			t.rows[i] = append([]Value(nil), r...)
			if t.pkCol >= 0 {
				pk := t.rows[i][t.pkCol]
				if _, dup := t.pkIndex[pk]; dup {
					return fmt.Errorf("minisql: snapshot has duplicate primary key %s in %q", pk, ts.Name)
				}
				t.pkIndex[pk] = i
			}
		}
		tables[t.name] = t
	}
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	e.mu.Lock()
	e.tables = tables
	e.mu.Unlock()
	return nil
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
