package minisql

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnDef defines one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Kind       Kind
	PrimaryKey bool
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] name (col type [PRIMARY KEY], ...).
type CreateTableStmt struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// Expr is a literal value or a ?-placeholder inside a statement.
type Expr struct {
	Placeholder bool
	Value       Value
}

// InsertStmt is INSERT|REPLACE INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Replace bool // REPLACE INTO upserts on primary-key conflict
	Columns []string
	Rows    [][]Expr
}

// CondOp enumerates comparison operators in WHERE clauses.
type CondOp string

// Supported comparison operators.
const (
	OpEq CondOp = "="
	OpNe CondOp = "!="
	OpLt CondOp = "<"
	OpLe CondOp = "<="
	OpGt CondOp = ">"
	OpGe CondOp = ">="
)

// Cond is one `col OP expr` term; WHERE clauses are conjunctions of Conds.
type Cond struct {
	Column string
	Op     CondOp
	Expr   Expr
}

// OrderBy describes an ORDER BY term.
type OrderBy struct {
	Column string
	Desc   bool
}

// SelectStmt is SELECT cols|*|COUNT(*) FROM t [WHERE ...] [ORDER BY ...] [LIMIT n].
type SelectStmt struct {
	Table   string
	Columns []string // empty means *
	Count   bool     // SELECT COUNT(*)
	Where   []Cond
	Order   *OrderBy
	Limit   int // -1 means no limit
}

// UpdateStmt is UPDATE t SET col=expr, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []struct {
		Column string
		Expr   Expr
	}
	Where []Cond
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where []Cond
}

func (CreateTableStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (InsertStmt) stmt()      {}
func (SelectStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (DeleteStmt) stmt()      {}

type parser struct {
	toks []token
	pos  int
	sql  string
}

// Parse parses a single SQL statement (an optional trailing ';' is allowed).
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, sql: sql}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("trailing tokens after statement")
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("minisql: parse error at %d in %q: %s", p.cur().pos, p.sql, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.cur(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.cur(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q", s)
	}
	return nil
}

// ident also accepts keywords used as identifiers (e.g. a column named
// "key", which the paper's qos_rules schema uses).
func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	if t.kind == tokKeyword {
		p.pos++
		return strings.ToLower(t.text), nil
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("CREATE"):
		return p.createTable()
	case p.acceptKeyword("DROP"):
		return p.dropTable()
	case p.acceptKeyword("INSERT"):
		return p.insert(false)
	case p.acceptKeyword("REPLACE"):
		return p.insert(true)
	case p.acceptKeyword("SELECT"):
		return p.selectStmt()
	case p.acceptKeyword("UPDATE"):
		return p.update()
	case p.acceptKeyword("DELETE"):
		return p.deleteStmt()
	default:
		return nil, p.errorf("expected statement keyword, found %q", p.cur().text)
	}
}

func (p *parser) createTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := p.columnType()
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: col, Kind: kind}
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			def.PrimaryKey = true
		}
		st.Columns = append(st.Columns, def)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) columnType() (Kind, error) {
	t := p.cur()
	if t.kind != tokKeyword {
		return KindNull, p.errorf("expected column type, found %q", t.text)
	}
	p.pos++
	switch t.text {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "TEXT":
		return KindText, nil
	case "VARCHAR":
		// VARCHAR(n): size is parsed and ignored.
		if p.acceptSymbol("(") {
			if p.cur().kind != tokNumber {
				return KindNull, p.errorf("expected VARCHAR size")
			}
			p.pos++
			if err := p.expectSymbol(")"); err != nil {
				return KindNull, err
			}
		}
		return KindText, nil
	default:
		return KindNull, p.errorf("unknown column type %q", t.text)
	}
}

func (p *parser) dropTable() (Statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) expr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "?":
		p.pos++
		return Expr{Placeholder: true}, nil
	case t.kind == tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Expr{}, p.errorf("bad number %q", t.text)
			}
			return Expr{Value: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Expr{}, p.errorf("bad integer %q", t.text)
		}
		return Expr{Value: Int(n)}, nil
	case t.kind == tokString:
		p.pos++
		return Expr{Value: Text(t.text)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.pos++
		return Expr{Value: Null()}, nil
	default:
		return Expr{}, p.errorf("expected value, found %q", t.text)
	}
}

func (p *parser) insert(replace bool) (Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := InsertStmt{Table: name, Replace: replace}
	if p.acceptSymbol("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) whereClause() ([]Cond, error) {
	if !p.acceptKeyword("WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokSymbol {
			return nil, p.errorf("expected comparison operator")
		}
		var op CondOp
		switch t.text {
		case "=":
			op = OpEq
		case "!=", "<>":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		default:
			return nil, p.errorf("unsupported operator %q", t.text)
		}
		p.pos++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Column: col, Op: op, Expr: e})
		if p.acceptKeyword("AND") {
			continue
		}
		break
	}
	return conds, nil
}

func (p *parser) selectStmt() (Statement, error) {
	st := SelectStmt{Limit: -1}
	switch {
	case p.acceptSymbol("*"):
	case p.acceptKeyword("COUNT"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Count = true
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if st.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Column: col}
		if p.acceptKeyword("DESC") {
			ob.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		st.Order = ob
	}
	if p.acceptKeyword("LIMIT") {
		t := p.cur()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count")
		}
		p.pos++
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		st.Limit = n
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, struct {
			Column string
			Expr   Expr
		}{col, e})
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if st.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := DeleteStmt{Table: name}
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	st.Where = where
	return st, nil
}
