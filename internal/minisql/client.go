package minisql

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a connection to a minisql server. It serializes requests over a
// single TCP connection; use Pool for concurrency.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a minisql server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second)
}

// DialTimeout connects with a dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("minisql: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Execute runs one statement on the server.
func (c *Client) Execute(sql string, args ...Value) (Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return Result{}, errors.New("minisql: client is closed")
	}
	if err := c.enc.Encode(&frame{Type: frameQuery, SQL: sql, Args: args}); err != nil {
		c.closeLocked()
		return Result{}, fmt.Errorf("minisql: send: %w", err)
	}
	var f frame
	if err := c.dec.Decode(&f); err != nil {
		c.closeLocked()
		return Result{}, fmt.Errorf("minisql: recv: %w", err)
	}
	if f.Type != frameResult {
		c.closeLocked()
		return Result{}, fmt.Errorf("minisql: unexpected frame type %d", f.Type)
	}
	if f.Err != "" {
		return Result{}, errors.New(f.Err)
	}
	return f.Result, nil
}

// Ping checks liveness; it returns whether the remote node currently accepts
// writes (i.e. believes itself master).
func (c *Client) Ping() (serving bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return false, errors.New("minisql: client is closed")
	}
	if err := c.enc.Encode(&frame{Type: framePing}); err != nil {
		c.closeLocked()
		return false, err
	}
	var f frame
	if err := c.dec.Decode(&f); err != nil {
		c.closeLocked()
		return false, err
	}
	if f.Type != framePong {
		c.closeLocked()
		return false, fmt.Errorf("minisql: unexpected frame type %d", f.Type)
	}
	return f.Serving, nil
}

func (c *Client) closeLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close releases the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closeLocked()
	return nil
}

// Pool is a fixed-size pool of client connections to one server, suitable
// for concurrent callers.
type Pool struct {
	addr    string
	clients chan *Client
	size    int
	mu      sync.Mutex
	closed  bool
}

// NewPool creates a pool of size lazily dialed connections.
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 4
	}
	p := &Pool{addr: addr, clients: make(chan *Client, size), size: size}
	for i := 0; i < size; i++ {
		p.clients <- nil // lazy slot
	}
	return p
}

// Execute borrows a connection, runs the statement, and returns the
// connection to the pool. Broken connections are re-dialed on next use.
func (p *Pool) Execute(sql string, args ...Value) (Result, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return Result{}, errors.New("minisql: pool is closed")
	}
	p.mu.Unlock()
	c := <-p.clients
	if c == nil {
		var err error
		c, err = Dial(p.addr)
		if err != nil {
			p.clients <- nil
			return Result{}, err
		}
	}
	res, err := c.Execute(sql, args...)
	if err != nil && isConnError(err) {
		c.Close()
		p.clients <- nil
		return res, err
	}
	p.clients <- c
	return res, err
}

func isConnError(err error) bool {
	s := err.Error()
	return errors.Is(err, net.ErrClosed) ||
		strings.Contains(s, "minisql: send") || strings.Contains(s, "minisql: recv") ||
		strings.Contains(s, "client is closed")
}

// Close closes all pooled connections.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	for i := 0; i < p.size; i++ {
		if c := <-p.clients; c != nil {
			c.Close()
		}
	}
}
