package minisql

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Result is the outcome of executing a statement.
type Result struct {
	// Columns names the result columns of a SELECT.
	Columns []string
	// Rows holds the result rows of a SELECT.
	Rows [][]Value
	// Affected counts rows written by INSERT/UPDATE/DELETE.
	Affected int64
}

// Engine is an in-memory SQL database. All methods are safe for concurrent
// use; statements execute atomically with respect to each other.
type Engine struct {
	mu     sync.RWMutex
	tables map[string]*tableData

	cacheMu   sync.RWMutex
	stmtCache map[string]Statement

	journalMu sync.Mutex
	journal   func(sql string, args []Value)

	// writeMu serializes write statements so the journal order matches the
	// order writes were applied — required for statement-shipping
	// replication to converge. Reads are unaffected.
	writeMu sync.Mutex
}

type tableData struct {
	mu      sync.RWMutex
	name    string
	schema  []ColumnDef
	colIdx  map[string]int
	pkCol   int // -1 when the table has no primary key
	rows    [][]Value
	pkIndex map[Value]int // primary-key value -> index into rows
}

// NewEngine returns an empty database.
func NewEngine() *Engine {
	return &Engine{
		tables:    make(map[string]*tableData),
		stmtCache: make(map[string]Statement),
	}
}

// SetJournal installs a hook invoked after every successful write statement
// with the original SQL and bound arguments. Used for statement-shipping
// replication. Pass nil to disable.
func (e *Engine) SetJournal(fn func(sql string, args []Value)) {
	e.journalMu.Lock()
	e.journal = fn
	e.journalMu.Unlock()
}

func (e *Engine) emitJournal(sql string, args []Value) {
	e.journalMu.Lock()
	fn := e.journal
	e.journalMu.Unlock()
	if fn != nil {
		fn(sql, args)
	}
}

// parseCached parses sql, memoizing the AST. Statements are immutable after
// parse (placeholders are bound into copies), so sharing is safe.
func (e *Engine) parseCached(sql string) (Statement, error) {
	e.cacheMu.RLock()
	st, ok := e.stmtCache[sql]
	e.cacheMu.RUnlock()
	if ok {
		return st, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	e.cacheMu.Lock()
	// Bound growth: an adversarial unique-statement stream must not leak.
	if len(e.stmtCache) > 4096 {
		e.stmtCache = make(map[string]Statement)
	}
	e.stmtCache[sql] = st
	e.cacheMu.Unlock()
	return st, nil
}

// Execute parses and runs one statement with the given placeholder values.
func (e *Engine) Execute(sql string, args ...Value) (Result, error) {
	st, err := e.parseCached(sql)
	if err != nil {
		return Result{}, err
	}
	if _, isSelect := st.(SelectStmt); !isSelect {
		e.writeMu.Lock()
		defer e.writeMu.Unlock()
	}
	res, wrote, err := e.exec(st, args)
	if err != nil {
		return Result{}, err
	}
	if wrote {
		e.emitJournal(sql, args)
	}
	return res, nil
}

// bind resolves an expression against the placeholder argument list.
func bind(ex Expr, args []Value, next *int) (Value, error) {
	if !ex.Placeholder {
		return ex.Value, nil
	}
	if *next >= len(args) {
		return Value{}, fmt.Errorf("minisql: not enough arguments: need more than %d", len(args))
	}
	v := args[*next]
	*next++
	return v, nil
}

func bindConds(conds []Cond, args []Value, next *int) ([]boundCond, error) {
	out := make([]boundCond, len(conds))
	for i, c := range conds {
		v, err := bind(c.Expr, args, next)
		if err != nil {
			return nil, err
		}
		out[i] = boundCond{Column: c.Column, Op: c.Op, Value: v}
	}
	return out, nil
}

type boundCond struct {
	Column string
	Op     CondOp
	Value  Value
}

func (c boundCond) matches(v Value) bool {
	cmp := Compare(v, c.Value)
	switch c.Op {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	default:
		return false
	}
}

func (e *Engine) exec(st Statement, args []Value) (Result, bool, error) {
	switch s := st.(type) {
	case CreateTableStmt:
		err := e.createTable(s)
		return Result{}, err == nil, err
	case DropTableStmt:
		err := e.dropTable(s)
		return Result{}, err == nil, err
	case InsertStmt:
		n, err := e.insert(s, args)
		return Result{Affected: n}, err == nil && n > 0, err
	case SelectStmt:
		res, err := e.selectRows(s, args)
		return res, false, err
	case UpdateStmt:
		n, err := e.update(s, args)
		return Result{Affected: n}, err == nil && n > 0, err
	case DeleteStmt:
		n, err := e.deleteRows(s, args)
		return Result{Affected: n}, err == nil && n > 0, err
	default:
		return Result{}, false, fmt.Errorf("minisql: unsupported statement %T", st)
	}
}

func (e *Engine) getTable(name string) (*tableData, error) {
	e.mu.RLock()
	t := e.tables[strings.ToLower(name)]
	e.mu.RUnlock()
	if t == nil {
		return nil, fmt.Errorf("minisql: no such table %q", name)
	}
	return t, nil
}

func (e *Engine) createTable(s CreateTableStmt) error {
	if len(s.Columns) == 0 {
		return fmt.Errorf("minisql: table %q has no columns", s.Name)
	}
	t := &tableData{
		name:    strings.ToLower(s.Name),
		schema:  s.Columns,
		colIdx:  make(map[string]int, len(s.Columns)),
		pkCol:   -1,
		pkIndex: make(map[Value]int),
	}
	for i, c := range s.Columns {
		lc := strings.ToLower(c.Name)
		if _, dup := t.colIdx[lc]; dup {
			return fmt.Errorf("minisql: duplicate column %q", c.Name)
		}
		t.colIdx[lc] = i
		if c.PrimaryKey {
			if t.pkCol >= 0 {
				return fmt.Errorf("minisql: multiple primary keys in %q", s.Name)
			}
			t.pkCol = i
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.tables[t.name]; exists {
		if s.IfNotExists {
			return nil
		}
		return fmt.Errorf("minisql: table %q already exists", s.Name)
	}
	e.tables[t.name] = t
	return nil
}

func (e *Engine) dropTable(s DropTableStmt) error {
	name := strings.ToLower(s.Name)
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tables[name]; !ok {
		if s.IfExists {
			return nil
		}
		return fmt.Errorf("minisql: no such table %q", s.Name)
	}
	delete(e.tables, name)
	return nil
}

// columnPositions maps stated insert columns to schema positions; an empty
// column list means "all columns in schema order".
func (t *tableData) columnPositions(cols []string) ([]int, error) {
	if len(cols) == 0 {
		pos := make([]int, len(t.schema))
		for i := range pos {
			pos[i] = i
		}
		return pos, nil
	}
	pos := make([]int, len(cols))
	for i, c := range cols {
		idx, ok := t.colIdx[strings.ToLower(c)]
		if !ok {
			return nil, fmt.Errorf("minisql: no column %q in table %q", c, t.name)
		}
		pos[i] = idx
	}
	return pos, nil
}

func (e *Engine) insert(s InsertStmt, args []Value) (int64, error) {
	t, err := e.getTable(s.Table)
	if err != nil {
		return 0, err
	}
	next := 0
	t.mu.Lock()
	defer t.mu.Unlock()
	pos, err := t.columnPositions(s.Columns)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(pos) {
			return affected, fmt.Errorf("minisql: row has %d values, want %d", len(exprRow), len(pos))
		}
		row := make([]Value, len(t.schema))
		for i := range row {
			row[i] = Null()
		}
		for i, ex := range exprRow {
			v, err := bind(ex, args, &next)
			if err != nil {
				return affected, err
			}
			cv, err := coerce(v, t.schema[pos[i]].Kind)
			if err != nil {
				return affected, err
			}
			row[pos[i]] = cv
		}
		if t.pkCol >= 0 {
			pk := row[t.pkCol]
			if pk.IsNull() {
				return affected, fmt.Errorf("minisql: NULL primary key in table %q", t.name)
			}
			if existing, dup := t.pkIndex[pk]; dup {
				if !s.Replace {
					return affected, fmt.Errorf("minisql: duplicate primary key %s in table %q", pk, t.name)
				}
				t.rows[existing] = row
				affected++
				continue
			}
			t.pkIndex[pk] = len(t.rows)
		}
		t.rows = append(t.rows, row)
		affected++
	}
	return affected, nil
}

// candidateRows returns the indexes of rows matching the bound conditions,
// using the PK index when a `pk = v` term is present (the Janus fast path).
func (t *tableData) candidateRows(conds []boundCond) ([]int, error) {
	for _, c := range conds {
		idx, ok := t.colIdx[strings.ToLower(c.Column)]
		if !ok {
			return nil, fmt.Errorf("minisql: no column %q in table %q", c.Column, t.name)
		}
		if c.Op == OpEq && idx == t.pkCol {
			cv, err := coerce(c.Value, t.schema[idx].Kind)
			if err != nil {
				return []int{}, nil // un-coercible value matches nothing
			}
			ri, found := t.pkIndex[cv]
			if !found {
				return []int{}, nil
			}
			if t.rowMatches(ri, conds) {
				return []int{ri}, nil
			}
			return []int{}, nil
		}
	}
	var out []int
	for i := range t.rows {
		if t.rowMatches(i, conds) {
			out = append(out, i)
		}
	}
	return out, nil
}

func (t *tableData) rowMatches(ri int, conds []boundCond) bool {
	for _, c := range conds {
		idx := t.colIdx[strings.ToLower(c.Column)]
		if !c.matches(t.rows[ri][idx]) {
			return false
		}
	}
	return true
}

func (t *tableData) validateConds(conds []boundCond) error {
	for _, c := range conds {
		if _, ok := t.colIdx[strings.ToLower(c.Column)]; !ok {
			return fmt.Errorf("minisql: no column %q in table %q", c.Column, t.name)
		}
	}
	return nil
}

func (e *Engine) selectRows(s SelectStmt, args []Value) (Result, error) {
	t, err := e.getTable(s.Table)
	if err != nil {
		return Result{}, err
	}
	next := 0
	conds, err := bindConds(s.Where, args, &next)
	if err != nil {
		return Result{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.validateConds(conds); err != nil {
		return Result{}, err
	}
	idxs, err := t.candidateRows(conds)
	if err != nil {
		return Result{}, err
	}
	if s.Count {
		return Result{Columns: []string{"count"}, Rows: [][]Value{{Int(int64(len(idxs)))}}}, nil
	}

	// Projection.
	proj := make([]int, 0, len(t.schema))
	var cols []string
	if len(s.Columns) == 0 {
		for i, c := range t.schema {
			proj = append(proj, i)
			cols = append(cols, c.Name)
		}
	} else {
		for _, c := range s.Columns {
			idx, ok := t.colIdx[strings.ToLower(c)]
			if !ok {
				return Result{}, fmt.Errorf("minisql: no column %q in table %q", c, t.name)
			}
			proj = append(proj, idx)
			cols = append(cols, t.schema[idx].Name)
		}
	}

	if s.Order != nil {
		oi, ok := t.colIdx[strings.ToLower(s.Order.Column)]
		if !ok {
			return Result{}, fmt.Errorf("minisql: no column %q in table %q", s.Order.Column, t.name)
		}
		sort.SliceStable(idxs, func(a, b int) bool {
			cmp := Compare(t.rows[idxs[a]][oi], t.rows[idxs[b]][oi])
			if s.Order.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
	}
	if s.Limit >= 0 && len(idxs) > s.Limit {
		idxs = idxs[:s.Limit]
	}

	out := make([][]Value, 0, len(idxs))
	for _, ri := range idxs {
		row := make([]Value, len(proj))
		for i, ci := range proj {
			row[i] = t.rows[ri][ci]
		}
		out = append(out, row)
	}
	return Result{Columns: cols, Rows: out}, nil
}

func (e *Engine) update(s UpdateStmt, args []Value) (int64, error) {
	t, err := e.getTable(s.Table)
	if err != nil {
		return 0, err
	}
	// Bind SET expressions first (placeholder order: SET then WHERE).
	next := 0
	type setVal struct {
		col int
		val Value
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	sets := make([]setVal, 0, len(s.Sets))
	for _, sv := range s.Sets {
		idx, ok := t.colIdx[strings.ToLower(sv.Column)]
		if !ok {
			return 0, fmt.Errorf("minisql: no column %q in table %q", sv.Column, t.name)
		}
		v, err := bind(sv.Expr, args, &next)
		if err != nil {
			return 0, err
		}
		cv, err := coerce(v, t.schema[idx].Kind)
		if err != nil {
			return 0, err
		}
		sets = append(sets, setVal{idx, cv})
	}
	conds, err := bindConds(s.Where, args, &next)
	if err != nil {
		return 0, err
	}
	if err := t.validateConds(conds); err != nil {
		return 0, err
	}
	idxs, err := t.candidateRows(conds)
	if err != nil {
		return 0, err
	}
	var affected int64
	for _, ri := range idxs {
		for _, sv := range sets {
			if sv.col == t.pkCol {
				old := t.rows[ri][t.pkCol]
				if !Equal(old, sv.val) {
					if _, dup := t.pkIndex[sv.val]; dup {
						return affected, fmt.Errorf("minisql: duplicate primary key %s", sv.val)
					}
					delete(t.pkIndex, old)
					t.pkIndex[sv.val] = ri
				}
			}
			t.rows[ri][sv.col] = sv.val
		}
		affected++
	}
	return affected, nil
}

func (e *Engine) deleteRows(s DeleteStmt, args []Value) (int64, error) {
	t, err := e.getTable(s.Table)
	if err != nil {
		return 0, err
	}
	next := 0
	conds, err := bindConds(s.Where, args, &next)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.validateConds(conds); err != nil {
		return 0, err
	}
	idxs, err := t.candidateRows(conds)
	if err != nil {
		return 0, err
	}
	// Delete from the highest index down so swap-removal does not disturb
	// earlier candidates.
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, ri := range idxs {
		last := len(t.rows) - 1
		if t.pkCol >= 0 {
			delete(t.pkIndex, t.rows[ri][t.pkCol])
		}
		if ri != last {
			t.rows[ri] = t.rows[last]
			if t.pkCol >= 0 {
				t.pkIndex[t.rows[ri][t.pkCol]] = ri
			}
		}
		t.rows = t.rows[:last]
	}
	return int64(len(idxs)), nil
}

// TableNames returns the names of all tables, sorted.
func (e *Engine) TableNames() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.tables))
	for n := range e.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Schema returns the column definitions of a table.
func (e *Engine) Schema(table string) ([]ColumnDef, error) {
	t, err := e.getTable(table)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ColumnDef, len(t.schema))
	copy(out, t.schema)
	return out, nil
}

// RowCount returns the number of rows in a table.
func (e *Engine) RowCount(table string) (int, error) {
	t, err := e.getTable(table)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows), nil
}
