package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= != <> ? ;
)

type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	pos  int
}

var keywords = map[string]bool{
	"CREATE": true, "TABLE": true, "IF": true, "NOT": true, "EXISTS": true,
	"PRIMARY": true, "KEY": true, "INT": true, "INTEGER": true, "BIGINT": true,
	"FLOAT": true, "DOUBLE": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"INSERT": true, "REPLACE": true, "INTO": true, "VALUES": true,
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"UPDATE": true, "SET": true, "DELETE": true, "DROP": true,
	"COUNT": true, "NULL": true, "OR": true,
}

// lex tokenizes a SQL string. It returns an error with position context on
// any byte it cannot interpret.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					// Doubled quote is an escaped quote.
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("minisql: unterminated string literal at %d", start)
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9':
			start := i
			i++
			for i < n && (input[i] >= '0' && input[i] <= '9' || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				(input[i] == '-' || input[i] == '+') && (input[i-1] == 'e' || input[i-1] == 'E')) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '`': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(input[i:], '`')
			if j < 0 {
				return nil, fmt.Errorf("minisql: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, token{tokIdent, input[i : i+j], start})
			i += j + 1
		case c == '<' || c == '>' || c == '!':
			start := i
			if i+1 < n && (input[i+1] == '=' || c == '<' && input[i+1] == '>') {
				toks = append(toks, token{tokSymbol, input[i : i+2], start})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("minisql: stray '!' at %d", i)
			} else {
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			}
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == '?' || c == ';':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
