// Package minisql is a from-scratch, in-memory mini relational database that
// stands in for the MySQL/RDS database layer of the paper (§II-D, §III-D).
//
// It implements exactly the surface Janus needs, and implements it for real:
//
//   - a typed storage engine (tables, rows, primary-key hash index),
//   - a SQL subset — CREATE TABLE, INSERT [OR REPLACE], SELECT (with WHERE
//     conjunctions, ORDER BY, LIMIT), UPDATE, DELETE — with ?-placeholders,
//   - a length-prefixed TCP wire protocol with a pooled client,
//   - master/standby replication with statement shipping and promotion,
//     mirroring the Multi-AZ RDS failover behaviour the paper relies on.
//
// The paper's access pattern is: a full-table scan at warm-up ("SELECT *
// FROM qos_rules"), point reads on the primary key when a QoS server sees a
// new key, and periodic point writes for checkpointing. All of these hit the
// PK fast path.
package minisql

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

// Supported kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Null, Int, Float and Text construct values.
func Null() Value           { return Value{Kind: KindNull} }
func Int(v int64) Value     { return Value{Kind: KindInt, I: v} }
func Float(v float64) Value { return Value{Kind: KindFloat, F: v} }
func Text(v string) Value   { return Value{Kind: KindText, S: v} }

// Bool encodes a boolean as INT 0/1, as MySQL does.
func Bool(v bool) Value {
	if v {
		return Int(1)
	}
	return Int(0)
}

// IsNull reports whether v is the SQL NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsInt coerces v to int64 (text parses, float truncates, null is 0).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt:
		return v.I
	case KindFloat:
		return int64(v.F)
	case KindText:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	default:
		return 0
	}
}

// AsFloat coerces v to float64.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindText:
		f, _ := strconv.ParseFloat(v.S, 64)
		return f
	default:
		return 0
	}
}

// AsText coerces v to its string rendering.
func (v Value) AsText() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindText:
		return v.S
	default:
		return ""
	}
}

// String implements fmt.Stringer with SQL-style literals.
func (v Value) String() string {
	if v.Kind == KindText {
		return "'" + v.S + "'"
	}
	if v.Kind == KindNull {
		return "NULL"
	}
	return v.AsText()
}

// Compare orders a against b: -1, 0, +1. NULL sorts before everything.
// Numeric kinds compare numerically (int vs float allowed); text compares
// lexicographically; a numeric never equals a text.
func Compare(a, b Value) int {
	an, bn := a.Kind == KindNull, b.Kind == KindNull
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	at, bt := a.Kind == KindText, b.Kind == KindText
	switch {
	case at && bt:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case at != bt:
		// Mixed text/number: order numbers before text, never equal.
		if at {
			return 1
		}
		return -1
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports a == b under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// coerce converts v to the column kind k, returning an error on an
// impossible conversion (typed columns reject mismatched text).
func coerce(v Value, k Kind) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch k {
	case KindInt:
		if v.Kind == KindText {
			n, err := strconv.ParseInt(v.S, 10, 64)
			if err != nil {
				return Value{}, fmt.Errorf("minisql: cannot coerce %s to INT", v)
			}
			return Int(n), nil
		}
		return Int(v.AsInt()), nil
	case KindFloat:
		if v.Kind == KindText {
			f, err := strconv.ParseFloat(v.S, 64)
			if err != nil {
				return Value{}, fmt.Errorf("minisql: cannot coerce %s to FLOAT", v)
			}
			return Float(f), nil
		}
		return Float(v.AsFloat()), nil
	case KindText:
		return Text(v.AsText()), nil
	default:
		return v, nil
	}
}
