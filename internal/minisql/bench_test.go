package minisql

import (
	"fmt"
	"testing"
)

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	e := NewEngine()
	if _, err := e.Execute(`CREATE TABLE qos_rules (key TEXT PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := e.Execute(`INSERT INTO qos_rules VALUES (?, 1, 2, 3)`, Text(fmt.Sprintf("k%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// BenchmarkPointSelect is the QoS server's rule-fetch statement.
func BenchmarkPointSelect(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(`SELECT key, refill_rate, capacity, credit FROM qos_rules WHERE key = ?`,
			Text(fmt.Sprintf("k%d", i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPointUpdate is the checkpoint statement.
func BenchmarkPointUpdate(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(`UPDATE qos_rules SET credit = ? WHERE key = ?`,
			Float(float64(i)), Text(fmt.Sprintf("k%d", i%10000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplaceUpsert is the rule-management statement.
func BenchmarkReplaceUpsert(b *testing.B) {
	e := benchEngine(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(`REPLACE INTO qos_rules VALUES (?, 1, 2, 3)`,
			Text(fmt.Sprintf("k%d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullScan is the warm-up SELECT * (paper §III-D).
func BenchmarkFullScan(b *testing.B) {
	e := benchEngine(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Execute(`SELECT * FROM qos_rules`)
		if err != nil || len(res.Rows) != 10000 {
			b.Fatalf("rows=%d err=%v", len(res.Rows), err)
		}
	}
}

// BenchmarkPointSelectOverTCP measures the networked path used by the real
// deployment.
func BenchmarkPointSelectOverTCP(b *testing.B) {
	e := benchEngine(b, 1000)
	srv, err := NewServer(e, "127.0.0.1:0", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(`SELECT credit FROM qos_rules WHERE key = ?`,
			Text(fmt.Sprintf("k%d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseStatement measures the parser (uncached path).
func BenchmarkParseStatement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(`SELECT key, refill_rate, capacity, credit FROM qos_rules WHERE key = ? AND credit >= 0 ORDER BY key DESC LIMIT 5`); err != nil {
			b.Fatal(err)
		}
	}
}
