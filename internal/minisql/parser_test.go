package minisql

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, `CREATE TABLE qos_rules (key VARCHAR(255) PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`)
	ct, ok := st.(CreateTableStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if ct.Name != "qos_rules" || len(ct.Columns) != 4 {
		t.Fatalf("stmt = %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Kind != KindText || ct.Columns[0].Name != "key" {
		t.Fatalf("pk col = %+v", ct.Columns[0])
	}
	if ct.Columns[1].Kind != KindFloat {
		t.Fatalf("col1 = %+v", ct.Columns[1])
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	st := mustParse(t, `create table if not exists t (a int)`)
	if !st.(CreateTableStmt).IfNotExists {
		t.Fatal("IfNotExists not set")
	}
}

func TestParseTypeAliases(t *testing.T) {
	st := mustParse(t, `CREATE TABLE t (a INTEGER, b BIGINT, c DOUBLE, d REAL, e TEXT, f VARCHAR(10))`)
	kinds := []Kind{KindInt, KindInt, KindFloat, KindFloat, KindText, KindText}
	for i, c := range st.(CreateTableStmt).Columns {
		if c.Kind != kinds[i] {
			t.Errorf("col %d kind = %v, want %v", i, c.Kind, kinds[i])
		}
	}
}

func TestParseInsert(t *testing.T) {
	st := mustParse(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (?, NULL)`)
	ins := st.(InsertStmt)
	if ins.Table != "t" || ins.Replace || len(ins.Rows) != 2 {
		t.Fatalf("stmt = %+v", ins)
	}
	if !reflect.DeepEqual(ins.Columns, []string{"a", "b"}) {
		t.Fatalf("cols = %v", ins.Columns)
	}
	if ins.Rows[0][0].Value != Int(1) || ins.Rows[0][1].Value != Text("x") {
		t.Fatalf("row0 = %+v", ins.Rows[0])
	}
	if !ins.Rows[1][0].Placeholder || !ins.Rows[1][1].Value.IsNull() {
		t.Fatalf("row1 = %+v", ins.Rows[1])
	}
}

func TestParseReplace(t *testing.T) {
	st := mustParse(t, `REPLACE INTO t VALUES (?, ?)`)
	if !st.(InsertStmt).Replace {
		t.Fatal("Replace not set")
	}
}

func TestParseSelectStar(t *testing.T) {
	st := mustParse(t, `SELECT * FROM qos_rules`)
	sel := st.(SelectStmt)
	if sel.Table != "qos_rules" || len(sel.Columns) != 0 || sel.Limit != -1 || sel.Where != nil {
		t.Fatalf("stmt = %+v", sel)
	}
}

func TestParseSelectFull(t *testing.T) {
	st := mustParse(t, `SELECT id, owner FROM photos WHERE owner = ? AND id > 100 ORDER BY id DESC LIMIT 20;`)
	sel := st.(SelectStmt)
	if !reflect.DeepEqual(sel.Columns, []string{"id", "owner"}) {
		t.Fatalf("cols = %v", sel.Columns)
	}
	if len(sel.Where) != 2 || sel.Where[0].Op != OpEq || !sel.Where[0].Expr.Placeholder {
		t.Fatalf("where = %+v", sel.Where)
	}
	if sel.Where[1].Op != OpGt || sel.Where[1].Expr.Value != Int(100) {
		t.Fatalf("where[1] = %+v", sel.Where[1])
	}
	if sel.Order == nil || sel.Order.Column != "id" || !sel.Order.Desc || sel.Limit != 20 {
		t.Fatalf("order/limit = %+v %d", sel.Order, sel.Limit)
	}
}

func TestParseSelectCount(t *testing.T) {
	st := mustParse(t, `SELECT COUNT(*) FROM t WHERE a <= 3`)
	sel := st.(SelectStmt)
	if !sel.Count || sel.Where[0].Op != OpLe {
		t.Fatalf("stmt = %+v", sel)
	}
}

func TestParseKeywordAsColumnName(t *testing.T) {
	// The paper's schema uses a column literally named "key".
	st := mustParse(t, `SELECT key, credit FROM qos_rules WHERE key = ?`)
	sel := st.(SelectStmt)
	if sel.Columns[0] != "key" || sel.Where[0].Column != "key" {
		t.Fatalf("stmt = %+v", sel)
	}
}

func TestParseUpdate(t *testing.T) {
	st := mustParse(t, `UPDATE qos_rules SET credit = ?, capacity = 10.5 WHERE key = ?`)
	up := st.(UpdateStmt)
	if up.Table != "qos_rules" || len(up.Sets) != 2 {
		t.Fatalf("stmt = %+v", up)
	}
	if up.Sets[0].Column != "credit" || !up.Sets[0].Expr.Placeholder {
		t.Fatalf("set0 = %+v", up.Sets[0])
	}
	if up.Sets[1].Expr.Value != Float(10.5) {
		t.Fatalf("set1 = %+v", up.Sets[1])
	}
}

func TestParseDelete(t *testing.T) {
	st := mustParse(t, `DELETE FROM t WHERE a != 'q''uoted'`)
	del := st.(DeleteStmt)
	if del.Where[0].Op != OpNe || del.Where[0].Expr.Value != Text("q'uoted") {
		t.Fatalf("stmt = %+v", del)
	}
}

func TestParseDeleteAll(t *testing.T) {
	st := mustParse(t, `DELETE FROM t`)
	if st.(DeleteStmt).Where != nil {
		t.Fatal("unexpected where")
	}
}

func TestParseDropTable(t *testing.T) {
	st := mustParse(t, `DROP TABLE IF EXISTS t`)
	if !st.(DropTableStmt).IfExists || st.(DropTableStmt).Name != "t" {
		t.Fatalf("stmt = %+v", st)
	}
}

func TestParseOperators(t *testing.T) {
	for text, op := range map[string]CondOp{
		"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
	} {
		st := mustParse(t, "SELECT * FROM t WHERE a "+text+" 1")
		if got := st.(SelectStmt).Where[0].Op; got != op {
			t.Errorf("op %q parsed as %q", text, got)
		}
	}
}

func TestParseNegativeAndFloatNumbers(t *testing.T) {
	st := mustParse(t, `SELECT * FROM t WHERE a = -12 AND b = 3.5e2`)
	sel := st.(SelectStmt)
	if sel.Where[0].Expr.Value != Int(-12) {
		t.Fatalf("neg = %+v", sel.Where[0].Expr.Value)
	}
	if sel.Where[1].Expr.Value != Float(350) {
		t.Fatalf("float = %+v", sel.Where[1].Expr.Value)
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	st := mustParse(t, "SELECT * FROM `my table`")
	if st.(SelectStmt).Table != "my table" {
		t.Fatalf("table = %q", st.(SelectStmt).Table)
	}
}

func TestParseErrors(t *testing.T) {
	for _, sql := range []string{
		"",
		"FROBNICATE",
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ==",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t extra tokens",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BOGUS)",
		"INSERT INTO t VALUES",
		"INSERT t VALUES (1)",
		"UPDATE t WHERE a = 1",
		"DELETE t",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t WHERE a ! 1",
		"SELECT * FROM t WHERE a = $1",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		Parse(s)
		Parse("SELECT " + s)
		Parse("INSERT INTO t VALUES ('" + strings.ReplaceAll(s, "'", "''") + "')")
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].pos != 0 || toks[1].pos != 7 || toks[2].pos != 9 {
		t.Fatalf("positions = %d %d %d", toks[0].pos, toks[1].pos, toks[2].pos)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
}
