package minisql

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Replica follows a master server, mirroring the RDS Multi-AZ standby
// (paper §III-D): it seeds itself from a snapshot, applies the journaled
// write stream, and can be promoted to master on failover.
type Replica struct {
	engine *Engine

	mu       sync.Mutex
	conn     net.Conn
	stopped  bool
	promoted atomic.Bool
	applied  atomic.Int64
	lastErr  atomic.Value // string
	wg       sync.WaitGroup
}

// NewReplica creates a replica applying into engine. Call Follow to start.
func NewReplica(engine *Engine) *Replica { return &Replica{engine: engine} }

// Applied returns the number of replication entries applied so far.
func (r *Replica) Applied() int64 { return r.applied.Load() }

// Err returns the last replication error, if any.
func (r *Replica) Err() error {
	if s, ok := r.lastErr.Load().(string); ok && s != "" {
		return errors.New(s)
	}
	return nil
}

// Follow connects to the master at addr, restores the snapshot, then applies
// the live stream in a background goroutine until Stop or Promote is called
// or the connection fails. Follow returns after the snapshot is applied, so
// the replica is queryable (read-only) when Follow returns.
func (r *Replica) Follow(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("minisql: replica dial %s: %w", addr, err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&frame{Type: frameSubscribe}); err != nil {
		conn.Close()
		return fmt.Errorf("minisql: subscribe: %w", err)
	}
	var f frame
	if err := dec.Decode(&f); err != nil {
		conn.Close()
		return fmt.Errorf("minisql: snapshot recv: %w", err)
	}
	if f.Type != frameSnapshot {
		conn.Close()
		return fmt.Errorf("minisql: expected snapshot, got frame type %d", f.Type)
	}
	if err := r.engine.Restore(f.Snap); err != nil {
		conn.Close()
		return err
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		conn.Close()
		return errors.New("minisql: replica stopped")
	}
	r.conn = conn
	r.mu.Unlock()
	r.wg.Add(1)
	go r.applyLoop(dec)
	return nil
}

func (r *Replica) applyLoop(dec *gob.Decoder) {
	defer r.wg.Done()
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			if !r.promoted.Load() {
				r.lastErr.Store(err.Error())
			}
			return
		}
		if f.Type != frameReplEntry {
			r.lastErr.Store(fmt.Sprintf("minisql: unexpected replication frame %d", f.Type))
			return
		}
		if _, err := r.engine.Execute(f.SQL, f.Args...); err != nil {
			// A plain INSERT already present via the snapshot overlap window
			// fails with a duplicate-key error; it is safe to skip because
			// the row content is identical.
			if !strings.Contains(err.Error(), "duplicate primary key") {
				r.lastErr.Store(err.Error())
				return
			}
		}
		r.applied.Add(1)
	}
}

// Promote detaches from the master and marks the replica as promoted. The
// caller flips the co-located Server out of read-only mode to begin serving
// writes (the DNS failover in the cluster layer then points clients here).
func (r *Replica) Promote() {
	r.promoted.Store(true)
	r.Stop()
	// A connection error observed while the master was dying is expected
	// and moot once this node takes over.
	r.lastErr.Store("")
}

// Promoted reports whether Promote has been called.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Stop terminates replication without promoting.
func (r *Replica) Stop() {
	r.mu.Lock()
	r.stopped = true
	if r.conn != nil {
		r.conn.Close()
		r.conn = nil
	}
	r.mu.Unlock()
	r.wg.Wait()
}
