package minisql

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// waitFor polls cond until it holds or a generous deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never satisfied")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Model-based test: a long random stream of INSERT/REPLACE/UPDATE/DELETE/
// SELECT against the engine must agree with a plain Go map model at every
// step. This is the strongest single check on the storage engine + PK
// index interplay (swap-deletes, upserts, coerced keys).

type modelRow struct {
	rate, capacity, credit float64
}

func TestEngineAgreesWithMapModel(t *testing.T) {
	e := NewEngine()
	if _, err := e.Execute(`CREATE TABLE qos_rules (key TEXT PRIMARY KEY, refill_rate FLOAT, capacity FLOAT, credit FLOAT)`); err != nil {
		t.Fatal(err)
	}
	model := map[string]modelRow{}
	rng := rand.New(rand.NewSource(2024))
	keyOf := func() string { return fmt.Sprintf("k%d", rng.Intn(200)) }

	for step := 0; step < 20000; step++ {
		k := keyOf()
		switch rng.Intn(6) {
		case 0: // INSERT (may conflict)
			r := modelRow{float64(rng.Intn(100)), float64(rng.Intn(1000)), float64(rng.Intn(1000))}
			_, err := e.Execute(`INSERT INTO qos_rules VALUES (?, ?, ?, ?)`,
				Text(k), Float(r.rate), Float(r.capacity), Float(r.credit))
			_, exists := model[k]
			if exists && err == nil {
				t.Fatalf("step %d: duplicate insert of %s succeeded", step, k)
			}
			if !exists {
				if err != nil {
					t.Fatalf("step %d: insert %s failed: %v", step, k, err)
				}
				model[k] = r
			}
		case 1: // REPLACE (upsert)
			r := modelRow{float64(rng.Intn(100)), float64(rng.Intn(1000)), float64(rng.Intn(1000))}
			if _, err := e.Execute(`REPLACE INTO qos_rules VALUES (?, ?, ?, ?)`,
				Text(k), Float(r.rate), Float(r.capacity), Float(r.credit)); err != nil {
				t.Fatalf("step %d: replace: %v", step, err)
			}
			model[k] = r
		case 2: // UPDATE credit
			c := float64(rng.Intn(1000))
			res, err := e.Execute(`UPDATE qos_rules SET credit = ? WHERE key = ?`, Float(c), Text(k))
			if err != nil {
				t.Fatalf("step %d: update: %v", step, err)
			}
			if r, ok := model[k]; ok {
				if res.Affected != 1 {
					t.Fatalf("step %d: update affected %d, want 1", step, res.Affected)
				}
				r.credit = c
				model[k] = r
			} else if res.Affected != 0 {
				t.Fatalf("step %d: update of ghost affected %d", step, res.Affected)
			}
		case 3: // DELETE
			res, err := e.Execute(`DELETE FROM qos_rules WHERE key = ?`, Text(k))
			if err != nil {
				t.Fatalf("step %d: delete: %v", step, err)
			}
			_, exists := model[k]
			if (res.Affected == 1) != exists {
				t.Fatalf("step %d: delete affected %d, exists %v", step, res.Affected, exists)
			}
			delete(model, k)
		case 4: // SELECT point
			res, err := e.Execute(`SELECT refill_rate, capacity, credit FROM qos_rules WHERE key = ?`, Text(k))
			if err != nil {
				t.Fatalf("step %d: select: %v", step, err)
			}
			r, exists := model[k]
			if exists != (len(res.Rows) == 1) {
				t.Fatalf("step %d: select rows %d, exists %v", step, len(res.Rows), exists)
			}
			if exists {
				row := res.Rows[0]
				if row[0].AsFloat() != r.rate || row[1].AsFloat() != r.capacity || row[2].AsFloat() != r.credit {
					t.Fatalf("step %d: row %v != model %v", step, row, r)
				}
			}
		case 5: // COUNT
			res, err := e.Execute(`SELECT COUNT(*) FROM qos_rules`)
			if err != nil {
				t.Fatalf("step %d: count: %v", step, err)
			}
			if got := res.Rows[0][0].AsInt(); got != int64(len(model)) {
				t.Fatalf("step %d: count %d != model %d", step, got, len(model))
			}
		}
	}

	// Final full-table cross-check.
	res, err := e.Execute(`SELECT key, refill_rate, capacity, credit FROM qos_rules`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(model) {
		t.Fatalf("final rows %d != model %d", len(res.Rows), len(model))
	}
	for _, row := range res.Rows {
		r, ok := model[row[0].AsText()]
		if !ok {
			t.Fatalf("engine has ghost row %v", row)
		}
		if row[1].AsFloat() != r.rate || row[2].AsFloat() != r.capacity || row[3].AsFloat() != r.credit {
			t.Fatalf("final row %v != model %v", row, r)
		}
	}
}

// The same random stream applied to a master must converge on a following
// standby (replication end-to-end model check).
func TestReplicationAgreesWithModel(t *testing.T) {
	master := NewEngine()
	if _, err := master.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(master, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	standby := NewEngine()
	rep := NewReplica(standby)
	if err := rep.Follow(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()

	rng := rand.New(rand.NewSource(7))
	writes := int64(0)
	for step := 0; step < 3000; step++ {
		id := Int(int64(rng.Intn(100)))
		switch rng.Intn(3) {
		case 0:
			if res, _ := master.Execute(`REPLACE INTO t VALUES (?, ?)`, id, Int(int64(step))); res.Affected > 0 {
				writes++
			}
		case 1:
			if res, _ := master.Execute(`UPDATE t SET v = ? WHERE id = ?`, Int(int64(step)), id); res.Affected > 0 {
				writes++
			}
		case 2:
			if res, _ := master.Execute(`DELETE FROM t WHERE id = ?`, id); res.Affected > 0 {
				writes++
			}
		}
	}
	waitFor(t, func() bool { return rep.Applied() >= writes })
	m, _ := master.Execute(`SELECT id, v FROM t ORDER BY id ASC`)
	s, _ := standby.Execute(`SELECT id, v FROM t ORDER BY id ASC`)
	if len(m.Rows) != len(s.Rows) {
		t.Fatalf("row counts: master %d standby %d (applied %d/%d, err %v)",
			len(m.Rows), len(s.Rows), rep.Applied(), writes, rep.Err())
	}
	for i := range m.Rows {
		if m.Rows[i][0] != s.Rows[i][0] || m.Rows[i][1] != s.Rows[i][1] {
			t.Fatalf("row %d diverged: %v vs %v", i, m.Rows[i], s.Rows[i])
		}
	}
}
