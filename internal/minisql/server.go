package minisql

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
)

// Frame types exchanged on the wire. Every message in either direction is a
// frame; gob provides framing and encoding.
const (
	frameQuery     = 0 // client -> server: SQL + args
	frameResult    = 1 // server -> client: result or error
	frameSubscribe = 2 // standby -> master: begin replication
	frameSnapshot  = 3 // master -> standby: full state
	frameReplEntry = 4 // master -> standby: one journaled write
	framePing      = 5 // health check
	framePong      = 6
)

type frame struct {
	Type    byte
	SQL     string
	Args    []Value
	Result  Result
	Err     string
	Snap    SnapshotData
	Serving bool // pong: whether this node accepts writes (is master)
}

// ErrReadOnly is returned for write statements sent to a standby.
var ErrReadOnly = errors.New("minisql: server is read-only (standby)")

// Server exposes an Engine over TCP and acts as the replication master for
// any subscribed standbys.
type Server struct {
	engine   *Engine
	ln       net.Listener
	readOnly atomic.Bool
	logger   *log.Logger

	mu     sync.Mutex
	subs   map[int]chan replEntry
	nextID int
	conns  map[net.Conn]struct{}
	closed bool
	quit   chan struct{}
	wg     sync.WaitGroup
}

type replEntry struct {
	sql  string
	args []Value
}

// NewServer wraps engine in a TCP server listening on addr (use "127.0.0.1:0"
// for an ephemeral port). The server installs itself as the engine's journal
// hook to feed replication.
func NewServer(engine *Engine, addr string, logger *log.Logger) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("minisql: listen %s: %w", addr, err)
	}
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	s := &Server{
		engine: engine,
		ln:     ln,
		logger: logger,
		subs:   make(map[int]chan replEntry),
		conns:  make(map[net.Conn]struct{}),
		quit:   make(chan struct{}),
	}
	engine.SetJournal(s.fanout)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetReadOnly marks the server as a standby (write statements rejected) or
// master.
func (s *Server) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the server currently rejects writes.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

// Engine returns the underlying engine.
func (s *Server) Engine() *Engine { return s.engine }

// Close stops the listener and all connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.quit)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) fanout(sql string, args []Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.subs {
		select {
		case ch <- replEntry{sql, args}:
		default:
			// Slow standby: drop it rather than stall the master. The
			// standby will detect the closed channel and resubscribe with a
			// fresh snapshot.
			s.logger.Printf("minisql: dropping slow replica %d", id)
			close(ch)
			delete(s.subs, id)
		}
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex // replication goroutine shares the encoder
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		switch f.Type {
		case frameQuery:
			reply := frame{Type: frameResult}
			if s.readOnly.Load() && isWriteSQL(s.engine, f.SQL) {
				reply.Err = ErrReadOnly.Error()
			} else {
				res, err := s.engine.Execute(f.SQL, f.Args...)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Result = res
				}
			}
			encMu.Lock()
			err := enc.Encode(&reply)
			encMu.Unlock()
			if err != nil {
				return
			}
		case framePing:
			encMu.Lock()
			err := enc.Encode(&frame{Type: framePong, Serving: !s.readOnly.Load()})
			encMu.Unlock()
			if err != nil {
				return
			}
		case frameSubscribe:
			// Replication streaming runs in its own goroutine so this loop
			// keeps decoding; a remote disconnect then surfaces as a Decode
			// error here, the connection is torn down, and the streamer's
			// next Encode fails and exits.
			s.wg.Add(1)
			go s.streamReplication(enc, &encMu)
		default:
			return // protocol violation
		}
	}
}

// streamReplication sends a snapshot followed by the live journal stream.
// It exits when the subscriber channel is closed (slow replica), an encode
// fails (connection gone), or the server shuts down.
func (s *Server) streamReplication(enc *gob.Encoder, encMu *sync.Mutex) {
	defer s.wg.Done()
	ch := make(chan replEntry, 4096)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
		}
		s.mu.Unlock()
	}()

	// The snapshot is taken after subscription so that any write is either
	// in the snapshot or in the stream (entries already in the snapshot are
	// idempotent REPLACE/UPDATE statements in the Janus workload; duplicate
	// plain INSERTs would error on the standby and are skipped there).
	snap := s.engine.Snapshot()
	encMu.Lock()
	err := enc.Encode(&frame{Type: frameSnapshot, Snap: snap})
	encMu.Unlock()
	if err != nil {
		return
	}
	for {
		select {
		case <-s.quit:
			return
		case entry, ok := <-ch:
			if !ok {
				return // dropped for falling behind
			}
			encMu.Lock()
			err := enc.Encode(&frame{Type: frameReplEntry, SQL: entry.sql, Args: entry.args})
			encMu.Unlock()
			if err != nil {
				return
			}
		}
	}
}

// isWriteSQL reports whether sql is a mutating statement. Unparseable SQL is
// treated as a write so the standby rejects it conservatively.
func isWriteSQL(e *Engine, sql string) bool {
	st, err := e.parseCached(sql)
	if err != nil {
		return true
	}
	_, isSelect := st.(SelectStmt)
	return !isSelect
}
