package minisql

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T) (*Server, *Engine) {
	t.Helper()
	e := NewEngine()
	srv, err := NewServer(e, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, e
}

func TestClientServerRoundTrip(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v TEXT)`); err != nil {
		t.Fatal(err)
	}
	res, err := c.Execute(`INSERT INTO t VALUES (?, ?)`, Int(1), Text("hello"))
	if err != nil || res.Affected != 1 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	res, err = c.Execute(`SELECT v FROM t WHERE id = ?`, Int(1))
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != Text("hello") {
		t.Fatalf("select: %+v, %v", res, err)
	}
}

func TestServerReturnsSQLErrors(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`SELECT * FROM missing`); err == nil {
		t.Fatal("no error for missing table")
	}
	// Connection still usable after a SQL error.
	if _, err := c.Execute(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatalf("connection broken after SQL error: %v", err)
	}
}

func TestServerPing(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	serving, err := c.Ping()
	if err != nil || !serving {
		t.Fatalf("ping: %v %v", serving, err)
	}
	srv.SetReadOnly(true)
	serving, err = c.Ping()
	if err != nil || serving {
		t.Fatalf("ping on standby: %v %v", serving, err)
	}
}

func TestReadOnlyRejectsWrites(t *testing.T) {
	srv, e := startServer(t)
	if _, err := e.Execute(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	srv.SetReadOnly(true)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`INSERT INTO t VALUES (1)`); err == nil {
		t.Fatal("write accepted on standby")
	}
	if _, err := c.Execute(`SELECT * FROM t`); err != nil {
		t.Fatalf("read rejected on standby: %v", err)
	}
}

func TestPoolConcurrentClients(t *testing.T) {
	srv, e := startServer(t)
	if _, err := e.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	pool := NewPool(srv.Addr(), 8)
	defer pool.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := int64(w*1000 + i)
				if _, err := pool.Execute(`INSERT INTO t VALUES (?, ?)`, Int(id), Int(id)); err != nil {
					t.Errorf("insert %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	res, err := pool.Execute(`SELECT COUNT(*) FROM t`)
	if err != nil || res.Rows[0][0] != Int(400) {
		t.Fatalf("count = %+v, %v", res, err)
	}
}

func TestPoolRedialsAfterServerRestart(t *testing.T) {
	e := NewEngine()
	srv, err := NewServer(e, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	pool := NewPool(addr, 1)
	defer pool.Close()
	if _, err := pool.Execute(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// First call after close fails.
	if _, err := pool.Execute(`SELECT * FROM t`); err == nil {
		t.Fatal("expected failure after server close")
	}
	// Restart on the same address; pool must redial.
	srv2, err := NewServer(e, addr, nil)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	var ok bool
	for i := 0; i < 20; i++ {
		if _, err := pool.Execute(`SELECT * FROM t`); err == nil {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("pool did not recover after restart")
	}
}

func TestReplicationSnapshotAndStream(t *testing.T) {
	srv, master := startServer(t)
	if _, err := master.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := master.Execute(`INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(0)); err != nil {
			t.Fatal(err)
		}
	}
	standby := NewEngine()
	rep := NewReplica(standby)
	if err := rep.Follow(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	// Snapshot applied synchronously.
	if n, _ := standby.RowCount("t"); n != 50 {
		t.Fatalf("standby rows after snapshot = %d", n)
	}
	// Live stream.
	for i := 50; i < 80; i++ {
		if _, err := master.Execute(`INSERT INTO t VALUES (?, ?)`, Int(int64(i)), Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := standby.RowCount("t"); n == 80 {
			break
		}
		if time.Now().After(deadline) {
			n, _ := standby.RowCount("t")
			t.Fatalf("standby rows = %d, want 80 (applied=%d, err=%v)", n, rep.Applied(), rep.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("replication error: %v", err)
	}
}

func TestReplicaPromote(t *testing.T) {
	srv, master := startServer(t)
	if _, err := master.Execute(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	standby := NewEngine()
	standbySrv, err := NewServer(standby, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer standbySrv.Close()
	standbySrv.SetReadOnly(true)
	rep := NewReplica(standby)
	if err := rep.Follow(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	// Master fails; promote the standby.
	srv.Close()
	rep.Promote()
	standbySrv.SetReadOnly(false)
	if !rep.Promoted() {
		t.Fatal("not promoted")
	}
	// Promotion must not record a spurious replication error.
	if err := rep.Err(); err != nil {
		t.Fatalf("unexpected replication error after promote: %v", err)
	}
	c, err := Dial(standbySrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(`INSERT INTO t VALUES (1)`); err != nil {
		t.Fatalf("write to promoted standby failed: %v", err)
	}
}

func TestReplicationConcurrentWritesConverge(t *testing.T) {
	srv, master := startServer(t)
	if _, err := master.Execute(`CREATE TABLE t (id INT PRIMARY KEY, v INT)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := master.Execute(`INSERT INTO t VALUES (?, 0)`, Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	standby := NewEngine()
	rep := NewReplica(standby)
	if err := rep.Follow(srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := master.Execute(`UPDATE t SET v = ? WHERE id = ?`, Int(int64(w*1000+i)), Int(int64(i%16))); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Wait for the stream to drain, then compare full contents.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if rep.Applied() >= 400 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("applied = %d, err = %v", rep.Applied(), rep.Err())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mres, _ := master.Execute(`SELECT id, v FROM t ORDER BY id ASC`)
	sres, _ := standby.Execute(`SELECT id, v FROM t ORDER BY id ASC`)
	if len(mres.Rows) != len(sres.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(mres.Rows), len(sres.Rows))
	}
	for i := range mres.Rows {
		if mres.Rows[i][1] != sres.Rows[i][1] {
			t.Fatalf("row %d diverged: master=%v standby=%v", i, mres.Rows[i], sres.Rows[i])
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, _ := startServer(t)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestClientClosedErrors(t *testing.T) {
	srv, _ := startServer(t)
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Execute(`SELECT 1 FROM t`); err == nil {
		t.Fatal("closed client accepted Execute")
	}
	if _, err := c.Ping(); err == nil {
		t.Fatal("closed client accepted Ping")
	}
}

func TestManySequentialQueriesOneConn(t *testing.T) {
	srv, e := startServer(t)
	if _, err := e.Execute(`CREATE TABLE t (id INT PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 500; i++ {
		if _, err := c.Execute(`REPLACE INTO t VALUES (?)`, Int(int64(i%10))); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
	res, err := c.Execute(fmt.Sprintf(`SELECT COUNT(*) FROM t`))
	if err != nil || res.Rows[0][0] != Int(10) {
		t.Fatalf("count: %+v %v", res, err)
	}
}
