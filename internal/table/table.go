// Package table provides the local QoS rule table held by each QoS server
// (paper §III-C: "The local QoS table is represented by a synchronized hash
// map, where the key is the QoS key and the value is the leaky bucket").
//
// Two implementations are provided behind the Table interface:
//
//   - Mutex: one lock around one map — the paper's original design. §V-C
//     attributes the observed CPU under-utilization on the QoS server layer
//     to "the implementation of the locking mechanism being used to manage
//     the QoS rules in the local QoS table" and defers optimization to
//     future work.
//   - Sharded: the future-work optimization — the key space is split across
//     independently locked shards chosen by a string hash, eliminating the
//     global serialization point.
//
// The ablation benchmark BenchmarkAblationTableSharding quantifies the
// difference.
package table

import (
	"sync"
	"time"

	"repro/internal/bucket"
)

// Table is a concurrent map from QoS key to leaky bucket.
type Table interface {
	// Get returns the bucket for key, or nil if absent.
	Get(key string) *bucket.Bucket
	// GetOrCreate returns the bucket for key, creating it with factory
	// (called at most once per insertion) when absent. The bool reports
	// whether a new bucket was created.
	GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool)
	// Put inserts or replaces the bucket for key.
	Put(key string, b *bucket.Bucket)
	// Delete removes key; it reports whether the key was present.
	Delete(key string) bool
	// Len returns the number of entries.
	Len() int
	// Range calls fn for every entry until fn returns false. The iteration
	// order is unspecified and entries inserted concurrently may or may not
	// be visited.
	Range(fn func(key string, b *bucket.Bucket) bool)
	// RefillAll brings every bucket's credit current to now; used by the
	// housekeeping thread under the tick-refill discipline.
	RefillAll(now time.Time)
}

// Mutex is the paper's original single-lock synchronized hash map.
type Mutex struct {
	mu sync.Mutex
	m  map[string]*bucket.Bucket
}

// NewMutex returns an empty single-lock table.
func NewMutex() *Mutex { return &Mutex{m: make(map[string]*bucket.Bucket)} }

// Get implements Table.
func (t *Mutex) Get(key string) *bucket.Bucket {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[key]
}

// GetOrCreate implements Table.
func (t *Mutex) GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.m[key]; ok {
		return b, false
	}
	b := factory()
	t.m[key] = b
	return b, true
}

// Put implements Table.
func (t *Mutex) Put(key string, b *bucket.Bucket) {
	t.mu.Lock()
	t.m[key] = b
	t.mu.Unlock()
}

// Delete implements Table.
func (t *Mutex) Delete(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[key]; !ok {
		return false
	}
	delete(t.m, key)
	return true
}

// Len implements Table.
func (t *Mutex) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Range implements Table. The lock is held for the duration of iteration,
// which is the serialization cost the sharded variant removes.
func (t *Mutex) Range(fn func(string, *bucket.Bucket) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, b := range t.m {
		if !fn(k, b) {
			return
		}
	}
}

// RefillAll implements Table.
func (t *Mutex) RefillAll(now time.Time) {
	t.Range(func(_ string, b *bucket.Bucket) bool {
		b.Refill(now)
		return true
	})
}

// Sharded splits the key space across independently locked shards.
//
// The shards may additionally be organized into GROUPS — contiguous runs of
// perGroup shards — for the sharded SO_REUSEPORT intake (qosserver,
// DESIGN.md §14): the QoS server builds the table with one group per
// intake listener so per-group maintenance sweeps (refill stripes) align
// with the receive plane and never contend across intakes. Grouping only
// partitions iteration (RangeGroup/RefillGroup); the per-key operations are
// group-oblivious, and cross-shard key movement (handoff, lease revoke,
// rule-sync churn) keeps using the plain Range/Put/Delete slow path.
type Sharded struct {
	shards []shard
	mask   uint32
	// perGroup is the power-of-two number of consecutive shards per group;
	// equal to len(shards) for an ungrouped table (one group).
	perGroup uint32
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*bucket.Bucket
}

// DefaultShards is the shard count used by NewSharded when 0 is passed.
const DefaultShards = 64

// DefaultShardsPerGroup is the per-group shard count used by
// NewShardedAligned when 0 is passed.
const DefaultShardsPerGroup = 16

// NewSharded returns a table with n shards; n is rounded up to a power of
// two, and n <= 0 selects DefaultShards.
func NewSharded(n int) *Sharded {
	size := ceilPow2(n, DefaultShards)
	t := &Sharded{shards: make([]shard, size), mask: uint32(size - 1), perGroup: uint32(size)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*bucket.Bucket)
	}
	return t
}

// NewShardedAligned returns a table whose shards are organized into groups
// aligned to an external fan-out (one group per intake listener in
// qosserver). Both groups and perGroup are rounded up to powers of two;
// groups <= 0 selects one group, perGroup <= 0 selects
// DefaultShardsPerGroup. The total shard count is groups * perGroup.
func NewShardedAligned(groups, perGroup int) *Sharded {
	g := ceilPow2(groups, 1)
	p := ceilPow2(perGroup, DefaultShardsPerGroup)
	t := NewSharded(g * p)
	t.perGroup = uint32(p)
	return t
}

// ceilPow2 rounds n up to a power of two; n <= 0 selects def (which must
// itself be a power of two).
func ceilPow2(n, def int) int {
	if n <= 0 {
		return def
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return size
}

// hashFor hashes key with inline FNV-1a: hashing the string directly (no
// []byte conversion, no hash.Hash construction) keeps the per-decision
// lookup allocation-free regardless of key length.
//
//janus:hotpath
func hashFor(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

//janus:hotpath
func (t *Sharded) shardFor(key string) *shard {
	return &t.shards[hashFor(key)&t.mask]
}

// Groups returns the number of shard groups (1 for an ungrouped table).
func (t *Sharded) Groups() int { return len(t.shards) / int(t.perGroup) }

// GroupFor returns the group key's shard belongs to. It uses the same hash
// as the shard selection, so a group is exactly a contiguous run of
// perGroup shards — the alignment contract the QoS server's refill stripes
// rely on.
//
//janus:hotpath
func (t *Sharded) GroupFor(key string) int {
	return int((hashFor(key) & t.mask) / t.perGroup)
}

// RangeGroup is Range restricted to group g's shards. Each shard's lock is
// held only while that shard is iterated.
func (t *Sharded) RangeGroup(g int, fn func(string, *bucket.Bucket) bool) {
	lo, hi := g*int(t.perGroup), (g+1)*int(t.perGroup)
	for i := lo; i < hi; i++ {
		s := &t.shards[i]
		s.mu.RLock()
		for k, b := range s.m {
			if !fn(k, b) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// RefillGroup brings group g's buckets current to now — one intake's
// housekeeping stripe.
func (t *Sharded) RefillGroup(g int, now time.Time) {
	t.RangeGroup(g, func(_ string, b *bucket.Bucket) bool {
		b.Refill(now)
		return true
	})
}

// Get implements Table.
//
//janus:hotpath
func (t *Sharded) Get(key string) *bucket.Bucket {
	s := t.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key]
}

// GetOrCreate implements Table.
func (t *Sharded) GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool) {
	s := t.shardFor(key)
	s.mu.RLock()
	b, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return b, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b, false
	}
	b = factory()
	s.m[key] = b
	return b, true
}

// Put implements Table.
func (t *Sharded) Put(key string, b *bucket.Bucket) {
	s := t.shardFor(key)
	s.mu.Lock()
	s.m[key] = b
	s.mu.Unlock()
}

// Delete implements Table.
func (t *Sharded) Delete(key string) bool {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Len implements Table.
func (t *Sharded) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range implements Table. Each shard's lock is held only while that shard is
// iterated, so concurrent access to other shards proceeds unimpeded.
func (t *Sharded) Range(fn func(string, *bucket.Bucket) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for k, b := range s.m {
			if !fn(k, b) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// RefillAll implements Table.
func (t *Sharded) RefillAll(now time.Time) {
	t.Range(func(_ string, b *bucket.Bucket) bool {
		b.Refill(now)
		return true
	})
}

// Kind names a table implementation for configuration.
type Kind string

// Supported table kinds.
const (
	KindMutex   Kind = "mutex"
	KindSharded Kind = "sharded"
)

// New constructs a table of the given kind; unknown kinds fall back to
// sharded with default shard count.
func New(kind Kind) Table {
	switch kind {
	case KindMutex:
		return NewMutex()
	default:
		return NewSharded(0)
	}
}

var (
	_ Table = (*Mutex)(nil)
	_ Table = (*Sharded)(nil)
)
