// Package table provides the local QoS rule table held by each QoS server
// (paper §III-C: "The local QoS table is represented by a synchronized hash
// map, where the key is the QoS key and the value is the leaky bucket").
//
// Two implementations are provided behind the Table interface:
//
//   - Mutex: one lock around one map — the paper's original design. §V-C
//     attributes the observed CPU under-utilization on the QoS server layer
//     to "the implementation of the locking mechanism being used to manage
//     the QoS rules in the local QoS table" and defers optimization to
//     future work.
//   - Sharded: the future-work optimization — the key space is split across
//     independently locked shards chosen by a string hash, eliminating the
//     global serialization point.
//
// The ablation benchmark BenchmarkAblationTableSharding quantifies the
// difference.
package table

import (
	"sync"
	"time"

	"repro/internal/bucket"
)

// Table is a concurrent map from QoS key to leaky bucket.
type Table interface {
	// Get returns the bucket for key, or nil if absent.
	Get(key string) *bucket.Bucket
	// GetOrCreate returns the bucket for key, creating it with factory
	// (called at most once per insertion) when absent. The bool reports
	// whether a new bucket was created.
	GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool)
	// Put inserts or replaces the bucket for key.
	Put(key string, b *bucket.Bucket)
	// Delete removes key; it reports whether the key was present.
	Delete(key string) bool
	// Len returns the number of entries.
	Len() int
	// Range calls fn for every entry until fn returns false. The iteration
	// order is unspecified and entries inserted concurrently may or may not
	// be visited.
	Range(fn func(key string, b *bucket.Bucket) bool)
	// RefillAll brings every bucket's credit current to now; used by the
	// housekeeping thread under the tick-refill discipline.
	RefillAll(now time.Time)
}

// Mutex is the paper's original single-lock synchronized hash map.
type Mutex struct {
	mu sync.Mutex
	m  map[string]*bucket.Bucket
}

// NewMutex returns an empty single-lock table.
func NewMutex() *Mutex { return &Mutex{m: make(map[string]*bucket.Bucket)} }

// Get implements Table.
func (t *Mutex) Get(key string) *bucket.Bucket {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[key]
}

// GetOrCreate implements Table.
func (t *Mutex) GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.m[key]; ok {
		return b, false
	}
	b := factory()
	t.m[key] = b
	return b, true
}

// Put implements Table.
func (t *Mutex) Put(key string, b *bucket.Bucket) {
	t.mu.Lock()
	t.m[key] = b
	t.mu.Unlock()
}

// Delete implements Table.
func (t *Mutex) Delete(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[key]; !ok {
		return false
	}
	delete(t.m, key)
	return true
}

// Len implements Table.
func (t *Mutex) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Range implements Table. The lock is held for the duration of iteration,
// which is the serialization cost the sharded variant removes.
func (t *Mutex) Range(fn func(string, *bucket.Bucket) bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for k, b := range t.m {
		if !fn(k, b) {
			return
		}
	}
}

// RefillAll implements Table.
func (t *Mutex) RefillAll(now time.Time) {
	t.Range(func(_ string, b *bucket.Bucket) bool {
		b.Refill(now)
		return true
	})
}

// Sharded splits the key space across independently locked shards.
type Sharded struct {
	shards []shard
	mask   uint32
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*bucket.Bucket
}

// DefaultShards is the shard count used by NewSharded when 0 is passed.
const DefaultShards = 64

// NewSharded returns a table with n shards; n is rounded up to a power of
// two, and n <= 0 selects DefaultShards.
func NewSharded(n int) *Sharded {
	if n <= 0 {
		n = DefaultShards
	}
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Sharded{shards: make([]shard, size), mask: uint32(size - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*bucket.Bucket)
	}
	return t
}

// shardFor hashes key with inline FNV-1a: hashing the string directly (no
// []byte conversion, no hash.Hash construction) keeps the per-decision
// lookup allocation-free regardless of key length.
//
//janus:hotpath
func (t *Sharded) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &t.shards[h&t.mask]
}

// Get implements Table.
//
//janus:hotpath
func (t *Sharded) Get(key string) *bucket.Bucket {
	s := t.shardFor(key)
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.m[key]
}

// GetOrCreate implements Table.
func (t *Sharded) GetOrCreate(key string, factory func() *bucket.Bucket) (*bucket.Bucket, bool) {
	s := t.shardFor(key)
	s.mu.RLock()
	b, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return b, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b, false
	}
	b = factory()
	s.m[key] = b
	return b, true
}

// Put implements Table.
func (t *Sharded) Put(key string, b *bucket.Bucket) {
	s := t.shardFor(key)
	s.mu.Lock()
	s.m[key] = b
	s.mu.Unlock()
}

// Delete implements Table.
func (t *Sharded) Delete(key string) bool {
	s := t.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		return false
	}
	delete(s.m, key)
	return true
}

// Len implements Table.
func (t *Sharded) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range implements Table. Each shard's lock is held only while that shard is
// iterated, so concurrent access to other shards proceeds unimpeded.
func (t *Sharded) Range(fn func(string, *bucket.Bucket) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		for k, b := range s.m {
			if !fn(k, b) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// RefillAll implements Table.
func (t *Sharded) RefillAll(now time.Time) {
	t.Range(func(_ string, b *bucket.Bucket) bool {
		b.Refill(now)
		return true
	})
}

// Kind names a table implementation for configuration.
type Kind string

// Supported table kinds.
const (
	KindMutex   Kind = "mutex"
	KindSharded Kind = "sharded"
)

// New constructs a table of the given kind; unknown kinds fall back to
// sharded with default shard count.
func New(kind Kind) Table {
	switch kind {
	case KindMutex:
		return NewMutex()
	default:
		return NewSharded(0)
	}
}

var (
	_ Table = (*Mutex)(nil)
	_ Table = (*Sharded)(nil)
)
