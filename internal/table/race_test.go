package table

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bucket"
)

// Race-detector stress tests (run via `make race`): every Table operation —
// Get, GetOrCreate, Put, Delete, Len, Range, RefillAll — hammered
// concurrently over a shared key space, for both implementations. The race
// detector turns any unsynchronized map access in the mutex or sharded
// paths into a test failure; the final assertions catch lost updates.
func TestTableRaceStress(t *testing.T) {
	for _, kind := range []Kind{KindMutex, KindSharded} {
		t.Run(string(kind), func(t *testing.T) {
			tbl := New(kind)
			now := time.Unix(0, 0)
			const (
				workers = 8
				keys    = 64
				iters   = 400
			)
			key := func(i int) string { return fmt.Sprintf("k%02d", i%keys) }
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						k := key(i + w)
						switch i % 6 {
						case 0:
							tbl.Put(k, bucket.NewFull(k, 10, 100, now))
						case 1:
							tbl.Get(k)
						case 2:
							tbl.GetOrCreate(k, func() *bucket.Bucket {
								return bucket.NewFull(k, 10, 100, now)
							})
						case 3:
							tbl.Delete(k)
						case 4:
							tbl.Range(func(_ string, b *bucket.Bucket) bool {
								b.Credit(now)
								return true
							})
						default:
							tbl.RefillAll(now.Add(time.Duration(i) * time.Millisecond))
							tbl.Len()
						}
					}
				}(w)
			}
			wg.Wait()

			// The table must still be coherent: every surviving key resolves
			// and its bucket respects the credit invariant. The survivors are
			// collected first — Range holds table locks, so calling Get or
			// Len from inside the callback would deadlock the mutex variant.
			survivors := map[string]*bucket.Bucket{}
			tbl.Range(func(k string, b *bucket.Bucket) bool {
				survivors[k] = b
				return true
			})
			for k, b := range survivors {
				if got := tbl.Get(k); got != b {
					t.Errorf("Get(%q) returned a different bucket than Range", k)
				}
				if c := b.Credit(now.Add(time.Hour)); c > b.Capacity() {
					t.Errorf("bucket %q credit %v exceeds capacity %v", k, c, b.Capacity())
				}
			}
			if got := tbl.Len(); got != len(survivors) {
				t.Errorf("Len() = %d but Range visited %d", got, len(survivors))
			}
		})
	}
}

// TestShardedGetOrCreateSingleFactory verifies the double-checked insert
// publishes exactly one bucket per key under contention — the property that
// keeps two routers from minting two buckets (and double credit) for one
// rule.
func TestShardedGetOrCreateSingleFactory(t *testing.T) {
	tbl := NewSharded(0)
	now := time.Unix(0, 0)
	const workers = 16
	results := make([]*bucket.Bucket, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b, _ := tbl.GetOrCreate("shared", func() *bucket.Bucket {
				return bucket.NewFull("shared", 1, 10, now)
			})
			results[w] = b
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if results[w] != results[0] {
			t.Fatalf("worker %d observed a different bucket instance", w)
		}
	}
}
