package table

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bucket"
)

var t0 = time.Unix(1_000_000, 0)

func impls() map[string]func() Table {
	return map[string]func() Table{
		"mutex":    func() Table { return NewMutex() },
		"sharded":  func() Table { return NewSharded(0) },
		"sharded1": func() Table { return NewSharded(1) },
		"sharded3": func() Table { return NewSharded(3) }, // rounds up to 4
	}
}

func newBucket() *bucket.Bucket { return bucket.NewFull("k", 1, 10, t0) }

func TestTableBasicOperations(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			tb := mk()
			if tb.Get("a") != nil {
				t.Fatal("Get on empty returned non-nil")
			}
			if tb.Len() != 0 {
				t.Fatal("empty table Len != 0")
			}
			b1, created := tb.GetOrCreate("a", newBucket)
			if !created || b1 == nil {
				t.Fatal("first GetOrCreate did not create")
			}
			b2, created := tb.GetOrCreate("a", newBucket)
			if created || b2 != b1 {
				t.Fatal("second GetOrCreate created a new bucket")
			}
			if tb.Get("a") != b1 {
				t.Fatal("Get returned different bucket")
			}
			if tb.Len() != 1 {
				t.Fatalf("Len = %d", tb.Len())
			}
			nb := newBucket()
			tb.Put("a", nb)
			if tb.Get("a") != nb {
				t.Fatal("Put did not replace")
			}
			if !tb.Delete("a") {
				t.Fatal("Delete existing returned false")
			}
			if tb.Delete("a") {
				t.Fatal("Delete missing returned true")
			}
			if tb.Len() != 0 {
				t.Fatalf("Len after delete = %d", tb.Len())
			}
		})
	}
}

func TestTableRange(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			tb := mk()
			want := map[string]bool{}
			for i := 0; i < 100; i++ {
				k := fmt.Sprintf("key-%d", i)
				want[k] = true
				tb.Put(k, newBucket())
			}
			seen := map[string]bool{}
			tb.Range(func(k string, b *bucket.Bucket) bool {
				if b == nil {
					t.Errorf("nil bucket for %s", k)
				}
				seen[k] = true
				return true
			})
			if len(seen) != len(want) {
				t.Fatalf("visited %d keys, want %d", len(seen), len(want))
			}
			// Early termination.
			count := 0
			tb.Range(func(string, *bucket.Bucket) bool {
				count++
				return count < 5
			})
			if count != 5 {
				t.Fatalf("early-stop visited %d, want 5", count)
			}
		})
	}
}

func TestTableRefillAll(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			tb := mk()
			for i := 0; i < 10; i++ {
				k := fmt.Sprintf("key-%d", i)
				b := bucket.NewFull(k, 10, 10, t0, bucket.WithTickRefill())
				for j := 0; j < 10; j++ {
					b.Allow(t0)
				}
				tb.Put(k, b)
			}
			tb.RefillAll(t0.Add(time.Second))
			tb.Range(func(k string, b *bucket.Bucket) bool {
				if got := b.Credit(t0.Add(time.Second)); got != 10 {
					t.Errorf("%s credit = %v, want 10", k, got)
				}
				return true
			})
		})
	}
}

func TestGetOrCreateFactoryCalledOncePerKey(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			tb := mk()
			var calls atomic.Int64
			var wg sync.WaitGroup
			for g := 0; g < 16; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						tb.GetOrCreate(fmt.Sprintf("key-%d", i%20), func() *bucket.Bucket {
							calls.Add(1)
							return newBucket()
						})
					}
				}()
			}
			wg.Wait()
			// The sharded variant may call the factory more than once per key
			// under a race, but it must install exactly one bucket; verify via
			// identity stability and len.
			if tb.Len() != 20 {
				t.Fatalf("Len = %d, want 20", tb.Len())
			}
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("key-%d", i)
				b1 := tb.Get(k)
				b2, created := tb.GetOrCreate(k, newBucket)
				if created || b1 != b2 {
					t.Fatalf("bucket identity unstable for %s", k)
				}
			}
		})
	}
}

func TestTableConcurrentMixedOps(t *testing.T) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) {
			tb := mk()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						k := fmt.Sprintf("key-%d", (g*31+i)%50)
						switch i % 5 {
						case 0:
							tb.Put(k, newBucket())
						case 1:
							tb.Get(k)
						case 2:
							tb.GetOrCreate(k, newBucket)
						case 3:
							tb.Delete(k)
						case 4:
							tb.Range(func(string, *bucket.Bucket) bool { return false })
						}
					}
				}(g)
			}
			wg.Wait()
			// No assertion beyond absence of race/panic; validate Len sanity.
			if n := tb.Len(); n < 0 || n > 50 {
				t.Fatalf("Len = %d out of range", n)
			}
		})
	}
}

func TestShardedPowerOfTwoRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{
		{0, DefaultShards}, {-3, DefaultShards}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {100, 128},
	} {
		tb := NewSharded(c.in)
		if len(tb.shards) != c.want {
			t.Errorf("NewSharded(%d) shards = %d, want %d", c.in, len(tb.shards), c.want)
		}
	}
}

func TestNewKind(t *testing.T) {
	if _, ok := New(KindMutex).(*Mutex); !ok {
		t.Error("KindMutex did not build *Mutex")
	}
	if _, ok := New(KindSharded).(*Sharded); !ok {
		t.Error("KindSharded did not build *Sharded")
	}
	if _, ok := New("bogus").(*Sharded); !ok {
		t.Error("unknown kind did not fall back to sharded")
	}
}

// Property: both implementations behave identically as a map under a
// sequential operation stream.
func TestImplementationsAgreeProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	f := func(ops []op) bool {
		mt, st := NewMutex(), NewSharded(8)
		model := map[string]bool{}
		for _, o := range ops {
			k := fmt.Sprintf("k%d", o.Key%30)
			switch o.Kind % 3 {
			case 0:
				mt.Put(k, newBucket())
				st.Put(k, newBucket())
				model[k] = true
			case 1:
				d1 := mt.Delete(k)
				d2 := st.Delete(k)
				if d1 != d2 || d1 != model[k] {
					return false
				}
				delete(model, k)
			case 2:
				g1 := mt.Get(k) != nil
				g2 := st.Get(k) != nil
				if g1 != g2 || g1 != model[k] {
					return false
				}
			}
		}
		return mt.Len() == len(model) && st.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
