package table

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bucket"
)

func TestShardedAlignedDimensions(t *testing.T) {
	cases := []struct {
		groups, perGroup       int
		wantGroups, wantShards int
	}{
		{0, 0, 1, DefaultShardsPerGroup},
		{1, 0, 1, DefaultShardsPerGroup},
		{4, 0, 4, 4 * DefaultShardsPerGroup},
		{3, 0, 4, 4 * DefaultShardsPerGroup}, // groups rounds up to pow2
		{2, 3, 2, 2 * 4},                     // perGroup rounds up to pow2
		{8, 1, 8, 8},
	}
	for _, c := range cases {
		tb := NewShardedAligned(c.groups, c.perGroup)
		if got := tb.Groups(); got != c.wantGroups {
			t.Errorf("NewShardedAligned(%d,%d).Groups() = %d, want %d",
				c.groups, c.perGroup, got, c.wantGroups)
		}
		if got := len(tb.shards); got != c.wantShards {
			t.Errorf("NewShardedAligned(%d,%d) shards = %d, want %d",
				c.groups, c.perGroup, got, c.wantShards)
		}
	}
	// Plain NewSharded tables are one group regardless of shard count.
	if got := NewSharded(0).Groups(); got != 1 {
		t.Errorf("NewSharded(0).Groups() = %d, want 1", got)
	}
	if got := NewSharded(256).Groups(); got != 1 {
		t.Errorf("NewSharded(256).Groups() = %d, want 1", got)
	}
}

// TestGroupForMatchesShard pins the alignment contract: a key's group is
// its shard index divided by perGroup, i.e. each group is exactly a
// contiguous run of perGroup shards under the same hash.
func TestGroupForMatchesShard(t *testing.T) {
	tb := NewShardedAligned(4, 8)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tenant-%d/op-%d", i, i*7)
		g := tb.GroupFor(key)
		if g < 0 || g >= tb.Groups() {
			t.Fatalf("GroupFor(%q) = %d out of [0,%d)", key, g, tb.Groups())
		}
		idx := hashFor(key) & tb.mask
		if want := int(idx / tb.perGroup); g != want {
			t.Fatalf("GroupFor(%q) = %d, shard %d/perGroup %d = %d",
				key, g, idx, tb.perGroup, want)
		}
		s := tb.shardFor(key)
		if s != &tb.shards[idx] {
			t.Fatalf("shardFor(%q) disagrees with hashFor", key)
		}
	}
}

// TestRangeGroupPartitions verifies the groups partition the key space: every
// key appears in exactly the group GroupFor names, and the union over all
// groups is the whole table.
func TestRangeGroupPartitions(t *testing.T) {
	tb := NewShardedAligned(4, 4)
	want := make(map[string]int)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		tb.Put(key, bucket.NewFull(key, 1, 10, t0))
		want[key] = tb.GroupFor(key)
	}
	seen := make(map[string]int)
	for g := 0; g < tb.Groups(); g++ {
		tb.RangeGroup(g, func(k string, _ *bucket.Bucket) bool {
			if prev, dup := seen[k]; dup {
				t.Fatalf("key %q visited in group %d and %d", k, prev, g)
			}
			seen[k] = g
			return true
		})
	}
	if len(seen) != len(want) {
		t.Fatalf("groups visited %d keys, table holds %d", len(seen), len(want))
	}
	for k, g := range seen {
		if g != want[k] {
			t.Fatalf("key %q visited in group %d, GroupFor says %d", k, g, want[k])
		}
	}
}

func TestRangeGroupEarlyStop(t *testing.T) {
	tb := NewShardedAligned(2, 2)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		tb.Put(key, bucket.NewFull(key, 1, 10, t0))
	}
	calls := 0
	tb.RangeGroup(0, func(string, *bucket.Bucket) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("RangeGroup after fn=false made %d calls, want 3", calls)
	}
}

// TestRefillGroupStripes drives each group's refill stripe separately and
// checks refill only touched that group's buckets — the property the
// per-intake housekeeping stripes rely on to stay contention-free.
func TestRefillGroupStripes(t *testing.T) {
	tb := NewShardedAligned(4, 2)
	keys := make([]string, 0, 200)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		// Tick discipline: credit only moves on explicit Refill, so refill
		// coverage is observable per group.
		b := bucket.NewFull(key, 100, 1000, t0, bucket.WithTickRefill())
		b.TryConsume(1000, t0) // drain so refill has visible effect
		tb.Put(key, b)
		keys = append(keys, key)
	}
	later := t0.Add(time.Second) // rate 100/s -> +100 credit
	for g := 0; g < tb.Groups(); g++ {
		tb.RefillGroup(g, later)
		for _, k := range keys {
			refilled := tb.Get(k).Credit(t0) > 0
			if inGroup := tb.GroupFor(k) <= g; refilled != inGroup {
				t.Fatalf("after RefillGroup(0..%d): key %q (group %d) refilled=%v",
					g, k, tb.GroupFor(k), refilled)
			}
		}
	}
}
