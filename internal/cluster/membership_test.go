package cluster

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/membership"
	"repro/internal/router"
)

// sumCredits sums the remaining credit of every rule key across the QoS
// masters' tables, counting absent keys at full capacity (they were never
// consumed) and failing on keys resident on two servers at once (a handoff
// that forgot to delete).
func sumCredits(t *testing.T, c *Cluster, nKeys int, capacity float64) float64 {
	t.Helper()
	now := time.Now()
	found := make(map[string]float64)
	c.mu.Lock()
	pairs := append([]*QoSPair(nil), c.QoS...)
	c.mu.Unlock()
	for _, p := range pairs {
		p.Master.Table().Range(func(key string, b *bucket.Bucket) bool {
			if _, dup := found[key]; dup {
				t.Errorf("key %q resident on two servers", key)
			}
			found[key] = b.Credit(now)
			return true
		})
	}
	total := 0.0
	for i := 0; i < nKeys; i++ {
		if credit, ok := found[fmt.Sprintf("user-%d", i)]; ok {
			total += credit
		} else {
			total += capacity
		}
	}
	return total
}

// TestScaleOutMidLoadConservesCredit is the membership acceptance
// scenario: grow the QoS tier 4→5 servers while load is flowing, with the
// jump picker and live bucket handoff. Asserts (a) at most 25% of keys
// change owner, (b) total outstanding credit is conserved, and (c) no
// request is ever answered by the router's default-reply path.
func TestScaleOutMidLoadConservesCredit(t *testing.T) {
	const (
		nKeys    = 200
		capacity = 50.0
	)
	c := newCluster(t, Config{
		Routers:    2,
		QoSServers: 4,
		Membership: true,
		Picker:     membership.KindJump,
		Rules:      rules(nKeys, 0, capacity), // rate 0: exact accounting
	})
	if got := c.View(); got.Epoch != 4 || len(got.Backends) != 4 {
		t.Fatalf("initial view = %+v", got)
	}
	oldView := c.View()

	var allowed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			checker := c.Checker()
			for i := w; ; i += 4 {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := checker.Check(fmt.Sprintf("user-%d", i%nKeys))
				if err != nil {
					t.Errorf("check: %v", err)
					return
				}
				if ok {
					allowed.Add(1)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}

	time.Sleep(80 * time.Millisecond) // consume meaningfully before scaling
	pair, err := c.AddQoSServer()
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // keep loading on the wider tier
	close(stop)
	wg.Wait()

	newView := c.View()
	if newView.Epoch != oldView.Epoch+1 || len(newView.Backends) != 5 {
		t.Fatalf("post-scale view = %+v", newView)
	}
	if c.QoSServerCount() != 5 {
		t.Fatalf("QoS servers = %d", c.QoSServerCount())
	}

	// (a) Owner stability: over the real rule keys, at most 25% moved —
	// the jump-hash K/N bound (expected 1/5 = 20%).
	picker, _ := membership.NewPicker(membership.KindJump)
	moved := 0
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("user-%d", i)
		a, _ := oldView.Owner(picker, key)
		b, _ := newView.Owner(picker, key)
		if a != b {
			moved++
			if b != pair.Name {
				t.Fatalf("key %q moved %s→%s, not onto the new server", key, a, b)
			}
		}
	}
	if moved == 0 || moved > nKeys/4 {
		t.Fatalf("moved %d/%d keys, want (0, %d]", moved, nKeys, nKeys/4)
	}

	// (b) Credit conservation: initial credit == remaining + admitted.
	initial := float64(nKeys) * capacity
	remaining := sumCredits(t, c, nKeys, capacity)
	admitted := float64(allowed.Load())
	if admitted < 100 {
		t.Fatalf("load too light to be meaningful: %v admitted", admitted)
	}
	drift := math.Abs(initial - remaining - admitted)
	// Tolerance: in-flight decisions during the swap/handoff window. A
	// stranded-state failure mode would drift by thousands (re-minted
	// capacity on ~20% of keys); one refill tick of slack is 1% here.
	if tol := initial * 0.01; drift > tol {
		t.Fatalf("credit drift %v > %v (initial %v, remaining %v, admitted %v)",
			drift, tol, initial, remaining, admitted)
	}

	// (c) No request was answered by the default-reply path.
	if n := c.TotalDefaultReplies(); n != 0 {
		t.Fatalf("default replies during scale-out: %d", n)
	}

	// The new server actually took over its share of traffic.
	if pair.Master.Stats().Decisions == 0 {
		t.Fatal("new QoS server made no decisions")
	}
	// Routers adopted the new epoch and recorded the remap fraction.
	c.mu.Lock()
	routers := append([]*router.Router(nil), c.Routers...)
	c.mu.Unlock()
	for _, r := range routers {
		st := r.Stats()
		if st.Epoch != newView.Epoch || st.ViewSwaps == 0 {
			t.Fatalf("router did not adopt the new view: %+v", st)
		}
		if st.LastRemapFraction <= 0 || st.LastRemapFraction > 0.3 {
			t.Fatalf("recorded remap fraction = %v, want ~0.2", st.LastRemapFraction)
		}
	}
}

func TestScaleInHandsBucketsBack(t *testing.T) {
	const (
		nKeys    = 120
		capacity = 20.0
	)
	c := newCluster(t, Config{
		Routers:    1,
		QoSServers: 3,
		Membership: true,
		Picker:     membership.KindJump,
		Rules:      rules(nKeys, 0, capacity),
	})
	// Warm and consume: 3 credits per key.
	for i := 0; i < nKeys; i++ {
		key := fmt.Sprintf("user-%d", i)
		for j := 0; j < 3; j++ {
			ok, err := c.Check(key)
			if err != nil || !ok {
				t.Fatalf("%s warm %d: ok=%v err=%v", key, j, ok, err)
			}
		}
	}
	if err := c.RemoveQoSServer(); err != nil {
		t.Fatal(err)
	}
	if c.QoSServerCount() != 2 || len(c.View().Backends) != 2 {
		t.Fatalf("post-scale-in: %d servers, view %+v", c.QoSServerCount(), c.View())
	}
	// Quiescent scale-in: conservation is exact.
	want := float64(nKeys)*capacity - float64(3*nKeys)
	if got := sumCredits(t, c, nKeys, capacity); math.Abs(got-want) > 1e-6 {
		t.Fatalf("credits after scale-in = %v, want %v", got, want)
	}
	if n := c.TotalDefaultReplies(); n != 0 {
		t.Fatalf("default replies during scale-in: %d", n)
	}
	// The survivors keep serving every key with the carried-over credit.
	for i := 0; i < nKeys; i++ {
		if ok, err := c.Check(fmt.Sprintf("user-%d", i)); err != nil || !ok {
			t.Fatalf("user-%d after scale-in: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestScaleOutCRC32ReshufflesButConserves(t *testing.T) {
	const (
		nKeys    = 100
		capacity = 10.0
	)
	c := newCluster(t, Config{
		Routers:    1,
		QoSServers: 2,
		Membership: true,
		Picker:     membership.KindCRC32,
		Rules:      rules(nKeys, 0, capacity),
	})
	for i := 0; i < nKeys; i++ {
		for j := 0; j < 2; j++ {
			if ok, err := c.Check(fmt.Sprintf("user-%d", i)); err != nil || !ok {
				t.Fatalf("warm: ok=%v err=%v", ok, err)
			}
		}
	}
	if _, err := c.AddQoSServer(); err != nil {
		t.Fatal(err)
	}
	// The legacy mapping reshuffles most of the key space…
	c.mu.Lock()
	r := c.Routers[0]
	c.mu.Unlock()
	if st := r.Stats(); st.LastRemapFraction < 0.5 {
		t.Fatalf("crc32 remap fraction = %v, want > 0.5", st.LastRemapFraction)
	}
	// …but the handoff still conserves every credit.
	want := float64(nKeys)*capacity - float64(2*nKeys)
	if got := sumCredits(t, c, nKeys, capacity); math.Abs(got-want) > 1e-6 {
		t.Fatalf("credits = %v, want %v", got, want)
	}
	if n := c.TotalDefaultReplies(); n != 0 {
		t.Fatalf("default replies: %d", n)
	}
}

func TestQoSScalingRequiresMembership(t *testing.T) {
	c := newCluster(t, Config{QoSServers: 1})
	if _, err := c.AddQoSServer(); err == nil {
		t.Fatal("AddQoSServer without membership succeeded")
	}
	if err := c.RemoveQoSServer(); err == nil {
		t.Fatal("RemoveQoSServer without membership succeeded")
	}
}

func TestRemoveLastQoSServerRefused(t *testing.T) {
	c := newCluster(t, Config{QoSServers: 1, Membership: true})
	if err := c.RemoveQoSServer(); err == nil {
		t.Fatal("removed the last QoS server")
	}
}
