package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/autoscale"
)

// TestAutoscaledRouterLayer wires the §V-A Auto Scaling behaviour to a live
// cluster: the router layer grows while the (synthetic) latency metric is
// above the high-water mark and shrinks when it falls below the low-water
// mark, and the cluster keeps serving at every step.
func TestAutoscaledRouterLayer(t *testing.T) {
	c := newCluster(t, Config{Routers: 1, Rules: rules(1, 1e9, 1e9)})

	var latencyMS atomic.Value
	latencyMS.Store(100.0) // overloaded
	g, err := autoscale.New(autoscale.Config{
		Min: 1, Max: 3,
		HighWater: 50, LowWater: 10,
		Metric: func() float64 { return latencyMS.Load().(float64) },
		ScaleOut: func() (int, error) {
			if _, err := c.AddRouter(); err != nil {
				return c.RouterCount(), err
			}
			return c.RouterCount(), nil
		},
		ScaleIn: func() (int, error) {
			if err := c.RemoveRouter(); err != nil {
				return c.RouterCount(), err
			}
			return c.RouterCount(), nil
		},
		Capacity: func() int { return c.RouterCount() },
		Interval: time.Millisecond,
		Cooldown: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()

	step := func(want autoscale.Decision) {
		t.Helper()
		if d := g.EvaluateOnce(); d != want {
			t.Fatalf("decision = %v, want %v (capacity %d)", d, want, c.RouterCount())
		}
		if ok, err := c.Check("user-0"); err != nil || !ok {
			t.Fatalf("cluster broken after scaling: ok=%v err=%v", ok, err)
		}
		time.Sleep(2 * time.Millisecond) // pass the cooldown
	}

	step(autoscale.ScaledOut) // 1 -> 2
	step(autoscale.ScaledOut) // 2 -> 3
	step(autoscale.AtBound)   // at max
	if c.RouterCount() != 3 {
		t.Fatalf("routers = %d", c.RouterCount())
	}

	latencyMS.Store(1.0)     // idle
	step(autoscale.ScaledIn) // 3 -> 2
	step(autoscale.ScaledIn) // 2 -> 1
	step(autoscale.AtBound)  // at min
	if c.RouterCount() != 1 {
		t.Fatalf("routers = %d", c.RouterCount())
	}
}

func TestRemoveLastRouterRefused(t *testing.T) {
	c := newCluster(t, Config{Routers: 1})
	if err := c.RemoveRouter(); err == nil {
		t.Fatal("removed the last router")
	}
}
