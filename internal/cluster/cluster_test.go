package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/bucket"
	"repro/internal/lb"
	"repro/internal/loadgen"
)

func rules(n int, rate, capacity float64) []bucket.Rule {
	out := make([]bucket.Rule, n)
	for i := range out {
		out[i] = bucket.Rule{Key: fmt.Sprintf("user-%d", i), RefillRate: rate, Capacity: capacity, Credit: capacity}
	}
	return out
}

func newCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestGatewayEndToEnd(t *testing.T) {
	c := newCluster(t, Config{
		Routers:    2,
		QoSServers: 2,
		Rules:      rules(4, 0, 3),
	})
	// Each user has 3 credits, no refill.
	for u := 0; u < 4; u++ {
		key := fmt.Sprintf("user-%d", u)
		for i := 0; i < 3; i++ {
			ok, err := c.Check(key)
			if err != nil || !ok {
				t.Fatalf("%s request %d: ok=%v err=%v", key, i, ok, err)
			}
		}
		ok, err := c.Check(key)
		if err != nil || ok {
			t.Fatalf("%s over-quota admitted: ok=%v err=%v", key, ok, err)
		}
	}
	if c.TotalDecisions() != 16 {
		t.Fatalf("decisions = %d", c.TotalDecisions())
	}
}

func TestDNSModeEndToEnd(t *testing.T) {
	c := newCluster(t, Config{
		Routers:    2,
		QoSServers: 1,
		Mode:       DNS,
		Rules:      rules(1, 0, 2),
	})
	if c.Endpoint() != "" {
		t.Fatal("DNS mode has no LB endpoint")
	}
	checker := c.Checker()
	ok, err := checker.Check("user-0")
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	ok, _ = checker.Check("user-0")
	if !ok {
		t.Fatal("second request denied")
	}
	ok, _ = checker.Check("user-0")
	if ok {
		t.Fatal("third request admitted beyond capacity")
	}
}

func TestUnknownKeyUsesDefaultRule(t *testing.T) {
	c := newCluster(t, Config{
		DefaultRule: bucket.Rule{RefillRate: 0, Capacity: 1, Credit: 1},
	})
	ok, err := c.Check("guest-ip-1.2.3.4")
	if err != nil || !ok {
		t.Fatalf("guest first: ok=%v err=%v", ok, err)
	}
	ok, _ = c.Check("guest-ip-1.2.3.4")
	if ok {
		t.Fatal("guest second admitted beyond default capacity")
	}
}

func TestLeastConnectionsPolicy(t *testing.T) {
	c := newCluster(t, Config{
		Routers:  2,
		LBPolicy: lb.LeastConnections,
		Rules:    rules(1, 1e9, 1e9),
	})
	for i := 0; i < 10; i++ {
		if ok, err := c.Check("user-0"); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}
}

func TestRefillAcrossCluster(t *testing.T) {
	// Rate 20/s: the bucket earns its first post-drain credit only after
	// 50ms, leaving the six checks a comfortable margin even under the
	// race detector.
	c := newCluster(t, Config{Rules: rules(1, 20, 5)})
	for i := 0; i < 5; i++ {
		if ok, _ := c.Check("user-0"); !ok {
			t.Fatalf("drain %d denied", i)
		}
	}
	if ok, _ := c.Check("user-0"); ok {
		t.Fatal("admitted with empty bucket")
	}
	time.Sleep(250 * time.Millisecond) // ~5 credits at 20/s
	ok, err := c.Check("user-0")
	if err != nil || !ok {
		t.Fatalf("after refill: ok=%v err=%v", ok, err)
	}
}

func TestRuleSyncPropagates(t *testing.T) {
	c := newCluster(t, Config{
		SyncInterval: 20 * time.Millisecond,
		Rules:        rules(1, 0, 1),
	})
	if ok, _ := c.Check("user-0"); !ok {
		t.Fatal("first denied")
	}
	if ok, _ := c.Check("user-0"); ok {
		t.Fatal("over quota")
	}
	// Upgrade the rule in the database; sync must propagate it.
	if err := c.Store.Put(bucket.Rule{Key: "user-0", RefillRate: 0, Capacity: 100, Credit: 100}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, _ := c.Check("user-0"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rule update never propagated")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCheckpointPersistsCredits(t *testing.T) {
	c := newCluster(t, Config{
		CheckpointInterval: 20 * time.Millisecond,
		Rules:              rules(1, 0, 10),
	})
	for i := 0; i < 4; i++ {
		c.Check("user-0")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, found, err := c.Store.Get("user-0")
		if err == nil && found && r.Credit == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint never landed: %+v", r)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHAFailover(t *testing.T) {
	c := newCluster(t, Config{
		QoSServers: 1,
		HA:         true,
		HAInterval: 10 * time.Millisecond,
		Rules:      rules(1, 0, 10),
	})
	// Consume 6 credits on the master, then wait for one replication pull
	// that strictly follows the consumption.
	for i := 0; i < 6; i++ {
		if ok, _ := c.Check("user-0"); !ok {
			t.Fatalf("drain %d denied", i)
		}
	}
	p0 := c.QoS[0].Rep.Pulls()
	deadline := time.Now().Add(5 * time.Second)
	for c.QoS[0].Rep.Pulls() <= p0 {
		if time.Now().After(deadline) {
			t.Fatal("no replication pulls after consumption")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.FailMaster(0); err != nil {
		t.Fatal(err)
	}
	// The router re-resolves after a timeout; allow a few default replies
	// before the slave answers with the warm table (4 remaining credits).
	allowed := 0
	for i := 0; i < 40 && allowed < 5; i++ {
		ok, err := c.Check("user-0")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			allowed++
		}
		time.Sleep(5 * time.Millisecond)
	}
	if allowed != 4 {
		t.Fatalf("slave admitted %d, want 4 (warm credits)", allowed)
	}
}

func TestFailMasterErrors(t *testing.T) {
	c := newCluster(t, Config{})
	if err := c.FailMaster(0); err == nil {
		t.Fatal("FailMaster without HA succeeded")
	}
	if err := c.FailMaster(99); err == nil {
		t.Fatal("FailMaster out of range succeeded")
	}
}

func TestAddRouterScalesOut(t *testing.T) {
	c := newCluster(t, Config{Routers: 1, Rules: rules(1, 1e9, 1e9)})
	r, err := c.AddRouter()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.LB.Backends()) != 2 {
		t.Fatalf("LB backends = %d", len(c.LB.Backends()))
	}
	// Round robin now alternates; both routers serve traffic.
	for i := 0; i < 6; i++ {
		if ok, err := c.Check("user-0"); err != nil || !ok {
			t.Fatalf("ok=%v err=%v", ok, err)
		}
	}
	if r.Stats().Requests == 0 {
		t.Fatal("new router received no traffic")
	}
}

func TestConcurrentLoadThroughCluster(t *testing.T) {
	c := newCluster(t, Config{
		Routers:    2,
		QoSServers: 2,
		QoSWorkers: 2,
		Rules:      rules(8, 1e9, 1e9),
	})
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = fmt.Sprintf("user-%d", i)
	}
	res := loadgen.RunClosedLoop(context.Background(), loadgen.ClosedLoopConfig{
		Checker:     c.Checker(),
		Keys:        loadgen.NewCyclicGen(keys),
		Concurrency: 8,
		Requests:    2000,
	})
	if res.Errors > 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Accepted != 2000 {
		t.Fatalf("accepted = %d", res.Accepted)
	}
	if res.Throughput() < 100 {
		t.Fatalf("throughput = %.0f req/s, suspiciously low", res.Throughput())
	}
}

func TestCloseIdempotent(t *testing.T) {
	c := newCluster(t, Config{})
	c.Close()
	c.Close()
}

func TestQoSIntakeAndAuditPassThrough(t *testing.T) {
	c := newCluster(t, Config{
		Routers:       1,
		QoSServers:    1,
		QoSListeners:  2,
		CodelTarget:   5 * time.Millisecond,
		CodelInterval: 50 * time.Millisecond,
		Audit:         true,
		AuditInterval: 10 * time.Millisecond,
		Rules:         rules(2, 0, 5),
	})
	for i := 0; i < 10; i++ {
		if _, err := c.Check("user-0"); err != nil {
			t.Fatal(err)
		}
	}
	// The audit ledger only exists when Config.Audit reached the server.
	rep := c.QoS[0].Master.AuditReport()
	if rep.Verdict != "ok" {
		t.Fatalf("audit verdict = %q", rep.Verdict)
	}
	if rep.Buckets == 0 {
		t.Fatal("audit saw no buckets; Audit flag not plumbed through")
	}
	agg := c.AggregateQoSStats()
	if agg.Decisions != 10 || agg.Dropped != 0 {
		t.Fatalf("aggregate stats = %+v", agg)
	}
	if c.MaxCurrentSojourn() < 0 {
		t.Fatal("negative sojourn")
	}
	if c.QoS[0].Master.SojournTotal().Count() == 0 {
		t.Fatal("sojourn histogram empty")
	}
}
