// Package cluster boots a complete Janus deployment in-process on loopback:
// database layer (minisql, optionally master/standby), QoS server layer
// (optionally with HA slave pairs), request router layer, and either a
// gateway load balancer or DNS load balancing (paper Fig 1a/1b). It is the
// real networked system — every request crosses real TCP/UDP sockets — and
// is used by the integration tests, the examples, and the real-path
// experiments (Fig 5, Fig 13).
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bucket"
	"repro/internal/dns"
	"repro/internal/lb"
	"repro/internal/lease"
	"repro/internal/loadgen"
	"repro/internal/membership"
	"repro/internal/minisql"
	"repro/internal/qosserver"
	"repro/internal/router"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/transport"
)

// Mode selects the load-balancing front end.
type Mode int

// Front-end modes (paper Fig 1).
const (
	// Gateway deploys an HTTP reverse-proxy load balancer (Fig 1a).
	Gateway Mode = iota
	// DNS exposes the router addresses via a round-robin DNS record
	// (Fig 1b); clients resolve and connect directly.
	DNS
)

// Domain names used inside the cluster's private DNS zone.
const (
	Domain    = "janus.local"
	DBName    = "db." + Domain
	qosPrefix = "qos-"
)

// Config sizes and tunes a deployment.
type Config struct {
	// Routers and QoSServers set the layer widths (default 1 each).
	Routers    int
	QoSServers int
	// QoSWorkers sets worker goroutines per QoS server (0 = #CPUs).
	QoSWorkers int
	// Mode selects gateway or DNS load balancing.
	Mode Mode
	// LBPolicy applies in Gateway mode.
	LBPolicy lb.Policy
	// LBHopDelay, when non-nil, runs once per proxied request and may
	// sleep — used by experiments to model the gateway appliance's extra
	// network hop at AWS distances.
	LBHopDelay func()
	// DefaultRule applies to unknown keys (zero value denies).
	DefaultRule bucket.Rule
	// TableKind selects the QoS table implementation.
	TableKind table.Kind
	// SyncInterval / CheckpointInterval / RefillInterval configure the QoS
	// server maintenance threads (0 disables the respective thread; refill
	// then uses the exact lazy discipline).
	SyncInterval       time.Duration
	CheckpointInterval time.Duration
	RefillInterval     time.Duration
	// Transport tunes the router→QoS UDP exchange.
	Transport transport.Config
	// DefaultReply is the router's verdict when a QoS server is
	// unreachable.
	DefaultReply bool
	// Membership enables the epoch-versioned membership layer: QoS servers
	// register with the in-process coordinator and open a handoff listener,
	// routers consume hot-swappable views, and AddQoSServer/RemoveQoSServer
	// rebalance bucket state live instead of stranding it.
	Membership bool
	// Picker selects the router-layer key→backend mapping; empty selects
	// membership.KindCRC32 (the paper's formula). membership.KindJump
	// bounds the keys moved per scale event to ~K/N.
	Picker membership.Kind
	// HA adds a slave to every QoS server and a DNS failover record.
	HA bool
	// DBHA deploys the database as a master/standby pair behind a DNS
	// failover record — the Multi-AZ RDS shape of §III-D.
	DBHA bool
	// HAInterval is the slave replication pull interval.
	HAInterval time.Duration
	// DNSTTL is the TTL of the cluster's DNS records.
	DNSTTL time.Duration
	// Rules seeds the database.
	Rules []bucket.Rule
	// Lease enables credit leasing end to end: routers admit hot keys from
	// local leased buckets, QoS servers grant bounded rate shares
	// (internal/lease).
	Lease bool
	// LeaseHotRate is the router-side demand threshold (decisions/second)
	// above which a key asks for a lease; 0 means lease.DefaultHotRate.
	LeaseHotRate float64
	// LeaseFraction is the share of a bucket's refill rate the QoS server
	// may delegate, (0,1]; 0 means lease.DefaultFraction.
	LeaseFraction float64
	// LeaseTTL is the lease lifetime; 0 means lease.DefaultTTL.
	LeaseTTL time.Duration
	// QoSListeners sets the number of SO_REUSEPORT intake sockets per QoS
	// server (0 = single portable socket).
	QoSListeners int
	// CodelTarget / CodelInterval tune the CoDel intake controller on every
	// QoS server (0 selects the qosserver defaults; negative CodelTarget
	// disables CoDel, restoring drop-when-full).
	CodelTarget   time.Duration
	CodelInterval time.Duration
	// Audit enables the online admission-audit ledger on every QoS server;
	// AuditInterval is its background pass period.
	Audit         bool
	AuditInterval time.Duration
}

func (c *Config) defaults() {
	if c.Routers <= 0 {
		c.Routers = 1
	}
	if c.QoSServers <= 0 {
		c.QoSServers = 1
	}
	if c.Transport.Timeout == 0 {
		// Loopback with Go schedulers needs a little more headroom than
		// the paper's intra-AZ 100µs; the discipline is identical.
		c.Transport = transport.Config{Timeout: 20 * time.Millisecond, Retries: transport.DefaultRetries}
	}
	if c.HAInterval <= 0 {
		c.HAInterval = 50 * time.Millisecond
	}
	if c.DNSTTL <= 0 {
		c.DNSTTL = 30 * time.Second
	}
}

// QoSPair is a master QoS server and its optional HA slave.
type QoSPair struct {
	Name   string
	Master *qosserver.Server
	Slave  *qosserver.Server
	Rep    *qosserver.Replicator

	// masterDown marks the master as failed; the DNS health check reads it
	// concurrently with FailMaster.
	masterDown atomic.Bool
}

// Cluster is a running deployment.
type Cluster struct {
	cfg Config

	DNS      *dns.Server
	Resolver *dns.Resolver

	DBEngine *minisql.Engine
	DBServer *minisql.Server
	dbPool   *minisql.Pool
	Store    *store.Store

	// Database standby (DBHA only).
	DBStandbyEngine *minisql.Engine
	DBStandbyServer *minisql.Server
	dbReplica       *minisql.Replica
	dbExec          *dnsExecutor

	QoS     []*QoSPair
	Routers []*router.Router
	LB      *lb.LB

	// Coord is the membership coordinator (Membership mode only).
	Coord  *membership.Coordinator
	picker membership.Picker

	mu     sync.Mutex
	view   membership.View // last published view (Membership mode)
	closed bool
}

// New boots a deployment per cfg. On error, everything already started is
// torn down.
func New(cfg Config) (c *Cluster, err error) {
	cfg.defaults()
	c = &Cluster{cfg: cfg, DNS: dns.NewServer()}
	defer func() {
		if err != nil {
			c.Close()
		}
	}()
	if c.picker, err = membership.NewPicker(cfg.Picker); err != nil {
		return nil, err
	}
	if cfg.Membership {
		c.Coord = membership.NewCoordinator(membership.CoordinatorConfig{})
		// Every published view hot-swaps every router. The callback runs
		// under the coordinator lock, so cluster code must never hold c.mu
		// while calling a coordinator mutator.
		c.Coord.Subscribe(func(v membership.View) {
			v = v.Clone()
			c.mu.Lock()
			c.view = v
			routers := append([]*router.Router(nil), c.Routers...)
			c.mu.Unlock()
			for _, r := range routers {
				r.UpdateView(v)
			}
		})
	}

	// Database layer.
	c.DBEngine = minisql.NewEngine()
	c.DBServer, err = minisql.NewServer(c.DBEngine, "127.0.0.1:0", nil)
	if err != nil {
		return nil, err
	}
	if cfg.DBHA {
		// Multi-AZ shape: standby replicates from the master; the DB DNS
		// name is a health-checked failover record; the store resolves the
		// name on every borrowed connection so a failover is picked up
		// transparently.
		c.DBStandbyEngine = minisql.NewEngine()
		c.DBStandbyServer, err = minisql.NewServer(c.DBStandbyEngine, "127.0.0.1:0", nil)
		if err != nil {
			return nil, err
		}
		c.DBStandbyServer.SetReadOnly(true)
		c.dbReplica = minisql.NewReplica(c.DBStandbyEngine)
		if err = c.dbReplica.Follow(c.DBServer.Addr()); err != nil {
			return nil, err
		}
		masterAddr := c.DBServer.Addr()
		c.DNS.SetFailover(DBName, cfg.DNSTTL, masterAddr, c.DBStandbyServer.Addr(),
			func(addr string) bool {
				cl, err := minisql.DialTimeout(addr, 500*time.Millisecond)
				if err != nil {
					return false
				}
				defer cl.Close()
				serving, err := cl.Ping()
				return err == nil && serving
			}, cfg.HAInterval)
		c.dbExec = newDNSExecutor(c.DNS)
		c.Store = store.New(c.dbExec)
	} else {
		c.DNS.SetA(DBName, cfg.DNSTTL, c.DBServer.Addr())
		c.dbPool = minisql.NewPool(c.DBServer.Addr(), 8)
		c.Store = store.New(c.dbPool)
	}
	if err = c.Store.Init(); err != nil {
		return nil, err
	}
	if err = c.Store.PutAll(cfg.Rules); err != nil {
		return nil, err
	}

	// QoS server layer.
	for i := 0; i < cfg.QoSServers; i++ {
		pair, err2 := c.startQoSPair(i)
		if err2 != nil {
			return nil, err2
		}
		c.QoS = append(c.QoS, pair)
		if c.Coord != nil {
			c.Coord.Join(pair.Name, pair.Master.ReplicationAddr(), 1)
		}
	}

	// Request router layer: backends addressed by DNS name so failovers
	// are picked up by re-resolution.
	c.Resolver = dns.NewResolver(c.DNS)
	for i := 0; i < cfg.Routers; i++ {
		r, err2 := c.startRouter()
		if err2 != nil {
			return nil, err2
		}
		c.Routers = append(c.Routers, r)
		c.DNS.AddA(Domain, cfg.DNSTTL, r.Addr())
	}

	// Front end.
	if cfg.Mode == Gateway {
		addrs := make([]string, len(c.Routers))
		for i, r := range c.Routers {
			addrs[i] = r.Addr()
		}
		c.LB, err = lb.New(lb.Config{Addr: "127.0.0.1:0", Backends: addrs, Policy: cfg.LBPolicy, HopDelay: cfg.LBHopDelay})
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

// dnsExecutor is a store executor that resolves the database DNS name per
// call and maintains one pool per resolved address, so a DNS failover
// redirects subsequent statements to the promoted standby without any
// client reconfiguration.
type dnsExecutor struct {
	dns   *dns.Server
	mu    sync.Mutex
	pools map[string]*minisql.Pool
}

func newDNSExecutor(d *dns.Server) *dnsExecutor {
	return &dnsExecutor{dns: d, pools: make(map[string]*minisql.Pool)}
}

// Execute implements store.Executor.
func (e *dnsExecutor) Execute(sql string, args ...minisql.Value) (minisql.Result, error) {
	addrs, _, err := e.dns.Query(DBName)
	if err != nil {
		return minisql.Result{}, err
	}
	if len(addrs) == 0 {
		return minisql.Result{}, fmt.Errorf("cluster: no database address for %s", DBName)
	}
	e.mu.Lock()
	pool, ok := e.pools[addrs[0]]
	if !ok {
		pool = minisql.NewPool(addrs[0], 8)
		e.pools[addrs[0]] = pool
	}
	e.mu.Unlock()
	return pool.Execute(sql, args...)
}

func (e *dnsExecutor) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range e.pools {
		p.Close()
	}
	e.pools = make(map[string]*minisql.Pool)
}

// routerResolver adapts the caching DNS resolver but bypasses the cache:
// the router re-resolves only after invalidating a backend, and must then
// see the post-failover answer immediately.
type routerResolver struct{ r *dns.Resolver }

func (rr routerResolver) ResolveOne(name string) (string, error) {
	rr.r.Flush()
	return rr.r.ResolveOne(name)
}

func qosName(i int) string { return fmt.Sprintf("%s%d.%s", qosPrefix, i, Domain) }

func (c *Cluster) qosConfig() qosserver.Config {
	cfg := qosserver.Config{
		Addr:               "127.0.0.1:0",
		Workers:            c.cfg.QoSWorkers,
		Listeners:          c.cfg.QoSListeners,
		TableKind:          c.cfg.TableKind,
		DefaultRule:        c.cfg.DefaultRule,
		RefillInterval:     c.cfg.RefillInterval,
		SyncInterval:       c.cfg.SyncInterval,
		CheckpointInterval: c.cfg.CheckpointInterval,
		CodelTarget:        c.cfg.CodelTarget,
		CodelInterval:      c.cfg.CodelInterval,
		Audit:              c.cfg.Audit,
		AuditInterval:      c.cfg.AuditInterval,
		Store:              c.Store,
	}
	if c.cfg.Lease {
		cfg.LeaseFraction = c.cfg.LeaseFraction
		if cfg.LeaseFraction <= 0 {
			cfg.LeaseFraction = lease.DefaultFraction
		}
		cfg.LeaseTTL = c.cfg.LeaseTTL
	}
	return cfg
}

func (c *Cluster) startQoSPair(i int) (*QoSPair, error) {
	mcfg := c.qosConfig()
	if c.cfg.HA || c.cfg.Membership {
		// Membership mode needs the replication listener even without a
		// slave: it is the bucket-handoff endpoint for rebalancing.
		mcfg.ReplicationAddr = "127.0.0.1:0"
	}
	master, err := qosserver.New(mcfg)
	if err != nil {
		return nil, err
	}
	pair := &QoSPair{Name: qosName(i), Master: master}
	if !c.cfg.HA {
		c.DNS.SetA(pair.Name, c.cfg.DNSTTL, master.Addr())
		return pair, nil
	}
	slave, err := qosserver.New(c.qosConfig())
	if err != nil {
		master.Close()
		return nil, err
	}
	rep := qosserver.NewReplicator(slave, master.ReplicationAddr(), c.cfg.HAInterval)
	if err := rep.Start(); err != nil {
		master.Close()
		slave.Close()
		return nil, err
	}
	pair.Slave = slave
	pair.Rep = rep
	masterAddr := master.Addr()
	c.DNS.SetFailover(pair.Name, c.cfg.DNSTTL, masterAddr, slave.Addr(),
		func(addr string) bool { return !pair.masterDown.Load() && addr == masterAddr },
		c.cfg.HAInterval)
	return pair, nil
}

// Endpoint returns the HTTP address clients should target: the gateway LB
// in Gateway mode, or an error sentinel in DNS mode (use Checker, which
// resolves).
func (c *Cluster) Endpoint() string {
	if c.LB != nil {
		return c.LB.Addr()
	}
	return ""
}

// Checker returns a loadgen.Checker appropriate for the cluster's mode: in
// Gateway mode it targets the LB; in DNS mode it resolves the cluster
// domain per the OS caching rules (first address, TTL cache) like a real
// client.
func (c *Cluster) Checker() loadgen.Checker {
	if c.LB != nil {
		return loadgen.NewHTTPChecker(c.LB.Addr())
	}
	resolver := dns.NewResolver(c.DNS)
	inner := loadgen.NewHTTPChecker("")
	return loadgen.CheckerFunc(func(key string) (bool, error) {
		addr, err := resolver.ResolveOne(Domain)
		if err != nil {
			return false, err
		}
		inner.Endpoint = addr
		return inner.Check(key)
	})
}

// Check performs one admission check through the full stack.
func (c *Cluster) Check(key string) (bool, error) {
	return c.Checker().Check(key)
}

// FailMaster kills QoS master i (simulating a node failure), triggers the
// DNS failover health check, and promotes the slave. It returns an error
// when HA is not enabled.
func (c *Cluster) FailMaster(i int) error {
	if i < 0 || i >= len(c.QoS) {
		return fmt.Errorf("cluster: no QoS pair %d", i)
	}
	pair := c.QoS[i]
	if pair.Slave == nil {
		return fmt.Errorf("cluster: HA not enabled")
	}
	pair.masterDown.Store(true) // health check now fails
	pair.Master.Close()
	pair.Rep.Stop() // promotion: slave stops pulling, serves warm table
	if _, err := c.DNS.CheckNow(pair.Name); err != nil {
		return err
	}
	return nil
}

// startRouter boots one router node against the current QoS layer. In
// Membership mode the router immediately adopts the coordinator's current
// view, so routers added mid-life join at the current epoch.
func (c *Cluster) startRouter() (*router.Router, error) {
	c.mu.Lock()
	names := make([]string, len(c.QoS))
	for i, p := range c.QoS {
		names[i] = p.Name
	}
	c.mu.Unlock()
	rcfg := router.Config{
		Addr:         "127.0.0.1:0",
		Backends:     names,
		Picker:       c.picker,
		Resolver:     routerResolver{c.Resolver},
		Transport:    c.cfg.Transport,
		DefaultReply: c.cfg.DefaultReply,
	}
	if c.cfg.Lease {
		rcfg.Lease = &lease.TableConfig{HotRate: c.cfg.LeaseHotRate}
	}
	r, err := router.New(rcfg)
	if err != nil {
		return nil, err
	}
	if c.Coord != nil {
		if err := r.UpdateView(c.Coord.View()); err != nil {
			r.Close()
			return nil, err
		}
	}
	return r, nil
}

// AddRouter scales the router layer out by one node and registers it with
// the front end (the Auto Scaling flow of §V-A).
func (c *Cluster) AddRouter() (*router.Router, error) {
	r, err := c.startRouter()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.Routers = append(c.Routers, r)
	c.mu.Unlock()
	c.DNS.AddA(Domain, c.cfg.DNSTTL, r.Addr())
	if c.LB != nil {
		c.LB.AddBackend(r.Addr())
	}
	return r, nil
}

// RemoveRouter scales the router layer in by one node (the last added),
// deregistering it from the front end before shutdown so in-flight traffic
// drains to the survivors. It refuses to remove the last router.
func (c *Cluster) RemoveRouter() error {
	c.mu.Lock()
	if len(c.Routers) <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last router")
	}
	r := c.Routers[len(c.Routers)-1]
	c.Routers = c.Routers[:len(c.Routers)-1]
	c.mu.Unlock()
	c.DNS.RemoveA(Domain, r.Addr())
	if c.LB != nil {
		c.LB.RemoveBackend(r.Addr())
	}
	return r.Close()
}

// AddQoSServer scales the QoS tier out by one node (Membership mode only):
// it boots the server, publishes the next membership epoch — hot-swapping
// every router onto the wider view — and then rebalances, pushing every
// bucket whose key changed owner to its new home so credits survive the
// scale event. With the jump picker only ~K/(N+1) keys move, all of them
// onto the new server.
func (c *Cluster) AddQoSServer() (*QoSPair, error) {
	if c.Coord == nil {
		return nil, fmt.Errorf("cluster: membership not enabled")
	}
	c.mu.Lock()
	i := len(c.QoS)
	c.mu.Unlock()
	pair, err := c.startQoSPair(i)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.QoS = append(c.QoS, pair)
	c.mu.Unlock()
	// Publishing the wider view swaps the routers before Join returns;
	// only then is it safe to strip moved keys from the old owners.
	v := c.Coord.Join(pair.Name, pair.Master.ReplicationAddr(), 1)
	if err := c.rebalance(v); err != nil {
		return pair, err
	}
	return pair, nil
}

// RemoveQoSServer scales the QoS tier in by one node — the last added
// (Membership mode only). The narrower view is published first, draining
// new traffic off the departing server, whose entire table is then handed
// off to the surviving owners before shutdown. It refuses to remove the
// last QoS server.
func (c *Cluster) RemoveQoSServer() error {
	if c.Coord == nil {
		return fmt.Errorf("cluster: membership not enabled")
	}
	c.mu.Lock()
	if len(c.QoS) <= 1 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove the last QoS server")
	}
	pair := c.QoS[len(c.QoS)-1]
	c.QoS = c.QoS[:len(c.QoS)-1]
	c.mu.Unlock()
	v := c.Coord.Leave(pair.Name)
	// The departing server no longer appears in the view, so rebalance
	// exports every one of its entries to the new owners.
	err := c.rebalancePair(pair, v)
	c.DNS.Delete(pair.Name)
	if pair.Rep != nil {
		pair.Rep.Stop()
	}
	pair.Master.Close()
	if pair.Slave != nil {
		pair.Slave.Close()
	}
	return err
}

// rebalance runs the bucket handoff on every QoS master against view v.
func (c *Cluster) rebalance(v membership.View) error {
	c.mu.Lock()
	pairs := append([]*QoSPair(nil), c.QoS...)
	c.mu.Unlock()
	var firstErr error
	for _, p := range pairs {
		if err := c.rebalancePair(p, v); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// rebalancePair hands off every bucket of pair whose key now belongs to a
// different view member.
func (c *Cluster) rebalancePair(pair *QoSPair, v membership.View) error {
	addrOf := make(map[string]string)
	for _, m := range c.Coord.Members() {
		if m.Alive {
			addrOf[m.Name] = m.Addr
		}
	}
	_, err := pair.Master.Rebalance(func(key string) string {
		ownerName, oerr := v.Owner(c.picker, key)
		if oerr != nil || ownerName == pair.Name {
			return ""
		}
		return addrOf[ownerName]
	})
	return err
}

// QoSServerCount returns the current QoS-layer width.
func (c *Cluster) QoSServerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.QoS)
}

// View returns the current membership view (zero View when Membership is
// disabled).
func (c *Cluster) View() membership.View {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.view.Clone()
}

// TotalDefaultReplies sums router-fabricated default replies across the
// router layer — the membership acceptance metric: a clean scale event
// fabricates none.
func (c *Cluster) TotalDefaultReplies() int64 {
	c.mu.Lock()
	routers := append([]*router.Router(nil), c.Routers...)
	c.mu.Unlock()
	var n int64
	for _, r := range routers {
		n += r.Stats().DefaultReplies
	}
	return n
}

// RouterCount returns the current router-layer width.
func (c *Cluster) RouterCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.Routers)
}

// FailDB kills the database master and promotes the standby (DBHA only):
// the DNS health check flips the record, the standby leaves read-only mode,
// and subsequent store traffic lands on it.
func (c *Cluster) FailDB() error {
	if c.DBStandbyServer == nil {
		return fmt.Errorf("cluster: DBHA not enabled")
	}
	c.DBServer.Close()
	c.dbReplica.Promote()
	c.DBStandbyServer.SetReadOnly(false)
	if _, err := c.DNS.CheckNow(DBName); err != nil {
		return err
	}
	return nil
}

// AggregateQoSStats sums the operation counters across every QoS node
// (masters and slaves) — the cluster-wide view scenario SLO checks read.
func (c *Cluster) AggregateQoSStats() qosserver.Stats {
	c.mu.Lock()
	pairs := append([]*QoSPair(nil), c.QoS...)
	c.mu.Unlock()
	var agg qosserver.Stats
	add := func(s qosserver.Stats) {
		agg.Received += s.Received
		agg.Dropped += s.Dropped
		agg.Degraded += s.Degraded
		agg.Malformed += s.Malformed
		agg.Decisions += s.Decisions
		agg.Allowed += s.Allowed
		agg.Denied += s.Denied
		agg.DBQueries += s.DBQueries
		agg.DefaultHit += s.DefaultHit
		agg.DBErrors += s.DBErrors
		agg.SendErrors += s.SendErrors
		agg.LeaseGrants += s.LeaseGrants
		agg.LeaseDenies += s.LeaseDenies
		agg.LeaseRevokes += s.LeaseRevokes
		agg.Leases += s.Leases
		agg.LeasedRate += s.LeasedRate
	}
	for _, p := range pairs {
		if p.Master != nil {
			add(p.Master.Stats())
		}
		if p.Slave != nil {
			add(p.Slave.Stats())
		}
	}
	return agg
}

// MaxCurrentSojourn returns the worst queue-stage sojourn gauge across the
// QoS masters — the cluster-wide CoDel control signal, usable as an
// autoscale metric.
func (c *Cluster) MaxCurrentSojourn() time.Duration {
	c.mu.Lock()
	pairs := append([]*QoSPair(nil), c.QoS...)
	c.mu.Unlock()
	var max time.Duration
	for _, p := range pairs {
		if p.Master == nil {
			continue
		}
		if d := p.Master.CurrentSojourn(); d > max {
			max = d
		}
	}
	return max
}

// TotalDecisions sums admission decisions across all QoS nodes.
func (c *Cluster) TotalDecisions() int64 {
	var n int64
	for _, p := range c.QoS {
		if p.Master != nil {
			n += p.Master.Stats().Decisions
		}
		if p.Slave != nil {
			n += p.Slave.Stats().Decisions
		}
	}
	return n
}

// Close tears the whole deployment down.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	if c.LB != nil {
		c.LB.Close()
	}
	for _, r := range c.Routers {
		r.Close()
	}
	for _, p := range c.QoS {
		if p.Rep != nil {
			p.Rep.Stop()
		}
		if p.Master != nil {
			p.Master.Close()
		}
		if p.Slave != nil {
			p.Slave.Close()
		}
	}
	if c.dbPool != nil {
		c.dbPool.Close()
	}
	if c.dbExec != nil {
		c.dbExec.close()
	}
	if c.dbReplica != nil {
		c.dbReplica.Stop()
	}
	if c.DBStandbyServer != nil {
		c.DBStandbyServer.Close()
	}
	if c.DBServer != nil {
		c.DBServer.Close()
	}
	if c.Coord != nil {
		c.Coord.Close()
	}
	if c.DNS != nil {
		c.DNS.Close()
	}
}
