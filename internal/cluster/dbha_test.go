package cluster

import (
	"testing"
	"time"

	"repro/internal/bucket"
)

// TestDBHAFailover exercises the §III-D Multi-AZ shape end to end: the
// rules database fails over to its standby and the QoS layer keeps
// resolving rules for new keys through the promoted node.
func TestDBHAFailover(t *testing.T) {
	c := newCluster(t, Config{
		QoSServers: 1,
		DBHA:       true,
		HAInterval: 10 * time.Millisecond,
		Rules:      rules(4, 0, 2),
	})
	// Rule fetch works through the DNS executor against the master.
	if ok, err := c.Check("user-0"); err != nil || !ok {
		t.Fatalf("pre-failover: ok=%v err=%v", ok, err)
	}
	// Standby must have replicated the seeded rules.
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err := c.DBStandbyEngine.Execute(`SELECT COUNT(*) FROM qos_rules`)
		if err == nil && res.Rows[0][0].AsInt() == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := c.FailDB(); err != nil {
		t.Fatal(err)
	}

	// New keys resolve their rules from the promoted standby.
	if ok, err := c.Check("user-1"); err != nil || !ok {
		t.Fatalf("post-failover new key: ok=%v err=%v", ok, err)
	}
	// Writes (checkpoints) also land on the promoted node.
	c.QoS[0].Master.CheckpointOnce()
	r, found, err := c.Store.Get("user-1")
	if err != nil || !found {
		t.Fatalf("store read after failover: found=%v err=%v", found, err)
	}
	if r.Credit != 1 {
		t.Fatalf("checkpointed credit = %v, want 1", r.Credit)
	}
	// Rule management through the facade keeps working.
	if err := c.Store.Put(bucket.Rule{Key: "new-after-failover", RefillRate: 1, Capacity: 1, Credit: 1}); err != nil {
		t.Fatalf("rule write after failover: %v", err)
	}
}

func TestFailDBWithoutHA(t *testing.T) {
	c := newCluster(t, Config{})
	if err := c.FailDB(); err == nil {
		t.Fatal("FailDB without DBHA succeeded")
	}
}

// TestDBHAHealthLoopFlipsAutomatically verifies the background health check
// (not just CheckNow) performs the failover.
func TestDBHAHealthLoopFlipsAutomatically(t *testing.T) {
	c := newCluster(t, Config{
		DBHA:       true,
		HAInterval: 10 * time.Millisecond,
		Rules:      rules(1, 0, 100),
	})
	standbyAddr := c.DBStandbyServer.Addr()
	c.DBServer.Close() // master dies; no explicit CheckNow
	c.dbReplica.Promote()
	c.DBStandbyServer.SetReadOnly(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		addrs, _, err := c.DNS.Query(DBName)
		if err == nil && len(addrs) == 1 && addrs[0] == standbyAddr {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("DNS never flipped to standby: %v %v", addrs, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ok, err := c.Check("user-0"); err != nil || !ok {
		t.Fatalf("check after automatic failover: ok=%v err=%v", ok, err)
	}
}
