package cluster

import (
	"testing"
	"time"

	"repro/internal/dns"
	"repro/internal/loadgen"
)

// TestDNSClientPinnedWithinTTL reproduces the §V-A client-side observation
// on the real stack: a DNS-mode client caches its resolution, so all its
// requests within one TTL land on the same router node.
func TestDNSClientPinnedWithinTTL(t *testing.T) {
	c := newCluster(t, Config{
		Routers: 3,
		Mode:    DNS,
		DNSTTL:  time.Hour, // effectively permanent for the test
		Rules:   rules(1, 1e9, 1e9),
	})
	// A single client with an OS-style caching resolver.
	resolver := dns.NewResolver(c.DNS)
	inner := loadgen.NewHTTPChecker("")
	for i := 0; i < 30; i++ {
		addr, err := resolver.ResolveOne(Domain)
		if err != nil {
			t.Fatal(err)
		}
		inner.Endpoint = addr
		if ok, err := inner.Check("user-0"); err != nil || !ok {
			t.Fatalf("request %d: ok=%v err=%v", i, ok, err)
		}
	}
	// Exactly one router saw all the traffic.
	active := 0
	for _, r := range c.Routers {
		if r.Stats().Requests > 0 {
			active++
			if r.Stats().Requests != 30 {
				t.Fatalf("router served %d, want 30", r.Stats().Requests)
			}
		}
	}
	if active != 1 {
		t.Fatalf("active routers = %d, want 1 (TTL pinning)", active)
	}
}

// TestDNSClientRotatesAfterTTL shows the counterpart: once the TTL expires
// the client re-resolves and the round-robin answer moves it to the next
// router.
func TestDNSClientRotatesAfterTTL(t *testing.T) {
	c := newCluster(t, Config{
		Routers: 2,
		Mode:    DNS,
		DNSTTL:  time.Nanosecond, // immediate expiry
		Rules:   rules(1, 1e9, 1e9),
	})
	resolver := dns.NewResolver(c.DNS)
	inner := loadgen.NewHTTPChecker("")
	for i := 0; i < 20; i++ {
		addr, err := resolver.ResolveOne(Domain)
		if err != nil {
			t.Fatal(err)
		}
		inner.Endpoint = addr
		if ok, err := inner.Check("user-0"); err != nil || !ok {
			t.Fatalf("request %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i, r := range c.Routers {
		if r.Stats().Requests != 10 {
			t.Fatalf("router %d served %d, want 10 (round robin across TTL expiries)", i, r.Stats().Requests)
		}
	}
}
