package debugz

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/version"
)

func testOptions() Options {
	reg := metrics.NewRegistry()
	reg.Counter("janus_test_total", "test counter").Add(42)
	rec := trace.NewRecorder(trace.Config{})
	rec.Record(&trace.Trace{ID: trace.HexID(0xbeef), Spans: []trace.Span{
		{Hop: "lb", Dur: 1000},
		{Hop: "router", Dur: 700},
		{Hop: "qosserver", Dur: 300},
	}})
	return Options{
		Service:  "testd",
		Registry: reg,
		Tracer:   rec,
		Sections: []Section{{
			Name: "qos",
			Help: "bucket table",
			Fn:   func() any { return map[string]int{"keys": 3} },
		}},
	}
}

func get(t *testing.T, mux *http.ServeMux, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec, rec.Body.String()
}

func TestMuxMetrics(t *testing.T) {
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/metrics")
	if rec.Code != 200 || !strings.Contains(body, "janus_test_total 42") {
		t.Fatalf("code=%d body:\n%s", rec.Code, body)
	}
}

func TestMuxTraces(t *testing.T) {
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/debug/traces")
	if rec.Code != 200 {
		t.Fatalf("code=%d", rec.Code)
	}
	var d trace.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if d.Service != "testd" || d.Recorded != 1 || len(d.Recent) != 1 {
		t.Fatalf("dump = %+v", d)
	}
	if len(d.Recent[0].Spans) != 3 {
		t.Fatalf("spans = %+v", d.Recent[0].Spans)
	}
}

func TestMuxSection(t *testing.T) {
	mux := Mux(testOptions())
	_, body := get(t, mux, "/debug/qos")
	var m map[string]int
	if err := json.Unmarshal([]byte(body), &m); err != nil || m["keys"] != 3 {
		t.Fatalf("section body %q err %v", body, err)
	}
}

func TestMuxIndexAndHealth(t *testing.T) {
	mux := Mux(testOptions())
	_, body := get(t, mux, "/")
	for _, want := range []string{"/metrics", "/debug/traces", "/debug/qos", "/debug/pprof/", "/healthz"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
	rec, body := get(t, mux, "/healthz")
	if rec.Code != 200 || body != "ok\n" {
		t.Fatalf("healthz code=%d body=%q", rec.Code, body)
	}
	if rec, _ := get(t, mux, "/no-such-page"); rec.Code != 404 {
		t.Fatalf("unknown path code=%d, want 404", rec.Code)
	}
}

func TestMuxPprof(t *testing.T) {
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/debug/pprof/goroutine?debug=1")
	if rec.Code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof code=%d body:\n%.200s", rec.Code, body)
	}
}

func TestMuxOmitsDisabledEndpoints(t *testing.T) {
	mux := Mux(Options{Service: "bare"})
	if rec, _ := get(t, mux, "/metrics"); rec.Code != 404 {
		t.Fatalf("metrics without registry code=%d, want 404", rec.Code)
	}
	if rec, _ := get(t, mux, "/debug/traces"); rec.Code != 404 {
		t.Fatalf("traces without tracer code=%d, want 404", rec.Code)
	}
}

func TestServe(t *testing.T) {
	s, err := Serve("127.0.0.1:0", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "janus_test_total 42") {
		t.Fatalf("body:\n%s", body)
	}
}

func TestServeDisabled(t *testing.T) {
	s, err := Serve("", testOptions())
	if err != nil || s != nil {
		t.Fatalf("Serve(\"\") = %v, %v, want nil, nil", s, err)
	}
	if s.Addr() != "" {
		t.Fatal("nil server Addr not empty")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMuxReadyz(t *testing.T) {
	// nil Ready: always ready.
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/readyz")
	if rec.Code != 200 || !strings.Contains(body, `"ready": true`) {
		t.Fatalf("nil-Ready readyz: code=%d body:\n%s", rec.Code, body)
	}

	// A failing probe returns 503 with its evidence in the body.
	opts := testOptions()
	opts.Ready = func() ReadyStatus {
		return ReadyStatus{Ready: false, Detail: map[string]any{"view_age_seconds": 42.5}}
	}
	mux = Mux(opts)
	rec, body = get(t, mux, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("stale readyz code = %d, want 503", rec.Code)
	}
	var st ReadyStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad readyz JSON: %v\n%s", err, body)
	}
	if st.Ready || st.Detail["view_age_seconds"] != 42.5 {
		t.Fatalf("readyz detail lost: %+v", st)
	}

	// Liveness is unconditional: the same daemon still answers /healthz ok.
	rec, body = get(t, mux, "/healthz")
	if rec.Code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz on a not-ready daemon: code=%d body=%q", rec.Code, body)
	}
}

func TestMuxEvents(t *testing.T) {
	events.Record("test", "probe", "debugz", 7)
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/debug/events")
	if rec.Code != 200 {
		t.Fatalf("code=%d", rec.Code)
	}
	var d events.Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if d.Service != "testd" || d.Recorded == 0 {
		t.Fatalf("events dump empty or mislabelled: %+v", d)
	}
	var found bool
	for _, e := range d.Events {
		if e.Component == "test" && e.Kind == "probe" && e.Key == "debugz" {
			found = true
		}
	}
	if !found {
		t.Fatal("recorded event missing from /debug/events dump")
	}
}

func TestMuxBuildInfo(t *testing.T) {
	mux := Mux(testOptions())
	rec, body := get(t, mux, "/metrics")
	if rec.Code != 200 {
		t.Fatalf("code=%d", rec.Code)
	}
	if !strings.Contains(body, `janus_build_info{go="`+runtime.Version()+`",version="`+version.Version+`"} 1`) {
		t.Fatalf("metrics page lacks janus_build_info:\n%s", body)
	}
}
