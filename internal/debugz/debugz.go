// Package debugz is the shared observability endpoint every Janus daemon
// mounts. One mux serves:
//
//	/metrics           Prometheus text exposition of the daemon's registry
//	/debug/traces      JSON dump of the daemon's trace recorder
//	/debug/events      flight-recorder dump (the process-global event ring)
//	/debug/failpoints  fault-injection registry (list and arm; chaos harness)
//	/debug/<name>      JSON snapshot from a daemon-provided Section
//	/debug/pprof/*     the standard net/http/pprof profiles
//	/healthz           liveness probe ("ok": the process is serving)
//	/readyz            readiness probe (503 + JSON detail when the daemon
//	                   should stop taking traffic, e.g. stale membership)
//	/                  plain-text index of everything above
//
// The paper's evaluation (§V) reads throughput and latency out of each tier
// separately; this package is how those numbers leave the process without
// each daemon growing its own ad-hoc HTTP surface.
package debugz

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"

	"repro/internal/events"
	"repro/internal/failpoint"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/version"
)

// Section is one daemon-specific debug page: Fn's return value is rendered
// as indented JSON at /debug/<name>.
type Section struct {
	// Name is the path component under /debug/.
	Name string
	// Help is one line shown on the index page.
	Help string
	// Fn produces the snapshot to serialize. It is called per request and
	// must be safe for concurrent use.
	Fn func() any
}

// ReadyStatus is one readiness verdict with its supporting evidence,
// rendered as the /readyz JSON body.
type ReadyStatus struct {
	Ready bool `json:"ready"`
	// Detail carries the probe's evidence — view epoch, staleness ages,
	// sync ages — so a 503 explains itself without a second request.
	Detail map[string]any `json:"detail,omitempty"`
}

// Options configures a debug mux.
type Options struct {
	// Service names the daemon (shown on the index and in trace dumps).
	Service string
	// Registry backs /metrics; nil omits the endpoint.
	Registry *metrics.Registry
	// Tracer backs /debug/traces; nil omits the endpoint.
	Tracer *trace.Recorder
	// Sections are additional /debug/<name> pages.
	Sections []Section
	// Ready computes the /readyz verdict per probe; nil means
	// always-ready. Liveness (/healthz) is separate and unconditional:
	// a daemon with a stale view is alive but should stop taking traffic.
	Ready func() ReadyStatus
	// Logger receives serve errors; nil discards.
	Logger *log.Logger
}

// Mux builds the debug HTTP mux for opts.
func Mux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	var index []string
	if opts.Registry != nil {
		// Every daemon that exposes metrics identifies its build: the
		// constant-1 gauge's labels carry the stamped version and the Go
		// toolchain, the standard build_info idiom.
		opts.Registry.GaugeFunc("janus_build_info",
			"build identity of this daemon; the value is always 1, the labels carry the information",
			func() float64 { return 1 },
			metrics.Label{Key: "version", Value: version.Version},
			metrics.Label{Key: "go", Value: runtime.Version()})
		mux.Handle("/metrics", opts.Registry.Handler())
		index = append(index, "/metrics — Prometheus text exposition")
	}
	// The flight recorder is process-global (events.Default), so the dump
	// needs no per-daemon wiring: any daemon that mounts debugz exposes the
	// last few thousand operational events — epoch swaps, handoffs, lease
	// grants, failpoint fires, audit overspends.
	svc := opts.Service
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, events.Default.Dump(svc))
	})
	index = append(index, "/debug/events — flight recorder (recent operational events, oldest first)")
	if opts.Tracer != nil {
		tracer, service := opts.Tracer, opts.Service
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, tracer.Dump(service))
		})
		index = append(index, "/debug/traces — sampled request traces (recent + slowest)")
	}
	// The failpoint registry is process-global, so the endpoint needs no
	// per-daemon state: every daemon that mounts debugz is chaos-controllable.
	mux.Handle("/debug/failpoints", failpoint.Handler())
	index = append(index, "/debug/failpoints — fault-injection registry (GET lists, POST arms)")
	for _, s := range opts.Sections {
		fn := s.Fn
		mux.HandleFunc("/debug/"+s.Name, func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, fn())
		})
		index = append(index, fmt.Sprintf("/debug/%s — %s", s.Name, s.Help))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	index = append(index, "/debug/pprof/ — runtime profiles")
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	index = append(index, "/healthz — liveness probe")
	ready := opts.Ready
	if ready == nil {
		ready = func() ReadyStatus { return ReadyStatus{Ready: true} }
	}
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := ready()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !st.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	index = append(index, "/readyz — readiness probe (503 + detail when the daemon should stop taking traffic)")
	sort.Strings(index)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "%s debug endpoints:\n", opts.Service)
		for _, line := range index {
			fmt.Fprintf(w, "  %s\n", line)
		}
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; all we can do is stop writing.
		return
	}
}

// Server is a running debug endpoint.
type Server struct {
	ln     net.Listener
	server *http.Server
	wg     sync.WaitGroup
}

// Serve binds addr and serves the debug mux for opts until Close. An empty
// addr returns (nil, nil) so daemons can pass their -metrics-addr flag
// through unconditionally.
func Serve(addr string, opts Options) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugz: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, server: &http.Server{Handler: Mux(opts)}}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.server.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address ("" for a nil server, so callers need not
// branch on whether the endpoint was enabled).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the endpoint down. Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.server.Close()
	s.wg.Wait()
	return err
}
