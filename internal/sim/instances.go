// Package sim models the AWS testbed of the paper's evaluation (§V):
// the EC2 instance catalogue of Table I and a calibrated node cost model
// that converts an instance type into a per-layer processing capacity and a
// CPU-utilization profile.
//
// This package is the substitution for physical EC2 hardware (see
// DESIGN.md): the scaling experiments need nodes whose capacity is a
// function of vCPU count, which cannot be realised faithfully on a single
// development machine. The model is calibrated against the paper's observed
// saturation points:
//
//   - a QoS server layer of 10 × c3.xlarge (40 vCPUs) exceeds 100,000
//     requests/s (§I, §VII) — so a QoS core handles ≈ 2,900 req/s;
//   - one c3.8xlarge QoS server saturates around 90,000 req/s, which is
//     where the router horizontal-scaling curve flattens past 8 × c3.xlarge
//     router nodes (Fig 8a) — so a router core handles ≈ 2,850 req/s;
//   - QoS vertical scaling slightly beats horizontal at equal vCPUs
//     (Fig 12) — modelled as a fixed per-node core overhead (listener +
//     housekeeping threads), paid once per node;
//   - the QoS server shows significant CPU under-utilization at saturation
//     (Fig 10b), attributed by the authors to the QoS-table locking —
//     modelled as a per-layer utilization ceiling.
package sim

import (
	"fmt"
	"sort"
)

// InstanceType describes one EC2 instance configuration (Table I).
type InstanceType struct {
	Name        string
	VCPUs       int
	MemoryGB    float64
	NetworkMbps int
	PriceUSD    float64 // per instance-hour, ap-southeast-2, 2018
}

// Table I of the paper.
var (
	C3Large   = InstanceType{Name: "c3.large", VCPUs: 2, MemoryGB: 3.75, NetworkMbps: 250, PriceUSD: 0.188}
	C3XLarge  = InstanceType{Name: "c3.xlarge", VCPUs: 4, MemoryGB: 7.5, NetworkMbps: 500, PriceUSD: 0.376}
	C32XLarge = InstanceType{Name: "c3.2xlarge", VCPUs: 8, MemoryGB: 15, NetworkMbps: 1000, PriceUSD: 0.752}
	C34XLarge = InstanceType{Name: "c3.4xlarge", VCPUs: 16, MemoryGB: 30, NetworkMbps: 2000, PriceUSD: 1.504}
	C38XLarge = InstanceType{Name: "c3.8xlarge", VCPUs: 32, MemoryGB: 60, NetworkMbps: 10000, PriceUSD: 3.008}
	R3XLarge  = InstanceType{Name: "r3.xlarge", VCPUs: 4, MemoryGB: 30.5, NetworkMbps: 500, PriceUSD: 0.455}
	R32XLarge = InstanceType{Name: "r3.2xlarge", VCPUs: 8, MemoryGB: 61, NetworkMbps: 1000, PriceUSD: 0.910}
)

// Catalog lists every instance type of Table I, in the paper's order.
var Catalog = []InstanceType{C3Large, C3XLarge, C32XLarge, C34XLarge, C38XLarge, R3XLarge, R32XLarge}

// CSeries lists the compute instance types used in the scaling sweeps
// (Figs 7 and 10).
var CSeries = []InstanceType{C3Large, C3XLarge, C32XLarge, C34XLarge, C38XLarge}

// ByName looks an instance type up in the catalogue.
func ByName(name string) (InstanceType, bool) {
	for _, t := range Catalog {
		if t.Name == name {
			return t, true
		}
	}
	return InstanceType{}, false
}

// Names returns all catalogue names, sorted.
func Names() []string {
	out := make([]string, len(Catalog))
	for i, t := range Catalog {
		out[i] = t.Name
	}
	sort.Strings(out)
	return out
}

// Layer identifies which Janus layer a node belongs to; the cost model is
// per layer (PHP routing work vs Java bucket work).
type Layer string

// Layers with distinct cost profiles.
const (
	LayerRouter Layer = "router"
	LayerQoS    Layer = "qos"
)

// LayerProfile holds the calibrated constants for one layer.
type LayerProfile struct {
	// RatePerCore is the sustained request rate one fully-busy core
	// delivers (req/s).
	RatePerCore float64
	// OverheadCores is the per-node fixed core cost (listener thread,
	// housekeeping, kernel UDP work) paid regardless of node size.
	OverheadCores float64
	// UtilCeiling is the fraction of nominal CPU the layer can actually
	// keep busy at saturation (lock-induced idling; 1.0 = none).
	UtilCeiling float64
}

// Calibrated per-layer profiles (see package comment for derivation).
var profiles = map[Layer]LayerProfile{
	LayerRouter: {RatePerCore: 2850, OverheadCores: 0.05, UtilCeiling: 0.99},
	LayerQoS:    {RatePerCore: 2900, OverheadCores: 0.30, UtilCeiling: 0.80},
}

// Profile returns the calibrated profile for a layer.
func Profile(l Layer) LayerProfile { return profiles[l] }

// Node is one provisioned instance serving one Janus layer.
type Node struct {
	Type  InstanceType
	Layer Layer
}

// Capacity returns the node's maximum sustainable throughput in req/s.
func (n Node) Capacity() float64 {
	p := profiles[n.Layer]
	cores := float64(n.Type.VCPUs) - p.OverheadCores
	if cores < 0.1 {
		cores = 0.1
	}
	return p.RatePerCore * cores
}

// ServiceTime returns the per-request service time in seconds on one of the
// node's effective workers (Capacity = Workers / ServiceTime).
func (n Node) ServiceTime() float64 {
	return float64(n.Workers()) / n.Capacity()
}

// Workers returns the node's effective parallel service slots.
func (n Node) Workers() int {
	w := n.Type.VCPUs
	if w < 1 {
		w = 1
	}
	return w
}

// CPUUtilization converts an offered per-node load (req/s) into the CPU
// utilization an operator would observe on the node's monitoring graphs.
// Utilization grows linearly with load and is clamped at the layer's
// ceiling (the lock-idle effect of §V-C).
func (n Node) CPUUtilization(load float64) float64 {
	p := profiles[n.Layer]
	if load < 0 {
		load = 0
	}
	cap := n.Capacity()
	if load > cap {
		load = cap
	}
	// At saturation the node keeps UtilCeiling × (usable/total) of its
	// vCPUs busy; below saturation utilization is proportional.
	usable := float64(n.Type.VCPUs) - p.OverheadCores
	satUtil := p.UtilCeiling * usable / float64(n.Type.VCPUs)
	// The fixed overhead cores are busy whenever the node serves traffic.
	base := p.OverheadCores / float64(n.Type.VCPUs)
	util := base + (satUtil-base)*(load/cap)
	if util > 1 {
		util = 1
	}
	return util
}

// String implements fmt.Stringer.
func (t InstanceType) String() string {
	return fmt.Sprintf("%s(%dvCPU,%.1fGB)", t.Name, t.VCPUs, t.MemoryGB)
}
