package sim

import (
	"testing"
	"testing/quick"
)

func TestCatalogMatchesTableI(t *testing.T) {
	want := map[string]struct {
		vcpus int
		mem   float64
		net   int
		price float64
	}{
		"c3.large":   {2, 3.75, 250, 0.188},
		"c3.xlarge":  {4, 7.5, 500, 0.376},
		"c3.2xlarge": {8, 15, 1000, 0.752},
		"c3.4xlarge": {16, 30, 2000, 1.504},
		"c3.8xlarge": {32, 60, 10000, 3.008},
		"r3.xlarge":  {4, 30.5, 500, 0.455},
		"r3.2xlarge": {8, 61, 1000, 0.910},
	}
	if len(Catalog) != len(want) {
		t.Fatalf("catalog size = %d, want %d", len(Catalog), len(want))
	}
	for _, it := range Catalog {
		w, ok := want[it.Name]
		if !ok {
			t.Errorf("unexpected type %q", it.Name)
			continue
		}
		if it.VCPUs != w.vcpus || it.MemoryGB != w.mem || it.NetworkMbps != w.net || it.PriceUSD != w.price {
			t.Errorf("%s = %+v, want %+v", it.Name, it, w)
		}
	}
}

func TestByName(t *testing.T) {
	it, ok := ByName("c3.8xlarge")
	if !ok || it.VCPUs != 32 {
		t.Fatalf("ByName: %+v %v", it, ok)
	}
	if _, ok := ByName("m5.enormous"); ok {
		t.Fatal("unknown type found")
	}
}

func TestNamesSorted(t *testing.T) {
	names := Names()
	if len(names) != len(Catalog) {
		t.Fatalf("len = %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %v", names)
		}
	}
}

func TestCapacityCalibration(t *testing.T) {
	// Headline: 10 c3.xlarge QoS nodes (40 vCPUs) must exceed 100k req/s.
	n := Node{Type: C3XLarge, Layer: LayerQoS}
	if total := 10 * n.Capacity(); total <= 100_000 {
		t.Fatalf("10-node QoS capacity = %.0f, want > 100000", total)
	}
	// A single c3.8xlarge QoS node saturates near 90k (Fig 8a plateau).
	big := Node{Type: C38XLarge, Layer: LayerQoS}
	if c := big.Capacity(); c < 85_000 || c > 98_000 {
		t.Fatalf("c3.8xlarge QoS capacity = %.0f, want ~90k", c)
	}
}

func TestVerticalBeatsHorizontalForQoS(t *testing.T) {
	// Fig 12: at equal vCPUs, one big node slightly out-performs many
	// small ones (per-node overhead paid once).
	one := Node{Type: C38XLarge, Layer: LayerQoS}.Capacity()
	var eight float64
	for i := 0; i < 8; i++ {
		eight += Node{Type: C3XLarge, Layer: LayerQoS}.Capacity()
	}
	if one <= eight {
		t.Fatalf("vertical %.0f <= horizontal %.0f", one, eight)
	}
	if one > eight*1.1 {
		t.Fatalf("vertical advantage too large: %.0f vs %.0f", one, eight)
	}
}

func TestRouterVerticalNearHorizontal(t *testing.T) {
	// Fig 9: router scaling is technique-agnostic.
	one := Node{Type: C38XLarge, Layer: LayerRouter}.Capacity()
	var eight float64
	for i := 0; i < 8; i++ {
		eight += Node{Type: C3XLarge, Layer: LayerRouter}.Capacity()
	}
	diff := (one - eight) / eight
	if diff < -0.02 || diff > 0.02 {
		t.Fatalf("router vertical/horizontal differ by %.1f%%", diff*100)
	}
}

func TestCPUUtilizationProperties(t *testing.T) {
	for _, layer := range []Layer{LayerRouter, LayerQoS} {
		for _, it := range CSeries {
			n := Node{Type: it, Layer: layer}
			cap := n.Capacity()
			if u := n.CPUUtilization(0); u < 0 || u > 0.2 {
				t.Errorf("%s/%s idle util = %.2f", layer, it.Name, u)
			}
			half := n.CPUUtilization(cap / 2)
			full := n.CPUUtilization(cap)
			over := n.CPUUtilization(cap * 10)
			if !(half < full) {
				t.Errorf("%s/%s util not increasing: %.2f >= %.2f", layer, it.Name, half, full)
			}
			if full != over {
				t.Errorf("%s/%s util not clamped at capacity", layer, it.Name)
			}
			if full > 1 {
				t.Errorf("%s/%s util > 1", layer, it.Name)
			}
		}
	}
}

func TestQoSUnderutilizationAtSaturation(t *testing.T) {
	// Fig 10b: significant CPU under-utilization on the QoS layer.
	n := Node{Type: C38XLarge, Layer: LayerQoS}
	u := n.CPUUtilization(n.Capacity())
	if u > 0.9 {
		t.Fatalf("QoS saturation util = %.2f, want < 0.9 (lock-idle effect)", u)
	}
	// Routers deplete their CPU when small (Fig 7b).
	r := Node{Type: C3Large, Layer: LayerRouter}
	if u := r.CPUUtilization(r.Capacity()); u < 0.9 {
		t.Fatalf("small router saturation util = %.2f, want >= 0.9", u)
	}
}

func TestCPUUtilizationNeverNegativeOrAboveOne(t *testing.T) {
	f := func(load float64, pick uint8) bool {
		it := Catalog[int(pick)%len(Catalog)]
		for _, layer := range []Layer{LayerRouter, LayerQoS} {
			u := Node{Type: it, Layer: layer}.CPUUtilization(load)
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestServiceTimeConsistentWithCapacity(t *testing.T) {
	for _, layer := range []Layer{LayerRouter, LayerQoS} {
		for _, it := range CSeries {
			n := Node{Type: it, Layer: layer}
			// Capacity == Workers / ServiceTime by construction.
			got := float64(n.Workers()) / n.ServiceTime()
			want := n.Capacity()
			if diff := (got - want) / want; diff < -1e-9 || diff > 1e-9 {
				t.Errorf("%s/%s: capacity %.2f vs workers/svc %.2f", layer, it.Name, want, got)
			}
		}
	}
}

func TestInstanceTypeString(t *testing.T) {
	if C3Large.String() != "c3.large(2vCPU,3.8GB)" && C3Large.String() != "c3.large(2vCPU,3.8GB)" {
		// Just ensure it contains the name; exact float formatting checked loosely.
		if got := C3Large.String(); len(got) == 0 {
			t.Fatal("empty String()")
		}
	}
}
