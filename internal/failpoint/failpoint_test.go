package failpoint

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Test sites are registered once per process; individual tests arm and
// disarm them.
var (
	fpTestBasic = New("failpointtest/site/basic")
	fpTestProb  = New("failpointtest/site/prob")
	fpTestPeer  = New("failpointtest/site/peer")
	fpTestHTTP  = New("failpointtest/site/http")
	fpTestPanic = New("failpointtest/site/panic")
)

func TestDisarmedByDefault(t *testing.T) {
	if fpTestBasic.Armed() {
		t.Fatal("fresh failpoint is armed")
	}
	if o := fpTestBasic.Eval(); o.Kind != Off {
		t.Fatalf("disarmed Eval fired: %+v", o)
	}
}

func TestArmDisarmCycle(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm(fpTestBasic.Name(), Action{Kind: Drop}); err != nil {
		t.Fatal(err)
	}
	if !fpTestBasic.Armed() {
		t.Fatal("not armed after Arm")
	}
	if o := fpTestBasic.Eval(); o.Kind != Drop {
		t.Fatalf("want Drop, got %v", o.Kind)
	}
	if err := Disarm(fpTestBasic.Name()); err != nil {
		t.Fatal(err)
	}
	if fpTestBasic.Armed() {
		t.Fatal("armed after Disarm")
	}
}

func TestArmUnknownNameErrors(t *testing.T) {
	if err := Arm("failpointtest/no/such-site", Action{Kind: Drop}); err == nil {
		t.Fatal("arming an unknown name must error")
	}
}

func TestErrorActionCarriesMessage(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm(fpTestBasic.Name(), Action{Kind: Error, Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	o := fpTestBasic.Eval()
	if o.Kind != Error || o.Err == nil {
		t.Fatalf("want Error outcome with error, got %+v", o)
	}
	if !strings.Contains(o.Err.Error(), "boom") || !strings.Contains(o.Err.Error(), fpTestBasic.Name()) {
		t.Fatalf("error should name the failpoint and message: %v", o.Err)
	}
}

func TestCountBoundsFires(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm(fpTestBasic.Name(), Action{Kind: Drop, Count: 3}); err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if fpTestBasic.Eval().Kind == Drop {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("count=3 fired %d times", fired)
	}
	if !fpTestBasic.Armed() {
		t.Fatal("exhausted failpoint should stay armed (inert)")
	}
}

func TestProbabilityIsDeterministicUnderSeed(t *testing.T) {
	t.Cleanup(DisarmAll)
	run := func(seed uint64) []bool {
		if err := Arm(fpTestProb.Name(), Action{Kind: Drop, P: 0.3, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 200)
		for i := range out {
			out[i] = fpTestProb.Eval().Kind == Drop
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	// 200 draws at p=0.3: expect ~60; a wildly off count means the draw
	// mapping is broken, not unlucky.
	if fired < 30 || fired > 90 {
		t.Fatalf("p=0.3 fired %d/200", fired)
	}
	c := run(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestPartitionFiresOnlyForListedPeers(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm(fpTestPeer.Name(), Action{Kind: Partition, Peers: []string{"10.0.0.1:1"}}); err != nil {
		t.Fatal(err)
	}
	if o := fpTestPeer.EvalPeer("10.0.0.1:1"); o.Kind != Partition || o.Err == nil {
		t.Fatalf("listed peer: got %+v", o)
	}
	if o := fpTestPeer.EvalPeer("10.0.0.2:1"); o.Kind != Off {
		t.Fatalf("unlisted peer fired: %+v", o)
	}
	if o := fpTestPeer.Eval(); o.Kind != Off {
		t.Fatalf("peerless Eval of a partition fired: %+v", o)
	}
	// Empty peer list cuts everything.
	if err := Arm(fpTestPeer.Name(), Action{Kind: Partition}); err != nil {
		t.Fatal(err)
	}
	if o := fpTestPeer.EvalPeer("anything"); o.Kind != Partition {
		t.Fatalf("empty peer set should cut all peers: %+v", o)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := Arm(fpTestPanic.Name(), Action{Kind: Panic}); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	fpTestPanic.Eval()
}

func TestArmSpecPendingAppliesAtRegistration(t *testing.T) {
	t.Cleanup(DisarmAll)
	if err := ArmSpec("failpointtest/site/late=delay(2ms,n=5)"); err != nil {
		t.Fatal(err)
	}
	// The pending entry is visible (Registered: false) so env typos show.
	found := false
	for _, info := range List() {
		if info.Name == "failpointtest/site/late" && !info.Registered && info.Armed != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("pending spec not listed")
	}
	late := New("failpointtest/site/late")
	if !late.Armed() {
		t.Fatal("pending spec did not arm the site at registration")
	}
	if o := late.Eval(); o.Kind != Delay || o.Delay != 2*time.Millisecond {
		t.Fatalf("got %+v", o)
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"drop",
		"drop(p=0.2,seed=7)",
		"delay(2ms)",
		"delay(2ms,n=10)",
		"dup(p=0.5)",
		"error(msg=connection refused)",
		"partition(peers=10.0.0.1:1|10.0.0.2:1)",
		"panic",
	}
	for _, spec := range cases {
		a, err := ParseAction(spec)
		if err != nil {
			t.Fatalf("ParseAction(%q): %v", spec, err)
		}
		if got := FormatAction(a); got != spec {
			t.Errorf("round trip %q → %q", spec, got)
		}
	}
}

func TestParsePositionalArgs(t *testing.T) {
	a, err := ParseAction("error(connection refused)")
	if err != nil || a.Err != "connection refused" {
		t.Fatalf("positional error message: %+v, %v", a, err)
	}
	a, err = ParseAction("delay(5ms)")
	if err != nil || a.Delay != 5*time.Millisecond {
		t.Fatalf("positional delay: %+v, %v", a, err)
	}
	a, err = ParseAction("partition(a:1|b:2)")
	if err != nil || len(a.Peers) != 2 {
		t.Fatalf("positional peers: %+v, %v", a, err)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, spec := range []string{
		"explode", "drop(p=2)", "drop(p=x)", "delay", "delay(xyz)",
		"drop(", "drop(n=-1)",
	} {
		if _, err := ParseAction(spec); err == nil {
			t.Errorf("ParseAction(%q) accepted", spec)
		}
	}
	if _, err := ParseSet("noequals"); err == nil {
		t.Error("ParseSet without '=' accepted")
	}
}

func TestHTTPHandler(t *testing.T) {
	t.Cleanup(DisarmAll)
	mux := http.NewServeMux()
	mux.Handle("/debug/failpoints", Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	cl := &Client{Endpoint: strings.TrimPrefix(srv.URL, "http://")}

	if err := cl.Arm(fpTestHTTP.Name(), "drop(p=0.25,seed=9)"); err != nil {
		t.Fatal(err)
	}
	if !fpTestHTTP.Armed() {
		t.Fatal("remote arm did not arm")
	}
	infos, err := cl.ListRemote()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, info := range infos {
		if info.Name == fpTestHTTP.Name() {
			found = true
			if info.Armed != "drop(p=0.25,seed=9)" {
				t.Fatalf("remote list shows %q", info.Armed)
			}
		}
	}
	if !found {
		t.Fatal("armed failpoint missing from remote list")
	}
	if err := cl.Arm("failpointtest/no/such-site", "drop"); err == nil {
		t.Fatal("remote arm of unknown name must fail")
	}
	if err := cl.DisarmAll(); err != nil {
		t.Fatal(err)
	}
	if fpTestHTTP.Armed() {
		t.Fatal("remote DisarmAll left failpoint armed")
	}
}
