package failpoint

import (
	"testing"
	"time"
)

// The disarmed gate is the cost every hot-path site pays on every operation
// forever; the acceptance bar is ≤ 1 ns/op (BENCH_failpoint.json). The
// armed path only runs during chaos, so its cost is uninteresting.
var fpBench = New("failpointtest/site/bench")

// BenchmarkDisarmedGate measures the exact expression the transport send
// path executes per datagram: Armed() on a disarmed failpoint.
func BenchmarkDisarmedGate(b *testing.B) {
	n := 0
	for i := 0; i < b.N; i++ {
		if fpBench.Armed() {
			n++
		}
	}
	if n != 0 {
		b.Fatal("benchmark failpoint was armed")
	}
}

// BenchmarkDisarmedGateParallel is the same gate under contention — all
// QoS-server workers cross the qosserver/udp/recv site concurrently.
func BenchmarkDisarmedGateParallel(b *testing.B) {
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if fpBench.Armed() {
				b.Fatal("benchmark failpoint was armed")
			}
		}
	})
}

// BenchmarkArmedDropEval prices the armed path for context: one atomic load
// plus the action switch.
func BenchmarkArmedDropEval(b *testing.B) {
	if err := Arm(fpBench.Name(), Action{Kind: Drop}); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := Disarm(fpBench.Name()); err != nil {
			b.Fatal(err)
		}
	}()
	for i := 0; i < b.N; i++ {
		if fpBench.Eval().Kind != Drop {
			b.Fatal("armed drop did not fire")
		}
	}
}

// TestConcurrentEvalAndArm hammers one failpoint from many goroutines while
// arming and disarming it — the race detector's view of the atomic
// discipline.
func TestConcurrentEvalAndArm(t *testing.T) {
	t.Cleanup(DisarmAll)
	stop := make(chan struct{})
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if fpBench.Armed() {
					o := fpBench.EvalPeer("peer")
					o.Sleep()
				}
			}
		}()
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if err := Arm(fpBench.Name(), Action{Kind: Drop, P: 0.5, Count: 100}); err != nil {
			t.Fatal(err)
		}
		if err := Arm(fpBench.Name(), Action{Kind: Partition, Peers: []string{"peer"}}); err != nil {
			t.Fatal(err)
		}
		if err := Disarm(fpBench.Name()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for i := 0; i < 4; i++ {
		<-done
	}
}
