// Package failpoint is a registry of named fault-injection sites with zero
// overhead while disarmed.
//
// The paper's availability story (§II-B, §III-C) rests on mechanisms that
// only misbehave under partial failure: the router's 100 µs × 5 retry with a
// default reply on exhaustion, master/slave replication and failover, and
// live bucket handoff during membership changes. Failpoints let the chaos
// suite (and an operator at /debug/failpoints) inject packet loss, latency,
// errors, duplication, peer partitions, and panics at the exact seams where
// those mechanisms live — deterministically, under a seed — without a packet
// filter or a patched kernel.
//
// # Code sites
//
// A site registers once, at package init, with a literal name:
//
//	var fpSend = failpoint.New("transport/client/send")
//
// and gates the injected behaviour on the hot path:
//
//	if fpSend.Armed() {                       // one atomic load when disarmed
//		switch o := fpSend.EvalPeer(addr); o.Kind {
//		case failpoint.Drop, failpoint.Partition:
//			return nil // pretend the datagram was sent
//		case failpoint.Delay:
//			o.Sleep()
//		case failpoint.Error:
//			return o.Err
//		}
//	}
//
// Armed() compiles to a single atomic pointer load and a nil comparison —
// measured ≤ 1 ns, see BENCH_failpoint.json — so sites may sit on the
// hottest paths in the system. The janus-vet failpointsite analyzer enforces
// that every name has exactly one code site and follows the
// tier/component/event naming convention.
//
// # Arming
//
// Failpoints are armed three ways, all sharing the spec syntax of ParseAction:
//
//   - the JANUS_FAILPOINTS environment variable, read at process init
//     ("name=drop(p=0.2);other=delay(2ms)") — specs for names whose site has
//     not registered yet are held pending and applied at registration, so
//     env arming works regardless of package-init order;
//   - the programmatic API (Arm, Disarm, DisarmAll) — used by in-process
//     chaos tests;
//   - the /debug/failpoints HTTP endpoint (Handler), mounted by every
//     daemon's debugz mux — used to inject faults into a live process.
//
// Probabilistic actions draw from a seeded splitmix64 sequence, never from
// the global RNG, so a chaos run with a fixed seed sees a reproducible
// fire/skip sequence.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
)

// Kind is the behaviour an armed failpoint injects.
type Kind uint8

// Failpoint action kinds.
const (
	// Off is the disarmed state (and the zero Outcome).
	Off Kind = iota
	// Drop silently discards the operation (lost datagram).
	Drop
	// Delay stalls the operation by Action.Delay.
	Delay
	// Error fails the operation with an injected error.
	Error
	// Dup performs the operation twice (duplicated datagram).
	Dup
	// Partition drops or fails operations against the peers listed in
	// Action.Peers (all peers when the list is empty). Sites map it to
	// their natural failure: datagram sites drop, dial sites error.
	Partition
	// Panic panics inside Eval — the process-crash fault.
	Panic
)

var kindNames = map[Kind]string{
	Off: "off", Drop: "drop", Delay: "delay", Error: "error",
	Dup: "dup", Partition: "partition", Panic: "panic",
}

// String returns the spec keyword for k.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Action describes what an armed failpoint does when it fires.
type Action struct {
	// Kind selects the injected behaviour.
	Kind Kind
	// Delay is the injected stall (Delay kind).
	Delay time.Duration
	// Err is the injected error message (Error and Partition kinds);
	// empty selects a default message.
	Err string
	// Peers are the peers cut off (Partition kind); empty cuts all.
	Peers []string
	// P is the fire probability in (0, 1]; 0 means always fire.
	P float64
	// Count bounds the number of fires; 0 is unlimited. An exhausted
	// failpoint stays armed but inert.
	Count int64
	// Seed seeds the deterministic probability draws; 0 derives a seed
	// from the failpoint name.
	Seed uint64
}

// Validate reports whether the action is well-formed.
func (a Action) Validate() error {
	if _, ok := kindNames[a.Kind]; !ok {
		return fmt.Errorf("failpoint: unknown action kind %d", a.Kind)
	}
	if a.P < 0 || a.P > 1 {
		return fmt.Errorf("failpoint: probability %v outside [0,1]", a.P)
	}
	if a.Delay < 0 {
		return fmt.Errorf("failpoint: negative delay %v", a.Delay)
	}
	if a.Count < 0 {
		return fmt.Errorf("failpoint: negative count %d", a.Count)
	}
	if a.Kind == Delay && a.Delay == 0 {
		return errors.New("failpoint: delay action needs a duration, e.g. delay(2ms)")
	}
	return nil
}

// Outcome is one evaluation of an armed failpoint. The zero value (Kind ==
// Off) means the failpoint did not fire.
type Outcome struct {
	// Kind is the fired behaviour, or Off.
	Kind Kind
	// Delay is the stall to apply (Delay kind).
	Delay time.Duration
	// Err is the injected error (Error and Partition kinds).
	Err error
}

// Sleep applies a Delay outcome (no-op for every other kind).
func (o Outcome) Sleep() {
	if o.Kind == Delay && o.Delay > 0 {
		time.Sleep(o.Delay)
	}
}

// armed is the state installed by Arm: the immutable action plus the mutable
// fire bookkeeping. Re-arming replaces the whole record, so counters restart.
type armed struct {
	action Action
	err    error
	peers  map[string]bool
	seed   uint64
	left   atomic.Int64  // fires remaining; only used when action.Count > 0
	draws  atomic.Uint64 // probability draws taken
}

// splitmix64 is the SplitMix64 mixing function — a high-quality stateless
// mix of a counter into 64 uniform bits (same generator the trace sampler
// uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64 hashes a failpoint name into a default seed.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw takes the next deterministic probability draw.
func (st *armed) draw() bool {
	n := st.draws.Add(1)
	x := splitmix64(st.seed + n)
	return float64(x>>11)/float64(1<<53) < st.action.P
}

// FP is one registered failpoint site.
type FP struct {
	name  string
	state atomic.Pointer[armed]
	hits  atomic.Int64
}

// Name returns the registered name.
func (f *FP) Name() string { return f.name }

// Armed reports whether the failpoint is armed. This is the hot-path gate:
// one atomic pointer load and a nil comparison when disarmed.
//
//janus:hotpath
func (f *FP) Armed() bool { return f.state.Load() != nil }

// Hits returns how many times the failpoint has fired since registration
// (across re-arms).
func (f *FP) Hits() int64 { return f.hits.Load() }

// Eval evaluates the failpoint without a peer. A Partition action never
// fires here — partition-aware sites use EvalPeer.
func (f *FP) Eval() Outcome { return f.eval("", false) }

// EvalPeer evaluates the failpoint against the named peer. Non-partition
// actions fire regardless of the peer; a Partition action fires only when
// peer is in the armed peer set (or the set is empty).
func (f *FP) EvalPeer(peer string) Outcome { return f.eval(peer, true) }

func (f *FP) eval(peer string, havePeer bool) Outcome {
	st := f.state.Load()
	if st == nil {
		return Outcome{}
	}
	a := st.action
	if a.Kind == Partition {
		if !havePeer {
			return Outcome{}
		}
		if len(st.peers) > 0 && !st.peers[peer] {
			return Outcome{}
		}
	}
	if a.P > 0 && a.P < 1 && !st.draw() {
		return Outcome{}
	}
	if a.Count > 0 && st.left.Add(-1) < 0 {
		return Outcome{}
	}
	f.hits.Add(1)
	// Every fire lands in the flight recorder: when a chaos run trips an
	// invariant, the event dump shows which injected faults preceded it.
	// Only armed failpoints ever reach this line, so the steady-state
	// disarmed cost is untouched.
	events.Recordf("failpoint", "fire", f.name, float64(f.hits.Load()), "kind=%s peer=%s", a.Kind, peer)
	switch a.Kind {
	case Panic:
		panic(fmt.Sprintf("failpoint: %s: injected panic", f.name))
	case Error, Partition:
		return Outcome{Kind: a.Kind, Err: st.err}
	case Delay:
		return Outcome{Kind: Delay, Delay: a.Delay}
	default:
		return Outcome{Kind: a.Kind}
	}
}

// arm installs the action (Off disarms).
func (f *FP) arm(a Action) {
	if a.Kind == Off {
		f.state.Store(nil)
		return
	}
	st := &armed{action: a, seed: a.Seed}
	if st.seed == 0 {
		st.seed = fnv64(f.name)
	}
	msg := a.Err
	if msg == "" {
		if a.Kind == Partition {
			msg = "injected partition"
		} else {
			msg = "injected error"
		}
	}
	st.err = fmt.Errorf("failpoint: %s: %s", f.name, msg)
	if len(a.Peers) > 0 {
		st.peers = make(map[string]bool, len(a.Peers))
		for _, p := range a.Peers {
			st.peers[p] = true
		}
	}
	st.left.Store(a.Count)
	f.state.Store(st)
}

// registry is the process-wide name → site table plus the pending env specs
// whose sites have not registered yet.
var registry = struct {
	mu      sync.Mutex
	fps     map[string]*FP
	pending map[string]Action
}{
	fps:     make(map[string]*FP),
	pending: make(map[string]Action),
}

// EnvVar is the environment variable read at process init for arming specs:
// semicolon-separated name=action pairs, e.g.
//
//	JANUS_FAILPOINTS='qosserver/udp/recv=drop(p=0.2,seed=7);qosserver/ha/pull=error(partitioned)'
const EnvVar = "JANUS_FAILPOINTS"

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := ArmSpec(spec); err != nil {
			// Init cannot return an error; a malformed env spec must not be
			// silently inert.
			fmt.Fprintf(os.Stderr, "failpoint: %s: %v\n", EnvVar, err)
		}
	}
}

// New registers a failpoint site. Each name has exactly one site (enforced
// statically by the janus-vet failpointsite analyzer, and at runtime by this
// panic); call it from a package-level var so the site exists at init time.
// A pending env spec for the name arms the new site immediately.
func New(name string) *FP {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.fps[name]; dup {
		panic("failpoint: duplicate registration of " + name)
	}
	f := &FP{name: name}
	registry.fps[name] = f
	if a, ok := registry.pending[name]; ok {
		delete(registry.pending, name)
		f.arm(a)
	}
	return f
}

// Lookup returns the registered failpoint with the given name, or nil.
func Lookup(name string) *FP {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return registry.fps[name]
}

// Arm arms the named failpoint with a (Kind Off disarms). Unknown names are
// an error — arming is how chaos tests express intent, and a typo that
// silently arms nothing would void the test.
func Arm(name string, a Action) error {
	if err := a.Validate(); err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	f := registry.fps[name]
	if f == nil {
		return fmt.Errorf("failpoint: unknown failpoint %q", name)
	}
	f.arm(a)
	return nil
}

// Disarm disarms the named failpoint.
func Disarm(name string) error { return Arm(name, Action{Kind: Off}) }

// DisarmAll disarms every registered failpoint and clears pending env specs.
// Chaos tests call it in cleanup so one test's faults cannot leak into the
// next.
func DisarmAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, f := range registry.fps {
		f.arm(Action{Kind: Off})
	}
	registry.pending = make(map[string]Action)
}

// ArmSpec arms from a semicolon-separated "name=action" list (the EnvVar
// syntax). Names with no registered site are held pending and armed when the
// site registers, so env specs work regardless of package-init order.
func ArmSpec(spec string) error {
	set, err := ParseSet(spec)
	if err != nil {
		return err
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for name, a := range set {
		if f := registry.fps[name]; f != nil {
			f.arm(a)
		} else if a.Kind == Off {
			delete(registry.pending, name)
		} else {
			registry.pending[name] = a
		}
	}
	return nil
}

// Info is one row of List — the /debug/failpoints JSON shape.
type Info struct {
	// Name is the failpoint name (or, for a pending env spec, the name
	// that has no code site yet).
	Name string `json:"name"`
	// Armed is the armed action spec, empty when disarmed.
	Armed string `json:"armed,omitempty"`
	// Hits counts fires since registration.
	Hits int64 `json:"hits"`
	// Registered is false for pending env specs with no code site — a
	// misspelled name shows up here instead of silently doing nothing.
	Registered bool `json:"registered"`
}

// List returns every registered failpoint plus pending env specs, sorted by
// name.
func List() []Info {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]Info, 0, len(registry.fps)+len(registry.pending))
	for name, f := range registry.fps {
		info := Info{Name: name, Hits: f.hits.Load(), Registered: true}
		if st := f.state.Load(); st != nil {
			info.Armed = FormatAction(st.action)
		}
		out = append(out, info)
	}
	for name, a := range registry.pending {
		out = append(out, Info{Name: name, Armed: FormatAction(a)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
