package failpoint

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseAction parses one action spec:
//
//	off | drop | delay | error | dup | partition | panic
//
// optionally followed by parenthesised comma-separated arguments. Arguments
// are either key=value pairs —
//
//	p=0.2        fire probability
//	n=100        fire at most 100 times
//	seed=7       probability-draw seed
//	d=2ms        delay duration
//	msg=boom     injected error message
//	peers=a|b    partitioned peers, pipe-separated
//
// — or a single positional value interpreted by kind: the duration for
// delay, the message for error, the peer list for partition. Examples:
//
//	drop
//	drop(p=0.2,seed=7)
//	delay(2ms)
//	delay(d=2ms,n=10)
//	error(connection refused)
//	dup(p=0.5)
//	partition(127.0.0.1:7101|127.0.0.1:7102)
//	panic
func ParseAction(spec string) (Action, error) {
	spec = strings.TrimSpace(spec)
	name, args := spec, ""
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return Action{}, fmt.Errorf("failpoint: unbalanced parentheses in %q", spec)
		}
		name, args = spec[:i], spec[i+1:len(spec)-1]
	}
	var a Action
	switch strings.TrimSpace(name) {
	case "off":
		a.Kind = Off
	case "drop":
		a.Kind = Drop
	case "delay":
		a.Kind = Delay
	case "error":
		a.Kind = Error
	case "dup":
		a.Kind = Dup
	case "partition":
		a.Kind = Partition
	case "panic":
		a.Kind = Panic
	default:
		return Action{}, fmt.Errorf("failpoint: unknown action %q (want off|drop|delay|error|dup|partition|panic)", name)
	}
	if args != "" {
		for _, part := range strings.Split(args, ",") {
			if err := applyArg(&a, strings.TrimSpace(part)); err != nil {
				return Action{}, fmt.Errorf("failpoint: %q: %w", spec, err)
			}
		}
	}
	if err := a.Validate(); err != nil {
		return Action{}, err
	}
	return a, nil
}

// applyArg applies one argument (key=value or positional) to a.
func applyArg(a *Action, arg string) error {
	if arg == "" {
		return nil
	}
	key, val, kv := strings.Cut(arg, "=")
	if kv {
		switch strings.TrimSpace(key) {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("bad probability %q", val)
			}
			a.P = p
			return nil
		case "n":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad count %q", val)
			}
			a.Count = n
			return nil
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q", val)
			}
			a.Seed = s
			return nil
		case "d":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("bad duration %q", val)
			}
			a.Delay = d
			return nil
		case "msg":
			a.Err = val
			return nil
		case "peers":
			a.Peers = splitPeers(val)
			return nil
		}
		// An unknown key falls through to positional handling: an error
		// message may legitimately contain '=' ("error(code=7)").
	}
	switch a.Kind {
	case Delay:
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("bad duration %q", arg)
		}
		a.Delay = d
	case Error:
		a.Err = arg
	case Partition:
		a.Peers = splitPeers(arg)
	default:
		return fmt.Errorf("unexpected argument %q for %s", arg, a.Kind)
	}
	return nil
}

func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, "|") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// FormatAction renders a in the ParseAction syntax (the /debug/failpoints
// display form). FormatAction and ParseAction round-trip.
func FormatAction(a Action) string {
	var args []string
	if a.Kind == Delay && a.Delay > 0 {
		args = append(args, a.Delay.String())
	}
	if a.Err != "" {
		args = append(args, "msg="+a.Err)
	}
	if len(a.Peers) > 0 {
		args = append(args, "peers="+strings.Join(a.Peers, "|"))
	}
	if a.P > 0 && a.P < 1 {
		args = append(args, "p="+strconv.FormatFloat(a.P, 'g', -1, 64))
	}
	if a.Count > 0 {
		args = append(args, "n="+strconv.FormatInt(a.Count, 10))
	}
	if a.Seed != 0 {
		args = append(args, "seed="+strconv.FormatUint(a.Seed, 10))
	}
	if len(args) == 0 {
		return a.Kind.String()
	}
	return a.Kind.String() + "(" + strings.Join(args, ",") + ")"
}

// ParseSet parses a semicolon-separated "name=action" list (the EnvVar and
// chaos-harness syntax) into a name → Action map.
func ParseSet(spec string) (map[string]Action, error) {
	out := make(map[string]Action)
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, actionSpec, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("failpoint: malformed entry %q (want name=action)", pair)
		}
		a, err := ParseAction(actionSpec)
		if err != nil {
			return nil, err
		}
		out[name] = a
	}
	return out, nil
}
