package failpoint

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler serves the failpoint registry over HTTP — the /debug/failpoints
// endpoint every daemon mounts through debugz:
//
//	GET  /debug/failpoints                     → JSON list of failpoints
//	POST /debug/failpoints?name=N&action=SPEC  → arm N (action=off disarms)
//	POST /debug/failpoints?all=off             → disarm everything
//
// SPEC uses the ParseAction syntax. Responses to POST echo the updated list
// so a chaos harness can arm-and-verify in one exchange.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeList(w)
		case http.MethodPost, http.MethodPut:
			if r.FormValue("all") == "off" {
				DisarmAll()
				writeList(w)
				return
			}
			name := r.FormValue("name")
			spec := r.FormValue("action")
			if name == "" || spec == "" {
				http.Error(w, "name and action required (or all=off)", http.StatusBadRequest)
				return
			}
			a, err := ParseAction(spec)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := Arm(name, a); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			writeList(w)
		default:
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
}

func writeList(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(List()); err != nil {
		// The header is already out; nothing more to do.
		return
	}
}

// Client arms failpoints in a remote process through its /debug/failpoints
// endpoint — the chaos harness's remote control for daemon processes.
type Client struct {
	// Endpoint is the daemon's debug host:port (no scheme).
	Endpoint string
	// HTTPClient overrides the default client when non-nil.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Arm arms name with the given action spec in the remote process.
func (c *Client) Arm(name, spec string) error {
	return c.post(fmt.Sprintf("http://%s/debug/failpoints?name=%s&action=%s",
		c.Endpoint, queryEscape(name), queryEscape(spec)))
}

// Disarm disarms name in the remote process.
func (c *Client) Disarm(name string) error { return c.Arm(name, "off") }

// DisarmAll disarms every failpoint in the remote process.
func (c *Client) DisarmAll() error {
	return c.post("http://" + c.Endpoint + "/debug/failpoints?all=off")
}

// ListRemote fetches the remote registry state.
func (c *Client) ListRemote() ([]Info, error) {
	resp, err := c.httpClient().Get("http://" + c.Endpoint + "/debug/failpoints")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("failpoint: remote list: %s", resp.Status)
	}
	var out []Info
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Client) post(url string) error {
	resp, err := c.httpClient().Post(url, "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("failpoint: remote arm: %s", resp.Status)
	}
	return nil
}

// queryEscape covers the characters that appear in action specs without
// pulling in net/url's full semantics (specs never contain '&' or '#').
func queryEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ':
			out = append(out, '+')
		case '+', '%', '&', '#', '=', ';', '?':
			out = append(out, '%', "0123456789ABCDEF"[c>>4], "0123456789ABCDEF"[c&15])
		default:
			out = append(out, c)
		}
	}
	return string(out)
}
