package events

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestRingRecordAndSnapshotOrder(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 10; i++ {
		r.Record("test", "tick", fmt.Sprintf("k%d", i), float64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot returned %d events, want 10", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d; snapshot must be oldest→newest", i, e.Seq)
		}
		if e.Value != float64(i) || e.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("event %d carries %q/%v, want k%d/%d", i, e.Key, e.Value, i, i)
		}
		if e.Nanos == 0 {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
}

func TestRingWrapEvictsOldest(t *testing.T) {
	r := NewRing(16) // exactly 16 slots
	for i := 0; i < 40; i++ {
		r.Record("test", "tick", "", float64(i))
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("wrapped ring holds %d events, want 16", len(evs))
	}
	if evs[0].Seq != 24 || evs[len(evs)-1].Seq != 39 {
		t.Fatalf("wrapped ring spans seq %d..%d, want 24..39", evs[0].Seq, evs[len(evs)-1].Seq)
	}
	d := r.Dump("svc")
	if d.Recorded != 40 || d.Dropped != 24 {
		t.Fatalf("dump reports recorded=%d dropped=%d, want 40/24", d.Recorded, d.Dropped)
	}
}

func TestRingConcurrentRecord(t *testing.T) {
	r := NewRing(1024)
	const writers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record("test", "concurrent", "", float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Recorded(); got != writers*per {
		t.Fatalf("recorded %d events, want %d", got, writers*per)
	}
	evs := r.Snapshot()
	if len(evs) != 1024 {
		t.Fatalf("snapshot holds %d events, want full ring of 1024", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not strictly seq-ordered at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestDumpJSONShape(t *testing.T) {
	r := NewRing(16)
	r.Recordf("router", "epoch-swap", "", 7, "backends=%d", 3)
	var buf bytes.Buffer
	if err := r.WriteTo(&buf, "janus-router"); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if d.Service != "janus-router" || len(d.Events) != 1 {
		t.Fatalf("dump = %+v, want service janus-router with one event", d)
	}
	e := d.Events[0]
	if e.Component != "router" || e.Kind != "epoch-swap" || e.Value != 7 || e.Detail != "backends=3" {
		t.Fatalf("event = %+v", e)
	}
}
