// Package events is the per-daemon flight recorder: a fixed-size lock-free
// ring of control-plane state transitions (epoch swaps, bucket handoffs,
// lease grants and revocations, failpoint fires, default-reply mode flips,
// audit overspends).
//
// The data plane already has metrics (rates and distributions) and traces
// (per-request latency decomposition); what neither captures is the ORDER of
// the rare transitions that explain a bad five seconds — "the view swapped,
// the handoff landed, THEN the audit tripped". The flight recorder keeps the
// last few thousand such transitions with sequence numbers and wall-clock
// timestamps, cheap enough to record unconditionally, and dumps them three
// ways: the /debug/events endpoint, a SIGQUIT handler in every daemon, and
// the chaos harness on invariant failure — turning a red chaos run from
// "re-run with printf" into one artifact.
//
// Recording follows the trace.Ring idiom: writers claim a slot with one
// atomic add and publish with one atomic pointer store, so a transition on a
// semi-hot path (a lease revocation storm, a firing failpoint) never
// serializes the goroutines reporting it. Each Record allocates one Event —
// transitions are rare by construction, so this stays off the zero-alloc
// admission paths.
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Event is one recorded state transition.
type Event struct {
	// Seq is the claim order within this ring — a total order over the
	// daemon's transitions even when timestamps collide.
	Seq uint64 `json:"seq"`
	// Nanos is the wall-clock time of the transition in Unix nanoseconds.
	Nanos int64 `json:"ns"`
	// Component names the subsystem that recorded the transition
	// ("router", "qosserver", "lease", "failpoint", "audit", ...).
	Component string `json:"component"`
	// Kind names the transition ("epoch-swap", "handoff-apply",
	// "lease-grant", "failpoint-fire", "default-reply-enter", ...).
	Kind string `json:"kind"`
	// Key is the affected entity: a bucket key, a backend address, a
	// failpoint name. Empty when the transition is daemon-wide.
	Key string `json:"key,omitempty"`
	// Value is a kind-specific number: the new epoch, a handoff entry
	// count, a granted rate, an overspend amount.
	Value float64 `json:"value,omitempty"`
	// Detail is optional preformatted context, filled on cold paths only.
	Detail string `json:"detail,omitempty"`
}

// Ring is a fixed-size lock-free flight-recorder ring.
type Ring struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	next  atomic.Uint64
}

// NewRing returns a ring holding the last n events (n rounded up to a power
// of two; minimum 16).
func NewRing(n int) *Ring {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], size), mask: uint64(size - 1)}
}

// Record publishes one transition, evicting the oldest when full. The
// timestamp is taken here so call sites stay one-liners.
func (r *Ring) Record(component, kind, key string, value float64) {
	r.put(&Event{Nanos: time.Now().UnixNano(), Component: component, Kind: kind, Key: key, Value: value})
}

// Recordf is Record plus a formatted detail string (cold paths only — the
// format call allocates).
func (r *Ring) Recordf(component, kind, key string, value float64, format string, args ...any) {
	r.put(&Event{
		Nanos: time.Now().UnixNano(), Component: component, Kind: kind,
		Key: key, Value: value, Detail: fmt.Sprintf(format, args...),
	})
}

func (r *Ring) put(e *Event) {
	e.Seq = r.next.Add(1) - 1
	r.slots[e.Seq&r.mask].Store(e)
}

// Recorded reports how many events have ever been recorded (including those
// already evicted).
func (r *Ring) Recorded() uint64 { return r.next.Load() }

// Snapshot returns the buffered events ordered oldest → newest. Concurrent
// Records may or may not be included; an event overwritten mid-snapshot is
// simply represented by its replacement.
func (r *Ring) Snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump is the JSON document served at /debug/events and written on SIGQUIT.
type Dump struct {
	Service  string  `json:"service,omitempty"`
	Recorded uint64  `json:"recorded"`
	Dropped  uint64  `json:"dropped"`
	Events   []Event `json:"events"`
}

// Dump captures the ring for JSON exposition.
func (r *Ring) Dump(service string) Dump {
	evs := r.Snapshot()
	rec := r.Recorded()
	return Dump{Service: service, Recorded: rec, Dropped: rec - uint64(len(evs)), Events: evs}
}

// WriteTo writes the dump as indented JSON — the SIGQUIT text form.
func (r *Ring) WriteTo(w io.Writer, service string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump(service))
}

// Default is the process-global ring every daemon records into, mirroring
// the failpoint registry's process-global shape: subsystems deep in the
// stack (the failpoint evaluator, the audit ledger) can report transitions
// without per-daemon plumbing, and debugz mounts /debug/events
// unconditionally.
var Default = NewRing(4096)

// Record publishes a transition to the process-global ring.
func Record(component, kind, key string, value float64) {
	Default.Record(component, kind, key, value)
}

// Recordf publishes a transition with formatted detail to the process-global
// ring.
func Recordf(component, kind, key string, value float64, format string, args ...any) {
	Default.Recordf(component, kind, key, value, format, args...)
}
