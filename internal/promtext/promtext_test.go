package promtext

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestParseBasic(t *testing.T) {
	in := `# HELP janus_qos_received_total datagrams received
# TYPE janus_qos_received_total counter
janus_qos_received_total 1234
janus_qos_sojourn_seconds{stage="total",quantile="0.5"} 5e-05
janus_qos_sojourn_seconds_bucket{stage="total",le="+Inf"} 17
janus_qos_sojourn_seconds_count{stage="total"} 17
janus_build_info{go="go1.22.0",version="dev"} 1
weird{msg="a\"b\\c\nd"} 2

garbage line without a value
`
	m, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := m.Value("janus_qos_received_total"); !ok || v != 1234 {
		t.Errorf("received_total = %v, %v; want 1234, true", v, ok)
	}
	if v, ok := m.Value("janus_qos_sojourn_seconds",
		Label{"stage", "total"}, Label{"quantile", "0.5"}); !ok || v != 5e-05 {
		t.Errorf("sojourn p50 = %v, %v; want 5e-05, true", v, ok)
	}
	if v, ok := m.Value("janus_qos_sojourn_seconds_bucket",
		Label{"le", "+Inf"}); !ok || v != 17 {
		t.Errorf("+Inf bucket = %v, %v; want 17, true", v, ok)
	}
	if _, ok := m.Value("janus_build_info", Label{"version", "dev"}); !ok {
		t.Errorf("build_info{version=dev} not found")
	}
	if !m.Has("janus_qos_received_total") || m.Has("janus_router_requests_total") {
		t.Errorf("Has misreports scraped families")
	}
	if v, ok := m.Value("weird", Label{"msg", "a\"b\\c\nd"}); !ok || v != 2 {
		t.Errorf("escaped label value not decoded: %v, %v", v, ok)
	}
	if got := len(m.Samples("janus_qos_sojourn_seconds")); got != 1 {
		t.Errorf("Samples(sojourn) = %d entries, want 1", got)
	}
}

// TestParseRoundTrip feeds a real registry exposition through the parser —
// the consumer co-evolves with the producer, so a format change in
// metrics.WriteProm that promtext cannot read fails here, not in janus-top
// against a live cluster.
func TestParseRoundTrip(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("janus_test_total", "help").Add(41)
	reg.Gauge("janus_test_depth", "help").Set(7)
	h := reg.HistogramScaled("janus_test_latency_ns", "help", 1e-9, metrics.Label{Key: "stage", Value: "queue"})
	for i := 1; i <= 100; i++ {
		h.Record(int64(i) * 1000)
	}
	var sb strings.Builder
	reg.WriteProm(&sb)

	m, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if v, ok := m.Value("janus_test_total"); !ok || v != 41 {
		t.Errorf("counter = %v, %v; want 41, true", v, ok)
	}
	if v, ok := m.Value("janus_test_depth"); !ok || v != 7 {
		t.Errorf("gauge = %v, %v; want 7, true", v, ok)
	}
	if v, ok := m.Value("janus_test_latency_ns_count", Label{"stage", "queue"}); !ok || v != 100 {
		t.Errorf("histogram count = %v, %v; want 100, true", v, ok)
	}
	if v, ok := m.Value("janus_test_latency_ns_bucket", Label{"stage", "queue"}, Label{"le", "+Inf"}); !ok || v != 100 {
		t.Errorf("+Inf bucket = %v, %v; want 100, true", v, ok)
	}
	p50, ok := m.Value("janus_test_latency_ns", Label{"stage", "queue"}, Label{"quantile", "0.5"})
	if !ok || p50 <= 0 {
		t.Errorf("p50 = %v, %v; want > 0, true", p50, ok)
	}
}
