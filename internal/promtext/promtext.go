// Package promtext parses the Prometheus text exposition format (version
// 0.0.4) — the inverse of metrics.Registry.WriteProm. janus-top uses it to
// read throughput counters, sojourn quantiles, and epoch gauges back out of
// a live cluster's /metrics pages without pulling in a client library.
//
// The parser accepts the subset this repo emits (HELP/TYPE comments, series
// lines with optional {k="v",...} labels) plus standard label-value escapes
// (\\, \", \n), and skips lines it cannot parse rather than failing the
// whole scrape: one mangled series should not blind the console.
package promtext

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed series line.
type Sample struct {
	// Name is the series name as written, including any _bucket/_sum/_count
	// suffix (the parser does not reassemble histogram families).
	Name string
	// Labels holds the decoded label pairs; nil when the series has none.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// Label matches one label pair in queries.
type Label struct {
	Key   string
	Value string
}

// Metrics is one parsed scrape.
type Metrics struct {
	byName map[string][]Sample
}

// Parse reads one text-format exposition. Comment and blank lines are
// skipped; malformed series lines are dropped silently (see package doc).
// The only error returned is a read error from r.
func Parse(r io.Reader) (Metrics, error) {
	m := Metrics{byName: make(map[string][]Sample)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if s, ok := parseLine(line); ok {
			m.byName[s.Name] = append(m.byName[s.Name], s)
		}
	}
	return m, sc.Err()
}

func parseLine(line string) (Sample, bool) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, false
	} else if rest[i] == '{' {
		s.Name = rest[:i]
		var ok bool
		s.Labels, rest, ok = parseLabels(rest[i+1:])
		if !ok {
			return s, false
		}
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	// The value (and an optional timestamp, which this repo never emits but
	// the format allows) follows in whitespace-separated fields.
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return s, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, false
	}
	s.Value = v
	return s, true
}

// parseLabels decodes `k="v",k="v"}` (the opening brace already consumed),
// returning the pairs and the remainder of the line past the closing brace.
func parseLabels(in string) (map[string]string, string, bool) {
	labels := make(map[string]string)
	for {
		in = strings.TrimLeft(in, " \t")
		if strings.HasPrefix(in, "}") {
			return labels, in[1:], true
		}
		eq := strings.Index(in, "=")
		if eq < 0 {
			return nil, "", false
		}
		key := strings.TrimSpace(in[:eq])
		in = in[eq+1:]
		if !strings.HasPrefix(in, `"`) {
			return nil, "", false
		}
		val, rest, ok := parseQuoted(in[1:])
		if !ok {
			return nil, "", false
		}
		labels[key] = val
		in = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(in, ",") {
			in = in[1:]
		}
	}
}

// parseQuoted decodes a label value up to its closing quote, handling the
// \\ \" \n escapes the format defines.
func parseQuoted(in string) (val, rest string, ok bool) {
	var sb strings.Builder
	for i := 0; i < len(in); i++ {
		switch c := in[i]; c {
		case '"':
			return sb.String(), in[i+1:], true
		case '\\':
			if i+1 >= len(in) {
				return "", "", false
			}
			i++
			switch in[i] {
			case 'n':
				sb.WriteByte('\n')
			default: // \\ and \" decode to the escaped byte itself
				sb.WriteByte(in[i])
			}
		default:
			sb.WriteByte(c)
		}
	}
	return "", "", false
}

// Samples returns every sample recorded under name, in exposition order.
func (m Metrics) Samples(name string) []Sample {
	return m.byName[name]
}

// Value returns the first sample of name whose labels include every match
// pair. A series with no labels matches an empty match list.
func (m Metrics) Value(name string, match ...Label) (float64, bool) {
	for _, s := range m.byName[name] {
		if labelsMatch(s.Labels, match) {
			return s.Value, true
		}
	}
	return 0, false
}

// Has reports whether any sample of name was scraped — janus-top's tier
// detector (a scrape with janus_qos_received_total is a QoS server, one
// with janus_router_requests_total is a router, and so on).
func (m Metrics) Has(name string) bool { return len(m.byName[name]) > 0 }

func labelsMatch(have map[string]string, want []Label) bool {
	for _, l := range want {
		if have[l.Key] != l.Value {
			return false
		}
	}
	return true
}
