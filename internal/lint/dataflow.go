package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file is the dataflow layer under the hotalloc/goleak/deadline
// analyzers: function annotations, a module-wide call-graph index, an
// intra-procedural escape heuristic, and the allocation-site taxonomy.
//
// The escape analysis is deliberately conservative and intra-procedural:
// a value escapes when it reaches a return statement, a call argument, a
// store outside function-local variables, a send, a goroutine, or a
// closure capture — mirroring (coarsely) the compiler's own rules. The
// call-graph summary is one level deep: a call from a hot function to a
// static module-internal callee is charged with the callee's own
// allocation sites, but the callee's calls are not chased further.
// Dynamic (interface/func-value) calls are not charged at all — that
// unsoundness is documented and backstopped by the AllocsPerRun pin tests
// (internal/qosserver/allocpin_test.go).

// Function annotations, written as directive comments in a FuncDecl's doc
// block:
//
//	//janus:hotpath
//	//janus:deadlined
const (
	annotationHotPath   = "janus:hotpath"
	annotationDeadlined = "janus:deadlined"
)

// hasAnnotation reports whether decl's doc block carries the directive.
// Trailing prose after the directive word is allowed.
func hasAnnotation(decl *ast.FuncDecl, annotation string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == annotation || strings.HasPrefix(text, annotation+" ") {
			return true
		}
	}
	return false
}

// funcDeclInfo locates one top-level function declaration.
type funcDeclInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// funcIndex returns the module-wide map from types.Func objects to their
// declarations, building it on first use.
func funcIndex(prog *Program) map[types.Object]funcDeclInfo {
	if prog.funcs != nil {
		return prog.funcs
	}
	idx := make(map[types.Object]funcDeclInfo)
	for _, pkg := range prog.Packages {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj := pkg.TypesInfo.Defs[fd.Name]; obj != nil {
					idx[obj] = funcDeclInfo{pkg: pkg, decl: fd}
				}
			}
		}
	}
	prog.funcs = idx
	return idx
}

// staticCallee resolves the *types.Func a call statically dispatches to:
// a plain function, a method on a concrete receiver, or a method value.
// Interface-method and func-value calls return nil — they are dynamic.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if info.Selections != nil {
			if selInfo, ok := info.Selections[fun]; ok {
				// Concrete method: the selection resolves to a *types.Func
				// whose receiver is a named (non-interface) type.
				if fn, ok := selInfo.Obj().(*types.Func); ok {
					recv := fn.Type().(*types.Signature).Recv()
					if recv != nil && !types.IsInterface(recv.Type()) {
						return fn
					}
				}
				return nil
			}
		}
		id = fun.Sel
	default:
		return nil
	}
	if obj, ok := info.Uses[id]; ok {
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcScope provides parent links, type info, and escape queries for one
// function body.
type funcScope struct {
	pkg    *Package
	info   *types.Info
	body   *ast.BlockStmt
	parent map[ast.Node]ast.Node
	// results holds the objects of named result parameters: assigning to
	// one is a return, i.e. an escape.
	results map[types.Object]bool
}

func newFuncScope(pkg *Package, ftype *ast.FuncType, body *ast.BlockStmt) *funcScope {
	fs := &funcScope{
		pkg:     pkg,
		info:    pkg.TypesInfo,
		body:    body,
		parent:  make(map[ast.Node]ast.Node),
		results: make(map[types.Object]bool),
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			fs.parent[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	if ftype != nil && ftype.Results != nil && fs.info != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := fs.info.Defs[name]; obj != nil {
					fs.results[obj] = true
				}
			}
		}
	}
	return fs
}

// insideFuncLit reports whether n sits inside a nested function literal.
func (fs *funcScope) insideFuncLit(n ast.Node) bool {
	for p := fs.parent[n]; p != nil; p = fs.parent[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// escapes reports whether the value of e may outlive the function frame.
func (fs *funcScope) escapes(e ast.Expr) bool {
	return fs.escapesFrom(e, make(map[types.Object]bool))
}

func (fs *funcScope) escapesFrom(e ast.Expr, visited map[types.Object]bool) bool {
	node := ast.Node(e)
	for {
		par := fs.parent[node]
		if par == nil {
			// Reached the body root without resolving the flow.
			return true
		}
		switch p := par.(type) {
		case *ast.ParenExpr, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr,
			*ast.SliceExpr, *ast.TypeAssertExpr, *ast.KeyValueExpr, *ast.CompositeLit:
			node = par
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				node = par // address flows where &e flows
				continue
			}
			return false // <-ch, -x, !x: value consumed in place
		case *ast.BinaryExpr:
			// Comparisons and arithmetic consume the value; string concat
			// allocation is its own taxonomy entry.
			return false
		case *ast.CallExpr:
			if node == p.Fun {
				return false
			}
			tv, isConvOrType := fs.info.Types[p.Fun]
			if isConvOrType && tv.IsType() {
				node = par // conversion: the value flows through
				continue
			}
			if name, ok := builtinName(fs.info, p.Fun); ok {
				switch name {
				case "len", "cap", "delete", "close", "clear", "min", "max", "print", "println", "panic":
					return false
				case "append":
					if len(p.Args) > 0 && node == ast.Node(p.Args[0]) {
						node = par // the base slice flows into the result
						continue
					}
					return true // appended elements are retained
				default:
					return true // copy, new, make args: conservative
				}
			}
			return true // passed to a real call: callee may retain it
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if node != ast.Node(rhs) {
					continue
				}
				if len(p.Lhs) == len(p.Rhs) {
					return fs.lhsEscapes(p.Lhs[i], visited)
				}
				for _, lhs := range p.Lhs {
					if fs.lhsEscapes(lhs, visited) {
						return true
					}
				}
				return false
			}
			return false // node is (a subexpression of) an LHS
		case *ast.ValueSpec:
			for i, v := range p.Values {
				if node != ast.Node(v) {
					continue
				}
				if i < len(p.Names) {
					return fs.identEscapes(p.Names[i], visited)
				}
				for _, name := range p.Names {
					if fs.identEscapes(name, visited) {
						return true
					}
				}
			}
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return node == ast.Node(p.Value) // sent values are retained; the channel is not
		case *ast.GoStmt, *ast.DeferStmt:
			return true
		case *ast.RangeStmt:
			return false
		case *ast.IncDecStmt, *ast.ExprStmt, *ast.IfStmt, *ast.ForStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.CaseClause,
			*ast.CommClause, *ast.BlockStmt, *ast.SelectStmt, *ast.LabeledStmt:
			return false
		default:
			return true // unmodeled flow: conservative
		}
	}
}

// lhsEscapes decides whether storing into lhs lets the stored value outlive
// the frame: blank and provably-local variables do not, everything else
// (fields, elements, globals, captured or named-result vars) does.
func (fs *funcScope) lhsEscapes(lhs ast.Expr, visited map[types.Object]bool) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return true // field, index, or deref store
	}
	if id.Name == "_" {
		return false
	}
	return fs.identEscapes(id, visited)
}

// identEscapes resolves id to its variable and checks whether any use of
// that variable escapes.
func (fs *funcScope) identEscapes(id *ast.Ident, visited map[types.Object]bool) bool {
	if fs.info == nil {
		return true
	}
	obj := fs.info.Defs[id]
	if obj == nil {
		obj = fs.info.Uses[id]
	}
	if obj == nil {
		return true
	}
	return fs.varEscapes(obj, visited)
}

// varEscapes reports whether the local variable obj escapes: it is a named
// result, is declared outside this body, is captured by a function literal,
// or has a use whose flow escapes.
func (fs *funcScope) varEscapes(obj types.Object, visited map[types.Object]bool) bool {
	if visited[obj] {
		return false // already on the worklist; cycles stay local
	}
	visited[obj] = true
	if fs.results[obj] {
		return true
	}
	if obj.Pos() < fs.body.Pos() || obj.Pos() > fs.body.End() {
		return true // parameter or outer variable: stores to it outlive us
	}
	escaped := false
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if fs.info.Uses[id] != obj {
			return true
		}
		if fs.insideFuncLit(id) {
			escaped = true // captured by a closure
			return false
		}
		// A plain store to the variable itself is not a use of its value.
		if as, ok := fs.parent[id].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == ast.Node(id) {
					return true
				}
			}
		}
		if fs.escapesFrom(id, visited) {
			escaped = true
			return false
		}
		return true
	})
	return escaped
}

// allocSite is one statically-detected heap allocation.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites runs the taxonomy over decl's body and returns every site that
// may allocate. Nested function literals are charged as a single closure
// site (when they capture) and their interiors are skipped: a literal's body
// only runs if called, and calling it from a hot path is flagged as the
// closure allocation itself.
func allocSites(pkg *Package, decl *ast.FuncDecl) []allocSite {
	if decl.Body == nil || pkg.TypesInfo == nil {
		return nil
	}
	fs := newFuncScope(pkg, decl.Type, decl.Body)
	info := pkg.TypesInfo
	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if capturesOuter(fs, node) {
				add(node.Pos(), "function literal captures variables: the closure is heap-allocated")
			}
			return false // interior only runs when the closure is called

		case *ast.CompositeLit:
			if nestedInComposite(fs, node) {
				return true // the outermost literal is the site
			}
			t := info.TypeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				add(node.Pos(), "map literal allocates")
			case *types.Slice:
				if fs.escapes(node) {
					add(node.Pos(), "escaping slice literal allocates")
				}
			default: // struct or array value
				if par, ok := fs.parent[node].(*ast.UnaryExpr); ok && par.Op == token.AND {
					if fs.escapes(par) {
						add(par.Pos(), "escaping composite literal &%s{...} allocates", types.TypeString(t, types.RelativeTo(pkg.TypesPkg)))
					}
				}
			}

		case *ast.CallExpr:
			checkCallAlloc(fs, info, node, add)

		case *ast.BinaryExpr:
			if node.Op == token.ADD && isNonConstString(info, node) {
				if par, ok := fs.parent[node].(*ast.BinaryExpr); !ok || par.Op != token.ADD {
					add(node.Pos(), "non-constant string concatenation allocates")
				}
			}

		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if bt := info.TypeOf(idx.X); bt != nil {
						if _, isMap := bt.Underlying().(*types.Map); isMap {
							add(idx.Pos(), "map assignment may grow the map")
						}
					}
				}
			}
			checkAssignBoxing(fs, info, node, add)

		case *ast.ReturnStmt:
			checkReturnBoxing(fs, info, decl, node, add)

		case *ast.GoStmt:
			add(node.Pos(), "go statement allocates a goroutine")

		case *ast.SelectorExpr:
			if sel, ok := info.Selections[node]; ok && sel.Kind() == types.MethodVal {
				if par, isCall := fs.parent[node].(*ast.CallExpr); !isCall || par.Fun != ast.Expr(node) {
					add(node.Pos(), "method value %s allocates a bound-method closure", node.Sel.Name)
				}
			}
		}
		return true
	})
	return sites
}

// checkCallAlloc covers the call-shaped taxonomy entries: new/make/append,
// string conversions, formatting calls, and interface-boxing arguments.
func checkCallAlloc(fs *funcScope, info *types.Info, call *ast.CallExpr, add func(token.Pos, string, ...any)) {
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type
		from := info.TypeOf(call.Args[0])
		if from != nil && isStringBytesConv(to, from) && !conversionExempt(fs, call) {
			add(call.Pos(), "%s conversion copies and allocates (exempt as a map index or in a comparison)", conversionLabel(to, from))
		}
		return
	}

	// Builtins.
	if name, ok := builtinName(info, call.Fun); ok {
		switch name {
		case "new":
			if fs.escapes(call) {
				add(call.Pos(), "escaping new(T) allocates")
			}
		case "make":
			add(call.Pos(), "make allocates")
		case "append":
			if len(call.Args) > 0 && certainGrowthBase(fs, call.Args[0]) {
				add(call.Pos(), "append to a provably empty local slice always grows")
			}
		}
		return
	}

	// Formatting / error construction: both the internal buffers and the
	// ...any boxing allocate.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			switch importedPath(fs.pkg, fileOf(fs.pkg, call.Pos()), id) {
			case "fmt":
				add(call.Pos(), "fmt.%s formats and allocates", sel.Sel.Name)
				return
			case "errors":
				add(call.Pos(), "errors.%s allocates a new error value", sel.Sel.Name)
				return
			}
		}
	}

	// Interface boxing of arguments.
	sigT, ok := info.Types[call.Fun]
	if !ok || sigT.Type == nil {
		return
	}
	sig, ok := sigT.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-arg boxing
			}
			paramT = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramT = params.At(i).Type()
		default:
			continue
		}
		argT := info.TypeOf(arg)
		if argT == nil || !types.IsInterface(paramT) || types.IsInterface(argT) {
			continue
		}
		if boxingAllocates(argT) {
			add(arg.Pos(), "argument boxes %s into interface %s", argT.String(), paramT.String())
		}
	}
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= params.Len() {
		if _, isIface := params.At(params.Len() - 1).Type().(*types.Slice).Elem().Underlying().(*types.Interface); isIface {
			add(call.Pos(), "variadic interface call allocates its argument slice")
		}
	}
}

// checkAssignBoxing flags concrete-to-interface stores in assignments.
func checkAssignBoxing(fs *funcScope, info *types.Info, as *ast.AssignStmt, add func(token.Pos, string, ...any)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := info.TypeOf(lhs)
		rt := info.TypeOf(as.Rhs[i])
		if lt == nil || rt == nil {
			continue
		}
		if types.IsInterface(lt) && !types.IsInterface(rt) && boxingAllocates(rt) {
			add(as.Rhs[i].Pos(), "assignment boxes %s into interface %s", rt.String(), lt.String())
		}
	}
}

// checkReturnBoxing flags concrete-to-interface boxing in return values.
func checkReturnBoxing(fs *funcScope, info *types.Info, decl *ast.FuncDecl, ret *ast.ReturnStmt, add func(token.Pos, string, ...any)) {
	obj := info.Defs[decl.Name]
	if obj == nil {
		return
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		rt := info.TypeOf(res)
		want := sig.Results().At(i).Type()
		if rt == nil {
			continue
		}
		if types.IsInterface(want) && !types.IsInterface(rt) && boxingAllocates(rt) {
			add(res.Pos(), "return boxes %s into interface %s", rt.String(), want.String())
		}
	}
}

// capturesOuter reports whether lit references a variable declared outside
// itself (which forces the closure onto the heap).
func capturesOuter(fs *funcScope, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fs.info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Declared before the literal but inside the enclosing body (or a
		// parameter): that's a capture. Package-level vars are not captures.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() {
			captured = true
			return false
		}
		return true
	})
	return captured
}

// nestedInComposite reports whether lit is an element of an enclosing
// composite literal (climbing through key-value pairs and address-of).
func nestedInComposite(fs *funcScope, lit *ast.CompositeLit) bool {
	for p := fs.parent[lit]; p != nil; p = fs.parent[p] {
		switch p.(type) {
		case *ast.KeyValueExpr, *ast.UnaryExpr:
			continue
		case *ast.CompositeLit:
			return true
		default:
			return false
		}
	}
	return false
}

// certainGrowthBase reports whether base is a slice that provably has zero
// capacity at the append: a nil/empty local, an empty literal, or a
// zero-capacity make. Appends onto parameters, fields, or capacity-carrying
// locals are allowed — that is the amortized caller-owned-buffer contract,
// pinned at runtime by the AllocsPerRun tests.
func certainGrowthBase(fs *funcScope, base ast.Expr) bool {
	switch b := ast.Unparen(base).(type) {
	case *ast.CompositeLit:
		return true // append([]T{...}, ...) grows immediately
	case *ast.Ident:
		if b.Name == "nil" {
			return true
		}
		obj := fs.info.Uses[b]
		if obj == nil {
			return false
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return false
		}
		if obj.Pos() < fs.body.Pos() || obj.Pos() > fs.body.End() {
			return false // parameter or outer: capacity unknown, allowed
		}
		init, found := localVarInit(fs, obj)
		if !found {
			return false
		}
		if init == nil {
			return true // var x []T — nil slice
		}
		switch ie := ast.Unparen(init).(type) {
		case *ast.Ident:
			return ie.Name == "nil"
		case *ast.CompositeLit:
			return len(ie.Elts) == 0
		case *ast.CallExpr:
			if name, ok := builtinName(fs.info, ie.Fun); ok && name == "make" {
				capArg := 1 // len doubles as cap when cap is absent
				if len(ie.Args) >= 3 {
					capArg = 2
				}
				if len(ie.Args) > capArg {
					if tv, ok := fs.info.Types[ie.Args[capArg]]; ok && tv.Value != nil {
						if c, exact := constant.Int64Val(tv.Value); exact && c == 0 {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// localVarInit finds the initializer expression of a body-local variable:
// nil for a bare `var x []T`, the RHS for `x := expr` / `var x = expr`.
// found is false when no defining statement could be located.
func localVarInit(fs *funcScope, obj types.Object) (init ast.Expr, found bool) {
	ast.Inspect(fs.body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch d := n.(type) {
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || fs.info.Defs[id] != obj {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					init, found = d.Rhs[i], true
				} else {
					found = true // multi-value RHS: capacity unknown
					init = d.Rhs[0]
				}
				return false
			}
		case *ast.ValueSpec:
			for i, name := range d.Names {
				if fs.info.Defs[name] != obj {
					continue
				}
				found = true
				if i < len(d.Values) {
					init = d.Values[i]
				}
				return false
			}
		}
		return true
	})
	return init, found
}

// conversionExempt recognizes the compiler's no-copy special cases for
// string<->[]byte conversions: use as a map index and use as a comparison
// operand (plus switch tags and range operands, which lower to the same).
func conversionExempt(fs *funcScope, conv *ast.CallExpr) bool {
	par := fs.parent[conv]
	for {
		if p, ok := par.(*ast.ParenExpr); ok {
			_ = p
			par = fs.parent[par]
			continue
		}
		break
	}
	switch p := par.(type) {
	case *ast.IndexExpr:
		if p.Index == ast.Expr(conv) {
			if bt := fs.info.TypeOf(p.X); bt != nil {
				if _, isMap := bt.Underlying().(*types.Map); isMap {
					return true
				}
			}
		}
	case *ast.BinaryExpr:
		switch p.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			return true
		}
	case *ast.SwitchStmt:
		return p.Tag == ast.Expr(conv)
	case *ast.RangeStmt:
		return p.X == ast.Expr(conv)
	}
	return false
}

func conversionLabel(to, from types.Type) string {
	if isString(to) {
		return "[]byte->string"
	}
	if isString(from) {
		return "string->[]byte"
	}
	return "string/bytes"
}

func isStringBytesConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// boxingAllocates reports whether converting a value of concrete type t to
// an interface heap-allocates. Pointer-shaped types (pointers, channels,
// maps, funcs, unsafe.Pointer) store directly in the interface word.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		}
		return true // strings, floats, and most ints need a heap copy
	default:
		return true // structs, arrays, slices
	}
}

// isNonConstString reports whether e is a string-typed expression without a
// constant value.
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return isString(tv.Type) && tv.Value == nil
}

// builtinName resolves fun to a builtin's name ("make", "append", ...).
func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj, ok := info.Uses[id]; ok {
		if b, ok := obj.(*types.Builtin); ok {
			return b.Name(), true
		}
		return "", false
	}
	return "", false
}

// fileOf returns the package file containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// funcDisplayName renders a readable name for fn ("(*Table).Route",
// "EncodeRequest").
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		return fmt.Sprintf("(%s).%s", types.TypeString(recv, func(p *types.Package) string { return "" }), fn.Name())
	}
	return fn.Name()
}
