package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture loads testdata/src/<name> under the given pseudo import path.
func loadFixture(t *testing.T, name, importPath string) *Program {
	t.Helper()
	prog, err := LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	for _, pkg := range prog.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("fixture %s does not type-check: %v", name, terr)
		}
	}
	return prog
}

func findingsOn(fs []Finding, analyzer string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

func wantFindingAt(t *testing.T, fs []Finding, line int, msgPart string) {
	t.Helper()
	for _, f := range fs {
		if f.Pos.Line == line && strings.Contains(f.Message, msgPart) {
			return
		}
	}
	t.Errorf("no finding at line %d containing %q; got:\n%s", line, msgPart, renderFindings(fs))
}

func renderFindings(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestSimClockFixture(t *testing.T) {
	prog := loadFixture(t, "simclockbad", "repro/internal/sim")
	got := Run(prog, []*Analyzer{NewSimClock()})
	if len(got) != 5 {
		t.Errorf("want 5 simclock findings, got %d:\n%s", len(got), renderFindings(got))
	}
	lines := map[string]bool{}
	for _, f := range got {
		lines[f.Message[:strings.Index(f.Message, " ")]] = true
	}
	for _, want := range []string{"time.Now", "time.Sleep", "time.After", "time.Since", "global"} {
		if !lines[want] {
			t.Errorf("missing finding for %s:\n%s", want, renderFindings(got))
		}
	}
}

func TestSimClockOutOfScopePackageIsIgnored(t *testing.T) {
	prog := loadFixture(t, "simclockbad", "repro/internal/store")
	if got := Run(prog, []*Analyzer{NewSimClock()}); len(got) != 0 {
		t.Errorf("out-of-scope package should produce no findings, got:\n%s", renderFindings(got))
	}
}

func TestLockDisciplineFixture(t *testing.T) {
	prog := loadFixture(t, "lockbad", "repro/internal/lockbad")
	got := Run(prog, []*Analyzer{NewLockDiscipline()})
	if len(got) != 4 {
		t.Errorf("want 4 lockdiscipline findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 20, "c.mu.Lock() has no matching Unlock")
	wantFindingAt(t, got, 26, "c.rw.RLock() has no matching RUnlock")
	wantFindingAt(t, got, 63, "mixed access races")
	wantFindingAt(t, got, 80, "defer c.mu.Unlock() inside a loop body")
}

func TestErrDropFixture(t *testing.T) {
	prog := loadFixture(t, "errdropbad", "repro/internal/transport")
	got := Run(prog, []*Analyzer{NewErrDrop()})
	if len(got) != 4 {
		t.Errorf("want 4 errdrop findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 12, "c.Close is silently discarded")
	wantFindingAt(t, got, 17, "c.SetDeadline is silently discarded")
	wantFindingAt(t, got, 22, "c.Write is silently discarded")
	wantFindingAt(t, got, 27, "deferred c.Write discards its error")
}

func TestErrDropOutOfScopePackageIsIgnored(t *testing.T) {
	prog := loadFixture(t, "errdropbad", "repro/internal/metrics")
	if got := Run(prog, []*Analyzer{NewErrDrop()}); len(got) != 0 {
		t.Errorf("out-of-scope package should produce no findings, got:\n%s", renderFindings(got))
	}
}

// TestFailpointSiteFixture loads the fixture with LoadDir directly rather
// than loadFixture: the fixture's failpoint import cannot resolve from a
// single-directory load, and tolerating the type errors is deliberate — it
// exercises the analyzer's import-table fallback.
func TestFailpointSiteFixture(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "src", "failpointbad"), "repro/internal/failpointbad")
	if err != nil {
		t.Fatal(err)
	}
	got := Run(prog, []*Analyzer{NewFailpointSite()})
	if len(got) != 5 {
		t.Errorf("want 5 failpointsite findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 13, "already registered at")
	wantFindingAt(t, got, 14, "violates the site convention")
	wantFindingAt(t, got, 15, "violates the site convention")
	wantFindingAt(t, got, 21, "must be a quoted string literal")
	wantFindingAt(t, got, 21, "must initialize a package-level var")
}

func TestFailpointNameConvention(t *testing.T) {
	for name, want := range map[string]bool{
		"qosserver/ha/pull":           true,
		"qosserver/handoff/apply":     true,
		"qosserver/ha/apply-snapshot": true,
		"transport/client/send":       true,
		"a/b":                         true,
		"single":                      false,
		"Upper/case":                  false,
		"trailing/":                   false,
		"/leading":                    false,
		"with space/x":                false,
		"under_score/x":               false,
		"":                            false,
	} {
		if got := validFailpointName(name); got != want {
			t.Errorf("validFailpointName(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestWireCompatTripsOnFieldReorder is the acceptance scenario: the golden
// manifest is generated from the baseline fixture, and the analyzer must
// trip on a copy with two fields deliberately reordered.
func TestWireCompatTripsOnFieldReorder(t *testing.T) {
	good := loadFixture(t, "wiregood", "repro/internal/wire")
	manifest := filepath.Join(t.TempDir(), "wirecompat.golden")
	if err := WriteManifest(good, manifest); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}

	// The baseline matches its own manifest.
	if got := Run(good, []*Analyzer{NewWireCompat(manifest)}); len(got) != 0 {
		t.Fatalf("baseline should be clean, got:\n%s", renderFindings(got))
	}

	// The reordered copy trips.
	bad := loadFixture(t, "wirebad", "repro/internal/wire")
	got := Run(bad, []*Analyzer{NewWireCompat(manifest)})
	if len(got) != 1 {
		t.Fatalf("want exactly 1 wirecompat finding for the reordered struct, got %d:\n%s", len(got), renderFindings(got))
	}
	if !strings.Contains(got[0].Message, "internal/wire.Request") {
		t.Errorf("finding should name the broken struct: %s", got[0].Message)
	}
}

func TestWireCompatMissingManifestIsAFinding(t *testing.T) {
	good := loadFixture(t, "wiregood", "repro/internal/wire")
	got := Run(good, []*Analyzer{NewWireCompat(filepath.Join(t.TempDir(), "absent.golden"))})
	if len(got) != 1 || !strings.Contains(got[0].Message, "cannot read golden wire manifest") {
		t.Errorf("want a missing-manifest finding, got:\n%s", renderFindings(got))
	}
}

// TestSuppression proves the //lint:ignore mechanics: a correct directive
// silences exactly its analyzer, a directive for the wrong analyzer
// suppresses nothing, and a malformed directive is itself reported.
func TestSuppression(t *testing.T) {
	dir := t.TempDir()
	src := `package fixture

import "time"

func suppressedTrailing() time.Time {
	return time.Now() //lint:ignore simclock reason on the same line
}

func suppressedAbove() time.Time {
	//lint:ignore simclock reason on the line above
	return time.Now()
}

func wrongAnalyzer() time.Time {
	//lint:ignore errdrop wrong analyzer name must not silence simclock
	return time.Now()
}

func missingReason() time.Time {
	//lint:ignore simclock
	return time.Now()
}

func unsuppressed() time.Time {
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "fixture.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := LoadDir(dir, "repro/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	got := Run(prog, Analyzers(""))

	sim := findingsOn(got, "simclock")
	// wrongAnalyzer line 16, missingReason line 21 (malformed directives do
	// not suppress), unsuppressed line 25.
	if len(sim) != 3 {
		t.Errorf("want 3 surviving simclock findings, got %d:\n%s", len(sim), renderFindings(got))
	}
	wantFindingAt(t, sim, 16, "time.Now")
	wantFindingAt(t, sim, 21, "time.Now")
	wantFindingAt(t, sim, 25, "time.Now")

	malformed := findingsOn(got, "lint")
	want := 0
	for _, f := range malformed {
		if strings.Contains(f.Message, "malformed") {
			want++
		}
	}
	if want != 1 {
		t.Errorf("want 1 malformed-directive finding, got:\n%s", renderFindings(malformed))
	}
}

func TestModulePathAt(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mp, err := ModulePathAt(root)
	if err != nil {
		t.Fatal(err)
	}
	if mp != "repro" {
		t.Errorf("module path = %q, want repro", mp)
	}
}
