package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewHotAlloc enforces the zero-allocation contract on the decision path.
// A function annotated //janus:hotpath sits on the latency-critical
// admission route (wire encode/decode, bucket consume, lease routing, the
// coalescer flush, failpoint gates, trace sampling, metrics increments) —
// one stray heap allocation there costs more than the algorithm it feeds,
// and under load the resulting GC pressure is exactly the queue-and-pause
// tail-latency failure mode the ROADMAP's intake rewrite exists to avoid.
//
// The analyzer runs the dataflow layer (dataflow.go) over every annotated
// function and reports each statically-detected allocation site:
//
//   - escaping composite literals, new(T), and make
//   - string<->[]byte conversions (map-index and comparison uses exempt)
//   - interface boxing of non-pointer-shaped values, including the
//     fmt/errors formatting family
//   - certain-growth appends and map writes
//   - capturing closures, bound-method values, and go statements
//
// Calls from a hot function to a static module-internal callee are charged
// with the callee's own allocation sites (one level deep); annotating the
// callee //janus:hotpath moves the findings to the callee's definition.
// Dynamic calls (interface methods, func values) are not charged — that
// unsoundness is deliberate, documented, and backstopped by the
// AllocsPerRun pin tests, which fail on any allocation the heuristics
// miss.
//
// The only escape hatch is //lint:ignore hotalloc <reason> — used for cold
// paths inside hot functions (first-sight rule installation, trace-sampled
// branches) where the allocation is intentional and amortized.
func NewHotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "//janus:hotpath functions must be free of heap allocations",
	}
	a.RunModule = func(mp *ModulePass) {
		runHotAlloc(mp)
	}
	return a
}

func runHotAlloc(mp *ModulePass) {
	prog := mp.Prog
	idx := funcIndex(prog)

	isModuleFunc := func(fn *types.Func) bool {
		return fn.Pkg() != nil &&
			(fn.Pkg().Path() == prog.ModulePath || strings.HasPrefix(fn.Pkg().Path(), prog.ModulePath+"/"))
	}

	// calleeSummary memoizes the suppression-filtered allocation sites of
	// non-hot callees: a site the callee's author consciously suppressed
	// (with its reason next to the code) does not re-surface at call sites.
	summaries := make(map[types.Object][]allocSite)
	calleeSummary := func(obj types.Object, fi funcDeclInfo) []allocSite {
		if s, ok := summaries[obj]; ok {
			return s
		}
		var kept []allocSite
		for _, s := range allocSites(fi.pkg, fi.decl) {
			if !mp.Suppressed("hotalloc", s.pos) {
				kept = append(kept, s)
			}
		}
		summaries[obj] = kept
		return kept
	}

	for _, fi := range idx {
		if !hasAnnotation(fi.decl, annotationHotPath) {
			continue
		}
		fname := fi.decl.Name.Name
		if fi.decl.Recv != nil && len(fi.decl.Recv.List) > 0 {
			fname = exprString(fi.decl.Recv.List[0].Type) + "." + fname
		}

		// Direct allocation sites in the hot function itself.
		for _, s := range allocSites(fi.pkg, fi.decl) {
			mp.Reportf(s.pos, "%s in //janus:hotpath function %s", s.what, fname)
		}

		// One-level call summaries. Function literal interiors are skipped:
		// the closure allocation itself is already a direct site.
		info := fi.pkg.TypesInfo
		if info == nil {
			continue
		}
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(info, call)
			if fn == nil || !isModuleFunc(fn) {
				return true
			}
			co, ok := idx[types.Object(fn)]
			if !ok {
				return true
			}
			if hasAnnotation(co.decl, annotationHotPath) {
				return true // checked at its own definition
			}
			sites := calleeSummary(types.Object(fn), co)
			if len(sites) == 0 {
				return true
			}
			first := prog.Fset.Position(sites[0].pos)
			mp.Reportf(call.Pos(), "call to %s allocates (%d site(s); first: %s at %s:%d); make it allocation-free and annotate it //janus:hotpath, or suppress with the cold-path rationale",
				funcDisplayName(fn), len(sites), sites[0].what, first.Filename, first.Line)
			return true
		})
	}
}
