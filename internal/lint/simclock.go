package lint

import (
	"go/ast"
)

// NewSimClock flags wall-clock and global-RNG use inside the simulation and
// experiment packages. The DES engine (internal/des), the simulated
// instance models (internal/sim, internal/cloudsim), and the load
// generator (internal/loadgen) must derive every timestamp from an
// injected clock and every random draw from an explicitly seeded source —
// that is what makes the paper's experiments (Fig 12–14) reproducible
// run-to-run. One raw time.Now() or global rand.Intn() turns a
// deterministic experiment into a flaky one without any test failing.
//
// Seeded sources (rand.New(rand.NewSource(seed))) are allowed; only the
// process-global convenience functions are banned. time.Since/Until are
// banned too: each hides a time.Now() inside.
func NewSimClock() *Analyzer {
	a := &Analyzer{
		Name:  "simclock",
		Doc:   "no wall clock or global math/rand in simulation/experiment packages",
		Scope: simClockScope,
	}
	a.Run = func(p *Pass) {
		p.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return
			}
			switch importedPath(p.Pkg, p.File, id) {
			case "time":
				if hint, banned := bannedTimeFuncs[sel.Sel.Name]; banned {
					p.Reportf(sel.Pos(), "time.%s in simulation package %s breaks experiment reproducibility; %s",
						sel.Sel.Name, p.Pkg.Path, hint)
				}
			case "math/rand", "math/rand/v2":
				if bannedRandFuncs[sel.Sel.Name] {
					p.Reportf(sel.Pos(), "global rand.%s in simulation package %s breaks experiment reproducibility; draw from a seeded *rand.Rand",
						sel.Sel.Name, p.Pkg.Path)
				}
			}
		})
	}
	return a
}

// simClockScope lists the module-relative packages that must stay
// deterministic.
var simClockScope = []string{
	"internal/des",
	"internal/sim",
	"internal/cloudsim",
	"internal/loadgen",
	"internal/scenario",
}

var bannedTimeFuncs = map[string]string{
	"Now":       "use the injected clock",
	"Sleep":     "use the injected clock's timer or the DES scheduler",
	"After":     "use the injected clock's timer or the DES scheduler",
	"AfterFunc": "use the injected clock's timer or the DES scheduler",
	"Tick":      "use the injected clock's ticker or the DES scheduler",
	"NewTicker": "use the injected clock's ticker or the DES scheduler",
	"NewTimer":  "use the injected clock's timer or the DES scheduler",
	"Since":     "it calls time.Now internally; subtract injected-clock readings instead",
	"Until":     "it calls time.Now internally; subtract injected-clock readings instead",
}

var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}
