// Package simclockbad is a known-bad fixture for the simclock analyzer. It
// is loaded by tests under the pseudo import path "repro/internal/sim".
package simclockbad

import (
	"math/rand"
	"time"
)

// Bad: raw wall clock in a simulation package.
func wallClock() time.Time {
	return time.Now() // want finding: time.Now
}

// Bad: real sleeping and timers.
func sleepy(d time.Duration) {
	time.Sleep(d)   // want finding: time.Sleep
	<-time.After(d) // want finding: time.After
}

// Bad: implicit Now via Since.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want finding: time.Since
}

// Bad: process-global RNG.
func roll() int {
	return rand.Intn(6) // want finding: rand.Intn
}

// Good: a seeded source is exactly what the experiments must use.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Good: suppressed with an explicit, reasoned directive.
func suppressed() time.Time {
	//lint:ignore simclock fixture exercising the suppression mechanism
	return time.Now()
}
