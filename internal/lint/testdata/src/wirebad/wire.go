// Package wirebad is the wiregood fixture with Request's Key and Cost
// fields deliberately reordered — a wire-breaking edit the wirecompat
// analyzer must trip on.
package wirebad

// Status mirrors the real wire.Status.
type Status uint8

// Request has Key/Cost swapped relative to the golden layout.
type Request struct {
	ID   uint64
	Cost float64
	Key  string
}

// Response is unchanged.
type Response struct {
	ID     uint64
	Allow  bool
	Status Status
}
