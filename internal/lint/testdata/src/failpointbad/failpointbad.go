// Package failpointbad is the janus-vet fixture for the failpointsite
// analyzer. The failpoint import cannot be resolved from a fixture load, so
// the package does not fully type-check; the analyzer's import-table
// fallback is exactly what this fixture exercises.
package failpointbad

import (
	"repro/internal/failpoint"
)

var (
	fpGood = failpoint.New("failpointbad/seam/good")    // ok: the one legal site
	fpDup  = failpoint.New("failpointbad/seam/good")    // duplicate name
	fpCase = failpoint.New("FailpointBad/Seam")         // uppercase violates the convention
	fpOne  = failpoint.New("singlesegment")             // too few segments
	_      = failpoint.New("failpointbad/seam/discard") // ok: blank var is still package-level
)

func inFunction() {
	name := "failpointbad/seam/dynamic"
	_ = failpoint.New(name) // non-literal name
}

var _ = []any{fpGood, fpDup, fpCase, fpOne}
