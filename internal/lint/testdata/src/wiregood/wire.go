// Package wiregood is the baseline fixture for the wirecompat analyzer,
// loaded under the pseudo import path "repro/internal/wire".
package wiregood

// Status mirrors the real wire.Status.
type Status uint8

// Request mirrors the real wire.Request layout.
type Request struct {
	ID   uint64
	Key  string
	Cost float64
}

// Response mirrors the real wire.Response layout.
type Response struct {
	ID     uint64
	Allow  bool
	Status Status
}
