// Package goleakbad is a known-bad fixture for the goleak analyzer. It is
// loaded under a daemon-package import path by the tests; the same file
// under a non-daemon path must produce no findings.
package goleakbad

import "sync"

type worker struct {
	quit chan struct{}
	wg   sync.WaitGroup
	work chan int
}

// Bad: infinite loop with no receive and no join.
func (w *worker) spin() {
	go w.spinLoop() // want: no provable stop path
}

func (w *worker) spinLoop() {
	for {
		process()
	}
}

// Good: the literal receives on the quit and work channels.
func (w *worker) stoppable() {
	go func() {
		for {
			select {
			case <-w.quit:
				return
			case v := <-w.work:
				_ = v
			}
		}
	}()
}

// Good: joins a WaitGroup.
func (w *worker) joined() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			if finished() {
				return
			}
		}
	}()
}

// Good: bounded body, runs to completion on its own.
func (w *worker) bounded() {
	go process()
}

// Bad: a func-value body cannot be statically resolved.
func (w *worker) dynamic(fn func()) {
	go fn() // want: not statically resolvable
}

// Suppressed: the audit trail for close-unblocks-read loops.
func (w *worker) suppressed() {
	//lint:ignore goleak fixture: Close unblocks the loop's blocking call
	go w.spinLoop()
}

func process()       {}
func finished() bool { return true }
