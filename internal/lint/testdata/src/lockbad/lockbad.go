// Package lockbad is a known-bad fixture for the lockdiscipline analyzer.
package lockbad

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	n     int
	hits  int64 // accessed via sync/atomic below
	cold  int64
	ready bool
}

// Bad: lock acquired, never released in this function.
func (c *counter) leak() int {
	c.mu.Lock() // want finding: no matching Unlock
	return c.n
}

// Bad: read lock leaked.
func (c *counter) leakRead() int {
	c.rw.RLock() // want finding: no matching RUnlock
	return c.n
}

// Good: the canonical defer pairing.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Good: manual unlock later in the function (branching release).
func (c *counter) manual(fast bool) int {
	c.mu.Lock()
	if fast {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.n++
	n := c.n
	c.mu.Unlock()
	return n
}

// Good: released inside a deferred closure.
func (c *counter) closure() int {
	c.mu.Lock()
	defer func() {
		c.ready = true
		c.mu.Unlock()
	}()
	return c.n
}

// Bad: c.hits is atomic elsewhere; this plain write races with it.
func (c *counter) resetHits() {
	c.hits = 0 // want finding: mixed atomic/plain access
}

func (c *counter) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// Good: cold is only ever written plainly.
func (c *counter) resetCold() {
	c.cold = 0
}

// Bad: deferred unlock inside a loop body releases at function exit, so the
// second iteration's Lock deadlocks.
func (c *counter) deferInLoop(keys []int) {
	for range keys {
		c.mu.Lock()
		defer c.mu.Unlock() // want finding: defer-unlock in loop
		c.n++
	}
}

// Good: a function literal inside the loop is its own defer scope.
func (c *counter) deferInLoopFunc(keys []int) {
	for range keys {
		func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.n++
		}()
	}
}
