// Package deadlinebad is a known-bad fixture for the deadline analyzer. It
// is loaded under a daemon-package import path by the tests; the same file
// under a non-daemon path must produce no findings.
package deadlinebad

import (
	"bytes"
	"net"
	"time"
)

// Bad: read with no deadline armed anywhere in the function.
func readNaked(c net.Conn, buf []byte) (int, error) {
	return c.Read(buf) // want: runs without a deadline
}

// Good: a deadline is armed before the read.
func readArmed(c net.Conn, buf []byte) (int, error) {
	if err := c.SetReadDeadline(time.Now().Add(time.Second)); err != nil {
		return 0, err
	}
	return c.Read(buf)
}

// readAudited is the audited-helper escape: the annotation asserts what
// bounds the call.
//
//janus:deadlined fixture: the caller closes c to unblock the read
func readAudited(c *net.UDPConn, buf []byte) (int, error) {
	return c.Read(buf)
}

// Good: bytes.Buffer is not a net conn; Write is not watched here.
func bufferWrite(b *bytes.Buffer, p []byte) {
	b.Write(p)
}

// Bad: the arm comes after the write — textual dominance is violated.
func writeThenArm(c net.Conn, p []byte) error {
	if _, err := c.Write(p); err != nil { // want: runs without a deadline
		return err
	}
	return c.SetWriteDeadline(time.Time{})
}

// Suppressed: the documented fire-and-forget case.
func writeSuppressed(c net.Conn, p []byte) {
	//lint:ignore deadline fixture: fire-and-forget UDP send, never blocks
	_, _ = c.Write(p)
}
