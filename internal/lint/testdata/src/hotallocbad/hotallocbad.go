// Package hotallocbad is a known-bad fixture for the hotalloc analyzer:
// each //janus:hotpath function below exhibits one class of the allocation
// taxonomy, with negative cases proving value semantics, amortized appends,
// and suppressions stay silent.
package hotallocbad

import (
	"fmt"
)

type item struct {
	key  string
	cost float64
}

type sink struct {
	out   []*item
	index map[string]*item
}

//janus:hotpath
func escapingLiteral(s *sink, k string) {
	s.out = append(s.out, &item{key: k}) // want: escaping composite literal
}

//janus:hotpath
func mapAndMake(s *sink, k string) []byte {
	buf := make([]byte, 64)    // want: make allocates
	s.index[k] = &item{key: k} // want: map assignment + escaping literal
	return buf
}

//janus:hotpath
func conversions(m map[string]int, k []byte) (int, string) {
	n := m[string(k)]     // exempt: map index
	if string(k) == "x" { // exempt: comparison
		n++
	}
	return n, string(k) // want: []byte->string conversion
}

//janus:hotpath
func boxing(v float64) error {
	if v < 0 {
		return fmt.Errorf("negative: %v", v) // want: fmt call
	}
	return nil
}

//janus:hotpath
func grower(k string) []string {
	var out []string
	out = append(out, k) // want: certain-growth append
	return out
}

//janus:hotpath
func closures(k string) func() string {
	return func() string { return k } // want: capturing closure
}

//janus:hotpath
func spawns() {
	go noop() // want: go statement
}

func noop() {}

// stackOnly keeps everything in the frame: no findings.
//
//janus:hotpath
func stackOnly(k string) float64 {
	it := item{key: k}
	tmp := &it
	return tmp.cost
}

// appendAmortized appends onto a caller-owned buffer: no findings.
//
//janus:hotpath
func appendAmortized(dst []byte, b byte) []byte {
	return append(dst, b)
}

// coldHelper allocates but is not annotated; hot callers are charged at
// their call sites by the one-level summary.
func coldHelper(k string) *item {
	return &item{key: k}
}

//janus:hotpath
func callsCold(k string) *item {
	return coldHelper(k) // want: call to coldHelper allocates
}

// suppressedHelper's allocation carries a suppression, so hot callers see
// a clean summary.
func suppressedHelper(k string) *item {
	//lint:ignore hotalloc fixture: cold-path allocation is intentional
	return &item{key: k}
}

//janus:hotpath
func callsSuppressed(k string) *item {
	return suppressedHelper(k) // ok: callee's site is suppressed
}

//janus:hotpath
func suppressedInline(s *sink, k string) {
	//lint:ignore hotalloc fixture: amortized slot reuse
	s.out = append(s.out, &item{key: k})
}

// notHot allocates freely without the annotation: no findings.
func notHot(k string) *item {
	x := &item{key: k}
	go noop()
	return x
}
