// Package errdropbad is a known-bad fixture for the errdrop analyzer. It is
// loaded by tests under the pseudo import path "repro/internal/transport".
package errdropbad

import (
	"net"
	"time"
)

// Bad: Close error vanishes.
func dropClose(c net.Conn) {
	c.Close() // want finding: discarded Close error
}

// Bad: deadline failures are silent, so the timeout discipline is fiction.
func dropDeadline(c net.Conn, t time.Time) {
	c.SetDeadline(t) // want finding: discarded SetDeadline error
}

// Bad: short or failed writes vanish.
func dropWrite(c net.Conn, p []byte) {
	c.Write(p) // want finding: discarded Write error
}

// Bad: deferring anything but Close still hides the error.
func deferWrite(c net.Conn, p []byte) {
	defer c.Write(p) // want finding: deferred Write
}

// Good: deferred cleanup close is the idiom.
func deferClose(c net.Conn) {
	defer c.Close()
}

// Good: handled.
func handled(c net.Conn, p []byte) error {
	if _, err := c.Write(p); err != nil {
		return err
	}
	return c.Close()
}

// Good: explicit, auditable discard.
func explicit(c net.Conn) {
	_ = c.Close()
}

// Good: String returns no error; not a watched signature.
type nopWriter struct{}

func (nopWriter) Write(p []byte) int { return len(p) }

func notError(w nopWriter, p []byte) {
	w.Write(p)
}
