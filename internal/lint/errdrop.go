package lint

import (
	"go/ast"
	"go/types"
)

// NewErrDrop flags silently discarded errors from Close, SetDeadline, and
// Write-family calls in the networking hot paths (internal/transport,
// internal/router, internal/qosserver). The UDP discipline is deliberately
// fire-and-forget at the protocol level — the router retries — but a
// *discarded Go error* is different: a failing WriteToUDP or Close that
// vanishes leaves no trace in the stats counters, and §V of the paper
// attributes exactly this class of silent drop to hard-to-diagnose accuracy
// drift.
//
// Rules:
//
//   - An expression statement discarding the result of x.Close(),
//     x.SetDeadline(...), x.SetReadDeadline(...), x.SetWriteDeadline(...),
//     x.Write(...), x.WriteTo(...), or x.WriteToUDP(...) is flagged when
//     the callee (per go/types, where available) returns an error.
//   - `defer x.Close()` is allowed: deferred cleanup close is the idiom and
//     its error has no receiver. Deferring the other methods is flagged.
//   - An explicit `_ = x.Close()` (or `_, _ = x.Write(p)`) is allowed — the
//     discard is visible and auditable, which is the point.
func NewErrDrop() *Analyzer {
	a := &Analyzer{
		Name:  "errdrop",
		Doc:   "no silently discarded Close/SetDeadline/Write errors in transport hot paths",
		Scope: errDropScope,
	}
	a.Run = func(p *Pass) {
		p.Preorder([]ast.Node{(*ast.ExprStmt)(nil), (*ast.DeferStmt)(nil)}, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					if name, bad := dropsError(p.Pkg, call); bad {
						p.Reportf(call.Pos(), "error from %s is silently discarded; handle it, count it, or discard explicitly with `_ =`",
							name)
					}
				}
			case *ast.DeferStmt:
				name, bad := dropsError(p.Pkg, st.Call)
				if bad && !isCloseCall(st.Call) {
					p.Reportf(st.Call.Pos(), "deferred %s discards its error; only `defer x.Close()` is exempt",
						name)
				}
			}
		})
	}
	return a
}

// errDropScope lists the module-relative packages checked.
var errDropScope = []string{
	"internal/transport",
	"internal/router",
	"internal/qosserver",
	"internal/lb",
	"internal/debugz",
	"internal/trace",
}

var errDropMethods = map[string]bool{
	"Close":            true,
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"Write":            true,
	"WriteTo":          true,
	"WriteToUDP":       true,
}

func isCloseCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Close"
}

// dropsError reports whether call is a watched method whose discarded
// result includes an error. With type information the signature decides;
// without it (fixture packages, partial checks) the method name alone
// decides.
func dropsError(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errDropMethods[sel.Sel.Name] {
		return "", false
	}
	name := exprString(sel.X) + "." + sel.Sel.Name
	if pkg.TypesInfo != nil {
		if tv, ok := pkg.TypesInfo.Types[call.Fun]; ok && tv.Type != nil {
			sig, ok := tv.Type.(*types.Signature)
			if !ok {
				return name, false
			}
			res := sig.Results()
			for i := 0; i < res.Len(); i++ {
				if named, ok := res.At(i).Type().(*types.Named); ok &&
					named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
					return name, true
				}
			}
			return name, false
		}
	}
	return name, true
}
