// Package lint implements janus-vet, a from-scratch static-analysis suite
// built only on the standard library's go/parser, go/ast, and go/types.
//
// Janus's correctness rests on invariants the Go compiler cannot see:
//
//   - the leaky-bucket credit model (paper §II-C eq. 1–2) is only exact when
//     simulation and experiment code derives every timestamp from an
//     injected clock and every random draw from a seeded source — one raw
//     time.Now() inside internal/des or internal/cloudsim silently turns a
//     reproducible experiment into a flaky one;
//   - buckets and tables must never mint credit under concurrent
//     refill/consume, which in practice means strict mutex discipline and no
//     mixed atomic/non-atomic access to the same field;
//   - the gob frames spoken by the HA replication and bucket-handoff
//     protocols (internal/qosserver/ha.go) and the binary structs in
//     internal/wire must stay wire-compatible across versions: a reordered
//     or retyped field is an invisible protocol break;
//   - the UDP hot paths deliberately fire-and-forget, but a *discarded*
//     error from Close/SetDeadline/Write hides real socket failures;
//   - the fault-injection registry (internal/failpoint) is only trustworthy
//     when each failpoint name maps to exactly one literal, package-level
//     code site — a duplicated or dynamic name makes chaos specs lie about
//     which seam they perturb.
//
// Each invariant gets a dedicated analyzer: simclock, lockdiscipline,
// wirecompat, errdrop, and failpointsite. See their files for the precise
// rules and the documented approximations.
//
// # Suppressions
//
// An intentional violation is silenced — explicitly and auditable — with a
// directive on the flagged line or the line directly above it:
//
//	//lint:ignore simclock fallback to wall clock when no Clock is injected
//	return time.Now()
//
// The directive names one analyzer (or a comma-separated list) and must
// carry a non-empty reason; a malformed directive is itself reported as a
// finding, and a directive naming the wrong analyzer suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending node.
	Pos token.Position
	// Message explains the violation and, where possible, the fix.
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one project-specific check run over a loaded Program.
type Analyzer interface {
	// Name is the identifier used in output and //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc() string
	// Analyze reports violations found in prog.
	Analyze(prog *Program) []Finding
}

// Analyzers returns the full suite. manifestPath overrides the wirecompat
// golden manifest location; "" uses DefaultManifestPath under the module
// root.
func Analyzers(manifestPath string) []Analyzer {
	return []Analyzer{
		SimClock{},
		LockDiscipline{},
		WireCompat{ManifestPath: manifestPath},
		ErrDrop{},
		FailpointSite{},
	}
}

// Run executes the analyzers over prog, drops suppressed findings, reports
// malformed suppression directives, and returns the remainder sorted by
// position.
func Run(prog *Program, analyzers []Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}
	sup, bad := collectDirectives(prog, known)
	out := bad
	for _, a := range analyzers {
		for _, f := range a.Analyze(prog) {
			if sup.suppresses(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions maps filename -> line -> set of analyzer names silenced on
// that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppresses(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.Analyzer]
}

func (s suppressions) add(file string, line int, analyzer string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

const ignorePrefix = "lint:ignore"

// collectDirectives scans every comment for //lint:ignore directives. A
// well-formed directive suppresses the named analyzers on its own line and
// on the line below (so it can trail the flagged statement or sit above
// it). Malformed directives are returned as findings so they cannot rot
// silently.
func collectDirectives(prog *Program, known map[string]bool) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					names, reason, okSplit := strings.Cut(rest, " ")
					if names == "" || !okSplit || strings.TrimSpace(reason) == "" {
						bad = append(bad, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
						})
						continue
					}
					for _, name := range strings.Split(names, ",") {
						name = strings.TrimSpace(name)
						if !known[name] {
							bad = append(bad, Finding{
								Analyzer: "lint",
								Pos:      pos,
								Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
							})
							continue
						}
						sup.add(pos.Filename, pos.Line, name)
						sup.add(pos.Filename, pos.Line+1, name)
					}
				}
			}
		}
	}
	return sup, bad
}

// inScope reports whether pkg's import path ends with one of the given
// module-relative package paths (e.g. "internal/des").
func inScope(pkg *Package, scope []string) bool {
	for _, s := range scope {
		if pkg.Path == s || strings.HasSuffix(pkg.Path, "/"+s) {
			return true
		}
	}
	return false
}

// importedPath resolves the package path a bare identifier refers to inside
// file, preferring type information and falling back to the file's import
// table. It returns "" when id is not a package name.
func importedPath(pkg *Package, file *ast.File, id *ast.Ident) string {
	if pkg.TypesInfo != nil {
		if obj, ok := pkg.TypesInfo.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
