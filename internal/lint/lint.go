// Package lint implements janus-vet, a from-scratch static-analysis suite
// built only on the standard library's go/parser, go/ast, and go/types.
//
// Janus's correctness rests on invariants the Go compiler cannot see:
//
//   - the leaky-bucket credit model (paper §II-C eq. 1–2) is only exact when
//     simulation and experiment code derives every timestamp from an
//     injected clock and every random draw from a seeded source — one raw
//     time.Now() inside internal/des or internal/cloudsim silently turns a
//     reproducible experiment into a flaky one;
//   - buckets and tables must never mint credit under concurrent
//     refill/consume, which in practice means strict mutex discipline and no
//     mixed atomic/non-atomic access to the same field;
//   - the gob frames spoken by the HA replication and bucket-handoff
//     protocols (internal/qosserver/ha.go) and the binary structs in
//     internal/wire must stay wire-compatible across versions: a reordered
//     or retyped field is an invisible protocol break;
//   - the UDP hot paths deliberately fire-and-forget, but a *discarded*
//     error from Close/SetDeadline/Write hides real socket failures;
//   - the fault-injection registry (internal/failpoint) is only trustworthy
//     when each failpoint name maps to exactly one literal, package-level
//     code site — a duplicated or dynamic name makes chaos specs lie about
//     which seam they perturb;
//   - the decision path (//janus:hotpath functions) must stay free of heap
//     allocations, every goroutine a daemon package spawns must have a
//     provable stop path, and every socket read/write must either run under
//     a deadline or through an audited helper — see hotalloc.go, goleak.go,
//     deadline.go and the dataflow layer in dataflow.go.
//
// Each invariant gets a dedicated analyzer: simclock, lockdiscipline,
// wirecompat, errdrop, failpointsite, hotalloc, goleak, and deadline. See
// their files for the precise rules and the documented approximations.
//
// # Architecture
//
// Analyzers follow the golang.org/x/tools/go/analysis shape without the
// dependency: an Analyzer is a value with a Name, a Doc line, an optional
// package Scope, and a Run hook that registers node callbacks on a Pass.
// The driver walks every file of every in-scope package exactly once and
// dispatches each node to the callbacks registered for its concrete type,
// so adding an analyzer adds no walks. Whole-module analyses (wirecompat)
// use the RunModule hook instead.
//
// # Suppressions
//
// An intentional violation is silenced — explicitly and auditable — with a
// directive on the flagged line or the line directly above it:
//
//	//lint:ignore simclock fallback to wall clock when no Clock is injected
//	return time.Now()
//
// The directive names one analyzer (or a comma-separated list) and must
// carry a non-empty reason; a malformed directive is itself reported as a
// finding, and a directive naming the wrong analyzer suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Finding is one reported violation.
type Finding struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending node.
	Pos token.Position
	// Message explains the violation and, where possible, the fix.
	Message string
}

// String formats the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one project-specific check. Exactly one of Run and RunModule
// is typically set: Run is invoked once per in-scope package and registers
// node callbacks on the shared walker; RunModule is invoked once per
// Program for whole-module analyses.
//
// Analyzer values carry per-run state in their hook closures (the
// failpointsite duplicate map, for example), so construct a fresh suite via
// Analyzers or the New* constructors for every Run call.
type Analyzer struct {
	// Name is the identifier used in output and //lint:ignore directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Scope restricts Run to packages whose import path ends with one of
	// these module-relative paths ("internal/des"); nil means every package.
	Scope []string
	// Run registers callbacks for one package.
	Run func(*Pass)
	// RunModule analyzes the whole Program at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one package. Run hooks call Preorder
// and AfterFiles to register work; the driver owns the walk.
type Pass struct {
	Prog *Program
	Pkg  *Package
	// File is the file owning the node currently being visited; it is only
	// valid inside Preorder callbacks.
	File *ast.File

	analyzer *Analyzer
	runner   *runner
	handlers []handler
	after    []func()
}

type handler struct {
	// types is the set of concrete node types the callback wants; nil means
	// every node.
	types map[reflect.Type]bool
	fn    func(ast.Node)
}

// Preorder registers fn to be called for every node in the package whose
// concrete type matches one of the exemplars (e.g. (*ast.CallExpr)(nil)).
// An empty exemplar list matches every node. Nodes arrive in preorder,
// interleaved with every other analyzer's callbacks, during the single
// shared walk.
func (p *Pass) Preorder(exemplars []ast.Node, fn func(ast.Node)) {
	var tm map[reflect.Type]bool
	if len(exemplars) > 0 {
		tm = make(map[reflect.Type]bool, len(exemplars))
		for _, ex := range exemplars {
			tm[reflect.TypeOf(ex)] = true
		}
	}
	p.handlers = append(p.handlers, handler{types: tm, fn: fn})
}

// AfterFiles registers fn to run after every file of the package has been
// walked — the hook for two-phase checks that correlate facts collected by
// Preorder callbacks.
func (p *Pass) AfterFiles(fn func()) { p.after = append(p.after, fn) }

// Reportf records a finding at pos attributed to the pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.runner.report(p.analyzer.Name, p.Prog.Fset.Position(pos), format, args...)
}

// Suppressed reports whether a finding by the named analyzer at pos would
// be silenced by a //lint:ignore directive. Analyzers that summarize other
// functions (hotalloc's one-level call summaries) use this to honor
// suppressions inside the summarized body.
func (p *Pass) Suppressed(analyzer string, pos token.Pos) bool {
	posn := p.Prog.Fset.Position(pos)
	return p.runner.sup.suppresses(Finding{Analyzer: analyzer, Pos: posn})
}

// ModulePass carries one analyzer's view of the whole Program.
type ModulePass struct {
	Prog *Program

	analyzer *Analyzer
	runner   *runner
}

// Reportf records a finding at pos attributed to the pass's analyzer.
func (mp *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	mp.runner.report(mp.analyzer.Name, mp.Prog.Fset.Position(pos), format, args...)
}

// ReportAt is Reportf for positions that do not come from the FileSet (the
// wirecompat manifest file).
func (mp *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	mp.runner.report(mp.analyzer.Name, pos, format, args...)
}

// Suppressed mirrors Pass.Suppressed.
func (mp *ModulePass) Suppressed(analyzer string, pos token.Pos) bool {
	posn := mp.Prog.Fset.Position(pos)
	return mp.runner.sup.suppresses(Finding{Analyzer: analyzer, Pos: posn})
}

// runner is the shared per-Run state: the suppression table and the finding
// sink every pass reports into.
type runner struct {
	sup      suppressions
	findings []Finding
}

func (r *runner) report(analyzer string, pos token.Position, format string, args ...any) {
	r.findings = append(r.findings, Finding{Analyzer: analyzer, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns a fresh full suite. manifestPath overrides the
// wirecompat golden manifest location; "" uses DefaultManifestPath under
// the module root.
func Analyzers(manifestPath string) []*Analyzer {
	return []*Analyzer{
		NewSimClock(),
		NewLockDiscipline(),
		NewWireCompat(manifestPath),
		NewErrDrop(),
		NewFailpointSite(),
		NewHotAlloc(),
		NewGoLeak(),
		NewDeadline(),
	}
}

// Run executes the analyzers over prog, drops suppressed findings, reports
// malformed suppression directives, and returns the remainder sorted by
// position.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sup, bad := collectDirectives(prog, known)
	r := &runner{sup: sup, findings: bad}

	for _, pkg := range prog.Packages {
		var passes []*Pass
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			if a.Scope != nil && !inScope(pkg, a.Scope) {
				continue
			}
			p := &Pass{Prog: prog, Pkg: pkg, analyzer: a, runner: r}
			a.Run(p)
			if len(p.handlers) > 0 || len(p.after) > 0 {
				passes = append(passes, p)
			}
		}
		if len(passes) == 0 {
			continue
		}
		for _, file := range pkg.Files {
			for _, p := range passes {
				p.File = file
			}
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				t := reflect.TypeOf(n)
				for _, p := range passes {
					for _, h := range p.handlers {
						if h.types == nil || h.types[t] {
							h.fn(n)
						}
					}
				}
				return true
			})
		}
		for _, p := range passes {
			p.File = nil
			for _, fn := range p.after {
				fn()
			}
		}
	}

	for _, a := range analyzers {
		if a.RunModule != nil {
			a.RunModule(&ModulePass{Prog: prog, analyzer: a, runner: r})
		}
	}

	out := make([]Finding, 0, len(r.findings))
	for _, f := range r.findings {
		if sup.suppresses(f) {
			continue
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// suppressions maps filename -> line -> set of analyzer names silenced on
// that line.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppresses(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	return lines[f.Pos.Line][f.Analyzer]
}

func (s suppressions) add(file string, line int, analyzer string) {
	lines := s[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		s[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	set[analyzer] = true
}

const ignorePrefix = "lint:ignore"

// collectDirectives scans every comment for //lint:ignore directives. A
// well-formed directive suppresses the named analyzers on its own line and
// on the line below (so it can trail the flagged statement or sit above
// it). Malformed directives are returned as findings so they cannot rot
// silently.
func collectDirectives(prog *Program, known map[string]bool) (suppressions, []Finding) {
	sup := make(suppressions)
	var bad []Finding
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					names, reason, okSplit := strings.Cut(rest, " ")
					if names == "" || !okSplit || strings.TrimSpace(reason) == "" {
						bad = append(bad, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer>[,<analyzer>...] <reason>",
						})
						continue
					}
					for _, name := range strings.Split(names, ",") {
						name = strings.TrimSpace(name)
						if !known[name] {
							bad = append(bad, Finding{
								Analyzer: "lint",
								Pos:      pos,
								Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", name),
							})
							continue
						}
						sup.add(pos.Filename, pos.Line, name)
						sup.add(pos.Filename, pos.Line+1, name)
					}
				}
			}
		}
	}
	return sup, bad
}

// inScope reports whether pkg's import path ends with one of the given
// module-relative package paths (e.g. "internal/des").
func inScope(pkg *Package, scope []string) bool {
	for _, s := range scope {
		if pkg.Path == s || strings.HasSuffix(pkg.Path, "/"+s) {
			return true
		}
	}
	return false
}

// importedPath resolves the package path a bare identifier refers to inside
// file, preferring type information and falling back to the file's import
// table. It returns "" when id is not a package name.
func importedPath(pkg *Package, file *ast.File, id *ast.Ident) string {
	if pkg.TypesInfo != nil {
		if obj, ok := pkg.TypesInfo.Uses[id]; ok {
			if pn, ok := obj.(*types.PkgName); ok {
				return pn.Imported().Path()
			}
			return ""
		}
	}
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}
