package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewGoLeak requires every `go` statement in the daemon packages to have a
// provable stop path. A fire-and-forget goroutine that outlives its owner
// leaks across exactly the seams Janus keeps moving: epoch swaps, bucket
// handoffs, backend churn, and test teardown — and a leaked reader holding
// a socket keeps the old epoch's state alive indefinitely.
//
// The proof obligations, checked against the goroutine's statically
// resolved body (an inline function literal or a module function found
// through the call-graph index):
//
//   - receives on a channel (done/quit channel, ctx.Done(), or ranging
//     over a work channel that close() terminates), or
//   - joins a WaitGroup (calls a Done method), or
//   - is structurally bounded: contains no infinite `for {}` loop, so it
//     runs to completion on its own.
//
// Bodies that block forever in a socket read and rely on Close() to
// unblock them cannot be proven by this analysis — those sites carry a
// //lint:ignore goleak directive naming the Close that stops them, which
// is the audit trail the analyzer exists to force. Dynamically dispatched
// goroutine bodies (func values, interface methods) are flagged for the
// same reason.
func NewGoLeak() *Analyzer {
	a := &Analyzer{
		Name:  "goleak",
		Doc:   "every goroutine spawned in daemon packages has a provable stop path",
		Scope: daemonScope,
	}
	a.Run = func(p *Pass) {
		p.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
			g := n.(*ast.GoStmt)
			var body *ast.BlockStmt
			label := exprString(g.Call.Fun)
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
				label = "the function literal"
			default:
				if p.Pkg.TypesInfo != nil {
					if fn := staticCallee(p.Pkg.TypesInfo, g.Call); fn != nil {
						if fi, ok := funcIndex(p.Prog)[types.Object(fn)]; ok {
							body = fi.decl.Body
							label = funcDisplayName(fn)
						}
					}
				}
			}
			if body == nil {
				p.Reportf(g.Pos(), "goroutine body %s is not statically resolvable, so its stop path cannot be proven; spawn a module function or suppress with the shutdown story", label)
				return
			}
			if proof := stopPathProof(body); proof == "" {
				p.Reportf(g.Pos(), "goroutine %s has no provable stop path (no channel receive, no WaitGroup join, and an unbounded loop); plumb a quit channel or suppress with the shutdown story", label)
			}
		})
	}
	return a
}

// daemonScope lists the long-running packages whose goroutines and sockets
// the goleak and deadline analyzers police.
var daemonScope = []string{
	"internal/transport",
	"internal/router",
	"internal/qosserver",
	"internal/lease",
	"internal/membership",
	"internal/lb",
	"internal/debugz",
}

// stopPathProof inspects a goroutine body and returns a short label for
// the stop path it found ("" when none). Nested function literals are
// separate units (their defers and loops run on the closure's schedule,
// not the goroutine's), except that spawning or calling them is the
// goroutine's own business, so only the literal interiors are skipped.
func stopPathProof(body *ast.BlockStmt) string {
	var (
		hasReceive  bool
		hasJoin     bool
		hasInfinite bool
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				hasReceive = true
			}
		case *ast.RangeStmt:
			// Ranging over a channel terminates when the sender closes it;
			// ranging over anything else is bounded by the operand. Either
			// way it is not an infinite loop.
			return true
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(node.Args) == 0 {
				// wg.Done() joins; ctx.Done() feeds a receive. Both are
				// stop-path evidence.
				hasJoin = true
			}
		case *ast.ForStmt:
			if node.Cond == nil {
				hasInfinite = true
			}
		}
		return true
	})
	switch {
	case hasReceive:
		return "channel receive"
	case hasJoin:
		return "waitgroup join"
	case !hasInfinite:
		return "bounded body"
	default:
		return ""
	}
}
