package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
)

// NewLockDiscipline enforces the locking rules the leaky-bucket credit
// model depends on (paper §II-C eq. 1–2: refill and consume must serialize,
// or concurrent interleavings mint credit out of thin air):
//
//  1. Every mu.Lock()/mu.RLock() statement must either be followed
//     immediately by `defer mu.Unlock()` (resp. RUnlock) or be matched by a
//     later textual Unlock on the same receiver within the same function.
//     This is a deliberate approximation: it catches the "locked and forgot"
//     class outright, while manual unlock patterns (branching unlocks, as in
//     the HA accept loop) pass as long as any matching unlock exists after
//     the lock. It does not prove every return path unlocks — that would
//     need full control-flow analysis — so prefer the defer form, which the
//     analyzer accepts unconditionally.
//
//  2. A struct field that is accessed through sync/atomic functions
//     (atomic.AddInt64(&s.n, 1), ...) anywhere in a package must not also be
//     written with a plain assignment in that package: the mixed accesses
//     race even under a mutex, because the atomic side does not acquire it.
//     Fields of the typed atomic.* wrappers are immune by construction and
//     are not flagged. Matching is by field name within one package.
//
//  3. `defer mu.Unlock()` lexically inside a for/range body is flagged: the
//     deferred call runs at *function* exit, not iteration exit, so the
//     second iteration's Lock deadlocks against the first iteration's
//     still-pending Unlock (or, with separate locks, the function exits
//     holding every lock it ever took). A defer inside a function literal
//     inside the loop is fine — it runs when the literal returns.
func NewLockDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "lockdiscipline",
		Doc:  "locks must be released (prefer defer; never defer-unlock inside a loop); no mixed atomic/plain field access",
	}
	a.Run = func(p *Pass) {
		// Rule 1: the walker visits nested function literals on its own, so
		// registering both decl and literal nodes covers every function body
		// exactly once.
		p.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkLockPairs(p, body)
			}
		})

		// Rule 3: defer-unlock inside a loop body.
		p.Preorder([]ast.Node{(*ast.ForStmt)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			}
			if body != nil {
				checkDeferInLoop(p, n, body)
			}
		})

		// Rule 2 is two-phase: collect atomically-accessed fields and plain
		// writes during the walk, correlate after all files are seen (the
		// atomic site may be in a different file of the package).
		atomicFields := make(map[string]token.Position)
		type plainWrite struct {
			name string
			pos  token.Pos
		}
		var writes []plainWrite

		p.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || importedPath(p.Pkg, p.File, id) != "sync/atomic" {
				return
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fsel, ok := un.X.(*ast.SelectorExpr); ok {
					name := fsel.Sel.Name
					if _, seen := atomicFields[name]; !seen {
						atomicFields[name] = p.Prog.Fset.Position(un.Pos())
					}
				}
			}
		})
		p.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.IncDecStmt)(nil)}, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						writes = append(writes, plainWrite{sel.Sel.Name, sel.Pos()})
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := st.X.(*ast.SelectorExpr); ok {
					writes = append(writes, plainWrite{sel.Sel.Name, sel.Pos()})
				}
			}
		})
		p.AfterFiles(func() {
			for _, w := range writes {
				atomicAt, ok := atomicFields[w.name]
				if !ok {
					continue
				}
				p.Reportf(w.pos, "field %q is written non-atomically here but accessed via sync/atomic at %s:%d; mixed access races",
					w.name, atomicAt.Filename, atomicAt.Line)
			}
		})
	}
	return a
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairs scans one function body for Lock calls (rule 1). Nested
// function literals are analysis units of their own (the outer walk visits
// them), so the statement scan does not descend into them — but the search
// for a matching Unlock does, because releasing inside a deferred closure
// or a spawned goroutine is legitimate.
func checkLockPairs(p *Pass, body *ast.BlockStmt) {
	var walkStmts func(list []ast.Stmt)
	visitNested := func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // separate analysis unit
			}
			if blk, ok := n.(*ast.BlockStmt); ok {
				walkStmts(blk.List)
				return false
			}
			return true
		})
	}
	walkStmts = func(list []ast.Stmt) {
		for i, s := range list {
			recv, method, ok := lockCall(s)
			if !ok {
				visitNested(s)
				continue
			}
			want := unlockFor[method]
			if i+1 < len(list) && isDeferredUnlock(list[i+1], recv, want) {
				continue
			}
			if hasLaterUnlock(body, s.End(), recv, want) {
				continue
			}
			p.Reportf(s.Pos(), "%s.%s() has no matching %s in this function; add `defer %s.%s()` or release on every path",
				recv, method, want, recv, want)
		}
	}
	walkStmts(body.List)
}

// checkDeferInLoop flags `defer mu.Unlock()` statements lexically inside
// the given loop body (rule 3). Nested loops report through their own
// Preorder visit, and function literals start a fresh defer scope, so both
// are skipped here.
func checkDeferInLoop(p *Pass, loop ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.FuncLit:
			return false // defers in a literal run at the literal's exit
		case *ast.ForStmt, *ast.RangeStmt:
			if m != loop {
				return false // the nested loop's own visit covers it
			}
		case *ast.DeferStmt:
			sel, ok := m.Call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock" {
				recv := exprString(sel.X)
				p.Reportf(m.Pos(), "defer %s.%s() inside a loop body runs at function exit, not iteration exit — the next iteration's Lock deadlocks; unlock explicitly or move the loop body into a function",
					recv, sel.Sel.Name)
			}
		}
		return true
	})
}

// lockCall matches `recv.Lock()` / `recv.RLock()` expression statements and
// returns the rendered receiver and method name.
func lockCall(s ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := s.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if _, isLock := unlockFor[sel.Sel.Name]; !isLock {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func isDeferredUnlock(s ast.Stmt, recv, method string) bool {
	d, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == method && exprString(sel.X) == recv
}

func hasLaterUnlock(body *ast.BlockStmt, after token.Pos, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == method && exprString(sel.X) == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprString renders an expression compactly ("s.mu", "t.shards[i].mu").
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return buf.String()
}
