package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
)

// LockDiscipline enforces the two locking rules the leaky-bucket credit
// model depends on (paper §II-C eq. 1–2: refill and consume must serialize,
// or concurrent interleavings mint credit out of thin air):
//
//  1. Every mu.Lock()/mu.RLock() statement must either be followed
//     immediately by `defer mu.Unlock()` (resp. RUnlock) or be matched by a
//     later textual Unlock on the same receiver within the same function.
//     This is a deliberate approximation: it catches the "locked and forgot"
//     class outright, while manual unlock patterns (branching unlocks, as in
//     the HA accept loop) pass as long as any matching unlock exists after
//     the lock. It does not prove every return path unlocks — that would
//     need full control-flow analysis — so prefer the defer form, which the
//     analyzer accepts unconditionally.
//
//  2. A struct field that is accessed through sync/atomic functions
//     (atomic.AddInt64(&s.n, 1), ...) anywhere in a package must not also be
//     written with a plain assignment in that package: the mixed accesses
//     race even under a mutex, because the atomic side does not acquire it.
//     Fields of the typed atomic.* wrappers are immune by construction and
//     are not flagged. Matching is by field name within one package.
type LockDiscipline struct{}

// Name implements Analyzer.
func (LockDiscipline) Name() string { return "lockdiscipline" }

// Doc implements Analyzer.
func (LockDiscipline) Doc() string {
	return "locks must be released (prefer defer); no mixed atomic/plain field access"
}

var unlockFor = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// Analyze implements Analyzer.
func (a LockDiscipline) Analyze(prog *Program) []Finding {
	var out []Finding
	for _, pkg := range prog.Packages {
		out = append(out, a.checkLockPairs(prog, pkg)...)
		out = append(out, a.checkMixedAtomics(prog, pkg)...)
	}
	return out
}

func (a LockDiscipline) checkLockPairs(prog *Program, pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			out = append(out, a.checkFuncBody(prog, pkg, body)...)
			return true
		})
	}
	return out
}

// checkFuncBody scans one function body for Lock calls. Nested function
// literals are analysis units of their own (the outer walk visits them), so
// the statement scan does not descend into them — but the search for a
// matching Unlock does, because releasing inside a deferred closure or a
// spawned goroutine is legitimate.
func (a LockDiscipline) checkFuncBody(prog *Program, pkg *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	var walkStmts func(list []ast.Stmt)
	visitNested := func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // separate analysis unit
			}
			if blk, ok := n.(*ast.BlockStmt); ok {
				walkStmts(blk.List)
				return false
			}
			return true
		})
	}
	walkStmts = func(list []ast.Stmt) {
		for i, s := range list {
			recv, method, ok := lockCall(s)
			if !ok {
				visitNested(s)
				continue
			}
			want := unlockFor[method]
			if i+1 < len(list) && isDeferredUnlock(list[i+1], recv, want) {
				continue
			}
			if hasLaterUnlock(body, s.End(), recv, want) {
				continue
			}
			out = append(out, Finding{
				Analyzer: a.Name(),
				Pos:      prog.Fset.Position(s.Pos()),
				Message: fmt.Sprintf("%s.%s() has no matching %s in this function; add `defer %s.%s()` or release on every path",
					recv, method, want, recv, want),
			})
		}
	}
	walkStmts(body.List)
	return out
}

// lockCall matches `recv.Lock()` / `recv.RLock()` expression statements and
// returns the rendered receiver and method name.
func lockCall(s ast.Stmt) (recv, method string, ok bool) {
	es, isExpr := s.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	if _, isLock := unlockFor[sel.Sel.Name]; !isLock {
		return "", "", false
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func isDeferredUnlock(s ast.Stmt, recv, method string) bool {
	d, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := d.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == method && exprString(sel.X) == recv
}

func hasLaterUnlock(body *ast.BlockStmt, after token.Pos, recv, method string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name == method && exprString(sel.X) == recv {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkMixedAtomics implements rule 2.
func (a LockDiscipline) checkMixedAtomics(prog *Program, pkg *Package) []Finding {
	// Pass 1: fields whose address is taken by a sync/atomic call.
	atomicFields := make(map[string]token.Position)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || importedPath(pkg, file, id) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if fsel, ok := un.X.(*ast.SelectorExpr); ok {
					name := fsel.Sel.Name
					if _, seen := atomicFields[name]; !seen {
						atomicFields[name] = prog.Fset.Position(un.Pos())
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: plain writes to those fields.
	var out []Finding
	flag := func(sel *ast.SelectorExpr) {
		name := sel.Sel.Name
		atomicAt, ok := atomicFields[name]
		if !ok {
			return
		}
		out = append(out, Finding{
			Analyzer: a.Name(),
			Pos:      prog.Fset.Position(sel.Pos()),
			Message: fmt.Sprintf("field %q is written non-atomically here but accessed via sync/atomic at %s:%d; mixed access races",
				name, atomicAt.Filename, atomicAt.Line),
		})
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						flag(sel)
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := st.X.(*ast.SelectorExpr); ok {
					flag(sel)
				}
			}
			return true
		})
	}
	return out
}

// exprString renders an expression compactly ("s.mu", "t.shards[i].mu").
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return fmt.Sprintf("%T", e)
	}
	return buf.String()
}
