package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// NewFailpointSite guards the failpoint registry's structural invariants
// (internal/failpoint). The registry panics at runtime on a duplicate name,
// but only when both sites' packages are linked into the same binary — a
// duplicate across two daemons would never trip in tests while still
// corrupting the chaos harness's mental model ("arming X affects exactly one
// seam"). The analyzer proves the stronger property statically:
//
//   - every failpoint.New argument is a single quoted string literal, so
//     the full set of failpoint names is greppable and the /debug/failpoints
//     inventory is closed under static analysis;
//   - every name follows the site convention: two or more slash-separated
//     segments of [a-z0-9-] ("qosserver/ha/pull"), the first naming the
//     component — chaos specs stay readable and sortable;
//   - every name has exactly ONE code site module-wide, so arming a name
//     perturbs one seam, not several;
//   - every call initializes a package-level var, which is what makes
//     registration one-time and the disarmed gate a single atomic load on a
//     package singleton.
//
// The duplicate-site map spans packages, so the analyzer carries state
// across Run calls — construct a fresh instance per lint.Run (Analyzers
// does).
func NewFailpointSite() *Analyzer {
	a := &Analyzer{
		Name: "failpointsite",
		Doc:  "every failpoint name is a literal, well-formed, and registered at exactly one package-level site",
	}
	seen := make(map[string]token.Position) // name -> first site, module-wide
	a.Run = func(p *Pass) {
		topLevelByFile := make(map[*ast.File]map[*ast.CallExpr]bool)
		p.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			call := n.(*ast.CallExpr)
			if !isFailpointNewCall(p.Pkg, p.File, call) {
				return
			}
			topLevel, ok := topLevelByFile[p.File]
			if !ok {
				topLevel = packageLevelNewCalls(p.Pkg, p.File)
				topLevelByFile[p.File] = topLevel
			}
			pos := p.Prog.Fset.Position(call.Pos())
			if !topLevel[call] {
				p.Reportf(call.Pos(), "failpoint.New must initialize a package-level var; in-function registration defeats one-time registration and the zero-cost disarmed gate")
			}
			if len(call.Args) != 1 {
				return // does not compile against the real API; nothing more to check
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				p.Reportf(call.Pos(), "failpoint.New argument must be a quoted string literal so the site inventory is static")
				return
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return
			}
			if !validFailpointName(name) {
				p.Reportf(call.Pos(), "failpoint name %q violates the site convention: want 2+ slash-separated segments of [a-z0-9-], e.g. \"qosserver/ha/pull\"",
					name)
			}
			if prev, dup := seen[name]; dup {
				p.Reportf(call.Pos(), "failpoint name %q already registered at %s:%d; each name must have exactly one code site",
					name, prev.Filename, prev.Line)
			} else {
				seen[name] = pos
			}
		})
	}
	return a
}

// packageLevelNewCalls collects the failpoint.New calls that appear as
// package-level var initializers in file.
func packageLevelNewCalls(pkg *Package, file *ast.File) map[*ast.CallExpr]bool {
	top := make(map[*ast.CallExpr]bool)
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				if call, ok := v.(*ast.CallExpr); ok && isFailpointNewCall(pkg, file, call) {
					top[call] = true
				}
			}
		}
	}
	return top
}

// isFailpointNewCall reports whether call is failpoint.New from the
// failpoint package. Resolution prefers type information and degrades to
// the file's import table (fixture packages load without a resolvable
// failpoint import).
func isFailpointNewCall(pkg *Package, file *ast.File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "New" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	path := importedPath(pkg, file, id)
	if path == "" {
		// Type info may map the ident of a failed import to a non-package
		// object; fall back to the import table directly.
		for _, imp := range file.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			name := p
			if i := strings.LastIndex(p, "/"); i >= 0 {
				name = p[i+1:]
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == id.Name {
				path = p
				break
			}
		}
	}
	return path == "repro/internal/failpoint" || strings.HasSuffix(path, "/internal/failpoint")
}

// validFailpointName checks the site naming convention.
func validFailpointName(name string) bool {
	segs := strings.Split(name, "/")
	if len(segs) < 2 {
		return false
	}
	for _, seg := range segs {
		if seg == "" {
			return false
		}
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
				return false
			}
		}
	}
	return true
}
