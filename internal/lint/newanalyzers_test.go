package lint

import "testing"

// TestHotAllocFixture walks the allocation taxonomy: each positive case in
// the fixture is one class of heap allocation inside a //janus:hotpath
// function, and the negatives prove stack-only code, amortized appends,
// and suppressed sites (inline and in callee summaries) stay silent.
func TestHotAllocFixture(t *testing.T) {
	prog := loadFixture(t, "hotallocbad", "repro/internal/hotallocbad")
	got := Run(prog, []*Analyzer{NewHotAlloc()})
	if len(got) != 10 {
		t.Errorf("want 10 hotalloc findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 23, "escaping composite literal")
	wantFindingAt(t, got, 28, "make allocates")
	wantFindingAt(t, got, 29, "map assignment may grow the map")
	wantFindingAt(t, got, 29, "escaping composite literal")
	wantFindingAt(t, got, 39, "conversion copies and allocates")
	wantFindingAt(t, got, 45, "fmt.Errorf formats and allocates")
	wantFindingAt(t, got, 53, "append to a provably empty local slice")
	wantFindingAt(t, got, 59, "function literal captures variables")
	wantFindingAt(t, got, 64, "go statement allocates a goroutine")
	wantFindingAt(t, got, 93, "call to coldHelper allocates")
	for _, f := range got {
		switch f.Pos.Line {
		case 73, 74, 75, 82, 105, 111, 116, 117:
			t.Errorf("unexpected finding on negative-case line %d: %s", f.Pos.Line, f.Message)
		}
	}
}

// TestHotAllocExemptConversions pins the map-index and comparison
// exemptions: the only conversion finding in the fixture's conversions()
// is the returned string(k), not the exempt uses on earlier lines.
func TestHotAllocExemptConversions(t *testing.T) {
	prog := loadFixture(t, "hotallocbad", "repro/internal/hotallocbad")
	got := Run(prog, []*Analyzer{NewHotAlloc()})
	for _, f := range got {
		if f.Pos.Line == 35 || f.Pos.Line == 36 {
			t.Errorf("conversion exemption failed at line %d: %s", f.Pos.Line, f.Message)
		}
	}
}

func TestGoLeakFixture(t *testing.T) {
	prog := loadFixture(t, "goleakbad", "repro/internal/transport")
	got := Run(prog, []*Analyzer{NewGoLeak()})
	if len(got) != 2 {
		t.Errorf("want 2 goleak findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 16, "no provable stop path")
	wantFindingAt(t, got, 59, "not statically resolvable")
	for _, f := range got {
		switch f.Pos.Line {
		case 27, 42, 54, 65:
			t.Errorf("unexpected finding on negative-case line %d: %s", f.Pos.Line, f.Message)
		}
	}
}

// TestGoLeakScope proves the analyzer only fires in daemon packages: the
// same fixture loaded under a simulation import path is silent.
func TestGoLeakScope(t *testing.T) {
	prog := loadFixture(t, "goleakbad", "repro/internal/sim")
	got := Run(prog, []*Analyzer{NewGoLeak()})
	if len(got) != 0 {
		t.Errorf("goleak fired outside daemon scope:\n%s", renderFindings(got))
	}
}

func TestDeadlineFixture(t *testing.T) {
	prog := loadFixture(t, "deadlinebad", "repro/internal/transport")
	got := Run(prog, []*Analyzer{NewDeadline()})
	if len(got) != 2 {
		t.Errorf("want 2 deadline findings, got %d:\n%s", len(got), renderFindings(got))
	}
	wantFindingAt(t, got, 14, "runs without a deadline")
	wantFindingAt(t, got, 40, "runs without a deadline")
	for _, f := range got {
		switch f.Pos.Line {
		case 22, 30, 35, 49:
			t.Errorf("unexpected finding on negative-case line %d: %s", f.Pos.Line, f.Message)
		}
	}
}

func TestDeadlineScope(t *testing.T) {
	prog := loadFixture(t, "deadlinebad", "repro/internal/sim")
	got := Run(prog, []*Analyzer{NewDeadline()})
	if len(got) != 0 {
		t.Errorf("deadline fired outside daemon scope:\n%s", renderFindings(got))
	}
}
