package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewDeadline requires every net.Conn / net.PacketConn read or write in
// the daemon packages to run under a deadline. The transport's whole
// latency story (paper §III-B: 100 µs × 5 retries) is built on *bounded*
// socket operations; one undeadlined blocking call in a shutdown or
// handoff path turns a dead peer into a hung daemon.
//
// A watched call is accepted when one of these holds:
//
//   - a Set*Deadline call appears earlier in the same function (the
//     textual-dominance approximation of "a deadline is armed before the
//     operation");
//   - the enclosing function is annotated //janus:deadlined — the audited
//     escape for loops that intentionally block forever and are unblocked
//     by Close() (UDP accept-style readers), and for helpers whose callers
//     armed the deadline. The annotation's doc comment must explain which
//     mechanism bounds the call;
//   - a //lint:ignore deadline directive with a reason covers the line.
//
// The receiver check is type-based: only methods on types from the net
// package (or interfaces defined by it) are watched, so bytes.Buffer.Write
// and friends never trip it.
func NewDeadline() *Analyzer {
	a := &Analyzer{
		Name:  "deadline",
		Doc:   "net conn reads/writes in daemon packages run under a deadline or an audited helper",
		Scope: daemonScope,
	}
	a.Run = func(p *Pass) {
		p.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
			decl := n.(*ast.FuncDecl)
			if decl.Body == nil || p.Pkg.TypesInfo == nil {
				return
			}
			if hasAnnotation(decl, annotationDeadlined) {
				return // audited: the doc comment explains what bounds the I/O
			}
			// One pass collecting both deadline arms and watched I/O calls,
			// in source order; nested literals belong to the enclosing
			// function's audit unit, so they are not skipped.
			type ioCall struct {
				call *ast.CallExpr
				name string
			}
			var armedAt token.Pos = -1
			var calls []ioCall
			ast.Inspect(decl.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if deadlineArmMethods[sel.Sel.Name] && isNetConnRecv(p.Pkg.TypesInfo, sel.X) {
					if armedAt < 0 || call.Pos() < armedAt {
						armedAt = call.Pos()
					}
					return true
				}
				if watchedConnIO[sel.Sel.Name] && isNetConnRecv(p.Pkg.TypesInfo, sel.X) {
					calls = append(calls, ioCall{call, exprString(sel.X) + "." + sel.Sel.Name})
				}
				return true
			})
			for _, c := range calls {
				if armedAt >= 0 && armedAt < c.call.Pos() {
					continue // dominated (textually) by a deadline arm
				}
				p.Reportf(c.call.Pos(), "%s runs without a deadline: no Set*Deadline precedes it in this function; arm one, or annotate the function //janus:deadlined documenting what bounds the call",
					c.name)
			}
		})
	}
	return a
}

var deadlineArmMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

var watchedConnIO = map[string]bool{
	"Read":                true,
	"ReadFrom":            true,
	"ReadFromUDP":         true,
	"ReadFromUDPAddrPort": true,
	"ReadMsgUDP":          true,
	"Write":               true,
	"WriteTo":             true,
	"WriteToUDP":          true,
	"WriteToUDPAddrPort":  true,
	"WriteMsgUDP":         true,
}

// isNetConnRecv reports whether expr's type is declared in the net package
// (concrete *net.UDPConn and friends, or the net.Conn / net.PacketConn
// interfaces).
func isNetConnRecv(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "net"
}
