package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// NewWireCompat guards the wire formats against silent protocol breaks.
//
// Two protocols cross process boundaries: the binary UDP datagrams defined
// by internal/wire (router <-> QoS server), and the gob-encoded HA frames
// (ha.go: haFrame/haEntry, carrying bucket.Rule) used for slave replication
// and bucket handoff. gob in particular derives its encoding from the
// struct definition, so renaming, retyping, reordering, or removing a field
// changes what peers decode — a rolling upgrade would then corrupt or drop
// replicated credit state with no compile error and no test failure.
//
// The analyzer renders each tracked struct's field name/type/order
// signature from the AST, hashes it, and diffs against the checked-in
// golden manifest (internal/lint/wirecompat.golden). Any divergence fails
// the build. Deliberate protocol changes are made by updating the manifest
// in the same commit (janus-vet -write-manifest), which makes every wire
// change explicit in review.
//
// manifestPath overrides the manifest location; "" means
// DefaultManifestPath under the module root.
func NewWireCompat(manifestPath string) *Analyzer {
	a := &Analyzer{
		Name: "wirecompat",
		Doc:  "wire/gob struct signatures must match the golden manifest",
	}
	a.RunModule = func(mp *ModulePass) {
		checkWireCompat(mp, manifestPath)
	}
	return a
}

// DefaultManifestPath is the module-root-relative golden manifest location.
const DefaultManifestPath = "internal/lint/wirecompat.golden"

// trackedStructs lists the structs whose layout is part of a wire contract,
// keyed by module-relative package path.
var trackedStructs = []struct {
	pkgRel string
	names  []string
}{
	{"internal/bucket", []string{"Rule"}}, // embedded in haEntry, gob-encoded
	{"internal/qosserver", []string{"haFrame", "haEntry"}},
	{"internal/wire", []string{"Request", "Response", "BatchRequest", "BatchResponse", "LeaseAsk", "LeaseGrant"}},
}

func checkWireCompat(mp *ModulePass, manifestPath string) {
	prog := mp.Prog
	got := ComputeManifest(prog)
	if len(got) == 0 {
		// None of the tracked packages were loaded (e.g. janus-vet run on a
		// single unrelated directory): nothing to check.
		return
	}
	path := manifestPath
	if path == "" {
		if prog.ModuleRoot == "" {
			return
		}
		path = filepath.Join(prog.ModuleRoot, filepath.FromSlash(DefaultManifestPath))
	}
	data, err := os.ReadFile(path)
	if err != nil {
		mp.ReportAt(manifestPos(path), "cannot read golden wire manifest: %v (generate it with `janus-vet -write-manifest`)", err)
		return
	}
	want := make(map[string]string) // struct key -> full line
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, _, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		want[strings.TrimSpace(key)] = line
	}
	seen := make(map[string]bool)
	for _, line := range got {
		key, _, _ := strings.Cut(line, ":")
		seen[key] = true
		wantLine, ok := want[key]
		if !ok {
			mp.ReportAt(manifestPos(path), "wire struct %s is not in the golden manifest; if the new layout is intended, run `janus-vet -write-manifest`", key)
			continue
		}
		if wantLine != line {
			mp.ReportAt(manifestPos(path), "wire-breaking change in %s:\n\tmanifest: %s\n\tsource:   %s\n\tif the protocol change is intended, update the manifest with `janus-vet -write-manifest`",
				key, wantLine, line)
		}
	}
	for key := range want {
		if !seen[key] && trackedPackageLoaded(prog, key) {
			mp.ReportAt(manifestPos(path), "wire struct %s is in the golden manifest but missing from the source tree", key)
		}
	}
}

func manifestPos(path string) token.Position {
	return token.Position{Filename: path, Line: 1, Column: 1}
}

// trackedPackageLoaded reports whether the package owning the manifest key
// ("internal/wire.Request") was part of the load, so partial loads do not
// produce false "missing struct" findings.
func trackedPackageLoaded(prog *Program, key string) bool {
	pkgRel, _, ok := strings.Cut(key, ".")
	if !ok {
		return false
	}
	for _, pkg := range prog.Packages {
		if pkg.Path == pkgRel || strings.HasSuffix(pkg.Path, "/"+pkgRel) {
			return true
		}
	}
	return false
}

// ComputeManifest renders the current signature line for every tracked
// struct found in prog, sorted. Line format:
//
//	<pkgRel>.<Struct>: sig=<crc32> Field Type; Field Type; ...
func ComputeManifest(prog *Program) []string {
	var out []string
	for _, t := range trackedStructs {
		var pkg *Package
		for _, p := range prog.Packages {
			if p.Path == t.pkgRel || strings.HasSuffix(p.Path, "/"+t.pkgRel) {
				pkg = p
				break
			}
		}
		if pkg == nil {
			continue
		}
		for _, name := range t.names {
			st := findStruct(pkg, name)
			if st == nil {
				continue
			}
			sig := structSignature(st)
			out = append(out, fmt.Sprintf("%s.%s: sig=%08x %s", t.pkgRel, name, crc32.ChecksumIEEE([]byte(sig)), sig))
		}
	}
	sort.Strings(out)
	return out
}

func findStruct(pkg *Package, name string) *ast.StructType {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// structSignature renders the ordered field name/type signature. Multiple
// names in one field declaration expand in order; embedded fields render as
// their type alone. Struct tags participate (gob ignores them today, but a
// future codec may not).
func structSignature(st *ast.StructType) string {
	var parts []string
	for _, f := range st.Fields.List {
		typ := exprString(f.Type)
		if len(f.Names) == 0 {
			parts = append(parts, typ)
			continue
		}
		for _, n := range f.Names {
			p := n.Name + " " + typ
			if f.Tag != nil {
				p += " " + f.Tag.Value
			}
			parts = append(parts, p)
		}
	}
	return strings.Join(parts, "; ")
}

// WriteManifest regenerates the golden manifest for prog at path ("" uses
// the default under the module root).
func WriteManifest(prog *Program, path string) error {
	if path == "" {
		if prog.ModuleRoot == "" {
			return fmt.Errorf("lint: no module root; pass an explicit manifest path")
		}
		path = filepath.Join(prog.ModuleRoot, filepath.FromSlash(DefaultManifestPath))
	}
	lines := ComputeManifest(prog)
	var b strings.Builder
	b.WriteString("# Golden wire-format manifest, enforced by the wirecompat analyzer.\n")
	b.WriteString("# A mismatch means a wire-breaking struct edit; regenerate deliberately\n")
	b.WriteString("# with `janus-vet -write-manifest` and call the change out in review.\n")
	for _, l := range lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
