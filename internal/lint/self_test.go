package lint

import (
	"sync"
	"testing"
)

// loadSelf loads the real module once and shares it across the self-tests;
// the load type-checks the whole tree, which is the expensive part.
var loadSelf = sync.OnceValues(func() (*Program, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return LoadModule(root)
})

// TestTreeIsClean runs the full analyzer suite over the real module — the
// same check `janus-vet ./...` and `make lint` perform — so a violation
// anywhere in the tree fails plain `go test ./...`. This is what keeps the
// gate green after it lands: wall-clock leaks into simulation packages,
// forgotten unlocks, wire-struct edits without a manifest update, and
// silently dropped transport errors all surface here.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	prog, err := loadSelf()
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		t.Fatalf("loader found only %d packages; module walk is broken", len(prog.Packages))
	}
	for _, f := range Run(prog, Analyzers("")) {
		t.Errorf("%s", f)
	}
}

// TestTreeTypeChecks asserts the in-module type-checker resolves every
// package: analyzers degrade to syntactic matching without type info, so a
// silent regression here would weaken the precise checks without failing
// them.
func TestTreeTypeChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	prog, err := loadSelf()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range prog.Packages {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: %v", pkg.Path, terr)
		}
	}
}

// TestManifestCoversAllTrackedStructs guards against the manifest silently
// shrinking: every tracked struct must be present in the real tree.
func TestManifestCoversAllTrackedStructs(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	prog, err := loadSelf()
	if err != nil {
		t.Fatal(err)
	}
	lines := ComputeManifest(prog)
	want := 0
	for _, tr := range trackedStructs {
		want += len(tr.names)
	}
	if len(lines) != want {
		t.Errorf("manifest covers %d structs, want %d: %v", len(lines), want, lines)
	}
}
