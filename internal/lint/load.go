package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/qosserver").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Name is the package clause name.
	Name string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Fset positions all files of the owning Program.
	Fset *token.FileSet
	// TypesPkg and TypesInfo carry the go/types results; they are non-nil
	// even when type checking was partial (see TypeErrors).
	TypesPkg  *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-check diagnostics. Analyzers degrade to
	// syntactic matching for nodes without type information, so a partial
	// check still yields useful findings.
	TypeErrors []error
}

// Program is a set of packages loaded for analysis.
type Program struct {
	// ModuleRoot is the directory containing go.mod ("" for ad-hoc loads).
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	Fset       *token.FileSet
	Packages   []*Package

	byPath map[string]*Package
	// funcs indexes every top-level FuncDecl by its types.Func object; built
	// lazily by funcIndex (dataflow.go) and shared by the dataflow analyzers.
	funcs map[types.Object]funcDeclInfo
}

// PackageByPath returns the loaded package with the given import path, or
// nil.
func (p *Program) PackageByPath(path string) *Package { return p.byPath[path] }

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ModulePathAt reads the module path declared in root's go.mod.
func ModulePathAt(root string) (string, error) { return readModulePath(root) }

func readModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// LoadModule parses and type-checks every package under the module rooted
// at root, skipping testdata, vendor, hidden, and underscore directories.
// Test files (_test.go) are excluded: the analyzers guard library and
// binary code; tests legitimately use wall clocks and discard errors.
func LoadModule(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(root)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		byPath:     make(map[string]*Package),
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		files, pkgName, perr := parseDir(prog.Fset, path)
		if perr != nil {
			return perr
		}
		if len(files) == 0 {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: importPath, Dir: path, Name: pkgName, Files: files, Fset: prog.Fset}
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[importPath] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	prog.typecheck()
	return prog, nil
}

// LoadDir loads the single directory dir as a one-package program under the
// given import path. Used by tests to present fixture packages to analyzers
// as if they lived at a real path (e.g. testdata loaded as
// "repro/internal/sim"), and by janus-vet when invoked on explicit
// directories.
func LoadDir(dir, importPath string) (*Program, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath := importPath
	if i := strings.Index(importPath, "/"); i > 0 {
		modPath = importPath[:i]
	}
	prog := &Program{
		ModulePath: modPath,
		Fset:       token.NewFileSet(),
		byPath:     make(map[string]*Package),
	}
	// Best effort: a fixture directory inside a module still resolves the
	// module root, so analyzers with module-root-relative defaults (the
	// wirecompat golden manifest) work on explicit-directory runs.
	if root, err := FindModuleRoot(dir); err == nil {
		prog.ModuleRoot = root
	}
	files, pkgName, err := parseDir(prog.Fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	pkg := &Package{Path: importPath, Dir: dir, Name: pkgName, Files: files, Fset: prog.Fset}
	prog.Packages = []*Package{pkg}
	prog.byPath[importPath] = pkg
	prog.typecheck()
	return prog, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var files []*ast.File
	var pkgName string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines and _GOOS/_GOARCH file
		// suffixes) for the host platform, like `go vet` does: without this,
		// platform-split pairs such as qosserver's reuseport_{linux,stub}.go
		// would both load into one package and redeclare each other.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, "", fmt.Errorf("lint: %w", err)
		}
		if pkgName != "" && f.Name.Name != pkgName {
			// Mixed package clauses (e.g. a main + tool split): keep the
			// majority package by ignoring the stray file rather than
			// failing the whole load.
			continue
		}
		pkgName = f.Name.Name
		files = append(files, f)
	}
	return files, pkgName, nil
}

// typecheck runs go/types over every loaded package. Imports within the
// module resolve against the loaded ASTs; standard-library imports resolve
// through the stdlib source importer. Errors are collected per package, not
// fatal: analyzers fall back to syntactic matching where type information
// is missing.
func (p *Program) typecheck() {
	m := &moduleImporter{
		prog: p,
		std:  importer.ForCompiler(p.Fset, "source", nil),
		done: make(map[string]*types.Package),
	}
	for _, pkg := range p.Packages {
		m.check(pkg)
	}
}

// moduleImporter resolves module-internal imports from the Program's own
// ASTs (memoized, cycle-guarded) and everything else via the stdlib source
// importer.
type moduleImporter struct {
	prog     *Program
	std      types.Importer
	done     map[string]*types.Package
	checking map[string]bool
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := m.done[path]; ok && tp != nil {
		return tp, nil
	}
	if path == m.prog.ModulePath || strings.HasPrefix(path, m.prog.ModulePath+"/") {
		pkg := m.prog.byPath[path]
		if pkg == nil {
			return nil, fmt.Errorf("lint: package %s not loaded", path)
		}
		return m.check(pkg)
	}
	return m.std.Import(path)
}

func (m *moduleImporter) check(pkg *Package) (*types.Package, error) {
	if tp, ok := m.done[pkg.Path]; ok {
		if tp == nil {
			return nil, fmt.Errorf("lint: %s previously failed to type-check", pkg.Path)
		}
		return tp, nil
	}
	if m.checking == nil {
		m.checking = make(map[string]bool)
	}
	if m.checking[pkg.Path] {
		return nil, fmt.Errorf("lint: import cycle through %s", pkg.Path)
	}
	m.checking[pkg.Path] = true
	defer delete(m.checking, pkg.Path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    m,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tp, _ := conf.Check(pkg.Path, m.prog.Fset, pkg.Files, info)
	pkg.TypesPkg = tp
	pkg.TypesInfo = info
	m.done[pkg.Path] = tp
	if tp == nil {
		return nil, fmt.Errorf("lint: type-checking %s failed", pkg.Path)
	}
	return tp, nil
}
