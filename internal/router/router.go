// Package router implements the Janus request router (paper §II-B, §III-B,
// Fig 2).
//
// The router is a stateless HTTP front end. For each QoS request it
// computes
//
//	seed = CRC32(QoS key)
//	n    = seed mod N
//
// and forwards the request over UDP to QoS server n. With a fixed number of
// QoS servers, requests for the same key always land on the same server —
// regardless of which router instance handles them — which is what
// partitions the key space without any coordination. Statelessness is what
// lets the router layer scale in and out freely (§II-B).
//
// The UDP exchange uses the 100 µs/5-retry discipline of
// internal/transport; when all retries are exhausted the router answers
// with a configurable default reply (§III-B).
package router

import (
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wire"
)

// SelectBackend returns the index of the QoS server responsible for key
// among n servers — the paper's routing function. n must be > 0.
func SelectBackend(key string, n int) int {
	return int(crc32.ChecksumIEEE([]byte(key)) % uint32(n))
}

// Resolver turns a backend name into a dialable address. internal/dns
// resolvers satisfy it; nil means names are already addresses.
type Resolver interface {
	ResolveOne(name string) (string, error)
}

// Config configures a router node.
type Config struct {
	// Addr is the HTTP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Backends are the QoS server names (resolved via Resolver) or
	// addresses, in partition order. The slice length fixes N.
	Backends []string
	// Resolver resolves backend names; nil treats names as addresses.
	Resolver Resolver
	// Transport tunes the UDP client (timeout/retries).
	Transport transport.Config
	// DefaultReply is the verdict returned when a QoS server cannot be
	// reached after all retries (the paper's "default reply"). False —
	// deny — is the conservative choice.
	DefaultReply bool
	// Logger receives operational messages; nil discards.
	Logger *log.Logger
}

// Stats are cumulative counters for one router node.
type Stats struct {
	Requests       int64 // HTTP QoS requests handled
	BadRequests    int64 // malformed queries
	Timeouts       int64 // backend exchanges that exhausted retries
	DefaultReplies int64 // responses fabricated by the router
	Redials        int64 // backend reconnects after failure
}

// Router is a running request-router node.
type Router struct {
	cfg      Config
	ln       net.Listener
	server   *http.Server
	backends []*backend
	logger   *log.Logger

	latency *metrics.Histogram

	requests       metrics.Counter
	badRequests    metrics.Counter
	timeouts       metrics.Counter
	defaultReplies metrics.Counter
	redials        metrics.Counter

	wg sync.WaitGroup
}

// backend is one QoS server slot, addressed by name and re-resolved on
// failure (the DNS-managed master/slave failover path of §III-C).
type backend struct {
	name     string
	resolver Resolver
	tcfg     transport.Config

	mu     sync.Mutex
	addr   string
	client *transport.Client
}

func (b *backend) getClient() (*transport.Client, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		return b.client, nil
	}
	addr := b.name
	if b.resolver != nil {
		a, err := b.resolver.ResolveOne(b.name)
		if err != nil {
			return nil, err
		}
		addr = a
	}
	c, err := transport.Dial(addr, b.tcfg)
	if err != nil {
		return nil, err
	}
	b.addr = addr
	b.client = c
	return c, nil
}

// invalidate drops the cached client so the next request re-resolves; used
// after a timeout, which is how the router notices a failover.
func (b *backend) invalidate() {
	b.mu.Lock()
	if b.client != nil {
		b.client.Close()
		b.client = nil
	}
	b.mu.Unlock()
}

func (b *backend) close() {
	b.mu.Lock()
	if b.client != nil {
		b.client.Close()
		b.client = nil
	}
	b.mu.Unlock()
}

// New starts a router node.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: no backends configured")
	}
	logger := cfg.Logger
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("router: listen %s: %w", cfg.Addr, err)
	}
	r := &Router{
		cfg:     cfg,
		ln:      ln,
		logger:  logger,
		latency: metrics.NewHistogram(),
	}
	for _, name := range cfg.Backends {
		r.backends = append(r.backends, &backend{name: name, resolver: cfg.Resolver, tcfg: cfg.Transport})
	}
	mux := http.NewServeMux()
	mux.HandleFunc(wire.HTTPPath, r.handleQoS)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
	r.server = &http.Server{Handler: mux}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.server.Serve(ln)
	}()
	return r, nil
}

// Addr returns the HTTP address the router listens on.
func (r *Router) Addr() string { return r.ln.Addr().String() }

// NumBackends returns N, the number of QoS server partitions.
func (r *Router) NumBackends() int { return len(r.backends) }

func (r *Router) handleQoS(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	qreq, err := wire.ParseHTTPQuery(req.URL.Query())
	if err != nil {
		r.badRequests.Inc()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := r.Route(qreq)
	r.requests.Inc()
	r.latency.RecordDuration(time.Since(start))
	w.Header().Set(wire.HTTPStatusHeader, resp.Status.String())
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, wire.FormatHTTPBody(resp.Allow))
}

// Route performs the backend selection and UDP exchange for one request.
// It is exported for in-process deployments and the simulation harness.
func (r *Router) Route(qreq wire.Request) wire.Response {
	b := r.backends[SelectBackend(qreq.Key, len(r.backends))]
	client, err := b.getClient()
	if err != nil {
		r.logger.Printf("router: backend %s unavailable: %v", b.name, err)
		return r.defaultReply()
	}
	resp, err := client.Do(qreq)
	if err != nil {
		r.timeouts.Inc()
		// Drop the cached client so the next request re-resolves the
		// backend name — after a DNS failover this lands on the new master.
		b.invalidate()
		r.redials.Inc()
		return r.defaultReply()
	}
	return resp
}

func (r *Router) defaultReply() wire.Response {
	r.defaultReplies.Inc()
	return wire.Response{Allow: r.cfg.DefaultReply, Status: wire.StatusDefaultReply}
}

// Stats returns a snapshot of the router counters.
func (r *Router) Stats() Stats {
	return Stats{
		Requests:       r.requests.Value(),
		BadRequests:    r.badRequests.Value(),
		Timeouts:       r.timeouts.Value(),
		DefaultReplies: r.defaultReplies.Value(),
		Redials:        r.redials.Value(),
	}
}

// Latency returns the HTTP-request latency histogram.
func (r *Router) Latency() *metrics.Histogram { return r.latency }

// Close shuts down the router.
func (r *Router) Close() error {
	err := r.server.Close()
	for _, b := range r.backends {
		b.close()
	}
	r.wg.Wait()
	return err
}
